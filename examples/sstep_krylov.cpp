// s-step Krylov basis orthogonalization with TSQR — the paper's most extreme
// tall-skinny case (§I: "millions of rows by less than ten columns",
// communication-avoiding linear solvers, Mohiyuddin et al.).
//
// Builds s+1 Krylov vectors {v, Av, ..., A^s v} of a 2-D Laplacian stencil
// operator and orthogonalizes the block with a single TSQR, as an s-step
// Krylov method would between outer iterations. Verifies orthogonality and
// that span{Q} reproduces the Krylov vectors, and compares the simulated
// TSQR time against a bandwidth-bound BLAS2 QR of the same block.
//
//   ./sstep_krylov [--grid=512] [--s=7]

#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/qr_baselines.hpp"
#include "common/cli.hpp"
#include "common/prng.hpp"
#include "linalg/norms.hpp"
#include "krylov/sstep.hpp"
#include "tsqr/tsqr.hpp"

using namespace caqr;

namespace {

// y = A x for the 2-D 5-point Laplacian on a grid x grid mesh.
void laplacian_apply(idx grid, const float* x, float* y) {
  for (idx i = 0; i < grid; ++i) {
    for (idx j = 0; j < grid; ++j) {
      const idx p = i * grid + j;
      float acc = 4.0f * x[p];
      if (i > 0) acc -= x[p - grid];
      if (i + 1 < grid) acc -= x[p + grid];
      if (j > 0) acc -= x[p - 1];
      if (j + 1 < grid) acc -= x[p + 1];
      y[p] = acc;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const idx grid = args.get_int("grid", 512);
  const idx s = args.get_int("s", 7);
  const idx m = grid * grid;
  const idx n = s + 1;

  std::printf("s-step Krylov basis: %lld Laplacian powers on a %lldx%lld "
              "mesh -> %lld x %lld block\n\n",
              static_cast<long long>(s), static_cast<long long>(grid),
              static_cast<long long>(grid), static_cast<long long>(m),
              static_cast<long long>(n));

  // Krylov block: v, Av, A^2 v, ... with per-column normalization to keep
  // the basis from collapsing in single precision (the matrix powers grow
  // geometrically in norm — this is the classically ill-conditioned case
  // s-step methods must orthogonalize).
  Matrix<float> k(m, n);
  Rng rng(11);
  for (idx p = 0; p < m; ++p) k(p, 0) = static_cast<float>(rng.normal());
  scal(m, 1.0f / nrm2(m, k.view().col(0)), k.view().col(0));
  for (idx j = 1; j < n; ++j) {
    laplacian_apply(grid, k.view().col(j - 1), k.view().col(j));
    scal(m, 1.0f / nrm2(m, k.view().col(j)), k.view().col(j));
  }

  // TSQR on the simulated GPU.
  gpusim::Device dev;
  tsqr::TsqrOptions opt;
  opt.block_rows = 128;
  auto f = tsqr::tsqr(dev, k.view(), opt);
  const double t_tsqr = dev.elapsed_seconds();
  auto q = f.form_q(dev, opt);

  std::printf("TSQR simulated time: %.3f ms (tree arity %lld, %zu levels)\n",
              t_tsqr * 1e3, static_cast<long long>(opt.effective_arity(n)),
              static_cast<std::size_t>(f.meta.num_levels()));
  std::printf("||Q^T Q - I||_F = %.2e\n", orthogonality_error(q.view()));
  std::printf("||K - Q R||_F / ||K||_F = %.2e\n",
              factorization_residual(k.view(), q.view(), f.r().view()));

  // Compare against the bandwidth-bound BLAS2 QR at the same size.
  gpusim::Device dev2(gpusim::GpuMachineModel::c2050(),
                      gpusim::ExecMode::ModelOnly);
  auto blas2 = baselines::gpu_blas2_qr(dev2, Matrix<float>::shape_only(m, n));
  std::printf("\nBandwidth-bound BLAS2 QR at this size: %.3f ms -> TSQR is "
              "%.1fx faster (the s-step regime is where CAQR's advantage "
              "peaks)\n",
              blas2.seconds * 1e3, blas2.seconds / t_tsqr);

  // End-to-end: CA-GMRES on the Poisson problem, TSQR orthogonalization
  // inside every s-step block.
  const idx solve_grid = std::min<idx>(grid, 48);
  auto a_csr = sparse::CsrMatrix<double>::laplacian_2d(solve_grid);
  std::vector<double> xt(static_cast<std::size_t>(a_csr.rows()));
  Rng rng2(13);
  for (auto& v : xt) v = rng2.normal();
  std::vector<double> b(static_cast<std::size_t>(a_csr.rows()));
  a_csr.spmv(xt.data(), b.data());

  gpusim::Device dev3;
  auto sol = krylov::ca_gmres(dev3, a_csr, b.data(), s, /*blocks=*/6,
                              /*max_restarts=*/40, 1e-9);
  std::printf("\nCA-GMRES on the %lldx%lld Poisson problem: %s after %zu "
              "restart cycles (final relative residual %.2e, simulated GPU "
              "time %.2f ms)\n",
              static_cast<long long>(solve_grid),
              static_cast<long long>(solve_grid),
              sol.converged ? "converged" : "NOT converged",
              sol.residuals.size() - 1, sol.residuals.back(),
              dev3.elapsed_seconds() * 1e3);
  return 0;
}

// Stationary-video background subtraction with Robust PCA (§VI) — the
// paper's motivating application, on a synthetic surveillance clip.
//
// Generates a clip (static background + moving blobs + noise), packs it into
// the pixels x frames matrix, runs the inexact-ALM Robust PCA with the CAQR
// SVD pipeline, and reports foreground/background separation quality and the
// simulated iteration rate. Use --full for the paper's 288x384x100 clip
// (slow functionally: every SVD really runs); the default is a reduced clip
// that finishes in seconds.
//
//   ./video_background [--full] [--frames=40] [--iterations=60]
//   ./video_background --dump-pgm   (writes frame0 decomposition as PGM)
//   ./video_background --input-prefix=frames/f --input-count=100
//       (reads real frames f0.pgm .. f99.pgm instead of the synthetic clip)

#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "rpca/rpca.hpp"
#include "video/pgm_io.hpp"
#include "video/video.hpp"

using namespace caqr;

namespace {

void dump_pgm(const char* path, ConstMatrixView<float> column, idx height,
              idx width) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fprintf(f, "P2\n%lld %lld\n255\n", static_cast<long long>(width),
               static_cast<long long>(height));
  for (idx y = 0; y < height; ++y) {
    for (idx x = 0; x < width; ++x) {
      const float v = column(y + x * height, 0);
      const int g = std::min(255, std::max(0, static_cast<int>(v * 255.0f)));
      std::fprintf(f, "%d ", g);
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);

  // Real-footage path: load numbered PGM frames and run the same pipeline.
  if (args.has("input-prefix")) {
    const std::string prefix = args.get("input-prefix", "");
    const idx count = args.get_int("input-count", 0);
    if (count < 2) {
      std::fprintf(stderr, "--input-count must be >= 2\n");
      return 1;
    }
    video::PgmImage first;
    if (!video::read_pgm(prefix + "0.pgm", first)) {
      std::fprintf(stderr, "cannot read %s0.pgm\n", prefix.c_str());
      return 1;
    }
    Matrix<float> m(first.height * first.width, count);
    frame_to_column(first, m.view(), 0);
    for (idx fidx = 1; fidx < count; ++fidx) {
      video::PgmImage img;
      const std::string path = prefix + std::to_string(fidx) + ".pgm";
      if (!video::read_pgm(path, img) || img.height != first.height ||
          img.width != first.width) {
        std::fprintf(stderr, "cannot read %s (or geometry mismatch)\n",
                     path.c_str());
        return 1;
      }
      frame_to_column(img, m.view(), fidx);
    }
    std::printf("Robust PCA on %lld real frames (%lld x %lld each)\n",
                static_cast<long long>(count),
                static_cast<long long>(first.height),
                static_cast<long long>(first.width));
    gpusim::Device dev(gpusim::GpuMachineModel::gtx480());
    rpca::RpcaOptions opt;
    opt.max_iterations = static_cast<int>(args.get_int("iterations", 60));
    auto res = rpca::robust_pca(dev, m.view(), opt);
    std::printf("converged: %s after %d iterations (residual %.2e, rank %lld);"
                " %.1f simulated it/s\n",
                res.converged ? "yes" : "no", res.iterations, res.residual,
                static_cast<long long>(res.final_rank),
                1.0 / res.seconds_per_iteration);
    auto bg = video::column_to_frame(res.low_rank.view(), 0, first.height,
                                     first.width);
    video::write_pgm("background0.pgm", bg);
    std::printf("wrote background0.pgm\n");
    return 0;
  }

  video::VideoSpec spec;
  if (args.get_bool("full", false)) {
    spec.height = 288;  // the paper's ViSOR clip geometry
    spec.width = 384;
    spec.frames = 100;
  } else {
    spec.height = 48;
    spec.width = 64;
    spec.frames = args.get_int("frames", 40);
  }
  spec.num_blobs = 3;

  std::printf("Robust PCA background subtraction on a synthetic %lldx%lld "
              "clip, %lld frames (video matrix %lld x %lld)\n\n",
              static_cast<long long>(spec.height),
              static_cast<long long>(spec.width),
              static_cast<long long>(spec.frames),
              static_cast<long long>(spec.pixels()),
              static_cast<long long>(spec.frames));

  auto clip = video::generate_video(spec);

  gpusim::Device dev(gpusim::GpuMachineModel::gtx480());
  rpca::RpcaOptions opt;
  opt.max_iterations = static_cast<int>(args.get_int("iterations", 60));
  opt.tolerance = 1e-6;
  auto res = rpca::robust_pca(dev, clip.matrix.view(), opt);

  std::printf("converged: %s after %d iterations (residual %.2e, "
              "background rank %lld)\n",
              res.converged ? "yes" : "no", res.iterations, res.residual,
              static_cast<long long>(res.final_rank));
  std::printf("simulated GPU time: %.2f s -> %.1f iterations/second "
              "(paper at full scale: 27 it/s with CAQR)\n",
              res.simulated_seconds, 1.0 / res.seconds_per_iteration);

  const auto q = video::evaluate_separation(clip, res.sparse.view(), 0.08f);
  TextTable table({"metric", "value"});
  table.cell("foreground precision").cell(q.precision, 3).end_row();
  table.cell("foreground recall").cell(q.recall, 3).end_row();
  table.cell("foreground F1").cell(q.f1, 3).end_row();
  table.print();

  if (args.get_bool("dump-pgm", false)) {
    dump_pgm("frame0_input.pgm", clip.matrix.view().block(0, 0, spec.pixels(), 1),
             spec.height, spec.width);
    dump_pgm("frame0_background.pgm",
             res.low_rank.view().block(0, 0, spec.pixels(), 1), spec.height,
             spec.width);
    // Foreground: |S| scaled for visibility.
    auto s = Matrix<float>::zeros(spec.pixels(), 1);
    for (idx p = 0; p < spec.pixels(); ++p) {
      s(p, 0) = std::min(1.0f, 4.0f * std::fabs(res.sparse(p, 0)));
    }
    dump_pgm("frame0_foreground.pgm", s.view(), spec.height, spec.width);
  }
  return 0;
}

// Quickstart: factor a tall-skinny matrix with CAQR on the simulated GPU,
// verify the factorization, and inspect the kernel timeline.
//
//   ./quickstart [--rows=20000] [--cols=64] [--model-only]

#include <cstdio>

#include "caqr/caqr.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "gpusim/report.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"

using namespace caqr;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const idx m = args.get_int("rows", 20000);
  const idx n = args.get_int("cols", 64);
  const bool model_only = args.get_bool("model-only", false);

  std::printf("CAQR quickstart: QR of a %lld x %lld single-precision matrix\n",
              static_cast<long long>(m), static_cast<long long>(n));

  // A Device wraps a machine model (NVIDIA C2050 by default) and a mode:
  // Functional runs the arithmetic, ModelOnly advances only the simulated
  // clock (identical timings either way).
  gpusim::Device dev(gpusim::GpuMachineModel::c2050(),
                     model_only ? gpusim::ExecMode::ModelOnly
                                : gpusim::ExecMode::Functional);

  auto a = gaussian_matrix<float>(m, n, /*seed=*/1);
  auto f = caqr_factor(dev, a.view());  // the paper's algorithm, Figure 4

  const double qr_seconds = dev.elapsed_seconds();
  std::printf("simulated factorization time: %.3f ms (%.1f GFLOP/s)\n",
              qr_seconds * 1e3,
              geqrf_flop_count(m, n) / qr_seconds * 1e-9);

  if (!model_only) {
    auto r = f.r();
    auto q = f.form_q(dev, n);  // SORGQR equivalent, also on the device
    std::printf("||Q^T Q - I||_F           = %.2e\n",
                orthogonality_error(q.view()));
    std::printf("||A - Q R||_F / ||A||_F   = %.2e\n",
                factorization_residual(a.view(), q.view(), r.view()));
  }

  std::printf("\nSimulated kernel timeline:\n");
  gpusim::print_profile(dev);
  return 0;
}

// The §V.C autotuning framework in action: "a different algorithm may be
// chosen depending on the matrix size." adaptive_qr() predicts the cost of
// CAQR vs the hybrid blocked-Householder QR from the machine model alone and
// runs the winner. This demo sweeps shapes across the crossover and shows
// the prediction, the selection, and (for moderate sizes) a functional
// verification of the chosen path.
//
//   ./adaptive_qr_demo [--verify-rows=4096]

#include <cstdio>
#include <string>
#include <vector>

#include "caqr/solver.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"

using namespace caqr;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto model = gpusim::GpuMachineModel::c2050();

  std::printf("Adaptive QR (paper §V.C): model-predicted algorithm selection\n\n");

  TextTable table({"matrix", "CAQR (ms)", "hybrid (ms)", "selected"});
  const std::vector<std::pair<idx, idx>> shapes = {
      {1 << 20, 64},   {1 << 20, 192}, {100000, 1024}, {8192, 2048},
      {8192, 4096},    {8192, 8192},   {4096, 4096}};
  for (const auto& [m, n] : shapes) {
    const double t_caqr = predict_caqr_seconds<float>(model, m, n);
    const double t_hybrid = predict_hybrid_seconds<float>(model, m, n);
    table.cell(std::to_string(m) + " x " + std::to_string(n))
        .cell(t_caqr * 1e3, 1)
        .cell(t_hybrid * 1e3, 1)
        .cell(t_caqr <= t_hybrid ? "CAQR" : "hybrid")
        .end_row();
  }
  table.print();

  // Functional check: run both selections on real data and verify.
  const idx vm = args.get_int("verify-rows", 4096);
  for (const idx vn : {idx{32}, std::min<idx>(vm, 512)}) {
    auto a = gaussian_matrix<float>(vm, vn, 7);
    gpusim::Device dev;
    auto res = adaptive_qr(dev, a.view());
    std::printf("\n%lld x %lld: selected %s, simulated %.2f ms, "
                "||Q^T Q - I|| = %.1e, ||A - QR||/||A|| = %.1e\n",
                static_cast<long long>(vm), static_cast<long long>(vn),
                res.used == QrAlgorithm::Caqr ? "CAQR" : "hybrid",
                res.simulated_seconds * 1e3, orthogonality_error(res.q.view()),
                factorization_residual(a.view(), res.q.view(), res.r.view()));
  }
  std::printf("\nThe dashed line of Figure 8 is exactly this decision "
              "boundary.\n");
  return 0;
}

// Linear least squares via CAQR — the paper's headline application class
// (§I: "thousands of rows representing observations and a few tens or
// hundreds of columns representing parameters").
//
// Fits a polynomial to noisy observations by min ||A x - b||_2 using
//   A = Q R;  x = R^{-1} (Q^T b)[0:n]
// and contrasts the conditioning behaviour against the normal-equations
// (CholeskyQR) approach, which squares the condition number.
//
//   ./least_squares [--observations=50000] [--degree=12] [--noise=0.01]

#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/qr_baselines.hpp"
#include "caqr/caqr.hpp"
#include "common/cli.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"
#include "linalg/norms.hpp"

using namespace caqr;

namespace {

// Ground-truth polynomial coefficients c_k = (-0.5)^k / (k + 1).
double truth_coef(idx k) {
  return std::pow(-0.5, static_cast<double>(k)) / static_cast<double>(k + 1);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const idx m = args.get_int("observations", 50000);
  const idx degree = args.get_int("degree", 12);
  const double noise = args.get_double("noise", 1e-4);
  const idx n = degree + 1;

  std::printf("Least squares: fit degree-%lld polynomial to %lld noisy "
              "observations (Vandermonde design matrix, %lld x %lld)\n\n",
              static_cast<long long>(degree), static_cast<long long>(m),
              static_cast<long long>(m), static_cast<long long>(n));

  // Build the Vandermonde system on t in [-1, 1] — ill-conditioned enough at
  // moderate degree to separate QR from normal equations.
  Matrix<double> a(m, n);
  Matrix<double> b(m, 1);
  Rng rng(7);
  for (idx i = 0; i < m; ++i) {
    const double t = -1.0 + 2.0 * static_cast<double>(i) / (m - 1);
    double y = 0, tk = 1;
    for (idx k = 0; k < n; ++k) {
      a(i, k) = tk;
      y += truth_coef(k) * tk;
      tk *= t;
    }
    b(i, 0) = y + noise * rng.normal();
  }

  // --- CAQR solve (on the simulated GPU) ---
  gpusim::Device dev;
  auto f = caqr_factor(dev, a.view());
  auto qtb = b.clone();
  f.apply_qt(dev, qtb.view());
  auto r = f.r();
  std::vector<double> x_qr(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) x_qr[static_cast<std::size_t>(i)] = qtb(i, 0);
  trsv_upper(r.view().block(0, 0, n, n), x_qr.data());

  // --- Normal equations via CholeskyQR for contrast ---
  auto chol = baselines::cholesky_qr(a.view());
  std::vector<double> x_ne(static_cast<std::size_t>(n), 0.0);
  bool ne_ok = chol.ok;
  if (ne_ok) {
    // x = R^-1 Q^T b
    for (idx i = 0; i < n; ++i) {
      x_ne[static_cast<std::size_t>(i)] = dot(m, chol.q.view().col(i), b.view().col(0));
    }
    trsv_upper(chol.r.view(), x_ne.data());
  }

  TextTable table({"k", "truth", "CAQR", ne_ok ? "CholeskyQR" : "CholeskyQR (failed)"});
  double err_qr = 0, err_ne = 0;
  for (idx k = 0; k < n; ++k) {
    const double t = truth_coef(k);
    err_qr = std::max(err_qr, std::fabs(x_qr[static_cast<std::size_t>(k)] - t));
    err_ne = std::max(err_ne, std::fabs(x_ne[static_cast<std::size_t>(k)] - t));
    table.cell(static_cast<long long>(k))
        .cell(t, 6)
        .cell(x_qr[static_cast<std::size_t>(k)], 6)
        .cell(ne_ok ? x_ne[static_cast<std::size_t>(k)] : 0.0, 6)
        .end_row();
  }
  table.print();
  std::printf("\nmax coefficient error: CAQR %.2e, CholeskyQR %.2e\n", err_qr,
              err_ne);
  std::printf("simulated GPU time for the QR solve: %.3f ms\n",
              dev.elapsed_seconds() * 1e3);
  std::printf("CholeskyQR orthogonality defect: %.2e (CAQR Q: Householder-"
              "stable)\n",
              ne_ok ? orthogonality_error(chol.q.view()) : INFINITY);
  return 0;
}

// Tests for the CAQR kernel numerical cores and their exact operation
// counts. The flop-count functions must match the functional execution
// operation-for-operation (that equivalence is what makes ModelOnly timing
// exact), verified here with a counting scalar type.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "kernels/block_ops.hpp"
#include "kernels/cost_params.hpp"
#include "kernels/kernels.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/random_matrix.hpp"

namespace caqr {
namespace {

using kernels::block_apply_qt;
using kernels::block_apply_qt_flops;
using kernels::block_geqr2;
using kernels::block_geqr2_flops;
using kernels::stacked_apply_qt;
using kernels::stacked_apply_qt_flops;
using kernels::stacked_geqr2;
using kernels::stacked_geqr2_flops;

// ---------------------------------------------------------------------------
// Counting scalar: every mul/add/sub/div/sqrt bumps a global counter.
// ---------------------------------------------------------------------------

struct Counted {
  double v = 0;
  static inline long long ops = 0;

  Counted() = default;
  Counted(double x) : v(x) {}  // NOLINT: implicit by design

  friend Counted operator+(Counted a, Counted b) { ++ops; return {a.v + b.v}; }
  friend Counted operator-(Counted a, Counted b) { ++ops; return {a.v - b.v}; }
  friend Counted operator*(Counted a, Counted b) { ++ops; return {a.v * b.v}; }
  friend Counted operator/(Counted a, Counted b) { ++ops; return {a.v / b.v}; }
  friend Counted operator-(Counted a) { return {-a.v}; }  // sign flip: free
  Counted& operator+=(Counted b) { ++ops; v += b.v; return *this; }
  Counted& operator-=(Counted b) { ++ops; v -= b.v; return *this; }
  Counted& operator*=(Counted b) { ++ops; v *= b.v; return *this; }
  friend bool operator==(Counted a, Counted b) { return a.v == b.v; }
  friend bool operator>=(Counted a, Counted b) { return a.v >= b.v; }
  friend Counted sqrt(Counted a) { ++ops; return {std::sqrt(a.v)}; }
};

template <typename Fn>
long long count_ops(Fn&& fn) {
  Counted::ops = 0;
  fn();
  return Counted::ops;
}

Matrix<Counted> counted_from(ConstMatrixView<double> src) {
  Matrix<Counted> m(src.rows(), src.cols());
  for (idx j = 0; j < src.cols(); ++j) {
    for (idx i = 0; i < src.rows(); ++i) m(i, j) = Counted(src(i, j));
  }
  return m;
}

// ---------------------------------------------------------------------------
// Numerical equivalence with the reference LAPACK-style routines.
// ---------------------------------------------------------------------------

struct BlockShape {
  idx h, w;
};

class BlockGeqr2Shapes : public ::testing::TestWithParam<BlockShape> {};

TEST_P(BlockGeqr2Shapes, MatchesReferenceGeqr2) {
  const auto [h, w] = GetParam();
  auto a0 = gaussian_matrix<double>(h, w, 11);
  auto a_ref = a0.clone();
  auto a_fast = a0.clone();
  std::vector<double> tau_ref(static_cast<std::size_t>(w)), work(static_cast<std::size_t>(w));
  std::vector<double> tau_fast(static_cast<std::size_t>(w));
  geqr2(a_ref.view(), tau_ref.data(), work.data());
  block_geqr2(a_fast.view(), tau_fast.data());

  for (idx j = 0; j < w; ++j) {
    for (idx i = 0; i < h; ++i) {
      ASSERT_NEAR(a_fast(i, j), a_ref(i, j), 1e-11) << i << "," << j;
    }
  }
  const idx kmax = std::min(h, w);
  for (idx k = 0; k < kmax; ++k) {
    ASSERT_NEAR(tau_fast[static_cast<std::size_t>(k)],
                tau_ref[static_cast<std::size_t>(k)], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BlockGeqr2Shapes,
                         ::testing::Values(BlockShape{1, 1}, BlockShape{16, 16},
                                           BlockShape{64, 16}, BlockShape{128, 16},
                                           BlockShape{65, 16}, BlockShape{32, 4},
                                           BlockShape{200, 8}, BlockShape{17, 17}));

TEST(BlockApplyQt, ReproducesRFromOriginalBlock) {
  const idx h = 96, w = 12;
  auto a0 = gaussian_matrix<double>(h, w, 5);
  auto f = a0.clone();
  std::vector<double> tau(static_cast<std::size_t>(w));
  block_geqr2(f.view(), tau.data());

  // Applying Q^T to the original block must reproduce [R; 0].
  auto c = a0.clone();
  block_apply_qt(f.as_const(), tau.data(), c.view());
  for (idx j = 0; j < w; ++j) {
    for (idx i = 0; i < h; ++i) {
      const double expect = i <= j ? f(i, j) : 0.0;
      ASSERT_NEAR(c(i, j), expect, 1e-11);
    }
  }
}

TEST(BlockApplyQ, InverseOfApplyQt) {
  const idx h = 80, w = 16;
  auto a = gaussian_matrix<double>(h, w, 6);
  auto f = a.clone();
  std::vector<double> tau(static_cast<std::size_t>(w));
  block_geqr2(f.view(), tau.data());

  auto c0 = gaussian_matrix<double>(h, 7, 8);
  auto c = c0.clone();
  block_apply_qt(f.as_const(), tau.data(), c.view());
  kernels::block_apply_q(f.as_const(), tau.data(), c.view());
  for (idx j = 0; j < 7; ++j) {
    for (idx i = 0; i < h; ++i) ASSERT_NEAR(c(i, j), c0(i, j), 1e-11);
  }
}

// ---------------------------------------------------------------------------
// Stacked-triangle (tree combine) kernels.
// ---------------------------------------------------------------------------

// Builds a stack of k random upper-triangular w x w blocks.
Matrix<double> random_triangle_stack(idx w, idx k, std::uint64_t seed) {
  auto stack = Matrix<double>::zeros(k * w, w);
  Rng rng(seed);
  for (idx b = 0; b < k; ++b) {
    for (idx j = 0; j < w; ++j) {
      for (idx i = 0; i <= j; ++i) {
        stack(b * w + i, j) = rng.uniform(-1.0, 1.0);
      }
    }
  }
  return stack;
}

class StackedQrParams : public ::testing::TestWithParam<std::tuple<idx, idx>> {};

TEST_P(StackedQrParams, MatchesDenseQrUpToSigns) {
  const auto [w, k] = GetParam();
  auto s0 = random_triangle_stack(w, k, 21);

  // Structured QR.
  auto s = s0.clone();
  std::vector<double> tau(static_cast<std::size_t>(w));
  std::vector<double> scratch(static_cast<std::size_t>(1 + (k - 1) * w));
  stacked_geqr2(s.view(), w, k, tau.data(), scratch.data());

  // Dense reference QR on the same stack.
  auto d = s0.clone();
  std::vector<double> tau_d(static_cast<std::size_t>(w)), work(static_cast<std::size_t>(w));
  geqr2(d.view(), tau_d.data(), work.data());

  auto r_s = extract_r(s.block(0, 0, w, w));
  auto r_d = extract_r(d.block(0, 0, w, w));
  EXPECT_LT(r_factor_difference(r_d.view(), r_s.view()), 1e-12);

  // The structured result must preserve the sparsity pattern: entries of
  // lower blocks strictly below their local diagonal stay exactly zero.
  for (idx b = 1; b < k; ++b) {
    for (idx j = 0; j < w; ++j) {
      for (idx i = j + 1; i < w; ++i) {
        ASSERT_EQ(s(b * w + i, j), 0.0) << "block " << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, StackedQrParams,
                         ::testing::Combine(::testing::Values<idx>(1, 4, 8, 16),
                                            ::testing::Values<idx>(2, 3, 4, 8)));

TEST(StackedQr, SingletonStackIsPassThrough) {
  const idx w = 8;
  auto s0 = random_triangle_stack(w, 1, 3);
  auto s = s0.clone();
  std::vector<double> tau(static_cast<std::size_t>(w), -1.0);
  std::vector<double> scratch(1);
  stacked_geqr2(s.view(), w, 1, tau.data(), scratch.data());
  for (idx j = 0; j < w; ++j) {
    EXPECT_EQ(tau[static_cast<std::size_t>(j)], 0.0);
    for (idx i = 0; i < w; ++i) ASSERT_EQ(s(i, j), s0(i, j));
  }
}

TEST(StackedApplyQt, ReproducesCombinedRFromStack) {
  const idx w = 8, k = 4;
  auto s0 = random_triangle_stack(w, k, 31);
  auto s = s0.clone();
  std::vector<double> tau(static_cast<std::size_t>(w));
  std::vector<double> scratch(static_cast<std::size_t>(1 + (k - 1) * w));
  stacked_geqr2(s.view(), w, k, tau.data(), scratch.data());

  // Q^T applied to the original stack must give [R; 0] (structured).
  auto c = s0.clone();
  stacked_apply_qt(s.as_const(), w, k, tau.data(), c.view());
  for (idx j = 0; j < w; ++j) {
    for (idx i = 0; i < k * w; ++i) {
      const double expect = i <= j ? s(i, j) : 0.0;
      ASSERT_NEAR(c(i, j), expect, 1e-12) << i << "," << j;
    }
  }
}

TEST(StackedApplyQ, InverseOfApplyQt) {
  const idx w = 6, k = 3;
  auto s = random_triangle_stack(w, k, 41);
  std::vector<double> tau(static_cast<std::size_t>(w));
  std::vector<double> scratch(static_cast<std::size_t>(1 + (k - 1) * w));
  stacked_geqr2(s.view(), w, k, tau.data(), scratch.data());

  auto c0 = gaussian_matrix<double>(k * w, 5, 42);
  auto c = c0.clone();
  stacked_apply_qt(s.as_const(), w, k, tau.data(), c.view());
  kernels::stacked_apply_q(s.as_const(), w, k, tau.data(), c.view());
  for (idx j = 0; j < 5; ++j) {
    for (idx i = 0; i < k * w; ++i) ASSERT_NEAR(c(i, j), c0(i, j), 1e-12);
  }
}

// Structured combine must cost strictly fewer flops than a dense QR of the
// same stack — this is TSQR's sparsity saving.
TEST(StackedQr, StructuredFlopsBelowDense) {
  for (const idx w : {4, 8, 16, 32}) {
    for (const idx k : {2, 4, 8}) {
      EXPECT_LT(stacked_geqr2_flops(w, k), block_geqr2_flops(k * w, w))
          << "w=" << w << " k=" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Exact operation counting.
// ---------------------------------------------------------------------------

class FlopCountShapes : public ::testing::TestWithParam<BlockShape> {};

TEST_P(FlopCountShapes, BlockGeqr2CountIsExact) {
  const auto [h, w] = GetParam();
  auto a = counted_from(gaussian_matrix<double>(h, w, 7).view());
  std::vector<Counted> tau(static_cast<std::size_t>(w));
  const long long ops =
      count_ops([&] { block_geqr2(a.view(), tau.data()); });
  EXPECT_EQ(static_cast<double>(ops), block_geqr2_flops(h, w));
}

TEST_P(FlopCountShapes, BlockApplyQtCountIsExact) {
  const auto [h, w] = GetParam();
  auto f = counted_from(gaussian_matrix<double>(h, w, 7).view());
  std::vector<Counted> tau(static_cast<std::size_t>(w));
  block_geqr2(f.view(), tau.data());

  const idx ncols = 5;
  auto c = counted_from(gaussian_matrix<double>(h, ncols, 9).view());
  const long long ops = count_ops(
      [&] { block_apply_qt(f.as_const(), tau.data(), c.view()); });
  EXPECT_EQ(static_cast<double>(ops), block_apply_qt_flops(h, w, ncols));
}

INSTANTIATE_TEST_SUITE_P(Shapes, FlopCountShapes,
                         ::testing::Values(BlockShape{16, 16}, BlockShape{64, 16},
                                           BlockShape{128, 16}, BlockShape{33, 7},
                                           BlockShape{128, 32}, BlockShape{12, 12}));

TEST(FlopCount, StackedGeqr2CountIsExact) {
  for (const idx w : {4, 8, 16}) {
    for (const idx k : {2, 4}) {
      auto s_d = random_triangle_stack(w, k, 17);
      auto s = counted_from(s_d.view());
      std::vector<Counted> tau(static_cast<std::size_t>(w));
      std::vector<Counted> scratch(static_cast<std::size_t>(1 + (k - 1) * w));
      const long long ops = count_ops(
          [&] { stacked_geqr2(s.view(), w, k, tau.data(), scratch.data()); });
      EXPECT_EQ(static_cast<double>(ops), stacked_geqr2_flops(w, k))
          << "w=" << w << " k=" << k;
    }
  }
}

TEST(FlopCount, StackedApplyQtCountIsExact) {
  const idx w = 8, k = 4, ncols = 6;
  auto s = counted_from(random_triangle_stack(w, k, 19).view());
  std::vector<Counted> tau(static_cast<std::size_t>(w));
  std::vector<Counted> scratch(static_cast<std::size_t>(1 + (k - 1) * w));
  stacked_geqr2(s.view(), w, k, tau.data(), scratch.data());

  auto c = counted_from(gaussian_matrix<double>(k * w, ncols, 23).view());
  const long long ops = count_ops(
      [&] { stacked_apply_qt(s.as_const(), w, k, tau.data(), c.view()); });
  EXPECT_EQ(static_cast<double>(ops), stacked_apply_qt_flops(w, k, ncols));
}

// The kernel structs' reported flops must equal the numeric cores' counts
// (the same functions back both, but this pins the wiring: offsets, tile
// decomposition, per-block dims).
TEST(KernelStats, FactorKernelFlopsMatchFlopFunctions) {
  auto panel = Matrix<float>::shape_only(300, 16);
  std::vector<idx> offsets = {0, 128, 300};
  std::vector<float> taus(2 * 16);
  kernels::FactorKernel<float> k{
      panel.view(), &offsets, taus.data(),
      kernels::cost_params(kernels::ReductionVariant::RegisterSerialTransposed),
      8.0, 3.0, false};
  EXPECT_DOUBLE_EQ(k.block_stats(0).flops, block_geqr2_flops(128, 16));
  EXPECT_DOUBLE_EQ(k.block_stats(1).flops, block_geqr2_flops(172, 16));
}

TEST(KernelStats, ApplyKernelFlopsMatchTileDecomposition) {
  auto panel = Matrix<float>::shape_only(256, 16);
  auto trailing = Matrix<float>::shape_only(256, 40);  // tiles: 16, 16, 8
  std::vector<idx> offsets = {0, 128, 256};
  std::vector<float> taus(2 * 16);
  kernels::ApplyQtHKernel<float> k{
      panel.view(), &offsets, taus.data(), trailing.view(), 16,
      kernels::cost_params(kernels::ReductionVariant::RegisterSerialTransposed),
      8.0, 3.0, false, true};
  ASSERT_EQ(k.num_blocks(), 6);
  // Block 2 of row-block 0: the ragged 8-wide tile.
  EXPECT_DOUBLE_EQ(k.block_stats(2).flops, block_apply_qt_flops(128, 16, 8));
  EXPECT_DOUBLE_EQ(k.block_stats(0).flops, block_apply_qt_flops(128, 16, 16));
}

// ---------------------------------------------------------------------------
// Cost parameterization sanity.
// ---------------------------------------------------------------------------

TEST(CostParams, VariantLadderIsMonotone) {
  using kernels::ReductionVariant;
  const auto v1 = kernels::cost_params(ReductionVariant::SmemParallelReduction);
  const auto v2 = kernels::cost_params(ReductionVariant::SmemSerialReduction);
  const auto v3 = kernels::cost_params(ReductionVariant::RegisterSerialReduction);
  const auto v4 = kernels::cost_params(ReductionVariant::RegisterSerialTransposed);
  // Each tuning step must strictly reduce the dominant cost terms.
  EXPECT_GT(v1.issue_mult, v2.issue_mult);
  EXPECT_GT(v2.smem_per_fma32, v3.smem_per_fma32);
  EXPECT_GT(v3.smem_per_fma32, v4.smem_per_fma32);
}

TEST(CostParams, VariantNames) {
  using kernels::ReductionVariant;
  EXPECT_STREQ(kernels::variant_name(ReductionVariant::RegisterSerialTransposed),
               "register_serial_transposed");
  EXPECT_STREQ(kernels::variant_name(ReductionVariant::SmemParallelReduction),
               "smem_parallel_reduction");
}

// ---------------------------------------------------------------------------
// Contiguity staging: FactorKernel / ApplyQtHKernel stage strided tall-panel
// tiles into contiguous arena buffers before the reflector sweeps. The
// staged path must be BIT-identical to running the numerical core directly
// on the strided view — same scalar operations, same order — including on
// ill-scaled data that trips the xLARFG rescue path.
// ---------------------------------------------------------------------------

template <typename T>
Matrix<T> scaled_panel(idx m, idx n, int seed, double scale) {
  auto a = gaussian_matrix<T>(m, n, seed);
  for (idx j = 0; j < n; ++j) {
    // Alternate extreme column scalings: underflow-adjacent, 1, overflow-
    // adjacent — the stress sweep's 1e±300 shapes.
    const double s = j % 3 == 0 ? scale : (j % 3 == 1 ? 1.0 : 1.0 / scale);
    for (idx i = 0; i < m; ++i) {
      a(i, j) = static_cast<T>(static_cast<double>(a(i, j)) * s);
    }
  }
  return a;
}

TEST(StagedKernels, FactorBitIdenticalToUnstagedOnStridedPanel) {
  for (const double scale : {1.0, 1e300, 1e-300}) {
    const idx m = 256, w = 12;
    auto panel = scaled_panel<double>(m, w, 7, scale);
    auto ref = Matrix<double>::from(panel.view().as_const());

    const std::vector<idx> offsets = {0, 64, 128, 192, m};
    std::vector<double> taus(4 * static_cast<std::size_t>(w), 0.0);
    kernels::FactorKernel<double> k{panel.view(), &offsets, taus.data(),
                                    kernels::cost_params(
                                        kernels::ReductionVariant::
                                            RegisterSerialTransposed),
                                    8.0, 1.0};
    for (idx b = 0; b < k.num_blocks(); ++b) k.run_block(b);  // staged path

    // Reference: the raw numerical core on each strided block view.
    std::vector<double> rtaus(4 * static_cast<std::size_t>(w), 0.0);
    for (idx b = 0; b < 4; ++b) {
      block_geqr2(ref.view().block(offsets[static_cast<std::size_t>(b)], 0,
                                   offsets[static_cast<std::size_t>(b) + 1] -
                                       offsets[static_cast<std::size_t>(b)],
                                   w),
                  rtaus.data() + b * w);
    }
    for (idx j = 0; j < w; ++j) {
      for (idx i = 0; i < m; ++i) {
        ASSERT_EQ(panel(i, j), ref(i, j))
            << "scale " << scale << " at (" << i << "," << j << ")";
      }
    }
    for (std::size_t t = 0; t < taus.size(); ++t) {
      ASSERT_EQ(taus[t], rtaus[t]) << "tau " << t << " scale " << scale;
    }
  }
}

TEST(StagedKernels, ApplyQtBitIdenticalToUnstagedOnStridedTrailing) {
  for (const double scale : {1.0, 1e300, 1e-300}) {
    const idx m = 192, w = 8, nc = 20;
    auto panel = scaled_panel<double>(m, w, 11, scale);
    const std::vector<idx> offsets = {0, 96, m};
    std::vector<double> taus(2 * static_cast<std::size_t>(w), 0.0);
    kernels::FactorKernel<double> fk{panel.view(), &offsets, taus.data(),
                                     kernels::cost_params(
                                         kernels::ReductionVariant::
                                             RegisterSerialTransposed),
                                     8.0, 1.0};
    for (idx b = 0; b < fk.num_blocks(); ++b) fk.run_block(b);

    auto trailing = scaled_panel<double>(m, nc, 13, scale);
    auto ref = Matrix<double>::from(trailing.view().as_const());

    kernels::ApplyQtHKernel<double> ak{panel.view().as_const(), &offsets,
                                       taus.data(), trailing.view(), 16,
                                       kernels::cost_params(
                                           kernels::ReductionVariant::
                                               RegisterSerialTransposed),
                                       8.0, 1.0, false, true};
    for (idx b = 0; b < ak.num_blocks(); ++b) ak.run_block(b);  // staged

    // Reference: raw core on the strided views, same tile decomposition.
    for (idx b = 0; b < 2; ++b) {
      const idx r0 = offsets[static_cast<std::size_t>(b)];
      const idx h = offsets[static_cast<std::size_t>(b) + 1] - r0;
      for (idx c0 = 0; c0 < nc; c0 += 16) {
        const idx tc = std::min<idx>(16, nc - c0);
        block_apply_qt(panel.view().as_const().block(r0, 0, h, w),
                       taus.data() + b * w, ref.view().block(r0, c0, h, tc));
      }
    }
    for (idx j = 0; j < nc; ++j) {
      for (idx i = 0; i < m; ++i) {
        ASSERT_EQ(trailing(i, j), ref(i, j))
            << "scale " << scale << " at (" << i << "," << j << ")";
      }
    }
  }
}

}  // namespace
}  // namespace caqr

// Tests for Golub-Kahan bidiagonalization and the two-phase SVD.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/bidiag.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"

namespace caqr {
namespace {

struct BidiagShape {
  idx m, n;
};

class BidiagShapes : public ::testing::TestWithParam<BidiagShape> {};

TEST_P(BidiagShapes, ReconstructsAFromFactors) {
  const auto [m, n] = GetParam();
  auto a = gaussian_matrix<double>(m, n, 41);
  auto bi = bidiagonalize(a.clone());
  auto u = form_u(bi);
  auto v = form_v(bi);

  // U and V orthonormal.
  EXPECT_LT(orthogonality_error(u.view()), 1e-12);
  EXPECT_LT(orthogonality_error(v.view()), 1e-12);

  // A == U B V^T.
  auto b = Matrix<double>::zeros(n, n);
  for (idx i = 0; i < n; ++i) {
    b(i, i) = bi.d[static_cast<std::size_t>(i)];
    if (i + 1 < n) b(i, i + 1) = bi.e[static_cast<std::size_t>(i)];
  }
  auto ub = Matrix<double>::zeros(m, n);
  gemm(Trans::No, Trans::No, 1.0, u.view(), b.view(), 0.0, ub.view());
  auto recon = Matrix<double>::zeros(m, n);
  gemm(Trans::No, Trans::Yes, 1.0, ub.view(), v.view(), 0.0, recon.view());
  double num = 0, den = 0;
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      num += std::pow(recon(i, j) - a(i, j), 2);
      den += std::pow(a(i, j), 2);
    }
  }
  EXPECT_LT(std::sqrt(num / den), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BidiagShapes,
                         ::testing::Values(BidiagShape{1, 1}, BidiagShape{5, 2},
                                           BidiagShape{8, 8}, BidiagShape{50, 12},
                                           BidiagShape{200, 30},
                                           BidiagShape{33, 33},
                                           BidiagShape{64, 3}));

TEST(Bidiag, UtAVIsActuallyBidiagonal) {
  const idx m = 40, n = 10;
  auto a = gaussian_matrix<double>(m, n, 43);
  auto bi = bidiagonalize(a.clone());
  auto u = form_u(bi);
  auto v = form_v(bi);
  // B = U^T A V must vanish off the two diagonals.
  auto av = Matrix<double>::zeros(m, n);
  gemm(Trans::No, Trans::No, 1.0, a.view(), v.view(), 0.0, av.view());
  auto b = Matrix<double>::zeros(n, n);
  gemm(Trans::Yes, Trans::No, 1.0, u.view(), av.view(), 0.0, b.view());
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      if (i == j) {
        EXPECT_NEAR(b(i, j), bi.d[static_cast<std::size_t>(i)], 1e-11);
      } else if (j == i + 1) {
        EXPECT_NEAR(b(i, j), bi.e[static_cast<std::size_t>(i)], 1e-11);
      } else {
        EXPECT_NEAR(b(i, j), 0.0, 1e-11) << i << "," << j;
      }
    }
  }
}

TEST(TwoPhaseSvd, MatchesJacobiSingularValues) {
  for (const auto& [m, n] : {std::pair<idx, idx>{30, 8}, {100, 20}, {16, 16}}) {
    auto a = gaussian_matrix<double>(m, n, static_cast<std::uint64_t>(m + n));
    auto two = two_phase_svd(a.view());
    auto jac = jacobi_svd(a.view());
    ASSERT_TRUE(two.converged);
    for (idx i = 0; i < n; ++i) {
      ASSERT_NEAR(two.sigma[static_cast<std::size_t>(i)],
                  jac.sigma[static_cast<std::size_t>(i)],
                  1e-11 * (1.0 + jac.sigma[0]))
          << m << "x" << n;
    }
  }
}

TEST(TwoPhaseSvd, FactorsReconstructA) {
  const idx m = 80, n = 14;
  auto a = gaussian_matrix<double>(m, n, 47);
  auto f = two_phase_svd(a.view());
  EXPECT_LT(orthogonality_error(f.u.view()), 1e-12);
  EXPECT_LT(orthogonality_error(f.v.view()), 1e-12);
  double num = 0, den = 0;
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      double s = 0;
      for (idx p = 0; p < n; ++p) {
        s += f.u(i, p) * f.sigma[static_cast<std::size_t>(p)] * f.v(j, p);
      }
      num += std::pow(a(i, j) - s, 2);
      den += std::pow(a(i, j), 2);
    }
  }
  EXPECT_LT(std::sqrt(num / den), 1e-12);
}

TEST(TwoPhaseSvd, IllConditionedSigmasAccurate) {
  auto a = matrix_with_condition<double>(120, 10, 1e9, 48);
  auto two = two_phase_svd(a.view());
  // Largest and smallest recovered to appropriate relative accuracy.
  EXPECT_NEAR(two.sigma.front(), 1.0, 1e-10);
  EXPECT_NEAR(two.sigma.back() / 1e-9, 1.0, 1e-4);
}

TEST(TwoPhaseSvd, FloatPrecision) {
  auto a = gaussian_matrix<float>(200, 24, 49);
  auto f = two_phase_svd(a.view());
  auto jac = jacobi_svd(a.view());
  for (idx i = 0; i < 24; ++i) {
    ASSERT_NEAR(f.sigma[static_cast<std::size_t>(i)],
                jac.sigma[static_cast<std::size_t>(i)], 2e-4 * jac.sigma[0]);
  }
}

TEST(ApplyHouseholderRight, MatchesLeftTransposed) {
  // (H C^T)^T == C H for symmetric H: verify right application against the
  // left primitive.
  const idx rows = 7, len = 5;
  auto c = gaussian_matrix<double>(rows, len, 50);
  std::vector<double> v = {0.3, -0.8, 0.1, 0.5};  // tail, v[0]=1 implicit
  const double tau = 2.0 / (1.0 + nrm2_squared<double>(4, v.data()));

  auto c1 = c.clone();
  apply_householder_right(len, tau, v.data(), c1.view());

  // Reference: transpose, apply from left, transpose back.
  Matrix<double> ct(len, rows);
  for (idx i = 0; i < rows; ++i) {
    for (idx j = 0; j < len; ++j) ct(j, i) = c(i, j);
  }
  std::vector<double> work(static_cast<std::size_t>(rows));
  apply_householder_left(len, tau, v.data(), ct.view(), work.data());
  for (idx i = 0; i < rows; ++i) {
    for (idx j = 0; j < len; ++j) ASSERT_NEAR(c1(i, j), ct(j, i), 1e-13);
  }
}

}  // namespace
}  // namespace caqr

// Tests for the flat LAPACK-convention API: info-code argument validation,
// LAPACK storage semantics (lda/ldb strides, in-place results), numerical
// agreement with the underlying routines, and the CAQR handle lifecycle.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "api/lapack_compat.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/random_matrix.hpp"

namespace caqr {
namespace {

using api::caqr_dgels;
using api::caqr_dgeqrf;
using api::caqr_dorgqr;
using api::caqr_dormqr;
using api::caqr_sgeqrf;
using api::lapack_int;

TEST(LapackApi, GeqrfArgumentValidation) {
  std::vector<double> a(10), tau(2);
  EXPECT_EQ(caqr_dgeqrf(-1, 2, a.data(), 5, tau.data()), -1);
  EXPECT_EQ(caqr_dgeqrf(5, -2, a.data(), 5, tau.data()), -2);
  EXPECT_EQ(caqr_dgeqrf(5, 2, nullptr, 5, tau.data()), -3);
  EXPECT_EQ(caqr_dgeqrf(5, 2, a.data(), 3, tau.data()), -4);  // lda < m
  EXPECT_EQ(caqr_dgeqrf(5, 2, a.data(), 5, nullptr), -5);
  EXPECT_EQ(caqr_dgeqrf(0, 0, nullptr, 1, nullptr), 0);  // empty: OK
}

TEST(LapackApi, GeqrfMatchesLibraryRoutine) {
  const lapack_int m = 30, n = 8, lda = 35;  // padded leading dimension
  std::vector<double> a(static_cast<std::size_t>(lda * n));
  auto ref = gaussian_matrix<double>(m, n, 71);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) a[static_cast<std::size_t>(i + j * lda)] = ref(i, j);
  }
  std::vector<double> tau(static_cast<std::size_t>(n));
  ASSERT_EQ(caqr_dgeqrf(m, n, a.data(), lda, tau.data()), 0);

  auto direct = ref.clone();
  std::vector<double> tau2(static_cast<std::size_t>(n));
  geqrf(direct.view(), tau2.data());
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      ASSERT_NEAR(a[static_cast<std::size_t>(i + j * lda)], direct(i, j), 1e-13);
    }
  }
}

TEST(LapackApi, OrgqrProducesOrthonormalColumns) {
  const lapack_int m = 40, n = 10;
  auto a = gaussian_matrix<double>(m, n, 72);
  std::vector<double> tau(static_cast<std::size_t>(n));
  ASSERT_EQ(caqr_dgeqrf(m, n, a.data(), m, tau.data()), 0);
  ASSERT_EQ(caqr_dorgqr(m, n, a.data(), m, tau.data()), 0);
  EXPECT_LT(orthogonality_error(ConstMatrixView<double>(a.data(), m, n, m)),
            1e-13);
}

TEST(LapackApi, OrgqrValidation) {
  std::vector<double> a(10), tau(2);
  EXPECT_EQ(caqr_dorgqr(-1, 1, a.data(), 1, tau.data()), -1);
  EXPECT_EQ(caqr_dorgqr(2, 5, a.data(), 2, tau.data()), -2);  // k > m
  EXPECT_EQ(caqr_dorgqr(5, 2, a.data(), 2, tau.data()), -4);  // lda < m
}

TEST(LapackApi, OrmqrAppliesQtThenQRoundTrips) {
  const lapack_int m = 25, k = 6, nc = 3;
  auto a = gaussian_matrix<double>(m, k, 73);
  std::vector<double> tau(static_cast<std::size_t>(k));
  ASSERT_EQ(caqr_dgeqrf(m, k, a.data(), m, tau.data()), 0);

  auto c0 = gaussian_matrix<double>(m, nc, 74);
  auto c = c0.clone();
  ASSERT_EQ(caqr_dormqr('T', m, nc, k, a.data(), m, tau.data(), c.data(), m), 0);
  ASSERT_EQ(caqr_dormqr('N', m, nc, k, a.data(), m, tau.data(), c.data(), m), 0);
  for (idx j = 0; j < nc; ++j) {
    for (idx i = 0; i < m; ++i) ASSERT_NEAR(c(i, j), c0(i, j), 1e-12);
  }
  EXPECT_EQ(caqr_dormqr('X', m, nc, k, a.data(), m, tau.data(), c.data(), m),
            -1);
}

TEST(LapackApi, GelsSolvesLeastSquaresInPlace) {
  const lapack_int m = 50, n = 6, nrhs = 2;
  auto a = gaussian_matrix<double>(m, n, 75);
  auto xt = gaussian_matrix<double>(n, nrhs, 76);
  auto b = Matrix<double>::zeros(m, nrhs);
  gemm(Trans::No, Trans::No, 1.0, a.view(), xt.view(), 0.0, b.view());

  auto a_io = a.clone();
  auto b_io = b.clone();
  ASSERT_EQ(caqr_dgels(m, n, nrhs, a_io.data(), m, b_io.data(), m), 0);
  for (idx j = 0; j < nrhs; ++j) {
    for (idx i = 0; i < n; ++i) ASSERT_NEAR(b_io(i, j), xt(i, j), 1e-11);
  }
}

TEST(LapackApi, GelsRejectsUnderdetermined) {
  std::vector<double> a(20), b(10);
  EXPECT_EQ(caqr_dgels(2, 5, 1, a.data(), 2, b.data(), 2), -2);
}

TEST(LapackApi, SinglePrecisionVariant) {
  const lapack_int m = 60, n = 12;
  auto ref = gaussian_matrix<float>(m, n, 77);
  auto a = ref.clone();
  std::vector<float> tau(static_cast<std::size_t>(n));
  ASSERT_EQ(caqr_sgeqrf(m, n, a.data(), m, tau.data()), 0);
  ASSERT_EQ(api::caqr_sorgqr(m, n, a.data(), m, tau.data()), 0);
  EXPECT_LT(orthogonality_error(ConstMatrixView<float>(a.data(), m, n, m)),
            1e-4);
}

TEST(LapackApi, HandleLifecycleAndResults) {
  const lapack_int m = 200, n = 16;
  auto a = gaussian_matrix<float>(m, n, 78);
  api::CaqrHandle* h = api::caqr_handle_sfactor(m, n, a.data(), m);
  ASSERT_NE(h, nullptr);

  // R matches the reference factorization up to signs.
  std::vector<float> r(static_cast<std::size_t>(n * n));
  ASSERT_EQ(api::caqr_handle_extract_r(h, r.data(), n), 0);
  auto ref = a.clone();
  std::vector<float> tau(static_cast<std::size_t>(n));
  geqrf(ref.view(), tau.data());
  EXPECT_LT(r_factor_difference(extract_r(ref.view()).view(),
                                ConstMatrixView<float>(r.data(), n, n, n)),
            1e-4);

  // apply Q^T then Q round-trips.
  auto c0 = gaussian_matrix<float>(m, 2, 79);
  auto c = c0.clone();
  ASSERT_EQ(api::caqr_handle_apply_q(h, 'T', c.data(), m, 2), 0);
  ASSERT_EQ(api::caqr_handle_apply_q(h, 'N', c.data(), m, 2), 0);
  for (idx j = 0; j < 2; ++j) {
    for (idx i = 0; i < m; ++i) ASSERT_NEAR(c(i, j), c0(i, j), 1e-3);
  }

  // Explicit Q orthonormal.
  std::vector<float> q(static_cast<std::size_t>(m * n));
  ASSERT_EQ(api::caqr_handle_form_q(h, q.data(), m, n), 0);
  EXPECT_LT(orthogonality_error(ConstMatrixView<float>(q.data(), m, n, m)),
            1e-4);

  EXPECT_GT(api::caqr_handle_simulated_seconds(h), 0.0);
  api::caqr_handle_destroy(h);
}

TEST(LapackApi, HandleValidation) {
  EXPECT_EQ(api::caqr_handle_sfactor(0, 5, nullptr, 1), nullptr);
  EXPECT_EQ(api::caqr_handle_extract_r(nullptr, nullptr, 1), -1);
  EXPECT_EQ(api::caqr_handle_apply_q(nullptr, 'T', nullptr, 1, 1), -1);
  EXPECT_EQ(api::caqr_handle_simulated_seconds(nullptr), 0.0);
  api::caqr_handle_destroy(nullptr);  // must be safe

  auto a = gaussian_matrix<float>(10, 4, 80);
  api::CaqrHandle* h = api::caqr_handle_sfactor(10, 4, a.data(), 10);
  ASSERT_NE(h, nullptr);
  std::vector<float> buf(100);
  EXPECT_EQ(api::caqr_handle_extract_r(h, buf.data(), 2), -3);   // ldr < k
  EXPECT_EQ(api::caqr_handle_apply_q(h, 'X', buf.data(), 10, 1), -2);
  EXPECT_EQ(api::caqr_handle_form_q(h, buf.data(), 10, 0), -4);
  api::caqr_handle_destroy(h);
}

}  // namespace
}  // namespace caqr

// Configuration-product sweep: CAQR must produce a valid factorization for
// every combination of panel width, block height, tree arity and reduction
// variant — each combination exercises different grid/tree code paths
// (singleton groups, ragged tails, deep vs flat trees, cost variants).

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "caqr/caqr.hpp"
#include "gpusim/device.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/random_matrix.hpp"

namespace caqr {
namespace {

using gpusim::Device;
using kernels::ReductionVariant;

class CaqrConfigProduct
    : public ::testing::TestWithParam<
          std::tuple<idx /*panel_width*/, idx /*block_rows*/, idx /*arity*/,
                     int /*variant*/>> {};

TEST_P(CaqrConfigProduct, FactorizationValid) {
  const auto [w, h, arity, variant_i] = GetParam();
  if (h < w) GTEST_SKIP() << "block_rows must be >= panel_width";

  CaqrOptions opt;
  opt.panel_width = w;
  opt.tsqr.block_rows = h;
  opt.tsqr.arity = arity;
  opt.tsqr.variant = static_cast<ReductionVariant>(variant_i);

  const idx m = 777, n = 3 * w;  // ragged height, multiple panels
  auto a = gaussian_matrix<double>(m, n, static_cast<std::uint64_t>(
                                             w * 131 + h * 17 + arity));
  Device dev;
  auto f = caqr_factor(dev, a.view(), opt);

  // R agrees with the reference.
  auto ref = a.clone();
  std::vector<double> tau(static_cast<std::size_t>(n));
  geqrf(ref.view(), tau.data());
  EXPECT_LT(r_factor_difference(extract_r(ref.view()).view(), f.r().view()),
            1e-10);

  // Q^T Q == I through the kernel path.
  auto q = f.form_q(dev, n);
  EXPECT_LT(orthogonality_error(q.view()), 1e-11);
  EXPECT_GT(dev.elapsed_seconds(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CaqrConfigProduct,
    ::testing::Combine(::testing::Values<idx>(8, 16, 32),   // panel width
                       ::testing::Values<idx>(32, 64, 128), // block rows
                       ::testing::Values<idx>(0, 2, 4),     // arity (0=auto)
                       ::testing::Values(2, 3)));  // RegSerial, RegSerialT

class VariantSweep : public ::testing::TestWithParam<int> {};

TEST_P(VariantSweep, AllReductionVariantsNumericallyIdentical) {
  // Variants differ only in cost modeling; the arithmetic must be
  // bit-identical.
  const auto variant = static_cast<ReductionVariant>(GetParam());
  auto a = gaussian_matrix<float>(512, 32, 991);

  auto run = [&](ReductionVariant v) {
    CaqrOptions opt;
    opt.tsqr.variant = v;
    Device dev;
    auto f = caqr_factor(dev, a.view(), opt);
    return Matrix<float>::from(f.packed().view());
  };
  auto base = run(ReductionVariant::RegisterSerialTransposed);
  auto other = run(variant);
  for (idx j = 0; j < base.cols(); ++j) {
    for (idx i = 0; i < base.rows(); ++i) {
      ASSERT_EQ(base(i, j), other(i, j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantSweep, ::testing::Range(0, 4));

TEST(CaqrConfig, VariantChangesOnlySimulatedTime) {
  auto a = Matrix<float>::shape_only(100000, 64);
  auto time_for = [&](ReductionVariant v) {
    CaqrOptions opt;
    opt.tsqr.variant = v;
    opt.tsqr.transposed_panels =
        v == ReductionVariant::RegisterSerialTransposed;
    Device dev(gpusim::GpuMachineModel::c2050(), gpusim::ExecMode::ModelOnly);
    auto f = CaqrFactorization<float>::factor(
        dev, Matrix<float>::shape_only(100000, 64), opt);
    (void)f;
    return dev.elapsed_seconds();
  };
  // The tuning ladder must show up end-to-end: each step strictly faster.
  const double t1 = time_for(ReductionVariant::SmemParallelReduction);
  const double t2 = time_for(ReductionVariant::SmemSerialReduction);
  const double t3 = time_for(ReductionVariant::RegisterSerialReduction);
  const double t4 = time_for(ReductionVariant::RegisterSerialTransposed);
  EXPECT_GT(t1, t2);
  EXPECT_GT(t2, t3);
  EXPECT_GT(t3, t4);
}

TEST(CaqrConfig, WiderTrailingTilesReduceLaunchCountNotCorrectness) {
  auto a = gaussian_matrix<double>(512, 64, 992);
  for (const idx tile : {8, 16, 32, 64}) {
    CaqrOptions opt;
    // panel_tsqr() overrides tile_cols with panel_width; emulate wider
    // tiles through the panel width and matching block rows instead.
    opt.panel_width = 16;
    opt.tsqr.tile_cols = tile;
    Device dev;
    auto f = caqr_factor(dev, a.view(), opt);
    auto ref = a.clone();
    std::vector<double> tau(64);
    geqrf(ref.view(), tau.data());
    ASSERT_LT(r_factor_difference(extract_r(ref.view()).view(), f.r().view()),
              1e-10)
        << "tile " << tile;
  }
}

}  // namespace
}  // namespace caqr

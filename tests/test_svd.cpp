// Tests for the one-sided Jacobi SVD used on the small R factor in the
// paper's tall-skinny SVD pipeline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"
#include "linalg/svd.hpp"

namespace caqr {
namespace {

template <typename T>
double svd_residual(In<ConstMatrixView<T>> a, const SvdResult<T>& f) {
  // ||A - U diag(sigma) V^T||_F / ||A||_F
  double num = 0.0;
  const idx m = a.rows(), n = a.cols();
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      double s = 0.0;
      for (idx p = 0; p < n; ++p) {
        s += static_cast<double>(f.u(i, p)) *
             static_cast<double>(f.sigma[static_cast<std::size_t>(p)]) *
             static_cast<double>(f.v(j, p));
      }
      const double d = static_cast<double>(a(i, j)) - s;
      num += d * d;
    }
  }
  const double den = frobenius_norm(a);
  return den > 0 ? std::sqrt(num) / den : std::sqrt(num);
}

TEST(JacobiSvd, DiagonalMatrixIsExact) {
  auto a = Matrix<double>::zeros(4, 4);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 4.0;
  a(3, 3) = 2.0;
  auto f = jacobi_svd(a.view());
  ASSERT_TRUE(f.converged);
  EXPECT_DOUBLE_EQ(f.sigma[0], 4.0);
  EXPECT_DOUBLE_EQ(f.sigma[1], 3.0);
  EXPECT_DOUBLE_EQ(f.sigma[2], 2.0);
  EXPECT_DOUBLE_EQ(f.sigma[3], 1.0);
}

TEST(JacobiSvd, RandomMatrixInvariants) {
  auto a = gaussian_matrix<double>(30, 12, 55);
  auto f = jacobi_svd(a.view());
  ASSERT_TRUE(f.converged);
  EXPECT_LT(svd_residual(a.view(), f), 1e-13);
  EXPECT_LT(orthogonality_error(f.u.view()), 1e-13);
  EXPECT_LT(orthogonality_error(f.v.view()), 1e-13);
  EXPECT_TRUE(std::is_sorted(f.sigma.rbegin(), f.sigma.rend()));
  for (const double s : f.sigma) EXPECT_GE(s, 0.0);
}

TEST(JacobiSvd, SquareUpperTriangularInput) {
  // The pipeline always feeds R factors: exercise exactly that shape.
  auto g = gaussian_matrix<double>(50, 10, 66);
  std::vector<double> tau(10);
  geqrf(g.view(), tau.data());
  auto r = extract_r(g.view());
  auto f = jacobi_svd(r.view());
  ASSERT_TRUE(f.converged);
  EXPECT_LT(svd_residual(r.view(), f), 1e-13);
}

TEST(JacobiSvd, RankDeficientGivesZeroSigmas) {
  // Rank-2 matrix 8x4.
  auto x = gaussian_matrix<double>(8, 2, 1);
  auto y = gaussian_matrix<double>(4, 2, 2);
  auto a = Matrix<double>::zeros(8, 4);
  gemm(Trans::No, Trans::Yes, 1.0, x.view(), y.view(), 0.0, a.view());
  auto f = jacobi_svd(a.view());
  ASSERT_TRUE(f.converged);
  EXPECT_GT(f.sigma[1], 1e-8);
  EXPECT_LT(f.sigma[2], 1e-10);
  EXPECT_LT(f.sigma[3], 1e-10);
  EXPECT_LT(svd_residual(a.view(), f), 1e-12);
}

TEST(JacobiSvd, KnownSingularValuesRecovered) {
  const idx m = 40, n = 8;
  auto u = random_orthonormal<double>(m, n, 3);
  auto v = random_orthonormal<double>(n, n, 4);
  std::vector<double> sigma = {9, 7.5, 6, 4, 2, 1, 0.5, 0.125};
  auto us = u.clone();
  for (idx j = 0; j < n; ++j) {
    scal(m, sigma[static_cast<std::size_t>(j)], us.view().col(j));
  }
  auto a = Matrix<double>::zeros(m, n);
  gemm(Trans::No, Trans::Yes, 1.0, us.view(), v.view(), 0.0, a.view());
  auto f = jacobi_svd(a.view());
  ASSERT_TRUE(f.converged);
  for (idx j = 0; j < n; ++j) {
    EXPECT_NEAR(f.sigma[static_cast<std::size_t>(j)],
                sigma[static_cast<std::size_t>(j)], 1e-11);
  }
}

TEST(JacobiSvd, FloatPrecision) {
  auto a = gaussian_matrix<float>(64, 16, 77);
  auto f = jacobi_svd(a.view());
  ASSERT_TRUE(f.converged);
  EXPECT_LT(svd_residual(a.view(), f), 1e-5);
  EXPECT_LT(orthogonality_error(f.u.view()), 1e-4);
}

TEST(JacobiSvd, ZeroMatrix) {
  auto a = Matrix<double>::zeros(5, 3);
  auto f = jacobi_svd(a.view());
  ASSERT_TRUE(f.converged);
  for (const double s : f.sigma) EXPECT_EQ(s, 0.0);
}

TEST(JacobiSvd, SingleColumn) {
  auto a = Matrix<double>::zeros(4, 1);
  a(0, 0) = 3;
  a(1, 0) = 4;
  auto f = jacobi_svd(a.view());
  ASSERT_TRUE(f.converged);
  EXPECT_NEAR(f.sigma[0], 5.0, 1e-14);
  EXPECT_NEAR(std::fabs(f.v(0, 0)), 1.0, 1e-14);
}

TEST(JacobiSvd, NuclearNormMatchesTrace) {
  // For SPD matrices the nuclear norm equals the trace.
  auto g = gaussian_matrix<double>(20, 6, 31);
  auto c = Matrix<double>::zeros(6, 6);
  syrk_t(1.0, g.view(), 0.0, c.view());
  auto f = jacobi_svd(c.view());
  double trace = 0.0, nuc = 0.0;
  for (idx i = 0; i < 6; ++i) trace += c(i, i);
  for (const double s : f.sigma) nuc += s;
  EXPECT_NEAR(nuc, trace, 1e-10 * trace);
}

}  // namespace
}  // namespace caqr

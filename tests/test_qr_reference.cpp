// Tests for the reference LAPACK-style QR: Householder generation, GEQR2,
// blocked GEQRF, LARFT/LARFB consistency, ORGQR, UNMQR and Cholesky.
// These establish the gold standard the TSQR/CAQR tests compare against.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/random_matrix.hpp"

namespace caqr {
namespace {

TEST(Householder, AnnihilatesTail) {
  std::vector<double> x = {3.0, 4.0, 0.0, 12.0};
  double alpha = x[0];
  const double norm_before = nrm2<double>(4, x.data());
  const double tau = make_householder<double>(4, alpha, x.data() + 1);
  // |beta| must equal the norm of the original vector.
  EXPECT_NEAR(std::fabs(alpha), norm_before, 1e-14);
  EXPECT_GT(tau, 0.0);
  EXPECT_LE(tau, 2.0);  // tau in (0, 2] for nonzero vectors

  // Applying H to the original vector must give [beta; 0; 0; 0].
  std::vector<double> orig = {3.0, 4.0, 0.0, 12.0};
  auto c = Matrix<double>::zeros(4, 1);
  for (int i = 0; i < 4; ++i) c(i, 0) = orig[i];
  std::vector<double> work(1);
  apply_householder_left<double>(4, tau, x.data() + 1, c.view(), work.data());
  EXPECT_NEAR(c(0, 0), alpha, 1e-13);
  for (int i = 1; i < 4; ++i) EXPECT_NEAR(c(i, 0), 0.0, 1e-13);
}

TEST(Householder, ZeroTailGivesIdentity) {
  std::vector<double> x = {5.0, 0.0, 0.0};
  double alpha = x[0];
  const double tau = make_householder<double>(3, alpha, x.data() + 1);
  EXPECT_EQ(tau, 0.0);
  EXPECT_EQ(alpha, 5.0);  // untouched
}

TEST(Householder, LengthOneVector) {
  double alpha = -2.0;
  EXPECT_EQ(make_householder<double>(1, alpha, nullptr), 0.0);
  EXPECT_EQ(alpha, -2.0);
}

TEST(Householder, ApplicationIsInvolutory) {
  // H * H * C == C since H is symmetric orthogonal.
  auto c0 = gaussian_matrix<double>(6, 3, 42);
  auto c = c0.clone();
  std::vector<double> v = {0.0, 0.5, -0.25, 1.0, 0.75};  // tail of v, v[0]=1
  const double vtv = 1.0 + nrm2_squared<double>(5, v.data());
  const double tau = 2.0 / vtv;
  std::vector<double> work(3);
  apply_householder_left<double>(6, tau, v.data(), c.view(), work.data());
  apply_householder_left<double>(6, tau, v.data(), c.view(), work.data());
  for (idx j = 0; j < 3; ++j) {
    for (idx i = 0; i < 6; ++i) EXPECT_NEAR(c(i, j), c0(i, j), 1e-13);
  }
}

struct QrShape {
  idx m, n;
};

class GeqrfShapes : public ::testing::TestWithParam<QrShape> {};

TEST_P(GeqrfShapes, FactorizationInvariants) {
  const auto [m, n] = GetParam();
  auto a0 = gaussian_matrix<double>(m, n, 7);
  auto a = a0.clone();
  std::vector<double> tau(static_cast<std::size_t>(std::min(m, n)));
  geqrf(a.view(), tau.data(), /*nb=*/8);

  auto r = extract_r(a.view());
  auto q = form_q(a.view(), tau.data(), std::min(m, n));

  const double scale = std::sqrt(static_cast<double>(n));
  EXPECT_LT(orthogonality_error(q.view()), 1e-14 * scale * 100);
  EXPECT_LT(factorization_residual(a0.view(), q.view(), r.view()),
            1e-14 * scale * 100);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeqrfShapes,
    ::testing::Values(QrShape{1, 1}, QrShape{4, 4}, QrShape{16, 16},
                      QrShape{10, 3}, QrShape{64, 16}, QrShape{100, 100},
                      QrShape{128, 16}, QrShape{37, 19}, QrShape{200, 7},
                      QrShape{5, 8} /* wide */, QrShape{33, 40} /* wide */));

TEST(Geqrf, BlockedMatchesUnblocked) {
  auto a0 = gaussian_matrix<double>(50, 30, 13);
  auto a1 = a0.clone();
  auto a2 = a0.clone();
  std::vector<double> tau1(30), tau2(30), work(30);
  geqr2(a1.view(), tau1.data(), work.data());
  geqrf(a2.view(), tau2.data(), /*nb=*/8);
  // Same algorithm, same reflectors: results must agree to roundoff.
  for (idx j = 0; j < 30; ++j) {
    for (idx i = 0; i < 50; ++i) {
      ASSERT_NEAR(a1(i, j), a2(i, j), 1e-12) << i << "," << j;
    }
  }
  for (int k = 0; k < 30; ++k) ASSERT_NEAR(tau1[k], tau2[k], 1e-13);
}

TEST(Geqrf, RDiagonalSignsAreNegativeOfFirstEntrySign) {
  // LAPACK sign convention: beta = -sign(alpha) * norm.
  auto a = Matrix<double>::zeros(4, 2);
  a(0, 0) = 3;
  a(1, 0) = 4;
  a(0, 1) = 1;
  a(1, 1) = 1;
  std::vector<double> tau(2), work(2);
  geqr2(a.view(), tau.data(), work.data());
  EXPECT_NEAR(a(0, 0), -5.0, 1e-14);
}

TEST(ApplyQ, QtTimesAEqualsR) {
  auto a0 = gaussian_matrix<double>(40, 12, 3);
  auto a = a0.clone();
  std::vector<double> tau(12);
  geqrf(a.view(), tau.data(), 5);

  auto c = a0.clone();
  apply_q_left(a.view(), tau.data(), Trans::Yes, c.view(), 5);
  auto r = extract_r(a.view());
  // Top n x n of Q^T A must equal R; below must be ~0.
  for (idx j = 0; j < 12; ++j) {
    for (idx i = 0; i < 40; ++i) {
      const double expect = i <= j ? r(i, j) : 0.0;
      ASSERT_NEAR(c(i, j), expect, 1e-12);
    }
  }
}

TEST(ApplyQ, QTimesQtIsIdentityAction) {
  auto a = gaussian_matrix<double>(30, 10, 4);
  std::vector<double> tau(10);
  auto f = a.clone();
  geqrf(f.view(), tau.data(), 4);

  auto c0 = gaussian_matrix<double>(30, 5, 5);
  auto c = c0.clone();
  apply_q_left(f.view(), tau.data(), Trans::Yes, c.view(), 4);
  apply_q_left(f.view(), tau.data(), Trans::No, c.view(), 4);
  for (idx j = 0; j < 5; ++j) {
    for (idx i = 0; i < 30; ++i) ASSERT_NEAR(c(i, j), c0(i, j), 1e-12);
  }
}

TEST(FormQ, ExplicitQMatchesApplication) {
  auto a = gaussian_matrix<double>(25, 8, 6);
  std::vector<double> tau(8);
  auto f = a.clone();
  geqrf(f.view(), tau.data(), 3);
  auto q = form_q(f.view(), tau.data(), 8);

  // Q * e_j must equal apply_q(e_j).
  auto e = Matrix<double>::identity(25, 8);
  apply_q_left(f.view(), tau.data(), Trans::No, e.view(), 3);
  for (idx j = 0; j < 8; ++j) {
    for (idx i = 0; i < 25; ++i) ASSERT_NEAR(q(i, j), e(i, j), 1e-13);
  }
}

TEST(Larft, BlockReflectorMatchesSequential) {
  const idx m = 20, k = 6;
  auto a0 = gaussian_matrix<double>(m, k, 8);
  auto a = a0.clone();
  std::vector<double> tau(k), work(k);
  geqr2(a.view(), tau.data(), work.data());

  Matrix<double> t(k, k);
  larft(a.view(), tau.data(), t.view());

  // Apply via larfb and via sequential reflectors; compare.
  auto c0 = gaussian_matrix<double>(m, 4, 9);
  auto c1 = c0.clone();
  larfb_left(a.view(), t.view(), Trans::Yes, c1.view());

  auto c2 = c0.clone();
  std::vector<double> w2(4);
  for (idx j = 0; j < k; ++j) {
    apply_householder_left<double>(m - j, tau[j], a.view().col(j) + j + 1,
                                   c2.block(j, 0, m - j, 4), w2.data());
  }
  for (idx j = 0; j < 4; ++j) {
    for (idx i = 0; i < m; ++i) ASSERT_NEAR(c1(i, j), c2(i, j), 1e-12);
  }
}

TEST(Geqrf, IllConditionedStaysBackwardStable) {
  auto a0 = matrix_with_condition<double>(80, 20, 1e12, 10);
  auto a = a0.clone();
  std::vector<double> tau(20);
  geqrf(a.view(), tau.data());
  auto q = form_q(a.view(), tau.data(), 20);
  auto r = extract_r(a.view());
  EXPECT_LT(orthogonality_error(q.view()), 1e-12);
  EXPECT_LT(factorization_residual(a0.view(), q.view(), r.view()), 1e-12);
}

TEST(Geqrf, FloatPrecisionInvariants) {
  auto a0 = gaussian_matrix<float>(128, 16, 21);
  auto a = a0.clone();
  std::vector<float> tau(16);
  geqrf(a.view(), tau.data());
  auto q = form_q(a.view(), tau.data(), 16);
  auto r = extract_r(a.view());
  EXPECT_LT(orthogonality_error(q.view()), 1e-5);
  EXPECT_LT(factorization_residual(a0.view(), q.view(), r.view()), 1e-5);
}

TEST(Cholesky, FactorizesSpdMatrix) {
  auto g = gaussian_matrix<double>(30, 10, 14);
  auto c = Matrix<double>::zeros(10, 10);
  syrk_t(1.0, g.view(), 0.0, c.view());
  for (idx i = 0; i < 10; ++i) c(i, i) += 1.0;  // well-conditioned SPD
  auto c0 = c.clone();
  ASSERT_TRUE(potrf_upper(c.view()));
  // Check R^T R == C.
  auto recon = Matrix<double>::zeros(10, 10);
  gemm(Trans::Yes, Trans::No, 1.0, c.view(), c.view(), 0.0, recon.view());
  for (idx j = 0; j < 10; ++j) {
    for (idx i = 0; i < 10; ++i) ASSERT_NEAR(recon(i, j), c0(i, j), 1e-10);
  }
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  auto c = Matrix<double>::identity(3, 3);
  c(2, 2) = -1.0;
  EXPECT_FALSE(potrf_upper(c.view()));
}

}  // namespace
}  // namespace caqr

// Tests for the common substrate: thread pool, PRNG, stats, tables, CLI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/arena.hpp"
#include "common/cli.hpp"
#include "common/group_list.hpp"
#include "common/profile.hpp"
#include "common/prng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace caqr {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 10'000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, GrainBatchingCoversAllIndices) {
  ThreadPool pool(3);
  constexpr std::size_t kCount = 1003;  // deliberately not a grain multiple
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(
      kCount,
      [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      /*grain=*/7);
  for (std::size_t i = 0; i < kCount; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ZeroAndSingleItemWork) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ResultIndependentOfThreadCount) {
  // Deterministic because items write disjoint slots.
  constexpr std::size_t kCount = 4096;
  auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(kCount);
    pool.parallel_for(kCount, [&](std::size_t i) {
      out[i] = std::sin(static_cast<double>(i)) * 3.0;
    });
    return out;
  };
  const auto a = run(1);
  const auto b = run(5);
  EXPECT_EQ(a, b);
}

TEST(ThreadPool, ManyConsecutiveJobsDoNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(17, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200u * 17u);
}

TEST(ThreadPool, ThrowingJobRethrowsFirstException) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 257;
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(kCount,
                        [&](std::size_t i) {
                          ran.fetch_add(1, std::memory_order_relaxed);
                          if (i % 3 == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Cancellation: at least one item threw, and not every ticket needs to
  // have run (remaining batches are cancelled once a failure is recorded).
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), static_cast<int>(kCount));
}

TEST(ThreadPool, PoolStaysUsableAfterRepeatedThrowingJobs) {
  // Regression: the retry path of a fault-injected launch re-submits the
  // same throwing kernel back to back. The error path must leave the pool
  // fully reusable — workers not wedged on a stale job, and later
  // parallel_fors still running on the pool (not silently degraded to
  // inline execution by a latched nesting flag).
  ThreadPool pool(4);
  for (int round = 0; round < 2; ++round) {
    EXPECT_THROW(pool.parallel_for(
                     128, [&](std::size_t) { throw std::runtime_error("inj"); }),
                 std::runtime_error);
  }

  // A clean job afterwards must execute every index...
  constexpr std::size_t kCount = 2048;
  std::vector<std::atomic<int>> hits(kCount);
  std::set<std::thread::id> tids;
  std::mutex tid_mutex;
  pool.parallel_for(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(tid_mutex);
      tids.insert(std::this_thread::get_id());
    }
    // Give the other workers a chance to claim a ticket so the
    // multiple-threads assertion below is meaningful.
    std::this_thread::yield();
  });
  for (std::size_t i = 0; i < kCount; ++i) ASSERT_EQ(hits[i].load(), 1);
  // ...and the workers must still participate (> 1 distinct thread would be
  // flaky to demand on a loaded machine only if the pool were healthy —
  // but a wedged pool would hang above, and an inline-degraded one would
  // finish the job entirely on the submitting thread while the workers'
  // claim of the stale failed job kept tids at exactly 1 forever after.
  // Run a few rounds so scheduling noise cannot mask a degraded pool.)
  for (int round = 0; round < 20 && tids.size() < 2; ++round) {
    pool.parallel_for(kCount, [&](std::size_t) {
      std::lock_guard<std::mutex> lock(tid_mutex);
      tids.insert(std::this_thread::get_id());
    });
  }
  EXPECT_GT(tids.size(), 1u);
}

TEST(AlignedBuffer, AlignmentAndMove) {
  AlignedBuffer<float> buf(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineBytes, 0u);
  buf[0] = 1.5f;
  buf[99] = -2.5f;
  AlignedBuffer<float> moved = std::move(buf);
  EXPECT_EQ(moved[0], 1.5f);
  EXPECT_EQ(moved[99], -2.5f);
  EXPECT_EQ(buf.data(), nullptr);
  EXPECT_TRUE(buf.empty());
}

TEST(Rng, DeterministicStreams) {
  Rng a(42, 0), b(42, 0), c(42, 1);
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next_u64();
    EXPECT_EQ(x, b.next_u64());
  }
  // Different streams diverge immediately with overwhelming probability.
  Rng a2(42, 0);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a2.next_u64() == c.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformBoundsAndCoverage) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(123);
  const int n = 200'000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (int i = 1; i <= 5; ++i) s.add(i);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);  // sample variance of 1..5
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(TextTable, AlignedOutputAndCsv) {
  TextTable t({"name", "value"});
  t.cell("alpha").cell(1.25, 2).end_row();
  t.cell("b").cell(100LL).end_row();
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("b,100"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Format, DoubleAndUnits) {
  EXPECT_EQ(format_double(1.5, 2), "1.50");
  EXPECT_NE(format_double(1e-9, 2).find("e"), std::string::npos);
  EXPECT_EQ(format_bytes(2048.0), "2.00 KB");
  EXPECT_EQ(format_flops(388e9), "388.0 GFLOP/s");
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--m=100", "--name", "x",  "pos1",
                        "--flag", "--ratio=2.5"};
  CliArgs args(7, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("m", 0), 100);
  EXPECT_EQ(args.get("name", ""), "x");
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(args.get_int("absent", -7), -7);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, MalformedIntegerAbortsWithFlagName) {
  // strtoll without endptr checking used to turn "--n=1o0" into 1 silently.
  const char* argv[] = {"prog", "--n=1o0"};
  CliArgs args(2, const_cast<char**>(argv));
  EXPECT_DEATH((void)args.get_int("n", 0), "--n=1o0");
}

TEST(Cli, MalformedAndOutOfRangeDoublesAbort) {
  const char* argv[] = {"prog", "--ratio=fast", "--huge=1e999"};
  CliArgs args(3, const_cast<char**>(argv));
  EXPECT_DEATH((void)args.get_double("ratio", 0.0), "--ratio=fast");
  EXPECT_DEATH((void)args.get_double("huge", 0.0), "--huge=1e999");
}

TEST(Cli, IntegerRangeAndSuffixChecks) {
  const char* argv[] = {"prog", "--big=99999999999999999999", "--m=12x"};
  CliArgs args(3, const_cast<char**>(argv));
  EXPECT_DEATH((void)args.get_int("big", 0), "--big=");
  EXPECT_DEATH((void)args.get_int("m", 0), "--m=12x");
  // Well-formed values still parse (including negatives).
  const char* ok[] = {"prog", "--k=-42"};
  CliArgs args_ok(2, const_cast<char**>(ok));
  EXPECT_EQ(args_ok.get_int("k", 0), -42);
}

// ------------------------------------------------------------ AlignedBuffer

TEST(AlignedBuffer, ReserveReusesCapacityAndClearKeepsIt) {
  AlignedBuffer<double> buf(100);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_GE(buf.capacity(), 100u);
  double* p = buf.data();
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.data(), p);  // clear never frees
  buf.reset(50);             // within capacity: no reallocation
  EXPECT_EQ(buf.size(), 50u);
  EXPECT_EQ(buf.data(), p);
  buf.reset(100);
  EXPECT_EQ(buf.data(), p);
  const std::size_t cap = buf.capacity();
  buf.reset(cap + 1);  // growth reallocates
  EXPECT_GE(buf.capacity(), cap + 1);
  EXPECT_EQ(buf.size(), cap + 1);
}

TEST(AlignedBuffer, AllocationsAreCacheLineAlignedAndCounted) {
  const long long before = prof::allocation_count();
  AlignedBuffer<float> buf(37);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
  EXPECT_GT(prof::allocation_count(), before);
}

// ------------------------------------------------------------------- Arena

TEST(Arena, SteadyStateAllocatesNothing) {
  Arena arena;
  // Warm: first pass grows chunks.
  {
    ArenaScope scope(arena);
    (void)scope.alloc<double>(1000);
    (void)scope.alloc<float>(5000);
  }
  const long long before = prof::allocation_count();
  for (int iter = 0; iter < 100; ++iter) {
    ArenaScope scope(arena);
    double* a = scope.alloc<double>(1000);
    float* b = scope.alloc<float>(5000);
    a[0] = 1.0;
    b[4999] = 2.0f;
  }
  EXPECT_EQ(prof::allocation_count(), before)
      << "warm arena must not touch the heap";
}

TEST(Arena, AlignmentAndDistinctRegions) {
  Arena arena;
  ArenaScope scope(arena);
  char* a = scope.alloc<char>(3);
  double* b = scope.alloc<double>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(b));
}

TEST(Arena, RewindReusesMemoryAndGrowthSpansChunks) {
  Arena arena;
  void* first = nullptr;
  {
    ArenaScope scope(arena);
    first = scope.alloc<double>(100);
  }
  {
    ArenaScope scope(arena);
    EXPECT_EQ(static_cast<void*>(scope.alloc<double>(100)), first);
  }
  // Oversized request exceeds the first chunk: arena adds one, stays valid.
  ArenaScope scope(arena);
  double* big = scope.alloc<double>(1 << 20);
  big[0] = 1.0;
  big[(1 << 20) - 1] = 2.0;
  EXPECT_GT(arena.capacity_bytes(), (std::size_t{1} << 23));
}

TEST(Arena, ThreadScratchIsPerThread) {
  void* main_p = Arena::thread_scratch().alloc<char>(1);
  void* other_p = nullptr;
  std::thread t([&] { other_p = Arena::thread_scratch().alloc<char>(1); });
  t.join();
  EXPECT_NE(main_p, nullptr);
  // Distinct arenas: the other thread's first chunk is its own.
  EXPECT_NE(main_p, other_p);
}

// --------------------------------------------------------------- GroupList

TEST(GroupList, PushIterateAndEquality) {
  GroupList g;
  EXPECT_TRUE(g.empty());
  g.push_group({0, 64, 128});
  g.push_group({192});
  std::vector<idx> tail = {256, 320};
  g.push_group(tail.begin(), tail.end());
  ASSERT_EQ(g.size(), 3);
  EXPECT_EQ(g.group_size(0), 3);
  EXPECT_EQ(g.group_size(1), 1);
  EXPECT_EQ(g.group_size(2), 2);
  EXPECT_EQ(g[0][2], 128);
  EXPECT_EQ(g[1][0], 192);
  EXPECT_EQ(g[2][1], 320);

  GroupList h;
  h.append(0);
  h.append(64);
  h.append(128);
  h.close_group();
  h.push_group({192});
  h.push_group(tail.begin(), tail.end());
  EXPECT_EQ(g, h);  // incremental building reaches the same flat form

  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_NE(g, h);
}

TEST(GroupList, WholeLevelIsTwoAllocationsCopied) {
  GroupList src;
  for (idx g = 0; g < 500; ++g) src.push_group({g * 4, g * 4 + 1, g * 4 + 2});
  const long long before = prof::allocation_count();
  GroupList copy = src;
  EXPECT_LE(prof::allocation_count() - before, 2)
      << "a GroupList copy is two flat vector copies";
  EXPECT_EQ(copy, src);
}

// ----------------------------------------------------------------- profile

TEST(Profile, CountersAccumulateAndSnapshotFinds) {
  auto& c = prof::counter("test.counter_ns");
  c.add(3, 42);
  c.add(1, 8);
  bool found = false;
  for (const auto& s : prof::snapshot()) {
    if (s.name == "test.counter_ns") {
      found = true;
      EXPECT_GE(s.count, 4);
      EXPECT_GE(s.value, 50);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Profile, ScopedTimerChargesItsCounter) {
  auto& c = prof::counter("test.scope_ns");
  const auto before_count = c.count.load();
  {
    CAQR_PROF_SCOPE("test.scope_ns");
  }
  EXPECT_EQ(c.count.load(), before_count + 1);
}

TEST(Profile, OperatorNewIsCounted) {
  const long long allocs = prof::allocation_count();
  const long long bytes = prof::allocation_bytes();
  auto p = std::make_unique<double[]>(1000);
  p[0] = 1.0;
  EXPECT_GT(prof::allocation_count(), allocs);
  EXPECT_GE(prof::allocation_bytes() - bytes, 8000);
}

TEST(Profile, TimedLockChargesWaitTimeOnlyWhenContended) {
  std::mutex m;
  auto& wait = prof::counter("test.lock_wait_ns");
  const auto count0 = wait.count.load();
  const auto value0 = wait.value.load();
  {
    prof::timed_lock<std::mutex> lock(m, wait);  // uncontended: try_lock wins
  }
  EXPECT_EQ(wait.count.load(), count0 + 1);
  EXPECT_EQ(wait.value.load(), value0);  // zero wait nanoseconds charged
  std::unique_lock<std::mutex> holder(m);
  std::thread t([&] {
    prof::timed_lock<std::mutex> lock(m, wait);  // contended: wait timed
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  holder.unlock();
  t.join();
  EXPECT_EQ(wait.count.load(), count0 + 2);
  EXPECT_GT(wait.value.load(), value0);
}

TEST(Profile, HistogramQuantilesMeanAndReset) {
  auto& h = prof::histogram("test.hist.q");
  h.reset();
  for (int i = 0; i < 100; ++i) h.record(1000.0);
  for (int i = 0; i < 5; ++i) h.record(1.0e6);
  EXPECT_EQ(h.count(), 105);
  EXPECT_NEAR(h.mean_ns(), (100 * 1000.0 + 5 * 1.0e6) / 105.0, 1.0);
  // 1000 ns lands in bucket [512, 1024); 1e6 ns in [2^19, 2^20). The
  // quantile contract is bucket-accurate (factor-of-two), so assert bounds.
  const double p50 = h.quantile(0.50);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 1024.0);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p99, 524288.0);
  EXPECT_LE(p99, 1048576.0);
  EXPECT_GE(p99, p50);
  // The registry hands back the same object for the same name.
  EXPECT_EQ(&prof::histogram("test.hist.q"), &h);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean_ns(), 0.0);
}

TEST(Profile, HistogramSnapshotAndJsonExport) {
  auto& h = prof::histogram("test.hist.snap");
  h.reset();
  h.record(2000.0);
  bool found = false;
  for (const auto& s : prof::histogram_snapshot()) {
    if (s.name == "test.hist.snap") {
      found = true;
      EXPECT_EQ(s.count, 1);
      EXPECT_GT(s.p50_ns, 0.0);
      EXPECT_GE(s.p99_ns, s.p50_ns);
    }
  }
  EXPECT_TRUE(found);
  const std::string json = prof::to_json();
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("test.hist.snap"), std::string::npos);
}

}  // namespace
}  // namespace caqr

// Tests for the stream/event device timeline, the two-stream look-ahead
// CAQR schedule, the chrome-trace exporter, zero-width edge cases, and the
// thread-pool nesting / exception-propagation fixes.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "caqr/caqr.hpp"
#include "gpusim/device.hpp"
#include "gpusim/report.hpp"
#include "kernels/kernels.hpp"
#include "linalg/random_matrix.hpp"
#include "tsqr/tsqr.hpp"

namespace caqr {
namespace {

using gpusim::BlockStats;
using gpusim::Device;
using gpusim::ExecMode;
using gpusim::GpuMachineModel;

GpuMachineModel clean_model() {
  auto m = GpuMachineModel::c2050();
  m.issue_stall_factor = 1.0;  // exact cycle arithmetic in expectations
  return m;
}

double overhead(const GpuMachineModel& m) { return m.kernel_launch_us * 1e-6; }

kernels::CostOnlyKernel latency_kernel(double cycles) {
  BlockStats s;
  s.issue_cycles = cycles;
  return kernels::CostOnlyKernel{"latency", s};
}

// --------------------------------------------------------------------------
// Stream timeline primitives
// --------------------------------------------------------------------------

// Two single-block (latency-floor-bound) kernels on independent streams use
// 1/14 of the SM pool each, so they overlap fully: the makespan is one
// kernel, not two — the whole point of the stream model.
TEST(Streams, LatencyBoundKernelsOverlap) {
  const auto model = clean_model();
  const double d = 1e6 / model.clock_hz();
  const double ovh = overhead(model);

  Device dev(model, ExecMode::ModelOnly);
  const auto s1 = dev.create_stream();
  const auto s2 = dev.create_stream();
  const auto k = latency_kernel(1e6);
  dev.launch(s1, k, 1);
  dev.launch(s2, k, 1);
  const double concurrent = dev.sync();
  EXPECT_NEAR(concurrent, ovh + d, (ovh + d) * 1e-12);

  Device serial(model, ExecMode::ModelOnly);
  serial.launch(k, 1);
  serial.launch(k, 1);
  EXPECT_NEAR(serial.elapsed_seconds(), 2 * (ovh + d), 1e-15);
  EXPECT_LT(concurrent, serial.elapsed_seconds());
}

// Two launches that each saturate the SM pool cannot speed up by
// overlapping: the fluid model is work-conserving, so the makespan equals
// the serial sum of core times (one launch overhead is hidden).
TEST(Streams, ComputeBoundSharingIsWorkConserving) {
  const auto model = clean_model();
  const double d = 28.0 * 1e6 / 14.0 / model.clock_hz();
  const double ovh = overhead(model);

  Device dev(model, ExecMode::ModelOnly);
  const auto s1 = dev.create_stream();
  const auto s2 = dev.create_stream();
  const auto k = latency_kernel(1e6);
  dev.launch(s1, k, 28);
  dev.launch(s2, k, 28);
  EXPECT_NEAR(dev.elapsed_seconds(), ovh + 2 * d, (ovh + 2 * d) * 1e-12);
}

// A DRAM-saturating kernel and a latency-bound (compute) kernel use
// different resources, so they overlap fully.
TEST(Streams, MemoryAndComputeBoundKernelsOverlap) {
  const auto model = clean_model();
  const double ovh = overhead(model);

  BlockStats mem;
  mem.gmem_bytes = model.dram_bw_gbs * 1e9 / 100.0;  // 10 ms of DRAM traffic
  const kernels::CostOnlyKernel mk{"mem", mem};
  const auto ck = latency_kernel(1e6);  // ~0.87 ms on one SM

  Device dev(model, ExecMode::ModelOnly);
  dev.launch(dev.create_stream(), mk, 1);
  dev.launch(dev.create_stream(), ck, 1);
  EXPECT_NEAR(dev.elapsed_seconds(), ovh + 0.01, 1e-12);
  EXPECT_EQ(dev.trace().size(), 2u);
}

// record_event / wait_event serialize across streams, including the waiting
// stream's own launch overhead.
TEST(Streams, EventSerializesAcrossStreams) {
  const auto model = clean_model();
  const double d = 1e6 / model.clock_hz();
  const double ovh = overhead(model);

  Device dev(model, ExecMode::ModelOnly);
  const auto s1 = dev.create_stream();
  const auto s2 = dev.create_stream();
  const auto k = latency_kernel(1e6);
  dev.launch(s1, k, 1);
  const auto e = dev.record_event(s1);
  dev.wait_event(s2, e);
  dev.launch(s2, k, 1);
  EXPECT_NEAR(dev.elapsed_seconds(), 2 * ovh + 2 * d, 1e-15);
}

// The legacy default stream is a device-wide barrier: it joins async work
// before running, exactly like the CUDA legacy stream.
TEST(Streams, DefaultStreamBarrier) {
  const auto model = clean_model();
  const double d = 1e6 / model.clock_hz();
  const double ovh = overhead(model);

  Device dev(model, ExecMode::ModelOnly);
  const auto k = latency_kernel(1e6);
  dev.launch(dev.create_stream(), k, 1);
  dev.launch(k, 1);  // legacy launch: joins the async stream first
  EXPECT_NEAR(dev.elapsed_seconds(), 2 * (ovh + d), 1e-15);
  ASSERT_EQ(dev.trace().size(), 2u);
  EXPECT_LE(dev.trace()[0].t_end, dev.trace()[1].t_start);
}

// A lone async stream followed by sync() reproduces the legacy serial
// timeline bit for bit: same launches, same arithmetic, same clock.
TEST(Streams, SingleAsyncStreamMatchesLegacyBitwise) {
  const auto model = GpuMachineModel::c2050();
  const auto k1 = latency_kernel(1e6);
  const auto k2 = latency_kernel(3e5);

  Device legacy(model, ExecMode::ModelOnly);
  legacy.launch(k1, 5);
  legacy.launch(k2, 40);
  legacy.launch(k1, 1);

  Device async(model, ExecMode::ModelOnly);
  const auto s = async.create_stream();
  async.launch(s, k1, 5);
  async.launch(s, k2, 40);
  async.launch(s, k1, 1);
  async.sync();

  EXPECT_DOUBLE_EQ(async.elapsed_seconds(), legacy.elapsed_seconds());
}

// With the concurrent-kernel limit forced to 1, streams still interleave
// correctly — kernels run back to back, overheads overlap execution.
TEST(Streams, ConcurrentKernelCapSerializesExecution) {
  auto model = clean_model();
  model.max_concurrent_kernels = 1;
  const double d = 1e6 / model.clock_hz();
  const double ovh = overhead(model);

  Device dev(model, ExecMode::ModelOnly);
  const auto k = latency_kernel(1e6);
  dev.launch(dev.create_stream(), k, 1);
  dev.launch(dev.create_stream(), k, 1);
  // The second stream's launch overhead is paid concurrently with the first
  // kernel's execution; only the execution spans serialize.
  EXPECT_NEAR(dev.elapsed_seconds(), ovh + 2 * d, 1e-15);
}

TEST(Streams, ProfilesAndResetTimeline) {
  const auto model = clean_model();
  Device dev(model, ExecMode::ModelOnly);
  const auto k = latency_kernel(1e6);
  dev.launch(dev.create_stream(), k, 2);
  dev.launch(dev.create_stream(), k, 3);

  const auto* p = dev.profile("latency");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->launches, 2);
  EXPECT_EQ(p->blocks, 5);

  dev.reset_timeline();
  EXPECT_DOUBLE_EQ(dev.elapsed_seconds(), 0.0);
  EXPECT_TRUE(dev.trace().empty());
  EXPECT_EQ(dev.profile("latency"), nullptr);
}

// --------------------------------------------------------------------------
// Look-ahead CAQR schedule
// --------------------------------------------------------------------------

CaqrOptions small_opts(CaqrSchedule schedule) {
  CaqrOptions opt;
  opt.schedule = schedule;
  opt.panel_width = 8;
  opt.tsqr.block_rows = 32;
  return opt;
}

// The split trailing update touches disjoint columns with the same kernels,
// so LookAhead must produce bit-identical results to Serial: packed factors,
// R, and the explicit Q.
template <typename T>
void expect_schedules_bitwise_identical(idx m, idx n, int seed) {
  const auto a = gaussian_matrix<T>(m, n, seed);
  Device dev(GpuMachineModel::c2050(), ExecMode::Functional);

  const auto fs = caqr_factor(dev, a.view(), small_opts(CaqrSchedule::Serial));
  const auto fl = caqr_factor(dev, a.view(), small_opts(CaqrSchedule::LookAhead));

  const auto& ps = fs.packed();
  const auto& pl = fl.packed();
  ASSERT_EQ(ps.rows(), pl.rows());
  ASSERT_EQ(ps.cols(), pl.cols());
  for (idx i = 0; i < ps.rows(); ++i) {
    for (idx j = 0; j < ps.cols(); ++j) {
      ASSERT_EQ(ps(i, j), pl(i, j)) << "packed mismatch at " << i << "," << j;
    }
  }

  const idx qcols = std::min(m, n);
  const auto qs = fs.form_q(dev, qcols);
  const auto ql = fl.form_q(dev, qcols);
  for (idx i = 0; i < m; ++i) {
    for (idx j = 0; j < qcols; ++j) {
      ASSERT_EQ(qs(i, j), ql(i, j)) << "Q mismatch at " << i << "," << j;
    }
  }
}

TEST(CaqrLookAhead, BitIdenticalToSerialTall) {
  expect_schedules_bitwise_identical<double>(300, 48, 1001);
}

TEST(CaqrLookAhead, BitIdenticalToSerialWide) {
  expect_schedules_bitwise_identical<double>(64, 160, 1002);
}

TEST(CaqrLookAhead, BitIdenticalToSerialRaggedFloat) {
  expect_schedules_bitwise_identical<float>(131, 29, 1003);
}

TEST(CaqrLookAhead, BitIdenticalToSerialSinglePanel) {
  expect_schedules_bitwise_identical<double>(96, 8, 1004);
}

// The factorization still satisfies A = Q R under the overlap schedule.
TEST(CaqrLookAhead, ReconstructsA) {
  const idx m = 200, n = 40;
  const auto a = gaussian_matrix<double>(m, n, 1005);
  Device dev(GpuMachineModel::c2050(), ExecMode::Functional);
  const auto f = caqr_factor(dev, a.view(), small_opts(CaqrSchedule::LookAhead));
  const auto q = f.form_q(dev, n);
  const auto r = f.r();
  for (idx i = 0; i < m; ++i) {
    for (idx j = 0; j < n; ++j) {
      double qr = 0;
      for (idx k = 0; k < n; ++k) qr += q(i, k) * r(k, j);
      ASSERT_NEAR(qr, a(i, j), 1e-10);
    }
  }
}

// Acceptance: on the paper's headline 1M x 192 SGEQRF (ModelOnly), the
// look-ahead schedule is strictly faster than Figure 4's serial schedule.
TEST(CaqrLookAhead, ModelOnlyStrictlyFasterAtPaperScale) {
  const idx m = 1 << 20, n = 192;
  auto seconds = [&](CaqrSchedule schedule) {
    Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
    CaqrOptions opt;
    opt.schedule = schedule;
    auto f = CaqrFactorization<float>::factor(
        dev, Matrix<float>::shape_only(m, n), opt);
    (void)f;
    return dev.elapsed_seconds();
  };
  const double t_serial = seconds(CaqrSchedule::Serial);
  const double t_look = seconds(CaqrSchedule::LookAhead);
  EXPECT_LT(t_look, t_serial);
  // Work conservation: overlap can hide overheads and latency slack but
  // cannot beat the serial schedule by more than what it hides.
  EXPECT_GT(t_look, 0.5 * t_serial);
}

// The simulated timeline is a pure function of the issue sequence:
// Functional and ModelOnly runs of the same schedule agree bit for bit,
// event by event.
TEST(CaqrLookAhead, FunctionalAndModelOnlyTimelinesBitIdentical) {
  const idx m = 1024, n = 96;
  const auto a = gaussian_matrix<float>(m, n, 1006);
  CaqrOptions opt;
  opt.schedule = CaqrSchedule::LookAhead;

  Device fdev(GpuMachineModel::c2050(), ExecMode::Functional);
  auto ff = caqr_factor(fdev, a.view(), opt);
  (void)ff;
  Device mdev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
  auto mf = caqr_factor(mdev, a.view(), opt);
  (void)mf;

  EXPECT_DOUBLE_EQ(fdev.elapsed_seconds(), mdev.elapsed_seconds());
  const auto& ft = fdev.trace();
  const auto& mt = mdev.trace();
  ASSERT_EQ(ft.size(), mt.size());
  ASSERT_FALSE(ft.empty());
  for (std::size_t i = 0; i < ft.size(); ++i) {
    EXPECT_EQ(ft[i].name, mt[i].name);
    EXPECT_EQ(ft[i].stream, mt[i].stream);
    EXPECT_EQ(ft[i].blocks, mt[i].blocks);
    EXPECT_DOUBLE_EQ(ft[i].t_start, mt[i].t_start);
    EXPECT_DOUBLE_EQ(ft[i].t_end, mt[i].t_end);
  }
}

// The look-ahead trace really uses two streams with overlapping spans.
TEST(CaqrLookAhead, TraceShowsTwoOverlappingStreams) {
  Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
  CaqrOptions opt;
  opt.schedule = CaqrSchedule::LookAhead;
  auto f = CaqrFactorization<float>::factor(
      dev, Matrix<float>::shape_only(1 << 16, 96), opt);
  (void)f;

  std::vector<int> streams;
  bool overlap = false;
  const auto& tr = dev.trace();
  for (const auto& e : tr) {
    if (std::find(streams.begin(), streams.end(), e.stream) == streams.end()) {
      streams.push_back(e.stream);
    }
    for (const auto& o : tr) {
      if (o.stream != e.stream && o.t_start < e.t_end && e.t_start < o.t_end) {
        overlap = true;
      }
    }
  }
  EXPECT_EQ(streams.size(), 2u);
  EXPECT_TRUE(overlap);
}

// --------------------------------------------------------------------------
// Zero-width edge cases (LAPACK xGEQRF / xORGQR semantics for n == 0)
// --------------------------------------------------------------------------

TEST(ZeroWidth, CaqrZeroColumns) {
  Device dev(GpuMachineModel::c2050(), ExecMode::Functional);
  const auto empty6 = Matrix<double>::zeros(6, 0);
  const auto f = caqr_factor(dev, empty6.view());
  EXPECT_EQ(f.rows(), 6);
  EXPECT_EQ(f.cols(), 0);
  EXPECT_EQ(f.r().rows(), 0);
  EXPECT_EQ(f.r().cols(), 0);
  EXPECT_DOUBLE_EQ(dev.elapsed_seconds(), 0.0);  // no launches

  // Q is the identity: form_q returns identity columns, apply_qt is a no-op.
  const auto q = f.form_q(dev, 3);
  EXPECT_EQ(q.rows(), 6);
  EXPECT_EQ(q.cols(), 3);
  for (idx i = 0; i < 6; ++i) {
    for (idx j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(q(i, j), i == j ? 1.0 : 0.0);
  }
  auto c = gaussian_matrix<double>(6, 2, 1100);
  const auto c0 = Matrix<double>::from(c.view().as_const());
  f.apply_qt(dev, c.view());
  for (idx i = 0; i < 6; ++i) {
    for (idx j = 0; j < 2; ++j) EXPECT_DOUBLE_EQ(c(i, j), c0(i, j));
  }
}

TEST(ZeroWidth, CaqrZeroRowsAndEmpty) {
  Device dev(GpuMachineModel::c2050(), ExecMode::Functional);
  const auto empty0 = Matrix<double>::zeros(0, 0);
  const auto f = caqr_factor(dev, empty0.view());
  EXPECT_EQ(f.rows(), 0);
  EXPECT_EQ(f.cols(), 0);
  const auto q = f.form_q(dev, 0);
  EXPECT_EQ(q.rows(), 0);
  EXPECT_EQ(q.cols(), 0);
}

TEST(ZeroWidth, TsqrZeroWidthPanel) {
  Device dev(GpuMachineModel::c2050(), ExecMode::Functional);
  const auto res = tsqr::tsqr(dev, Matrix<double>::zeros(8, 0).view());
  EXPECT_EQ(res.meta.width, 0);
  EXPECT_EQ(res.meta.rows, 8);
  EXPECT_EQ(res.r().rows(), 0);
  EXPECT_DOUBLE_EQ(dev.elapsed_seconds(), 0.0);

  // Applying the zero-width factor leaves the right-hand side untouched.
  auto c = gaussian_matrix<double>(8, 3, 1101);
  const auto c0 = Matrix<double>::from(c.view().as_const());
  tsqr::tsqr_apply_qt(dev, res.storage.view(), res.meta, c.view(),
                      tsqr::TsqrOptions{});
  for (idx i = 0; i < 8; ++i) {
    for (idx j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(c(i, j), c0(i, j));
  }
  EXPECT_DOUBLE_EQ(dev.elapsed_seconds(), 0.0);
}

TEST(ZeroWidth, ApplyToZeroColumnRhs) {
  Device dev(GpuMachineModel::c2050(), ExecMode::Functional);
  const auto a = gaussian_matrix<double>(64, 16, 1102);
  const auto f = caqr_factor(dev, a.view());
  const double t = dev.elapsed_seconds();
  auto c = Matrix<double>::zeros(64, 0);
  f.apply_qt(dev, c.view());
  f.apply_q(dev, c.view());
  EXPECT_DOUBLE_EQ(dev.elapsed_seconds(), t);  // no launches issued
}

// --------------------------------------------------------------------------
// chrome://tracing export
// --------------------------------------------------------------------------

// Minimal structural JSON check: braces/brackets balance outside strings,
// strings terminate, and the document is a single object.
void expect_structurally_valid_json(const std::string& s) {
  ASSERT_FALSE(s.empty());
  ASSERT_EQ(s.front(), '{');
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST(TraceJson, ParseableAndRoundTrips) {
  Device dev(GpuMachineModel::c2050(), ExecMode::Functional);
  const auto a = gaussian_matrix<float>(256, 32, 1200);
  CaqrOptions opt;
  opt.schedule = CaqrSchedule::LookAhead;
  auto f = caqr_factor(dev, a.view(), opt);
  (void)f;

  const std::string json = gpusim::trace_json(dev);
  expect_structurally_valid_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  const std::string path = testing::TempDir() + "caqr_trace_test.json";
  ASSERT_TRUE(gpusim::write_trace_json(dev, path));
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  ASSERT_NE(fp, nullptr);
  std::string back;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), fp)) > 0) {
    back.append(buf, got);
  }
  std::fclose(fp);
  std::remove(path.c_str());
  EXPECT_EQ(back, json);
}

TEST(TraceJson, EmptyTimelineIsValid) {
  Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
  const std::string json = gpusim::trace_json(dev);
  expect_structurally_valid_json(json);
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

// --------------------------------------------------------------------------
// Thread-pool regressions
// --------------------------------------------------------------------------

// A parallel_for issued from inside another parallel_for's item must run
// inline instead of aborting (the old code hard-CHECKed on nesting).
TEST(ThreadPoolRegression, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(16, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(count.load(), 8 * 16);
}

// Device::launch reached from user code already running on the pool (the
// original crash): the nested functional launch degrades to inline serial.
TEST(ThreadPoolRegression, DeviceLaunchInsideParallelFor) {
  ThreadPool pool(4);
  std::atomic<int> ok{0};
  pool.parallel_for(4, [&](std::size_t) {
    Device dev(GpuMachineModel::c2050(), ExecMode::Functional, &pool);
    const auto a = gaussian_matrix<double>(64, 8, 1300);
    const auto f = caqr_factor(dev, a.view());
    if (f.r().rows() == 8) ok.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ok.load(), 4);
}

// An exception thrown by a pool item — on whichever thread claimed it — is
// rethrown on the calling thread, and the pool stays usable afterwards.
TEST(ThreadPoolRegression, WorkerExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [&](std::size_t i) {
                          if (i == 537) throw std::runtime_error("boom");
                        }),
      std::runtime_error);

  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolRegression, ExceptionOnFirstItem) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   64, [&](std::size_t i) {
                     if (i == 0) throw std::logic_error("first");
                   }),
               std::logic_error);
}

// Two threads submitting to the same pool at once: the pool runs one job at
// a time, the loser runs inline — either way every item executes exactly
// once.
TEST(ThreadPoolRegression, ConcurrentSubmittersAllItemsRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        pool.parallel_for(100, [&](std::size_t) {
          count.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(count.load(), 4 * 20 * 100);
}

}  // namespace
}  // namespace caqr

// Tests for the s-step Krylov module: matrix-powers basis generation,
// block orthogonalization, CA-Arnoldi invariants (orthonormality, Arnoldi
// relation), Newton-basis conditioning, and CA-GMRES convergence.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "krylov/sstep.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"
#include "linalg/svd.hpp"

namespace caqr {
namespace {

using gpusim::Device;
using krylov::BasisKind;
using sparse::CsrMatrix;

std::vector<double> unit_seed(idx m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<std::size_t>(m));
  for (auto& x : v) x = rng.normal();
  double n = nrm2(static_cast<idx>(v.size()), v.data());
  scal(static_cast<idx>(v.size()), 1.0 / n, v.data());
  return v;
}

TEST(MatrixPowers, MonomialBasisSpansKrylovSpace) {
  auto a = CsrMatrix<double>::laplacian_2d(12);
  const idx m = a.rows();
  auto v = unit_seed(m, 3);
  Device dev;
  auto k = krylov::matrix_powers(dev, a, v.data(), 4, BasisKind::Monomial);
  ASSERT_EQ(k.cols(), 5);
  // Column j must equal A * column j-1 exactly (monomial construction).
  std::vector<double> av(static_cast<std::size_t>(m));
  for (idx j = 1; j <= 4; ++j) {
    a.spmv(k.view().col(j - 1), av.data());
    for (idx i = 0; i < m; ++i) {
      ASSERT_EQ(k(i, j), av[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(MatrixPowers, NewtonBasisSpansSameSpace) {
  // Newton vectors are linear combinations of the monomial ones: the R
  // factor of [monomial | newton] must have rank s+1, and projecting the
  // Newton block onto the monomial Q must be lossless.
  auto a = CsrMatrix<double>::laplacian_2d(10);
  const idx m = a.rows(), s = 5;
  auto v = unit_seed(m, 4);
  Device dev;
  auto mono = krylov::matrix_powers(dev, a, v.data(), s, BasisKind::Monomial);
  auto newt = krylov::matrix_powers(dev, a, v.data(), s, BasisKind::Newton);

  // Orthonormalize the monomial block and check the Newton block's residual
  // after projection is ~0.
  std::vector<double> tau(static_cast<std::size_t>(s + 1));
  auto qr = mono.clone();
  geqrf(qr.view(), tau.data());
  auto q = form_q(qr.view(), tau.data(), s + 1);
  Matrix<double> c = Matrix<double>::zeros(s + 1, s + 1);
  gemm(Trans::Yes, Trans::No, 1.0, q.view(), newt.view(), 0.0, c.view());
  Matrix<double> recon = Matrix<double>::zeros(m, s + 1);
  gemm(Trans::No, Trans::No, 1.0, q.view(), c.view(), 0.0, recon.view());
  double num = 0, den = 0;
  for (idx j = 0; j <= s; ++j) {
    for (idx i = 0; i < m; ++i) {
      num += std::pow(recon(i, j) - newt(i, j), 2);
      den += std::pow(newt(i, j), 2);
    }
  }
  EXPECT_LT(std::sqrt(num / den), 1e-10);
}

TEST(MatrixPowers, NewtonBasisBetterConditionedThanMonomial) {
  // The reason s-step methods use shifted bases (§I's reference [2]).
  auto a = CsrMatrix<double>::laplacian_2d(20);
  const idx m = a.rows(), s = 8;
  auto v = unit_seed(m, 5);
  Device dev;
  auto mono = krylov::matrix_powers(dev, a, v.data(), s, BasisKind::Monomial);
  auto newt = krylov::matrix_powers(dev, a, v.data(), s, BasisKind::Newton);

  auto cond_of = [](ConstMatrixView<double> b) {
    auto f = jacobi_svd(b);
    return f.sigma.front() / std::max(f.sigma.back(), 1e-300);
  };
  EXPECT_LT(cond_of(newt.view()), 0.2 * cond_of(mono.view()));
}

TEST(BlockOrthogonalize, ProducesOrthonormalAugmentedBasis) {
  const idx m = 600, k0 = 6, w = 4;
  auto basis = random_orthonormal<double>(m, k0 + w, 7);  // reserve space
  auto block = gaussian_matrix<double>(m, w, 8);
  Device dev;
  tsqr::TsqrOptions topt;
  topt.block_rows = 64;

  Matrix<double> full = Matrix<double>::zeros(m, k0 + w);
  full.view().block(0, 0, m, k0).copy_from(basis.view().block(0, 0, m, k0));
  auto blk = full.view().block(0, k0, m, w);
  blk.copy_from(block.view());
  auto res = krylov::block_orthogonalize(dev, full.view(), k0, blk, topt);
  (void)res;
  EXPECT_LT(orthogonality_error(full.view()), 1e-12);
}

TEST(BlockOrthogonalize, ReconstructionIdentityHolds) {
  // block_in = basis * C + Q R.
  const idx m = 300, k0 = 5, w = 3;
  auto basis0 = random_orthonormal<double>(m, k0, 9);
  auto block0 = gaussian_matrix<double>(m, w, 10);
  Device dev;
  tsqr::TsqrOptions topt;
  topt.block_rows = 64;

  Matrix<double> full = Matrix<double>::zeros(m, k0 + w);
  full.view().block(0, 0, m, k0).copy_from(basis0.view());
  auto blk = full.view().block(0, k0, m, w);
  blk.copy_from(block0.view());
  auto res = krylov::block_orthogonalize(dev, full.view(), k0, blk, topt);

  Matrix<double> recon = Matrix<double>::zeros(m, w);
  gemm(Trans::No, Trans::No, 1.0, basis0.view(), res.coeffs.view(), 0.0,
       recon.view());
  gemm(Trans::No, Trans::No, 1.0, blk.as_const(), res.r.view(), 1.0,
       recon.view());
  for (idx j = 0; j < w; ++j) {
    for (idx i = 0; i < m; ++i) {
      ASSERT_NEAR(recon(i, j), block0(i, j), 1e-10);
    }
  }
}

TEST(CaArnoldi, BasisOrthonormalAndHessenbergCorrect) {
  auto a = CsrMatrix<double>::laplacian_2d(16);
  const idx m = a.rows();
  auto v = unit_seed(m, 11);
  Device dev;
  auto ar = krylov::ca_arnoldi(dev, a, v.data(), /*s=*/4, /*blocks=*/3);
  ASSERT_EQ(ar.width, 12);
  EXPECT_LT(orthogonality_error(ar.v.view().block(0, 0, m, ar.width + 1)),
            1e-11);

  // H(i, j) must equal v_i^T A v_j (direct check).
  std::vector<double> av(static_cast<std::size_t>(m));
  for (idx j = 0; j < ar.width; ++j) {
    a.spmv(ar.v.view().col(j), av.data());
    for (idx i = 0; i <= std::min<idx>(j + 1, ar.width); ++i) {
      const double expect = dot(m, ar.v.view().col(i), av.data());
      ASSERT_NEAR(ar.h(i, j), expect, 1e-12);
    }
  }
}

TEST(CaArnoldi, MatchesMgsArnoldiRitzValues) {
  // Both build a basis of the same Krylov space: the projected operator's
  // eigenvalues (Ritz values via the symmetric part) must coincide.
  auto a = CsrMatrix<double>::laplacian_2d(12);
  const idx m = a.rows();
  auto v = unit_seed(m, 13);
  Device dev;
  const idx s = 3, blocks = 2, width = s * blocks;
  auto ca = krylov::ca_arnoldi(dev, a, v.data(), s, blocks);
  auto mgs = krylov::arnoldi_mgs(dev, a, v.data(), width);

  auto ritz = [&](ConstMatrixView<double> h, idx w) {
    Matrix<double> hs = Matrix<double>::zeros(w, w);
    for (idx j = 0; j < w; ++j) {
      for (idx i = 0; i < w; ++i) hs(i, j) = h(i, j);
    }
    auto f = jacobi_svd(hs.view());  // SPD operator: singular = eigen values
    return f.sigma;
  };
  const auto r1 = ritz(ca.h.view(), width);
  const auto r2 = ritz(mgs.h.view(), width);
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_NEAR(r1[i], r2[i], 1e-6 * (1.0 + r2[0])) << i;
  }
}

TEST(CaGmres, ConvergesOnLaplacian) {
  auto a = CsrMatrix<double>::laplacian_2d(16);
  const idx m = a.rows();
  auto xt = unit_seed(m, 17);
  std::vector<double> b(static_cast<std::size_t>(m));
  a.spmv(xt.data(), b.data());

  Device dev;
  auto res = krylov::ca_gmres(dev, a, b.data(), /*s=*/4, /*blocks=*/5,
                              /*max_restarts=*/30, 1e-9);
  ASSERT_TRUE(res.converged) << "final residual " << res.residuals.back();
  double err = 0;
  for (idx i = 0; i < m; ++i) {
    err = std::max(err, std::fabs(res.x[static_cast<std::size_t>(i)] -
                                  xt[static_cast<std::size_t>(i)]));
  }
  EXPECT_LT(err, 1e-6);
}

TEST(CaGmres, ResidualsMonotoneAcrossRestarts) {
  auto a = CsrMatrix<double>::laplacian_2d(12);
  const idx m = a.rows();
  auto b = unit_seed(m, 19);
  Device dev;
  auto res = krylov::ca_gmres(dev, a, b.data(), 3, 4, 10, 1e-12);
  for (std::size_t i = 1; i < res.residuals.size(); ++i) {
    EXPECT_LE(res.residuals[i], res.residuals[i - 1] * (1.0 + 1e-12)) << i;
  }
}

TEST(CaGmres, ZeroRhsConvergesImmediately) {
  auto a = CsrMatrix<double>::laplacian_2d(4);
  std::vector<double> b(16, 0.0);
  Device dev;
  auto res = krylov::ca_gmres(dev, a, b.data(), 2, 2, 3);
  EXPECT_TRUE(res.converged);
  for (const double x : res.x) EXPECT_EQ(x, 0.0);
}

TEST(CaGmres, TimelineChargesSpmvAndQrWork) {
  auto a = CsrMatrix<double>::laplacian_2d(12);
  auto b = unit_seed(a.rows(), 21);
  Device dev;
  auto res = krylov::ca_gmres(dev, a, b.data(), 3, 3, 3, 1e-10);
  (void)res;
  EXPECT_NE(dev.profile("spmv"), nullptr);
  EXPECT_NE(dev.profile("factor"), nullptr);       // TSQR inside the blocks
  EXPECT_NE(dev.profile("bgs_project"), nullptr);  // block Gram-Schmidt
  EXPECT_GT(dev.elapsed_seconds(), 0.0);
}

}  // namespace
}  // namespace caqr

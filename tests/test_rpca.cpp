// Tests for Robust PCA: shrinkage operator, recovery of planted
// low-rank + sparse decompositions, convergence behaviour, and the
// iteration-rate accounting behind Table II.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"
#include "rpca/rpca.hpp"

namespace caqr {
namespace {

using gpusim::Device;
using gpusim::ExecMode;
using gpusim::GpuMachineModel;

TEST(Shrink, SoftThresholdElementwise) {
  auto a = Matrix<double>::zeros(2, 3);
  a(0, 0) = 5;
  a(1, 0) = -5;
  a(0, 1) = 1;
  a(1, 1) = -1;
  a(0, 2) = 2.5;
  rpca::shrink(a.view(), 2.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a(1, 0), -3.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(a(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(a(1, 2), 0.0);
}

TEST(Rpca, RecoversPlantedDecomposition) {
  LowRankPlusSparse spec;
  spec.rank = 2;
  spec.sparse_fraction = 0.05;
  spec.sparse_magnitude = 0.5;
  auto planted = planted_low_rank_plus_sparse<double>(300, 40, spec, 77);

  Device dev;
  rpca::RpcaOptions opt;
  opt.max_iterations = 120;
  opt.tolerance = 1e-7;
  auto res = rpca::robust_pca(dev, planted.observed.view(), opt);
  ASSERT_TRUE(res.converged);

  // L close to the planted low-rank part.
  double err_l = 0;
  for (idx j = 0; j < 40; ++j) {
    for (idx i = 0; i < 300; ++i) {
      const double d = res.low_rank(i, j) - planted.low_rank(i, j);
      err_l += d * d;
    }
  }
  const double rel_l = std::sqrt(err_l) / frobenius_norm(planted.low_rank.view());
  EXPECT_LT(rel_l, 0.05);

  // Sparse support mostly recovered: large planted entries appear in S.
  idx hits = 0, planted_large = 0;
  for (idx j = 0; j < 40; ++j) {
    for (idx i = 0; i < 300; ++i) {
      if (std::fabs(planted.sparse(i, j)) > 0.25) {
        ++planted_large;
        if (std::fabs(res.sparse(i, j)) > 0.05) ++hits;
      }
    }
  }
  ASSERT_GT(planted_large, 50);
  EXPECT_GT(static_cast<double>(hits) / planted_large, 0.9);
}

TEST(Rpca, LPlusSEqualsM) {
  LowRankPlusSparse spec;
  spec.rank = 3;
  spec.sparse_fraction = 0.1;
  auto planted = planted_low_rank_plus_sparse<double>(200, 30, spec, 78);
  Device dev;
  rpca::RpcaOptions opt;
  opt.max_iterations = 100;
  auto res = rpca::robust_pca(dev, planted.observed.view(), opt);
  EXPECT_LT(res.residual, 1e-5);
  EXPECT_GT(res.iterations, 1);
}

TEST(Rpca, LowRankResultHasLowRank) {
  LowRankPlusSparse spec;
  spec.rank = 2;
  spec.sparse_fraction = 0.05;
  auto planted = planted_low_rank_plus_sparse<double>(256, 32, spec, 79);
  Device dev;
  auto res = rpca::robust_pca(dev, planted.observed.view());
  // Final thresholded rank should be close to the planted rank.
  EXPECT_LE(res.final_rank, 8);
  auto svd = jacobi_svd(res.low_rank.view());
  // Energy concentrated in the top components.
  double top = 0, total = 0;
  for (std::size_t i = 0; i < svd.sigma.size(); ++i) {
    total += svd.sigma[i] * svd.sigma[i];
    if (i < 4) top += svd.sigma[i] * svd.sigma[i];
  }
  EXPECT_GT(top / total, 0.98);
}

TEST(Rpca, ZeroMatrixConvergesImmediately) {
  auto m = Matrix<double>::zeros(50, 10);
  Device dev;
  rpca::RpcaOptions opt;
  opt.max_iterations = 5;
  auto res = rpca::robust_pca(dev, m.view(), opt);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(max_abs(res.low_rank.view()), 1e-12);
  EXPECT_LT(max_abs(res.sparse.view()), 1e-12);
}

TEST(Rpca, IterationRateOrderingMatchesTableII) {
  // CAQR backend must iterate faster than the BLAS2 backend at the paper's
  // video-matrix size (GTX480 model), by roughly 3x.
  svd::TallSkinnySvdOptions caqr_opt;
  caqr_opt.backend = svd::QrBackend::Caqr;
  svd::TallSkinnySvdOptions blas2_opt;
  blas2_opt.backend = svd::QrBackend::GpuBlas2;

  Device d1(GpuMachineModel::gtx480(), ExecMode::ModelOnly);
  Device d2(GpuMachineModel::gtx480(), ExecMode::ModelOnly);
  const double rate_caqr =
      rpca::rpca_iteration_rate<float>(d1, 110592, 100, caqr_opt);
  const double rate_blas2 =
      rpca::rpca_iteration_rate<float>(d2, 110592, 100, blas2_opt);
  EXPECT_GT(rate_caqr, rate_blas2);
  EXPECT_GT(rate_caqr / rate_blas2, 1.5);
  EXPECT_LT(rate_caqr / rate_blas2, 8.0);
}

TEST(Rpca, SimulatedSecondsPerIterationPositive) {
  LowRankPlusSparse spec;
  spec.rank = 1;
  spec.sparse_fraction = 0.02;
  auto planted = planted_low_rank_plus_sparse<double>(128, 16, spec, 80);
  Device dev;
  rpca::RpcaOptions opt;
  opt.max_iterations = 3;
  opt.tolerance = 0.0;  // force all iterations
  auto res = rpca::robust_pca(dev, planted.observed.view(), opt);
  EXPECT_EQ(res.iterations, 3);
  EXPECT_GT(res.seconds_per_iteration, 0.0);
  EXPECT_NEAR(res.simulated_seconds,
              res.seconds_per_iteration * res.iterations, 1e-12);
}

// Robustness sweep over corruption levels: recovery quality degrades
// gracefully as the sparse fraction grows, and holds at the regime the
// video application lives in (a few percent of pixels are foreground).
class RpcaCorruptionSweep : public ::testing::TestWithParam<double> {};

TEST_P(RpcaCorruptionSweep, RecoversLowRankPart) {
  const double fraction = GetParam();
  LowRankPlusSparse spec;
  spec.rank = 2;
  spec.sparse_fraction = fraction;
  spec.sparse_magnitude = 0.5;
  auto planted = planted_low_rank_plus_sparse<double>(240, 32, spec, 881);
  Device dev;
  rpca::RpcaOptions opt;
  opt.max_iterations = 120;
  opt.tolerance = 1e-7;
  auto res = rpca::robust_pca(dev, planted.observed.view(), opt);
  ASSERT_TRUE(res.converged);
  double err = 0;
  for (idx j = 0; j < 32; ++j) {
    for (idx i = 0; i < 240; ++i) {
      err += std::pow(res.low_rank(i, j) - planted.low_rank(i, j), 2);
    }
  }
  const double rel = std::sqrt(err) / frobenius_norm(planted.low_rank.view());
  EXPECT_LT(rel, fraction <= 0.05 ? 0.06 : 0.25) << "fraction " << fraction;
}

INSTANTIATE_TEST_SUITE_P(Fractions, RpcaCorruptionSweep,
                         ::testing::Values(0.01, 0.03, 0.05, 0.10));

TEST(Rpca, SmallSvdBackendDoesNotChangeResult) {
  LowRankPlusSparse spec;
  spec.rank = 2;
  spec.sparse_fraction = 0.05;
  auto planted = planted_low_rank_plus_sparse<double>(150, 20, spec, 882);
  auto run = [&](svd::SmallSvd algo) {
    Device dev;
    rpca::RpcaOptions opt;
    opt.max_iterations = 40;
    opt.svd.small_svd = algo;
    return rpca::robust_pca(dev, planted.observed.view(), opt);
  };
  auto a = run(svd::SmallSvd::Jacobi);
  auto b = run(svd::SmallSvd::TwoPhase);
  EXPECT_EQ(a.iterations, b.iterations);
  for (idx j = 0; j < 20; ++j) {
    for (idx i = 0; i < 150; ++i) {
      ASSERT_NEAR(a.low_rank(i, j), b.low_rank(i, j), 1e-7);
    }
  }
}

}  // namespace
}  // namespace caqr

// Tests for the streaming subsystem: SlidingWindowQr bit-identity and
// verifier bounds, OnlineRpca separation + drift accounting, and
// CameraStream/StreamServer serving + migration.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/random_matrix.hpp"
#include "numerics/verifier.hpp"
#include "stream/online_rpca.hpp"
#include "stream/sliding_window_qr.hpp"
#include "stream/stream_serve.hpp"
#include "tsqr/incremental.hpp"
#include "tsqr/tsqr.hpp"

namespace caqr {
namespace {

using gpusim::Device;
using gpusim::ExecMode;

template <typename T>
void expect_triangle_bits_equal(const Matrix<T>& a, const Matrix<T>& b,
                                const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i <= j; ++i) {
      const T x = a(i, j), y = b(i, j);
      ASSERT_EQ(std::memcmp(&x, &y, sizeof(T)), 0)
          << what << ": (" << i << "," << j << ") " << x << " vs " << y;
    }
  }
}

// Stacks blocks [from, to) of a block list into one tall matrix.
template <typename T>
Matrix<T> stack_blocks(const std::deque<Matrix<T>>& blocks, std::size_t from,
                       std::size_t to) {
  idx rows = 0;
  for (std::size_t i = from; i < to; ++i) rows += blocks[i].rows();
  Matrix<T> out(rows, blocks.front().cols());
  idx r0 = 0;
  for (std::size_t i = from; i < to; ++i) {
    out.view()
        .block(r0, 0, blocks[i].rows(), blocks[i].cols())
        .copy_from(blocks[i].view());
    r0 += blocks[i].rows();
  }
  return out;
}

// -- Bit-identity of the append-only path (acceptance criterion) --

TEST(SlidingWindowQr, AppendPathBitIdenticalToIncrementalTsqr) {
  const idx m = 1024, n = 16, chunk = 128;
  auto a = gaussian_matrix<double>(m, n, 71);
  Device dev;
  tsqr::IncrementalTsqr<double> inc(dev, n);
  stream::SlidingWindowQr<double> win(n);
  for (idx r0 = 0; r0 < m; r0 += chunk) {
    inc.push(a.view().block(r0, 0, chunk, n));
    win.append(dev, a.view().block(r0, 0, chunk, n));
  }
  expect_triangle_bits_equal(inc.r(), win.r(dev), "window vs incremental");
}

TEST(SlidingWindowQr, AppendPathBitIdenticalToFromScratchTsqr) {
  // A from-scratch tsqr_factor run over the SAME left-deep caterpillar
  // reduction tree (via the TreeSpec seam) must produce EXACTLY the bits of
  // the incrementally maintained window R: the combine arithmetic only ever
  // reads the upper triangles it stacks.
  const idx m = 768, n = 16, chunk = 128;
  const idx nb = m / chunk;
  auto a = gaussian_matrix<double>(m, n, 72);
  Device dev;

  stream::SlidingWindowQr<double> win(n);
  for (idx r0 = 0; r0 < m; r0 += chunk) {
    win.append(dev, a.view().block(r0, 0, chunk, n));
  }

  tsqr::TsqrOptions topt;
  topt.tree_spec = [chunk, nb](idx rows, idx width) {
    (void)width;
    tsqr::TreeSpec s;
    for (idx b = 0; b <= nb; ++b) s.offsets.push_back(b * chunk);
    CAQR_CHECK(s.offsets.back() == rows);
    for (idx l = 0; l + 1 < nb; ++l) {
      GroupList g;
      g.data = {0, l + 1};
      g.starts = {0, 2};
      s.levels.push_back(std::move(g));
    }
    return s;
  };
  auto panel = a.clone();
  tsqr::tsqr_factor(dev, panel.view(), topt);
  Matrix<double> r_scratch = Matrix<double>::zeros(n, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i <= j; ++i) r_scratch(i, j) = panel(i, j);
  }
  expect_triangle_bits_equal(r_scratch, win.r(dev),
                             "caterpillar tsqr_factor vs window");
}

// -- Downdating sweep: window sizes x evict granularities x condition --

TEST(SlidingWindowQr, EvictSweepStaysWithinVerifierBounds) {
  Device dev;
  for (const idx n : {8, 16}) {
    for (const idx chunk_mult : {1, 2}) {          // evict granularity
      for (const double cond : {1e0, 1e6, 1e12}) {  // conditioning
        const idx chunk = n * chunk_mult;
        const idx total_blocks = 14, keep_blocks = 6;
        auto a = stress_matrix<double>(total_blocks * chunk, n, cond, 1.0,
                                       static_cast<std::uint64_t>(
                                           1000 + n + chunk_mult) +
                                           static_cast<std::uint64_t>(cond));
        stream::SlidingWindowQr<double> win(n);
        std::deque<Matrix<double>> blocks;
        for (idx b = 0; b < total_blocks; ++b) {
          blocks.push_back(
              Matrix<double>::from(a.view().block(b * chunk, 0, chunk, n)));
          win.append(dev, blocks.back().view());
        }
        std::size_t first = 0;
        while (win.blocks() > keep_blocks) {
          win.evict(dev);
          ++first;
        }
        auto retained = stack_blocks(blocks, first, blocks.size());
        const auto rep =
            numerics::verify_r(retained.view(), win.r(dev).view());
        EXPECT_TRUE(rep.pass)
            << "n=" << n << " chunk=" << chunk << " cond=" << cond
            << " gram_residual=" << rep.gram_residual
            << " tol=" << rep.tolerance;
      }
    }
  }
}

TEST(SlidingWindowQr, EvictIsExactRowRemoval) {
  // After evictions, the window R must be a valid R of exactly the retained
  // rows — Gram identity against the stacked retained blocks.
  const idx n = 12, chunk = 24;
  auto a = gaussian_matrix<double>(chunk * 10, n, 77);
  Device dev;
  stream::SlidingWindowQr<double> win(n);
  std::deque<Matrix<double>> blocks;
  for (idx b = 0; b < 10; ++b) {
    blocks.push_back(
        Matrix<double>::from(a.view().block(b * chunk, 0, chunk, n)));
    win.append(dev, blocks.back().view());
    if (win.blocks() > 4) {
      win.evict(dev);
      blocks.pop_front();
    }
  }
  EXPECT_EQ(win.rows(), 4 * chunk);
  auto retained = stack_blocks(blocks, 0, blocks.size());
  Matrix<double> ata = Matrix<double>::zeros(n, n);
  syrk_t(1.0, retained.view(), 0.0, ata.view());
  const auto& r = win.r(dev);
  Matrix<double> rtr = Matrix<double>::zeros(n, n);
  gemm(Trans::Yes, Trans::No, 1.0, r.view(), r.view(), 0.0, rtr.view());
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      ASSERT_NEAR(rtr(i, j), ata(i, j), 1e-8 * (1.0 + std::fabs(ata(i, j))));
    }
  }
}

// -- Typed degenerate updates (satellite) --

TEST(SlidingWindowQr, DegenerateUpdatesAreTypedErrors) {
  Device dev;
  stream::SlidingWindowQr<double> win(8);
  auto zero_rows = Matrix<double>::zeros(0, 8);
  try {
    win.append(dev, zero_rows.view());
    FAIL() << "zero-row append must throw";
  } catch (const tsqr::StreamUpdateError& e) {
    EXPECT_EQ(e.kind, tsqr::StreamUpdateError::Kind::ZeroRowAppend);
    EXPECT_EQ(e.cols, 8);
  }
  // Empty window: evict and r() both underflow.
  EXPECT_THROW(win.evict(dev), tsqr::StreamUpdateError);
  EXPECT_THROW(win.r(dev), tsqr::StreamUpdateError);
  // One 8-row block at width 8: evicting it would leave 0 < 8 rows.
  auto block = gaussian_matrix<double>(8, 8, 79);
  win.append(dev, block.view());
  try {
    win.evict(dev);
    FAIL() << "underflow evict must throw";
  } catch (const tsqr::StreamUpdateError& e) {
    EXPECT_EQ(e.kind, tsqr::StreamUpdateError::Kind::WindowUnderflow);
    EXPECT_EQ(e.window_rows, 0);
  }
  // The failed evict left the window intact and readable.
  EXPECT_EQ(win.rows(), 8);
  EXPECT_EQ(win.r(dev).rows(), 8);
}

TEST(SlidingWindowQr, AmortizedCombinesStayBounded) {
  // Steady-state append+evict must cost O(1) combines per frame amortized
  // (two-stack invariant: every block is flipped at most once).
  const idx n = 8, chunk = 16, keep = 16;
  auto a = gaussian_matrix<double>(chunk * 128, n, 80);
  Device dev;
  stream::SlidingWindowQr<double> win(n);
  for (idx b = 0; b < 128; ++b) {
    win.append(dev, a.view().block(b * chunk, 0, chunk, n));
    if (win.blocks() > keep) win.evict(dev);
  }
  // 128 appends: <= 1 combine each into the back aggregate; flips re-combine
  // each block at most once; r() reads add at most one more each.
  EXPECT_LE(win.combines(), 3 * 128);
  EXPECT_EQ(win.factors(), 128);
}

// -- Checkpoint / migration --

TEST(SlidingWindowQr, CheckpointRoundTripContinuesBitIdentically) {
  const idx n = 8, chunk = 16;
  auto a = gaussian_matrix<double>(chunk * 12, n, 81);
  Device dev;
  stream::SlidingWindowQr<double> win(n);
  for (idx b = 0; b < 6; ++b) {
    win.append(dev, a.view().block(b * chunk, 0, chunk, n));
  }
  win.evict(dev);
  win.evict(dev);

  ft::CheckpointWriter w;
  win.save(w, "t.");
  const std::string path = "/tmp/caqr_test_window.ckpt";
  ASSERT_TRUE(w.write(path));
  const auto reader = ft::CheckpointReader::load(path);
  ASSERT_TRUE(reader.has_value());
  EXPECT_FALSE(reader->section_names().empty());
  auto resumed = stream::SlidingWindowQr<double>::load(*reader, "t.");
  ASSERT_TRUE(resumed.has_value());

  // Both continue with the same traffic on DIFFERENT devices.
  Device dev2;
  for (idx b = 6; b < 12; ++b) {
    win.append(dev, a.view().block(b * chunk, 0, chunk, n));
    resumed->append(dev2, a.view().block(b * chunk, 0, chunk, n));
    win.evict(dev);
    resumed->evict(dev2);
  }
  expect_triangle_bits_equal(win.r(dev), resumed->r(dev2),
                             "resumed window continuation");
  std::remove(path.c_str());
}

// -- Online RPCA --

stream::StreamConfig small_stream(int id, std::uint64_t seed) {
  stream::StreamConfig cfg;
  cfg.id = id;
  cfg.seed = seed;
  cfg.rpca.cols = 16;
  cfg.rpca.frame_rows = 32;
  cfg.rpca.window_frames = 6;
  cfg.background_rank = 2;
  cfg.sparse_fraction = 0.02;
  cfg.noise = 1e-3;
  return cfg;
}

TEST(OnlineRpca, SeparatesBackgroundFromForeground) {
  const auto cfg = small_stream(0, 91);
  stream::CameraStream<double> cam(cfg);
  Device dev;
  stream::FrameOutput<double> out;
  for (int i = 0; i < 12; ++i) out = cam.step(dev);
  EXPECT_FALSE(out.warmup);
  EXPECT_TRUE(out.svd_converged);
  EXPECT_GE(out.rank, 1);
  EXPECT_LE(out.rank, cfg.rpca.cols);
  // The split reconstructs the frame: f ~= L + S by construction of S,
  // up to the soft threshold's per-entry clamp.
  EXPECT_LT(out.residual_ratio, 0.5);
  // The background estimate carries most of the frame's energy (the scene
  // is genuinely low-rank plus sparse).
  const double lnorm = frobenius_norm(out.low_rank.view());
  EXPECT_GT(lnorm, 0.0);
  EXPECT_GT(dev.elapsed_seconds(), 0.0);
  EXPECT_EQ(cam.frames_seen(), 12);
}

TEST(OnlineRpca, DriftRefactorIsTypedAndCounted) {
  auto cfg = small_stream(0, 92);
  cfg.rpca.drift_threshold = 0.0;  // trip the detector every checked frame
  stream::CameraStream<double> cam(cfg);
  Device dev;
  int post_warmup = 0, flagged = 0;
  for (int i = 0; i < 10; ++i) {
    const auto out = cam.step(dev);
    if (!out.warmup) {
      ++post_warmup;
      if (out.drift_refactor) ++flagged;
    }
  }
  ASSERT_GT(post_warmup, 0);
  EXPECT_EQ(flagged, post_warmup);  // never silent
  EXPECT_EQ(static_cast<int>(cam.rpca().drift_events().size()), post_warmup);
  for (const auto& e : cam.rpca().drift_events()) {
    EXPECT_GE(e.frame_index, 0);
    EXPECT_GE(e.gram_drift, 0.0);
  }
}

TEST(OnlineRpca, DefaultThresholdToleratesNormalAccumulation) {
  const auto cfg = small_stream(0, 93);
  stream::CameraStream<double> cam(cfg);
  Device dev;
  for (int i = 0; i < 20; ++i) cam.step(dev);
  // double-precision combines over a tiny window never approach 1e-3
  // relative Gram divergence.
  EXPECT_TRUE(cam.rpca().drift_events().empty());
}

// Migration must resume bit-identically, including when the serving devices
// run with the seeded fault injector armed (the stream's own kernels are
// cost-only and its numerics are charged host-side, so injected drops must
// not perturb the continuation).
TEST(OnlineRpca, MigrationBitIdenticalUnderSeededFaultInjector) {
  const auto cfg = small_stream(3, 94);
  const std::string path = "/tmp/caqr_test_stream.ckpt";

  gpusim::FaultOptions faults;
  faults.p_block_drop = 0.2;
  faults.seed = 4321;
  ft::FtOptions ftopt;
  ftopt.abft = true;

  // Golden: uninterrupted, fault-free, one device.
  stream::CameraStream<double> golden(cfg);
  Device gdev;
  stream::FrameOutput<double> golden_last;
  for (int i = 0; i < 14; ++i) golden_last = golden.step(gdev);

  // Migrated: half the frames on a faulty device, checkpoint, resume on a
  // DIFFERENT faulty device, finish.
  stream::CameraStream<double> first_half(cfg);
  Device devA;
  devA.set_fault_injection(faults);
  devA.set_fault_tolerance(ftopt);
  for (int i = 0; i < 7; ++i) first_half.step(devA);
  ASSERT_TRUE(first_half.checkpoint_to(path));
  auto resumed = stream::CameraStream<double>::resume_from(cfg, path);
  ASSERT_TRUE(resumed.has_value());
  Device devB;
  gpusim::FaultOptions faults2 = faults;
  faults2.seed = 8765;
  devB.set_fault_injection(faults2);
  devB.set_fault_tolerance(ftopt);
  stream::FrameOutput<double> migrated_last;
  for (int i = 7; i < 14; ++i) migrated_last = resumed->step(devB);

  EXPECT_EQ(resumed->frames_seen(), golden.frames_seen());
  expect_triangle_bits_equal(golden.rpca().window().r(gdev),
                             resumed->rpca().window().r(devB),
                             "migrated window R");
  for (idx j = 0; j < golden_last.low_rank.cols(); ++j) {
    ASSERT_EQ(std::memcmp(golden_last.low_rank.view().col(j),
                          migrated_last.low_rank.view().col(j),
                          sizeof(double) * static_cast<std::size_t>(
                                               golden_last.low_rank.rows())),
              0)
        << "low-rank column " << j;
    ASSERT_EQ(std::memcmp(golden_last.sparse.view().col(j),
                          migrated_last.sparse.view().col(j),
                          sizeof(double) * static_cast<std::size_t>(
                                               golden_last.sparse.rows())),
              0)
        << "sparse column " << j;
  }
  // Wrong identity is refused, not silently resumed.
  auto wrong = small_stream(4, 94);
  EXPECT_FALSE(
      stream::CameraStream<double>::resume_from(wrong, path).has_value());
  std::remove(path.c_str());
}

// -- Multi-tenant serving --

TEST(StreamServer, ServesRoundsWithFairShareAndLatencyHistograms) {
  prof::reset();
  stream::StreamServeOptions opt;
  opt.pool.workers = 2;
  opt.pool.mode = ExecMode::Functional;
  for (int s = 0; s < 4; ++s) {
    auto cfg = small_stream(s, 100 + static_cast<std::uint64_t>(s));
    cfg.weight = s == 3 ? 0.25 : 1.0;  // one low-share tenant
    opt.streams.push_back(cfg);
  }
  stream::StreamServer<double> server(std::move(opt));
  const int rounds = 8;
  for (int r = 0; r < rounds; ++r) {
    const auto res = server.run_round();
    EXPECT_EQ(res.done, 4);
    EXPECT_EQ(res.expired + res.shed + res.rejected, 0);
  }
  for (std::size_t i = 0; i < server.stream_count(); ++i) {
    EXPECT_EQ(server.stream(i).frames_seen(), rounds);
    EXPECT_GT(server.stream_sim_seconds(i), 0.0);
    const auto& h = prof::histogram(
        stream::StreamServer<double>::latency_histogram_name(
            server.stream(i).config().id));
    EXPECT_EQ(h.count(), rounds);
    EXPECT_GT(h.quantile(0.5), 0.0);
    EXPECT_GE(h.quantile(0.99), h.quantile(0.5));
  }
  server.pool().drain();  // stats are consistent once workers go idle
  const auto st = server.pool().stats();
  EXPECT_EQ(st.completed, 4 * rounds);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(st.tenant_served.at(s), rounds);
  }
  // The 0.25-weight tenant needs four scheduler visits per credit, so its
  // skipped visits register as starvation even though every frame completes.
  EXPECT_GT(st.starved_rounds, 0);
  EXPECT_GT(st.tenant_starved.at(3), 0);
}

TEST(StreamServer, MigratesStreamBetweenRounds) {
  stream::StreamServeOptions opt;
  opt.pool.workers = 2;
  opt.pool.mode = ExecMode::Functional;
  for (int s = 0; s < 2; ++s) {
    opt.streams.push_back(small_stream(s, 200 + static_cast<std::uint64_t>(s)));
  }
  stream::StreamServer<double> server(std::move(opt));
  for (int r = 0; r < 9; ++r) server.run_round();

  // Reference: an identical stream stepped sequentially to the same frame.
  stream::CameraStream<double> ref(server.stream(1).config());
  Device rdev;
  for (int i = 0; i < 9; ++i) ref.step(rdev);

  const std::string path = "/tmp/caqr_test_migrate.ckpt";
  ASSERT_TRUE(server.migrate_stream(1, path));
  EXPECT_EQ(server.stream(1).frames_seen(), 9);
  const auto res = server.run_round();
  EXPECT_EQ(res.done, 2);
  EXPECT_EQ(server.stream(1).frames_seen(), 10);

  Device cmp;
  ref.step(rdev);
  expect_triangle_bits_equal(ref.rpca().window().r(rdev),
                             server.stream(1).rpca().window().r(cmp),
                             "post-migration window R");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace caqr

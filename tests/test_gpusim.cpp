// Tests for the GPU simulator: machine models, launch timing arithmetic,
// timeline aggregation, and Functional / ModelOnly equivalence.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/report.hpp"
#include "kernels/kernels.hpp"
#include "linalg/random_matrix.hpp"

namespace caqr {
namespace {

using gpusim::BlockStats;
using gpusim::Device;
using gpusim::ExecMode;
using gpusim::GpuMachineModel;
using gpusim::PcieModel;

TEST(MachineModel, C2050Peak) {
  const auto m = GpuMachineModel::c2050();
  // 14 SMs x 32 lanes x 1.15 GHz x 2 (FMA) = 1.03 TFLOP/s.
  EXPECT_NEAR(m.peak_flops(), 1.0304e12, 1e9);
  EXPECT_DOUBLE_EQ(m.dram_bw_gbs, 144.0);
}

TEST(MachineModel, Gtx480FasterThanC2050) {
  const auto a = GpuMachineModel::c2050();
  const auto b = GpuMachineModel::gtx480();
  EXPECT_GT(b.peak_flops(), a.peak_flops());
  EXPECT_GT(b.dram_bw_gbs, a.dram_bw_gbs);
}

TEST(MachineModel, PcieTransferTime) {
  PcieModel link;
  // Latency only for a zero-byte transfer.
  EXPECT_NEAR(link.transfer_seconds(0), 15e-6, 1e-12);
  // 5 GB at 5 GB/s = 1 s plus latency.
  EXPECT_NEAR(link.transfer_seconds(5e9), 1.0 + 15e-6, 1e-9);
}

TEST(MachineModel, PcieTransferEdgeCases) {
  PcieModel link;
  // A zero-byte transfer is never free: it still pays the initiation
  // latency exactly.
  EXPECT_DOUBLE_EQ(link.transfer_seconds(0), 15e-6);
  // Small transfers are latency-dominated: 4 KB takes < 1 us of bandwidth
  // time against 15 us of latency.
  const double t4k = link.transfer_seconds(4096);
  EXPECT_GT(t4k, 15e-6);
  EXPECT_LT(t4k - 15e-6, 1e-6);
  // Strictly monotone in bytes, even byte by byte.
  EXPECT_LT(link.transfer_seconds(1), link.transfer_seconds(2));
  // Custom link parameters: a latency-free link is pure bandwidth.
  const PcieModel fast{40.0, 0.0};
  EXPECT_DOUBLE_EQ(fast.transfer_seconds(40e9), 1.0);
  EXPECT_DOUBLE_EQ(fast.transfer_seconds(0), 0.0);
}

TEST(Device, WaitUntilAdvancesClockMonotonically) {
  Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
  EXPECT_DOUBLE_EQ(dev.wait_until(1e-3), 1e-3);
  EXPECT_DOUBLE_EQ(dev.elapsed_seconds(), 1e-3);
  // A rendezvous in the past never rolls the clock back.
  EXPECT_DOUBLE_EQ(dev.wait_until(1e-6), 1e-3);
  EXPECT_DOUBLE_EQ(dev.elapsed_seconds(), 1e-3);
}

TEST(Device, LabeledTransferAccountsUnderLabel) {
  Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
  const PcieModel link{40.0, 2.0};
  dev.transfer(1e9, link, "link_r_triangle");
  // The op is charged under its label, not the default pcie_transfer.
  EXPECT_EQ(dev.profile("pcie_transfer"), nullptr);
  ASSERT_NE(dev.profile("link_r_triangle"), nullptr);
  EXPECT_NEAR(dev.elapsed_seconds(), 1e9 / 40e9 + 2e-6, 1e-12);
}

// A compute-bound launch: time = launch overhead + cycles / (SMs * clock).
TEST(Device, ComputeBoundLaunchTiming) {
  auto model = GpuMachineModel::c2050();
  Device dev(model, ExecMode::ModelOnly);

  BlockStats s;
  s.flops = 1000;
  s.issue_cycles = 1e6;  // dominates
  kernels::CostOnlyKernel k{"k", s};
  dev.launch(k, 28);  // 2 blocks per SM

  const double cycles = 1e6 * model.issue_stall_factor;
  const double expect =
      model.kernel_launch_us * 1e-6 + 28.0 * cycles / 14.0 / model.clock_hz();
  EXPECT_NEAR(dev.elapsed_seconds(), expect, expect * 1e-12);
}

// A memory-bound launch: time = launch overhead + bytes / bandwidth.
TEST(Device, MemoryBoundLaunchTiming) {
  auto model = GpuMachineModel::c2050();
  Device dev(model, ExecMode::ModelOnly);

  BlockStats s;
  s.gmem_bytes = 144e9 / 100.0;  // exactly 10 ms of DRAM traffic per block
  kernels::CostOnlyKernel k{"k", s};
  dev.launch(k, 1);
  EXPECT_NEAR(dev.elapsed_seconds(), model.kernel_launch_us * 1e-6 + 0.01,
              1e-9);
}

// The latency floor: one huge block cannot be spread over SMs.
TEST(Device, LatencyFloorForFewBlocks) {
  auto model = GpuMachineModel::c2050();
  model.issue_stall_factor = 1.0;
  Device dev(model, ExecMode::ModelOnly);

  BlockStats s;
  s.issue_cycles = 1e6;
  kernels::CostOnlyKernel k{"k", s};
  dev.launch(k, 1);  // one block: 13 of 14 SMs idle

  const double expect =
      model.kernel_launch_us * 1e-6 + 1e6 / model.clock_hz();
  EXPECT_NEAR(dev.elapsed_seconds(), expect, expect * 1e-12);

  // 14 such blocks take the same core time (perfect spread)...
  Device dev14(model, ExecMode::ModelOnly);
  dev14.launch(k, 14);
  EXPECT_NEAR(dev14.elapsed_seconds(), expect, expect * 1e-12);
}

TEST(Device, SyncAndSmemCyclesCharged) {
  auto model = GpuMachineModel::c2050();
  model.issue_stall_factor = 1.0;
  Device dev(model, ExecMode::ModelOnly);
  BlockStats s;
  s.issue_cycles = 100;
  s.smem_accesses = 50;
  s.syncs = 2;
  kernels::CostOnlyKernel k{"k", s};
  dev.launch(k, 14);
  const double cycles = 100 + 50 * model.smem_cycles_per_access +
                        2 * model.sync_cycles;
  EXPECT_NEAR(dev.elapsed_seconds(),
              model.kernel_launch_us * 1e-6 + cycles / model.clock_hz(),
              1e-15);
}

TEST(Device, ProfilesAggregateByKernelName) {
  Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
  BlockStats s;
  s.flops = 10;
  s.issue_cycles = 10;
  kernels::CostOnlyKernel a{"alpha", s};
  kernels::CostOnlyKernel b{"beta", s};
  dev.launch(a, 3);
  dev.launch(a, 2);
  dev.launch(b, 1);

  const auto* pa = dev.profile("alpha");
  ASSERT_NE(pa, nullptr);
  EXPECT_EQ(pa->launches, 2);
  EXPECT_EQ(pa->blocks, 5);
  EXPECT_DOUBLE_EQ(pa->flops, 50);
  const auto* pb = dev.profile("beta");
  ASSERT_NE(pb, nullptr);
  EXPECT_EQ(pb->launches, 1);
  EXPECT_EQ(dev.profiles().size(), 2u);
  EXPECT_EQ(dev.profile("gamma"), nullptr);

  const double total = pa->seconds + pb->seconds;
  EXPECT_NEAR(dev.elapsed_seconds(), total, 1e-15);

  dev.reset_timeline();
  EXPECT_EQ(dev.elapsed_seconds(), 0.0);
  EXPECT_TRUE(dev.profiles().empty());
}

TEST(Device, TransferAndExternalTime) {
  Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
  dev.transfer(1e9);  // 1 GB over PCIe at 5 GB/s
  EXPECT_NEAR(dev.elapsed_seconds(), 0.2 + 15e-6, 1e-9);
  dev.add_external_seconds(0.5, "cpu_svd");
  EXPECT_NEAR(dev.elapsed_seconds(), 0.7 + 15e-6, 1e-9);
  EXPECT_NE(dev.profile("cpu_svd"), nullptr);
  EXPECT_NE(dev.profile("pcie_transfer"), nullptr);
}

TEST(Device, ZeroBlockLaunchIsFree) {
  Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
  kernels::CostOnlyKernel k{"k", BlockStats{}};
  dev.launch(k, 0);
  EXPECT_EQ(dev.elapsed_seconds(), 0.0);
}

// ModelOnly must produce the identical timeline to Functional, since
// block_stats is the only input to the simulated clock.
TEST(Device, FunctionalAndModelOnlyTimelinesMatch) {
  auto run = [&](ExecMode mode) {
    Device dev(GpuMachineModel::c2050(), mode);
    auto a = gaussian_matrix<float>(256, 16, 3);
    std::vector<idx> offsets = {0, 64, 128, 192, 256};
    std::vector<float> taus(4 * 16, 0.0f);
    kernels::FactorKernel<float> k{
        a.view(), &offsets, taus.data(),
        kernels::cost_params(
            kernels::ReductionVariant::RegisterSerialTransposed),
        8.0};
    dev.launch(k, k.num_blocks());
    return dev.elapsed_seconds();
  };
  const double t_func = run(ExecMode::Functional);
  const double t_model = run(ExecMode::ModelOnly);
  EXPECT_DOUBLE_EQ(t_func, t_model);
}

TEST(Device, GFlopsReporting) {
  Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
  BlockStats s;
  s.flops = 1e9;
  s.issue_cycles = 1;
  kernels::CostOnlyKernel k{"k", s};
  dev.launch(k, 1);
  const auto* p = dev.profile("k");
  ASSERT_NE(p, nullptr);
  EXPECT_GT(p->gflops(), 0.0);
  EXPECT_NEAR(p->gflops(), 1e9 / p->seconds * 1e-9, 1e-6);
}

// stats_summary must partition the grid exactly: same totals as iterating
// block_stats over every block, for ragged shapes that produce multiple
// classes.
TEST(StatsSummary, MatchesPerBlockTotalsForApplyKernels) {
  auto panel = Matrix<float>::shape_only(1000, 16);  // ragged: 7 blocks, tail
  auto trailing = Matrix<float>::shape_only(1000, 100);  // ragged tiles too
  std::vector<idx> offsets = {0, 128, 256, 384, 512, 640, 768, 1000};
  std::vector<float> taus(7 * 16, 0.5f);

  kernels::ApplyQtHKernel<float> k{panel.view(),
                                   &offsets,
                                   taus.data(),
                                   trailing.view(),
                                   16,
                                   kernels::cost_params(
                                       kernels::ReductionVariant::RegisterSerialTransposed),
                                   8.0,
                                   3.0,
                                   false,
                                   true};
  BlockStats total_summary{}, total_blocks{};
  idx covered = 0;
  for (const auto& c : k.stats_summary()) {
    BlockStats s = c.stats;
    total_summary.flops += s.flops * c.count;
    total_summary.issue_cycles += s.issue_cycles * c.count;
    total_summary.smem_accesses += s.smem_accesses * c.count;
    total_summary.syncs += s.syncs * c.count;
    total_summary.gmem_bytes += s.gmem_bytes * c.count;
    covered += c.count;
  }
  EXPECT_EQ(covered, k.num_blocks());
  for (idx b = 0; b < k.num_blocks(); ++b) total_blocks += k.block_stats(b);
  EXPECT_NEAR(total_summary.flops, total_blocks.flops, 1e-6);
  EXPECT_NEAR(total_summary.issue_cycles, total_blocks.issue_cycles, 1e-6);
  EXPECT_NEAR(total_summary.smem_accesses, total_blocks.smem_accesses, 1e-6);
  EXPECT_NEAR(total_summary.syncs, total_blocks.syncs, 1e-6);
  EXPECT_NEAR(total_summary.gmem_bytes, total_blocks.gmem_bytes, 1.0);
}

TEST(StatsSummary, TreeKernelMixedFanins) {
  auto panel = Matrix<float>::shape_only(2000, 16);
  auto trailing = Matrix<float>::shape_only(2000, 50);
  // Mixed group sizes including a singleton (pass-through).
  GroupList groups;
  groups.push_group({0, 64, 128, 192});
  groups.push_group({256, 320, 384, 448});
  groups.push_group({512, 576});
  groups.push_group({640});
  std::vector<float> taus(static_cast<std::size_t>(groups.size()) * 16, 0.5f);
  kernels::ApplyQtTreeKernel<float> k{panel.view(),
                                      &groups,
                                      taus.data(),
                                      trailing.view(),
                                      16,
                                      kernels::cost_params(
                                          kernels::ReductionVariant::RegisterSerialTransposed),
                                      8.0,
                                      3.0,
                                      false,
                                      true};
  BlockStats total_summary{}, total_blocks{};
  idx covered = 0;
  for (const auto& c : k.stats_summary()) {
    total_summary.flops += c.stats.flops * c.count;
    total_summary.gmem_bytes += c.stats.gmem_bytes * c.count;
    covered += c.count;
  }
  EXPECT_EQ(covered, k.num_blocks());
  for (idx b = 0; b < k.num_blocks(); ++b) total_blocks += k.block_stats(b);
  EXPECT_NEAR(total_summary.flops, total_blocks.flops, 1e-6);
  EXPECT_NEAR(total_summary.gmem_bytes, total_blocks.gmem_bytes, 1.0);
}

TEST(Report, ProfileTableAndCsv) {
  Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
  BlockStats s;
  s.flops = 1e6;
  s.issue_cycles = 100;
  kernels::CostOnlyKernel k{"mykernel", s};
  dev.launch(k, 4);
  dev.add_external_seconds(0.25, "cpu_leg");

  const auto table = gpusim::profile_table(dev);
  EXPECT_EQ(table.rows(), 2u);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("mykernel"), std::string::npos);
  EXPECT_NE(text.find("cpu_leg"), std::string::npos);
  const std::string csv = gpusim::profile_csv(dev);
  EXPECT_NE(csv.find("kernel,launches,blocks,ms,share,GFLOP/s"),
            std::string::npos);
}

}  // namespace
}  // namespace caqr

// Tests for TSQR: factorization invariants across shapes, tree arities and
// reduction variants; equivalence with the reference QR; apply/form-Q
// consistency; tree structure properties; timing sanity.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "gpusim/device.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/random_matrix.hpp"
#include "tsqr/tsqr.hpp"

namespace caqr {
namespace {

using gpusim::Device;
using gpusim::ExecMode;
using gpusim::GpuMachineModel;
using tsqr::split_rows;
using tsqr::TsqrOptions;

TEST(SplitRows, BlocksCoverRangeAndRespectMinimum) {
  // 1000 rows, blocks of 128: 7 blocks, last absorbs the remainder.
  auto off = split_rows(1000, 128, 16);
  ASSERT_EQ(off.size(), 8u);
  EXPECT_EQ(off.front(), 0);
  EXPECT_EQ(off.back(), 1000);
  for (std::size_t i = 0; i + 1 < off.size(); ++i) {
    EXPECT_GE(off[i + 1] - off[i], 16);
    EXPECT_LT(off[i + 1] - off[i], 2 * 128);
  }
  // Fewer rows than a block: single block.
  auto one = split_rows(100, 128, 16);
  ASSERT_EQ(one.size(), 2u);
  EXPECT_EQ(one[1], 100);
  // Exactly one block.
  auto exact = split_rows(128, 128, 16);
  ASSERT_EQ(exact.size(), 2u);
}

struct TsqrCase {
  idx m, n, block_rows, arity;
};

class TsqrShapes : public ::testing::TestWithParam<TsqrCase> {};

TEST_P(TsqrShapes, FactorizationInvariants) {
  const auto [m, n, h, arity] = GetParam();
  TsqrOptions opt;
  opt.block_rows = h;
  opt.arity = arity;

  auto a = gaussian_matrix<double>(m, n, 97);
  Device dev;
  auto f = tsqr::tsqr(dev, a.view(), opt);

  // R upper triangular and matches the reference factorization up to signs.
  auto r = f.r();
  auto ref = a.clone();
  std::vector<double> tau(static_cast<std::size_t>(n));
  geqrf(ref.view(), tau.data());
  auto r_ref = extract_r(ref.block(0, 0, std::min(m, n), n));
  EXPECT_LT(r_factor_difference(r_ref.view(), r.view()), 1e-11);

  // Q orthonormal, A = Q R.
  auto q = f.form_q(dev, opt);
  EXPECT_LT(orthogonality_error(q.view()), 1e-12 * std::sqrt(double(n)) * 50);
  EXPECT_LT(factorization_residual(a.view(), q.view(), r.view()), 1e-13 * 100);

  // Simulated time advanced.
  EXPECT_GT(dev.elapsed_seconds(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TsqrShapes,
    ::testing::Values(TsqrCase{64, 16, 64, 0},      // single block
                      TsqrCase{256, 16, 64, 0},     // quad tree, one level
                      TsqrCase{1024, 16, 64, 0},    // quad tree, two levels
                      TsqrCase{1000, 16, 64, 0},    // ragged tail block
                      TsqrCase{1024, 16, 64, 2},    // binary tree
                      TsqrCase{1024, 16, 64, 8},    // wide tree
                      TsqrCase{1024, 16, 64, 64},   // flat tree (one combine)
                      TsqrCase{512, 8, 128, 0},     // arity 16
                      TsqrCase{333, 5, 32, 3},      // odd everything
                      TsqrCase{2048, 32, 128, 4},   // wider panel
                      TsqrCase{16, 16, 64, 0}));    // square, single block

TEST(Tsqr, ApplyQtToOriginalGivesR) {
  const idx m = 512, n = 16;
  auto a = gaussian_matrix<double>(m, n, 3);
  Device dev;
  TsqrOptions opt;
  opt.block_rows = 64;
  auto f = tsqr::tsqr(dev, a.view(), opt);

  auto c = a.clone();
  tsqr::tsqr_apply_qt(dev, f.storage.view(), f.meta, c.view(), opt);
  auto r = f.r();
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      const double expect = i <= j ? r(i, j) : 0.0;
      ASSERT_NEAR(c(i, j), expect, 1e-11) << i << "," << j;
    }
  }
}

TEST(Tsqr, ApplyQThenQtIsIdentity) {
  const idx m = 700, n = 12;
  auto a = gaussian_matrix<double>(m, n, 4);
  Device dev;
  TsqrOptions opt;
  opt.block_rows = 96;
  auto f = tsqr::tsqr(dev, a.view(), opt);

  auto c0 = gaussian_matrix<double>(m, 9, 5);
  auto c = c0.clone();
  tsqr::tsqr_apply_qt(dev, f.storage.view(), f.meta, c.view(), opt);
  tsqr::tsqr_apply_q(dev, f.storage.view(), f.meta, c.view(), opt);
  for (idx j = 0; j < 9; ++j) {
    for (idx i = 0; i < m; ++i) ASSERT_NEAR(c(i, j), c0(i, j), 1e-11);
  }
}

TEST(Tsqr, RIndependentOfTreeShape) {
  const idx m = 2048, n = 16;
  auto a = gaussian_matrix<double>(m, n, 7);
  Device dev;

  Matrix<double> r_prev;
  bool first = true;
  for (const idx arity : {2, 4, 8, 32}) {
    TsqrOptions opt;
    opt.block_rows = 64;
    opt.arity = arity;
    auto f = tsqr::tsqr(dev, a.view(), opt);
    auto r = f.r();
    if (!first) {
      EXPECT_LT(r_factor_difference(r_prev.view(), r.view()), 1e-11)
          << "arity " << arity;
    }
    r_prev = std::move(r);
    first = false;
  }
}

TEST(Tsqr, LevelCountMatchesTreeArity) {
  // 4096 rows, 64-row blocks => 64 leaves.
  auto a = gaussian_matrix<double>(4096, 16, 9);
  Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);

  auto levels_for = [&](idx arity) {
    TsqrOptions opt;
    opt.block_rows = 64;
    opt.arity = arity;
    auto f = tsqr::tsqr(dev, a.view(), opt);
    return static_cast<std::size_t>(f.meta.num_levels());
  };
  EXPECT_EQ(levels_for(2), 6u);   // log2(64)
  EXPECT_EQ(levels_for(4), 3u);   // log4(64)
  EXPECT_EQ(levels_for(8), 2u);
  EXPECT_EQ(levels_for(64), 1u);  // flat
}

TEST(Tsqr, DefaultArityIsBlockRowsOverWidth) {
  TsqrOptions opt;
  opt.block_rows = 64;
  EXPECT_EQ(opt.effective_arity(16), 4);  // the paper's quad tree
  EXPECT_EQ(opt.effective_arity(8), 8);
  EXPECT_EQ(opt.effective_arity(64), 2);  // floor at binary
  opt.arity = 3;
  EXPECT_EQ(opt.effective_arity(16), 3);  // explicit override wins
}

TEST(Tsqr, FloatPrecisionInvariants) {
  const idx m = 4096, n = 16;
  auto a = gaussian_matrix<float>(m, n, 13);
  Device dev;
  TsqrOptions opt;
  opt.block_rows = 128;
  auto f = tsqr::tsqr(dev, a.view(), opt);
  auto q = f.form_q(dev, opt);
  auto r = f.r();
  EXPECT_LT(orthogonality_error(q.view()), 5e-5);
  EXPECT_LT(factorization_residual(a.view(), q.view(), r.view()), 5e-5);
}

TEST(Tsqr, IllConditionedStability) {
  // TSQR is Householder-based: must stay backward stable where CholeskyQR
  // would fail (cond ~ 1e8 in double).
  auto a = matrix_with_condition<double>(1024, 12, 1e8, 15);
  Device dev;
  TsqrOptions opt;
  opt.block_rows = 64;
  auto f = tsqr::tsqr(dev, a.view(), opt);
  auto q = f.form_q(dev, opt);
  EXPECT_LT(orthogonality_error(q.view()), 1e-12);
}

TEST(Tsqr, DeterministicAcrossThreadPools) {
  auto a = gaussian_matrix<double>(1024, 16, 17);
  auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    Device dev(GpuMachineModel::c2050(), ExecMode::Functional, &pool);
    TsqrOptions opt;
    opt.block_rows = 64;
    auto f = tsqr::tsqr(dev, a.view(), opt);
    return std::move(f.storage);
  };
  auto s1 = run(1);
  auto s4 = run(4);
  for (idx j = 0; j < s1.cols(); ++j) {
    for (idx i = 0; i < s1.rows(); ++i) {
      ASSERT_EQ(s1(i, j), s4(i, j)) << i << "," << j;  // bitwise
    }
  }
}

TEST(Tsqr, KernelProfilesRecorded) {
  auto a = gaussian_matrix<double>(1024, 16, 19);
  Device dev;
  TsqrOptions opt;
  opt.block_rows = 64;
  auto f = tsqr::tsqr(dev, a.view(), opt);
  (void)f;
  EXPECT_NE(dev.profile("factor"), nullptr);
  EXPECT_NE(dev.profile("factor_tree"), nullptr);
  EXPECT_NE(dev.profile("transpose"), nullptr);  // transposed_panels default
  const auto* fp = dev.profile("factor");
  EXPECT_EQ(fp->launches, 1);
  EXPECT_EQ(fp->blocks, 16);  // 1024 / 64
}

TEST(Tsqr, QuadTreeBeatsBinaryOnSimulatedTime) {
  // The paper's motivation for the quad tree: fewer levels => fewer kernel
  // launches and latency-bound top-of-tree steps.
  auto a = gaussian_matrix<float>(65536, 16, 23);
  auto time_for = [&](idx arity) {
    Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
    TsqrOptions opt;
    opt.block_rows = 64;
    opt.arity = arity;
    auto f = tsqr::tsqr(dev, a.view(), opt);
    (void)f;
    return dev.elapsed_seconds();
  };
  EXPECT_LT(time_for(4), time_for(2));
}

}  // namespace
}  // namespace caqr

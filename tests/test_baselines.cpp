// Tests for the baseline QR implementations: numerical correctness of each
// functional path, cost-model sanity (ordering and scaling), and the
// stability contrast between Householder-based methods and
// CholeskyQR / Gram-Schmidt that motivates the paper's algorithm choice.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/qr_baselines.hpp"
#include "caqr/caqr.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"

namespace caqr {
namespace {

using baselines::BaselineResult;
using gpusim::Device;
using gpusim::ExecMode;
using gpusim::GpuMachineModel;

template <typename T>
void expect_valid_qr(ConstMatrixView<T> a, const BaselineResult<T>& res,
                     double tol) {
  auto r = extract_r(res.factored.view());
  auto q = form_q(res.factored.view(), res.tau.data(),
                  std::min(a.rows(), a.cols()));
  EXPECT_LT(orthogonality_error(q.view()), tol);
  EXPECT_LT(factorization_residual(a, q.view(), r.view()), tol);
}

TEST(HybridQr, FunctionalFactorizationIsCorrect) {
  auto a = gaussian_matrix<double>(500, 96, 7);
  Device dev;
  auto res = baselines::hybrid_qr(dev, a.clone());
  expect_valid_qr<double>(a.view(), res, 1e-12);
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_GT(res.cpu_seconds, 0.0);
  EXPECT_GT(res.pcie_seconds, 0.0);
}

TEST(HybridQr, LookaheadNeverSlower) {
  for (const idx n : {192, 2048}) {
    baselines::HybridQrOptions with, without;
    with.lookahead = true;
    without.lookahead = false;
    Device d1(GpuMachineModel::c2050(), ExecMode::ModelOnly);
    Device d2(GpuMachineModel::c2050(), ExecMode::ModelOnly);
    auto r1 = baselines::hybrid_qr(d1, Matrix<float>(8192, n), with);
    auto r2 = baselines::hybrid_qr(d2, Matrix<float>(8192, n), without);
    EXPECT_LE(r1.seconds, r2.seconds * 1.0001) << "n=" << n;
  }
}

TEST(HybridQr, LookaheadHelpsWideNotSkinny) {
  auto ratio_for = [](idx n) {
    baselines::HybridQrOptions with, without;
    with.lookahead = true;
    without.lookahead = false;
    Device d1(GpuMachineModel::c2050(), ExecMode::ModelOnly);
    Device d2(GpuMachineModel::c2050(), ExecMode::ModelOnly);
    auto r1 = baselines::hybrid_qr(d1, Matrix<float>(8192, n), with);
    auto r2 = baselines::hybrid_qr(d2, Matrix<float>(8192, n), without);
    return r2.seconds / r1.seconds;
  };
  // Skinny: nothing to overlap (one or two panels). Wide: overlap wins.
  EXPECT_NEAR(ratio_for(192), 1.0, 0.05);
  EXPECT_GT(ratio_for(8192), 1.1);
}

TEST(GpuBlas2Qr, FunctionalFactorizationIsCorrect) {
  auto a = gaussian_matrix<double>(400, 48, 8);
  Device dev;
  auto res = baselines::gpu_blas2_qr(dev, a.clone(),
                                     baselines::GpuBlas2QrOptions::tuned());
  expect_valid_qr<double>(a.view(), res, 1e-12);
}

TEST(GpuBlas2Qr, TimeScalesWithMatrixHeight) {
  Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
  auto r1 = baselines::gpu_blas2_qr(dev, Matrix<float>(10000, 100));
  auto r2 = baselines::gpu_blas2_qr(dev, Matrix<float>(100000, 100));
  EXPECT_GT(r2.seconds, 5.0 * r1.seconds);
  EXPECT_LT(r2.seconds, 15.0 * r1.seconds);
}

TEST(GpuBlockedQr, FunctionalFactorizationIsCorrect) {
  auto a = gaussian_matrix<double>(300, 80, 9);
  Device dev;
  auto res = baselines::gpu_blocked_qr(dev, a.clone());
  expect_valid_qr<double>(a.view(), res, 1e-12);
}

TEST(CpuBlockedQr, FunctionalFactorizationIsCorrect) {
  auto a = gaussian_matrix<double>(300, 64, 10);
  Device dev;
  auto res = baselines::cpu_blocked_qr(dev, a.clone(),
                                       gpusim::CpuMachineModel::nehalem_8core());
  expect_valid_qr<double>(a.view(), res, 1e-12);
}

TEST(Baselines, AllProduceSameRUpToSigns) {
  auto a = gaussian_matrix<double>(256, 64, 11);
  Device dev;
  auto hybrid = baselines::hybrid_qr(dev, a.clone());
  auto blas2 = baselines::gpu_blas2_qr(dev, a.clone());
  auto cpu = baselines::cpu_blocked_qr(dev, a.clone(),
                                       gpusim::CpuMachineModel::nehalem_8core());
  auto fcaqr = caqr_factor(dev, a.view());

  auto r0 = extract_r(hybrid.factored.view());
  for (const auto& r : {extract_r(blas2.factored.view()),
                        extract_r(cpu.factored.view()), fcaqr.r()}) {
    EXPECT_LT(r_factor_difference(r0.view(), r.view()), 1e-10);
  }
}

// The paper's core performance claim, as a property: for tall-skinny
// matrices CAQR beats every baseline on the simulated platform; for large
// square matrices the GEMM-rich libraries win (crossover, Figure 9).
TEST(Baselines, CaqrWinsTallSkinnyLosesSquare) {
  auto time_caqr = [](idx m, idx n) {
    Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
    auto f = caqr_factor(dev, Matrix<float>(m, n).view());
    (void)f;
    return dev.elapsed_seconds();
  };
  auto time_magma = [](idx m, idx n) {
    Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
    return baselines::hybrid_qr(dev, Matrix<float>(m, n)).seconds;
  };
  // Tall-skinny: 100k x 192.
  EXPECT_LT(time_caqr(100000, 192), 0.5 * time_magma(100000, 192));
  // Square 8192: MAGMA-like wins.
  EXPECT_GT(time_caqr(8192, 8192), time_magma(8192, 8192));
}

TEST(CholeskyQr, AccurateForWellConditioned) {
  auto a = matrix_with_condition<double>(200, 20, 10.0, 12);
  auto qr = baselines::cholesky_qr(a.view());
  ASSERT_TRUE(qr.ok);
  EXPECT_LT(orthogonality_error(qr.q.view()), 1e-13);
  EXPECT_LT(factorization_residual(a.view(), qr.q.view(), qr.r.view()), 1e-13);
}

TEST(CholeskyQr, LosesOrthogonalityForIllConditioned) {
  // cond^2 amplification: at cond 1e5 in double, Q^T Q - I ~ 1e-6, while
  // Householder stays at ~1e-15. This is §II's stability argument.
  auto a = matrix_with_condition<double>(400, 24, 1e5, 13);
  auto chol = baselines::cholesky_qr(a.view());
  ASSERT_TRUE(chol.ok);
  const double chol_err = orthogonality_error(chol.q.view());

  Device dev;
  auto f = caqr_factor(dev, a.view());
  auto q = f.form_q(dev, 24);
  const double caqr_err = orthogonality_error(q.view());

  EXPECT_GT(chol_err, 1e3 * caqr_err);
  EXPECT_LT(caqr_err, 1e-12);
}

TEST(CholeskyQr, BreaksDownWhenGramMatrixIndefinite) {
  // cond ~ 1e9 in double squares to 1e18 > 1/eps: Cholesky can fail or be
  // catastrophically inaccurate. Accept either breakdown or bad Q.
  auto a = matrix_with_condition<double>(300, 16, 1e9, 14);
  auto chol = baselines::cholesky_qr(a.view());
  if (chol.ok) {
    EXPECT_GT(orthogonality_error(chol.q.view()), 1e-4);
  } else {
    SUCCEED();
  }
}

TEST(GramSchmidt, ModifiedBeatsClassicalOnIllConditioned) {
  auto a = matrix_with_condition<double>(300, 24, 1e7, 15);
  auto cgs = baselines::gram_schmidt_qr(a.view(), baselines::GramSchmidt::Classical);
  auto mgs = baselines::gram_schmidt_qr(a.view(), baselines::GramSchmidt::Modified);
  const double cgs_err = orthogonality_error(cgs.q.view());
  const double mgs_err = orthogonality_error(mgs.q.view());
  EXPECT_LT(mgs_err, cgs_err * 0.1);
  // Both still factor A correctly (residual is fine; orthogonality is not).
  EXPECT_LT(factorization_residual(a.view(), cgs.q.view(), cgs.r.view()), 1e-10);
  EXPECT_LT(factorization_residual(a.view(), mgs.q.view(), mgs.r.view()), 1e-10);
}

TEST(GramSchmidt, BothAccurateOnWellConditioned) {
  auto a = gaussian_matrix<double>(100, 12, 16);
  for (const auto kind :
       {baselines::GramSchmidt::Classical, baselines::GramSchmidt::Modified}) {
    auto qr = baselines::gram_schmidt_qr(a.view(), kind);
    EXPECT_LT(orthogonality_error(qr.q.view()), 1e-12);
    EXPECT_LT(factorization_residual(a.view(), qr.q.view(), qr.r.view()),
              1e-13);
  }
}

TEST(PanelWork, ClosedFormMatchesLoopStructure) {
  // blas2_panel_work(4, 2): j=0: len 4, cols 2 -> 32 flops, 96 bytes;
  // j=1: len 3, cols 1 -> 12 flops, 36 bytes.
  const auto w = baselines::blas2_panel_work(4, 2);
  EXPECT_DOUBLE_EQ(w.flops, 44.0);
  EXPECT_DOUBLE_EQ(w.bytes, 132.0);
  EXPECT_EQ(w.columns, 2);
  // Degenerate: single row -> len 1 on the first column, no work.
  const auto w1 = baselines::blas2_panel_work(1, 1);
  EXPECT_EQ(w1.columns, 0);
  EXPECT_DOUBLE_EQ(w1.flops, 0.0);
}

}  // namespace
}  // namespace caqr

// Tests for the numerics subsystem: Verifier metrics, sign
// canonicalization, NaN/Inf guards, and the scaled-reflector /
// Jacobi-threshold hardening regressions.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "gpusim/device.hpp"
#include "linalg/householder.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/random_matrix.hpp"
#include "linalg/svd.hpp"
#include "numerics/finite_check.hpp"
#include "numerics/verifier.hpp"
#include "rpca/rpca.hpp"
#include "svd/tall_skinny_svd.hpp"
#include "tsqr/incremental.hpp"

namespace caqr {
namespace {

using numerics::VerifyReport;

Matrix<double> reference_q(const Matrix<double>& a, Matrix<double>* r_out) {
  Matrix<double> fac = Matrix<double>::from(a.view());
  std::vector<double> tau(static_cast<std::size_t>(a.cols()));
  geqrf(fac.view(), tau.data());
  *r_out = extract_r(fac.view());
  return form_q(fac.view(), tau.data(), a.cols());
}

TEST(Verifier, PassesReferenceQr) {
  const auto a = matrix_with_condition<double>(80, 12, 1e6, 1);
  Matrix<double> r(0, 0);
  const Matrix<double> q = reference_q(a, &r);
  const VerifyReport rep = numerics::verify_qr(a.view(), q.view(), r.view());
  EXPECT_TRUE(rep.finite);
  EXPECT_TRUE(rep.pass);
  EXPECT_LT(rep.residual, rep.tolerance);
  EXPECT_LT(rep.orthogonality, rep.tolerance);
}

TEST(Verifier, FlagsCorruptionNaiveChecksMiss) {
  const auto a = matrix_with_condition<double>(80, 12, 1e3, 2);
  Matrix<double> r(0, 0);
  Matrix<double> q = reference_q(a, &r);
  // A single relative 1e-3 perturbation: everything stays finite and
  // plausible-looking, but the factorization no longer reproduces A.
  r(3, 7) *= 1.0 + 1e-3;
  const VerifyReport rep = numerics::verify_qr(a.view(), q.view(), r.view());
  EXPECT_TRUE(rep.finite);
  EXPECT_FALSE(rep.pass);
  EXPECT_GT(rep.residual, rep.tolerance);
}

TEST(Verifier, NonFiniteFactorsFail) {
  const auto a = matrix_with_condition<double>(40, 8, 1e2, 3);
  Matrix<double> r(0, 0);
  Matrix<double> q = reference_q(a, &r);
  q(5, 2) = std::numeric_limits<double>::quiet_NaN();
  const VerifyReport rep = numerics::verify_qr(a.view(), q.view(), r.view());
  EXPECT_FALSE(rep.finite);
  EXPECT_FALSE(rep.pass);
}

TEST(Verifier, ExtremeUniformScalesStayMeasurable) {
  // ||A||_F^2 overflows (or vanishes) at these scales; the verifier must
  // equilibrate instead of reporting Inf/NaN or 0/0.
  for (const double scale : {1e-300, 1e300}) {
    const auto a = stress_matrix<double>(64, 8, 1e4, scale, 4);
    Matrix<double> r(0, 0);
    const Matrix<double> q = reference_q(a, &r);
    const VerifyReport rep = numerics::verify_qr(a.view(), q.view(), r.view());
    EXPECT_TRUE(std::isfinite(rep.residual)) << scale;
    EXPECT_TRUE(rep.pass) << "scale " << scale << " residual " << rep.residual;
  }
}

TEST(Verifier, GramResidualVerifiesROnlyPaths) {
  gpusim::Device dev;
  const auto a = matrix_with_condition<double>(96, 8, 1e12, 5);
  tsqr::IncrementalTsqr<double> inc(dev, 8);
  for (idx r0 = 0; r0 < 96; r0 += 24) {
    inc.push(a.view().block(r0, 0, 24, 8));
  }
  const VerifyReport rep = numerics::verify_r(a.view(), inc.r().view());
  EXPECT_FALSE(rep.has_q);
  EXPECT_TRUE(rep.pass) << "gram residual " << rep.gram_residual;

  // And it catches a wrong R.
  Matrix<double> bad = Matrix<double>::from(inc.r().view());
  bad(0, 0) *= 1.001;
  EXPECT_FALSE(numerics::verify_r(a.view(), bad.view()).pass);
}

TEST(Verifier, CanonicalizationMakesDiagNonNegativeAndPreservesQr) {
  const auto a = matrix_with_condition<double>(30, 6, 1e2, 6);
  Matrix<double> r(0, 0);
  Matrix<double> q = reference_q(a, &r);
  const idx flips = numerics::canonicalize_qr(q.view(), r.view());
  (void)flips;
  for (idx i = 0; i < r.rows(); ++i) EXPECT_GE(r(i, i), 0.0);
  // Q R still reproduces A after the paired sign flips.
  EXPECT_TRUE(numerics::verify_qr(a.view(), q.view(), r.view()).pass);

  // Two canonicalized R factors of the same A agree directly.
  Matrix<double> r2 = Matrix<double>::from(r.view());
  numerics::canonicalize_r(r2.view());
  EXPECT_LT(r_factor_difference(r.view(), r2.view()), 1e-14);
}

TEST(FiniteCheck, DetectsNanAndInf) {
  Matrix<double> a = Matrix<double>::zeros(4, 4);
  EXPECT_TRUE(numerics::finite_check(a.view()));
  EXPECT_EQ(numerics::count_nonfinite(a.view()), 0);
  a(1, 2) = std::numeric_limits<double>::infinity();
  a(3, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(numerics::finite_check(a.view()));
  EXPECT_EQ(numerics::count_nonfinite(a.view()), 2);
}

TEST(FiniteCheck, GuardCountPolicyCountsInsteadOfAborting) {
  numerics::set_guard_policy(numerics::GuardPolicy::Count);
  numerics::reset_guard_violations();
  Matrix<double> bad = Matrix<double>::zeros(2, 2);
  bad(0, 0) = std::numeric_limits<double>::quiet_NaN();
  numerics::guard_finite(bad.view(), "test:boundary");
  numerics::guard_finite(bad.view(), "test:boundary");
  EXPECT_EQ(numerics::guard_violations(), 2);
  Matrix<double> good = Matrix<double>::zeros(2, 2);
  numerics::guard_finite(good.view(), "test:boundary");
  EXPECT_EQ(numerics::guard_violations(), 2);
  numerics::reset_guard_violations();
  numerics::set_guard_policy(numerics::GuardPolicy::Abort);
}

TEST(FiniteCheckDeathTest, GuardAbortPolicyDies) {
  numerics::set_guard_policy(numerics::GuardPolicy::Abort);
  Matrix<double> bad = Matrix<double>::zeros(2, 2);
  bad(1, 1) = std::numeric_limits<double>::infinity();
  EXPECT_DEATH(numerics::guard_finite(bad.view(), "death:boundary"),
               "death:boundary");
}

// --- Satellite 1: scaled reflector generation (xLARFG rescaling) ---

void check_reflector_maps_column(double scale) {
  // Column [1, 2, -1, 0.5] * scale: ||.|| = 2.5 * scale.
  const idx n = 4;
  std::vector<double> col = {1.0 * scale, 2.0 * scale, -1.0 * scale,
                             0.5 * scale};
  double alpha = col[0];
  std::vector<double> tail(col.begin() + 1, col.end());
  const double tau = make_householder(n, alpha, tail.data());
  ASSERT_TRUE(std::isfinite(tau)) << scale;
  EXPECT_GE(tau, 0.0);
  EXPECT_LE(tau, 2.0);
  for (const double v : tail) ASSERT_TRUE(std::isfinite(v)) << scale;
  // beta lands at -sign(alpha) * ||col||.
  EXPECT_NEAR(alpha, -2.5 * scale, 2.5 * scale * 1e-12);
  // Applying H to the original column reproduces [beta; 0; 0; 0].
  Matrix<double> c(n, 1);
  for (idx i = 0; i < n; ++i) c(i, 0) = col[static_cast<std::size_t>(i)];
  std::vector<double> work(1);
  apply_householder_left(n, tau, tail.data(), c.view(), work.data());
  EXPECT_NEAR(c(0, 0), alpha, 2.5 * scale * 1e-12);
  for (idx i = 1; i < n; ++i) {
    EXPECT_NEAR(c(i, 0), 0.0, 2.5 * scale * 1e-12) << "row " << i;
  }
}

TEST(Householder, SubnormalColumnRegression) {
  // Pre-fix: |beta| < safmin made 1/(alpha - beta) overflow; tau and the
  // reflector tail came out Inf.
  check_reflector_maps_column(1e-300);
  check_reflector_maps_column(1e-308);
}

TEST(Householder, NearOverflowColumnRegression) {
  check_reflector_maps_column(1e300);
}

TEST(Householder, WellScaledColumnsUnchanged) {
  check_reflector_maps_column(1.0);
  check_reflector_maps_column(1e-8);
  check_reflector_maps_column(1e8);
}

// --- Satellite 2: Jacobi threshold and convergence surfacing ---

TEST(JacobiSvd, HugeColumnNormsConverge) {
  // app * aqq overflows to Inf at this scale; the old product-form
  // threshold then declared every pair converged immediately.
  const auto base = matrix_with_condition<double>(8, 8, 1e3, 7);
  Matrix<double> a = Matrix<double>::from(base.view());
  for (idx j = 0; j < 8; ++j) scal(8, 1e180, a.view().col(j));
  const auto r = jacobi_svd(a.view());
  EXPECT_TRUE(r.converged);
  EXPECT_LT(orthogonality_error(r.u.view()), 1e-13);
  EXPECT_LT(orthogonality_error(r.v.view()), 1e-13);
  // Singular values scale linearly and stay finite.
  const auto rbase = jacobi_svd(base.view());
  for (std::size_t k = 0; k < r.sigma.size(); ++k) {
    ASSERT_TRUE(std::isfinite(r.sigma[k]));
    EXPECT_NEAR(r.sigma[k], rbase.sigma[k] * 1e180,
                rbase.sigma[k] * 1e180 * 1e-10);
  }
}

TEST(JacobiSvd, TinyColumnNormsConverge) {
  // app * aqq underflows to 0 at this scale; the old threshold became 0 and
  // convergence was never reached for nonzero off-diagonal Gram entries.
  const auto base = matrix_with_condition<double>(8, 8, 1e3, 8);
  Matrix<double> a = Matrix<double>::from(base.view());
  for (idx j = 0; j < 8; ++j) scal(8, 1e-140, a.view().col(j));
  const auto r = jacobi_svd(a.view());
  EXPECT_TRUE(r.converged);
  EXPECT_LT(orthogonality_error(r.u.view()), 1e-13);
  // Singular values scale linearly.
  const auto rbase = jacobi_svd(base.view());
  for (std::size_t k = 0; k < r.sigma.size(); ++k) {
    EXPECT_NEAR(r.sigma[k], rbase.sigma[k] * 1e-140,
                rbase.sigma[k] * 1e-140 * 1e-10);
  }
}

TEST(JacobiSvd, SweepExhaustionIsSurfaced) {
  const auto a = gaussian_matrix<double>(12, 8, 9);
  const auto r = jacobi_svd(a.view(), /*max_sweeps=*/1);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.sweeps, 1);
}

TEST(TallSkinnySvd, SmallSvdNonConvergenceSurfaced) {
  gpusim::Device dev;
  const auto a = matrix_with_condition<double>(64, 12, 1e4, 10);
  svd::TallSkinnySvdOptions opt;
  auto ok = svd::tall_skinny_svd(dev, a.view(), opt);
  EXPECT_TRUE(ok.small_svd_converged);

  opt.svd_max_sweeps = 1;
  auto truncated = svd::tall_skinny_svd(dev, a.view(), opt);
  EXPECT_FALSE(truncated.small_svd_converged);

  auto svt = svd::singular_value_threshold(dev, a.view(), 0.1, opt);
  EXPECT_FALSE(svt.svd_converged);
}

TEST(Rpca, InnerSvdNonConvergenceSurfaced) {
  gpusim::Device dev;
  LowRankPlusSparse spec;
  spec.rank = 2;
  spec.sparse_fraction = 0.05;
  const auto planted = planted_low_rank_plus_sparse<double>(48, 16, spec, 11);
  rpca::RpcaOptions opt;
  opt.max_iterations = 2;
  auto healthy = rpca::robust_pca(dev, planted.observed.view(), opt);
  EXPECT_TRUE(healthy.svd_converged);

  opt.svd.svd_max_sweeps = 1;
  auto starved = rpca::robust_pca(dev, planted.observed.view(), opt);
  EXPECT_FALSE(starved.svd_converged);
}

}  // namespace
}  // namespace caqr

// Tests for Givens-rotation QR and the triangular condition estimator.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "caqr/caqr.hpp"
#include "linalg/givens.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/random_matrix.hpp"
#include "linalg/svd.hpp"

namespace caqr {
namespace {

TEST(Givens, RotationZeroesSecondComponent) {
  for (const auto& [a, b] : {std::pair<double, double>{3, 4},
                            {-3, 4}, {3, -4}, {1e-30, 1.0}, {1.0, 1e-30},
                            {5, 0}, {0, 5}}) {
    double r;
    const auto g = make_givens(a, b, r);
    // [c s; -s c]^T acting as rows: c*a + s*b = r; -s*a + c*b = 0.
    EXPECT_NEAR(g.c * a + g.s * b, r, 1e-14 * (std::fabs(r) + 1));
    EXPECT_NEAR(-g.s * a + g.c * b, 0.0, 1e-14 * (std::fabs(a) + std::fabs(b)));
    EXPECT_NEAR(g.c * g.c + g.s * g.s, 1.0, 1e-14);
    EXPECT_NEAR(std::fabs(r), std::hypot(a, b), 1e-14 * std::hypot(a, b));
  }
}

TEST(Givens, RotationAvoidsOverflow) {
  double r;
  const auto g = make_givens(1e300, 1e300, r);
  EXPECT_TRUE(std::isfinite(g.c) && std::isfinite(g.s));
  EXPECT_TRUE(std::isfinite(r));
}

TEST(GivensQr, FactorizationInvariants) {
  for (const auto& [m, n] : {std::pair<idx, idx>{20, 8}, {50, 50}, {13, 5}}) {
    auto a0 = gaussian_matrix<double>(m, n, 83);
    auto a = a0.clone();
    auto q = givens_qr(a.view());
    // R upper triangular (below-diagonal exactly zeroed).
    for (idx j = 0; j < n; ++j) {
      for (idx i = j + 1; i < std::min(m, n); ++i) {
        ASSERT_EQ(a(i, j), 0.0);
      }
    }
    EXPECT_LT(orthogonality_error(q.view()), 1e-13);
    auto r = extract_r(a.view());
    EXPECT_LT(factorization_residual(a0.view(), q.view(), r.view()), 1e-13);
  }
}

TEST(GivensQr, RMatchesHouseholderUpToSigns) {
  auto a0 = gaussian_matrix<double>(40, 12, 85);
  auto ag = a0.clone();
  auto q = givens_qr(ag.view());
  (void)q;
  auto ah = a0.clone();
  std::vector<double> tau(12);
  geqrf(ah.view(), tau.data());
  EXPECT_LT(r_factor_difference(extract_r(ah.view()).view(),
                                extract_r(ag.view()).view()),
            1e-12);
}

TEST(CondEstimate, ExactForDiagonal) {
  auto r = Matrix<double>::zeros(4, 4);
  r(0, 0) = 8;
  r(1, 1) = 4;
  r(2, 2) = 2;
  r(3, 3) = 1e-2;
  // kappa_1 of a diagonal matrix = max|d| / min|d|.
  EXPECT_NEAR(condition_estimate_upper(r.view()), 800.0, 1e-9);
}

TEST(CondEstimate, TracksTrueConditionNumber) {
  // Compare against the SVD condition number of R from a matrix with a
  // prescribed spectrum; the 1-norm estimate is within a factor ~n of
  // kappa_2 and must never underestimate grossly.
  for (const double cond : {1e2, 1e5, 1e8}) {
    auto a = matrix_with_condition<double>(300, 12, cond, 87);
    gpusim::Device dev;
    auto f = caqr_factor(dev, a.view());
    auto r = f.r();
    const double est = condition_estimate_upper(
        r.view().block(0, 0, 12, 12).as_const()
        );
    EXPECT_GT(est, 0.3 * cond) << cond;
    EXPECT_LT(est, 50.0 * cond) << cond;
  }
}

TEST(CondEstimate, SingularMatrixGivesInfinity) {
  auto r = Matrix<double>::identity(3, 3);
  r(1, 1) = 0.0;
  EXPECT_TRUE(std::isinf(condition_estimate_upper(r.view())));
}

TEST(CondEstimate, WellConditionedNearOne) {
  auto r = Matrix<double>::identity(8, 8);
  EXPECT_NEAR(condition_estimate_upper(r.view()), 1.0, 1e-12);
}

}  // namespace
}  // namespace caqr

// Tests for the Matrix container and view composition.

#include <gtest/gtest.h>

#include "linalg/matrix.hpp"

namespace caqr {
namespace {

TEST(Matrix, ColumnMajorLayout) {
  Matrix<float> a(3, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  a(0, 1) = 4;
  a(1, 1) = 5;
  a(2, 1) = 6;
  const float* d = a.data();
  EXPECT_EQ(d[0], 1);
  EXPECT_EQ(d[1], 2);
  EXPECT_EQ(d[2], 3);
  EXPECT_EQ(d[3], 4);
  EXPECT_EQ(d[4], 5);
  EXPECT_EQ(d[5], 6);
}

TEST(Matrix, ZerosIdentityFrom) {
  auto z = Matrix<double>::zeros(4, 3);
  for (idx j = 0; j < 3; ++j) {
    for (idx i = 0; i < 4; ++i) EXPECT_EQ(z(i, j), 0.0);
  }
  auto e = Matrix<double>::identity(4, 3);
  for (idx j = 0; j < 3; ++j) {
    for (idx i = 0; i < 4; ++i) EXPECT_EQ(e(i, j), i == j ? 1.0 : 0.0);
  }
  auto c = Matrix<double>::from(e.view());
  EXPECT_EQ(c(2, 2), 1.0);
  EXPECT_EQ(c(3, 2), 0.0);
}

TEST(Matrix, BlockViewsShareStorage) {
  auto a = Matrix<float>::zeros(6, 6);
  auto b = a.block(2, 3, 2, 2);
  b(0, 0) = 9.0f;
  b(1, 1) = 8.0f;
  EXPECT_EQ(a(2, 3), 9.0f);
  EXPECT_EQ(a(3, 4), 8.0f);
  EXPECT_EQ(b.ld(), 6);

  // Nested blocks compose offsets.
  auto inner = a.view().block(1, 1, 4, 4).block(1, 2, 2, 2);
  inner(0, 0) = 5.0f;
  EXPECT_EQ(a(2, 3), 5.0f);
}

TEST(Matrix, CopyFromRespectsLeadingDimension) {
  auto a = Matrix<float>::zeros(5, 5);
  auto src = Matrix<float>::identity(2, 2);
  a.block(1, 1, 2, 2).copy_from(src.view());
  EXPECT_EQ(a(1, 1), 1.0f);
  EXPECT_EQ(a(2, 2), 1.0f);
  EXPECT_EQ(a(1, 2), 0.0f);
  EXPECT_EQ(a(0, 0), 0.0f);
}

TEST(Matrix, MoveTransfersOwnership) {
  Matrix<double> a(3, 3);
  a(0, 0) = 7.0;
  const double* ptr = a.data();
  Matrix<double> b = std::move(a);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b(0, 0), 7.0);
  EXPECT_TRUE(a.empty());
}

TEST(Matrix, CloneIsDeep) {
  auto a = Matrix<float>::identity(3, 3);
  auto b = a.clone();
  b(0, 0) = 42.0f;
  EXPECT_EQ(a(0, 0), 1.0f);
}

TEST(Matrix, EmptyMatrixIsSafe) {
  Matrix<float> a(0, 0);
  EXPECT_TRUE(a.empty());
  auto v = a.view();
  v.fill(1.0f);  // no-op, must not crash
  EXPECT_EQ(v.rows(), 0);
}

TEST(MatrixView, ConstConversion) {
  auto a = Matrix<float>::identity(2, 2);
  MatrixView<float> mv = a.view();
  ConstMatrixView<float> cv = mv;  // implicit
  EXPECT_EQ(cv(0, 0), 1.0f);
  EXPECT_EQ(cv.block(0, 1, 2, 1)(1, 0), 1.0f);
}

TEST(MatrixView, SetIdentityOnRectangular) {
  auto a = Matrix<float>::zeros(3, 5);
  a.view().set_identity();
  for (idx j = 0; j < 5; ++j) {
    for (idx i = 0; i < 3; ++i) EXPECT_EQ(a(i, j), i == j ? 1.0f : 0.0f);
  }
}

}  // namespace
}  // namespace caqr

// Tests for the multi-device subsystem (src/dist/): block-row partitioning,
// grid fingerprints, rendezvous transfer semantics, the TreeSpec seam that
// lets one device replay the distributed decomposition, BIT-identity of the
// distributed CAQR driver against its single-device equivalent across
// shapes and device counts, ModelOnly vs Functional timeline/comm-log
// equality, comm-volume accounting, and the distributed plan-cache path.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "caqr/caqr.hpp"
#include "dist/device_grid.hpp"
#include "dist/dist_caqr.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/interconnect.hpp"
#include "linalg/random_matrix.hpp"
#include "numerics/verifier.hpp"
#include "serve/plan_cache.hpp"
#include "tsqr/tsqr.hpp"

namespace caqr::dist {
namespace {

using gpusim::Device;
using gpusim::ExecMode;
using gpusim::GpuMachineModel;

template <typename T>
void expect_bits_equal(const Matrix<T>& a, const Matrix<T>& b,
                       const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(a(i, j), b(i, j))
          << what << " at (" << i << "," << j << ")";
    }
  }
}

// ------------------------------------------------------------ partitioning

TEST(DistMatrix, EvenPartitionSpreadsRemainderForward) {
  const auto o = even_partition(10, 3, 3);
  EXPECT_EQ(o, (std::vector<idx>{0, 4, 7, 10}));
  // Exact division.
  EXPECT_EQ(even_partition(12, 4, 3), (std::vector<idx>{0, 3, 6, 9, 12}));
  // One device: the trivial partition.
  EXPECT_EQ(even_partition(7, 1, 7), (std::vector<idx>{0, 7}));
}

TEST(DistMatrix, ScatterGatherRoundTrip) {
  const auto a = matrix_with_condition<double>(64, 8, 1e3, 11);
  const auto m = DistMatrix<double>::scatter(a.view(), 3);
  EXPECT_EQ(m.num_shards(), 3);
  EXPECT_EQ(m.rows(), 64);
  expect_bits_equal(a, m.gather(), "scatter/gather");
}

// ------------------------------------------------------------ grid basics

TEST(DeviceGrid, FingerprintCoversLinkModelAndCount) {
  const DeviceGrid pcie4(4);
  const DeviceGrid pcie4b(4);
  EXPECT_EQ(pcie4.fingerprint(), pcie4b.fingerprint());
  const DeviceGrid nvlink4(4, GpuMachineModel::c2050(),
                           InterconnectModel::nvlink());
  EXPECT_NE(pcie4.fingerprint(), nvlink4.fingerprint());
  const DeviceGrid pcie8(8);
  EXPECT_NE(pcie4.fingerprint(), pcie8.fingerprint());
  const DeviceGrid gtx4(4, GpuMachineModel::gtx480());
  EXPECT_NE(pcie4.fingerprint(), gtx4.fingerprint());
}

TEST(DeviceGrid, TransferRendezvousAlignsBothClocks) {
  DeviceGrid grid(2, GpuMachineModel::c2050(),
                  InterconnectModel::pcie_switch(), ExecMode::ModelOnly);
  grid.device(0).add_external_seconds(1.0, "head_start");
  const double bytes = 5e9;  // 1 s at 5 GB/s
  const double done = grid.transfer(0, 1, bytes, "link_test");
  const double t = grid.interconnect().transfer_seconds(bytes);
  EXPECT_NEAR(done, 1.0 + t, 1e-12);
  // Both endpoints sit at the completion time: the idle destination was
  // pulled forward to the rendezvous before the link time was charged.
  EXPECT_NEAR(grid.device(0).elapsed_seconds(), 1.0 + t, 1e-12);
  EXPECT_NEAR(grid.device(1).elapsed_seconds(), 1.0 + t, 1e-12);
  // Both devices account the op under the label.
  EXPECT_NE(grid.device(0).profile("link_test"), nullptr);
  EXPECT_NE(grid.device(1).profile("link_test"), nullptr);
  ASSERT_EQ(grid.comm_log().size(), 1u);
  EXPECT_EQ(grid.comm_log()[0].src, 0);
  EXPECT_EQ(grid.comm_log()[0].dst, 1);
  EXPECT_DOUBLE_EQ(grid.comm_log()[0].bytes, bytes);
  // Same-device transfers cross no link and charge nothing.
  grid.transfer(1, 1, 1e12);
  EXPECT_EQ(grid.comm_log().size(), 1u);
}

// ---------------------------------------------------------- TreeSpec seam

TEST(TreeSpec, UniformProviderMatchesDefaultBitwise) {
  const auto a = matrix_with_condition<double>(192, 12, 1e5, 5);
  tsqr::TsqrOptions plain;
  plain.block_rows = 24;
  tsqr::TsqrOptions provided = plain;
  provided.tree_spec = [plain](idx rows, idx width) {
    return tsqr::uniform_tree_spec(rows, width, plain);
  };

  Device d1, d2;
  auto r1 = tsqr::tsqr(d1, a.view(), plain);
  auto r2 = tsqr::tsqr(d2, a.view(), provided);
  expect_bits_equal(r1.r(), r2.r(), "R via explicit uniform spec");
  expect_bits_equal(r1.form_q(d1, plain), r2.form_q(d2, provided),
                    "Q via explicit uniform spec");
}

// ----------------------------------------------------------- bit-identity

struct BitIdentityCase {
  idx m, n;
  int devices;
  idx cross_arity;
};

void check_bit_identity(const BitIdentityCase& c) {
  SCOPED_TRACE(testing::Message()
               << c.m << "x" << c.n << " on " << c.devices
               << " devices, cross arity " << c.cross_arity);
  const auto a = matrix_with_condition<double>(c.m, c.n, 1e6, 42);

  DistCaqrOptions dopt;
  dopt.panel_width = 8;
  dopt.cross_arity = c.cross_arity;
  dopt.tsqr.block_rows = std::max<idx>(dopt.panel_width,
                                       c.m / c.devices / 4);

  DeviceGrid grid(c.devices);
  auto df = DistCaqrFactorization<double>::factor(
      grid, DistMatrix<double>::scatter(a.view(), c.devices), dopt);

  const auto partition = even_partition(c.m, c.devices, c.n);
  Device dev;
  auto sf = CaqrFactorization<double>::factor(
      dev, Matrix<double>::from(a.view()),
      single_device_equivalent(dopt, partition));

  expect_bits_equal(sf.r(), df.r(), "R");
  expect_bits_equal(sf.form_q(dev, c.n), df.form_q(grid, c.n).gather(), "Q");

  // Numerics sanity on top of the identity.
  const auto rep = numerics::verify_qr(a.view(), df.form_q(grid, c.n).gather().view(),
                                       df.r().view());
  EXPECT_TRUE(rep.pass) << "residual " << rep.residual;
}

TEST(DistCaqr, BitIdenticalToSingleDevice256x24) {
  for (int devices : {1, 2, 4, 8}) {
    check_bit_identity({256, 24, devices, 2});
  }
}

TEST(DistCaqr, BitIdenticalToSingleDevice512x40) {
  for (int devices : {1, 2, 4, 8}) {
    check_bit_identity({512, 40, devices, 2});
  }
}

TEST(DistCaqr, BitIdenticalToSingleDevice384x16) {
  for (int devices : {1, 2, 4, 8}) {
    check_bit_identity({384, 16, devices, 2});
  }
}

TEST(DistCaqr, BitIdenticalUnderQuadCrossTree) {
  check_bit_identity({512, 24, 8, 4});
  check_bit_identity({256, 16, 4, 4});
}

TEST(DistCaqr, ApplyQtMatchesSingleDevice) {
  const idx m = 192, n = 16, nrhs = 5;
  const auto a = matrix_with_condition<double>(m, n, 1e4, 7);
  const auto b = matrix_with_condition<double>(m, nrhs, 1e2, 9);

  DistCaqrOptions dopt;
  dopt.tsqr.block_rows = 32;
  DeviceGrid grid(4);
  auto df = DistCaqrFactorization<double>::factor(
      grid, DistMatrix<double>::scatter(a.view(), 4), dopt);
  auto db = DistMatrix<double>::scatter(b.view(), df.packed().offsets());
  df.apply_qt(grid, db);

  Device dev;
  auto sf = CaqrFactorization<double>::factor(
      dev, Matrix<double>::from(a.view()),
      single_device_equivalent(dopt, even_partition(m, 4, n)));
  Matrix<double> sb = Matrix<double>::from(b.view());
  sf.apply_qt(dev, sb.view());

  expect_bits_equal(sb, db.gather(), "Q^T b");

  // And back: apply_q inverts apply_qt bitwise against the same reference.
  df.apply_q(grid, db);
  sf.apply_q(dev, sb.view());
  expect_bits_equal(sb, db.gather(), "Q Q^T b");
}

// ------------------------------------------- ModelOnly vs Functional

TEST(DistCaqr, ModelOnlyTimelineMatchesFunctional) {
  const idx m = 256, n = 16;
  const auto a = matrix_with_condition<double>(m, n, 1e3, 3);
  DistCaqrOptions dopt;
  dopt.tsqr.block_rows = 32;

  DeviceGrid fgrid(4, GpuMachineModel::c2050(),
                   InterconnectModel::pcie_switch(), ExecMode::Functional);
  auto ff = DistCaqrFactorization<double>::factor(
      fgrid, DistMatrix<double>::scatter(a.view(), 4), dopt);
  (void)ff.form_q(fgrid, n);

  DeviceGrid mgrid(4, GpuMachineModel::c2050(),
                   InterconnectModel::pcie_switch(), ExecMode::ModelOnly);
  auto mf = DistCaqrFactorization<double>::factor(
      mgrid, DistMatrix<double>::shape_only(m, n, 4), dopt);
  (void)mf.form_q(mgrid, n);

  // Same comm log, bit for bit.
  ASSERT_EQ(fgrid.comm_log().size(), mgrid.comm_log().size());
  for (std::size_t i = 0; i < fgrid.comm_log().size(); ++i) {
    const auto& fr = fgrid.comm_log()[i];
    const auto& mr = mgrid.comm_log()[i];
    EXPECT_EQ(fr.src, mr.src);
    EXPECT_EQ(fr.dst, mr.dst);
    EXPECT_EQ(fr.bytes, mr.bytes);
    EXPECT_EQ(fr.seconds, mr.seconds);
    EXPECT_EQ(fr.start, mr.start);
    EXPECT_EQ(fr.label, mr.label);
  }

  // Same per-device timeline, event for event.
  EXPECT_EQ(fgrid.elapsed_seconds(), mgrid.elapsed_seconds());
  for (int d = 0; d < 4; ++d) {
    const auto& ft = fgrid.device(d).trace();
    const auto& mt = mgrid.device(d).trace();
    ASSERT_EQ(ft.size(), mt.size()) << "device " << d;
    for (std::size_t i = 0; i < ft.size(); ++i) {
      EXPECT_EQ(ft[i].name, mt[i].name) << "device " << d << " event " << i;
      EXPECT_EQ(ft[i].t_start, mt[i].t_start);
      EXPECT_EQ(ft[i].t_end, mt[i].t_end);
      EXPECT_EQ(ft[i].blocks, mt[i].blocks);
    }
  }

  // The link ops are visible in the combined chrome trace.
  const std::string trace = grid_trace_json(mgrid);
  EXPECT_NE(trace.find("link_r_triangle"), std::string::npos);
  EXPECT_NE(trace.find("link_c_slice"), std::string::npos);
}

TEST(DistCaqr, CommVolumeAccountsTriangleAndSlices) {
  // Single panel (n == panel_width), no trailing matrix: the factor ships
  // exactly one R triangle; form_q then round-trips one w-row slice of the
  // n-column Q seed per cross level.
  const idx m = 128, n = 8;
  const auto a = matrix_with_condition<double>(m, n, 1e2, 13);
  DistCaqrOptions dopt;
  dopt.panel_width = n;
  dopt.tsqr.block_rows = 16;
  DeviceGrid grid(2);
  auto f = DistCaqrFactorization<double>::factor(
      grid, DistMatrix<double>::scatter(a.view(), 2), dopt);

  auto s = grid.comm_stats();
  EXPECT_EQ(s.transfers, 1);
  EXPECT_DOUBLE_EQ(s.bytes, 0.5 * n * (n + 1) * sizeof(double));

  (void)f.form_q(grid, n);
  s = grid.comm_stats();
  // + slice in and slice out for the one non-owner member.
  EXPECT_EQ(s.transfers, 3);
  EXPECT_DOUBLE_EQ(s.bytes, 0.5 * n * (n + 1) * sizeof(double) +
                                2.0 * n * n * sizeof(double));
}

// ---------------------------------------------------------- plan cache

TEST(PlanCacheDist, GridFingerprintAndCountKeyPlans) {
  serve::PlanCache cache(8);
  DeviceGrid grid4(4, GpuMachineModel::c2050(),
                   InterconnectModel::pcie_switch(), ExecMode::ModelOnly);
  auto first = cache.lookup_dist<double>(grid4, 8192, 64);
  EXPECT_FALSE(first.hit);
  EXPECT_EQ(first.plan->key.devices, 4);
  EXPECT_EQ(first.plan->key.model_fingerprint, grid4.fingerprint());
  EXPECT_EQ(first.plan->chosen, QrAlgorithm::Caqr);
  EXPECT_GT(first.plan->predicted_caqr_seconds, 0.0);
  EXPECT_EQ(first.plan->dist_caqr.panel_width, first.plan->tuned.panel_width);

  // Same grid geometry: hit, identical plan object.
  DeviceGrid same(4, GpuMachineModel::c2050(),
                  InterconnectModel::pcie_switch(), ExecMode::ModelOnly);
  auto second = cache.lookup_dist<double>(same, 8192, 64);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.plan.get(), second.plan.get());

  // Different link model, device count, or dtype: self-invalidating miss.
  DeviceGrid nv4(4, GpuMachineModel::c2050(), InterconnectModel::nvlink(),
                 ExecMode::ModelOnly);
  EXPECT_FALSE(cache.lookup_dist<double>(nv4, 8192, 64).hit);
  DeviceGrid grid8(8, GpuMachineModel::c2050(),
                   InterconnectModel::pcie_switch(), ExecMode::ModelOnly);
  EXPECT_FALSE(cache.lookup_dist<double>(grid8, 8192, 64).hit);
  EXPECT_FALSE(cache.lookup_dist<float>(grid4, 8192, 64).hit);
  // The single-device path never collides with grid keys.
  EXPECT_FALSE(
      cache.lookup<double>(GpuMachineModel::c2050(), 8192, 64).hit);
}

// ------------------------------------------------------------- grid FT

TEST(GridFt, DropRecoveryIsBitIdenticalAndCounted) {
  const idx m = 256, n = 24;
  const auto a = matrix_with_condition<double>(m, n, 1e5, 21);
  DistCaqrOptions dopt;
  dopt.panel_width = 8;
  dopt.tsqr.block_rows = 32;

  DeviceGrid clean(4);
  auto cf = DistCaqrFactorization<double>::factor(
      clean, DistMatrix<double>::scatter(a.view(), 4), dopt);
  const Matrix<double> cq = cf.form_q(clean, n).gather();

  DeviceGrid faulty(4);
  GridFtOptions gft;
  gft.link_faults.p_drop = 0.1;
  gft.link_faults.seed = 7;
  faulty.set_fault_tolerance(gft);
  auto ff = DistCaqrFactorization<double>::factor(
      faulty, DistMatrix<double>::scatter(a.view(), 4), dopt);
  const Matrix<double> fq = ff.form_q(faulty, n).gather();

  // Seeded drops really fired, were detected, and were resent.
  const auto s = faulty.comm_stats();
  ASSERT_GT(s.injected_drops, 0);
  EXPECT_EQ(s.checksum_mismatches, s.injected_drops);
  EXPECT_GE(s.retried_transfers, s.injected_drops);
  EXPECT_EQ(s.failed_transfers, 0);
  EXPECT_EQ(ff.status().severity, ft::Severity::Corrected);
  EXPECT_GT(ff.status().corrected_transfers, 0);
  EXPECT_GE(ff.status().transfer_retries, ff.status().corrected_transfers);

  // A resend ships the sender's intact bytes: recovery is invisible to the
  // numbers, bit for bit.
  expect_bits_equal(cf.r(), ff.r(), "R under recovered drops");
  expect_bits_equal(cq, fq, "Q under recovered drops");
}

TEST(GridFt, ModelOnlyTimelineMatchesFunctionalUnderDrops) {
  const idx m = 256, n = 16;
  const auto a = matrix_with_condition<double>(m, n, 1e3, 3);
  DistCaqrOptions dopt;
  dopt.tsqr.block_rows = 32;
  GridFtOptions gft;
  gft.link_faults.p_drop = 0.15;
  gft.link_faults.seed = 11;

  DeviceGrid fgrid(4, GpuMachineModel::c2050(),
                   InterconnectModel::pcie_switch(), ExecMode::Functional);
  fgrid.set_fault_tolerance(gft);
  auto ff = DistCaqrFactorization<double>::factor(
      fgrid, DistMatrix<double>::scatter(a.view(), 4), dopt);
  (void)ff.form_q(fgrid, n);

  DeviceGrid mgrid(4, GpuMachineModel::c2050(),
                   InterconnectModel::pcie_switch(), ExecMode::ModelOnly);
  mgrid.set_fault_tolerance(gft);
  auto mf = DistCaqrFactorization<double>::factor(
      mgrid, DistMatrix<double>::shape_only(m, n, 4), dopt);
  (void)mf.form_q(mgrid, n);

  // Fault decisions key on (seed, transfer ordinal), and ModelOnly flags
  // injected corruption without bytes: the whole recovery trajectory —
  // resends, backoff charges, counters — replays identically.
  const auto fs = fgrid.comm_stats();
  const auto ms = mgrid.comm_stats();
  ASSERT_GT(fs.injected_drops, 0);
  EXPECT_EQ(fs.injected_drops, ms.injected_drops);
  EXPECT_EQ(fs.retried_transfers, ms.retried_transfers);
  EXPECT_EQ(fs.checksum_mismatches, ms.checksum_mismatches);
  ASSERT_EQ(fgrid.comm_log().size(), mgrid.comm_log().size());
  for (std::size_t i = 0; i < fgrid.comm_log().size(); ++i) {
    EXPECT_EQ(fgrid.comm_log()[i].label, mgrid.comm_log()[i].label);
    EXPECT_EQ(fgrid.comm_log()[i].seconds, mgrid.comm_log()[i].seconds);
    EXPECT_EQ(fgrid.comm_log()[i].start, mgrid.comm_log()[i].start);
  }
  EXPECT_EQ(fgrid.elapsed_seconds(), mgrid.elapsed_seconds());
}

TEST(GridFt, DeadPeerTransferFailsTypedAfterTimeout) {
  DeviceGrid grid(2);
  grid.kill_device(1);
  EXPECT_EQ(grid.num_alive(), 1);

  Matrix<double> src(4, 4);
  Matrix<double> dst(4, 4);
  src.view().fill(1.0);
  const double before = grid.device(0).elapsed_seconds();
  const TransferResult r = grid.transfer_payload<double>(
      0, 1, 128.0, "link_test", src.as_const(), dst.view());
  EXPECT_TRUE(r.peer_dead);
  EXPECT_EQ(r.dead_device, 1);
  EXPECT_EQ(r.severity, ft::Severity::Unrecovered);
  EXPECT_FALSE(r.ok());
  // The survivor waited out the configured timeout — charged, then typed
  // failure. Never a hang.
  const double timeout = grid.fault_tolerance().rendezvous_timeout_us * 1e-6;
  EXPECT_NEAR(grid.device(0).elapsed_seconds(), before + timeout, 1e-12);
  EXPECT_EQ(grid.comm_stats().rendezvous_timeouts, 1);
  EXPECT_EQ(grid.comm_stats().failed_transfers, 1);

  // The legacy double-returning API surfaces the same condition as a typed
  // exception.
  EXPECT_THROW(grid.transfer(0, 1, 128.0), DeviceLostError);
}

TEST(GridFt, KillDeviceChangesFingerprintAndDegradesPlans) {
  DeviceGrid grid(4, GpuMachineModel::c2050(),
                  InterconnectModel::pcie_switch(), ExecMode::ModelOnly);
  serve::PlanCache cache(8);
  const auto healthy = cache.lookup_dist<double>(grid, 8192, 64);
  EXPECT_EQ(healthy.plan->key.devices, 4);
  const std::uint64_t fp0 = grid.fingerprint();

  grid.kill_device(2);
  EXPECT_NE(grid.fingerprint(), fp0);
  EXPECT_EQ(grid.num_alive(), 3);
  EXPECT_EQ(grid.live_devices(), (std::vector<int>{0, 1, 3}));

  // Health is part of the plan key: the stale 4-device plan stops matching
  // and the fresh plan routes shards onto the survivors only.
  const auto degraded = cache.lookup_dist<double>(grid, 8192, 64);
  EXPECT_FALSE(degraded.hit);
  EXPECT_EQ(degraded.plan->key.devices, 3);
  EXPECT_EQ(degraded.plan->dist_caqr.devices, (std::vector<int>{0, 1, 3}));
  // Idempotent kill: no further generation bump.
  const std::uint64_t fp1 = grid.fingerprint();
  grid.kill_device(2);
  EXPECT_EQ(grid.fingerprint(), fp1);
}

TEST(GridFt, FaultCountersExportedInGridTrace) {
  const idx m = 128, n = 8;
  const auto a = matrix_with_condition<double>(m, n, 1e2, 13);
  DistCaqrOptions dopt;
  dopt.panel_width = n;
  dopt.tsqr.block_rows = 16;
  DeviceGrid grid(2);
  GridFtOptions gft;
  gft.link_faults.p_drop = 0.5;
  gft.link_faults.seed = 3;
  grid.set_fault_tolerance(gft);
  auto f = DistCaqrFactorization<double>::factor(
      grid, DistMatrix<double>::scatter(a.view(), 2), dopt);
  (void)f.form_q(grid, n);

  const std::string trace = grid_trace_json(grid);
  EXPECT_NE(trace.find("\"commStats\""), std::string::npos);
  EXPECT_NE(trace.find("\"retried_transfers\""), std::string::npos);
  EXPECT_NE(trace.find("\"checksum_mismatches\""), std::string::npos);
  EXPECT_NE(trace.find("\"injected_drops\""), std::string::npos);
  // Recovery traffic is first-class in the trace: the resend op carries a
  // "_retry" label on both endpoints.
  if (grid.comm_stats().retried_transfers > 0) {
    EXPECT_NE(trace.find("_retry"), std::string::npos);
  }
}

TEST(PlanCacheDist, FasterLinkPredictsFasterPlan) {
  DeviceGrid pcie(8, GpuMachineModel::c2050(),
                  InterconnectModel::pcie_switch(), ExecMode::ModelOnly);
  DeviceGrid nvlink(8, GpuMachineModel::c2050(), InterconnectModel::nvlink(),
                    ExecMode::ModelOnly);
  const auto slow = serve::make_dist_plan<double>(pcie, 1 << 16, 128);
  const auto fast = serve::make_dist_plan<double>(nvlink, 1 << 16, 128);
  EXPECT_LT(fast.predicted_caqr_seconds, slow.predicted_caqr_seconds);
}

}  // namespace
}  // namespace caqr::dist

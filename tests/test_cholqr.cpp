// CholeskyQR2/3 solver family: verifier bounds across the conditioning
// grid, typed breakdown + Householder fallback semantics, mixed-precision
// gating, the serve-layer adaptive picker, and PlanCache invalidation when
// precision-policy fields change the machine-model fingerprint.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "caqr/solver.hpp"
#include "linalg/random_matrix.hpp"
#include "numerics/stress.hpp"
#include "numerics/verifier.hpp"
#include "serve/plan_cache.hpp"
#include "serve/solver_pool.hpp"
#include "tsqr/cholqr.hpp"

namespace caqr {
namespace {

using gpusim::Device;
using gpusim::ExecMode;
using gpusim::GpuMachineModel;
using gpusim::PrecisionPolicy;
using tsqr::CholQrBreakdown;
using tsqr::CholQrOptions;
using tsqr::CholQrVariant;

TEST(CholQr, WellConditionedMeetsVerifierBounds) {
  const idx m = 512, n = 24;
  for (const double cond : {1.0, 1e2, 1e4}) {
    const auto a = matrix_with_condition<double>(m, n, cond, 11);
    Device dev;
    auto res = tsqr::cholqr(dev, Matrix<double>::from(a.view()));
    EXPECT_FALSE(res.breakdown) << "cond " << cond;
    EXPECT_FALSE(res.fell_back);
    EXPECT_EQ(res.gram_passes, 2);
    EXPECT_EQ(res.severity, ft::Severity::Ok);
    const auto rep = numerics::verify_qr(a.view(), res.q.view(), res.r.view());
    EXPECT_TRUE(rep.pass) << "cond " << cond << " orthog "
                          << rep.orthogonality;
  }
}

TEST(CholQr, Cqr3SurvivesConditioningCqr2Flags) {
  // Between the CQR2 and CQR3 admissibility edges (~8e6 vs ~3e7 in double),
  // the extra pass is what restores orthogonality.
  const idx m = 512, n = 16;
  const auto a = matrix_with_condition<double>(m, n, 1e7, 13);
  Device dev;
  CholQrOptions o3;
  o3.variant = CholQrVariant::CholQr3;
  o3.fallback_to_tsqr = false;
  auto res = tsqr::cholqr(dev, Matrix<double>::from(a.view()), o3);
  ASSERT_FALSE(res.breakdown);
  EXPECT_EQ(res.gram_passes, 3);
  EXPECT_TRUE(
      numerics::verify_qr(a.view(), res.q.view(), res.r.view()).pass);
}

TEST(CholQr, BreakdownTriggersFallback) {
  // cond 1e12 in double: eps * cond^2 >> 1, the Gram path cannot succeed.
  const idx m = 512, n = 16;
  const auto a = matrix_with_condition<double>(m, n, 1e12, 17);

  Device dev;
  auto res = tsqr::cholqr(dev, Matrix<double>::from(a.view()));
  EXPECT_TRUE(res.breakdown);
  EXPECT_NE(res.reason, CholQrBreakdown::None);
  EXPECT_TRUE(res.fell_back);
  EXPECT_EQ(res.severity, ft::Severity::Corrected);
  // The fallback's Householder factors meet the SAME verifier bounds.
  EXPECT_TRUE(
      numerics::verify_qr(a.view(), res.q.view(), res.r.view()).pass);
}

TEST(CholQr, BreakdownWithoutFallbackWithholdsFactors) {
  const idx m = 512, n = 16;
  const auto a = matrix_with_condition<double>(m, n, 1e12, 17);
  Device dev;
  CholQrOptions opt;
  opt.fallback_to_tsqr = false;
  auto res = tsqr::cholqr(dev, Matrix<double>::from(a.view()), opt);
  EXPECT_TRUE(res.breakdown);
  EXPECT_FALSE(res.fell_back);
  EXPECT_EQ(res.severity, ft::Severity::Unrecovered);
  EXPECT_EQ(res.q.rows(), 0);
  EXPECT_EQ(res.r.rows(), 0);
}

TEST(CholQr, ExtremeScalesBreakDownTyped) {
  // Column scale 1e300: the Gram entries overflow; 1e-300: they vanish.
  // Either way the run must report a typed breakdown, not return garbage.
  const idx m = 256, n = 8;
  for (const double scale : {1e-300, 1e300}) {
    const auto a = stress_matrix<double>(m, n, 1e2, scale, 19, false);
    Device dev;
    CholQrOptions opt;
    opt.fallback_to_tsqr = false;
    auto res = tsqr::cholqr(dev, Matrix<double>::from(a.view()), opt);
    EXPECT_TRUE(res.breakdown) << "scale " << scale;
    EXPECT_TRUE(res.reason == CholQrBreakdown::GramNotFinite ||
                res.reason == CholQrBreakdown::GramNotSpd);
  }
}

TEST(CholQr, StressGridDetectionOrAccuracy) {
  // The full cond x scale sweep (numerics/stress.hpp) includes the cholqr2,
  // cholqr3 and fallback-disarmed cholqr2_strict cells; pass() means no
  // cell anywhere returned an unreported out-of-bounds factorization.
  numerics::StressSpec spec;
  spec.rows = 192;
  spec.cols = 12;
  spec.conds = numerics::log_spaced_conds(14.0, 5);
  const auto summary = numerics::run_stress(spec);
  bool saw_cholqr = false;
  for (const auto& row : summary.rows) {
    if (row.path.rfind("cholqr", 0) == 0) {
      saw_cholqr = true;
      EXPECT_TRUE(row.report.pass)
          << row.path << " cond " << row.cond << " scale " << row.col_scale;
    }
  }
  EXPECT_TRUE(saw_cholqr);
}

TEST(CholQr, MixedPrecisionPassesWhenWellConditioned) {
  const idx m = 2048, n = 32;
  const auto a = matrix_with_condition<double>(m, n, 2.0, 23);
  Device dev;
  CholQrOptions opt;
  opt.precision = PrecisionPolicy::Tf32Gram;
  auto res = tsqr::cholqr(dev, Matrix<double>::from(a.view()), opt);
  EXPECT_FALSE(res.breakdown);
  // The TF32 Gram perturbs pass 1, but the native refinement pass restores
  // full orthogonality — that is the whole point of the mixed path.
  EXPECT_TRUE(
      numerics::verify_qr(a.view(), res.q.view(), res.r.view()).pass);
}

TEST(CholQr, MixedPrecisionIsFasterOnTensorCoreModel) {
  const auto a100 = GpuMachineModel::a100();
  ASSERT_TRUE(a100.has_tensor_cores());
  CholQrOptions native, mixed;
  mixed.precision = PrecisionPolicy::Tf32Gram;
  const double t_native =
      tsqr::predict_cholqr_seconds<float>(a100, 110592, 100, native);
  const double t_mixed =
      tsqr::predict_cholqr_seconds<float>(a100, 110592, 100, mixed);
  EXPECT_LT(t_mixed, t_native);

  // Without tensor cores the policy is cost-neutral (charged at native
  // rates — never a free speedup the hardware cannot deliver).
  const auto c2050 = GpuMachineModel::c2050();
  EXPECT_DOUBLE_EQ(
      tsqr::predict_cholqr_seconds<float>(c2050, 110592, 100, mixed),
      tsqr::predict_cholqr_seconds<float>(c2050, 110592, 100, native));
}

TEST(CholQr, ModelOnlyMatchesPredictedSeconds) {
  const auto model = GpuMachineModel::c2050();
  Device dev(model, ExecMode::ModelOnly);
  auto res = tsqr::cholqr(dev, Matrix<double>::shape_only(65536, 64));
  EXPECT_DOUBLE_EQ(dev.elapsed_seconds(),
                   tsqr::predict_cholqr_seconds<double>(model, 65536, 64));
  EXPECT_EQ(res.gram_passes, 2);
}

TEST(CholQrPicker, SelectsCholeskyQr2WithBenignHint) {
  // Tall-skinny + cond estimate 10 (bucket upper edge 100, inside float's
  // ~362 bound): CholeskyQR2 is admissible and its three-BLAS3-launch
  // schedule beats CAQR's tree on predicted time.
  const auto model = GpuMachineModel::c2050();
  const auto plan =
      serve::make_plan<float>(model, 110592, 100, QrAlgorithm::Auto, {}, 10.0);
  EXPECT_EQ(plan.chosen, QrAlgorithm::CholeskyQr2);
  EXPECT_GT(plan.predicted_cholqr2_seconds, 0.0);
  EXPECT_LT(plan.predicted_cholqr2_seconds, plan.predicted_caqr_seconds);
}

TEST(CholQrPicker, NeverPicksCholQrWithoutHintOrWhenIllConditioned) {
  const auto model = GpuMachineModel::c2050();
  for (const double hint : {0.0, 1e12}) {
    const auto plan = serve::make_plan<double>(model, 110592, 100,
                                               QrAlgorithm::Auto, {}, hint);
    EXPECT_FALSE(is_cholqr(plan.chosen)) << "hint " << hint;
    EXPECT_EQ(plan.predicted_cholqr2_seconds, 0.0) << "hint " << hint;
  }
}

TEST(CholQrPicker, MixedRequiresTensorCores) {
  // Same benign hint: the A100 model may route to the mixed path, the
  // Fermi-class model must never (no tensor cores).
  const auto fermi =
      serve::make_plan<float>(GpuMachineModel::c2050(), 110592, 100,
                              QrAlgorithm::Auto, {}, 2.0);
  EXPECT_EQ(fermi.predicted_cholqr2_mixed_seconds, 0.0);
  EXPECT_NE(fermi.chosen, QrAlgorithm::CholeskyQr2Mixed);

  const auto ampere = serve::make_plan<float>(
      GpuMachineModel::a100(), 110592, 100, QrAlgorithm::Auto, {}, 2.0);
  EXPECT_GT(ampere.predicted_cholqr2_mixed_seconds, 0.0);
  EXPECT_LT(ampere.predicted_cholqr2_mixed_seconds,
            ampere.predicted_cholqr2_seconds);
  EXPECT_EQ(ampere.chosen, QrAlgorithm::CholeskyQr2Mixed);
}

TEST(CholQrPicker, Deterministic) {
  const auto model = GpuMachineModel::c2050();
  const auto p1 =
      serve::make_plan<float>(model, 65536, 64, QrAlgorithm::Auto, {}, 1e3);
  const auto p2 =
      serve::make_plan<float>(model, 65536, 64, QrAlgorithm::Auto, {}, 1e3);
  EXPECT_EQ(p1.chosen, p2.chosen);
  EXPECT_DOUBLE_EQ(p1.predicted_caqr_seconds, p2.predicted_caqr_seconds);
  EXPECT_DOUBLE_EQ(p1.predicted_cholqr2_seconds, p2.predicted_cholqr2_seconds);
  EXPECT_DOUBLE_EQ(p1.predicted_cholqr3_seconds, p2.predicted_cholqr3_seconds);
  // Hints within one log10 bucket share a plan; crossing a bucket edge (or
  // dropping the hint) changes the key.
  EXPECT_EQ(serve::cond_bucket_of(1.5e3), serve::cond_bucket_of(9e3));
  EXPECT_NE(serve::cond_bucket_of(1e3), serve::cond_bucket_of(1e5));
  EXPECT_EQ(serve::cond_bucket_of(0.0), -1);
}

TEST(CholQrPicker, PlanCacheInvalidatesOnPrecisionPolicyFields) {
  // Adding tensor-core rates changes fingerprint(), so old plans stop
  // matching — the cache plans twice for what is otherwise the same model.
  auto base = GpuMachineModel::c2050();
  auto tensor = base;
  tensor.tf32_gemm_speedup = 8.0;
  ASSERT_NE(base.fingerprint(), tensor.fingerprint());

  serve::PlanCache cache(16);
  (void)cache.lookup<float>(base, 8192, 64, QrAlgorithm::Auto, {}, 2.0);
  const auto second =
      cache.lookup<float>(tensor, 8192, 64, QrAlgorithm::Auto, {}, 2.0);
  EXPECT_FALSE(second.hit);
  EXPECT_EQ(cache.plans_computed(), 2);

  // Distinct cond buckets are distinct keys on one model...
  (void)cache.lookup<float>(base, 8192, 64, QrAlgorithm::Auto, {}, 1e6);
  EXPECT_EQ(cache.plans_computed(), 3);
  // ...but same-bucket hints hit.
  const auto again =
      cache.lookup<float>(base, 8192, 64, QrAlgorithm::Auto, {}, 3.0);
  EXPECT_TRUE(again.hit);
  EXPECT_EQ(cache.plans_computed(), 3);
}

TEST(CholQrServe, PoolRoutesCholQrEndToEnd) {
  // A Functional pool with a benign cond estimate serves CholeskyQR2 picked
  // by plan, and the factors meet verifier bounds.
  serve::PoolOptions popts;
  popts.workers = 2;
  serve::SolverPool pool(popts);
  const auto a = matrix_with_condition<float>(4096, 32, 10.0, 29);
  serve::RequestOptions req;
  req.cond_estimate = 10.0;
  auto resp = pool.submit(Matrix<float>::from(a.view()), req).get();
  ASSERT_EQ(resp.status, serve::RequestStatus::Done);
  EXPECT_TRUE(is_cholqr(resp.result.used));
  EXPECT_TRUE(numerics::verify_qr(a.view(), resp.result.q.view(),
                                  resp.result.r.view())
                  .pass);
}

TEST(CholQrServe, ModelOnlyPoolChargesCholQrSchedule) {
  serve::PoolOptions popts;
  popts.workers = 1;
  popts.mode = ExecMode::ModelOnly;
  serve::SolverPool pool(popts);
  serve::RequestOptions req;
  req.algo = QrAlgorithm::CholeskyQr2;
  req.cond_estimate = 1e2;
  auto resp =
      pool.submit(Matrix<float>::shape_only(110592, 100), req).get();
  ASSERT_EQ(resp.status, serve::RequestStatus::Done);
  EXPECT_EQ(resp.result.used, QrAlgorithm::CholeskyQr2);
  EXPECT_DOUBLE_EQ(
      resp.simulated_seconds,
      tsqr::predict_cholqr_seconds<float>(pool.options().model, 110592, 100));
}

TEST(CholQr, AdmissibilityThresholds) {
  EXPECT_NEAR(tsqr::cholqr2_max_cond<double>(), 8.38e6, 1e5);
  EXPECT_NEAR(tsqr::cholqr2_max_cond<float>(), 362.0, 5.0);
  EXPECT_GT(tsqr::cholqr3_max_cond<double>(),
            tsqr::cholqr2_max_cond<double>());
  EXPECT_NEAR(tsqr::cholqr_mixed_max_cond(PrecisionPolicy::Tf32Gram), 22.6,
              0.1);
  EXPECT_EQ(tsqr::cholqr_mixed_max_cond(PrecisionPolicy::Native), 0.0);
}

TEST(CholeskyBreakdownType, ReportsPivotAndPlumbsFt) {
  // Indefinite 2x2: the checked potrf reports index and value instead of
  // asserting.
  Matrix<double> g(2, 2);
  g(0, 0) = 1.0;
  g(0, 1) = g(1, 0) = 2.0;
  g(1, 1) = 1.0;  // second pivot = 1 - 4 < 0
  const auto bd = potrf_upper_checked(g.view());
  EXPECT_FALSE(bd.ok());
  EXPECT_EQ(bd.pivot, 1);
  EXPECT_LT(bd.value, 0.0);
  // Severity mapping: detected+recovered folds as Corrected, unrecovered
  // dominates.
  EXPECT_EQ(ft::worse(ft::Severity::Ok, ft::Severity::Corrected),
            ft::Severity::Corrected);
  EXPECT_EQ(ft::worse(ft::Severity::Corrected, ft::Severity::Unrecovered),
            ft::Severity::Unrecovered);
}

}  // namespace
}  // namespace caqr

// Tests for the synthetic surveillance-video generator and the end-to-end
// background-subtraction pipeline on a reduced-size clip.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/norms.hpp"
#include "linalg/svd.hpp"
#include "rpca/rpca.hpp"
#include "video/video.hpp"

namespace caqr {
namespace {

video::VideoSpec small_spec() {
  video::VideoSpec spec;
  spec.height = 24;
  spec.width = 32;
  spec.frames = 20;
  spec.num_blobs = 2;
  spec.blob_size = 0.2;
  spec.noise_sigma = 0.005;
  spec.seed = 7;
  return spec;
}

TEST(Video, DimensionsAndRange) {
  const auto spec = small_spec();
  auto v = video::generate_video(spec);
  EXPECT_EQ(v.matrix.rows(), spec.pixels());
  EXPECT_EQ(v.matrix.cols(), spec.frames);
  EXPECT_EQ(v.foreground_mask.size(), static_cast<std::size_t>(spec.frames));
  for (idx j = 0; j < v.matrix.cols(); ++j) {
    for (idx i = 0; i < v.matrix.rows(); ++i) {
      ASSERT_GE(v.matrix(i, j), 0.0f);
      ASSERT_LE(v.matrix(i, j), 1.0f);
    }
  }
}

TEST(Video, Deterministic) {
  auto a = video::generate_video(small_spec());
  auto b = video::generate_video(small_spec());
  for (idx j = 0; j < a.matrix.cols(); ++j) {
    for (idx i = 0; i < a.matrix.rows(); ++i) {
      ASSERT_EQ(a.matrix(i, j), b.matrix(i, j));
    }
  }
}

TEST(Video, BackgroundIsEffectivelyLowRank) {
  auto v = video::generate_video(small_spec());
  auto svd = jacobi_svd(v.background.view());
  // Illumination drift makes it rank ~2-3; energy must concentrate there.
  double top = 0, total = 0;
  for (std::size_t i = 0; i < svd.sigma.size(); ++i) {
    total += svd.sigma[i] * svd.sigma[i];
    if (i < 3) top += svd.sigma[i] * svd.sigma[i];
  }
  EXPECT_GT(top / total, 0.9999);
}

TEST(Video, ForegroundIsSparse) {
  const auto spec = small_spec();
  auto v = video::generate_video(spec);
  long long fg = 0;
  for (const auto& mask : v.foreground_mask) {
    for (const auto m : mask) fg += m;
  }
  const double fraction = static_cast<double>(fg) /
                          (static_cast<double>(spec.pixels()) * spec.frames);
  EXPECT_GT(fraction, 0.01);
  EXPECT_LT(fraction, 0.25);
}

TEST(Video, BlobsActuallyMove) {
  auto v = video::generate_video(small_spec());
  // Masks of first and last frames must differ substantially.
  const auto& first = v.foreground_mask.front();
  const auto& last = v.foreground_mask.back();
  long long diff = 0;
  for (std::size_t p = 0; p < first.size(); ++p) {
    diff += first[p] != last[p] ? 1 : 0;
  }
  EXPECT_GT(diff, 10);
}

TEST(Video, EvaluateSeparationPerfectDetector) {
  const auto spec = small_spec();
  auto v = video::generate_video(spec);
  // Build the "sparse" matrix directly from the ground truth mask.
  auto s = Matrix<float>::zeros(spec.pixels(), spec.frames);
  for (idx f = 0; f < spec.frames; ++f) {
    for (idx p = 0; p < spec.pixels(); ++p) {
      if (v.foreground_mask[static_cast<std::size_t>(f)][static_cast<std::size_t>(p)]) {
        s(p, f) = 1.0f;
      }
    }
  }
  const auto q = video::evaluate_separation(v, s.view(), 0.5f);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
}

TEST(Video, RpcaSeparatesForegroundFromBackground) {
  // End-to-end miniature of §VI: generate a clip, run Robust PCA, check the
  // sparse component localizes the moving blobs.
  const auto spec = small_spec();
  auto v = video::generate_video(spec);

  gpusim::Device dev;
  rpca::RpcaOptions opt;
  opt.max_iterations = 60;
  opt.tolerance = 1e-6;
  auto res = rpca::robust_pca(dev, v.matrix.view(), opt);

  const auto q = video::evaluate_separation(v, res.sparse.view(), 0.08f);
  EXPECT_GT(q.recall, 0.7);
  EXPECT_GT(q.precision, 0.5);
  EXPECT_GT(q.f1, 0.6);

  // The low-rank component approximates the true background off-foreground.
  double err = 0;
  long long count = 0;
  for (idx f = 0; f < spec.frames; ++f) {
    for (idx p = 0; p < spec.pixels(); ++p) {
      if (!v.foreground_mask[static_cast<std::size_t>(f)][static_cast<std::size_t>(p)]) {
        const double d = res.low_rank(p, f) - v.background(p, f);
        err += d * d;
        ++count;
      }
    }
  }
  EXPECT_LT(std::sqrt(err / count), 0.05);
}

}  // namespace
}  // namespace caqr

// Tests for the full CAQR factorization: invariants across matrix shapes
// and grid configurations, equivalence with the reference QR, Q application
// and formation, determinism, and timeline behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "caqr/caqr.hpp"
#include "gpusim/device.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/random_matrix.hpp"

namespace caqr {
namespace {

using gpusim::Device;
using gpusim::ExecMode;
using gpusim::GpuMachineModel;

struct CaqrCase {
  idx m, n, panel_width, block_rows;
};

class CaqrShapes : public ::testing::TestWithParam<CaqrCase> {};

TEST_P(CaqrShapes, FactorizationInvariants) {
  const auto [m, n, w, h] = GetParam();
  CaqrOptions opt;
  opt.panel_width = w;
  opt.tsqr.block_rows = h;

  auto a = gaussian_matrix<double>(m, n, 101);
  Device dev;
  auto f = caqr_factor(dev, a.view(), opt);

  // R matches the reference blocked Householder QR up to row signs.
  auto r = f.r();
  auto ref = a.clone();
  std::vector<double> tau(static_cast<std::size_t>(std::min(m, n)));
  geqrf(ref.view(), tau.data());
  auto r_ref = extract_r(ref.view());
  EXPECT_LT(r_factor_difference(r_ref.view(), r.view()), 1e-10);

  // Q orthonormal and A = Q R.
  const idx k = std::min(m, n);
  auto q = f.form_q(dev, k);
  EXPECT_LT(orthogonality_error(q.view()), 1e-11);
  EXPECT_LT(factorization_residual(a.view(), q.view(), r.view()), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CaqrShapes,
    ::testing::Values(CaqrCase{128, 32, 16, 64},    // 2 panels
                      CaqrCase{256, 64, 16, 64},    // 4 panels, tree depth 1
                      CaqrCase{100, 40, 16, 64},    // ragged
                      CaqrCase{64, 64, 16, 64},     // square
                      CaqrCase{61, 61, 16, 64},     // odd square
                      CaqrCase{512, 48, 8, 32},     // narrow panels
                      CaqrCase{96, 96, 32, 96},     // panel = block
                      CaqrCase{40, 64, 16, 64},     // wide matrix (m < n)
                      CaqrCase{33, 129, 16, 64},    // very wide
                      CaqrCase{500, 20, 20, 100},   // single panel
                      CaqrCase{1, 1, 16, 64}));     // degenerate

TEST(Caqr, ApplyQtMatchesExplicitQ) {
  const idx m = 300, n = 48;
  auto a = gaussian_matrix<double>(m, n, 55);
  Device dev;
  CaqrOptions opt;
  opt.panel_width = 16;
  opt.tsqr.block_rows = 64;
  auto f = caqr_factor(dev, a.view(), opt);

  auto q = f.form_q(dev, n);
  auto b0 = gaussian_matrix<double>(m, 3, 56);

  // Apply Q^T through the kernels.
  auto b1 = b0.clone();
  f.apply_qt(dev, b1.view());

  // Compare against explicit Q^T b (top n rows).
  auto b2 = Matrix<double>::zeros(n, 3);
  gemm(Trans::Yes, Trans::No, 1.0, q.view(), b0.view(), 0.0, b2.view());
  for (idx j = 0; j < 3; ++j) {
    for (idx i = 0; i < n; ++i) ASSERT_NEAR(b1(i, j), b2(i, j), 1e-10);
  }
}

TEST(Caqr, ApplyQThenQtRoundTrips) {
  const idx m = 400, n = 32;
  auto a = gaussian_matrix<double>(m, n, 57);
  Device dev;
  auto f = caqr_factor(dev, a.view());

  auto c0 = gaussian_matrix<double>(m, 5, 58);
  auto c = c0.clone();
  f.apply_qt(dev, c.view());
  f.apply_q(dev, c.view());
  for (idx j = 0; j < 5; ++j) {
    for (idx i = 0; i < m; ++i) ASSERT_NEAR(c(i, j), c0(i, j), 1e-11);
  }
}

TEST(Caqr, LeastSquaresSolveViaQr) {
  // Solve min ||Ax - b||: x = R^-1 (Q^T b)(1:n).
  const idx m = 600, n = 24;
  auto a = gaussian_matrix<double>(m, n, 60);
  auto x_true = gaussian_matrix<double>(n, 1, 61);
  auto b = Matrix<double>::zeros(m, 1);
  gemm(Trans::No, Trans::No, 1.0, a.view(), x_true.view(), 0.0, b.view());

  Device dev;
  auto f = caqr_factor(dev, a.view());
  f.apply_qt(dev, b.view());
  auto r = f.r();
  trsv_upper(r.view().block(0, 0, n, n), b.view().col(0));
  for (idx i = 0; i < n; ++i) {
    ASSERT_NEAR(b(i, 0), x_true(i, 0), 1e-9);
  }
}

TEST(Caqr, FloatPrecisionTallSkinny) {
  // The paper's regime: very tall, narrow, single precision.
  const idx m = 20000, n = 16;
  auto a = gaussian_matrix<float>(m, n, 63);
  Device dev;
  auto f = caqr_factor(dev, a.view());
  auto q = f.form_q(dev, n);
  auto r = f.r();
  EXPECT_LT(orthogonality_error(q.view()), 1e-4);
  EXPECT_LT(factorization_residual(a.view(), q.view(), r.view()), 1e-4);
}

TEST(Caqr, IllConditionedBackwardStable) {
  auto a = matrix_with_condition<double>(512, 32, 1e10, 64);
  Device dev;
  auto f = caqr_factor(dev, a.view());
  auto q = f.form_q(dev, 32);
  auto r = f.r();
  EXPECT_LT(orthogonality_error(q.view()), 1e-12);
  EXPECT_LT(factorization_residual(a.view(), q.view(), r.view()), 1e-12);
}

TEST(Caqr, PackedFormatHasRInUpperTriangle) {
  const idx m = 200, n = 32;
  auto a = gaussian_matrix<double>(m, n, 65);
  Device dev;
  auto f = caqr_factor(dev, a.view());
  const auto& packed = f.packed();
  auto r = f.r();
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i <= std::min(j, n - 1); ++i) {
      ASSERT_EQ(packed(i, j), r(i, j));
    }
  }
}

TEST(Caqr, DeterministicAcrossThreadPools) {
  auto a = gaussian_matrix<float>(512, 48, 66);
  auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    Device dev(GpuMachineModel::c2050(), ExecMode::Functional, &pool);
    auto f = caqr_factor(dev, a.view());
    return Matrix<float>::from(f.packed().view());
  };
  auto s1 = run(1);
  auto s3 = run(3);
  for (idx j = 0; j < s1.cols(); ++j) {
    for (idx i = 0; i < s1.rows(); ++i) ASSERT_EQ(s1(i, j), s3(i, j));
  }
}

TEST(Caqr, TimelineRecordsAllFourKernels) {
  auto a = gaussian_matrix<double>(1024, 64, 67);
  Device dev;
  CaqrOptions opt;
  opt.panel_width = 16;
  opt.tsqr.block_rows = 64;
  auto f = caqr_factor(dev, a.view(), opt);
  (void)f;
  for (const char* k : {"factor", "factor_tree", "apply_qt_h", "apply_qt_tree"}) {
    EXPECT_NE(dev.profile(k), nullptr) << k;
  }
  EXPECT_GT(dev.elapsed_seconds(), 0.0);
}

TEST(Caqr, ModelOnlyTimelineMatchesFunctional) {
  auto a = gaussian_matrix<float>(2048, 64, 68);
  auto run = [&](ExecMode mode) {
    Device dev(GpuMachineModel::c2050(), mode);
    auto f = caqr_factor(dev, a.view());
    (void)f;
    return dev.elapsed_seconds();
  };
  EXPECT_DOUBLE_EQ(run(ExecMode::Functional), run(ExecMode::ModelOnly));
}

TEST(Caqr, SkinnyFasterThanWideForSameFlops) {
  // Sanity on the simulated clock: CAQR on a tall-skinny matrix should get
  // throughput within its compute-bound regime (not collapse to bandwidth).
  Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
  auto a = Matrix<float>::zeros(100000, 192);
  auto f = caqr_factor(dev, a.view());
  (void)f;
  const double gflops =
      geqrf_flop_count(100000, 192) / dev.elapsed_seconds() * 1e-9;
  // Paper's Table I reports 180 GFLOPS at this size; shape check: > 100.
  EXPECT_GT(gflops, 100.0);
  EXPECT_LT(gflops, 500.0);
}

// Paper claim (§V.C): "retrieving Q explicitly (SORGQR) using CAQR is just
// as efficient as factoring the matrix."
TEST(Caqr, FormQCostsAboutAsMuchAsFactoring) {
  Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
  auto f = CaqrFactorization<float>::factor(
      dev, Matrix<float>::shape_only(100000, 192));
  const double t_factor = dev.elapsed_seconds();
  auto q = f.form_q(dev, 192);
  (void)q;
  const double t_formq = dev.elapsed_seconds() - t_factor;
  EXPECT_GT(t_formq / t_factor, 0.4);
  EXPECT_LT(t_formq / t_factor, 2.5);
}

// The factorization's GFLOP/s must not depend on the thread pool driving the
// functional simulation — simulated time is a pure function of the launches.
TEST(Caqr, SimulatedTimeIndependentOfHostParallelism) {
  auto a = gaussian_matrix<float>(1024, 48, 202);
  auto time_with = [&](std::size_t threads) {
    ThreadPool pool(threads);
    Device dev(GpuMachineModel::c2050(), ExecMode::Functional, &pool);
    auto f = caqr_factor(dev, a.view());
    (void)f;
    return dev.elapsed_seconds();
  };
  EXPECT_DOUBLE_EQ(time_with(1), time_with(6));
}

}  // namespace
}  // namespace caqr

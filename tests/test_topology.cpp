// Tests for the topology layer (src/dist/topology.hpp and friends): the
// two-level HierarchicalInterconnect, NodeGrid placement, the topology-aware
// cross-device reduction tree and its structural invariants, the comm-volume
// receipts that pin down the communication-avoiding property (inter-node
// waves == ceil(log2 K), inter-node sends == K-1 per reduction, intra-node
// traffic independent of the inter-node link class), BIT-identity of
// hierarchical specs against the single-device replay, the typed
// PartitionError, 2D block-cyclic sharding, grid-FT recovery when the lost
// device sits inside a node subtree, and the topology-aware plan probe.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "caqr/caqr.hpp"
#include "dist/device_grid.hpp"
#include "dist/dist_caqr.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/grid_ft.hpp"
#include "dist/interconnect.hpp"
#include "dist/topology.hpp"
#include "linalg/random_matrix.hpp"
#include "numerics/verifier.hpp"
#include "serve/plan_cache.hpp"

namespace caqr::dist {
namespace {

using gpusim::Device;
using gpusim::ExecMode;
using gpusim::GpuMachineModel;

template <typename T>
void expect_bits_equal(const Matrix<T>& a, const Matrix<T>& b,
                       const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(a(i, j), b(i, j)) << what << " at (" << i << "," << j << ")";
    }
  }
}

int ceil_log2(int k) {
  int levels = 0;
  for (int w = 1; w < k; w *= 2) ++levels;
  return levels;
}

// ------------------------------------------------ hierarchical interconnect

TEST(HierarchicalInterconnect, PlacementAndPerPairLinks) {
  const auto hier = HierarchicalInterconnect::nvlink_islands(4);
  EXPECT_EQ(hier.node_of(0), 0);
  EXPECT_EQ(hier.node_of(3), 0);
  EXPECT_EQ(hier.node_of(4), 1);
  EXPECT_EQ(hier.node_of(7), 1);
  EXPECT_TRUE(hier.same_node(1, 2));
  EXPECT_FALSE(hier.same_node(3, 4));
  EXPECT_EQ(hier.link_between(1, 2).name, std::string("nvlink"));
  EXPECT_EQ(hier.link_between(3, 4).name, std::string("ib_network"));
  // Crossing the slow tier costs strictly more for the same payload.
  EXPECT_GT(hier.transfer_seconds(3, 4, 1 << 20),
            hier.transfer_seconds(1, 2, 1 << 20));
}

TEST(HierarchicalInterconnect, FingerprintCoversBothTiersAndWidth) {
  const auto a = HierarchicalInterconnect::nvlink_islands(4);
  auto b = a;
  b.inter = InterconnectModel::pcie_switch();
  auto c = a;
  c.devices_per_node = 2;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  EXPECT_NE(a.fingerprint(), HierarchicalInterconnect::pcie_islands(4)
                                 .fingerprint());
  EXPECT_EQ(a.fingerprint(),
            HierarchicalInterconnect::nvlink_islands(4).fingerprint());
}

TEST(NodeGrid, PlacesDevicesNodeMajor) {
  NodeGrid grid(2, 4);
  EXPECT_EQ(grid.size(), 8);
  EXPECT_EQ(grid.nodes(), 2);
  EXPECT_EQ(grid.devices_per_node(), 4);
  ASSERT_NE(grid.hierarchy(), nullptr);
  EXPECT_EQ(grid.node_of(3), 0);
  EXPECT_EQ(grid.node_of(4), 1);
  EXPECT_EQ(grid.devices_in_node(1), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(grid.node_of_shards(),
            (std::vector<int>{0, 0, 0, 0, 1, 1, 1, 1}));
  // The hierarchy digest keys the grid fingerprint: same geometry matches,
  // a different inter-node tier does not.
  NodeGrid same(2, 4);
  EXPECT_EQ(grid.fingerprint(), same.fingerprint());
  NodeGrid pcie(2, 4, GpuMachineModel::c2050(),
                HierarchicalInterconnect::pcie_islands(4));
  EXPECT_NE(grid.fingerprint(), pcie.fingerprint());
  NodeGrid regrouped(4, 2);
  EXPECT_NE(grid.fingerprint(), regrouped.fingerprint());
}

// --------------------------------------------------- cross-spec structure

TEST(CrossSpec, TopologySpecReducesIntraNodeFirst) {
  // 8 shards over 4 nodes: one flat combine per node, then a binary tree
  // over the node roots {0, 2, 4, 6}.
  const auto spec = topology_cross_spec({0, 0, 1, 1, 2, 2, 3, 3});
  ASSERT_EQ(spec.depth(), 3);
  EXPECT_EQ(spec.shards(), 8);
  EXPECT_EQ(spec.levels[0],
            (std::vector<std::vector<int>>{{0, 1}, {2, 3}, {4, 5}, {6, 7}}));
  EXPECT_EQ(spec.levels[1], (std::vector<std::vector<int>>{{0, 2}, {4, 6}}));
  EXPECT_EQ(spec.levels[2], (std::vector<std::vector<int>>{{0, 4}}));
}

TEST(CrossSpec, InterNodeWavesAreCeilLog2K) {
  for (int k : {1, 2, 3, 4, 5, 8}) {
    for (int dpn : {1, 2, 4}) {
      std::vector<int> node_of;
      for (int node = 0; node < k; ++node) {
        for (int d = 0; d < dpn; ++d) node_of.push_back(node);
      }
      const auto spec = topology_cross_spec(node_of);
      EXPECT_EQ(inter_levels(spec, node_of), ceil_log2(k))
          << k << " nodes x " << dpn << " devices";
      check_cross_spec(spec, k * dpn);  // aborts on violation
    }
  }
  // Arity-4 inter tree: ceil(log4 K) slow waves instead.
  const auto quad = topology_cross_spec({0, 1, 2, 3, 4, 5, 6, 7}, 0, 4);
  EXPECT_EQ(inter_levels(quad, {0, 1, 2, 3, 4, 5, 6, 7}), 2);
}

TEST(CrossSpec, IntraArityControlsTheFastPhase) {
  // arity-2 intra phase on a 4-wide node: two aligned intra levels, then
  // one inter level.
  const auto spec = topology_cross_spec({0, 0, 0, 0, 1, 1, 1, 1}, 2);
  ASSERT_EQ(spec.depth(), 3);
  EXPECT_EQ(spec.levels[0],
            (std::vector<std::vector<int>>{{0, 1}, {2, 3}, {4, 5}, {6, 7}}));
  EXPECT_EQ(spec.levels[1], (std::vector<std::vector<int>>{{0, 2}, {4, 6}}));
  EXPECT_EQ(spec.levels[2], (std::vector<std::vector<int>>{{0, 4}}));
}

TEST(CrossSpec, EmptySpecResolvesToUniformConsecutiveTree) {
  const auto levels = resolve_cross_levels(5, CrossSpec{}, 2);
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0],
            (std::vector<std::vector<int>>{{0, 1}, {2, 3}, {4}}));
  EXPECT_EQ(levels[1], (std::vector<std::vector<int>>{{0, 2}, {4}}));
  EXPECT_EQ(levels[2], (std::vector<std::vector<int>>{{0, 4}}));
}

TEST(CrossSpecDeathTest, MalformedSpecsAbortBeforeArithmetic) {
  // Non-consecutive group: breaks the stacking-order invariant.
  CrossSpec skip;
  skip.levels = {{{0, 2}, {1, 3}}, {{0, 1}}};
  EXPECT_DEATH(check_cross_spec(skip, 4), "consecutive");
  // Does not reduce to shard 0.
  CrossSpec wrong_root;
  wrong_root.levels = {{{0}, {1, 2, 3}}};
  EXPECT_DEATH(check_cross_spec(wrong_root, 4), "shard 0");
  // Level that misses a survivor.
  CrossSpec partial;
  partial.levels = {{{0, 1}}};
  EXPECT_DEATH(check_cross_spec(partial, 3), "cover");
}

// ------------------------------------------------- comm-volume receipts

TEST(Topology, SinglePanelReductionShipsKMinus1InterTriangles) {
  // Single panel (n == panel_width): the factor's cross reduction is one
  // tree walk. On K=4 nodes x 2 devices that is 4 intra-node triangles
  // (one per node) and exactly K-1 = 3 inter-node triangles, of which
  // ceil(log2 K) = 2 land on the root device.
  const idx m = 256, n = 8;
  const auto a = matrix_with_condition<double>(m, n, 1e2, 13);
  NodeGrid grid(4, 2);
  DistCaqrOptions dopt;
  dopt.panel_width = n;
  dopt.tsqr.block_rows = 16;
  dopt.cross_spec = grid.cross_spec();
  auto f = DistCaqrFactorization<double>::factor(
      grid, DistMatrix<double>::scatter(a.view(), 8), dopt);
  (void)f;

  const auto s = grid.comm_stats();
  EXPECT_EQ(s.intra_transfers, 4);
  EXPECT_EQ(s.inter_transfers, 3);
  EXPECT_DOUBLE_EQ(s.intra_bytes + s.inter_bytes, s.bytes);
  int into_root = 0;
  for (const auto& rec : grid.comm_log()) {
    EXPECT_EQ(rec.inter_node, !grid.hierarchy()->same_node(rec.src, rec.dst));
    if (rec.inter_node && rec.dst == 0) ++into_root;
  }
  EXPECT_EQ(into_root, 2);  // ceil(log2 4)
}

TEST(Topology, IntraTrafficIndependentOfInterLinkClass) {
  // Swap ONLY the inter-node tier (IB -> PCIe-class): every intra-node
  // receipt — count, bytes, seconds — must be unchanged, while the
  // inter-node seconds move with the link model.
  const idx m = 256, n = 16;
  DistCaqrOptions dopt;
  dopt.panel_width = 8;
  dopt.tsqr.block_rows = 16;

  auto run = [&](HierarchicalInterconnect hier) {
    NodeGrid grid(2, 2, GpuMachineModel::c2050(), hier, ExecMode::ModelOnly);
    DistCaqrOptions opt = dopt;
    opt.cross_spec = grid.cross_spec();
    auto f = DistCaqrFactorization<double>::factor(
        grid, DistMatrix<double>::shape_only(m, n, 4), opt);
    (void)f;
    return grid.comm_stats();
  };

  const auto ib = run(HierarchicalInterconnect::nvlink_islands(2));
  auto pcie_inter = HierarchicalInterconnect::nvlink_islands(2);
  pcie_inter.inter = InterconnectModel::pcie_switch();
  const auto sw = run(pcie_inter);

  ASSERT_GT(ib.intra_transfers, 0);
  ASSERT_GT(ib.inter_transfers, 0);
  EXPECT_EQ(ib.intra_transfers, sw.intra_transfers);
  EXPECT_DOUBLE_EQ(ib.intra_bytes, sw.intra_bytes);
  EXPECT_DOUBLE_EQ(ib.intra_seconds, sw.intra_seconds);
  EXPECT_EQ(ib.inter_transfers, sw.inter_transfers);
  EXPECT_DOUBLE_EQ(ib.inter_bytes, sw.inter_bytes);
  EXPECT_NE(ib.inter_seconds, sw.inter_seconds);
}

// ----------------------------------------------------------- bit-identity

void check_hier_bit_identity(int devices, int nodes) {
  SCOPED_TRACE(testing::Message() << devices << " devices over " << nodes
                                  << " nodes");
  const idx m = 256, n = 24;
  const auto a = matrix_with_condition<double>(m, n, 1e6, 42);

  NodeGrid grid(nodes, devices / nodes);
  DistCaqrOptions dopt;
  dopt.panel_width = 8;
  dopt.tsqr.block_rows = std::max<idx>(8, m / devices / 4);
  dopt.cross_spec = grid.cross_spec();

  auto df = DistCaqrFactorization<double>::factor(
      grid, DistMatrix<double>::scatter(a.view(), devices), dopt);

  const auto partition = even_partition(m, devices, n);
  Device dev;
  auto sf = CaqrFactorization<double>::factor(
      dev, Matrix<double>::from(a.view()),
      single_device_equivalent(dopt, partition));

  expect_bits_equal(sf.r(), df.r(), "R");
  expect_bits_equal(sf.form_q(dev, n), df.form_q(grid, n).gather(), "Q");
  const auto rep = numerics::verify_qr(
      a.view(), df.form_q(grid, n).gather().view(), df.r().view());
  EXPECT_TRUE(rep.pass) << "residual " << rep.residual;
}

TEST(Topology, HierarchicalSpecBitIdenticalToSingleDevice) {
  for (int devices : {2, 4, 8}) {
    for (int nodes : {1, 2, 4}) {
      if (nodes > devices) continue;
      check_hier_bit_identity(devices, nodes);
    }
  }
}

TEST(Topology, IntraAritySpecStaysBitIdentical) {
  const idx m = 512, n = 16;
  const auto a = matrix_with_condition<double>(m, n, 1e4, 17);
  NodeGrid grid(2, 4);
  DistCaqrOptions dopt;
  dopt.panel_width = 8;
  dopt.tsqr.block_rows = 16;
  dopt.cross_spec = grid.cross_spec(/*intra_arity=*/2);
  auto df = DistCaqrFactorization<double>::factor(
      grid, DistMatrix<double>::scatter(a.view(), 8), dopt);
  Device dev;
  auto sf = CaqrFactorization<double>::factor(
      dev, Matrix<double>::from(a.view()),
      single_device_equivalent(dopt, even_partition(m, 8, n)));
  expect_bits_equal(sf.r(), df.r(), "R under arity-2 intra phase");
  expect_bits_equal(sf.form_q(dev, n), df.form_q(grid, n).gather(),
                    "Q under arity-2 intra phase");
}

// -------------------------------------------------- typed partition error

TEST(DistMatrixError, InfeasiblePartitionThrowsTypedTriple) {
  try {
    even_partition(10, 4, 8);  // needs >= 32 rows
    FAIL() << "expected PartitionError";
  } catch (const PartitionError& e) {
    EXPECT_EQ(e.rows, 10);
    EXPECT_EQ(e.min_rows, 8);
    EXPECT_EQ(e.devices, 4);
    EXPECT_NE(std::string(e.what()).find("10"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("4 devices"), std::string::npos);
  }
  // Feasible boundary case still works.
  EXPECT_EQ(even_partition(32, 4, 8), (std::vector<idx>{0, 8, 16, 24, 32}));
}

// ------------------------------------------------------- 2D block-cyclic

TEST(BlockCyclic, OwnerMapAndLocalExtents) {
  BlockCyclicLayout lay;
  lay.pr = 2;
  lay.pc = 2;
  lay.br = 4;
  lay.bc = 4;
  EXPECT_EQ(lay.devices(), 4);
  EXPECT_EQ(lay.owner(0, 0), 0);
  EXPECT_EQ(lay.owner(0, 4), 1);
  EXPECT_EQ(lay.owner(4, 0), 2);
  EXPECT_EQ(lay.owner(4, 4), 3);
  EXPECT_EQ(lay.owner(8, 8), 0);  // cycles wrap
  // numroc-style extents: 10 rows in 4-row blocks over 2 grid rows.
  EXPECT_EQ(lay.local_rows(10, 0), 6);  // blocks 0 and 2 (truncated)
  EXPECT_EQ(lay.local_rows(10, 1), 4);  // block 1
  // Every global element lands inside its owner's local extent.
  const idx rows = 13, cols = 9;
  for (idx i = 0; i < rows; ++i) {
    for (idx j = 0; j < cols; ++j) {
      const int d = lay.owner(i, j);
      EXPECT_LT(lay.local_row(i), lay.local_rows(rows, lay.grid_row(d)));
      EXPECT_LT(lay.local_col(j), lay.local_cols(cols, lay.grid_col(d)));
    }
  }
}

TEST(BlockCyclic, ScatterGatherRoundTrip) {
  const auto a = matrix_with_condition<double>(37, 21, 1e3, 11);
  BlockCyclicLayout lay;
  lay.pr = 2;
  lay.pc = 3;
  lay.br = 8;
  lay.bc = 4;
  const auto m = BlockCyclicMatrix<double>::scatter(a.view(), lay);
  EXPECT_EQ(m.num_shards(), 6);
  expect_bits_equal(a, m.gather(), "block-cyclic scatter/gather");
  // Shard shapes match the layout's local extents (zero-size shards are
  // legal when a grid column owns no blocks).
  for (int d = 0; d < lay.devices(); ++d) {
    EXPECT_EQ(m.shard(d).rows(), lay.local_rows(37, lay.grid_row(d)));
    EXPECT_EQ(m.shard(d).cols(), lay.local_cols(21, lay.grid_col(d)));
  }
  // shape_only mirrors the same shapes without storage.
  const auto s = BlockCyclicMatrix<double>::shape_only(37, 21, lay);
  EXPECT_FALSE(s.functional());
  for (int d = 0; d < lay.devices(); ++d) {
    EXPECT_EQ(s.shard(d).rows(), m.shard(d).rows());
    EXPECT_EQ(s.shard(d).cols(), m.shard(d).cols());
  }
}

// ------------------------------------------------- grid FT on a NodeGrid

TEST(TopologyFt, DeviceLossInsideNodeSubtreeRecovers) {
  // Kill a device in the middle of node 0's subtree mid-run: the recovery
  // driver re-derives the topology spec for the 3 survivors (still
  // node-major) and the factorization completes and verifies.
  const idx m = 256, n = 32;
  const auto a = matrix_with_condition<double>(m, n, 1e5, 203);
  NodeGrid grid(2, 2);
  GridFtOptions gft;
  gft.device_losses.push_back({1, 2});  // device 1 = node 0, second member
  grid.set_fault_tolerance(gft);

  DistCaqrOptions dopt;
  dopt.panel_width = 8;
  dopt.tsqr.block_rows = 16;
  dopt.cross_spec = grid.cross_spec();

  GridRecoveryOptions ropt;
  ropt.checkpoint_every = 1;
  const auto res = factor_with_recovery<double>(grid, a.view(), dopt, ropt);
  ASSERT_TRUE(res.f.has_value());
  EXPECT_GE(res.status.device_losses, 1);
  EXPECT_EQ(grid.num_alive(), 3);
  EXPECT_EQ(static_cast<int>(res.devices.size()), 3);
  for (const int d : res.devices) EXPECT_NE(d, 1);

  NodeGrid gq(2, 2);
  const Matrix<double> q = res.f->form_q(gq, n).gather();
  EXPECT_TRUE(
      numerics::verify_qr(a.view(), q.view(), res.f->r().view()).pass);
}

// ------------------------------------------------- topology-aware plans

TEST(TopologyPlan, ProbePicksNoWorseThanUniformBinary) {
  NodeGrid grid(2, 4, GpuMachineModel::c2050(),
                HierarchicalInterconnect::nvlink_islands(4),
                ExecMode::ModelOnly);
  const auto plan = serve::make_dist_plan<double>(grid, 1 << 15, 96);
  EXPECT_GT(plan.predicted_caqr_seconds, 0.0);
  if (!plan.dist_caqr.cross_spec.empty()) {
    check_cross_spec(plan.dist_caqr.cross_spec, grid.size());
  }
  // The probe minimizes over candidates that include the plain uniform
  // binary tree, so the pick can never be slower than it.
  DistCaqrOptions uniform = plan.dist_caqr;
  uniform.cross_arity = 2;
  uniform.cross_spec = CrossSpec{};
  const double uniform_t =
      predict_dist_caqr_seconds<double>(grid, 1 << 15, 96, uniform);
  EXPECT_LE(plan.predicted_caqr_seconds, uniform_t * (1 + 1e-12));
}

TEST(TopologyPlan, HierarchyDigestKeysTheCache) {
  serve::PlanCache cache(8);
  NodeGrid grid(2, 4, GpuMachineModel::c2050(),
                HierarchicalInterconnect::nvlink_islands(4),
                ExecMode::ModelOnly);
  EXPECT_FALSE(cache.lookup_dist<double>(grid, 8192, 64).hit);
  NodeGrid same(2, 4, GpuMachineModel::c2050(),
                HierarchicalInterconnect::nvlink_islands(4),
                ExecMode::ModelOnly);
  EXPECT_TRUE(cache.lookup_dist<double>(same, 8192, 64).hit);
  // Same device count, different node shape or inter tier: fresh plan.
  NodeGrid regrouped(4, 2, GpuMachineModel::c2050(),
                     HierarchicalInterconnect::nvlink_islands(2),
                     ExecMode::ModelOnly);
  EXPECT_FALSE(cache.lookup_dist<double>(regrouped, 8192, 64).hit);
  NodeGrid pcie(2, 4, GpuMachineModel::c2050(),
                HierarchicalInterconnect::pcie_islands(4),
                ExecMode::ModelOnly);
  EXPECT_FALSE(cache.lookup_dist<double>(pcie, 8192, 64).hit);
}

}  // namespace
}  // namespace caqr::dist

// Property tests for the operation-count functions and the flop-reporting
// conventions: closed forms vs independent formulas, monotonicity, and the
// standard LAPACK counts used for GFLOP/s reporting.

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/block_ops.hpp"
#include "linalg/flops.hpp"

namespace caqr {
namespace {

using kernels::block_apply_qt_flops;
using kernels::block_geqr2_flops;
using kernels::stacked_apply_qt_flops;
using kernels::stacked_geqr2_flops;

TEST(GeqrfFlops, MatchesTextbookFormula) {
  // 2mn^2 - (2/3)n^3 for tall matrices.
  EXPECT_DOUBLE_EQ(geqrf_flop_count(1000, 100),
                   2.0 * 1000 * 100 * 100 - (2.0 / 3.0) * 100 * 100 * 100);
  // Square: (4/3)n^3.
  EXPECT_NEAR(geqrf_flop_count(64, 64), (4.0 / 3.0) * 64.0 * 64 * 64, 1e-6);
  // Wide matrices mirror the formula with m and n swapped roles.
  EXPECT_DOUBLE_EQ(geqrf_flop_count(100, 1000), geqrf_flop_count(1000, 100));
}

TEST(GeqrfFlops, MonotoneInBothDimensions) {
  EXPECT_LT(geqrf_flop_count(1000, 50), geqrf_flop_count(2000, 50));
  EXPECT_LT(geqrf_flop_count(1000, 50), geqrf_flop_count(1000, 60));
}

TEST(GemmFlops, Basic) {
  EXPECT_DOUBLE_EQ(gemm_flop_count(3, 4, 5), 120.0);
  EXPECT_DOUBLE_EQ(gemm_flop_count(0, 4, 5), 0.0);
}

TEST(BlockGeqr2Flops, AsymptoticMatchesLapackCount) {
  // The data-oblivious kernel count must track 2mn^2 - (2/3)n^3 to within
  // the lower-order terms (generation cost, the -2 per column).
  for (const idx m : {256, 1024, 4096}) {
    for (const idx n : {8, 16, 32}) {
      const double exact = block_geqr2_flops(m, n);
      const double lapack = geqrf_flop_count(m, n);
      EXPECT_NEAR(exact / lapack, 1.0, 0.08) << m << "x" << n;
    }
  }
}

TEST(BlockGeqr2Flops, EdgeCases) {
  EXPECT_DOUBLE_EQ(block_geqr2_flops(1, 1), 0.0);   // nothing to eliminate
  EXPECT_DOUBLE_EQ(block_geqr2_flops(0, 0), 0.0);
  EXPECT_GT(block_geqr2_flops(2, 1), 0.0);
  // Square block: last column has a length-1 reflector (tau = 0, free).
  EXPECT_DOUBLE_EQ(block_geqr2_flops(4, 4) - block_geqr2_flops(4, 3),
                   0.0 + (block_geqr2_flops(4, 4) - block_geqr2_flops(4, 3)));
}

TEST(BlockGeqr2Flops, StrictlyMonotone) {
  for (idx m = 8; m <= 64; m *= 2) {
    EXPECT_LT(block_geqr2_flops(m, 4), block_geqr2_flops(2 * m, 4));
    EXPECT_LT(block_geqr2_flops(m, 4), block_geqr2_flops(m, 5));
  }
}

TEST(BlockApplyQtFlops, LinearInTrailingColumns) {
  const double one = block_apply_qt_flops(128, 16, 1);
  for (const idx nc : {2, 5, 16, 33}) {
    EXPECT_DOUBLE_EQ(block_apply_qt_flops(128, 16, nc),
                     one * static_cast<double>(nc));
  }
  EXPECT_DOUBLE_EQ(block_apply_qt_flops(128, 16, 0), 0.0);
}

TEST(StackedFlops, ReduceToZeroForSingletonStack) {
  EXPECT_DOUBLE_EQ(stacked_geqr2_flops(16, 1), 0.0);
  EXPECT_DOUBLE_EQ(stacked_apply_qt_flops(16, 1, 10), 0.0);
}

TEST(StackedFlops, GrowWithFanInAndWidth) {
  EXPECT_LT(stacked_geqr2_flops(16, 2), stacked_geqr2_flops(16, 4));
  EXPECT_LT(stacked_geqr2_flops(8, 4), stacked_geqr2_flops(16, 4));
  EXPECT_LT(stacked_apply_qt_flops(16, 2, 4), stacked_apply_qt_flops(16, 4, 4));
}

TEST(StackedFlops, StructuredSavingFactorApproachesOneThird) {
  // For a stack of k triangles, structured QR does ~(1/3) the flops of the
  // dense QR of the same (kw x w) matrix as w grows (triangle vs full
  // columns), modulo lower-order terms.
  const idx w = 64, k = 4;
  const double ratio = stacked_geqr2_flops(w, k) / block_geqr2_flops(k * w, w);
  EXPECT_GT(ratio, 0.25);
  EXPECT_LT(ratio, 0.55);
}

TEST(TsqrTotalFlops, TreeOverheadIsSmallForTallPanels) {
  // TSQR total = leaf factors + combines; for m >> w the combine flops are
  // a vanishing fraction — the "extra work" CAQR trades for communication.
  const idx w = 16, h = 64, m = 1 << 20;
  const idx leaves = m / h;
  const double leaf_flops = static_cast<double>(leaves) * block_geqr2_flops(h, w);
  double combine_flops = 0;
  idx survivors = leaves;
  while (survivors > 1) {
    const idx groups = (survivors + 3) / 4;
    // Full groups of 4 dominate; count them all as fan-in 4 (upper bound).
    combine_flops += static_cast<double>(groups) * stacked_geqr2_flops(w, 4);
    survivors = groups;
  }
  EXPECT_LT(combine_flops / leaf_flops, 0.25);
  EXPECT_GT(combine_flops, 0.0);
}

TEST(TallSkinnySvdFlops, DominatedByQrForPaperShape) {
  const double total = tall_skinny_svd_flop_count(110592, 100);
  const double qr = geqrf_flop_count(110592, 100);
  EXPECT_GT(qr / total, 0.45);
  EXPECT_LT(qr / total, 0.75);
}

}  // namespace
}  // namespace caqr

// Tests for the block-size autotuner (§IV.F): selection on the paper's
// platform, sensitivity to machine-model knobs, and microbenchmark
// consistency with the kernel cost model.

#include <gtest/gtest.h>

#include "caqr/autotune.hpp"
#include "gpusim/device.hpp"
#include "kernels/kernels.hpp"

namespace caqr {
namespace {

using autotune::autotune_block_size;
using autotune::microbench_apply_qt_h;
using gpusim::GpuMachineModel;
using kernels::ReductionVariant;

TEST(Autotune, SelectsPaperBlockOnC2050) {
  const auto best = autotune_block_size(GpuMachineModel::c2050());
  EXPECT_EQ(best.block_rows, 128);
  EXPECT_EQ(best.panel_width, 16);
  EXPECT_NEAR(best.gflops, 388.0, 25.0);  // paper: 388
}

TEST(Autotune, MicrobenchMatchesTuningLadder) {
  const auto model = GpuMachineModel::c2050();
  const double v1 =
      microbench_apply_qt_h(model, 128, 16, ReductionVariant::SmemParallelReduction);
  const double v2 =
      microbench_apply_qt_h(model, 128, 16, ReductionVariant::SmemSerialReduction);
  const double v3 = microbench_apply_qt_h(model, 128, 16,
                                          ReductionVariant::RegisterSerialReduction);
  const double v4 = microbench_apply_qt_h(
      model, 128, 16, ReductionVariant::RegisterSerialTransposed);
  EXPECT_LT(v1, v2);
  EXPECT_LT(v2, v3);
  EXPECT_LT(v3, v4);
  EXPECT_NEAR(v1, 55.0, 8.0);
  EXPECT_NEAR(v2, 168.0, 15.0);
  EXPECT_NEAR(v3, 194.0, 15.0);
  EXPECT_NEAR(v4, 388.0, 25.0);
}

TEST(Autotune, WiderBlocksLoseToBroadcastPressure) {
  const auto model = GpuMachineModel::c2050();
  const double w16 = microbench_apply_qt_h(model, 128, 16);
  const double w32 = microbench_apply_qt_h(model, 128, 32);
  const double w64 = microbench_apply_qt_h(model, 128, 64);
  EXPECT_GT(w16, w32);
  EXPECT_GT(w32, w64);
}

TEST(Autotune, TallBlocksLoseToRegisterSpill) {
  const auto model = GpuMachineModel::c2050();
  const double h128 = microbench_apply_qt_h(model, 128, 16);  // 2048 elems
  const double h256 = microbench_apply_qt_h(model, 256, 16);  // 4096: spills
  const double h512 = microbench_apply_qt_h(model, 512, 16);
  EXPECT_GT(h128, h256);
  EXPECT_GT(h256, h512);
}

TEST(Autotune, NarrowBlocksLoseToBarrierAmortization) {
  const auto model = GpuMachineModel::c2050();
  EXPECT_LT(microbench_apply_qt_h(model, 128, 4),
            microbench_apply_qt_h(model, 128, 16));
}

TEST(Autotune, SelectionRespondsToRegisterCapacity) {
  // A hypothetical GPU with a much larger register file should prefer
  // taller blocks. We emulate it by sweeping manually with patched params.
  const auto model = GpuMachineModel::c2050();
  auto params = kernels::cost_params(ReductionVariant::RegisterSerialTransposed);
  // Direct microbench comparison with the production capacity:
  const double base_128 = microbench_apply_qt_h(model, 128, 16);
  const double base_384 = microbench_apply_qt_h(model, 384, 16);
  EXPECT_GT(base_128, base_384);  // spill makes 384 lose today
  (void)params;
}

TEST(Autotune, Gtx480AlsoPicksAReasonableBlock) {
  const auto best = autotune_block_size(GpuMachineModel::gtx480());
  // Same architecture generation: same block shape expected.
  EXPECT_EQ(best.block_rows, 128);
  EXPECT_EQ(best.panel_width, 16);
  // Higher clock and more SMs: strictly more GFLOPS than the C2050.
  const auto c2050 = autotune_block_size(GpuMachineModel::c2050());
  EXPECT_GT(best.gflops, c2050.gflops);
}

TEST(Autotune, MicrobenchRejectsInvalidShapes) {
  EXPECT_DEATH(microbench_apply_qt_h(GpuMachineModel::c2050(), 8, 16),
               "block_h >= block_w");
}

}  // namespace
}  // namespace caqr

// Condition-number / column-scaling stress sweep (tentpole acceptance) and
// degenerate-input coverage across every QR path.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "caqr/caqr.hpp"
#include "gpusim/device.hpp"
#include "linalg/qr.hpp"
#include "linalg/random_matrix.hpp"
#include "numerics/stress.hpp"
#include "numerics/verifier.hpp"
#include "tsqr/tsqr.hpp"

namespace caqr {
namespace {

using numerics::VerifyReport;

TEST(Stress, AllPathsPassAcrossConditionAndScaleSweep) {
  numerics::StressSpec spec;
  spec.rows = 96;
  spec.cols = 12;
  spec.conds = {1e0, 1e7, 1e14};
  spec.col_scales = {1e-300, 1.0, 1e300};
  spec.mixed_columns = true;
  const numerics::StressSummary s = numerics::run_stress(spec);
  EXPECT_GT(s.rows.size(), 0u);
  for (const auto& row : s.rows) {
    EXPECT_TRUE(row.report.pass)
        << row.path << " cond " << row.cond << " scale " << row.col_scale
        << (row.mixed ? " (mixed)" : "") << ": residual "
        << row.report.residual << ", orthogonality "
        << row.report.orthogonality << ", gram " << row.report.gram_residual
        << ", tol " << row.report.tolerance;
  }
  EXPECT_TRUE(s.pass());
}

TEST(Stress, JsonSerializationCoversEveryRow) {
  numerics::StressSpec spec;
  spec.rows = 48;
  spec.cols = 8;
  spec.conds = {1e0};
  spec.col_scales = {1.0};
  const auto s = numerics::run_stress(spec);
  const std::string json = numerics::stress_json(s);
  std::size_t objects = 0;
  for (std::size_t pos = json.find("\"path\""); pos != std::string::npos;
       pos = json.find("\"path\"", pos + 1)) {
    ++objects;
  }
  EXPECT_EQ(objects, s.rows.size());
}

// --- Satellite 4: degenerate inputs through every path ---

struct Factors {
  Matrix<double> q;
  Matrix<double> r;
};

Factors via_reference(const Matrix<double>& a) {
  Matrix<double> fac = Matrix<double>::from(a.view());
  std::vector<double> tau(
      static_cast<std::size_t>(std::min(a.rows(), a.cols())));
  geqrf(fac.view(), tau.data());
  return {form_q(fac.view(), tau.data(), std::min(a.rows(), a.cols())),
          extract_r(fac.view())};
}

Factors via_tsqr(const Matrix<double>& a) {
  gpusim::Device dev;
  tsqr::TsqrOptions opt;
  opt.block_rows = std::max<idx>(a.cols(), 8);
  auto res = tsqr::tsqr(dev, a.view(), opt);
  return {res.form_q(dev, opt), res.r()};
}

Factors via_caqr(const Matrix<double>& a) {
  gpusim::Device dev;
  CaqrOptions opt;
  opt.panel_width = 4;
  opt.tsqr.block_rows = std::max<idx>(a.cols(), 8);
  auto f =
      CaqrFactorization<double>::factor(dev, Matrix<double>::from(a.view()), opt);
  return {f.form_q(dev, std::min(a.rows(), a.cols())), f.r()};
}

void expect_valid_factorization(const Matrix<double>& a, const char* label) {
  for (const auto path : {&via_reference, &via_tsqr, &via_caqr}) {
    const Factors f = (*path)(a);
    ASSERT_TRUE(numerics::finite_check(f.q.view())) << label;
    ASSERT_TRUE(numerics::finite_check(f.r.view())) << label;
    const VerifyReport rep =
        numerics::verify_qr(a.view(), f.q.view(), f.r.view());
    EXPECT_TRUE(rep.pass) << label << ": residual " << rep.residual
                          << ", orthogonality " << rep.orthogonality;
  }
}

TEST(Degenerate, AllZeroMatrix) {
  const auto a = Matrix<double>::zeros(32, 6);
  expect_valid_factorization(a, "all-zero");
  // Zero columns must yield tau == 0 (H == I) reflectors in the reference
  // path, not NaN from 0/0.
  Matrix<double> fac = Matrix<double>::from(a.view());
  std::vector<double> tau(6, -1.0);
  geqrf(fac.view(), tau.data());
  for (const double t : tau) EXPECT_EQ(t, 0.0);
  for (idx j = 0; j < 6; ++j) {
    for (idx i = 0; i < 32; ++i) EXPECT_EQ(fac(i, j), 0.0);
  }
}

TEST(Degenerate, SingleRowMatrix) {
  // 1 x 1: the only reflector sees an empty tail -> tau == 0, R == A.
  Matrix<double> a(1, 1);
  a(0, 0) = 3.5;
  expect_valid_factorization(a, "1x1");
  Matrix<double> fac = Matrix<double>::from(a.view());
  double tau = -1.0;
  geqrf(fac.view(), &tau);
  EXPECT_EQ(tau, 0.0);
  EXPECT_EQ(fac(0, 0), 3.5);
}

TEST(Degenerate, SquareMatrix) {
  const auto a = matrix_with_condition<double>(12, 12, 1e5, 21);
  expect_valid_factorization(a, "square");
}

TEST(Degenerate, DuplicateColumnRankDeficient) {
  auto a = matrix_with_condition<double>(40, 6, 1e2, 22);
  // Make the matrix exactly rank-deficient: col 3 duplicates col 1.
  for (idx i = 0; i < 40; ++i) a(i, 3) = a(i, 1);
  expect_valid_factorization(a, "duplicate-column");
  // The dependent column's diagonal entry collapses to roundoff level and
  // the trailing reflector of the zeroed subcolumn stays tau-finite.
  const Factors f = via_reference(a);
  EXPECT_LT(std::abs(f.r(3, 3)), 1e-12 * std::abs(f.r(0, 0)));
}

TEST(Degenerate, SingleRowBlockEqualsWidth) {
  // rows == cols == block_rows: TSQR degenerates to one block, no tree.
  const auto a = matrix_with_condition<double>(8, 8, 1e3, 23);
  gpusim::Device dev;
  tsqr::TsqrOptions opt;
  opt.block_rows = 8;
  auto res = tsqr::tsqr(dev, a.view(), opt);
  EXPECT_EQ(res.meta.num_blocks(), 1);
  EXPECT_EQ(res.meta.num_levels(), 0);
  const auto q = res.form_q(dev, opt);
  EXPECT_TRUE(numerics::verify_qr(a.view(), q.view(), res.r().view()).pass);
}

}  // namespace
}  // namespace caqr

// Tests for the adaptive QR front end and the least-squares solver — the
// §V.C "autotuning framework" extension: algorithm selection by predicted
// cost, correctness of both paths, and selection consistency with the
// underlying cost models.

#include <gtest/gtest.h>

#include <cmath>

#include "caqr/solver.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"

namespace caqr {
namespace {

using gpusim::Device;
using gpusim::ExecMode;
using gpusim::GpuMachineModel;

TEST(AdaptiveQr, PicksCaqrForTallSkinny) {
  const auto model = GpuMachineModel::c2050();
  EXPECT_LT(predict_caqr_seconds<float>(model, 100000, 192),
            predict_hybrid_seconds<float>(model, 100000, 192));
}

TEST(AdaptiveQr, PicksHybridForLargeSquare) {
  const auto model = GpuMachineModel::c2050();
  EXPECT_GT(predict_caqr_seconds<float>(model, 8192, 8192),
            predict_hybrid_seconds<float>(model, 8192, 8192));
}

TEST(AdaptiveQr, AutoSelectionMatchesPrediction) {
  // Functional-size proxy shapes with the same ordering.
  Device dev;
  auto tall = gaussian_matrix<double>(4096, 16, 5);
  auto r1 = adaptive_qr(dev, tall.view());
  EXPECT_EQ(r1.used, QrAlgorithm::Caqr);

  auto square = gaussian_matrix<double>(256, 256, 6);
  const auto model = dev.model();
  const QrAlgorithm expect =
      predict_caqr_seconds<double>(model, 256, 256) <=
              predict_hybrid_seconds<double>(model, 256, 256)
          ? QrAlgorithm::Caqr
          : QrAlgorithm::Hybrid;
  auto r2 = adaptive_qr(dev, square.view());
  EXPECT_EQ(r2.used, expect);
}

TEST(AdaptiveQr, BothPathsProduceValidFactorizations) {
  auto a = gaussian_matrix<double>(300, 48, 7);
  for (const auto algo : {QrAlgorithm::Caqr, QrAlgorithm::Hybrid}) {
    Device dev;
    auto res = adaptive_qr(dev, a.view(), algo);
    EXPECT_EQ(res.used, algo);
    EXPECT_LT(orthogonality_error(res.q.view()), 1e-12);
    EXPECT_LT(factorization_residual(a.view(), res.q.view(), res.r.view()),
              1e-12);
    EXPECT_GT(res.simulated_seconds, 0.0);
  }
}

TEST(AdaptiveQr, ForcedAlgorithmIsRespected) {
  auto a = gaussian_matrix<float>(2048, 32, 8);
  Device dev;
  auto res = adaptive_qr(dev, a.view(), QrAlgorithm::Hybrid);
  EXPECT_EQ(res.used, QrAlgorithm::Hybrid);
}

TEST(LeastSquares, RecoversExactSolutionNoiseless) {
  const idx m = 500, n = 20, rhs = 3;
  auto a = gaussian_matrix<double>(m, n, 9);
  auto x_true = gaussian_matrix<double>(n, rhs, 10);
  auto b = Matrix<double>::zeros(m, rhs);
  gemm(Trans::No, Trans::No, 1.0, a.view(), x_true.view(), 0.0, b.view());

  for (const auto algo : {QrAlgorithm::Caqr, QrAlgorithm::Hybrid}) {
    Device dev;
    auto x = least_squares_solve(dev, a.view(), b.view(), algo);
    for (idx j = 0; j < rhs; ++j) {
      for (idx i = 0; i < n; ++i) {
        ASSERT_NEAR(x(i, j), x_true(i, j), 1e-10) << "algo path";
      }
    }
  }
}

TEST(LeastSquares, MinimizesResidualWithNoise) {
  // With noise, the QR solution must satisfy the normal equations:
  // A^T (A x - b) ~ 0.
  const idx m = 2000, n = 8;
  auto a = gaussian_matrix<double>(m, n, 11);
  auto b = gaussian_matrix<double>(m, 1, 12);
  Device dev;
  auto x = least_squares_solve(dev, a.view(), b.view());

  Matrix<double> res = Matrix<double>::from(b.view());
  gemm(Trans::No, Trans::No, -1.0, a.view(), x.view(), 1.0, res.view());
  Matrix<double> atres = Matrix<double>::zeros(n, 1);
  gemm(Trans::Yes, Trans::No, 1.0, a.view(), res.view(), 0.0, atres.view());
  EXPECT_LT(max_abs(atres.view()), 1e-9 * frobenius_norm(b.view()));
}

TEST(LeastSquares, IllConditionedStillAccurate) {
  const idx m = 600, n = 16;
  auto a = matrix_with_condition<double>(m, n, 1e8, 13);
  auto x_true = gaussian_matrix<double>(n, 1, 14);
  auto b = Matrix<double>::zeros(m, 1);
  gemm(Trans::No, Trans::No, 1.0, a.view(), x_true.view(), 0.0, b.view());
  Device dev;
  auto x = least_squares_solve(dev, a.view(), b.view(), QrAlgorithm::Caqr);
  // Forward error bounded by cond * eps ~ 1e8 * 1e-16 * growth; the
  // residual-based check is the stable property.
  Matrix<double> res = Matrix<double>::from(b.view());
  gemm(Trans::No, Trans::No, -1.0, a.view(), x.view(), 1.0, res.view());
  EXPECT_LT(frobenius_norm(res.view()), 1e-7 * frobenius_norm(b.view()));
}

TEST(AdaptiveQr, PredictionIsDataFree) {
  // shape_only prediction must not allocate or touch storage: exercised at
  // a size whose data (32 GB) could not exist.
  const auto model = GpuMachineModel::c2050();
  const double t = predict_caqr_seconds<float>(model, 1 << 20, 8192);
  // ~1.3e14 flops at CAQR's ~200 GFLOP/s plateau is on the order of 10 min
  // of simulated time; the check brackets it.
  EXPECT_GT(t, 60.0);
  EXPECT_LT(t, 3600.0);
}

TEST(RefinedLeastSquares, ReachesNearDoublePrecisionFromFloatFactor) {
  const idx m = 1500, n = 24;
  auto a = gaussian_matrix<double>(m, n, 55);
  auto xt = gaussian_matrix<double>(n, 1, 56);
  auto b = Matrix<double>::zeros(m, 1);
  gemm(Trans::No, Trans::No, 1.0, a.view(), xt.view(), 0.0, b.view());

  Device dev;
  auto refined = least_squares_solve_refined(dev, a.view(), b.view());
  double err = 0;
  for (idx i = 0; i < n; ++i) {
    err = std::max(err, std::fabs(refined.x(i, 0) - xt(i, 0)));
  }
  // A single float solve gives ~1e-4; refinement must push well below that.
  EXPECT_LT(err, 1e-9);
  EXPECT_GE(refined.refinement_steps, 1);
  EXPECT_LT(refined.final_residual_norm, 1e-9);
}

TEST(RefinedLeastSquares, RefinementImprovesOnSingleFloatSolve) {
  const idx m = 1000, n = 16;
  auto a = gaussian_matrix<double>(m, n, 57);
  auto xt = gaussian_matrix<double>(n, 1, 58);
  auto b = Matrix<double>::zeros(m, 1);
  gemm(Trans::No, Trans::No, 1.0, a.view(), xt.view(), 0.0, b.view());

  Device dev;
  auto refined = least_squares_solve_refined(dev, a.view(), b.view(), 0);
  auto refined5 = least_squares_solve_refined(dev, a.view(), b.view(), 5);
  double err0 = 0, err5 = 0;
  for (idx i = 0; i < n; ++i) {
    err0 = std::max(err0, std::fabs(refined.x(i, 0) - xt(i, 0)));
    err5 = std::max(err5, std::fabs(refined5.x(i, 0) - xt(i, 0)));
  }
  EXPECT_LT(err5, err0 * 1e-2);
}

}  // namespace
}  // namespace caqr

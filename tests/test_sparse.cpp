// Tests for the CSR sparse-matrix substrate.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/prng.hpp"
#include "linalg/blas2.hpp"
#include "sparse/csr.hpp"

namespace caqr {
namespace {

using sparse::CsrMatrix;

TEST(Csr, FromTripletsBasic) {
  auto m = CsrMatrix<double>::from_triplets(
      3, 3, {{0, 0, 1.0}, {1, 1, 2.0}, {2, 2, 3.0}, {0, 2, 5.0}});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.nnz(), 4);
  auto d = m.to_dense();
  EXPECT_EQ(d(0, 0), 1.0);
  EXPECT_EQ(d(0, 2), 5.0);
  EXPECT_EQ(d(1, 1), 2.0);
  EXPECT_EQ(d(1, 0), 0.0);
}

TEST(Csr, DuplicateTripletsAreSummed) {
  auto m = CsrMatrix<double>::from_triplets(2, 2,
                                            {{0, 0, 1.0}, {0, 0, 2.5}, {1, 0, 1.0}});
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.to_dense()(0, 0), 3.5);
}

TEST(Csr, UnsortedTripletsHandled) {
  auto m = CsrMatrix<double>::from_triplets(
      3, 3, {{2, 1, 9.0}, {0, 2, 1.0}, {1, 0, 4.0}, {0, 1, 2.0}});
  auto d = m.to_dense();
  EXPECT_EQ(d(2, 1), 9.0);
  EXPECT_EQ(d(0, 2), 1.0);
  EXPECT_EQ(d(1, 0), 4.0);
  EXPECT_EQ(d(0, 1), 2.0);
}

TEST(Csr, SpmvMatchesDenseGemv) {
  Rng rng(5);
  std::vector<std::tuple<idx, idx, double>> trip;
  const idx n = 40;
  for (int k = 0; k < 200; ++k) {
    trip.emplace_back(static_cast<idx>(rng.next_below(n)),
                      static_cast<idx>(rng.next_below(n)),
                      rng.uniform(-1, 1));
  }
  auto m = CsrMatrix<double>::from_triplets(n, n, std::move(trip));
  auto d = m.to_dense();

  std::vector<double> x(static_cast<std::size_t>(n)), y1(static_cast<std::size_t>(n)),
      y2(static_cast<std::size_t>(n), 0.0);
  for (auto& v : x) v = rng.normal();
  m.spmv(x.data(), y1.data());
  gemv_n(1.0, d.view(), x.data(), 0.0, y2.data());
  for (idx i = 0; i < n; ++i) ASSERT_NEAR(y1[static_cast<std::size_t>(i)], y2[static_cast<std::size_t>(i)], 1e-13);
}

TEST(Csr, Laplacian2dProperties) {
  auto a = CsrMatrix<double>::laplacian_2d(8);
  EXPECT_EQ(a.rows(), 64);
  EXPECT_EQ(a.cols(), 64);
  // Interior points have 5 entries, corners 3, edges 4: nnz = 5n^2-4n... for
  // an 8x8 grid: 5*64 - 4*8*... count: 64*5 - boundary deficit (4 per side
  // row/col edge). Just verify structural facts:
  EXPECT_GT(a.nnz(), 64 * 3);
  EXPECT_LT(a.nnz(), 64 * 5 + 1);
  EXPECT_TRUE(a.is_symmetric());

  // Row sums are >= 0 (diagonally dominant) and 0 only for interior rows...
  // For the Dirichlet Laplacian, boundary rows have positive row sums.
  auto d = a.to_dense();
  for (idx i = 0; i < 64; ++i) {
    double sum = 0;
    for (idx j = 0; j < 64; ++j) sum += d(i, j);
    EXPECT_GE(sum, -1e-14);
  }
}

TEST(Csr, LaplacianSpmvConstantVector) {
  const idx g = 16;
  auto a = CsrMatrix<double>::laplacian_2d(g);
  std::vector<double> x(static_cast<std::size_t>(g * g), 1.0),
      y(static_cast<std::size_t>(g * g));
  a.spmv(x.data(), y.data());
  // Interior rows: 4 - 4 = 0; boundary rows positive.
  EXPECT_NEAR(y[static_cast<std::size_t>(g + 1)], 0.0, 1e-14);  // interior
  EXPECT_GT(y[0], 0.0);                                         // corner
}

TEST(Csr, ChargeSpmvAdvancesTimeline) {
  auto a = CsrMatrix<float>::laplacian_2d(64);
  gpusim::Device dev(gpusim::GpuMachineModel::c2050(),
                     gpusim::ExecMode::ModelOnly);
  a.charge_spmv(dev);
  EXPECT_GT(dev.elapsed_seconds(), 0.0);
  const auto* p = dev.profile("spmv");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->launches, 1);
  EXPECT_DOUBLE_EQ(p->flops, 2.0 * a.nnz());
}

TEST(Csr, EmptyMatrix) {
  auto m = CsrMatrix<double>::from_triplets(0, 0, {});
  EXPECT_EQ(m.nnz(), 0);
  m.spmv(nullptr, nullptr);  // no-op, must not crash
}

}  // namespace
}  // namespace caqr

// Fault-tolerance subsystem tests (src/ft/): ABFT detection inside
// Device::launch, bounded retry / panel redo / schedule fallback recovery,
// performance-model charging of the checks, checkpoint/restart for CAQR and
// Robust PCA, and the injector's targeting knobs.
//
// Suite names deliberately avoid the numerics-checks CI filter
// (Verifier|FiniteCheck|...|FaultInjection): these tests exercise the
// recovery machinery, not the assertion-heavy numerics build.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "caqr/caqr.hpp"
#include "dist/device_grid.hpp"
#include "dist/dist_caqr.hpp"
#include "dist/grid_ft.hpp"
#include "ft/checkpoint.hpp"
#include "ft/ft.hpp"
#include "gpusim/device.hpp"
#include "gpusim/fault.hpp"
#include "linalg/random_matrix.hpp"
#include "numerics/verifier.hpp"
#include "rpca/rpca.hpp"

namespace caqr {
namespace {

using gpusim::Device;
using gpusim::ExecMode;
using gpusim::FaultOptions;

ft::FtOptions abft_on(int launch_retries = 8, int panel_retries = 2) {
  ft::FtOptions f;
  f.abft = true;
  f.max_launch_retries = launch_retries;
  f.max_panel_retries = panel_retries;
  return f;
}

FaultOptions inject(double p_drop, double p_flip, std::uint64_t seed) {
  FaultOptions f;
  f.p_block_drop = p_drop;
  f.p_bitflip = p_flip;
  f.seed = seed;
  return f;
}

CaqrOptions small_caqr(CaqrSchedule sched) {
  CaqrOptions copt;
  copt.schedule = sched;
  copt.panel_width = 8;
  copt.tsqr.block_rows = 16;
  return copt;
}

struct CaqrRun {
  Matrix<double> q{0, 0};
  Matrix<double> r{0, 0};
  ft::RunStatus status;
  ft::Summary device_summary;
  std::size_t faults = 0;
};

CaqrRun run_caqr(const Matrix<double>& a, const CaqrOptions& copt,
                 const ft::FtOptions& ftopt, const FaultOptions& faults) {
  Device dev;
  dev.set_fault_injection(faults);
  dev.set_fault_tolerance(ftopt);
  auto f =
      CaqrFactorization<double>::factor(dev, Matrix<double>::from(a.view()), copt);
  CaqrRun out;
  out.status = f.status();
  out.q = f.form_q(dev, a.cols());
  out.r = f.r();
  out.device_summary = dev.ft_summary();
  out.faults = dev.fault_log().size();
  return out;
}

void expect_bit_identical(const Matrix<double>& x, const Matrix<double>& y) {
  ASSERT_EQ(x.rows(), y.rows());
  ASSERT_EQ(x.cols(), y.cols());
  for (idx j = 0; j < x.cols(); ++j) {
    ASSERT_EQ(std::memcmp(x.view().col(j), y.view().col(j),
                          sizeof(double) * static_cast<std::size_t>(x.rows())),
              0)
        << "column " << j << " differs bitwise";
  }
}

// ---- ABFT: no false positives, bit-transparent when clean ------------------

TEST(FtAbft, CleanSweepNoFalsePositives) {
  for (CaqrSchedule sched : {CaqrSchedule::Serial, CaqrSchedule::LookAhead}) {
    for (double scale : {1e-300, 1.0, 1e300}) {
      Matrix<double> a = stress_matrix<double>(128, 16, 1e10, scale, 91, false);
      const CaqrRun run =
          run_caqr(a, small_caqr(sched), abft_on(), FaultOptions{});
      EXPECT_EQ(run.status.severity, ft::Severity::Ok)
          << "schedule " << static_cast<int>(sched) << " scale " << scale;
      EXPECT_EQ(run.device_summary.corrected_launches, 0);
      EXPECT_EQ(run.device_summary.unrecovered_launches, 0);
      EXPECT_GT(run.device_summary.guarded_launches, 0);
      EXPECT_TRUE(
          numerics::verify_qr(a.view(), run.q.view(), run.r.view()).pass);
    }
  }
}

TEST(FtAbft, CleanResultBitIdenticalToUnguardedRun) {
  const auto a = matrix_with_condition<double>(160, 24, 1e6, 92);
  const CaqrOptions copt = small_caqr(CaqrSchedule::Serial);
  const CaqrRun plain = run_caqr(a, copt, ft::FtOptions{}, FaultOptions{});
  const CaqrRun guarded = run_caqr(a, copt, abft_on(), FaultOptions{});
  expect_bit_identical(plain.r, guarded.r);
  expect_bit_identical(plain.q, guarded.q);
}

// Regression guard for the arena-backed, contiguity-staged kernels: across
// the stress sweep's 1e±300 column scalings, a run that recovers from block
// drops through ABFT retries must land on EXACTLY the bits of the fault-free
// unguarded run — drops are always above detection tolerance, recovery
// replays the same deterministic kernels on restored inputs, and staging
// changes layout, not arithmetic. (Bitflips are excluded: a flip below the
// checksum tolerance is legitimately left in place.)
TEST(FtRecovery, RecoveredResultBitIdenticalToFaultFreeAcrossScales) {
  for (double scale : {1e-300, 1.0, 1e300}) {
    Matrix<double> a = stress_matrix<double>(128, 16, 1e8, scale, 97, false);
    const CaqrOptions copt = small_caqr(CaqrSchedule::Serial);
    const CaqrRun clean = run_caqr(a, copt, ft::FtOptions{}, FaultOptions{});
    const CaqrRun rec =
        run_caqr(a, copt, abft_on(), inject(0.08, 0.0, 4243));
    EXPECT_GT(rec.faults, 0u) << "scale " << scale;
    EXPECT_TRUE(rec.status.ok()) << "scale " << scale;
    expect_bit_identical(clean.r, rec.r);
    expect_bit_identical(clean.q, rec.q);
  }
}

// ---- Detection and recovery ------------------------------------------------

TEST(FtRecovery, DetectionOnlyReportsSameSeedRecoversWithRetries) {
  const auto a = matrix_with_condition<double>(128, 16, 1e4, 93);
  const FaultOptions faults = inject(0.05, 0.5, 4243);

  // Retries disabled: the run completes (never aborts) but the corruption is
  // detected and reported as unrecovered.
  const CaqrRun detect =
      run_caqr(a, small_caqr(CaqrSchedule::Serial), abft_on(0, 0), faults);
  EXPECT_GT(detect.faults, 0u);
  EXPECT_EQ(detect.status.severity, ft::Severity::Unrecovered);
  EXPECT_FALSE(detect.status.ok());
  EXPECT_GT(detect.device_summary.unrecovered_launches, 0);

  // Same injector seed, retries on: fully recovered and numerically clean.
  const CaqrRun recover =
      run_caqr(a, small_caqr(CaqrSchedule::Serial), abft_on(), faults);
  EXPECT_GT(recover.faults, 0u);
  EXPECT_TRUE(recover.status.ok());
  EXPECT_EQ(recover.device_summary.unrecovered_launches, 0);
  EXPECT_TRUE(
      numerics::verify_qr(a.view(), recover.q.view(), recover.r.view()).pass);
}

TEST(FtRecovery, DetectionReportsCarryLaunchDiagnostics) {
  const auto a = matrix_with_condition<double>(128, 16, 1e4, 94);
  Device dev;
  dev.set_fault_injection(inject(0.0, 1.0, 11));  // flip every launch
  dev.set_fault_tolerance(abft_on(0, 0));         // detect only
  auto f = CaqrFactorization<double>::factor(dev,
                                             Matrix<double>::from(a.view()),
                                             small_caqr(CaqrSchedule::Serial));
  (void)f;
  ASSERT_FALSE(dev.ft_reports().empty());
  for (const auto& rep : dev.ft_reports()) {
    EXPECT_FALSE(rep.kernel.empty());
    EXPECT_GE(rep.launch_ordinal, 0);
    EXPECT_EQ(rep.severity, ft::Severity::Unrecovered);
  }
  dev.clear_ft_reports();
  EXPECT_TRUE(dev.ft_reports().empty());
}

TEST(FtRecovery, BlockDropsRecoverOnBothSchedules) {
  const auto a = matrix_with_condition<double>(192, 24, 1e8, 95);
  for (CaqrSchedule sched : {CaqrSchedule::Serial, CaqrSchedule::LookAhead}) {
    const CaqrRun run =
        run_caqr(a, small_caqr(sched), abft_on(), inject(0.05, 0.0, 777));
    EXPECT_GT(run.faults, 0u);
    EXPECT_TRUE(run.status.ok());
    EXPECT_EQ(run.device_summary.unrecovered_launches, 0);
    EXPECT_TRUE(
        numerics::verify_qr(a.view(), run.q.view(), run.r.view()).pass);
  }
}

TEST(FtRecovery, BitflipsRecoverOnBothSchedules) {
  const auto a = matrix_with_condition<double>(192, 24, 1e8, 96);
  for (CaqrSchedule sched : {CaqrSchedule::Serial, CaqrSchedule::LookAhead}) {
    const CaqrRun run =
        run_caqr(a, small_caqr(sched), abft_on(), inject(0.0, 0.5, 778));
    EXPECT_GT(run.faults, 0u);
    EXPECT_TRUE(run.status.ok());
    EXPECT_EQ(run.device_summary.unrecovered_launches, 0);
    EXPECT_TRUE(
        numerics::verify_qr(a.view(), run.q.view(), run.r.view()).pass);
  }
}

TEST(FtRecovery, RecoveryIsDeterministicUnderFixedSeed) {
  const auto a = matrix_with_condition<double>(160, 16, 1e4, 97);
  const FaultOptions faults = inject(0.05, 0.5, 5150);
  const CaqrOptions copt = small_caqr(CaqrSchedule::LookAhead);
  const CaqrRun r1 = run_caqr(a, copt, abft_on(), faults);
  const CaqrRun r2 = run_caqr(a, copt, abft_on(), faults);
  EXPECT_EQ(r1.faults, r2.faults);
  EXPECT_EQ(r1.device_summary.corrected_launches,
            r2.device_summary.corrected_launches);
  expect_bit_identical(r1.r, r2.r);
  expect_bit_identical(r1.q, r2.q);
  // (The recovered result is NOT asserted bit-identical to a fault-free run:
  // a flip in a low-order mantissa bit can sit below the ABFT detection
  // threshold, in which case it is deliberately left in place — the
  // verifier bounds, checked above in the recovery tests, are the
  // contract.)
}

TEST(FtRecovery, PanelRedoRecoversExhaustedLaunchRetries) {
  const auto a = matrix_with_condition<double>(128, 16, 1e4, 98);
  // Drop every block of every "factor" launch until the fault budget runs
  // out: the first panel's factor launch fails, its single in-place retry
  // fails again, then the panel-level redo replays the whole panel against
  // an exhausted injector and succeeds.
  FaultOptions faults = inject(1.0, 0.0, 12);
  faults.only_kernel = "factor";
  faults.max_faults = 16;  // first launch (8 blocks) + one full retry
  const CaqrRun run =
      run_caqr(a, small_caqr(CaqrSchedule::Serial), abft_on(1, 1), faults);
  EXPECT_EQ(run.faults, 16u);
  EXPECT_GT(run.status.panel_retries, 0);
  EXPECT_EQ(run.status.severity, ft::Severity::Corrected);
  EXPECT_TRUE(
      numerics::verify_qr(a.view(), run.q.view(), run.r.view()).pass);
}

TEST(FtRecovery, LookAheadFallsBackToSerialWhenPanelStaysPoisoned) {
  const auto a = matrix_with_condition<double>(128, 16, 1e4, 99);
  // No panel redo budget: once launch retries are exhausted the look-ahead
  // run is poisoned, and the factorization restarts under the Serial
  // schedule from the saved input (injector exhausted by then).
  FaultOptions faults = inject(1.0, 0.0, 13);
  faults.only_kernel = "factor";
  faults.max_faults = 16;
  const CaqrRun run =
      run_caqr(a, small_caqr(CaqrSchedule::LookAhead), abft_on(1, 0), faults);
  EXPECT_TRUE(run.status.schedule_fallback);
  EXPECT_EQ(run.status.severity, ft::Severity::Corrected);
  EXPECT_TRUE(run.status.ok());
  EXPECT_TRUE(
      numerics::verify_qr(a.view(), run.q.view(), run.r.view()).pass);

  // Same faults and schedule, fallback disabled: the run ends unrecovered
  // (but still returns).
  ft::FtOptions no_fallback = abft_on(1, 0);
  no_fallback.schedule_fallback = false;
  const CaqrRun stuck =
      run_caqr(a, small_caqr(CaqrSchedule::LookAhead), no_fallback, faults);
  EXPECT_FALSE(stuck.status.schedule_fallback);
  EXPECT_EQ(stuck.status.severity, ft::Severity::Unrecovered);
}

TEST(FtRecovery, RobustPcaCompletesUnderFaults) {
  LowRankPlusSparse spec;
  spec.rank = 4;
  spec.sparse_fraction = 0.05;
  spec.sparse_magnitude = 1.0;
  auto planted = planted_low_rank_plus_sparse<double>(200, 30, spec, 101);

  rpca::RpcaOptions opt;
  opt.max_iterations = 60;

  Device clean_dev;
  const auto clean = rpca::robust_pca(clean_dev, planted.observed.view(), opt);
  ASSERT_TRUE(clean.converged);

  Device dev;
  dev.set_fault_injection(inject(0.02, 0.3, 4321));
  dev.set_fault_tolerance(abft_on());
  const auto res = rpca::robust_pca(dev, planted.observed.view(), opt);
  EXPECT_GT(dev.fault_log().size(), 0u);
  EXPECT_EQ(dev.ft_summary().unrecovered_launches, 0);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.residual, opt.tolerance);
  // Sub-threshold (undetectable) flips may survive recovery, so the result
  // is compared to the fault-free decomposition numerically, not bitwise.
  double diff2 = 0.0, ref2 = 0.0;
  for (idx j = 0; j < clean.low_rank.cols(); ++j) {
    for (idx i = 0; i < clean.low_rank.rows(); ++i) {
      const double d = res.low_rank(i, j) - clean.low_rank(i, j);
      diff2 += d * d;
      ref2 += clean.low_rank(i, j) * clean.low_rank(i, j);
    }
  }
  EXPECT_LE(std::sqrt(diff2), 1e-6 * std::sqrt(ref2));
}

// ---- Performance-model charging --------------------------------------------

TEST(FtModel, AbftCostChargedInModelOnly) {
  CaqrOptions copt = small_caqr(CaqrSchedule::Serial);

  Device base(gpusim::GpuMachineModel::c2050(), ExecMode::ModelOnly);
  auto f0 = CaqrFactorization<double>::factor(
      base, Matrix<double>::shape_only(4096, 64), copt);
  (void)f0;
  const double t_off = base.elapsed_seconds();
  EXPECT_EQ(base.profile("factor_abft"), nullptr);

  Device dev(gpusim::GpuMachineModel::c2050(), ExecMode::ModelOnly);
  dev.set_fault_tolerance(abft_on());
  auto f1 = CaqrFactorization<double>::factor(
      dev, Matrix<double>::shape_only(4096, 64), copt);
  (void)f1;
  const double t_on = dev.elapsed_seconds();

  // Every guarded kernel shows its checksum traffic as a distinct op.
  for (const char* op : {"factor_abft", "factor_tree_abft", "apply_qt_h_abft",
                         "apply_qt_tree_abft"}) {
    const auto* p = dev.profile(op);
    ASSERT_NE(p, nullptr) << op;
    EXPECT_GT(p->seconds, 0.0) << op;
  }
  EXPECT_GT(t_on, t_off);
}

TEST(FtModel, TimelineUnchangedWithFtOff) {
  CaqrOptions copt = small_caqr(CaqrSchedule::LookAhead);
  Device base(gpusim::GpuMachineModel::c2050(), ExecMode::ModelOnly);
  auto f0 = CaqrFactorization<double>::factor(
      base, Matrix<double>::shape_only(4096, 64), copt);
  (void)f0;

  Device dev(gpusim::GpuMachineModel::c2050(), ExecMode::ModelOnly);
  dev.set_fault_tolerance(ft::FtOptions{});  // explicit default: FT off
  auto f1 = CaqrFactorization<double>::factor(
      dev, Matrix<double>::shape_only(4096, 64), copt);
  (void)f1;
  EXPECT_EQ(base.elapsed_seconds(), dev.elapsed_seconds());  // bitwise
}

// ---- Checkpoint / restart --------------------------------------------------

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(FtCheckpoint, CaqrHaltAndResumeBitIdentical) {
  const auto a = matrix_with_condition<double>(192, 32, 1e6, 102);
  for (CaqrSchedule sched : {CaqrSchedule::Serial, CaqrSchedule::LookAhead}) {
    const std::string path = temp_path(sched == CaqrSchedule::Serial
                                           ? "ft_ckpt_serial.bin"
                                           : "ft_ckpt_lookahead.bin");
    std::remove(path.c_str());

    CaqrOptions copt = small_caqr(sched);
    const CaqrRun full = run_caqr(a, copt, ft::FtOptions{}, FaultOptions{});

    // Run 1: checkpoint every panel, simulate a kill after panel 2 of 4.
    copt.checkpoint_path = path;
    copt.halt_after_panels = 2;
    Device d1;
    auto f1 = CaqrFactorization<double>::factor(
        d1, Matrix<double>::from(a.view()), copt);
    EXPECT_TRUE(f1.halted());
    EXPECT_FALSE(f1.status().resumed_from_checkpoint);

    // Run 2: fresh device and input, same checkpoint path, no halt.
    copt.halt_after_panels = 0;
    Device d2;
    auto f2 = CaqrFactorization<double>::factor(
        d2, Matrix<double>::from(a.view()), copt);
    EXPECT_FALSE(f2.halted());
    EXPECT_TRUE(f2.status().resumed_from_checkpoint);
    EXPECT_EQ(f2.status().resumed_at_panel, 2);

    const Matrix<double> q = f2.form_q(d2, a.cols());
    expect_bit_identical(full.r, f2.r());
    expect_bit_identical(full.q, q);
    std::remove(path.c_str());
  }
}

TEST(FtCheckpoint, CorruptOrTruncatedCheckpointFallsBackToCleanStart) {
  const auto a = matrix_with_condition<double>(128, 16, 1e4, 103);
  const std::string path = temp_path("ft_ckpt_corrupt.bin");
  std::remove(path.c_str());

  CaqrOptions copt = small_caqr(CaqrSchedule::Serial);
  copt.checkpoint_path = path;
  copt.halt_after_panels = 1;
  {
    Device dev;
    auto f = CaqrFactorization<double>::factor(
        dev, Matrix<double>::from(a.view()), copt);
    ASSERT_TRUE(f.halted());
  }
  copt.halt_after_panels = 0;

  // Flip one payload byte: the checksum mismatch must reject the file.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 64, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, 64, SEEK_SET), 0);
    std::fputc(c ^ 0x5a, f);
    std::fclose(f);
  }
  {
    Device dev;
    auto f = CaqrFactorization<double>::factor(
        dev, Matrix<double>::from(a.view()), copt);
    EXPECT_FALSE(f.status().resumed_from_checkpoint);
    const Matrix<double> q = f.form_q(dev, a.cols());
    EXPECT_TRUE(numerics::verify_qr(a.view(), q.view(), f.r().view()).pass);
  }

  // Truncate the file mid-payload: the size check must reject it too.
  {
    std::FILE* src = std::fopen(path.c_str(), "rb");
    ASSERT_NE(src, nullptr);
    std::fseek(src, 0, SEEK_END);
    const long size = std::ftell(src);
    std::fseek(src, 0, SEEK_SET);
    std::vector<unsigned char> bytes(static_cast<std::size_t>(size));
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), src), bytes.size());
    std::fclose(src);
    std::FILE* dst = std::fopen(path.c_str(), "wb");
    ASSERT_NE(dst, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size() / 2, dst);
    std::fclose(dst);
  }
  {
    Device dev;
    auto f = CaqrFactorization<double>::factor(
        dev, Matrix<double>::from(a.view()), copt);
    EXPECT_FALSE(f.status().resumed_from_checkpoint);
    const Matrix<double> q = f.form_q(dev, a.cols());
    EXPECT_TRUE(numerics::verify_qr(a.view(), q.view(), f.r().view()).pass);
  }
  std::remove(path.c_str());
}

TEST(FtCheckpoint, CheckpointRoundTripPreservesSections) {
  const std::string path = temp_path("ft_ckpt_roundtrip.bin");
  std::remove(path.c_str());

  Matrix<double> m(3, 2);
  for (idx j = 0; j < 2; ++j)
    for (idx i = 0; i < 3; ++i) m(i, j) = 10.0 * static_cast<double>(j) + i;

  ft::CheckpointWriter w;
  w.scalar("answer", static_cast<std::int64_t>(42));
  w.scalar("pi", 3.25);
  w.vec("taus", std::vector<double>{1.0, -2.5, 0.125});
  w.matrix("m", m.view());
  ASSERT_TRUE(w.write(path));

  const auto r = ft::CheckpointReader::load(path);
  ASSERT_TRUE(r.has_value());
  std::int64_t answer = 0;
  double pi = 0;
  std::vector<double> taus;
  Matrix<double> m2;
  ASSERT_TRUE(r->scalar("answer", answer));
  ASSERT_TRUE(r->scalar("pi", pi));
  ASSERT_TRUE(r->vec("taus", taus));
  ASSERT_TRUE(r->matrix("m", m2));
  EXPECT_EQ(answer, 42);
  EXPECT_EQ(pi, 3.25);
  EXPECT_EQ(taus, (std::vector<double>{1.0, -2.5, 0.125}));
  expect_bit_identical(m, m2);
  EXPECT_FALSE(r->has("missing"));
  std::remove(path.c_str());
}

TEST(FtCheckpoint, RpcaHaltAndResumeBitIdentical) {
  LowRankPlusSparse spec;
  spec.rank = 3;
  spec.sparse_fraction = 0.05;
  auto planted = planted_low_rank_plus_sparse<double>(160, 24, spec, 104);
  const std::string path = temp_path("ft_ckpt_rpca.bin");
  std::remove(path.c_str());

  rpca::RpcaOptions opt;
  opt.max_iterations = 40;

  Device clean_dev;
  const auto full = rpca::robust_pca(clean_dev, planted.observed.view(), opt);
  ASSERT_TRUE(full.converged);
  ASSERT_GT(full.iterations, 4);

  opt.checkpoint_path = path;
  opt.halt_after_iterations = 3;
  {
    Device dev;
    const auto part = rpca::robust_pca(dev, planted.observed.view(), opt);
    EXPECT_FALSE(part.converged);
    EXPECT_EQ(part.iterations, 3);
    EXPECT_FALSE(part.resumed_from_checkpoint);
  }
  opt.halt_after_iterations = 0;
  {
    Device dev;
    const auto res = rpca::robust_pca(dev, planted.observed.view(), opt);
    EXPECT_TRUE(res.resumed_from_checkpoint);
    EXPECT_EQ(res.resumed_at_iteration, 3);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, full.iterations);
    expect_bit_identical(full.sparse, res.sparse);
    expect_bit_identical(full.low_rank, res.low_rank);
  }
  std::remove(path.c_str());
}

// ---- Injector targeting knobs ----------------------------------------------

TEST(FtTargeting, MaxFaultsCapsTotalInjectedEvents) {
  const auto a = matrix_with_condition<double>(128, 16, 1e4, 105);
  FaultOptions faults = inject(1.0, 1.0, 14);
  faults.max_faults = 1;
  Device dev;
  dev.set_fault_injection(faults);
  auto f = CaqrFactorization<double>::factor(dev,
                                             Matrix<double>::from(a.view()),
                                             small_caqr(CaqrSchedule::Serial));
  (void)f;
  EXPECT_EQ(dev.fault_log().size(), 1u);
}

TEST(FtTargeting, OnlyKernelRestrictsInjection) {
  const auto a = matrix_with_condition<double>(128, 16, 1e4, 106);
  FaultOptions faults = inject(0.0, 1.0, 15);
  faults.only_kernel = "factor_tree";
  Device dev;
  dev.set_fault_injection(faults);
  auto f = CaqrFactorization<double>::factor(dev,
                                             Matrix<double>::from(a.view()),
                                             small_caqr(CaqrSchedule::Serial));
  (void)f;
  ASSERT_GT(dev.fault_log().size(), 0u);
  for (const auto& ev : dev.fault_log()) {
    EXPECT_EQ(ev.kernel, "factor_tree");
  }
}

TEST(FtTargeting, SingleDeterministicFaultIsRecovered) {
  const auto a = matrix_with_condition<double>(128, 16, 1e4, 107);
  FaultOptions faults = inject(0.0, 1.0, 16);
  faults.only_kernel = "factor";
  faults.max_faults = 1;
  const CaqrRun run =
      run_caqr(a, small_caqr(CaqrSchedule::Serial), abft_on(), faults);
  EXPECT_EQ(run.faults, 1u);
  EXPECT_TRUE(run.status.ok());
  EXPECT_TRUE(
      numerics::verify_qr(a.view(), run.q.view(), run.r.view()).pass);
}

// ---- Grid checkpoint + device-loss recovery (dist/grid_ft.hpp) -------------

dist::DistCaqrOptions small_dist(idx pw = 8, idx br = 16) {
  dist::DistCaqrOptions d;
  d.panel_width = pw;
  d.tsqr.block_rows = br;
  return d;
}

bool copy_file(const std::string& from, const std::string& to) {
  std::FILE* in = std::fopen(from.c_str(), "rb");
  if (in == nullptr) return false;
  std::FILE* out = std::fopen(to.c_str(), "wb");
  if (out == nullptr) {
    std::fclose(in);
    return false;
  }
  char buf[4096];
  std::size_t got = 0;
  bool ok = true;
  while ((got = std::fread(buf, 1, sizeof buf, in)) > 0) {
    ok = ok && std::fwrite(buf, 1, got, out) == got;
  }
  std::fclose(in);
  return std::fclose(out) == 0 && ok;
}

TEST(FtGridCheckpoint, SnapshotRoundTripPreservesDistState) {
  const idx m = 192, n = 32;
  const auto a = matrix_with_condition<double>(m, n, 1e5, 201);
  const std::string path = temp_path("grid_ckpt_roundtrip.bin");
  std::remove(path.c_str());

  dist::DeviceGrid grid(4);
  dist::GridRecoveryOptions ropt;
  ropt.checkpoint_every = 1;
  ropt.checkpoint_path = path;
  const auto res = dist::factor_with_recovery<double>(grid, a.view(),
                                                      small_dist(), ropt);
  ASSERT_TRUE(res.ok());

  // The file holds the final snapshot: all 4 panels, the partition in use,
  // and the packed working matrix — a DistMatrix restore in one read.
  const auto ck =
      dist::load_grid_checkpoint<double>(path, m, n, small_dist().panel_width);
  ASSERT_TRUE(ck.valid);
  EXPECT_EQ(ck.done, n / small_dist().panel_width);
  EXPECT_EQ(ck.offsets, res.partition);
  ASSERT_EQ(ck.panels.size(), static_cast<std::size_t>(ck.done));
  expect_bit_identical(res.f->packed().gather(), ck.working);

  // Shape/dtype mismatches self-invalidate instead of resuming garbage.
  EXPECT_FALSE(
      dist::load_grid_checkpoint<double>(path, m + 1, n, 8).valid);
  EXPECT_FALSE(dist::load_grid_checkpoint<double>(path, m, n, 16).valid);
  EXPECT_FALSE(dist::load_grid_checkpoint<float>(path, m, n, 8).valid);
  std::remove(path.c_str());
}

TEST(FtGridCheckpoint, MidReductionResumeAcrossRebuiltGrid) {
  const idx m = 192, n = 32;
  const auto a = matrix_with_condition<double>(m, n, 1e5, 202);
  const std::string path = temp_path("grid_ckpt_mid.bin");
  const std::string mid = temp_path("grid_ckpt_mid_copy.bin");
  std::remove(path.c_str());
  std::remove(mid.c_str());

  // Run 1 on a 4-device grid, stashing the on-disk snapshot as it looked
  // after panel 2 of 4 — a mid-reduction consistency point.
  dist::DeviceGrid grid4(4);
  dist::GridRecoveryOptions ropt;
  ropt.checkpoint_every = 1;
  ropt.checkpoint_path = path;
  const auto full = dist::factor_with_recovery<double>(
      grid4, a.view(), small_dist(), ropt,
      [&](const dist::DistCaqrFactorization<double>&, idx done) {
        if (done == 2) {
          ASSERT_TRUE(copy_file(path, mid));
        }
      });
  ASSERT_TRUE(full.ok());

  // Run 2: a REBUILT, smaller grid (as after losing half the machines)
  // resumes from the mid-run snapshot. The 4-shard partition is coarsened
  // to the 2 survivors; recorded row ranges stay contained, so panels 1-2
  // replay bit-identically and panels 3-4 are computed fresh.
  dist::DeviceGrid grid2(2);
  dist::GridRecoveryOptions r2;
  r2.checkpoint_every = 0;
  r2.checkpoint_path = mid;
  const auto resumed = dist::factor_with_recovery<double>(grid2, a.view(),
                                                          small_dist(), r2);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed.used_checkpoint);
  EXPECT_FALSE(resumed.used_recompute);
  EXPECT_EQ(static_cast<int>(resumed.partition.size()) - 1, 2);

  dist::DeviceGrid gq(2);
  const Matrix<double> q = resumed.f->form_q(gq, n).gather();
  EXPECT_TRUE(numerics::verify_qr(a.view(), q.view(), resumed.f->r().view())
                  .pass);
  // The leading panels came from the snapshot, so their R rows match the
  // 4-device run bit for bit.
  const auto& r4 = full.f->r();
  const auto& r2m = resumed.f->r();
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < std::min<idx>(16, j + 1); ++i) {
      ASSERT_EQ(r4(i, j), r2m(i, j)) << "replayed R differs at (" << i << ","
                                     << j << ")";
    }
  }
  std::remove(path.c_str());
  std::remove(mid.c_str());
}

TEST(FtGridRecovery, ScheduledDeviceLossRecoversByShardMerge) {
  const idx m = 192, n = 32;
  const auto a = matrix_with_condition<double>(m, n, 1e5, 203);
  dist::DeviceGrid grid(4);
  dist::GridFtOptions gft;
  gft.device_losses.push_back({1, 2});  // kill device 1 at transfer #2
  grid.set_fault_tolerance(gft);

  dist::GridRecoveryOptions ropt;
  ropt.checkpoint_every = 1;
  const auto res = dist::factor_with_recovery<double>(grid, a.view(),
                                                      small_dist(), ropt);
  ASSERT_TRUE(res.f.has_value());
  EXPECT_GE(res.attempts, 2);
  EXPECT_GE(res.status.device_losses, 1);
  EXPECT_EQ(res.status.severity, ft::Severity::Corrected);
  EXPECT_EQ(grid.num_alive(), 3);
  // The dead device's shard was merged into a survivor.
  EXPECT_EQ(static_cast<int>(res.devices.size()), 3);
  for (const int d : res.devices) EXPECT_NE(d, 1);

  dist::DeviceGrid gq(4);
  const Matrix<double> q = res.f->form_q(gq, n).gather();
  EXPECT_TRUE(
      numerics::verify_qr(a.view(), q.view(), res.f->r().view()).pass);
}

TEST(FtGridRecovery, LossWithoutSnapshotOrRecomputeIsTypedUnrecovered) {
  const idx m = 128, n = 16;
  const auto a = matrix_with_condition<double>(m, n, 1e4, 204);
  dist::DeviceGrid grid(2);
  dist::GridFtOptions gft;
  gft.device_losses.push_back({0, 1});
  grid.set_fault_tolerance(gft);

  // Detection-only at grid scale: no snapshots, no restart rung. The loss
  // must surface as a typed result — never an exception, never a hang.
  dist::GridRecoveryOptions ropt;
  ropt.checkpoint_every = 0;
  ropt.allow_recompute = false;
  const auto res = dist::factor_with_recovery<double>(grid, a.view(),
                                                      small_dist(8, 16), ropt);
  EXPECT_FALSE(res.ok());
  EXPECT_FALSE(res.f.has_value());
  EXPECT_EQ(res.status.severity, ft::Severity::Unrecovered);
  EXPECT_GE(res.status.device_losses, 1);
}

}  // namespace
}  // namespace caqr

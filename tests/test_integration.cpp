// Cross-module integration sweeps: every QR implementation in the library
// must agree on R (up to reflector signs) and satisfy the backward-stability
// invariants over randomized shapes and seeds; the SVD pipeline must agree
// with the direct Jacobi SVD; contract violations must trap.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/qr_baselines.hpp"
#include "caqr/solver.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"
#include "svd/tall_skinny_svd.hpp"
#include "tsqr/tsqr.hpp"

namespace caqr {
namespace {

using gpusim::Device;
using gpusim::ExecMode;
using gpusim::GpuMachineModel;

class RandomizedQrSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (seed, shape)

struct SweepShape {
  idx m, n;
};

SweepShape shape_for(int s) {
  static const SweepShape shapes[] = {
      {97, 13}, {512, 16}, {1000, 24}, {2048, 64}, {300, 300}, {150, 40},
  };
  return shapes[static_cast<std::size_t>(s)];
}

TEST_P(RandomizedQrSweep, AllImplementationsAgreeOnR) {
  const auto [seed, shape_i] = GetParam();
  const auto [m, n] = shape_for(shape_i);
  auto a = gaussian_matrix<double>(m, n, static_cast<std::uint64_t>(seed) * 977 + 3);

  Device dev;
  // Reference.
  auto ref = a.clone();
  std::vector<double> tau(static_cast<std::size_t>(std::min(m, n)));
  geqrf(ref.view(), tau.data());
  auto r_ref = extract_r(ref.view());

  // CAQR.
  auto f = caqr_factor(dev, a.view());
  EXPECT_LT(r_factor_difference(r_ref.view(), f.r().view()), 1e-10);

  // TSQR (single panel) where applicable.
  if (m >= n) {
    tsqr::TsqrOptions topt;
    topt.block_rows = std::max<idx>(64, n);
    auto t = tsqr::tsqr(dev, a.view(), topt);
    auto r_t = t.r();
    EXPECT_LT(r_factor_difference(
                  r_ref.view().block(0, 0, n, n), r_t.view()),
              1e-10);
  }

  // Baselines.
  auto hy = baselines::hybrid_qr(dev, a.clone());
  EXPECT_LT(r_factor_difference(r_ref.view(), extract_r(hy.factored.view()).view()),
            1e-10);
  auto b2 = baselines::gpu_blas2_qr(dev, a.clone());
  EXPECT_LT(r_factor_difference(r_ref.view(), extract_r(b2.factored.view()).view()),
            1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomizedQrSweep,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 6)));

class BackwardStabilitySweep : public ::testing::TestWithParam<int> {};

TEST_P(BackwardStabilitySweep, CaqrResidualScalesWithEpsilon) {
  const int seed = GetParam();
  const idx m = 700 + 31 * seed, n = 20 + seed;
  auto a = gaussian_matrix<double>(m, n, static_cast<std::uint64_t>(seed));
  Device dev;
  auto f = caqr_factor(dev, a.view());
  auto q = f.form_q(dev, n);
  auto r = f.r();
  const double scale = std::sqrt(static_cast<double>(n));
  EXPECT_LT(orthogonality_error(q.view()), 1e-13 * scale * 20);
  EXPECT_LT(factorization_residual(a.view(), q.view(), r.view()),
            1e-13 * scale * 20);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackwardStabilitySweep, ::testing::Range(0, 8));

TEST(Integration, SvdPipelineAgreesWithDirectJacobiAcrossShapes) {
  for (const auto& [m, n] : {std::pair<idx, idx>{200, 10},
                             {1000, 32}, {64, 64}}) {
    auto a = gaussian_matrix<double>(m, n,
                                     static_cast<std::uint64_t>(m * 7 + n));
    Device dev;
    auto pipe = svd::tall_skinny_svd(dev, a.view());
    auto direct = jacobi_svd(a.view());
    for (idx i = 0; i < n; ++i) {
      ASSERT_NEAR(pipe.sigma[static_cast<std::size_t>(i)],
                  direct.sigma[static_cast<std::size_t>(i)],
                  1e-10 * (1.0 + direct.sigma[0]))
          << m << "x" << n;
    }
  }
}

TEST(Integration, FloatAndDoubleCaqrAgreeToSinglePrecision) {
  const idx m = 2000, n = 32;
  auto ad = gaussian_matrix<double>(m, n, 99);
  Matrix<float> af(m, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) af(i, j) = static_cast<float>(ad(i, j));
  }
  Device dev;
  auto fd = caqr_factor(dev, ad.view());
  auto ff = caqr_factor(dev, af.view());
  auto rd = fd.r();
  auto rf = ff.r();
  // Compare magnitudes row-sign-aligned at single-precision accuracy.
  Matrix<double> rf_d(n, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) rf_d(i, j) = static_cast<double>(rf(i, j));
  }
  EXPECT_LT(r_factor_difference(rd.view().block(0, 0, n, n), rf_d.view()),
            1e-4);
}

TEST(Integration, EndToEndLeastSquaresThroughEveryAlgorithm) {
  const idx m = 900, n = 12;
  auto a = gaussian_matrix<double>(m, n, 101);
  auto xt = gaussian_matrix<double>(n, 1, 102);
  auto b = Matrix<double>::zeros(m, 1);
  gemm(Trans::No, Trans::No, 1.0, a.view(), xt.view(), 0.0, b.view());

  Device dev;
  auto x_auto = least_squares_solve(dev, a.view(), b.view());
  auto x_caqr = least_squares_solve(dev, a.view(), b.view(), QrAlgorithm::Caqr);
  auto x_hyb = least_squares_solve(dev, a.view(), b.view(), QrAlgorithm::Hybrid);
  for (idx i = 0; i < n; ++i) {
    ASSERT_NEAR(x_auto(i, 0), xt(i, 0), 1e-10);
    ASSERT_NEAR(x_caqr(i, 0), xt(i, 0), 1e-10);
    ASSERT_NEAR(x_hyb(i, 0), xt(i, 0), 1e-10);
  }
}

// ---------------------------------------------------------------------------
// Contract-violation trapping (CAQR_CHECK aborts).
// ---------------------------------------------------------------------------

using IntegrationDeathTest = ::testing::Test;

TEST(IntegrationDeathTest, TsqrRejectsWideInput) {
  Device dev;
  auto a = Matrix<double>::zeros(8, 16);  // wider than tall
  tsqr::TsqrOptions opt;
  EXPECT_DEATH(
      { auto f = tsqr::tsqr(dev, a.view(), opt); (void)f; },
      "rows >= width");
}

TEST(IntegrationDeathTest, CaqrRejectsBlockRowsBelowPanelWidth) {
  Device dev;
  auto a = Matrix<double>::zeros(64, 32);
  CaqrOptions opt;
  opt.panel_width = 32;
  opt.tsqr.block_rows = 16;
  EXPECT_DEATH(
      {
        auto f = CaqrFactorization<double>::factor(dev, std::move(a), opt);
        (void)f;
      },
      "block_rows >= opt.panel_width");
}

TEST(IntegrationDeathTest, ApplyQtRejectsMismatchedRows) {
  Device dev;
  auto a = gaussian_matrix<double>(100, 8, 1);
  auto f = caqr_factor(dev, a.view());
  auto c = Matrix<double>::zeros(50, 2);  // wrong row count
  EXPECT_DEATH(f.apply_qt(dev, c.view()), "rows");
}

TEST(IntegrationDeathTest, LeastSquaresRejectsUnderdetermined) {
  Device dev;
  auto a = Matrix<double>::zeros(5, 10);
  auto b = Matrix<double>::zeros(5, 1);
  EXPECT_DEATH(
      { auto x = least_squares_solve(dev, a.view(), b.view()); (void)x; },
      "m >= n");
}

}  // namespace
}  // namespace caqr

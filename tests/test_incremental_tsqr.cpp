// Tests for the streaming (incremental) TSQR.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/random_matrix.hpp"
#include "tsqr/incremental.hpp"
#include "tsqr/tsqr.hpp"

namespace caqr {
namespace {

using gpusim::Device;
using gpusim::ExecMode;

TEST(IncrementalTsqr, MatchesMonolithicR) {
  const idx m = 1000, n = 16, chunk = 128;
  auto a = gaussian_matrix<double>(m, n, 61);
  Device dev;

  tsqr::IncrementalTsqr<double> inc(dev, n);
  for (idx r0 = 0; r0 < m; r0 += chunk) {
    const idx h = std::min(chunk, m - r0);
    inc.push(a.view().block(r0, 0, h, n));
  }
  EXPECT_EQ(inc.rows_consumed(), m);

  auto ref = a.clone();
  std::vector<double> tau(static_cast<std::size_t>(n));
  geqrf(ref.view(), tau.data());
  auto r_ref = extract_r(ref.view());
  EXPECT_LT(r_factor_difference(r_ref.view(), inc.r().view()), 1e-11);
}

TEST(IncrementalTsqr, ChunkSizeDoesNotChangeR) {
  const idx m = 769, n = 8;  // ragged sizes on purpose
  auto a = gaussian_matrix<double>(m, n, 62);
  Device dev;

  auto run = [&](idx chunk) {
    tsqr::IncrementalTsqr<double> inc(dev, n);
    for (idx r0 = 0; r0 < m; r0 += chunk) {
      inc.push(a.view().block(r0, 0, std::min(chunk, m - r0), n));
    }
    return Matrix<double>::from(inc.r().view());
  };
  auto r64 = run(64);
  auto r100 = run(100);
  auto r769 = run(769);  // single push
  EXPECT_LT(r_factor_difference(r64.view(), r100.view()), 1e-12);
  EXPECT_LT(r_factor_difference(r64.view(), r769.view()), 1e-12);
}

TEST(IncrementalTsqr, HandlesShortBlocks) {
  // Blocks shorter than the width (even single rows) must still work.
  const idx m = 40, n = 8;
  auto a = gaussian_matrix<double>(m, n, 63);
  Device dev;
  tsqr::IncrementalTsqr<double> inc(dev, n);
  for (idx r0 = 0; r0 < m; ++r0) {
    inc.push(a.view().block(r0, 0, 1, n));  // one row at a time
  }
  auto ref = a.clone();
  std::vector<double> tau(static_cast<std::size_t>(n));
  geqrf(ref.view(), tau.data());
  EXPECT_LT(r_factor_difference(extract_r(ref.view()).view(), inc.r().view()),
            1e-11);
}

TEST(IncrementalTsqr, GramIdentityHolds) {
  // R^T R == A^T A (the defining property of any valid R, sign-free).
  const idx m = 600, n = 12;
  auto a = gaussian_matrix<double>(m, n, 64);
  Device dev;
  tsqr::IncrementalTsqr<double> inc(dev, n);
  for (idx r0 = 0; r0 < m; r0 += 150) {
    inc.push(a.view().block(r0, 0, 150, n));
  }
  Matrix<double> ata = Matrix<double>::zeros(n, n);
  syrk_t(1.0, a.view(), 0.0, ata.view());
  Matrix<double> rtr = Matrix<double>::zeros(n, n);
  gemm(Trans::Yes, Trans::No, 1.0, inc.r().view(), inc.r().view(), 0.0,
       rtr.view());
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      ASSERT_NEAR(rtr(i, j), ata(i, j), 1e-9 * (1.0 + std::fabs(ata(i, j))));
    }
  }
}

TEST(IncrementalTsqr, TimelineChargesStreamKernels) {
  Device dev(gpusim::GpuMachineModel::c2050(), ExecMode::ModelOnly);
  tsqr::IncrementalTsqr<float> inc(dev, 16);
  auto block = Matrix<float>::zeros(128, 16);
  for (int i = 0; i < 10; ++i) inc.push(block.view());
  const auto* f = dev.profile("stream_factor");
  const auto* c = dev.profile("stream_combine");
  ASSERT_NE(f, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(f->launches, 10);
  EXPECT_EQ(c->launches, 9);  // first push has nothing to combine with
  EXPECT_GT(dev.elapsed_seconds(), 0.0);
}

TEST(IncrementalTsqr, EmptyAndWidthChecks) {
  Device dev;
  tsqr::IncrementalTsqr<double> inc(dev, 4);
  EXPECT_TRUE(inc.empty());
  auto wrong = Matrix<double>::zeros(10, 5);
  EXPECT_DEATH(inc.push(wrong.view()), "cols");
}

TEST(IncrementalTsqr, ZeroRowAppendIsTypedNotAssert) {
  // Degenerate updates must surface as a typed StreamUpdateError the serving
  // layer can refuse per-request — a CAQR_CHECK abort would take down every
  // co-hosted stream.
  Device dev;
  tsqr::IncrementalTsqr<double> inc(dev, 4);
  auto empty_block = Matrix<double>::zeros(0, 4);
  try {
    inc.push(empty_block.view());
    FAIL() << "zero-row push must throw";
  } catch (const tsqr::StreamUpdateError& e) {
    EXPECT_EQ(e.kind, tsqr::StreamUpdateError::Kind::ZeroRowAppend);
    EXPECT_EQ(e.rows, 0);
    EXPECT_EQ(e.cols, 4);
    EXPECT_NE(std::string(e.what()).find("rejected"), std::string::npos);
  }
  // The failed push left the accumulator usable.
  EXPECT_TRUE(inc.empty());
  auto ok = gaussian_matrix<double>(8, 4, 21);
  inc.push(ok.view());
  EXPECT_EQ(inc.rows_consumed(), 8);
}

}  // namespace
}  // namespace caqr

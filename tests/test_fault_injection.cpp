// Fault-injection tests: seeded determinism, corruption detection through
// the Verifier, and non-interference with clean / ModelOnly runs.

#include <gtest/gtest.h>

#include <vector>

#include "caqr/caqr.hpp"
#include "gpusim/device.hpp"
#include "gpusim/fault.hpp"
#include "linalg/random_matrix.hpp"
#include "numerics/verifier.hpp"
#include "tsqr/tsqr.hpp"

namespace caqr {
namespace {

using gpusim::FaultEvent;
using gpusim::FaultOptions;
using numerics::VerifyReport;

FaultOptions faults(double p, std::uint64_t seed) {
  FaultOptions f;
  f.p_block_drop = p;
  f.p_bitflip = p;
  f.seed = seed;
  return f;
}

struct RunResult {
  VerifyReport report;
  std::vector<FaultEvent> log;
};

RunResult caqr_run_with_faults(const Matrix<double>& a,
                               const FaultOptions& opt) {
  gpusim::Device dev;
  dev.set_fault_injection(opt);
  CaqrOptions copt;
  copt.panel_width = 8;
  copt.tsqr.block_rows = 16;
  auto f =
      CaqrFactorization<double>::factor(dev, Matrix<double>::from(a.view()), copt);
  const auto q = f.form_q(dev, a.cols());
  const auto r = f.r();
  return {numerics::verify_qr(a.view(), q.view(), r.view()), dev.fault_log()};
}

TEST(FaultInjection, DisabledByDefaultAndClean) {
  const auto a = matrix_with_condition<double>(128, 16, 1e4, 1);
  const RunResult clean = caqr_run_with_faults(a, FaultOptions{});
  EXPECT_TRUE(clean.log.empty());
  EXPECT_TRUE(clean.report.pass);
}

TEST(FaultInjection, DeterministicUnderFixedSeed) {
  const auto a = matrix_with_condition<double>(128, 16, 1e4, 2);
  const FaultOptions opt = faults(0.2, 42);
  const RunResult r1 = caqr_run_with_faults(a, opt);
  const RunResult r2 = caqr_run_with_faults(a, opt);
  ASSERT_EQ(r1.log.size(), r2.log.size());
  ASSERT_GT(r1.log.size(), 0u);
  for (std::size_t i = 0; i < r1.log.size(); ++i) {
    EXPECT_EQ(r1.log[i].kind, r2.log[i].kind) << i;
    EXPECT_EQ(r1.log[i].kernel, r2.log[i].kernel) << i;
    EXPECT_EQ(r1.log[i].launch_ordinal, r2.log[i].launch_ordinal) << i;
    EXPECT_EQ(r1.log[i].block, r2.log[i].block) << i;
    EXPECT_EQ(r1.log[i].row, r2.log[i].row) << i;
    EXPECT_EQ(r1.log[i].col, r2.log[i].col) << i;
    EXPECT_EQ(r1.log[i].bit, r2.log[i].bit) << i;
  }
  // The corrupted numerics are reproducible too.
  EXPECT_EQ(r1.report.pass, r2.report.pass);
  EXPECT_EQ(r1.report.residual, r2.report.residual);
}

TEST(FaultInjection, DifferentSeedsDifferentFaults) {
  const auto a = matrix_with_condition<double>(128, 16, 1e4, 3);
  const RunResult r1 = caqr_run_with_faults(a, faults(0.2, 1));
  const RunResult r2 = caqr_run_with_faults(a, faults(0.2, 2));
  ASSERT_GT(r1.log.size() + r2.log.size(), 0u);
  bool differ = r1.log.size() != r2.log.size();
  for (std::size_t i = 0; !differ && i < r1.log.size(); ++i) {
    differ = r1.log[i].launch_ordinal != r2.log[i].launch_ordinal ||
             r1.log[i].block != r2.log[i].block ||
             r1.log[i].row != r2.log[i].row || r1.log[i].bit != r2.log[i].bit;
  }
  EXPECT_TRUE(differ);
}

TEST(FaultInjection, VerifierFlagsCorruptionNaiveSuccessMisses) {
  // The acceptance scenario: with p > 0, the factorization still returns
  // factors of the right shape ("success" to a naive check) under at least
  // one fixed seed, but verification fails.
  const auto a = matrix_with_condition<double>(128, 16, 1e4, 4);
  int flagged = 0;
  int injected_runs = 0;
  for (std::uint64_t seed = 100; seed < 105; ++seed) {
    const RunResult r = caqr_run_with_faults(a, faults(0.1, seed));
    if (!r.log.empty()) {
      ++injected_runs;
      if (!r.report.pass) ++flagged;
    }
  }
  EXPECT_GT(injected_runs, 0);
  EXPECT_GE(flagged, 1);
}

TEST(FaultInjection, BlockDropLeavesStaleOutputDetectedByVerifier) {
  // Drops only (no bit flips): a skipped factor/apply block leaves its
  // region of the panel untouched — finite data, wrong factorization.
  const auto a = matrix_with_condition<double>(256, 16, 1e2, 5);
  FaultOptions opt;
  opt.p_block_drop = 0.5;
  opt.seed = 7;
  gpusim::Device dev;
  dev.set_fault_injection(opt);
  tsqr::TsqrOptions topt;
  topt.block_rows = 32;
  auto res = tsqr::tsqr(dev, a.view(), topt);
  ASSERT_GT(dev.fault_log().size(), 0u);
  const auto q = res.form_q(dev, topt);
  const VerifyReport rep =
      numerics::verify_qr(a.view(), q.view(), res.r().view());
  EXPECT_FALSE(rep.pass);
}

TEST(FaultInjection, ModelOnlyRunsUnaffected) {
  // No functional data exists to corrupt; the timeline must match a clean
  // ModelOnly run exactly.
  auto elapsed = [](bool with_faults) {
    gpusim::Device dev(gpusim::GpuMachineModel::c2050(),
                       gpusim::ExecMode::ModelOnly);
    if (with_faults) dev.set_fault_injection(faults(0.5, 9));
    auto f = CaqrFactorization<double>::factor(
        dev, Matrix<double>::shape_only(4096, 64));
    (void)f;
    return std::make_pair(dev.elapsed_seconds(), dev.fault_log().size());
  };
  const auto clean = elapsed(false);
  const auto faulty = elapsed(true);
  EXPECT_EQ(faulty.second, 0u);
  EXPECT_EQ(clean.first, faulty.first);
}

TEST(FaultInjection, LogClearable) {
  const auto a = matrix_with_condition<double>(128, 16, 1e4, 6);
  gpusim::Device dev;
  dev.set_fault_injection(faults(0.9, 11));
  auto res = tsqr::tsqr(dev, a.view());
  (void)res;
  ASSERT_GT(dev.fault_log().size(), 0u);
  dev.clear_fault_log();
  EXPECT_TRUE(dev.fault_log().empty());
}

}  // namespace
}  // namespace caqr

// Tests for PGM image IO and frame/matrix packing.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "video/pgm_io.hpp"
#include "video/video.hpp"

namespace caqr {
namespace {

using video::column_to_frame;
using video::frame_to_column;
using video::PgmImage;
using video::read_pgm;
using video::write_pgm;

std::string temp_path(const char* name) {
  return std::string("/tmp/caqr_test_") + name;
}

PgmImage gradient_image(idx h, idx w) {
  PgmImage img;
  img.height = h;
  img.width = w;
  img.pixels.resize(static_cast<std::size_t>(h * w));
  for (idx y = 0; y < h; ++y) {
    for (idx x = 0; x < w; ++x) {
      img.at(y, x) =
          static_cast<float>(y * w + x) / static_cast<float>(h * w - 1);
    }
  }
  return img;
}

TEST(PgmIo, BinaryRoundTrip) {
  const auto path = temp_path("bin.pgm");
  auto img = gradient_image(9, 13);
  ASSERT_TRUE(write_pgm(path, img, /*binary=*/true));
  PgmImage back;
  ASSERT_TRUE(read_pgm(path, back));
  ASSERT_EQ(back.height, 9);
  ASSERT_EQ(back.width, 13);
  for (idx y = 0; y < 9; ++y) {
    for (idx x = 0; x < 13; ++x) {
      // 8-bit quantization: half an LSB.
      ASSERT_NEAR(back.at(y, x), img.at(y, x), 0.5f / 255.0f + 1e-6f);
    }
  }
  std::remove(path.c_str());
}

TEST(PgmIo, AsciiRoundTrip) {
  const auto path = temp_path("ascii.pgm");
  auto img = gradient_image(5, 7);
  ASSERT_TRUE(write_pgm(path, img, /*binary=*/false));
  PgmImage back;
  ASSERT_TRUE(read_pgm(path, back));
  ASSERT_EQ(back.height, 5);
  for (idx y = 0; y < 5; ++y) {
    for (idx x = 0; x < 7; ++x) {
      ASSERT_NEAR(back.at(y, x), img.at(y, x), 0.5f / 255.0f + 1e-6f);
    }
  }
  std::remove(path.c_str());
}

TEST(PgmIo, CommentsAndWhitespaceHandled) {
  const auto path = temp_path("comments.pgm");
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "P2\n# a comment\n  3 # trailing\n2\n255\n"
                  "0 128 255\n10 20 30\n");
  std::fclose(f);
  PgmImage img;
  ASSERT_TRUE(read_pgm(path, img));
  EXPECT_EQ(img.width, 3);
  EXPECT_EQ(img.height, 2);
  EXPECT_NEAR(img.at(0, 1), 128.0f / 255.0f, 1e-6f);
  EXPECT_NEAR(img.at(1, 2), 30.0f / 255.0f, 1e-6f);
  std::remove(path.c_str());
}

TEST(PgmIo, RejectsMalformedInputs) {
  PgmImage img;
  EXPECT_FALSE(read_pgm("/nonexistent/path.pgm", img));

  const auto path = temp_path("bad.pgm");
  for (const char* contents :
       {"P3\n2 2\n255\n0 0 0 0\n",       // wrong magic
        "P2\n0 2\n255\n",                // zero dimension
        "P2\n2 2\n70000\n0 0 0 0\n",     // maxval too large
        "P2\n2 2\n255\n0 0 0\n",         // truncated pixels
        "P2\n2 2\n255\n0 0 0 abc\n"}) {  // non-numeric pixel
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(contents, f);
    std::fclose(f);
    EXPECT_FALSE(read_pgm(path, img)) << contents;
  }
  std::remove(path.c_str());
}

TEST(PgmIo, FrameColumnRoundTrip) {
  auto img = gradient_image(6, 4);
  Matrix<float> m(24, 3);
  frame_to_column(img, m.view(), 1);
  auto back = column_to_frame(m.view(), 1, 6, 4);
  for (idx y = 0; y < 6; ++y) {
    for (idx x = 0; x < 4; ++x) ASSERT_EQ(back.at(y, x), img.at(y, x));
  }
}

TEST(PgmIo, PackingMatchesGeneratorLayout) {
  // The generator packs pixel (y, x) at row y + x*height; frame_to_column
  // must agree so real frames and synthetic ones are interchangeable.
  video::VideoSpec spec;
  spec.height = 8;
  spec.width = 6;
  spec.frames = 2;
  auto clip = video::generate_video(spec);
  auto frame0 = column_to_frame(clip.matrix.view(), 0, spec.height, spec.width);
  Matrix<float> repacked(spec.pixels(), 1);
  frame_to_column(frame0, repacked.view(), 0);
  for (idx p = 0; p < spec.pixels(); ++p) {
    ASSERT_EQ(repacked(p, 0), clip.matrix(p, 0));
  }
}

}  // namespace
}  // namespace caqr

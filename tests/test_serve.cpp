// Tests for the batched QR serving layer (src/serve/): plan-cache hit/miss
// accounting and machine-model fingerprint invalidation, work-queue
// semantics (backpressure, deadlines, priority/FIFO dispatch), determinism
// of pooled results across worker counts, bit-identity of the fused
// same-shape batch path against solo factorizations, and Robust PCA routed
// through the pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"
#include "rpca/rpca.hpp"
#include "serve/solver_pool.hpp"

namespace caqr::serve {
namespace {

using gpusim::Device;
using gpusim::ExecMode;
using gpusim::GpuMachineModel;

template <typename T>
void expect_bits_equal(const Matrix<T>& a, const Matrix<T>& b,
                       const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      ASSERT_EQ(a(i, j), b(i, j)) << what << " at (" << i << "," << j << ")";
    }
  }
}

// ---------------------------------------------------------------- PlanCache

TEST(PlanCache, MissThenHit) {
  PlanCache cache(8);
  const auto model = GpuMachineModel::c2050();
  auto first = cache.lookup<float>(model, 4096, 64);
  EXPECT_FALSE(first.hit);
  auto second = cache.lookup<float>(model, 4096, 64);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.size(), 1u);
  // Identical keys return the identical plan object.
  EXPECT_EQ(first.plan.get(), second.plan.get());
  // Different shape, dtype, or requested algorithm: distinct entries.
  EXPECT_FALSE(cache.lookup<float>(model, 8192, 64).hit);
  EXPECT_FALSE(cache.lookup<double>(model, 4096, 64).hit);
  EXPECT_FALSE(
      cache.lookup<float>(model, 4096, 64, QrAlgorithm::Hybrid).hit);
  EXPECT_EQ(cache.misses(), 4);
}

TEST(PlanCache, LruEvictionPastCapacity) {
  PlanCache cache(2);
  const auto model = GpuMachineModel::c2050();
  cache.lookup<float>(model, 1024, 32);
  cache.lookup<float>(model, 2048, 32);
  cache.lookup<float>(model, 4096, 32);  // evicts 1024 (least recent)
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup<float>(model, 4096, 32).hit);
  EXPECT_FALSE(cache.lookup<float>(model, 1024, 32).hit);  // re-inserted
}

TEST(PlanCache, ModelFingerprintInvalidates) {
  const auto c2050 = GpuMachineModel::c2050();
  GpuMachineModel tweaked = c2050;
  tweaked.dram_bw_gbs += 1.0;
  EXPECT_EQ(c2050.fingerprint(), GpuMachineModel::c2050().fingerprint());
  EXPECT_NE(c2050.fingerprint(), tweaked.fingerprint());
  EXPECT_NE(c2050.fingerprint(), GpuMachineModel::gtx480().fingerprint());

  PlanCache cache(8);
  EXPECT_FALSE(cache.lookup<float>(c2050, 4096, 64).hit);
  // Same shape on a changed model must MISS: stale plans never served.
  EXPECT_FALSE(cache.lookup<float>(tweaked, 4096, 64).hit);
  EXPECT_TRUE(cache.lookup<float>(c2050, 4096, 64).hit);
  EXPECT_EQ(cache.misses(), 2);
}

TEST(PlanCache, PlanMatchesAutotuneAndPrediction) {
  const auto model = GpuMachineModel::c2050();
  const QrPlan p = make_plan<float>(model, 110592, 100);
  const auto tuned = autotune::autotune_block_size(model);
  EXPECT_EQ(p.tuned.block_rows, tuned.block_rows);
  EXPECT_EQ(p.tuned.panel_width, tuned.panel_width);
  EXPECT_EQ(p.caqr.panel_width, tuned.panel_width);
  EXPECT_EQ(p.caqr.tsqr.block_rows, tuned.block_rows);
  EXPECT_GT(p.predicted_caqr_seconds, 0.0);
  EXPECT_GT(p.predicted_hybrid_seconds, 0.0);
  // The paper's tall-skinny regime: CAQR must win at 110592 x 100.
  EXPECT_EQ(p.chosen, QrAlgorithm::Caqr);
  EXPECT_DOUBLE_EQ(
      p.predicted_caqr_seconds,
      predict_caqr_seconds<float>(model, 110592, 100, p.caqr));
}

// Many threads hammer a cold cache with a small key set: every key must be
// planned exactly once (misses publish a slot, planning runs outside the
// lock under per-key call_once; same-key racers wait on the slot instead of
// re-planning), and every returned plan for a key must be the same object.
TEST(PlanCache, ConcurrentMissesPlanEachKeyExactlyOnce) {
  PlanCache cache(64);
  const auto model = GpuMachineModel::c2050();
  constexpr int kThreads = 8;
  constexpr int kKeys = 5;
  constexpr int kRounds = 40;
  std::vector<std::array<std::shared_ptr<const QrPlan>, kKeys>> seen(
      kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const int k = (t + r) % kKeys;
        auto got = cache.lookup<float>(model, 1024 + 512 * k, 32);
        ASSERT_NE(got.plan, nullptr);
        EXPECT_EQ(got.plan->key.rows, 1024 + 512 * k);
        seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)] =
            got.plan;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(cache.plans_computed(), kKeys)
      << "duplicate planning sweeps under concurrent misses";
  EXPECT_EQ(cache.misses() + cache.hits(),
            static_cast<long long>(kThreads) * kRounds);
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
  for (int k = 0; k < kKeys; ++k) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)],
                seen[0][static_cast<std::size_t>(k)])
          << "threads observed different plan objects for one key";
    }
  }
}

// --------------------------------------------------------------- SolverPool

// Holds a 1-worker pool at a latch so queue states can be set up exactly.
struct WorkerLatch {
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> release_fut{release.get_future()};

  std::future<RequestStatus> block(SolverPool& pool) {
    return pool.submit_task([this](gpusim::Device&) {
      started.set_value();
      release_fut.wait();
    });
  }
};

TEST(SolverPool, BackpressureRejectsPastHighWaterMark) {
  PoolOptions po;
  po.workers = 1;
  po.queue_capacity = 1;
  po.mode = ExecMode::ModelOnly;
  SolverPool pool(po);

  WorkerLatch latch;
  auto blocked = latch.block(pool);
  latch.started.get_future().wait();  // worker busy, queue empty

  auto queued = pool.submit_task([](gpusim::Device&) {});  // queue now full
  auto rejected =
      pool.try_submit(Matrix<float>::shape_only(1024, 32));
  EXPECT_EQ(rejected.get().status, RequestStatus::Rejected);

  latch.release.set_value();
  EXPECT_EQ(blocked.get(), RequestStatus::Done);
  EXPECT_EQ(queued.get(), RequestStatus::Done);
  pool.drain();
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.rejected, 1);
  EXPECT_EQ(s.completed, 2);
}

TEST(SolverPool, DeadlineExpiresWhileQueued) {
  PoolOptions po;
  po.workers = 1;
  po.mode = ExecMode::ModelOnly;
  SolverPool pool(po);

  WorkerLatch latch;
  auto blocked = latch.block(pool);
  latch.started.get_future().wait();

  RequestOptions tight;
  tight.deadline_seconds = 1e-4;
  auto doomed = pool.submit(Matrix<float>::shape_only(4096, 64), tight);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  latch.release.set_value();
  EXPECT_EQ(doomed.get().status, RequestStatus::DeadlineExpired);
  EXPECT_EQ(blocked.get(), RequestStatus::Done);
  EXPECT_EQ(pool.stats().expired, 1);

  // A comfortable deadline on an idle pool runs normally.
  RequestOptions loose;
  loose.deadline_seconds = 60.0;
  EXPECT_EQ(pool.submit(Matrix<float>::shape_only(4096, 64), loose)
                .get()
                .status,
            RequestStatus::Done);
}

TEST(SolverPool, ShedsAtConfiguredDepthInsteadOfBlocking) {
  PoolOptions po;
  po.workers = 1;
  po.queue_capacity = 8;  // backpressure far away: shedding must act first
  po.shed_queue_depth = 2;
  po.mode = ExecMode::ModelOnly;
  SolverPool pool(po);

  WorkerLatch latch;
  auto blocked = latch.block(pool);
  latch.started.get_future().wait();

  auto q1 = pool.submit_task([](gpusim::Device&) {});
  auto q2 = pool.submit_task([](gpusim::Device&) {});  // depth now 2
  // Admission control: at the watermark the request is turned away
  // immediately with a typed status — submit() does not block and the
  // request never occupies a slot it would miss its deadline in.
  auto shed = pool.submit(Matrix<float>::shape_only(1024, 32));
  EXPECT_EQ(shed.get().status, RequestStatus::Shed);
  EXPECT_STREQ(request_status_name(RequestStatus::Shed), "shed");

  latch.release.set_value();
  EXPECT_EQ(blocked.get(), RequestStatus::Done);
  EXPECT_EQ(q1.get(), RequestStatus::Done);
  EXPECT_EQ(q2.get(), RequestStatus::Done);
  pool.drain();
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.shed, 1);
  EXPECT_EQ(s.rejected, 0);
  EXPECT_EQ(s.completed, 3);
}

TEST(SolverPool, InfeasibleDeadlineShedAtAdmission) {
  PoolOptions po;
  po.workers = 1;
  po.shed_infeasible_deadlines = true;
  po.mode = ExecMode::ModelOnly;
  SolverPool pool(po);

  // Prime the service-time estimate with one completed solve.
  EXPECT_EQ(pool.submit(Matrix<float>::shape_only(4096, 64)).get().status,
            RequestStatus::Done);

  WorkerLatch latch;
  auto blocked = latch.block(pool);
  latch.started.get_future().wait();
  auto queued = pool.submit_task([](gpusim::Device&) {});

  // One job already waiting: the estimated queue wait alone exceeds this
  // deadline, so the request is shed at admission rather than admitted and
  // expired later.
  RequestOptions hopeless;
  hopeless.deadline_seconds = 1e-12;
  auto shed = pool.submit(Matrix<float>::shape_only(4096, 64), hopeless);
  EXPECT_EQ(shed.get().status, RequestStatus::Shed);

  latch.release.set_value();
  EXPECT_EQ(blocked.get(), RequestStatus::Done);
  EXPECT_EQ(queued.get(), RequestStatus::Done);
  pool.drain();
  EXPECT_EQ(pool.stats().shed, 1);
  EXPECT_EQ(pool.stats().expired, 0);
}

TEST(SolverPool, UnrecoveredSolveRetriesOnFreshDevice) {
  const auto a = gaussian_matrix<double>(256, 16, 77);

  // Clean pool: the FT outcome rides on every response.
  {
    PoolOptions po;
    po.workers = 1;
    SolverPool pool(po);
    RequestOptions req;
    req.algo = QrAlgorithm::Caqr;
    req.use_plan = false;
    const auto resp = pool.submit(Matrix<double>::from(a.view()), req).get();
    EXPECT_EQ(resp.status, RequestStatus::Done);
    EXPECT_EQ(resp.run_status.severity, ft::Severity::Ok);
    EXPECT_EQ(resp.solve_retries, 0);
  }

  // Worker device poisoned hard, detection-only FT: the first solve comes
  // back typed Unrecovered and the pool re-runs it once on a fresh device.
  PoolOptions po;
  po.workers = 1;
  po.fault.p_block_drop = 0.9;
  po.fault.seed = 5;
  po.ft.abft = true;
  po.ft.max_launch_retries = 0;  // detect, don't retry in place
  po.max_solve_retries = 1;
  SolverPool pool(po);
  RequestOptions req;
  req.algo = QrAlgorithm::Caqr;
  req.use_plan = false;
  const auto resp = pool.submit(Matrix<double>::from(a.view()), req).get();
  EXPECT_EQ(resp.status, RequestStatus::Done);
  EXPECT_EQ(resp.solve_retries, 1);
  // The redo ran clean, so the merged outcome is Corrected — and the
  // response mirrors the result's own status.
  EXPECT_EQ(resp.run_status.severity, ft::Severity::Corrected);
  EXPECT_EQ(resp.result.run_status.severity, resp.run_status.severity);
  pool.drain();
  EXPECT_GE(pool.stats().solve_retries, 1);
}

TEST(SolverPool, FifoWithinPriority) {
  PoolOptions po;
  po.workers = 1;
  po.mode = ExecMode::ModelOnly;
  SolverPool pool(po);

  WorkerLatch latch;
  auto blocked = latch.block(pool);
  latch.started.get_future().wait();

  std::mutex order_mutex;
  std::vector<int> order;
  auto record = [&](int tag) {
    return [&order_mutex, &order, tag](gpusim::Device&) {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(tag);
    };
  };
  RequestOptions lo;  // priority 1: dispatched after every priority 0
  lo.priority = 1;
  RequestOptions hi;
  hi.priority = 0;
  std::vector<std::future<RequestStatus>> futs;
  futs.push_back(pool.submit_task(record(10), lo));
  futs.push_back(pool.submit_task(record(0), hi));
  futs.push_back(pool.submit_task(record(11), lo));
  futs.push_back(pool.submit_task(record(1), hi));

  latch.release.set_value();
  for (auto& f : futs) EXPECT_EQ(f.get(), RequestStatus::Done);
  blocked.get();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11}));
}

TEST(SolverPool, PlanCacheHitOnRepeatedShape) {
  PoolOptions po;
  po.workers = 2;
  po.mode = ExecMode::ModelOnly;
  SolverPool pool(po);

  auto first = pool.submit(Matrix<float>::shape_only(110592, 100)).get();
  EXPECT_EQ(first.status, RequestStatus::Done);
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_EQ(first.result.used, QrAlgorithm::Caqr);
  EXPECT_GT(first.simulated_seconds, 0.0);

  auto second = pool.submit(Matrix<float>::shape_only(110592, 100)).get();
  EXPECT_EQ(second.status, RequestStatus::Done);
  EXPECT_TRUE(second.plan_cache_hit);
  // Cache hit cannot change the simulated schedule.
  EXPECT_DOUBLE_EQ(second.simulated_seconds, first.simulated_seconds);
  EXPECT_EQ(pool.plan_cache().hits(), 1);
  EXPECT_EQ(pool.plan_cache().misses(), 1);
}

TEST(SolverPool, DeterministicAcrossWorkerCounts) {
  const idx m = 512, n = 24, kReq = 10;
  std::vector<Matrix<float>> inputs;
  for (idx i = 0; i < kReq; ++i) {
    inputs.push_back(gaussian_matrix<float>(m, n, 100 + static_cast<int>(i)));
  }

  // Reference: single-shot adaptive_qr, one fresh device per problem (the
  // exact computation a pool worker performs).
  std::vector<QrSolveResult<float>> ref;
  for (const auto& a : inputs) {
    Device dev;
    ref.push_back(adaptive_qr(dev, a.view(), QrAlgorithm::Caqr));
  }

  RequestOptions req;
  req.algo = QrAlgorithm::Caqr;
  req.use_plan = false;  // verbatim options: must match inline exactly
  for (const int workers : {1, 2, 8}) {
    PoolOptions po;
    po.workers = workers;
    SolverPool pool(po);
    std::vector<std::future<QrResponse<float>>> futs;
    for (const auto& a : inputs) {
      futs.push_back(pool.submit(Matrix<float>::from(a.view()), req));
    }
    for (std::size_t i = 0; i < futs.size(); ++i) {
      QrResponse<float> resp = futs[i].get();
      ASSERT_EQ(resp.status, RequestStatus::Done);
      expect_bits_equal(resp.result.q, ref[i].q, "pooled Q vs solo");
      expect_bits_equal(resp.result.r, ref[i].r, "pooled R vs solo");
      EXPECT_DOUBLE_EQ(resp.result.simulated_seconds,
                       ref[i].simulated_seconds);
    }
  }
}

// -------------------------------------------------------------- batch fusion

TEST(FactorBatch, BitIdenticalToSoloRuns) {
  const idx m = 384, n = 32, k = 3;
  std::vector<Matrix<float>> inputs;
  for (idx i = 0; i < k; ++i) {
    inputs.push_back(gaussian_matrix<float>(m, n, 200 + static_cast<int>(i)));
  }

  std::vector<QrSolveResult<float>> solo;
  for (const auto& a : inputs) {
    Device dev;
    solo.push_back(adaptive_qr(dev, a.view(), QrAlgorithm::Caqr));
  }

  Device dev;
  std::vector<Matrix<float>> copies;
  for (const auto& a : inputs) copies.push_back(Matrix<float>::from(a.view()));
  auto batch = factor_batch(dev, std::move(copies), QrAlgorithm::Caqr);
  ASSERT_EQ(batch.problems.size(), static_cast<std::size_t>(k));
  EXPECT_EQ(batch.used, QrAlgorithm::Caqr);
  for (idx i = 0; i < k; ++i) {
    const auto& bp = batch.problems[static_cast<std::size_t>(i)];
    expect_bits_equal(bp.q, solo[static_cast<std::size_t>(i)].q, "batch Q");
    expect_bits_equal(bp.r, solo[static_cast<std::size_t>(i)].r, "batch R");
  }
  // One fused schedule, not k: fewer launches than the k solo runs issued.
  EXPECT_GT(batch.fused_launches, 0);
  EXPECT_LT(batch.simulated_seconds,
            k * solo.front().simulated_seconds);
}

TEST(FactorBatch, FusedLaunchesVisibleInModelOnlyTimeline) {
  Device dev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
  std::vector<Matrix<float>> probs;
  for (int i = 0; i < 4; ++i) {
    probs.push_back(Matrix<float>::shape_only(110592, 100));
  }
  auto batch = factor_batch(dev, std::move(probs), QrAlgorithm::Caqr);
  EXPECT_GT(batch.simulated_seconds, 0.0);

  bool saw_factor = false, saw_apply = false;
  long long fused_ops = 0;
  for (const auto& p : dev.profiles()) {
    if (p.name.find("_batch") == std::string::npos) continue;
    fused_ops += p.launches;
    if (p.name.find("factor") != std::string::npos) saw_factor = true;
    if (p.name.find("apply") != std::string::npos) saw_apply = true;
  }
  EXPECT_TRUE(saw_factor);
  EXPECT_TRUE(saw_apply);
  EXPECT_EQ(fused_ops, static_cast<long long>(batch.fused_launches));
}

TEST(FactorBatch, ModelOnlyTimelineMatchesFunctional) {
  const idx m = 384, n = 32;
  auto make_inputs = [&](bool functional) {
    std::vector<Matrix<float>> v;
    for (int i = 0; i < 3; ++i) {
      v.push_back(functional ? gaussian_matrix<float>(m, n, 300 + i)
                             : Matrix<float>::shape_only(m, n));
    }
    return v;
  };
  Device fdev;
  Device mdev(GpuMachineModel::c2050(), ExecMode::ModelOnly);
  auto fb = factor_batch(fdev, make_inputs(true), QrAlgorithm::Caqr);
  auto mb = factor_batch(mdev, make_inputs(false), QrAlgorithm::Caqr);
  EXPECT_DOUBLE_EQ(fb.simulated_seconds, mb.simulated_seconds);
  EXPECT_EQ(fb.fused_launches, mb.fused_launches);
}

TEST(SolverPool, BatchThroughPoolMatchesSolo) {
  const idx m = 256, n = 16, k = 4;
  std::vector<Matrix<float>> inputs;
  for (idx i = 0; i < k; ++i) {
    inputs.push_back(gaussian_matrix<float>(m, n, 400 + static_cast<int>(i)));
  }
  std::vector<QrSolveResult<float>> solo;
  for (const auto& a : inputs) {
    Device dev;
    solo.push_back(adaptive_qr(dev, a.view(), QrAlgorithm::Caqr));
  }

  PoolOptions po;
  po.workers = 2;
  SolverPool pool(po);
  RequestOptions req;
  req.algo = QrAlgorithm::Caqr;
  req.use_plan = false;
  std::vector<Matrix<float>> copies;
  for (const auto& a : inputs) copies.push_back(Matrix<float>::from(a.view()));
  BatchResponse<float> resp =
      pool.submit_batch(std::move(copies), req).get();
  ASSERT_EQ(resp.status, RequestStatus::Done);
  ASSERT_EQ(resp.result.problems.size(), static_cast<std::size_t>(k));
  for (idx i = 0; i < k; ++i) {
    const auto& bp = resp.result.problems[static_cast<std::size_t>(i)];
    expect_bits_equal(bp.q, solo[static_cast<std::size_t>(i)].q, "pool batch Q");
    expect_bits_equal(bp.r, solo[static_cast<std::size_t>(i)].r, "pool batch R");
  }
}

// ------------------------------------------------------------ RPCA routing

TEST(PooledQrHook, RpcaThroughPoolMatchesInline) {
  LowRankPlusSparse spec;
  spec.rank = 2;
  spec.sparse_fraction = 0.05;
  auto planted = planted_low_rank_plus_sparse<double>(128, 16, spec, 91);

  rpca::RpcaOptions opt;
  opt.max_iterations = 30;

  Device inline_dev;
  auto inline_res =
      rpca::robust_pca(inline_dev, planted.observed.view(), opt);

  PoolOptions po;
  po.workers = 2;
  SolverPool pool(po);
  PooledQrHook hook(pool);
  rpca::RpcaOptions pooled_opt = opt;
  pooled_opt.svd.qr_hook = &hook;
  Device pooled_dev;
  auto pooled_res =
      rpca::robust_pca(pooled_dev, planted.observed.view(), pooled_opt);

  EXPECT_EQ(pooled_res.converged, inline_res.converged);
  EXPECT_EQ(pooled_res.iterations, inline_res.iterations);
  expect_bits_equal(pooled_res.low_rank, inline_res.low_rank,
                    "RPCA L through pool");
  expect_bits_equal(pooled_res.sparse, inline_res.sparse,
                    "RPCA S through pool");
  EXPECT_GT(pool.stats().completed, 0);
}

// ------------------------------------------------------- weighted fair share

TEST(SolverPool, FairShareServesByDeficitWeights) {
  PoolOptions po;
  po.workers = 1;
  po.mode = ExecMode::ModelOnly;
  po.fair_share = true;
  po.tenant_weights[0] = 1.0;
  po.tenant_weights[1] = 0.5;  // one credit every second visit
  SolverPool pool(po);

  WorkerLatch latch;
  auto blocked = latch.block(pool);
  latch.started.get_future().wait();

  std::mutex order_mu;
  std::vector<int> order;
  std::vector<std::future<RequestStatus>> futs;
  for (int i = 0; i < 4; ++i) {
    for (int tenant = 0; tenant < 2; ++tenant) {
      RequestOptions req;
      req.tenant = tenant;
      futs.push_back(pool.submit_task(
          [tenant, &order_mu, &order](gpusim::Device&) {
            std::lock_guard<std::mutex> lk(order_mu);
            order.push_back(tenant);
          },
          req));
    }
  }
  latch.release.set_value();
  EXPECT_EQ(blocked.get(), RequestStatus::Done);
  for (auto& f : futs) EXPECT_EQ(f.get(), RequestStatus::Done);

  pool.drain();
  ASSERT_EQ(order.size(), 8u);
  // Deficit round-robin at weights 1.0 : 0.5 serves tenant 0 twice as often
  // while both queues are non-empty — tenant 0 drains strictly first.
  const auto last0 = std::find(order.rbegin(), order.rend(), 0);
  const auto last1 = std::find(order.rbegin(), order.rend(), 1);
  EXPECT_LT(last0 - order.rbegin(), 8 - 4)
      << "tenant 0 should finish within the first 5 serves";
  EXPECT_EQ(*last1, 1);
  const PoolStats s = pool.stats();
  // 4 measured requests + the latch job (default tenant 0).
  EXPECT_EQ(s.tenant_served.at(0), 5);
  EXPECT_EQ(s.tenant_served.at(1), 4);
  // Tenant 1's sub-1.0 visits are counted, never silent.
  EXPECT_GT(s.starved_rounds, 0);
  EXPECT_GT(s.tenant_starved.at(1), 0);
  EXPECT_EQ(s.tenant_starved.count(0), 0u);
}

TEST(SolverPool, FairShareCompletesAllTenantsWithExtremeWeights) {
  PoolOptions po;
  po.workers = 2;
  po.mode = ExecMode::ModelOnly;
  po.fair_share = true;
  po.tenant_weights[7] = 0.05;  // 20 visits per credit: starved but served
  SolverPool pool(po);
  std::vector<std::future<RequestStatus>> futs;
  for (int i = 0; i < 6; ++i) {
    for (int tenant : {3, 7}) {
      RequestOptions req;
      req.tenant = tenant;
      futs.push_back(pool.submit_task([](gpusim::Device&) {}, req));
    }
  }
  for (auto& f : futs) EXPECT_EQ(f.get(), RequestStatus::Done);
  pool.drain();
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.tenant_served.at(3), 6);
  EXPECT_EQ(s.tenant_served.at(7), 6);
}

// ------------------------------------------------- pre-solve deadline check

TEST(SolverPool, DeadlineExpiredDuringPlanningSkipsSolve) {
  PoolOptions po;
  po.workers = 1;
  po.mode = ExecMode::ModelOnly;
  // Deterministic pin for "the deadline passed between dequeue and solve":
  // the hook runs after plan resolution, before the pre-solve re-check.
  po.post_plan_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
  };
  SolverPool pool(po);

  RequestOptions req;
  req.deadline_seconds = 0.25;  // outlives the queue, not the planning stall
  auto resp = pool.submit(Matrix<float>::shape_only(1024, 32), req);
  EXPECT_EQ(resp.get().status, RequestStatus::DeadlineExpired);

  pool.drain();
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.completed, 0);
  EXPECT_EQ(s.expired, 1);
  EXPECT_EQ(s.presolve_expired, 1);  // the expiry was caught BEFORE solving
}

}  // namespace
}  // namespace caqr::serve

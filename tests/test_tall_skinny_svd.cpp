// Tests for the tall-skinny SVD pipeline (QR -> small SVD -> Q*U) and the
// singular-value thresholding operator used by Robust PCA.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"
#include "svd/tall_skinny_svd.hpp"

namespace caqr {
namespace {

using gpusim::Device;
using gpusim::ExecMode;
using gpusim::GpuMachineModel;
using svd::QrBackend;
using svd::TallSkinnySvdOptions;

template <typename T>
double pipeline_residual(In<ConstMatrixView<T>> a,
                         const svd::TallSkinnySvd<T>& f) {
  const idx m = a.rows(), n = a.cols();
  double num = 0;
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      double s = 0;
      for (idx p = 0; p < n; ++p) {
        s += static_cast<double>(f.u(i, p)) *
             static_cast<double>(f.sigma[static_cast<std::size_t>(p)]) *
             static_cast<double>(f.v(j, p));
      }
      const double d = static_cast<double>(a(i, j)) - s;
      num += d * d;
    }
  }
  const double den = frobenius_norm(a);
  return den > 0 ? std::sqrt(num) / den : 0.0;
}

class SvdBackends : public ::testing::TestWithParam<QrBackend> {};

TEST_P(SvdBackends, ReconstructsMatrix) {
  auto a = gaussian_matrix<double>(800, 24, 31);
  Device dev;
  TallSkinnySvdOptions opt;
  opt.backend = GetParam();
  auto f = svd::tall_skinny_svd(dev, a.view(), opt);
  EXPECT_LT(pipeline_residual(a.view(), f), 1e-12);
  EXPECT_LT(orthogonality_error(f.u.view()), 1e-12);
  EXPECT_LT(orthogonality_error(f.v.view()), 1e-12);
  EXPECT_TRUE(std::is_sorted(f.sigma.rbegin(), f.sigma.rend()));
  EXPECT_GT(dev.elapsed_seconds(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Backends, SvdBackends,
                         ::testing::Values(QrBackend::Caqr,
                                           QrBackend::GpuBlas2));

TEST(TallSkinnySvd, TwoPhaseSmallSvdAgreesWithJacobi) {
  auto a = gaussian_matrix<double>(500, 20, 131);
  Device dev;
  TallSkinnySvdOptions jopt;
  jopt.small_svd = svd::SmallSvd::Jacobi;
  TallSkinnySvdOptions topt;
  topt.small_svd = svd::SmallSvd::TwoPhase;
  auto fj = svd::tall_skinny_svd(dev, a.view(), jopt);
  auto ft = svd::tall_skinny_svd(dev, a.view(), topt);
  for (idx i = 0; i < 20; ++i) {
    ASSERT_NEAR(fj.sigma[static_cast<std::size_t>(i)],
                ft.sigma[static_cast<std::size_t>(i)], 1e-10 * fj.sigma[0]);
  }
  EXPECT_LT(pipeline_residual(a.view(), ft), 1e-12);
}

TEST(TallSkinnySvd, MatchesDirectJacobiSingularValues) {
  auto a = matrix_with_condition<double>(400, 16, 1e4, 33);
  Device dev;
  auto f = svd::tall_skinny_svd(dev, a.view());
  auto direct = jacobi_svd(a.view());
  for (idx i = 0; i < 16; ++i) {
    EXPECT_NEAR(f.sigma[static_cast<std::size_t>(i)],
                direct.sigma[static_cast<std::size_t>(i)],
                1e-9 * direct.sigma[0]);
  }
}

TEST(TallSkinnySvd, CaqrBackendFasterThanBlas2OnPaperShape) {
  // Table II's premise: at the video-matrix shape the CAQR pipeline beats
  // the bandwidth-bound BLAS2 pipeline by ~3x.
  auto time_for = [&](QrBackend b) {
    Device dev(GpuMachineModel::gtx480(), ExecMode::ModelOnly);
    TallSkinnySvdOptions opt;
    opt.backend = b;
    Matrix<float> a(110592, 100);
    auto f = svd::tall_skinny_svd(dev, a.view(), opt);
    (void)f;
    return dev.elapsed_seconds();
  };
  const double t_caqr = time_for(QrBackend::Caqr);
  const double t_blas2 = time_for(QrBackend::GpuBlas2);
  EXPECT_LT(t_caqr, t_blas2);
  EXPECT_GT(t_blas2 / t_caqr, 1.5);
  EXPECT_LT(t_blas2 / t_caqr, 8.0);
}

TEST(TallSkinnySvd, ModelOnlyTimelineMatchesFunctional) {
  auto run = [&](ExecMode mode) {
    Device dev(GpuMachineModel::c2050(), mode);
    Matrix<float> a = gaussian_matrix<float>(2048, 32, 35);
    TallSkinnySvdOptions opt;
    auto f = svd::tall_skinny_svd(dev, a.view(), opt);
    (void)f;
    return dev.elapsed_seconds();
  };
  EXPECT_DOUBLE_EQ(run(ExecMode::Functional), run(ExecMode::ModelOnly));
}

TEST(Svt, ThresholdsSingularValues) {
  // Build a matrix with known singular values 10, 5, 1 and threshold at 3.
  const idx m = 60, n = 3;
  auto u = random_orthonormal<double>(m, n, 36);
  auto v = random_orthonormal<double>(n, n, 37);
  const double sig[] = {10, 5, 1};
  auto us = u.clone();
  for (idx j = 0; j < n; ++j) scal(m, sig[j], us.view().col(j));
  auto a = Matrix<double>::zeros(m, n);
  gemm(Trans::No, Trans::Yes, 1.0, us.view(), v.view(), 0.0, a.view());

  Device dev;
  auto res = svd::singular_value_threshold(dev, a.view(), 3.0);
  EXPECT_EQ(res.rank, 2);

  // Result must equal U diag(7, 2, 0) V^T.
  auto expect_us = u.clone();
  const double shr[] = {7, 2, 0};
  for (idx j = 0; j < n; ++j) scal(m, shr[j], expect_us.view().col(j));
  auto expect = Matrix<double>::zeros(m, n);
  gemm(Trans::No, Trans::Yes, 1.0, expect_us.view(), v.view(), 0.0,
       expect.view());
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      ASSERT_NEAR(res.value(i, j), expect(i, j), 1e-9);
    }
  }
}

TEST(Svt, ZeroThresholdIsIdentityOperator) {
  auto a = gaussian_matrix<double>(80, 8, 38);
  Device dev;
  auto res = svd::singular_value_threshold(dev, a.view(), 0.0);
  EXPECT_EQ(res.rank, 8);
  for (idx j = 0; j < 8; ++j) {
    for (idx i = 0; i < 80; ++i) ASSERT_NEAR(res.value(i, j), a(i, j), 1e-10);
  }
}

TEST(Svt, LargeThresholdGivesZero) {
  auto a = gaussian_matrix<double>(50, 5, 39);
  Device dev;
  auto res = svd::singular_value_threshold(dev, a.view(), 1e6);
  EXPECT_EQ(res.rank, 0);
  EXPECT_LT(max_abs(res.value.view()), 1e-12);
}

}  // namespace
}  // namespace caqr

// Tests for BLAS1/2/3 primitives against naive reference computations,
// including parameterized shape sweeps over the block sizes CAQR uses.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "linalg/blas1.hpp"
#include "linalg/blas2.hpp"
#include "linalg/blas3.hpp"
#include "linalg/norms.hpp"
#include "linalg/random_matrix.hpp"
#include "linalg/svd.hpp"

namespace caqr {
namespace {

template <typename T>
Matrix<T> naive_gemm(Trans ta, Trans tb, T alpha, In<ConstMatrixView<T>> a,
                     In<ConstMatrixView<T>> b, T beta,
                     In<ConstMatrixView<T>> c0) {
  auto c = Matrix<T>::from(c0);
  const idx m = c.rows(), n = c.cols();
  const idx k = (ta == Trans::No) ? a.cols() : a.rows();
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      long double acc = 0;
      for (idx p = 0; p < k; ++p) {
        const T av = (ta == Trans::No) ? a(i, p) : a(p, i);
        const T bv = (tb == Trans::No) ? b(p, j) : b(j, p);
        acc += static_cast<long double>(av) * bv;
      }
      c(i, j) = static_cast<T>(alpha * static_cast<T>(acc) + beta * c0(i, j));
    }
  }
  return c;
}

TEST(Blas1, DotAxpyScalNrm2) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(dot<double>(4, x.data(), y.data()), 4 + 6 + 6 + 4);
  EXPECT_DOUBLE_EQ(nrm2<double>(4, x.data()), std::sqrt(30.0));
  EXPECT_DOUBLE_EQ(nrm2_squared<double>(4, x.data()), 30.0);
  axpy<double>(4, 2.0, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[3], 9.0);
  scal<double>(4, 0.5, x.data());
  EXPECT_DOUBLE_EQ(x[2], 1.5);
}

TEST(Blas1, Nrm2AvoidsOverflowAndUnderflow) {
  const float big = 1e20f;
  std::vector<float> x = {big, big, big};
  // Naive sum of squares would overflow to inf in float.
  EXPECT_FLOAT_EQ(nrm2<float>(3, x.data()), big * std::sqrt(3.0f));
  const float tiny = 1e-25f;
  std::vector<float> y = {tiny, tiny};
  EXPECT_GT(nrm2<float>(2, y.data()), 0.0f);
  EXPECT_FLOAT_EQ(nrm2<float>(2, y.data()), tiny * std::sqrt(2.0f));
}

TEST(Blas1, Iamax) {
  std::vector<double> x = {1, -5, 3};
  EXPECT_EQ(iamax<double>(3, x.data()), 1);
  EXPECT_EQ(iamax<double>(0, x.data()), -1);
}

TEST(Blas2, GemvMatchesNaive) {
  auto a = gaussian_matrix<double>(7, 5, 11);
  std::vector<double> x = {1, -1, 2, 0.5, 3};
  std::vector<double> y(7, 1.0), yr(7, 1.0);
  gemv_n<double>(2.0, a.view(), x.data(), 0.5, y.data());
  for (idx i = 0; i < 7; ++i) {
    double acc = 0;
    for (idx j = 0; j < 5; ++j) acc += a(i, j) * x[j];
    yr[i] = 2.0 * acc + 0.5 * 1.0;
    EXPECT_NEAR(y[i], yr[i], 1e-12);
  }
  std::vector<double> z(5, -1.0);
  gemv_t<double>(1.0, a.view(), yr.data(), 1.0, z.data());
  for (idx j = 0; j < 5; ++j) {
    double acc = 0;
    for (idx i = 0; i < 7; ++i) acc += a(i, j) * yr[i];
    EXPECT_NEAR(z[j], acc - 1.0, 1e-12);
  }
}

TEST(Blas2, GerRank1Update) {
  auto a = Matrix<double>::zeros(3, 2);
  std::vector<double> x = {1, 2, 3}, y = {4, 5};
  ger<double>(2.0, x.data(), y.data(), a.view());
  EXPECT_DOUBLE_EQ(a(2, 1), 2.0 * 3 * 5);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0 * 1 * 4);
}

TEST(Blas2, TriangularSolvesRoundTrip) {
  auto u = Matrix<double>::zeros(4, 4);
  Rng rng(3);
  for (idx j = 0; j < 4; ++j) {
    for (idx i = 0; i <= j; ++i) u(i, j) = rng.uniform(0.5, 2.0);
  }
  std::vector<double> x = {1, -2, 3, -4};
  auto b = x;
  trmv_upper(u.view(), b.data());
  trsv_upper(u.view(), b.data());
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(b[i], x[i], 1e-12);
}

struct GemmShape {
  idx m, n, k;
};

class GemmAllTransposes
    : public ::testing::TestWithParam<std::tuple<GemmShape, int, int>> {};

TEST_P(GemmAllTransposes, MatchesNaive) {
  const auto [shape, tai, tbi] = GetParam();
  const Trans ta = tai != 0 ? Trans::Yes : Trans::No;
  const Trans tb = tbi != 0 ? Trans::Yes : Trans::No;
  const idx am = ta == Trans::No ? shape.m : shape.k;
  const idx an = ta == Trans::No ? shape.k : shape.m;
  const idx bm = tb == Trans::No ? shape.k : shape.n;
  const idx bn = tb == Trans::No ? shape.n : shape.k;
  auto a = gaussian_matrix<double>(am, an, 1);
  auto b = gaussian_matrix<double>(bm, bn, 2);
  auto c0 = gaussian_matrix<double>(shape.m, shape.n, 3);

  auto c = c0.clone();
  gemm(ta, tb, 1.5, a.view(), b.view(), -0.5, c.view());
  auto ref = naive_gemm(ta, tb, 1.5, a.view(), b.view(), -0.5, c0.view());

  for (idx j = 0; j < shape.n; ++j) {
    for (idx i = 0; i < shape.m; ++i) {
      ASSERT_NEAR(c(i, j), ref(i, j), 1e-10 * (1.0 + std::fabs(ref(i, j))));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmAllTransposes,
    ::testing::Combine(::testing::Values(GemmShape{1, 1, 1}, GemmShape{8, 4, 16},
                                         GemmShape{13, 7, 5}, GemmShape{32, 32, 32},
                                         GemmShape{65, 17, 33}, GemmShape{128, 16, 16},
                                         GemmShape{3, 50, 2}),
                       ::testing::Values(0, 1), ::testing::Values(0, 1)));

TEST(Blas3, GemmEmptyDimensions) {
  auto a = Matrix<double>::zeros(4, 0);
  auto b = Matrix<double>::zeros(0, 3);
  auto c = Matrix<double>::identity(4, 3);
  // k == 0: C := beta * C only.
  gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 2.0, c.view());
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 0.0);
}

TEST(Blas3, SyrkMatchesGemm) {
  auto a = gaussian_matrix<double>(20, 6, 5);
  auto c1 = Matrix<double>::zeros(6, 6);
  auto c2 = Matrix<double>::zeros(6, 6);
  syrk_t(1.0, a.view(), 0.0, c1.view());
  gemm(Trans::Yes, Trans::No, 1.0, a.view(), a.view(), 0.0, c2.view());
  for (idx j = 0; j < 6; ++j) {
    for (idx i = 0; i < 6; ++i) EXPECT_NEAR(c1(i, j), c2(i, j), 1e-12);
  }
}

class TrsmCase : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TrsmCase, SolveThenMultiplyRoundTrips) {
  const auto [side_i, uplo_i, trans_i] = GetParam();
  const Side side = side_i != 0 ? Side::Right : Side::Left;
  const UpLo uplo = uplo_i != 0 ? UpLo::Lower : UpLo::Upper;
  const Trans trans = trans_i != 0 ? Trans::Yes : Trans::No;

  const idx n = 6;
  const idx bm = side == Side::Left ? n : 9;
  const idx bn = side == Side::Left ? 9 : n;
  auto t = Matrix<double>::zeros(n, n);
  Rng rng(9);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      const bool in_tri = uplo == UpLo::Upper ? i <= j : i >= j;
      if (in_tri) t(i, j) = i == j ? rng.uniform(1.0, 2.0) : rng.uniform(-0.5, 0.5);
    }
  }
  auto b0 = gaussian_matrix<double>(bm, bn, 17);
  auto b = b0.clone();
  trsm(side, uplo, trans, t.view(), b.view());

  // Reconstruct: op(T)*X (left) or X*op(T) (right) must equal B0.
  auto recon = Matrix<double>::zeros(bm, bn);
  if (side == Side::Left) {
    gemm(trans, Trans::No, 1.0, t.view(), b.view(), 0.0, recon.view());
  } else {
    gemm(Trans::No, trans, 1.0, b.view(), t.view(), 0.0, recon.view());
  }
  for (idx j = 0; j < bn; ++j) {
    for (idx i = 0; i < bm; ++i) ASSERT_NEAR(recon(i, j), b0(i, j), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, TrsmCase,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(0, 1),
                                            ::testing::Values(0, 1)));

TEST(Blas3, TrmmLeftMatchesGemm) {
  const idx n = 5;
  auto t = Matrix<double>::zeros(n, n);
  Rng rng(21);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i <= j; ++i) t(i, j) = rng.uniform(-1.0, 1.0);
  }
  auto b0 = gaussian_matrix<double>(n, 4, 22);

  for (const Trans trans : {Trans::No, Trans::Yes}) {
    auto b = b0.clone();
    trmm_left(UpLo::Upper, trans, t.view(), b.view());
    auto ref = Matrix<double>::zeros(n, 4);
    gemm(trans, Trans::No, 1.0, t.view(), b0.view(), 0.0, ref.view());
    for (idx j = 0; j < 4; ++j) {
      for (idx i = 0; i < n; ++i) ASSERT_NEAR(b(i, j), ref(i, j), 1e-12);
    }
  }
}

TEST(Norms, FrobeniusAndOrthogonality) {
  auto e = Matrix<double>::identity(5, 3);
  EXPECT_NEAR(frobenius_norm(e.view()), std::sqrt(3.0), 1e-14);
  EXPECT_NEAR(orthogonality_error(e.view()), 0.0, 1e-14);
  auto q = random_orthonormal<double>(40, 10, 77);
  EXPECT_LT(orthogonality_error(q.view()), 1e-13);
}

TEST(Norms, RFactorDifferenceSignInvariance) {
  auto r1 = Matrix<double>::zeros(3, 3);
  r1(0, 0) = 2;
  r1(0, 1) = 1;
  r1(1, 1) = 3;
  r1(2, 2) = -1;
  auto r2 = r1.clone();
  // Flip the sign of row 1 — equivalent QR up to reflector signs.
  for (idx j = 0; j < 3; ++j) r2(1, j) = -r2(1, j);
  EXPECT_NEAR(r_factor_difference(r1.view(), r2.view()), 0.0, 1e-15);
}

TEST(RandomMatrix, ConditionNumberIsRespected) {
  auto a = matrix_with_condition<double>(60, 10, 1e6, 5);
  auto svd = jacobi_svd(a.view());
  EXPECT_NEAR(svd.sigma.front() / svd.sigma.back(), 1e6, 1e6 * 1e-8);
}

}  // namespace
}  // namespace caqr

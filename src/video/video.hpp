#pragma once

// Synthetic stationary-surveillance-video generator (substitute for the
// ViSOR clip of §VI.D, per DESIGN.md): a static background plus moving
// sparse foreground blobs plus sensor noise. Robust PCA needs exactly this
// structure — low-rank background, sparse foreground — with controllable
// size, so the synthetic source preserves the experiment's behaviour.
//
// Frames are packed one-per-column into a (pixels x frames) matrix, the
// paper's video-matrix layout (§I: "each column contains all pixels in a
// frame").

#include <cstdint>
#include <vector>

#include "common/prng.hpp"
#include "linalg/matrix.hpp"

namespace caqr::video {

struct VideoSpec {
  idx height = 288;       // paper's frame height
  idx width = 384;        // paper's frame width
  idx frames = 100;       // paper's clip length
  idx num_blobs = 3;      // moving foreground objects
  double blob_size = 0.08;   // blob edge as a fraction of frame height
  double noise_sigma = 0.01; // sensor noise std-dev (pixel range [0, 1])
  double illumination_drift = 0.02;  // slow global gain variation
  std::uint64_t seed = 42;

  idx pixels() const { return height * width; }
};

struct SyntheticVideo {
  VideoSpec spec;
  Matrix<float> matrix;       // pixels x frames (observed)
  Matrix<float> background;   // pixels x frames (ground-truth low rank)
  std::vector<std::vector<std::uint8_t>> foreground_mask;  // per frame, pixels
};

// Deterministic synthetic clip. The background is a smooth 2-D gradient with
// fixed texture; blobs follow straight-line paths with per-blob velocity;
// illumination drift makes the background genuinely (numerically) rank > 1
// but still effectively low rank.
SyntheticVideo generate_video(const VideoSpec& spec);

// Foreground/background separation quality: pixel-level F1 of
// |sparse| > threshold against the ground-truth foreground mask.
struct SeparationQuality {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
};

SeparationQuality evaluate_separation(const SyntheticVideo& truth,
                                      ConstMatrixView<float> sparse,
                                      float threshold);

}  // namespace caqr::video

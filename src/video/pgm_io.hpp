#pragma once

// Minimal PGM (portable graymap) image IO for the video pipeline: lets the
// background-subtraction example consume real frames and write its
// decomposition as viewable images. Supports P2 (ASCII) and P5 (binary),
// 8-bit depth; pixel values map to [0, 1] floats.

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace caqr::video {

struct PgmImage {
  idx height = 0;
  idx width = 0;
  std::vector<float> pixels;  // row-major, [0, 1]

  float& at(idx y, idx x) {
    return pixels[static_cast<std::size_t>(y * width + x)];
  }
  float at(idx y, idx x) const {
    return pixels[static_cast<std::size_t>(y * width + x)];
  }
};

// Returns false (and leaves `out` untouched) on malformed input or IO error.
bool read_pgm(const std::string& path, PgmImage& out);

// `binary` selects P5 vs P2. Returns false on IO error.
bool write_pgm(const std::string& path, const PgmImage& img,
               bool binary = true);

// Frame <-> video-matrix column conversion, matching the generator's packing
// (column-major within the frame: pixel (y, x) -> row y + x * height).
void frame_to_column(const PgmImage& img, MatrixView<float> matrix, idx col);
PgmImage column_to_frame(ConstMatrixView<float> matrix, idx col, idx height,
                         idx width);

}  // namespace caqr::video

#include "video/pgm_io.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "common/check.hpp"

namespace caqr::video {

namespace {

// Reads the next token, skipping whitespace and '#' comment lines.
bool next_token(FILE* f, std::string& tok) {
  tok.clear();
  int c = std::fgetc(f);
  for (;;) {
    while (c != EOF && std::isspace(c)) c = std::fgetc(f);
    if (c == '#') {
      while (c != EOF && c != '\n') c = std::fgetc(f);
      continue;
    }
    break;
  }
  if (c == EOF) return false;
  while (c != EOF && !std::isspace(c)) {
    tok.push_back(static_cast<char>(c));
    c = std::fgetc(f);
  }
  return !tok.empty();
}

bool parse_nonneg(const std::string& tok, long long& value) {
  if (tok.empty()) return false;
  value = 0;
  for (const char c : tok) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    value = value * 10 + (c - '0');
    if (value > (1LL << 30)) return false;
  }
  return true;
}

bool parse_positive(const std::string& tok, long long& value) {
  return parse_nonneg(tok, value) && value > 0;
}

}  // namespace

bool read_pgm(const std::string& path, PgmImage& out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;

  std::string tok;
  bool ok = next_token(f, tok) && (tok == "P2" || tok == "P5");
  const bool binary = tok == "P5";
  long long width = 0, height = 0, maxval = 0;
  ok = ok && next_token(f, tok) && parse_positive(tok, width);
  ok = ok && next_token(f, tok) && parse_positive(tok, height);
  ok = ok && next_token(f, tok) && parse_positive(tok, maxval) && maxval <= 255;
  if (!ok) {
    std::fclose(f);
    return false;
  }

  PgmImage img;
  img.width = static_cast<idx>(width);
  img.height = static_cast<idx>(height);
  img.pixels.resize(static_cast<std::size_t>(width * height));
  const float scale = 1.0f / static_cast<float>(maxval);

  if (binary) {
    // P5: exactly one whitespace after maxval, then raw bytes.
    std::vector<unsigned char> raw(img.pixels.size());
    ok = std::fread(raw.data(), 1, raw.size(), f) == raw.size();
    if (ok) {
      for (std::size_t i = 0; i < raw.size(); ++i) {
        img.pixels[i] = static_cast<float>(raw[i]) * scale;
      }
    }
  } else {
    for (std::size_t i = 0; ok && i < img.pixels.size(); ++i) {
      long long v = 0;
      ok = next_token(f, tok) && parse_nonneg(tok, v) && v <= maxval;
      if (ok) img.pixels[i] = static_cast<float>(v) * scale;
    }
  }
  std::fclose(f);
  if (ok) out = std::move(img);
  return ok;
}

bool write_pgm(const std::string& path, const PgmImage& img, bool binary) {
  CAQR_CHECK(img.width >= 1 && img.height >= 1);
  CAQR_CHECK(static_cast<idx>(img.pixels.size()) == img.width * img.height);
  FILE* f = std::fopen(path.c_str(), binary ? "wb" : "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%s\n%lld %lld\n255\n", binary ? "P5" : "P2",
               static_cast<long long>(img.width),
               static_cast<long long>(img.height));
  bool ok = true;
  if (binary) {
    std::vector<unsigned char> raw(img.pixels.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const float v = std::clamp(img.pixels[i], 0.0f, 1.0f);
      raw[i] = static_cast<unsigned char>(v * 255.0f + 0.5f);
    }
    ok = std::fwrite(raw.data(), 1, raw.size(), f) == raw.size();
  } else {
    for (idx y = 0; ok && y < img.height; ++y) {
      for (idx x = 0; x < img.width; ++x) {
        const float v = std::clamp(img.at(y, x), 0.0f, 1.0f);
        ok = std::fprintf(f, "%d ", static_cast<int>(v * 255.0f + 0.5f)) > 0;
      }
      std::fprintf(f, "\n");
    }
  }
  return std::fclose(f) == 0 && ok;
}

void frame_to_column(const PgmImage& img, MatrixView<float> matrix, idx col) {
  CAQR_CHECK(matrix.rows() == img.width * img.height);
  CAQR_CHECK(col >= 0 && col < matrix.cols());
  float* dst = matrix.col(col);
  for (idx x = 0; x < img.width; ++x) {
    for (idx y = 0; y < img.height; ++y) {
      dst[y + x * img.height] = img.at(y, x);
    }
  }
}

PgmImage column_to_frame(ConstMatrixView<float> matrix, idx col, idx height,
                         idx width) {
  CAQR_CHECK(matrix.rows() == height * width);
  CAQR_CHECK(col >= 0 && col < matrix.cols());
  PgmImage img;
  img.height = height;
  img.width = width;
  img.pixels.resize(static_cast<std::size_t>(height * width));
  const float* src = matrix.col(col);
  for (idx x = 0; x < width; ++x) {
    for (idx y = 0; y < height; ++y) {
      img.at(y, x) = src[y + x * height];
    }
  }
  return img;
}

}  // namespace caqr::video

#include "video/video.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace caqr::video {

namespace {

struct Blob {
  double x, y;    // center, in pixels
  double vx, vy;  // pixels per frame
  double half;    // half edge length
  float intensity;
};

}  // namespace

SyntheticVideo generate_video(const VideoSpec& spec) {
  CAQR_CHECK(spec.height >= 4 && spec.width >= 4 && spec.frames >= 1);
  const idx pixels = spec.pixels();

  SyntheticVideo out{spec, Matrix<float>(pixels, spec.frames),
                     Matrix<float>(pixels, spec.frames), {}};
  out.foreground_mask.assign(
      static_cast<std::size_t>(spec.frames),
      std::vector<std::uint8_t>(static_cast<std::size_t>(pixels), 0));

  // Static background: smooth gradient + fixed pseudo-texture.
  std::vector<float> bg(static_cast<std::size_t>(pixels));
  {
    Rng rng(spec.seed, 1);
    for (idx x = 0; x < spec.width; ++x) {
      for (idx y = 0; y < spec.height; ++y) {
        const double gx = static_cast<double>(x) / spec.width;
        const double gy = static_cast<double>(y) / spec.height;
        const double texture = 0.05 * std::sin(0.7 * x) * std::cos(1.3 * y);
        bg[static_cast<std::size_t>(y + x * spec.height)] =
            static_cast<float>(0.4 + 0.3 * gx + 0.2 * gy + texture +
                               0.02 * rng.next_double());
      }
    }
  }

  // Foreground blobs with straight-line trajectories (wrap-around).
  std::vector<Blob> blobs;
  {
    Rng rng(spec.seed, 2);
    const double half = 0.5 * spec.blob_size * spec.height;
    for (idx b = 0; b < spec.num_blobs; ++b) {
      Blob blob;
      blob.x = rng.uniform(half, spec.width - half);
      blob.y = rng.uniform(half, spec.height - half);
      blob.vx = rng.uniform(-3.0, 3.0);
      blob.vy = rng.uniform(-2.0, 2.0);
      blob.half = half;
      blob.intensity = static_cast<float>(rng.uniform(0.35, 0.6));
      blobs.push_back(blob);
    }
  }

  Rng noise(spec.seed, 3);
  for (idx f = 0; f < spec.frames; ++f) {
    const double gain =
        1.0 + spec.illumination_drift *
                  std::sin(2.0 * 3.14159265358979 * f / spec.frames);
    float* frame = out.matrix.view().col(f);
    float* truth_bg = out.background.view().col(f);
    auto& mask = out.foreground_mask[static_cast<std::size_t>(f)];

    for (idx p = 0; p < pixels; ++p) {
      truth_bg[p] = static_cast<float>(gain * bg[static_cast<std::size_t>(p)]);
      frame[p] = truth_bg[p] +
                 static_cast<float>(spec.noise_sigma * noise.normal());
    }

    for (const Blob& blob : blobs) {
      const double cx = std::fmod(blob.x + blob.vx * f + 10.0 * spec.width,
                                  static_cast<double>(spec.width));
      const double cy = std::fmod(blob.y + blob.vy * f + 10.0 * spec.height,
                                  static_cast<double>(spec.height));
      const idx x0 = std::max<idx>(0, static_cast<idx>(cx - blob.half));
      const idx x1 = std::min<idx>(spec.width - 1,
                                   static_cast<idx>(cx + blob.half));
      const idx y0 = std::max<idx>(0, static_cast<idx>(cy - blob.half));
      const idx y1 = std::min<idx>(spec.height - 1,
                                   static_cast<idx>(cy + blob.half));
      for (idx x = x0; x <= x1; ++x) {
        for (idx y = y0; y <= y1; ++y) {
          const idx p = y + x * spec.height;
          frame[p] = blob.intensity;
          mask[static_cast<std::size_t>(p)] = 1;
        }
      }
    }

    for (idx p = 0; p < pixels; ++p) {
      frame[p] = std::clamp(frame[p], 0.0f, 1.0f);
    }
  }
  return out;
}

SeparationQuality evaluate_separation(const SyntheticVideo& truth,
                                      ConstMatrixView<float> sparse,
                                      float threshold) {
  CAQR_CHECK(sparse.rows() == truth.spec.pixels());
  CAQR_CHECK(sparse.cols() == truth.spec.frames);
  long long tp = 0, fp = 0, fn = 0;
  for (idx f = 0; f < truth.spec.frames; ++f) {
    const float* col = sparse.col(f);
    const auto& mask = truth.foreground_mask[static_cast<std::size_t>(f)];
    for (idx p = 0; p < truth.spec.pixels(); ++p) {
      const bool detected = std::fabs(col[p]) > threshold;
      const bool actual = mask[static_cast<std::size_t>(p)] != 0;
      if (detected && actual) ++tp;
      else if (detected && !actual) ++fp;
      else if (!detected && actual) ++fn;
    }
  }
  SeparationQuality q;
  q.precision = tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
  q.recall = tp + fn > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
  q.f1 = q.precision + q.recall > 0
             ? 2.0 * q.precision * q.recall / (q.precision + q.recall)
             : 0.0;
  return q;
}

}  // namespace caqr::video

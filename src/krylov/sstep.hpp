#pragma once

// s-step (communication-avoiding) Krylov methods on the simulated GPU —
// the application class the paper's introduction motivates: "In s-step
// methods, multiple basis vectors are generated at once and can be
// orthogonalized using a QR factorization. The dimensions of this QR
// factorization can be millions of rows by less than ten columns."
//
// Pieces:
//   * matrix_powers      — generate a block {v, Av, ..., A^s v} (monomial or
//                          Newton basis; the Newton shifts tame the basis
//                          conditioning for larger s).
//   * block_orthogonalize— TSQR-orthogonalize a basis block against itself
//                          and (block classical Gram-Schmidt) against the
//                          previously accepted basis.
//   * ca_arnoldi         — s-step Arnoldi: V with orthonormal columns and
//                          the projected H = V^T A V, built s vectors at a
//                          time with one TSQR per block.
//   * ca_gmres           — restarted GMRES over the CA-Arnoldi basis, with
//                          the small least-squares solve done by QR.
//
// All dense block operations (TSQR, BGS corrections) are charged to the
// Device timeline; SpMVs are charged via CsrMatrix::charge_spmv.

#include <cmath>
#include <vector>

#include "baselines/gemm_model.hpp"
#include "linalg/norms.hpp"
#include "sparse/csr.hpp"
#include "tsqr/tsqr.hpp"

namespace caqr::krylov {

enum class BasisKind {
  Monomial,  // v, Av, A^2 v, ...: simplest, conditioning grows fast
  Newton,    // (A - theta_i I) products with Leja-ordered Ritz shifts
};

// Generates the m x (s+1) Krylov block starting from v (length m), running
// s SpMVs. Newton shifts default to Chebyshev points on the operator's
// Gershgorin interval estimate when not provided.
template <typename T>
Matrix<T> matrix_powers(gpusim::Device& dev, const sparse::CsrMatrix<T>& a,
                        const T* v, idx s, BasisKind kind = BasisKind::Monomial,
                        const std::vector<T>& shifts = {}) {
  const idx m = a.rows();
  CAQR_CHECK(a.cols() == m && s >= 0);
  Matrix<T> k(m, s + 1);
  copy_n(m, v, k.view().col(0));

  std::vector<T> theta(static_cast<std::size_t>(s), T(0));
  if (kind == BasisKind::Newton) {
    if (!shifts.empty()) {
      CAQR_CHECK(static_cast<idx>(shifts.size()) >= s);
      for (idx i = 0; i < s; ++i) theta[static_cast<std::size_t>(i)] = shifts[static_cast<std::size_t>(i)];
    } else {
      // Chebyshev points on (0, 8): the 2-D Laplacian's spectrum bound; a
      // reasonable default for diagonally dominant SPD operators.
      for (idx i = 0; i < s; ++i) {
        const double x = std::cos((2.0 * static_cast<double>(i) + 1.0) /
                                  (2.0 * static_cast<double>(s)) * 3.14159265358979);
        theta[static_cast<std::size_t>(i)] = static_cast<T>(4.0 + 4.0 * x);
      }
    }
  }

  for (idx j = 1; j <= s; ++j) {
    a.spmv(k.view().col(j - 1), k.view().col(j));
    a.charge_spmv(dev);
    if (kind == BasisKind::Newton) {
      axpy(m, -theta[static_cast<std::size_t>(j - 1)], k.view().col(j - 1),
           k.view().col(j));
    }
  }
  return k;
}

// Orthogonalizes `block` (m x w) against the first `kcols` columns of
// `basis` (block classical Gram-Schmidt, one reorthogonalization pass) and
// then internally via TSQR. Returns the coefficients C (kcols x w) and the
// internal R factor (w x w): block_in = basis * C + Q_out * R.
template <typename T>
struct BlockOrthoResult {
  Matrix<T> coeffs;  // kcols x w (projections onto the existing basis)
  Matrix<T> r;       // w x w (internal TSQR factor)
};

template <typename T>
BlockOrthoResult<T> block_orthogonalize(gpusim::Device& dev,
                                        In<ConstMatrixView<T>> basis,
                                        idx kcols, MatrixView<T> block,
                                        const tsqr::TsqrOptions& opt) {
  const idx m = block.rows();
  const idx w = block.cols();
  CAQR_CHECK(basis.rows() == m && kcols >= 0 && kcols <= basis.cols());
  BlockOrthoResult<T> out{Matrix<T>::zeros(kcols, w), Matrix<T>::zeros(w, w)};

  // Two BGS passes ("twice is enough") against the accepted basis.
  for (int pass = 0; pass < 2 && kcols > 0; ++pass) {
    Matrix<T> c = Matrix<T>::zeros(kcols, w);
    auto vk = basis.block(0, 0, m, kcols);
    gemm(Trans::Yes, Trans::No, T(1), vk, block.as_const(), T(0), c.view());
    gemm(Trans::No, Trans::No, T(-1), vk, c.view(), T(1), block);
    baselines::charge_gemm(dev, kcols, w, m, "bgs_project");
    baselines::charge_gemm(dev, m, w, kcols, "bgs_update");
    // Accumulate coefficients from both passes.
    for (idx j = 0; j < w; ++j) {
      for (idx i = 0; i < kcols; ++i) out.coeffs(i, j) += c(i, j);
    }
  }

  // Internal orthogonalization: one TSQR of the tall-skinny block.
  auto f = tsqr::tsqr_factor(dev, block, opt);
  // Extract R, then form the explicit Q in place of the block.
  for (idx j = 0; j < w; ++j) {
    for (idx i = 0; i <= j; ++i) out.r(i, j) = block(i, j);
  }
  Matrix<T> q = Matrix<T>::identity(m, w);
  tsqr::tsqr_apply_q(dev, block.as_const(), f, q.view(), opt);
  block.copy_from(q.view());
  return out;
}

// s-step Arnoldi: builds `blocks` blocks of `s` new vectors each (basis
// width = 1 + blocks*s), returning the orthonormal basis V and the upper
// Hessenberg projection H (square, basis width) with the Arnoldi residual
// in the last subdiagonal entries.
template <typename T>
struct ArnoldiResult {
  Matrix<T> v;  // m x (1 + blocks*s), orthonormal columns
  Matrix<T> h;  // (1 + blocks*s + 1) x (1 + blocks*s): extended Hessenberg
  idx width = 0;
};

// Classic MGS Arnoldi (reference / comparison path).
template <typename T>
ArnoldiResult<T> arnoldi_mgs(gpusim::Device& dev, const sparse::CsrMatrix<T>& a,
                             const T* v0, idx steps) {
  const idx m = a.rows();
  ArnoldiResult<T> out{Matrix<T>::zeros(m, steps + 1),
                       Matrix<T>::zeros(steps + 1, steps), steps};
  copy_n(m, v0, out.v.view().col(0));
  const T nv = nrm2(m, out.v.view().col(0));
  CAQR_CHECK(nv > T(0));
  scal(m, T(1) / nv, out.v.view().col(0));

  std::vector<T> w(static_cast<std::size_t>(m));
  for (idx j = 0; j < steps; ++j) {
    a.spmv(out.v.view().col(j), w.data());
    a.charge_spmv(dev);
    for (idx i = 0; i <= j; ++i) {
      const T hij = dot(m, out.v.view().col(i), w.data());
      out.h(i, j) = hij;
      axpy(m, -hij, out.v.view().col(i), w.data());
    }
    const T hn = nrm2(m, w.data());
    out.h(j + 1, j) = hn;
    if (hn == T(0)) {
      out.width = j;
      break;
    }
    scal(m, T(1) / hn, w.data());
    copy_n(m, w.data(), out.v.view().col(j + 1));
  }
  return out;
}

// Communication-avoiding Arnoldi: per outer block, generate s basis vectors
// with matrix_powers, orthogonalize the whole block at once (BGS + TSQR),
// and recover the Hessenberg columns from the change-of-basis algebra
// numerically (H = V^T A V evaluated with s extra SpMVs per block — the
// simple, robust variant).
template <typename T>
ArnoldiResult<T> ca_arnoldi(gpusim::Device& dev, const sparse::CsrMatrix<T>& a,
                            const T* v0, idx s, idx blocks,
                            BasisKind kind = BasisKind::Newton,
                            const tsqr::TsqrOptions& topt = {}) {
  const idx m = a.rows();
  const idx width = s * blocks;
  ArnoldiResult<T> out{Matrix<T>::zeros(m, width + 1),
                       Matrix<T>::zeros(width + 1, width), width};

  copy_n(m, v0, out.v.view().col(0));
  const T nv = nrm2(m, out.v.view().col(0));
  CAQR_CHECK(nv > T(0));
  scal(m, T(1) / nv, out.v.view().col(0));

  idx k = 1;  // accepted basis width
  for (idx b = 0; b < blocks; ++b) {
    // Generate s new candidates from the last accepted vector.
    auto powers = matrix_powers(dev, a, out.v.view().col(k - 1), s, kind);
    // Candidates are columns 1..s (column 0 is the seed, already in V).
    Matrix<T> block(m, s);
    block.view().copy_from(powers.view().block(0, 1, m, s));
    auto ortho = block_orthogonalize(dev, out.v.view(), k, block.view(), topt);
    (void)ortho;
    out.v.view().block(0, k, m, s).copy_from(block.view());
    k += s;
  }

  // H = V^T A V, assembled column-by-column with one SpMV per column.
  std::vector<T> av(static_cast<std::size_t>(m));
  for (idx j = 0; j < width; ++j) {
    a.spmv(out.v.view().col(j), av.data());
    a.charge_spmv(dev);
    for (idx i = 0; i < width + 1; ++i) {
      out.h(i, j) = dot(m, out.v.view().col(i), av.data());
    }
  }
  baselines::charge_gemm(dev, width + 1, width, m, "hessenberg_projection");
  return out;
}

// Restarted GMRES over the CA-Arnoldi basis. Solves min ||b - A x|| by
// projecting onto the s-step basis and solving the small least-squares
// problem with dense QR. Returns the iterate and residual history (one
// entry per restart cycle).
template <typename T>
struct GmresResult {
  std::vector<T> x;
  std::vector<double> residuals;  // relative, per restart cycle
  bool converged = false;
};

template <typename T>
GmresResult<T> ca_gmres(gpusim::Device& dev, const sparse::CsrMatrix<T>& a,
                        const T* b, idx s, idx blocks, idx max_restarts,
                        double tol = 1e-8,
                        BasisKind kind = BasisKind::Newton) {
  const idx m = a.rows();
  GmresResult<T> out{std::vector<T>(static_cast<std::size_t>(m), T(0)), {}, false};
  const double bnorm = static_cast<double>(nrm2(m, b));
  if (bnorm == 0.0) {
    out.converged = true;
    return out;
  }

  std::vector<T> r(static_cast<std::size_t>(m));
  for (idx cycle = 0; cycle < max_restarts; ++cycle) {
    // r = b - A x
    a.spmv(out.x.data(), r.data());
    a.charge_spmv(dev);
    for (idx i = 0; i < m; ++i) r[static_cast<std::size_t>(i)] = b[i] - r[static_cast<std::size_t>(i)];
    const double rnorm = static_cast<double>(nrm2(m, r.data()));
    out.residuals.push_back(rnorm / bnorm);
    if (rnorm / bnorm < tol) {
      out.converged = true;
      return out;
    }

    auto ar = ca_arnoldi(dev, a, r.data(), s, blocks, kind);
    const idx width = ar.width;
    // Solve min || beta e1 - H y || with dense QR of the (width+1) x width H.
    Matrix<T> h = Matrix<T>::from(ar.h.view());
    Matrix<T> rhs = Matrix<T>::zeros(width + 1, 1);
    rhs(0, 0) = static_cast<T>(rnorm);
    std::vector<T> tau(static_cast<std::size_t>(width));
    geqrf(h.view(), tau.data());
    apply_q_left(h.view().block(0, 0, width + 1, width), tau.data(),
                 Trans::Yes, rhs.view());
    trsv_upper(h.view().block(0, 0, width, width), rhs.view().col(0));
    // x += V(:, 0:width) * y
    Matrix<T> y(width, 1);
    y.view().copy_from(rhs.view().block(0, 0, width, 1));
    Matrix<T> xcol(m, 1);
    gemm(Trans::No, Trans::No, T(1), ar.v.view().block(0, 0, m, width),
         y.view(), T(0), xcol.view());
    baselines::charge_gemm(dev, m, 1, width, "gmres_update");
    for (idx i = 0; i < m; ++i) out.x[static_cast<std::size_t>(i)] += xcol(i, 0);
  }

  // Final residual.
  a.spmv(out.x.data(), r.data());
  for (idx i = 0; i < m; ++i) r[static_cast<std::size_t>(i)] = b[i] - r[static_cast<std::size_t>(i)];
  const double rn = static_cast<double>(nrm2(m, r.data())) / bnorm;
  out.residuals.push_back(rn);
  out.converged = rn < tol;
  return out;
}

}  // namespace caqr::krylov

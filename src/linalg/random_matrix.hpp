#pragma once

// Deterministic random test-matrix generators: Gaussian, prescribed
// condition number (via random orthogonal factors), and the planted
// low-rank-plus-sparse matrices used by the Robust PCA tests.

#include <cmath>
#include <vector>

#include "common/prng.hpp"
#include "linalg/blas3.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"

namespace caqr {

template <typename T>
Matrix<T> gaussian_matrix(idx rows, idx cols, std::uint64_t seed) {
  Matrix<T> a(rows, cols);
  // One stream per column keeps generation order-independent if ever
  // parallelized, and reproducible across matrix shapes sharing columns.
  for (idx j = 0; j < cols; ++j) {
    Rng rng(seed, static_cast<std::uint64_t>(j));
    T* col = a.view().col(j);
    for (idx i = 0; i < rows; ++i) col[i] = static_cast<T>(rng.normal());
  }
  return a;
}

// Random orthonormal columns: Q factor of a Gaussian matrix.
template <typename T>
Matrix<T> random_orthonormal(idx rows, idx cols, std::uint64_t seed) {
  CAQR_CHECK(cols <= rows);
  Matrix<T> g = gaussian_matrix<T>(rows, cols, seed);
  std::vector<T> tau(static_cast<std::size_t>(cols));
  geqrf(g.view(), tau.data());
  return form_q(g.view(), tau.data(), cols);
}

// A = U * diag(sigma) * V^T with log-uniform singular values spanning
// [1/cond, 1]; exercises the stability differences between Householder-based
// QR and CholeskyQR / Gram-Schmidt.
template <typename T>
Matrix<T> matrix_with_condition(idx rows, idx cols, double cond,
                                std::uint64_t seed) {
  CAQR_CHECK(cols <= rows && cond >= 1.0);
  Matrix<T> u = random_orthonormal<T>(rows, cols, seed);
  Matrix<T> v = random_orthonormal<T>(cols, cols, seed + 1);
  // Scale U's columns by sigma_i, then multiply by V^T.
  for (idx j = 0; j < cols; ++j) {
    const double t = cols > 1 ? static_cast<double>(j) / (cols - 1) : 0.0;
    const T sigma = static_cast<T>(std::pow(cond, -t));
    T* col = u.view().col(j);
    for (idx i = 0; i < rows; ++i) col[i] *= sigma;
  }
  Matrix<T> a = Matrix<T>::zeros(rows, cols);
  gemm(Trans::No, Trans::Yes, T(1), u.view(), v.view(), T(0), a.view());
  return a;
}

// Stress-test generator: prescribed condition number with a uniform column
// scaling applied afterwards, so the whole spectrum can be pushed into the
// subnormal (col_scale ~ 1e-300) or near-overflow (col_scale ~ 1e300)
// regime. With alternate_columns, only odd columns are scaled, mixing O(1)
// and extreme columns in one matrix — the hardest case for unguarded
// Householder generation. The double-precision scale is cast to T, so T ==
// float callers must keep |col_scale| inside float range.
template <typename T>
Matrix<T> stress_matrix(idx rows, idx cols, double cond, double col_scale,
                        std::uint64_t seed, bool alternate_columns = false) {
  Matrix<T> a = matrix_with_condition<T>(rows, cols, cond, seed);
  const T s = static_cast<T>(col_scale);
  for (idx j = 0; j < cols; ++j) {
    if (alternate_columns && j % 2 == 0) continue;
    scal(rows, s, a.view().col(j));
  }
  return a;
}

struct LowRankPlusSparse {
  idx rank = 0;
  double sparse_fraction = 0.0;   // fraction of entries that are corrupted
  double sparse_magnitude = 1.0;  // uniform [-mag, mag] corruption
};

template <typename T>
struct PlantedRpca {
  Matrix<T> observed;    // L + S
  Matrix<T> low_rank;    // planted L
  Matrix<T> sparse;      // planted S
};

// M = L + S with L = X Y^T (rank r, entries O(1/sqrt(mn))) and S sparse
// with uniformly random support — the Candes et al. recovery regime.
template <typename T>
PlantedRpca<T> planted_low_rank_plus_sparse(idx rows, idx cols,
                                            const LowRankPlusSparse& spec,
                                            std::uint64_t seed) {
  CAQR_CHECK(spec.rank >= 1 && spec.rank <= std::min(rows, cols));
  Matrix<T> x = gaussian_matrix<T>(rows, spec.rank, seed);
  Matrix<T> y = gaussian_matrix<T>(cols, spec.rank, seed + 1);
  const T scale = static_cast<T>(1.0 / std::sqrt(static_cast<double>(
                                            spec.rank) *
                                        std::sqrt(static_cast<double>(rows) *
                                                  static_cast<double>(cols))));
  PlantedRpca<T> out{Matrix<T>::zeros(rows, cols), Matrix<T>::zeros(rows, cols),
                     Matrix<T>::zeros(rows, cols)};
  gemm(Trans::No, Trans::Yes, T(1), x.view(), y.view(), T(0),
       out.low_rank.view());
  for (idx j = 0; j < cols; ++j) {
    T* col = out.low_rank.view().col(j);
    scal(rows, scale, col);
  }

  Rng rng(seed, 0x5A4B5Eull);  // dedicated stream for the sparse support
  for (idx j = 0; j < cols; ++j) {
    for (idx i = 0; i < rows; ++i) {
      if (rng.next_double() < spec.sparse_fraction) {
        out.sparse(i, j) = static_cast<T>(
            rng.uniform(-spec.sparse_magnitude, spec.sparse_magnitude));
      }
    }
  }
  for (idx j = 0; j < cols; ++j) {
    for (idx i = 0; i < rows; ++i) {
      out.observed(i, j) = out.low_rank(i, j) + out.sparse(i, j);
    }
  }
  return out;
}

}  // namespace caqr

#pragma once

// Column-major dense matrix container and non-owning views.
//
// Storage follows the LAPACK convention: element (i, j) lives at
// data[i + j * ld] with ld >= rows. Views are cheap value types; algorithms
// take views so they compose over sub-blocks without copying — the CAQR grid
// decomposition is expressed entirely through MatrixView::block().

#include <cstdint>
#include <type_traits>
#include <utility>

#include "common/aligned_buffer.hpp"
#include "common/check.hpp"

namespace caqr {

using idx = std::int64_t;

// Non-deduced-context alias: a parameter declared In<ConstMatrixView<T>>
// accepts ConstMatrixView<T> and MatrixView<T> (via implicit conversion)
// alike, with T deduced from the other arguments (scalars, tau pointers,
// or the output view).
template <typename T>
using In = typename std::type_identity<T>::type;

template <typename T>
class ConstMatrixView;
template <typename T>
class MatrixView;

// Scalar type of a view type, and a uniform read-only adapter so generic
// read-only functions (norms, SVD, extract_r) accept either view kind.
template <typename V>
struct view_traits;
template <typename T>
struct view_traits<ConstMatrixView<T>> {
  using scalar = T;
};
template <typename T>
struct view_traits<MatrixView<T>> {
  using scalar = T;
};
template <typename V>
using view_scalar_t = typename view_traits<std::remove_cvref_t<V>>::scalar;

template <typename V>
ConstMatrixView<view_scalar_t<V>> cview(const V& v) {
  return v;
}

template <typename T>
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const T* data, idx rows, idx cols, idx ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    CAQR_DCHECK(rows >= 0 && cols >= 0 && ld >= rows);
  }

  const T* data() const { return data_; }
  idx rows() const { return rows_; }
  idx cols() const { return cols_; }
  idx ld() const { return ld_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  const T& operator()(idx i, idx j) const {
    CAQR_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  // Pointer to the top of column j.
  const T* col(idx j) const {
    CAQR_DCHECK(j >= 0 && j < cols_);
    return data_ + j * ld_;
  }

  ConstMatrixView block(idx i0, idx j0, idx m, idx n) const {
    CAQR_DCHECK(i0 >= 0 && j0 >= 0 && m >= 0 && n >= 0);
    CAQR_DCHECK(i0 + m <= rows_ && j0 + n <= cols_);
    return ConstMatrixView(data_ + i0 + j0 * ld_, m, n, ld_);
  }

 private:
  const T* data_ = nullptr;
  idx rows_ = 0;
  idx cols_ = 0;
  idx ld_ = 0;
};

template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, idx rows, idx cols, idx ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    CAQR_DCHECK(rows >= 0 && cols >= 0 && ld >= rows);
  }

  operator ConstMatrixView<T>() const {
    return ConstMatrixView<T>(data_, rows_, cols_, ld_);
  }
  ConstMatrixView<T> as_const() const {
    return ConstMatrixView<T>(data_, rows_, cols_, ld_);
  }

  T* data() const { return data_; }
  idx rows() const { return rows_; }
  idx cols() const { return cols_; }
  idx ld() const { return ld_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  T& operator()(idx i, idx j) const {
    CAQR_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i + j * ld_];
  }

  T* col(idx j) const {
    CAQR_DCHECK(j >= 0 && j < cols_);
    return data_ + j * ld_;
  }

  MatrixView block(idx i0, idx j0, idx m, idx n) const {
    CAQR_DCHECK(i0 >= 0 && j0 >= 0 && m >= 0 && n >= 0);
    CAQR_DCHECK(i0 + m <= rows_ && j0 + n <= cols_);
    return MatrixView(data_ + i0 + j0 * ld_, m, n, ld_);
  }

  void fill(T value) const {
    for (idx j = 0; j < cols_; ++j) {
      T* c = col(j);
      for (idx i = 0; i < rows_; ++i) c[i] = value;
    }
  }

  void set_identity() const {
    fill(T(0));
    const idx k = rows_ < cols_ ? rows_ : cols_;
    for (idx i = 0; i < k; ++i) (*this)(i, i) = T(1);
  }

  void copy_from(ConstMatrixView<T> src) const {
    CAQR_CHECK(src.rows() == rows_ && src.cols() == cols_);
    for (idx j = 0; j < cols_; ++j) {
      T* dst = col(j);
      const T* s = src.col(j);
      for (idx i = 0; i < rows_; ++i) dst[i] = s[i];
    }
  }

 private:
  T* data_ = nullptr;
  idx rows_ = 0;
  idx cols_ = 0;
  idx ld_ = 0;
};

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(idx rows, idx cols) : rows_(rows), cols_(cols) {
    CAQR_CHECK(rows >= 0 && cols >= 0);
    buffer_.reset(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  }

  static Matrix zeros(idx rows, idx cols) {
    Matrix m(rows, cols);
    m.view().fill(T(0));
    return m;
  }

  static Matrix identity(idx rows, idx cols) {
    Matrix m(rows, cols);
    m.view().set_identity();
    return m;
  }

  static Matrix from(ConstMatrixView<T> src) {
    Matrix m(src.rows(), src.cols());
    m.view().copy_from(src);
    return m;
  }

  // Dimensions-only placeholder with NO backing storage, for
  // gpusim::ExecMode::ModelOnly simulations at scales whose data would not
  // fit in host memory (e.g. 1M x 8192 floats). Any arithmetic touching its
  // elements is undefined; only shape queries and cost accounting are valid.
  static Matrix shape_only(idx rows, idx cols) {
    Matrix m;
    CAQR_CHECK(rows >= 0 && cols >= 0);
    m.rows_ = rows;
    m.cols_ = cols;
    return m;
  }

  Matrix(Matrix&& other) noexcept
      : buffer_(std::move(other.buffer_)),
        rows_(std::exchange(other.rows_, 0)),
        cols_(std::exchange(other.cols_, 0)) {}
  Matrix& operator=(Matrix&& other) noexcept {
    if (this != &other) {
      buffer_ = std::move(other.buffer_);
      rows_ = std::exchange(other.rows_, 0);
      cols_ = std::exchange(other.cols_, 0);
    }
    return *this;
  }
  Matrix(const Matrix&) = delete;
  Matrix& operator=(const Matrix&) = delete;

  // Explicit deep copy; copying large matrices should be visible at call sites.
  Matrix clone() const { return from(view()); }

  idx rows() const { return rows_; }
  idx cols() const { return cols_; }
  idx ld() const { return rows_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  T* data() { return buffer_.data(); }
  const T* data() const { return buffer_.data(); }

  T& operator()(idx i, idx j) {
    CAQR_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return buffer_.data()[i + j * rows_];
  }
  const T& operator()(idx i, idx j) const {
    CAQR_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return buffer_.data()[i + j * rows_];
  }

  MatrixView<T> view() {
    return MatrixView<T>(buffer_.data(), rows_, cols_, rows_);
  }
  ConstMatrixView<T> view() const {
    return ConstMatrixView<T>(buffer_.data(), rows_, cols_, rows_);
  }
  ConstMatrixView<T> as_const() const { return view(); }

  MatrixView<T> block(idx i0, idx j0, idx m, idx n) {
    return view().block(i0, j0, m, n);
  }
  ConstMatrixView<T> block(idx i0, idx j0, idx m, idx n) const {
    return view().block(i0, j0, m, n);
  }

 private:
  AlignedBuffer<T> buffer_;
  idx rows_ = 0;
  idx cols_ = 0;
};

}  // namespace caqr

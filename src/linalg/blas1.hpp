#pragma once

// Vector (BLAS1) primitives over raw strided/contiguous spans.
//
// These are the scalar building blocks used inside Householder generation and
// the reference kernels. Loops are written so the compiler's auto-vectorizer
// handles the contiguous (stride-1) fast path.

#include <cmath>

#include "linalg/matrix.hpp"

namespace caqr {

template <typename T>
T dot(idx n, const T* x, const T* y) {
  T acc = T(0);
  for (idx i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

template <typename T>
T nrm2_squared(idx n, const T* x) {
  T acc = T(0);
  for (idx i = 0; i < n; ++i) acc += x[i] * x[i];
  return acc;
}

// Overflow/underflow-guarded two-norm (scaled accumulation, as in LAPACK's
// dnrm2). The guard matters for the ill-conditioned test matrices.
template <typename T>
T nrm2(idx n, const T* x) {
  T scale = T(0);
  T ssq = T(1);
  for (idx i = 0; i < n; ++i) {
    const T ax = std::abs(x[i]);
    if (ax == T(0)) continue;
    if (scale < ax) {
      const T r = scale / ax;
      ssq = T(1) + ssq * r * r;
      scale = ax;
    } else {
      const T r = ax / scale;
      ssq += r * r;
    }
  }
  return scale * std::sqrt(ssq);
}

template <typename T>
void axpy(idx n, T alpha, const T* x, T* y) {
  for (idx i = 0; i < n; ++i) y[i] += alpha * x[i];
}

template <typename T>
void scal(idx n, T alpha, T* x) {
  for (idx i = 0; i < n; ++i) x[i] *= alpha;
}

template <typename T>
void copy_n(idx n, const T* x, T* y) {
  for (idx i = 0; i < n; ++i) y[i] = x[i];
}

// Index of the element with the largest magnitude; -1 for empty input.
template <typename T>
idx iamax(idx n, const T* x) {
  idx best = n > 0 ? 0 : -1;
  T best_abs = n > 0 ? std::abs(x[0]) : T(0);
  for (idx i = 1; i < n; ++i) {
    const T a = std::abs(x[i]);
    if (a > best_abs) {
      best_abs = a;
      best = i;
    }
  }
  return best;
}

}  // namespace caqr

#pragma once

// Matrix-vector (BLAS2) primitives on column-major views.

#include "linalg/blas1.hpp"
#include "linalg/matrix.hpp"

namespace caqr {

// y := alpha * A * x + beta * y
template <typename T>
void gemv_n(T alpha, In<ConstMatrixView<T>> a, const T* x, T beta, T* y) {
  const idx m = a.rows(), n = a.cols();
  if (beta == T(0)) {
    for (idx i = 0; i < m; ++i) y[i] = T(0);
  } else if (beta != T(1)) {
    scal(m, beta, y);
  }
  for (idx j = 0; j < n; ++j) {
    const T axj = alpha * x[j];
    const T* col = a.col(j);
    for (idx i = 0; i < m; ++i) y[i] += axj * col[i];
  }
}

// y := alpha * A^T * x + beta * y
template <typename T>
void gemv_t(T alpha, In<ConstMatrixView<T>> a, const T* x, T beta, T* y) {
  const idx m = a.rows(), n = a.cols();
  for (idx j = 0; j < n; ++j) {
    const T s = dot(m, a.col(j), x);
    y[j] = alpha * s + (beta == T(0) ? T(0) : beta * y[j]);
  }
}

// A := A + alpha * x * y^T  (rank-1 update)
template <typename T>
void ger(T alpha, const T* x, const T* y, MatrixView<T> a) {
  const idx m = a.rows(), n = a.cols();
  for (idx j = 0; j < n; ++j) {
    const T ayj = alpha * y[j];
    T* col = a.col(j);
    for (idx i = 0; i < m; ++i) col[i] += ayj * x[i];
  }
}

// x := U * x for upper-triangular U (unit = unit diagonal assumed 1).
template <typename T>
void trmv_upper(In<ConstMatrixView<T>> u, T* x, bool unit_diag = false) {
  const idx n = u.rows();
  CAQR_DCHECK(u.cols() == n);
  for (idx i = 0; i < n; ++i) {
    T acc = unit_diag ? x[i] : u(i, i) * x[i];
    for (idx j = i + 1; j < n; ++j) acc += u(i, j) * x[j];
    x[i] = acc;
  }
}

// Solve U * x = b in place for upper-triangular U.
template <typename T>
void trsv_upper(In<ConstMatrixView<T>> u, T* x, bool unit_diag = false) {
  const idx n = u.rows();
  CAQR_DCHECK(u.cols() == n);
  for (idx i = n - 1; i >= 0; --i) {
    T acc = x[i];
    for (idx j = i + 1; j < n; ++j) acc -= u(i, j) * x[j];
    x[i] = unit_diag ? acc : acc / u(i, i);
  }
}

// Solve L * x = b in place for lower-triangular L.
template <typename T>
void trsv_lower(In<ConstMatrixView<T>> l, T* x, bool unit_diag = false) {
  const idx n = l.rows();
  CAQR_DCHECK(l.cols() == n);
  for (idx i = 0; i < n; ++i) {
    T acc = x[i];
    for (idx j = 0; j < i; ++j) acc -= l(i, j) * x[j];
    x[i] = unit_diag ? acc : acc / l(i, i);
  }
}

}  // namespace caqr

#pragma once

// Standard LAPACK operation counts used for GFLOP/s reporting. The paper
// reports SGEQRF-convention "useful" flops: algorithms that do extra work
// (TSQR's tree combines) are charged the same numerator, so their GFLOP/s is
// directly comparable — exactly how Figure 8/9 and Table I are computed.

#include "linalg/matrix.hpp"

namespace caqr {

// GEQRF: 2mn^2 - (2/3)n^3 for m >= n (plus lower-order terms, omitted as in
// standard reporting).
inline double geqrf_flop_count(idx m, idx n) {
  const double dm = static_cast<double>(m), dn = static_cast<double>(n);
  if (m >= n) return 2.0 * dm * dn * dn - (2.0 / 3.0) * dn * dn * dn;
  return 2.0 * dn * dm * dm - (2.0 / 3.0) * dm * dm * dm;
}

// ORGQR (form m x n Q from n reflectors): ~ 4mn^2/... standard count
// 2mn^2 - (2/3)n^3 as well for the thin factor.
inline double orgqr_flop_count(idx m, idx n) { return geqrf_flop_count(m, n); }

// GEMM: 2mnk.
inline double gemm_flop_count(idx m, idx n, idx k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

// Thin SVD via QR + small SVD + Q*U (the paper's pipeline, §VI.B).
inline double tall_skinny_svd_flop_count(idx m, idx n) {
  return geqrf_flop_count(m, n)            // A = QR
         + 12.0 * static_cast<double>(n) * static_cast<double>(n) *
               static_cast<double>(n)      // Jacobi SVD of R (rough)
         + gemm_flop_count(m, n, n);       // U' = Q * U
}

}  // namespace caqr

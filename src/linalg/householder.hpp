#pragma once

// Householder reflector generation and application (LAPACK larfg/larf
// conventions): H = I - tau * v * v^T with v[0] = 1 stored implicitly.
//
// Shared by the reference blocked QR, the TSQR structured factorizations and
// the simulated-GPU kernels, so every QR in the library eliminates columns
// with bit-identical reflectors — that is what makes cross-implementation
// R-comparison tests exact up to column signs.

#include <cmath>
#include <limits>
#include <type_traits>

#include "linalg/blas1.hpp"
#include "linalg/matrix.hpp"

namespace caqr {

// Generates a reflector that maps x = [alpha; x_rest] (length n) onto
// [beta; 0]. On return x_rest holds the tail of v (v[0] == 1 implicit),
// alpha holds beta, and tau is returned. n == 0 or an already-zero tail
// yields tau == 0 (H = I).
template <typename T>
T make_householder(idx n, T& alpha, T* x_rest) {
  if (n <= 1) return T(0);
  T xnorm = nrm2(n - 1, x_rest);
  if (xnorm == T(0)) return T(0);

  // beta = -sign(alpha) * ||[alpha; x]||  (LAPACK sign choice: avoids
  // cancellation in alpha - beta).
  T beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
  int rescales = 0;
  if constexpr (std::is_floating_point_v<T>) {
    // LAPACK xLARFG rescaling: when |beta| lands below safmin (the smallest
    // value whose reciprocal is exact), 1/(alpha - beta) would overflow and
    // subnormal columns would yield Inf tau/v. Scale the column up into safe
    // range, regenerate, and scale beta back down at the end.
    const T safmin =
        std::numeric_limits<T>::min() / std::numeric_limits<T>::epsilon();
    if (std::abs(beta) < safmin) {
      const T rsafmn = T(1) / safmin;
      do {
        ++rescales;
        scal(n - 1, rsafmn, x_rest);
        beta *= rsafmn;
        alpha *= rsafmn;
      } while (std::abs(beta) < safmin && rescales < 20);
      xnorm = nrm2(n - 1, x_rest);
      beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
    }
  }
  const T tau = (beta - alpha) / beta;
  const T inv = T(1) / (alpha - beta);
  scal(n - 1, inv, x_rest);
  if constexpr (std::is_floating_point_v<T>) {
    const T safmin =
        std::numeric_limits<T>::min() / std::numeric_limits<T>::epsilon();
    for (int k = 0; k < rescales; ++k) beta *= safmin;
  }
  alpha = beta;
  return tau;
}

// Applies H = I - tau * v * v^T from the left to C (m x n), where v has
// length m with v[0] == 1 implicit and tail v_rest. work must hold n scalars.
template <typename T>
void apply_householder_left(idx m, T tau, const T* v_rest, MatrixView<T> c,
                            T* work) {
  if (tau == T(0) || c.cols() == 0) return;
  CAQR_DCHECK(c.rows() == m);
  const idx n = c.cols();
  // w = C^T v  (v[0] == 1)
  for (idx j = 0; j < n; ++j) {
    const T* col = c.col(j);
    work[j] = col[0] + dot(m - 1, col + 1, v_rest);
  }
  // C -= tau * v * w^T
  for (idx j = 0; j < n; ++j) {
    T* col = c.col(j);
    const T tw = tau * work[j];
    col[0] -= tw;
    axpy(m - 1, -tw, v_rest, col + 1);
  }
}

}  // namespace caqr

#pragma once

// Golub-Kahan bidiagonalization (GEBRD-style) and the two-phase SVD built on
// it: A -> U_1 B V_1^T (Householder reflectors from both sides), then the
// small n x n bidiagonal B is diagonalized (here by one-sided Jacobi) and
// the factors are composed. For tall matrices this does the heavy O(mn^2)
// work in a finite pass instead of Jacobi's iterated sweeps over all of A —
// the classical structure of LAPACK's GESVD, with the bidiagonal QR
// iteration swapped for Jacobi on the (tiny) B.

#include <vector>

#include "linalg/blas2.hpp"
#include "linalg/householder.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace caqr {

template <typename T>
struct Bidiagonalization {
  Matrix<T> factored;    // left reflectors below the diagonal, right ones
                         // right of the superdiagonal
  std::vector<T> tauq;   // n left-reflector scalars
  std::vector<T> taup;   // n right-reflector scalars (last two unused)
  std::vector<T> d;      // n diagonal entries of B
  std::vector<T> e;      // n-1 superdiagonal entries of B
};

// Applies H = I - tau v v^T from the RIGHT to c (rows x len), v[0] == 1
// implicit with tail v_rest of length len-1.
template <typename T>
void apply_householder_right(idx len, T tau, const T* v_rest, MatrixView<T> c) {
  if (tau == T(0) || c.rows() == 0) return;
  CAQR_DCHECK(c.cols() == len);
  const idx m = c.rows();
  // w = C v; then C -= tau * w * v^T. Column-major: walk columns.
  std::vector<T> w(static_cast<std::size_t>(m));
  copy_n(m, c.col(0), w.data());
  for (idx j = 1; j < len; ++j) {
    axpy(m, v_rest[j - 1], c.col(j), w.data());
  }
  axpy(m, -tau, w.data(), c.col(0));
  for (idx j = 1; j < len; ++j) {
    axpy(m, -tau * v_rest[j - 1], w.data(), c.col(j));
  }
}

// In-place upper bidiagonalization of a (m >= n).
template <typename T>
Bidiagonalization<T> bidiagonalize(Matrix<T> a) {
  const idx m = a.rows(), n = a.cols();
  CAQR_CHECK(m >= n && n >= 1);
  Bidiagonalization<T> out{std::move(a),
                           std::vector<T>(static_cast<std::size_t>(n), T(0)),
                           std::vector<T>(static_cast<std::size_t>(n), T(0)),
                           std::vector<T>(static_cast<std::size_t>(n), T(0)),
                           std::vector<T>(static_cast<std::size_t>(n > 1 ? n - 1 : 0), T(0))};
  MatrixView<T> v = out.factored.view();
  std::vector<T> work(static_cast<std::size_t>(std::max(m, n)));

  for (idx k = 0; k < n; ++k) {
    // Left reflector annihilating below the diagonal of column k.
    T* colk = v.col(k) + k;
    out.tauq[static_cast<std::size_t>(k)] =
        make_householder(m - k, colk[0], colk + 1);
    if (k + 1 < n) {
      apply_householder_left(m - k, out.tauq[static_cast<std::size_t>(k)],
                             colk + 1, v.block(k, k + 1, m - k, n - k - 1),
                             work.data());
    }
    out.d[static_cast<std::size_t>(k)] = v(k, k);

    // Right reflector annihilating right of the superdiagonal of row k.
    if (k < n - 1) {
      // Row vector a(k, k+1:n): gather, reflect, scatter.
      const idx len = n - k - 1;
      std::vector<T> row(static_cast<std::size_t>(len));
      for (idx j = 0; j < len; ++j) row[static_cast<std::size_t>(j)] = v(k, k + 1 + j);
      out.taup[static_cast<std::size_t>(k)] =
          make_householder(len, row[0], row.data() + 1);
      v(k, k + 1) = row[0];
      for (idx j = 1; j < len; ++j) v(k, k + 1 + j) = row[static_cast<std::size_t>(j)];
      out.e[static_cast<std::size_t>(k)] = row[0];
      if (m - k - 1 > 0 && len > 1) {
        apply_householder_right(len, out.taup[static_cast<std::size_t>(k)],
                                row.data() + 1,
                                v.block(k + 1, k + 1, m - k - 1, len));
      }
    }
  }
  return out;
}

// Explicit m x n U_1 (product of left reflectors applied to identity).
template <typename T>
Matrix<T> form_u(const Bidiagonalization<T>& b) {
  const idx m = b.factored.rows(), n = b.factored.cols();
  Matrix<T> u = Matrix<T>::identity(m, n);
  std::vector<T> work(static_cast<std::size_t>(n));
  for (idx k = n - 1; k >= 0; --k) {
    apply_householder_left(m - k, b.tauq[static_cast<std::size_t>(k)],
                           b.factored.view().col(k) + k + 1,
                           u.view().block(k, 0, m - k, n), work.data());
    if (k == 0) break;
  }
  return u;
}

// Explicit n x n V_1 (product of right reflectors; reflector k lives in row
// k, columns k+2..n of the factored storage with implicit leading 1 at
// column k+1).
template <typename T>
Matrix<T> form_v(const Bidiagonalization<T>& b) {
  const idx n = b.factored.cols();
  Matrix<T> vmat = Matrix<T>::identity(n, n);
  std::vector<T> work(static_cast<std::size_t>(n));
  std::vector<T> tail(static_cast<std::size_t>(n));
  for (idx k = n - 3 >= 0 ? n - 3 : -1; k >= 0; --k) {
    const idx len = n - k - 1;  // reflector over rows k+1..n-1 of V
    for (idx j = 0; j < len - 1; ++j) {
      tail[static_cast<std::size_t>(j)] = b.factored(k, k + 2 + j);
    }
    apply_householder_left(len, b.taup[static_cast<std::size_t>(k)],
                           tail.data(), vmat.view().block(k + 1, 0, len, n),
                           work.data());
    if (k == 0) break;
  }
  return vmat;
}

// Two-phase thin SVD: bidiagonalize, diagonalize B, compose factors.
template <typename VA>
SvdResult<view_scalar_t<VA>> two_phase_svd(const VA& a_in, int max_sweeps = 60) {
  using T = view_scalar_t<VA>;
  const ConstMatrixView<T> a = cview(a_in);
  const idx m = a.rows(), n = a.cols();
  CAQR_CHECK(m >= n && n >= 1);

  auto bi = bidiagonalize(Matrix<T>::from(a));
  // Dense n x n bidiagonal B.
  auto bmat = Matrix<T>::zeros(n, n);
  for (idx i = 0; i < n; ++i) {
    bmat(i, i) = bi.d[static_cast<std::size_t>(i)];
    if (i + 1 < n) bmat(i, i + 1) = bi.e[static_cast<std::size_t>(i)];
  }
  auto small = jacobi_svd(bmat.view(), max_sweeps);

  SvdResult<T> out{Matrix<T>::zeros(m, n), std::move(small.sigma),
                   Matrix<T>::zeros(n, n), small.sweeps, small.converged};
  auto u1 = form_u(bi);
  auto v1 = form_v(bi);
  gemm(Trans::No, Trans::No, T(1), u1.view(), small.u.view(), T(0),
       out.u.view());
  gemm(Trans::No, Trans::No, T(1), v1.view(), small.v.view(), T(0),
       out.v.view());
  return out;
}

}  // namespace caqr

#pragma once

// Cholesky factorization (POTRF, upper variant) — the substrate for the
// CholeskyQR family. The paper cites CholeskyQR's instability as the reason
// general-purpose QR uses Householder reflectors; the tsqr/cholqr.hpp
// solvers built on this routine therefore need a TYPED breakdown result (the
// first non-positive pivot and its value), not a bare bool, so a failed Gram
// factorization can be reported and recovered from (fallback to Householder
// TSQR) instead of silently producing garbage.

#include <cmath>

#include "linalg/matrix.hpp"

namespace caqr {

// Outcome of potrf_upper_checked. A breakdown records WHERE the recursion
// left positive-definite territory: `pivot` is the first diagonal index whose
// Schur-complement pivot `value` was not a positive finite number. The
// min/max successful pivots give a cheap lower bound on cond(R) (for
// triangular R, max_k |r_kk| / min_k |r_kk| <= cond_2(R)), which the
// CholeskyQR picker and severity reporting use as a conditioning signal.
struct CholeskyBreakdown {
  idx pivot = -1;      // -1: no breakdown (factorization completed)
  double value = 0.0;  // offending pivot d (pre-sqrt) when pivot >= 0
  double min_pivot = 0.0;  // smallest successful sqrt'd pivot
  double max_pivot = 0.0;  // largest successful sqrt'd pivot

  bool ok() const { return pivot < 0; }
  // Lower bound on cond_2(R) from the diagonal extremes.
  double diag_cond() const {
    return (min_pivot > 0.0 && max_pivot > 0.0) ? max_pivot / min_pivot : 0.0;
  }
};

// In-place upper Cholesky: A = R^T R with R upper triangular in the upper
// part of a. On success the strictly-lower part is zeroed so the result is
// usable as R directly. On a non-positive (or non-finite) pivot the returned
// CholeskyBreakdown identifies it and `a` is left partially factored.
template <typename T>
[[nodiscard]] CholeskyBreakdown potrf_upper_checked(MatrixView<T> a) {
  const idx n = a.rows();
  CAQR_CHECK(a.cols() == n);
  CholeskyBreakdown out;
  for (idx k = 0; k < n; ++k) {
    T d = a(k, k);
    for (idx p = 0; p < k; ++p) d -= a(p, k) * a(p, k);
    // Rejects d <= 0, NaN, and +inf (an overflowed Gram matrix is just as
    // unusable as an indefinite one).
    if (!(d > T(0)) || !std::isfinite(static_cast<double>(d))) {
      out.pivot = k;
      out.value = static_cast<double>(d);
      return out;
    }
    const T rkk = std::sqrt(d);
    const double rv = static_cast<double>(rkk);
    if (k == 0 || rv < out.min_pivot) out.min_pivot = rv;
    if (k == 0 || rv > out.max_pivot) out.max_pivot = rv;
    a(k, k) = rkk;
    for (idx j = k + 1; j < n; ++j) {
      T s = a(k, j);
      for (idx p = 0; p < k; ++p) s -= a(p, k) * a(p, j);
      a(k, j) = s / rkk;
    }
  }
  // Zero the strictly-lower part so the result is usable as R^T R directly.
  for (idx j = 0; j < n; ++j) {
    for (idx i = j + 1; i < n; ++i) a(i, j) = T(0);
  }
  return out;
}

// Legacy bool interface (true = success), kept for callers that only need
// a did-it-factor answer.
template <typename T>
[[nodiscard]] bool potrf_upper(MatrixView<T> a) {
  return potrf_upper_checked(a).ok();
}

}  // namespace caqr

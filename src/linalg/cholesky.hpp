#pragma once

// Cholesky factorization (POTRF, upper variant) — the substrate for the
// CholeskyQR baseline whose instability the paper cites as the reason
// general-purpose QR uses Householder reflectors.

#include <cmath>

#include "linalg/matrix.hpp"

namespace caqr {

// In-place upper Cholesky: A = R^T R with R upper triangular in the upper
// part of a. Returns false if a non-positive pivot is hit (matrix not
// numerically positive definite), leaving a partially factored.
template <typename T>
[[nodiscard]] bool potrf_upper(MatrixView<T> a) {
  const idx n = a.rows();
  CAQR_CHECK(a.cols() == n);
  for (idx k = 0; k < n; ++k) {
    T d = a(k, k);
    for (idx p = 0; p < k; ++p) d -= a(p, k) * a(p, k);
    if (!(d > T(0))) return false;  // also rejects NaN
    const T rkk = std::sqrt(d);
    a(k, k) = rkk;
    for (idx j = k + 1; j < n; ++j) {
      T s = a(k, j);
      for (idx p = 0; p < k; ++p) s -= a(p, k) * a(p, j);
      a(k, j) = s / rkk;
    }
  }
  // Zero the strictly-lower part so the result is usable as R^T R directly.
  for (idx j = 0; j < n; ++j) {
    for (idx i = j + 1; i < n; ++i) a(i, j) = T(0);
  }
  return true;
}

}  // namespace caqr

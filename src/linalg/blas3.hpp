#pragma once

// Matrix-matrix (BLAS3) primitives on column-major views.
//
// gemm uses register-blocked micro-tiles with an L1-sized K loop so the
// functional simulation stays tractable on the host. These routines back the
// reference (LAPACK-style) blocked QR, the baselines' trailing updates, and
// everything downstream (SVD, RPCA); the simulated-GPU kernels have their own
// small-block implementations in src/kernels.

#include <algorithm>

#include "linalg/blas1.hpp"
#include "linalg/matrix.hpp"

namespace caqr {

enum class Trans { No, Yes };

namespace detail {

// C(mr x nr) += A(mr x k) * B(k x nr) with A,B addressed through lambdas.
// mr/nr small compile-time tile; accumulators live in registers.
template <typename T, int MR, int NR>
void gemm_micro(idx k, T alpha, const T* a, idx lda, const T* b, idx ldb, T* c,
                idx ldc) {
  T acc[MR][NR] = {};
  for (idx p = 0; p < k; ++p) {
    const T* ap = a + p * lda;
    const T* bp = b + p;
    for (int j = 0; j < NR; ++j) {
      const T bv = bp[j * ldb];
      for (int i = 0; i < MR; ++i) acc[i][j] += ap[i] * bv;
    }
  }
  for (int j = 0; j < NR; ++j) {
    for (int i = 0; i < MR; ++i) c[i + j * ldc] += alpha * acc[i][j];
  }
}

}  // namespace detail

// C := alpha * op(A) * op(B) + beta * C
template <typename T>
void gemm(Trans ta, Trans tb, T alpha, In<ConstMatrixView<T>> a,
          In<ConstMatrixView<T>> b, T beta, In<MatrixView<T>> c) {
  const idx m = c.rows();
  const idx n = c.cols();
  const idx k = (ta == Trans::No) ? a.cols() : a.rows();
  CAQR_CHECK((ta == Trans::No ? a.rows() : a.cols()) == m);
  CAQR_CHECK((tb == Trans::No ? b.rows() : b.cols()) == k);
  CAQR_CHECK((tb == Trans::No ? b.cols() : b.rows()) == n);

  if (beta == T(0)) {
    c.fill(T(0));
  } else if (beta != T(1)) {
    for (idx j = 0; j < n; ++j) scal(m, beta, c.col(j));
  }
  if (m == 0 || n == 0 || k == 0 || alpha == T(0)) return;

  // Fast path: no transposes — register-blocked micro-kernel.
  if (ta == Trans::No && tb == Trans::No) {
    constexpr int MR = 8, NR = 4;
    const idx mb = m / MR * MR;
    const idx nb = n / NR * NR;
    for (idx j = 0; j < nb; j += NR) {
      for (idx i = 0; i < mb; i += MR) {
        detail::gemm_micro<T, MR, NR>(k, alpha, a.data() + i, a.ld(),
                                      b.data() + j * b.ld(), b.ld(),
                                      c.data() + i + j * c.ld(), c.ld());
      }
      // Row remainder for this column stripe.
      for (idx i = mb; i < m; ++i) {
        for (idx jj = j; jj < j + NR; ++jj) {
          T acc = T(0);
          for (idx p = 0; p < k; ++p) acc += a(i, p) * b(p, jj);
          c(i, jj) += alpha * acc;
        }
      }
    }
    // Column remainder.
    for (idx j = nb; j < n; ++j) {
      T* cj = c.col(j);
      for (idx p = 0; p < k; ++p) {
        const T bv = alpha * b(p, j);
        const T* ap = a.col(p);
        for (idx i = 0; i < m; ++i) cj[i] += bv * ap[i];
      }
    }
    return;
  }

  // A^T * B: both operands are walked down contiguous columns (dot products).
  // This is the larfb workhorse (W := V^T C).
  if (ta == Trans::Yes && tb == Trans::No) {
    for (idx j = 0; j < n; ++j) {
      const T* bj = b.col(j);
      for (idx i = 0; i < m; ++i) {
        c(i, j) += alpha * dot(k, a.col(i), bj);
      }
    }
    return;
  }

  // A * B^T: saxpy form, contiguous column updates (C -= V W^T in larfb).
  if (ta == Trans::No && tb == Trans::Yes) {
    for (idx j = 0; j < n; ++j) {
      T* cj = c.col(j);
      for (idx p = 0; p < k; ++p) {
        const T bv = alpha * b(j, p);
        const T* ap = a.col(p);
        for (idx i = 0; i < m; ++i) cj[i] += bv * ap[i];
      }
    }
    return;
  }

  // General path (handles all transpose combinations and any alpha).
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      T acc = T(0);
      for (idx p = 0; p < k; ++p) {
        const T av = (ta == Trans::No) ? a(i, p) : a(p, i);
        const T bv = (tb == Trans::No) ? b(p, j) : b(j, p);
        acc += av * bv;
      }
      c(i, j) += alpha * acc;
    }
  }
}

// C := alpha * A^T * A + beta * C (upper triangle written, then mirrored).
template <typename T>
void syrk_t(T alpha, In<ConstMatrixView<T>> a, T beta, In<MatrixView<T>> c) {
  const idx n = a.cols();
  CAQR_CHECK(c.rows() == n && c.cols() == n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i <= j; ++i) {
      const T s = dot(a.rows(), a.col(i), a.col(j));
      const T v = alpha * s + (beta == T(0) ? T(0) : beta * c(i, j));
      c(i, j) = v;
      c(j, i) = v;
    }
  }
}

enum class Side { Left, Right };
enum class UpLo { Upper, Lower };

// B := op(T)^-1 * B (Left) or B * op(T)^-1 (Right) for triangular T.
template <typename T>
void trsm(Side side, UpLo uplo, Trans trans, In<ConstMatrixView<T>> t,
          MatrixView<T> b, bool unit_diag = false) {
  const idx n = t.rows();
  CAQR_CHECK(t.cols() == n);
  if (side == Side::Left) {
    CAQR_CHECK(b.rows() == n);
    for (idx j = 0; j < b.cols(); ++j) {
      T* x = b.col(j);
      if (uplo == UpLo::Upper && trans == Trans::No) {
        trsv_upper(t, x, unit_diag);
      } else if (uplo == UpLo::Lower && trans == Trans::No) {
        trsv_lower(t, x, unit_diag);
      } else if (uplo == UpLo::Upper && trans == Trans::Yes) {
        // U^T is lower triangular; solve row-wise forward.
        for (idx i = 0; i < n; ++i) {
          T acc = x[i];
          for (idx p = 0; p < i; ++p) acc -= t(p, i) * x[p];
          x[i] = unit_diag ? acc : acc / t(i, i);
        }
      } else {  // Lower, transposed: backward substitution, L^T(i,p) = L(p,i).
        for (idx i = n - 1; i >= 0; --i) {
          T acc = x[i];
          for (idx p = i + 1; p < n; ++p) acc -= t(p, i) * x[p];
          x[i] = unit_diag ? acc : acc / t(i, i);
        }
      }
    }
  } else {
    CAQR_CHECK(b.cols() == n);
    // Solve X * op(T) = B row by row: equivalent to op(T)^T X^T = B^T.
    for (idx i = 0; i < b.rows(); ++i) {
      if (uplo == UpLo::Upper && trans == Trans::No) {
        // x_j = (b_j - sum_{p<j} x_p T(p,j)) / T(j,j)
        for (idx j = 0; j < n; ++j) {
          T acc = b(i, j);
          for (idx p = 0; p < j; ++p) acc -= b(i, p) * t(p, j);
          b(i, j) = unit_diag ? acc : acc / t(j, j);
        }
      } else if (uplo == UpLo::Lower && trans == Trans::No) {
        for (idx j = n - 1; j >= 0; --j) {
          T acc = b(i, j);
          for (idx p = j + 1; p < n; ++p) acc -= b(i, p) * t(p, j);
          b(i, j) = unit_diag ? acc : acc / t(j, j);
        }
      } else if (uplo == UpLo::Upper && trans == Trans::Yes) {
        for (idx j = n - 1; j >= 0; --j) {
          T acc = b(i, j);
          for (idx p = j + 1; p < n; ++p) acc -= b(i, p) * t(j, p);
          b(i, j) = unit_diag ? acc : acc / t(j, j);
        }
      } else {  // Lower, transposed
        for (idx j = 0; j < n; ++j) {
          T acc = b(i, j);
          for (idx p = 0; p < j; ++p) acc -= b(i, p) * t(j, p);
          b(i, j) = unit_diag ? acc : acc / t(j, j);
        }
      }
    }
  }
}

// B := op(T) * B (Left) for triangular T, in place.
template <typename T>
void trmm_left(UpLo uplo, Trans trans, In<ConstMatrixView<T>> t, MatrixView<T> b,
               bool unit_diag = false) {
  const idx n = t.rows();
  CAQR_CHECK(t.cols() == n && b.rows() == n);
  for (idx j = 0; j < b.cols(); ++j) {
    T* x = b.col(j);
    if (uplo == UpLo::Upper && trans == Trans::No) {
      trmv_upper(t, x, unit_diag);
    } else if (uplo == UpLo::Lower && trans == Trans::No) {
      for (idx i = n - 1; i >= 0; --i) {
        T acc = unit_diag ? x[i] : t(i, i) * x[i];
        for (idx p = 0; p < i; ++p) acc += t(i, p) * x[p];
        x[i] = acc;
      }
    } else if (uplo == UpLo::Upper && trans == Trans::Yes) {
      for (idx i = n - 1; i >= 0; --i) {
        T acc = unit_diag ? x[i] : t(i, i) * x[i];
        for (idx p = 0; p < i; ++p) acc += t(p, i) * x[p];
        x[i] = acc;
      }
    } else {  // Lower, transposed
      for (idx i = 0; i < n; ++i) {
        T acc = unit_diag ? x[i] : t(i, i) * x[i];
        for (idx p = i + 1; p < n; ++p) acc += t(p, i) * x[p];
        x[i] = acc;
      }
    }
  }
}

}  // namespace caqr

#pragma once

// Matrix norms and the error metrics used by the test-suite invariants:
// factorization residual, orthogonality defect, and R-vs-R comparison up to
// column signs (Householder QR determines R only up to the sign of each row).

#include <cmath>

#include "linalg/blas3.hpp"
#include "linalg/matrix.hpp"

namespace caqr {

template <typename VA>
double frobenius_norm(const VA& a_in) {
  const auto a = cview(a_in);
  using T = view_scalar_t<VA>;
  double acc = 0.0;
  for (idx j = 0; j < a.cols(); ++j) {
    const T* col = a.col(j);
    for (idx i = 0; i < a.rows(); ++i) {
      acc += static_cast<double>(col[i]) * static_cast<double>(col[i]);
    }
  }
  return std::sqrt(acc);
}

template <typename VA>
double max_abs(const VA& a_in) {
  const auto a = cview(a_in);
  using T = view_scalar_t<VA>;
  double best = 0.0;
  for (idx j = 0; j < a.cols(); ++j) {
    const T* col = a.col(j);
    for (idx i = 0; i < a.rows(); ++i) {
      best = std::max(best, std::fabs(static_cast<double>(col[i])));
    }
  }
  return best;
}

// ||Q^T Q - I||_F, computed in double regardless of T.
template <typename VQ>
double orthogonality_error(const VQ& q_in) {
  const auto q = cview(q_in);
  using T = view_scalar_t<VQ>;
  const idx n = q.cols();
  double acc = 0.0;
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i <= j; ++i) {
      double s = 0.0;
      const T* ci = q.col(i);
      const T* cj = q.col(j);
      for (idx r = 0; r < q.rows(); ++r) {
        s += static_cast<double>(ci[r]) * static_cast<double>(cj[r]);
      }
      if (i == j) s -= 1.0;
      acc += (i == j ? 1.0 : 2.0) * s * s;
    }
  }
  return std::sqrt(acc);
}

// ||A - Q R||_F / ||A||_F, computed in double.
template <typename VA, typename VQ, typename VR>
double factorization_residual(const VA& a_in, const VQ& q_in, const VR& r_in) {
  const auto a = cview(a_in);
  const auto q = cview(q_in);
  const auto r = cview(r_in);
  CAQR_CHECK(q.rows() == a.rows() && r.cols() == a.cols());
  CAQR_CHECK(q.cols() == r.rows());
  double num = 0.0;
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      double s = 0.0;
      const idx kk = std::min<idx>(r.rows(), j + 1);  // R upper triangular
      for (idx p = 0; p < kk; ++p) {
        s += static_cast<double>(q(i, p)) * static_cast<double>(r(p, j));
      }
      const double d = static_cast<double>(a(i, j)) - s;
      num += d * d;
    }
  }
  const double den = frobenius_norm(a);
  return den > 0.0 ? std::sqrt(num) / den : std::sqrt(num);
}

// Relative difference between two R factors after aligning row signs to the
// first: returns max_ij |R1 - S R2| / max|R1| where S = diag(+-1).
template <typename V1, typename V2>
double r_factor_difference(const V1& r1_in, const V2& r2_in) {
  const auto r1 = cview(r1_in);
  const auto r2 = cview(r2_in);
  CAQR_CHECK(r1.rows() == r2.rows() && r1.cols() == r2.cols());
  const idx n = r1.rows();
  const double scale = max_abs(r1);
  double worst = 0.0;
  for (idx i = 0; i < n; ++i) {
    // Align using the diagonal entry (largest-magnitude row representative).
    const double d1 = static_cast<double>(r1(i, i));
    const double d2 = static_cast<double>(r2(i, i));
    const double sign = (d1 < 0) == (d2 < 0) ? 1.0 : -1.0;
    for (idx j = i; j < r1.cols(); ++j) {
      const double diff = std::fabs(static_cast<double>(r1(i, j)) -
                                    sign * static_cast<double>(r2(i, j)));
      worst = std::max(worst, diff);
    }
  }
  return scale > 0.0 ? worst / scale : worst;
}

}  // namespace caqr

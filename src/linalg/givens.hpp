#pragma once

// Givens-rotation QR — the other numerically stable QR family §II mentions
// ("most general-purpose software for QR uses either Givens rotations or
// Householder reflectors"). Included as a reference baseline: rotations
// touch two rows at a time, which makes them attractive for sparse or
// structured eliminations (and for the stacked-triangle combines TSQR does
// with Householder here), but dense column elimination costs ~50% more
// flops than Householder.

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"

namespace caqr {

template <typename T>
struct GivensRotation {
  T c = T(1);
  T s = T(0);
};

// Computes c, s with [c s; -s c]^T [a; b] = [r; 0], returning r.
// Stable formulation (no overflow for large |a|, |b|).
template <typename T>
GivensRotation<T> make_givens(T a, T b, T& r) {
  GivensRotation<T> g;
  if (b == T(0)) {
    g.c = T(1);
    g.s = T(0);
    r = a;
  } else if (a == T(0)) {
    g.c = T(0);
    g.s = T(1);
    r = b;
  } else if (std::abs(b) > std::abs(a)) {
    const T t = a / b;
    const T u = std::sqrt(T(1) + t * t) * (b > T(0) ? T(1) : T(-1));
    g.s = T(1) / u;
    g.c = g.s * t;
    r = b * u;
  } else {
    const T t = b / a;
    const T u = std::sqrt(T(1) + t * t) * (a > T(0) ? T(1) : T(-1));
    g.c = T(1) / u;
    g.s = g.c * t;
    r = a * u;
  }
  return g;
}

// Applies the rotation to rows (i, k) of a, columns [j0, cols).
template <typename T>
void apply_givens_rows(MatrixView<T> a, idx i, idx k,
                       const GivensRotation<T>& g, idx j0 = 0) {
  for (idx j = j0; j < a.cols(); ++j) {
    const T ai = a(i, j);
    const T ak = a(k, j);
    a(i, j) = g.c * ai + g.s * ak;
    a(k, j) = -g.s * ai + g.c * ak;
  }
}

// Full Givens QR: returns Q (m x n, accumulated rotations applied to the
// identity) and leaves R in the upper triangle of a.
template <typename T>
Matrix<T> givens_qr(MatrixView<T> a) {
  const idx m = a.rows(), n = a.cols();
  Matrix<T> q = Matrix<T>::identity(m, m);
  for (idx j = 0; j < std::min(m - 1, n); ++j) {
    for (idx i = m - 1; i > j; --i) {
      if (a(i, j) == T(0)) continue;
      T r;
      const auto g = make_givens(a(j, j), a(i, j), r);
      a(j, j) = r;
      a(i, j) = T(0);
      // Update the trailing columns of the two touched rows.
      for (idx col = j + 1; col < n; ++col) {
        const T aj = a(j, col);
        const T ai = a(i, col);
        a(j, col) = g.c * aj + g.s * ai;
        a(i, col) = -g.s * aj + g.c * ai;
      }
      // Accumulate into Q (columns j and i of Q^T -> rows of Q).
      for (idx rrow = 0; rrow < m; ++rrow) {
        const T qj = q(rrow, j);
        const T qi = q(rrow, i);
        q(rrow, j) = g.c * qj + g.s * qi;
        q(rrow, i) = -g.s * qj + g.c * qi;
      }
    }
  }
  // Thin Q: first n columns.
  Matrix<T> thin(m, n);
  thin.view().copy_from(q.view().block(0, 0, m, n));
  return thin;
}

// 1-norm condition estimate of an upper-triangular R (Higham-style power
// iteration on |R^-1|: a few forward/backward solves). Returns
// kappa_1(R) ~ ||R||_1 * ||R^-1||_1 (a lower bound, usually tight).
template <typename VR>
double condition_estimate_upper(const VR& r_in, int iterations = 5) {
  using T = view_scalar_t<VR>;
  const ConstMatrixView<T> r = cview(r_in);
  const idx n = r.rows();
  CAQR_CHECK(r.cols() == n && n >= 1);

  // ||R||_1: max column sum of the triangle.
  double norm_r = 0;
  for (idx j = 0; j < n; ++j) {
    double s = 0;
    for (idx i = 0; i <= j; ++i) s += std::abs(static_cast<double>(r(i, j)));
    norm_r = std::max(norm_r, s);
  }

  // Estimate ||R^-1||_1 by the classic x <- R^-1 sign-vector iteration.
  std::vector<double> x(static_cast<std::size_t>(n), 1.0 / static_cast<double>(n));
  double est = 0;
  for (int it = 0; it < iterations; ++it) {
    // y = R^-1 x (back substitution in double).
    std::vector<double> y(x);
    for (idx i = n - 1; i >= 0; --i) {
      double acc = y[static_cast<std::size_t>(i)];
      for (idx j = i + 1; j < n; ++j) {
        acc -= static_cast<double>(r(i, j)) * y[static_cast<std::size_t>(j)];
      }
      const double d = static_cast<double>(r(i, i));
      if (d == 0.0) return std::numeric_limits<double>::infinity();
      y[static_cast<std::size_t>(i)] = acc / d;
    }
    double norm_y = 0;
    for (const double v : y) norm_y += std::abs(v);
    est = std::max(est, norm_y);

    // z = R^-T sign(y) (forward substitution), next x = e_{argmax |z|}.
    std::vector<double> z(static_cast<std::size_t>(n));
    for (idx i = 0; i < n; ++i) {
      double acc = y[static_cast<std::size_t>(i)] >= 0 ? 1.0 : -1.0;
      for (idx j = 0; j < i; ++j) {
        acc -= static_cast<double>(r(j, i)) * z[static_cast<std::size_t>(j)];
      }
      const double d = static_cast<double>(r(i, i));
      if (d == 0.0) return std::numeric_limits<double>::infinity();
      z[static_cast<std::size_t>(i)] = acc / d;
    }
    idx best = 0;
    for (idx i = 1; i < n; ++i) {
      if (std::abs(z[static_cast<std::size_t>(i)]) >
          std::abs(z[static_cast<std::size_t>(best)])) {
        best = i;
      }
    }
    std::fill(x.begin(), x.end(), 0.0);
    x[static_cast<std::size_t>(best)] = 1.0;
  }
  return norm_r * est;
}

}  // namespace caqr

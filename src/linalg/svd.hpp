#pragma once

// One-sided Jacobi SVD for small dense matrices (m >= n).
//
// This is the "small SVD of R" in the paper's tall-skinny SVD pipeline
// (A = QR, R = U Σ V^T, left vectors = Q U). One-sided Jacobi orthogonalizes
// the columns of a working copy W (initially A) by plane rotations while
// accumulating them into V; on convergence the column norms are the singular
// values and the normalized columns are U. Accurate to high relative
// precision for the well-scaled R factors this library produces.

#include <cmath>
#include <limits>
#include <vector>

#include "linalg/blas1.hpp"
#include "linalg/matrix.hpp"
#include "numerics/finite_check.hpp"

namespace caqr {

template <typename T>
struct SvdResult {
  Matrix<T> u;              // m x n, orthonormal columns
  std::vector<T> sigma;     // n, descending
  Matrix<T> v;              // n x n, orthogonal
  int sweeps = 0;           // Jacobi sweeps until convergence
  bool converged = false;
};

// Computes the thin SVD of a (m x n, m >= n) by one-sided Jacobi.
template <typename VA>
SvdResult<view_scalar_t<VA>> jacobi_svd(const VA& a_in, int max_sweeps = 60) {
  using T = view_scalar_t<VA>;
  const ConstMatrixView<T> a = cview(a_in);
  const idx m = a.rows(), n = a.cols();
  CAQR_CHECK(m >= n);

  CAQR_GUARD_FINITE(a, "jacobi_svd:input");
  SvdResult<T> out{Matrix<T>::from(a), std::vector<T>(static_cast<std::size_t>(n)),
                   Matrix<T>::identity(n, n), 0, false};
  MatrixView<T> w = out.u.view();
  MatrixView<T> v = out.v.view();

  // Equilibrate extreme inputs to a safe range: the rotations work on
  // squared column norms, which overflow/underflow for max|A| outside
  // roughly [2^-256, 2^256] even when A itself is representable. Scaling by
  // an exact power of two keeps every rotation bit-identical and scales the
  // singular values exactly; well-scaled inputs are untouched.
  T inv_scale = T(1);
  {
    double s = 0.0;
    for (idx j = 0; j < n; ++j) {
      const T* col = w.col(j);
      for (idx i = 0; i < m; ++i) {
        const double ax = std::abs(static_cast<double>(col[i]));
        if (ax > s) s = ax;
      }
    }
    const int e = s > 0.0 ? std::ilogb(s) : 0;
    if (e > 256 || e < -256) {
      const T f = static_cast<T>(std::exp2(static_cast<double>(-e)));
      for (idx j = 0; j < n; ++j) scal(m, f, w.col(j));
      inv_scale = T(1) / f;
    }
  }

  const T eps = std::numeric_limits<T>::epsilon();
  // Convergence: all column pairs orthogonal to machine precision relative
  // to the product of their norms.
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (idx p = 0; p < n - 1; ++p) {
      for (idx q = p + 1; q < n; ++q) {
        T* wp = w.col(p);
        T* wq = w.col(q);
        const T apq = dot(m, wp, wq);
        const T app = nrm2_squared(m, wp);
        const T aqq = nrm2_squared(m, wq);
        // Threshold as a product of square roots: app * aqq overflows (or
        // underflows to 0, disabling convergence) for extreme column norms
        // even when the threshold itself is representable.
        if (std::abs(apq) <= eps * std::sqrt(app) * std::sqrt(aqq) ||
            apq == T(0)) {
          continue;
        }
        rotated = true;
        // Jacobi rotation zeroing the (p, q) Gram entry.
        const T zeta = (aqq - app) / (T(2) * apq);
        const T t = std::copysign(
            T(1) / (std::abs(zeta) + std::sqrt(T(1) + zeta * zeta)), zeta);
        const T c = T(1) / std::sqrt(T(1) + t * t);
        const T s = c * t;
        for (idx i = 0; i < m; ++i) {
          const T wi = wp[i];
          wp[i] = c * wi - s * wq[i];
          wq[i] = s * wi + c * wq[i];
        }
        T* vp = v.col(p);
        T* vq = v.col(q);
        for (idx i = 0; i < n; ++i) {
          const T vi = vp[i];
          vp[i] = c * vi - s * vq[i];
          vq[i] = s * vi + c * vq[i];
        }
      }
    }
    out.sweeps = sweep + 1;
    if (!rotated) {
      out.converged = true;
      break;
    }
  }

  // Column norms -> singular values (undoing the equilibration); normalize
  // U columns (zero-safe).
  for (idx j = 0; j < n; ++j) {
    T* wj = w.col(j);
    const T sj = nrm2(m, wj);
    out.sigma[static_cast<std::size_t>(j)] = sj * inv_scale;
    if (sj > T(0)) scal(m, T(1) / sj, wj);
  }

  // Sort descending by sigma (selection sort; n is small), permuting U and V.
  for (idx i = 0; i < n; ++i) {
    idx best = i;
    for (idx j = i + 1; j < n; ++j) {
      if (out.sigma[static_cast<std::size_t>(j)] >
          out.sigma[static_cast<std::size_t>(best)]) {
        best = j;
      }
    }
    if (best != i) {
      std::swap(out.sigma[static_cast<std::size_t>(i)],
                out.sigma[static_cast<std::size_t>(best)]);
      for (idx r = 0; r < m; ++r) std::swap(w(r, i), w(r, best));
      for (idx r = 0; r < n; ++r) std::swap(v(r, i), v(r, best));
    }
  }
  CAQR_GUARD_FINITE(out.u.view(), "jacobi_svd:u");
  CAQR_GUARD_FINITE(out.v.view(), "jacobi_svd:v");
  return out;
}

}  // namespace caqr

#pragma once

// One-sided Jacobi SVD for small dense matrices (m >= n).
//
// This is the "small SVD of R" in the paper's tall-skinny SVD pipeline
// (A = QR, R = U Σ V^T, left vectors = Q U). One-sided Jacobi orthogonalizes
// the columns of a working copy W (initially A) by plane rotations while
// accumulating them into V; on convergence the column norms are the singular
// values and the normalized columns are U. Accurate to high relative
// precision for the well-scaled R factors this library produces.

#include <cmath>
#include <limits>
#include <vector>

#include "linalg/blas1.hpp"
#include "linalg/matrix.hpp"

namespace caqr {

template <typename T>
struct SvdResult {
  Matrix<T> u;              // m x n, orthonormal columns
  std::vector<T> sigma;     // n, descending
  Matrix<T> v;              // n x n, orthogonal
  int sweeps = 0;           // Jacobi sweeps until convergence
  bool converged = false;
};

// Computes the thin SVD of a (m x n, m >= n) by one-sided Jacobi.
template <typename VA>
SvdResult<view_scalar_t<VA>> jacobi_svd(const VA& a_in, int max_sweeps = 60) {
  using T = view_scalar_t<VA>;
  const ConstMatrixView<T> a = cview(a_in);
  const idx m = a.rows(), n = a.cols();
  CAQR_CHECK(m >= n);

  SvdResult<T> out{Matrix<T>::from(a), std::vector<T>(static_cast<std::size_t>(n)),
                   Matrix<T>::identity(n, n), 0, false};
  MatrixView<T> w = out.u.view();
  MatrixView<T> v = out.v.view();

  const T eps = std::numeric_limits<T>::epsilon();
  // Convergence: all column pairs orthogonal to machine precision relative
  // to the product of their norms.
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (idx p = 0; p < n - 1; ++p) {
      for (idx q = p + 1; q < n; ++q) {
        T* wp = w.col(p);
        T* wq = w.col(q);
        const T apq = dot(m, wp, wq);
        const T app = nrm2_squared(m, wp);
        const T aqq = nrm2_squared(m, wq);
        if (std::abs(apq) <= eps * std::sqrt(app * aqq) || apq == T(0)) {
          continue;
        }
        rotated = true;
        // Jacobi rotation zeroing the (p, q) Gram entry.
        const T zeta = (aqq - app) / (T(2) * apq);
        const T t = std::copysign(
            T(1) / (std::abs(zeta) + std::sqrt(T(1) + zeta * zeta)), zeta);
        const T c = T(1) / std::sqrt(T(1) + t * t);
        const T s = c * t;
        for (idx i = 0; i < m; ++i) {
          const T wi = wp[i];
          wp[i] = c * wi - s * wq[i];
          wq[i] = s * wi + c * wq[i];
        }
        T* vp = v.col(p);
        T* vq = v.col(q);
        for (idx i = 0; i < n; ++i) {
          const T vi = vp[i];
          vp[i] = c * vi - s * vq[i];
          vq[i] = s * vi + c * vq[i];
        }
      }
    }
    out.sweeps = sweep + 1;
    if (!rotated) {
      out.converged = true;
      break;
    }
  }

  // Column norms -> singular values; normalize U columns (zero-safe).
  for (idx j = 0; j < n; ++j) {
    T* wj = w.col(j);
    const T sj = nrm2(m, wj);
    out.sigma[static_cast<std::size_t>(j)] = sj;
    if (sj > T(0)) scal(m, T(1) / sj, wj);
  }

  // Sort descending by sigma (selection sort; n is small), permuting U and V.
  for (idx i = 0; i < n; ++i) {
    idx best = i;
    for (idx j = i + 1; j < n; ++j) {
      if (out.sigma[static_cast<std::size_t>(j)] >
          out.sigma[static_cast<std::size_t>(best)]) {
        best = j;
      }
    }
    if (best != i) {
      std::swap(out.sigma[static_cast<std::size_t>(i)],
                out.sigma[static_cast<std::size_t>(best)]);
      for (idx r = 0; r < m; ++r) std::swap(w(r, i), w(r, best));
      for (idx r = 0; r < n; ++r) std::swap(v(r, i), v(r, best));
    }
  }
  return out;
}

}  // namespace caqr

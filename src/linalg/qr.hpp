#pragma once

// Reference Householder QR in LAPACK form: unblocked GEQR2, compact-WY
// blocked GEQRF (LARFT/LARFB), explicit-Q generation (ORGQR) and Q
// application (UNMQR-style). These serve three roles:
//   1. the gold standard the CAQR/TSQR tests compare against,
//   2. the panel factorization inside the baseline blocked-Householder QRs,
//   3. the small-block QR inside the simulated-GPU `factor` kernels.

#include <vector>

#include "linalg/blas2.hpp"
#include "linalg/blas3.hpp"
#include "linalg/householder.hpp"
#include "linalg/matrix.hpp"
#include "numerics/finite_check.hpp"

namespace caqr {

// Unblocked Householder QR (GEQR2). On return, R sits in the upper triangle
// of A and the Householder vectors (v[0]=1 implicit) below the diagonal.
// tau must hold min(m, n) entries. work must hold n scalars.
template <typename T>
void geqr2(MatrixView<T> a, T* tau, T* work) {
  const idx m = a.rows(), n = a.cols();
  const idx kmax = m < n ? m : n;
  for (idx k = 0; k < kmax; ++k) {
    T* colk = a.col(k) + k;
    tau[k] = make_householder(m - k, colk[0], colk + 1);
    if (k + 1 < n) {
      apply_householder_left(m - k, tau[k], colk + 1,
                             a.block(k, k + 1, m - k, n - k - 1), work);
    }
  }
}

// Forms the upper-triangular block-reflector factor T (LARFT, forward
// columnwise): Q = I - V T V^T for V the unit-lower-trapezoidal reflectors
// stored in a's lower part. t is k x k.
template <typename T>
void larft(In<ConstMatrixView<T>> a, const T* tau, In<MatrixView<T>> t) {
  const idx m = a.rows();
  const idx k = a.cols();
  CAQR_CHECK(t.rows() == k && t.cols() == k);
  t.fill(T(0));
  for (idx i = 0; i < k; ++i) {
    t(i, i) = tau[i];
    if (i == 0 || tau[i] == T(0)) continue;
    // t(0:i, i) = -tau[i] * V(:, 0:i)^T * v_i, with v_i = [0..0, 1, a(i+1:,i)]
    for (idx j = 0; j < i; ++j) {
      // V(:, j) has implicit 1 at row j; rows overlap with v_i from row i on.
      T acc = a(i, j);  // row i of column j times v_i[i] == 1
      for (idx r = i + 1; r < m; ++r) acc += a(r, j) * a(r, i);
      t(j, i) = -tau[i] * acc;
    }
    // t(0:i, i) = T(0:i, 0:i) * t(0:i, i)
    trmv_upper(t.as_const().block(0, 0, i, i), t.col(i));
  }
}

// Applies (I - V T V^T)^op from the left to C (LARFB, forward columnwise,
// V unit-lower-trapezoidal m x k stored in a). trans == Yes applies Q^T.
template <typename T>
void larfb_left(In<ConstMatrixView<T>> a, In<ConstMatrixView<T>> t, Trans trans,
                MatrixView<T> c) {
  const idx m = a.rows();
  const idx k = a.cols();
  const idx n = c.cols();
  CAQR_CHECK(c.rows() == m);
  if (n == 0 || k == 0) return;

  // W = V^T * C  (k x n); V's top k x k part is unit lower triangular.
  Matrix<T> w = Matrix<T>::zeros(k, n);
  // W += V1^T * C1 with V1 unit lower triangular (k x k).
  for (idx j = 0; j < n; ++j) {
    const T* cj = c.col(j);
    for (idx i = 0; i < k; ++i) {
      T acc = cj[i];  // diagonal 1
      for (idx r = i + 1; r < k; ++r) acc += a(r, i) * cj[r];
      w(i, j) = acc;
    }
  }
  // W += V2^T * C2 for the rectangular part below.
  if (m > k) {
    gemm(Trans::Yes, Trans::No, T(1), a.block(k, 0, m - k, k),
         c.as_const().block(k, 0, m - k, n), T(1), w.view());
  }
  // W := op(T) * W
  trmm_left(UpLo::Upper, trans == Trans::Yes ? Trans::Yes : Trans::No,
            t, w.view());
  // C -= V * W
  if (m > k) {
    gemm(Trans::No, Trans::No, T(-1), a.block(k, 0, m - k, k), w.view(), T(1),
         c.block(k, 0, m - k, n));
  }
  // C1 -= V1 * W with V1 unit lower triangular (k x k).
  for (idx j = 0; j < n; ++j) {
    T* cj = c.col(j);
    for (idx i = k - 1; i >= 0; --i) {
      T acc = w(i, j);
      for (idx r = 0; r < i; ++r) acc += a(i, r) * w(r, j);
      cj[i] -= acc;
    }
  }
}

// Blocked Householder QR (GEQRF) with panel width nb.
template <typename T>
void geqrf(MatrixView<T> a, T* tau, idx nb = 32) {
  CAQR_GUARD_FINITE(a, "geqrf:input");
  const idx m = a.rows(), n = a.cols();
  const idx kmax = m < n ? m : n;
  std::vector<T> work(static_cast<std::size_t>(n > 0 ? n : 1));
  Matrix<T> t(nb, nb);
  for (idx k = 0; k < kmax; k += nb) {
    const idx kb = std::min(nb, kmax - k);
    auto panel = a.block(k, k, m - k, kb);
    geqr2(panel, tau + k, work.data());
    if (k + kb < n) {
      larft(panel.as_const(), tau + k, t.block(0, 0, kb, kb));
      larfb_left(panel.as_const(), t.as_const().block(0, 0, kb, kb),
                 Trans::Yes, a.block(k, k + kb, m - k, n - k - kb));
    }
  }
  CAQR_GUARD_FINITE(a, "geqrf:output");
}

// Applies Q (or Q^T) of a GEQRF factorization to C from the left (UNMQR).
// a holds the reflectors (m x k), tau the scalar factors.
template <typename T>
void apply_q_left(In<ConstMatrixView<T>> a, const T* tau, Trans trans,
                  In<MatrixView<T>> c, idx nb = 32) {
  const idx m = a.rows();
  const idx k = a.cols();
  CAQR_CHECK(c.rows() == m);
  Matrix<T> t(nb, nb);
  if (trans == Trans::Yes) {
    // Q^T = H_k ... H_1 applied forward.
    for (idx p = 0; p < k; p += nb) {
      const idx pb = std::min(nb, k - p);
      auto v = a.block(p, p, m - p, pb);
      larft(v, tau + p, t.block(0, 0, pb, pb));
      larfb_left(v, t.as_const().block(0, 0, pb, pb), Trans::Yes,
                 c.block(p, 0, m - p, c.cols()));
    }
  } else {
    // Q = H_1 ... H_k applied backward.
    idx p0 = ((k - 1) / nb) * nb;
    for (idx p = p0; p >= 0; p -= nb) {
      const idx pb = std::min(nb, k - p);
      auto v = a.block(p, p, m - p, pb);
      larft(v, tau + p, t.block(0, 0, pb, pb));
      larfb_left(v, t.as_const().block(0, 0, pb, pb), Trans::No,
                 c.block(p, 0, m - p, c.cols()));
      if (p == 0) break;
    }
  }
}

// Forms the explicit m x k orthogonal factor Q of a GEQRF result (ORGQR).
template <typename T>
Matrix<T> form_q(In<ConstMatrixView<T>> a, const T* tau, idx qcols) {
  const idx m = a.rows();
  CAQR_CHECK(qcols <= m);
  Matrix<T> q = Matrix<T>::identity(m, qcols);
  const idx k = std::min(a.cols(), qcols);
  apply_q_left(a.block(0, 0, m, k), tau, Trans::No, q.view());
  return q;
}

// Extracts the upper-triangular R (k x n) from a factored matrix.
template <typename VA>
Matrix<view_scalar_t<VA>> extract_r(const VA& a_in) {
  using T = view_scalar_t<VA>;
  const ConstMatrixView<T> a = cview(a_in);
  const idx n = a.cols();
  const idx k = std::min(a.rows(), n);
  Matrix<T> r = Matrix<T>::zeros(k, n);
  for (idx j = 0; j < n; ++j) {
    const idx top = std::min(j + 1, k);
    for (idx i = 0; i < top; ++i) r(i, j) = a(i, j);
  }
  return r;
}

}  // namespace caqr

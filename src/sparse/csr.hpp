#pragma once

// Compressed-sparse-row matrices and SpMV — the substrate for the s-step
// Krylov application (§I cites Mohiyuddin et al.'s communication-avoiding
// sparse solvers as the most extreme tall-skinny QR consumer: basis blocks
// of millions of rows by fewer than ten columns).
//
// Functional SpMV runs on the host; the simulated-GPU cost of an SpMV is
// charged separately (bandwidth-bound: one pass over values/indices plus
// the gathered x accesses).

#include <vector>

#include "common/check.hpp"
#include "gpusim/device.hpp"
#include "kernels/kernels.hpp"
#include "linalg/matrix.hpp"

namespace caqr::sparse {

template <typename T>
class CsrMatrix {
 public:
  CsrMatrix() = default;

  // Builds from unsorted (row, col, value) triplets; duplicates are summed.
  static CsrMatrix from_triplets(idx rows, idx cols,
                                 std::vector<std::tuple<idx, idx, T>> triplets) {
    CAQR_CHECK(rows >= 0 && cols >= 0);
    CsrMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    std::sort(triplets.begin(), triplets.end(),
              [](const auto& a, const auto& b) {
                return std::tie(std::get<0>(a), std::get<1>(a)) <
                       std::tie(std::get<0>(b), std::get<1>(b));
              });
    m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
    for (std::size_t i = 0; i < triplets.size();) {
      const auto [r, c, v0] = triplets[i];
      CAQR_CHECK(r >= 0 && r < rows && c >= 0 && c < cols);
      T v = v0;
      std::size_t j = i + 1;
      while (j < triplets.size() && std::get<0>(triplets[j]) == r &&
             std::get<1>(triplets[j]) == c) {
        v += std::get<2>(triplets[j]);
        ++j;
      }
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
      ++m.row_ptr_[static_cast<std::size_t>(r) + 1];
      i = j;
    }
    for (idx r = 0; r < rows; ++r) {
      m.row_ptr_[static_cast<std::size_t>(r) + 1] +=
          m.row_ptr_[static_cast<std::size_t>(r)];
    }
    return m;
  }

  // The 5-point 2-D Laplacian on an n x n grid (SPD, the classic Krylov
  // test operator).
  static CsrMatrix laplacian_2d(idx grid) {
    CAQR_CHECK(grid >= 1);
    std::vector<std::tuple<idx, idx, T>> trip;
    trip.reserve(static_cast<std::size_t>(grid) * grid * 5);
    for (idx i = 0; i < grid; ++i) {
      for (idx j = 0; j < grid; ++j) {
        const idx p = i * grid + j;
        trip.emplace_back(p, p, T(4));
        if (i > 0) trip.emplace_back(p, p - grid, T(-1));
        if (i + 1 < grid) trip.emplace_back(p, p + grid, T(-1));
        if (j > 0) trip.emplace_back(p, p - 1, T(-1));
        if (j + 1 < grid) trip.emplace_back(p, p + 1, T(-1));
      }
    }
    return from_triplets(grid * grid, grid * grid, std::move(trip));
  }

  idx rows() const { return rows_; }
  idx cols() const { return cols_; }
  idx nnz() const { return static_cast<idx>(values_.size()); }

  // y := A x (functional, host).
  void spmv(const T* x, T* y) const {
    for (idx r = 0; r < rows_; ++r) {
      T acc = T(0);
      const idx begin = row_ptr_[static_cast<std::size_t>(r)];
      const idx end = row_ptr_[static_cast<std::size_t>(r) + 1];
      for (idx k = begin; k < end; ++k) {
        acc += values_[static_cast<std::size_t>(k)] *
               x[col_idx_[static_cast<std::size_t>(k)]];
      }
      y[r] = acc;
    }
  }

  // Charges one SpMV launch to the simulated device: bandwidth-bound over
  // values (T) + column indices (4 B) + x gathers (partially uncoalesced)
  // + y writes.
  void charge_spmv(gpusim::Device& dev) const {
    gpusim::BlockStats s;
    s.flops = 2.0 * static_cast<double>(nnz());
    s.issue_cycles = s.flops / 2.0 / 32.0 /
                     dev.model().num_sms;  // one logical block, device-wide
    s.gmem_bytes = static_cast<double>(nnz()) * (sizeof(T) + 4.0 + sizeof(T) * 0.5) +
                   static_cast<double>(rows_) * sizeof(T);
    kernels::CostOnlyKernel k{"spmv", s};
    dev.launch(k, 1);
  }

  // Dense materialization for testing against reference GEMV.
  Matrix<T> to_dense() const {
    auto d = Matrix<T>::zeros(rows_, cols_);
    for (idx r = 0; r < rows_; ++r) {
      for (idx k = row_ptr_[static_cast<std::size_t>(r)];
           k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
        d(r, col_idx_[static_cast<std::size_t>(k)]) +=
            values_[static_cast<std::size_t>(k)];
      }
    }
    return d;
  }

  bool is_symmetric(T tol = T(0)) const {
    auto d = to_dense();  // test-path helper; fine for moderate sizes
    for (idx i = 0; i < rows_; ++i) {
      for (idx j = 0; j < i; ++j) {
        if (std::abs(d(i, j) - d(j, i)) > tol) return false;
      }
    }
    return true;
  }

 private:
  idx rows_ = 0;
  idx cols_ = 0;
  std::vector<idx> row_ptr_;
  std::vector<idx> col_idx_;
  std::vector<T> values_;
};

}  // namespace caqr::sparse

#pragma once

// Versioned on-disk checkpoint container.
//
// A checkpoint is a flat sequence of named binary sections behind a
// tamper-evident header:
//
//   [8]  magic   "CAQRCKPT"
//   [u32] format version (kCheckpointVersion)
//   [u64] payload byte count
//   [u64] FNV-1a checksum of the payload
//   payload: repeated [u32 name_len][name][u64 size][bytes]
//
// Writes are atomic: the container is serialized to "<path>.tmp" and
// renamed over the target, so a kill mid-write leaves either the previous
// checkpoint or none — never a torn file. Loads validate magic, version,
// declared sizes, and the payload checksum; any violation (truncation, a
// flipped byte, a stale format) yields "no checkpoint" and callers fall back
// to a clean start instead of resuming from garbage.
//
// Sections hold trivially-copyable scalars, vectors of them, and matrices
// (dims + column-major data). Consumers (caqr/tsqr/rpca checkpointing)
// compose these into their own layouts and validate shape/options fields
// themselves on resume.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "ft/ft.hpp"
#include "linalg/matrix.hpp"

namespace caqr::ft {

inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr char kCheckpointMagic[9] = "CAQRCKPT";  // 8 bytes on disk

class CheckpointWriter {
 public:
  void bytes(const std::string& name, const void* data, std::size_t n) {
    const std::uint32_t name_len = static_cast<std::uint32_t>(name.size());
    append(&name_len, sizeof(name_len));
    payload_.append(name);
    const std::uint64_t size = n;
    append(&size, sizeof(size));
    payload_.append(static_cast<const char*>(data), n);
  }

  template <typename T>
  void scalar(const std::string& name, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(name, &v, sizeof(T));
  }

  template <typename T>
  void vec(const std::string& name, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(name, v.data(), v.size() * sizeof(T));
  }

  template <typename V>
  void matrix(const std::string& name, const V& m_in) {
    const auto m = cview(m_in);
    using T = view_scalar_t<V>;
    std::string data;
    const std::int64_t dims[2] = {m.rows(), m.cols()};
    data.append(reinterpret_cast<const char*>(dims), sizeof(dims));
    for (idx j = 0; j < m.cols(); ++j) {
      data.append(reinterpret_cast<const char*>(m.col(j)),
                  sizeof(T) * static_cast<std::size_t>(m.rows()));
    }
    bytes(name, data.data(), data.size());
  }

  // Serializes header + payload to "<path>.tmp", then renames over `path`.
  bool write(const std::string& path) const {
    std::string out;
    out.append(kCheckpointMagic, 8);
    const std::uint32_t version = kCheckpointVersion;
    out.append(reinterpret_cast<const char*>(&version), sizeof(version));
    const std::uint64_t size = payload_.size();
    out.append(reinterpret_cast<const char*>(&size), sizeof(size));
    const std::uint64_t sum = detail::fnv1a(payload_.data(), payload_.size());
    out.append(reinterpret_cast<const char*>(&sum), sizeof(sum));
    out.append(payload_);

    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) return false;
    const bool written = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    const bool closed = std::fclose(f) == 0;
    if (!written || !closed) {
      std::remove(tmp.c_str());
      return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return false;
    }
    return true;
  }

  std::size_t payload_bytes() const { return payload_.size(); }

 private:
  void append(const void* p, std::size_t n) {
    payload_.append(static_cast<const char*>(p), n);
  }

  std::string payload_;
};

class CheckpointReader {
 public:
  // Empty optional on any validation failure: missing file, short header,
  // wrong magic/version, truncated payload, checksum mismatch, or a section
  // whose declared size runs past the payload.
  static std::optional<CheckpointReader> load(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return std::nullopt;
    std::string raw;
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) raw.append(buf, n);
    std::fclose(f);

    const std::size_t header = 8 + sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);
    if (raw.size() < header) return std::nullopt;
    if (std::memcmp(raw.data(), kCheckpointMagic, 8) != 0) return std::nullopt;
    std::uint32_t version = 0;
    std::memcpy(&version, raw.data() + 8, sizeof(version));
    if (version != kCheckpointVersion) return std::nullopt;
    std::uint64_t size = 0, sum = 0;
    std::memcpy(&size, raw.data() + 12, sizeof(size));
    std::memcpy(&sum, raw.data() + 20, sizeof(sum));
    if (raw.size() != header + size) return std::nullopt;
    if (detail::fnv1a(raw.data() + header, size) != sum) return std::nullopt;

    CheckpointReader r;
    std::size_t pos = header;
    const std::size_t end = raw.size();
    while (pos < end) {
      if (end - pos < sizeof(std::uint32_t)) return std::nullopt;
      std::uint32_t name_len = 0;
      std::memcpy(&name_len, raw.data() + pos, sizeof(name_len));
      pos += sizeof(name_len);
      if (end - pos < name_len) return std::nullopt;
      std::string name(raw.data() + pos, name_len);
      pos += name_len;
      if (end - pos < sizeof(std::uint64_t)) return std::nullopt;
      std::uint64_t sec = 0;
      std::memcpy(&sec, raw.data() + pos, sizeof(sec));
      pos += sizeof(sec);
      if (end - pos < sec) return std::nullopt;
      r.sections_[name] = raw.substr(pos, sec);
      pos += sec;
    }
    return r;
  }

  bool has(const std::string& name) const {
    return sections_.count(name) != 0;
  }

  // All section names in sorted order. Owners of prefix-namespaced
  // sub-checkpoints (stream window state lives under "<prefix>...") use this
  // to enumerate and diagnose what a container actually holds — e.g. when a
  // migration target rejects a checkpoint, the mismatched section is
  // reportable instead of an opaque "load failed".
  std::vector<std::string> section_names() const {
    std::vector<std::string> out;
    out.reserve(sections_.size());
    for (const auto& kv : sections_) out.push_back(kv.first);
    return out;
  }

  template <typename T>
  bool scalar(const std::string& name, T& out) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto it = sections_.find(name);
    if (it == sections_.end() || it->second.size() != sizeof(T)) return false;
    std::memcpy(&out, it->second.data(), sizeof(T));
    return true;
  }

  template <typename T>
  bool vec(const std::string& name, std::vector<T>& out) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto it = sections_.find(name);
    if (it == sections_.end() || it->second.size() % sizeof(T) != 0) {
      return false;
    }
    out.resize(it->second.size() / sizeof(T));
    std::memcpy(out.data(), it->second.data(), it->second.size());
    return true;
  }

  template <typename T>
  bool matrix(const std::string& name, Matrix<T>& out) const {
    const auto it = sections_.find(name);
    if (it == sections_.end() || it->second.size() < 2 * sizeof(std::int64_t)) {
      return false;
    }
    std::int64_t dims[2];
    std::memcpy(dims, it->second.data(), sizeof(dims));
    if (dims[0] < 0 || dims[1] < 0) return false;
    const std::size_t expect =
        sizeof(dims) + sizeof(T) * static_cast<std::size_t>(dims[0]) *
                           static_cast<std::size_t>(dims[1]);
    if (it->second.size() != expect) return false;
    out = Matrix<T>(static_cast<idx>(dims[0]), static_cast<idx>(dims[1]));
    const char* src = it->second.data() + sizeof(dims);
    for (idx j = 0; j < out.cols(); ++j) {
      std::memcpy(out.view().col(j), src,
                  sizeof(T) * static_cast<std::size_t>(out.rows()));
      src += sizeof(T) * static_cast<std::size_t>(out.rows());
    }
    return true;
  }

 private:
  std::map<std::string, std::string> sections_;
};

}  // namespace caqr::ft

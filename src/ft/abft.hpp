#pragma once

// Algorithm-based fault tolerance (ABFT) for the four CAQR kernels.
//
// Two detection schemes, chosen per kernel by what corruption there *does*:
//
//   factor /      Exact re-execution. The certificate IS the expected
//   factor_tree   output: encode copies the kernel's surface, runs the same
//                 run_block code on the copy host-side (fault-free), and the
//                 verifier is a bitwise comparison per block / tree group, so
//                 any corruption of the reflector storage — down to a single
//                 low-order mantissa bit — is detected and localized. This is
//                 deliberate, not overkill: a stored Householder tail enters
//                 every later apply (and form_q) *linearly*, so an absolute
//                 perturbation d of a tail entry v costs ~d in the final
//                 residual; but any norm-style invariant (column-norm
//                 preservation, tau * (1 + ||v||^2) == 2) sees only the
//                 *quadratic* footprint ~2*v*d, which for |v| << 1 sits far
//                 below any usable threshold. A threshold cert therefore has
//                 a detection floor that ill conditioning amplifies past the
//                 Verifier's backward-error bounds (observed: a bit-24 flip
//                 of a 1e-4 tail entry, invisible at tol 16*eps, raised the
//                 residual 1000x). Replay is affordable because the factor
//                 kernels are the low-order term of CAQR — O(m*w^2) of the
//                 O(m*n*w) total — and it needs no tolerance at all: the
//                 simulated device and the host run the same instantiation
//                 of run_block, so fault-free launches match bit-for-bit.
//   apply_qt_h /  Huang–Abraham checksum columns, one per column tile:
//   apply_qt_tree s_t = sum of the tile's columns, captured pre-launch. The
//                 verifier applies the *same* block operation to the checksum
//                 matrix host-side and compares it against the post-launch
//                 tile sums — per (row block x tile), so a mismatch localizes
//                 the corrupted block exactly. Cost is 1/tile_cols of the
//                 launch plus two row-sum passes. Detection is thresholded at
//                 tol_multiplier * eps * sqrt(block height): corruption below
//                 that (a flipped low-order mantissa bit) escapes, but for
//                 the applies the surface is *data*, not reflectors, so a
//                 sub-threshold flip is an ordinary backward-error
//                 perturbation of A — inside the bounds the Verifier
//                 enforces, numerically benign by construction. Flipped
//                 sign/exponent/high-mantissa bits, and dropped blocks, land
//                 far above the threshold.
//
// Extreme column scalings (1e±300, the stress-harness regime) are handled
// the same way as numerics/verifier.hpp: the apply-side checksums accumulate
// entries pre-multiplied by an exact per-block power-of-two equilibration
// factor, so the squared sums neither overflow nor flush to zero (the replay
// certs compare bits and need no equilibration).
//
// All routines here are host-side and fault-free by construction (they never
// run through Device::launch). The matching cost of the checks is charged to
// the performance model by Device::launch via abft_stats().

#include <cmath>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <limits>
#include <type_traits>
#include <vector>

#include "ft/ft.hpp"
#include "kernels/block_ops.hpp"
#include "kernels/kernels.hpp"
#include "linalg/matrix.hpp"

namespace caqr::ft {

// Kernels that opt into ABFT guarding. kAbftSupported is false for
// non-floating-point scalars (the flop-counting tests instantiate kernels
// with a counting scalar; none of the checksum arithmetic below must be
// instantiated for it).
template <typename K>
concept HasAbft = requires {
  { K::kAbftSupported } -> std::convertible_to<bool>;
} && static_cast<bool>(K::kAbftSupported);

namespace detail {

// Hash `nrows` rows of every column starting at row r0 (column segments are
// contiguous in the column-major storage).
template <typename T>
std::uint64_t hash_rows(ConstMatrixView<T> m, idx r0, idx nrows,
                        std::uint64_t h = kFnvOffset) {
  for (idx j = 0; j < m.cols(); ++j) {
    h = fnv1a(m.col(j) + r0, sizeof(T) * static_cast<std::size_t>(nrows), h);
  }
  return h;
}

// Exact power-of-two factor bringing max|region| to O(1) (see
// numerics/verifier.hpp): multiplying every accumulated entry by it is exact
// and keeps squared norms representable for |entries| ~ 1e±300.
inline double pow2_equilibration(double max_abs) {
  if (max_abs == 0.0 || !std::isfinite(max_abs)) return 1.0;
  const double f = std::exp2(static_cast<double>(-std::ilogb(max_abs)));
  return f >= 0.5 && f <= 2.0 ? 1.0 : f;
}

template <typename T>
double region_max_abs(ConstMatrixView<T> m, idx r0, idx nrows) {
  double s = 0.0;
  for (idx j = 0; j < m.cols(); ++j) {
    const T* col = m.col(j) + r0;
    for (idx i = 0; i < nrows; ++i) {
      const double a = std::abs(static_cast<double>(col[i]));
      if (a > s && std::isfinite(a)) s = a;
    }
  }
  return s;
}

// FNV-1a over the maximal uncovered row runs of `m`.
template <typename T>
std::uint64_t hash_uncovered(ConstMatrixView<T> m,
                             const std::vector<char>& covered) {
  std::uint64_t h = kFnvOffset;
  const idx rows = m.rows();
  idx r = 0;
  while (r < rows) {
    if (covered[static_cast<std::size_t>(r)]) {
      ++r;
      continue;
    }
    idx r1 = r;
    while (r1 < rows && !covered[static_cast<std::size_t>(r1)]) ++r1;
    h = hash_rows(m, r, r1 - r, h);
    r = r1;
  }
  return h;
}

// Bitwise equality of `nrows` rows of every column starting at row r0.
template <typename T>
bool rows_equal(ConstMatrixView<T> a, ConstMatrixView<T> b, idx r0,
                idx nrows) {
  for (idx j = 0; j < a.cols(); ++j) {
    if (std::memcmp(a.col(j) + r0, b.col(j) + r0,
                    sizeof(T) * static_cast<std::size_t>(nrows)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// factor
// ---------------------------------------------------------------------------

template <typename T>
struct FactorCert {
  Matrix<T> expected;           // fault-free replay of the whole panel
  std::vector<T> expected_taus; // nblocks x w, replayed alongside
};

template <std::floating_point T>
FactorCert<T> abft_encode(const kernels::FactorKernel<T>& k) {
  const idx nb = k.num_blocks();
  const idx w = k.panel.cols();
  FactorCert<T> cert;
  cert.expected = Matrix<T>::from(k.panel.as_const());
  // Seed from the live taus so slots the kernel never writes compare equal.
  cert.expected_taus.assign(k.taus, k.taus + nb * w);
  kernels::FactorKernel<T> replay = k;
  replay.panel = cert.expected.view();
  replay.taus = cert.expected_taus.data();
  for (idx b = 0; b < nb; ++b) replay.run_block(b);
  return cert;
}

template <std::floating_point T>
void abft_verify(const kernels::FactorKernel<T>& k, const FactorCert<T>& cert,
                 double /*tol_mult*/, std::vector<idx>& bad, bool& bystander) {
  bystander = false;  // the block regions tile the whole surface
  const idx nb = k.num_blocks();
  const idx w = k.panel.cols();
  const auto panel = k.panel.as_const();
  const auto want = cert.expected.as_const();
  for (idx b = 0; b < nb; ++b) {
    const idx r0 = (*k.offsets)[static_cast<std::size_t>(b)];
    const idx h = (*k.offsets)[static_cast<std::size_t>(b) + 1] - r0;
    const bool ok =
        detail::rows_equal(panel, want, r0, h) &&
        std::memcmp(k.taus + b * w,
                    cert.expected_taus.data() + static_cast<std::size_t>(b * w),
                    sizeof(T) * static_cast<std::size_t>(w)) == 0;
    if (!ok) bad.push_back(b);
  }
}

template <std::floating_point T>
void abft_restore(const kernels::FactorKernel<T>& k, ConstMatrixView<T> snap,
                  const std::vector<idx>& bad, bool /*bystander*/) {
  for (idx b : bad) {
    const idx r0 = (*k.offsets)[static_cast<std::size_t>(b)];
    const idx h = (*k.offsets)[static_cast<std::size_t>(b) + 1] - r0;
    k.panel.block(r0, 0, h, k.panel.cols())
        .copy_from(snap.block(r0, 0, h, snap.cols()));
    for (idx j = 0; j < k.panel.cols(); ++j) k.taus[b * k.panel.cols() + j] = T(0);
  }
}

template <std::floating_point T>
gpusim::BlockStats abft_stats(const kernels::FactorKernel<T>& k,
                              bool snapshot) {
  gpusim::BlockStats s;
  const idx w = k.panel.cols();
  const double elems =
      static_cast<double>(k.panel.rows()) * k.panel.cols();
  double replay = 0.0;  // encode re-executes every block on the copy
  for (idx b = 0; b < k.num_blocks(); ++b) {
    const idx h = (*k.offsets)[static_cast<std::size_t>(b) + 1] -
                  (*k.offsets)[static_cast<std::size_t>(b)];
    replay += kernels::block_geqr2_flops(h, w);
  }
  s.flops = replay + 2.0 * elems;  // replay + bitwise compare pass
  // copy out + replay write + compare reads of both copies (+ snapshot).
  s.gmem_bytes = (4.0 + (snapshot ? 2.0 : 0.0)) * elems * sizeof(T);
  s.issue_cycles = s.flops / 32.0;
  return s;
}

// ---------------------------------------------------------------------------
// factor_tree
// ---------------------------------------------------------------------------

template <typename T>
struct TreeCert {
  Matrix<T> expected;           // fault-free replay of the whole panel
  std::vector<T> expected_taus; // ngroups x w, replayed alongside
};

namespace detail {

// Rows of `panel` covered by any group triangle (each triangle spans w rows).
template <typename T>
std::vector<char> tree_covered_rows(const kernels::FactorTreeKernel<T>& k) {
  std::vector<char> covered(static_cast<std::size_t>(k.panel.rows()), 0);
  const idx w = k.panel.cols();
  for (idx g = 0; g < k.groups->size(); ++g) {
    for (idx r : (*k.groups)[g]) {
      for (idx i = 0; i < w; ++i) covered[static_cast<std::size_t>(r + i)] = 1;
    }
  }
  return covered;
}

}  // namespace detail

template <std::floating_point T>
TreeCert<T> abft_encode(const kernels::FactorTreeKernel<T>& k) {
  const idx ng = k.num_blocks();
  const idx w = k.panel.cols();
  TreeCert<T> cert;
  cert.expected = Matrix<T>::from(k.panel.as_const());
  // Seed from the live taus so pass-through groups' slots compare equal.
  cert.expected_taus.assign(k.taus, k.taus + ng * w);
  kernels::FactorTreeKernel<T> replay = k;
  replay.panel = cert.expected.view();
  replay.taus = cert.expected_taus.data();
  for (idx g = 0; g < ng; ++g) replay.run_block(g);
  return cert;
}

template <std::floating_point T>
void abft_verify(const kernels::FactorTreeKernel<T>& k, const TreeCert<T>& cert,
                 double /*tol_mult*/, std::vector<idx>& bad, bool& bystander) {
  const idx ng = k.num_blocks();
  const idx w = k.panel.cols();
  const auto panel = k.panel.as_const();
  const auto want = cert.expected.as_const();
  for (idx g = 0; g < ng; ++g) {
    const auto rows = (*k.groups)[g];
    bool ok =
        std::memcmp(k.taus + g * w,
                    cert.expected_taus.data() + static_cast<std::size_t>(g * w),
                    sizeof(T) * static_cast<std::size_t>(w)) == 0;
    for (idx r : rows) ok = ok && detail::rows_equal(panel, want, r, w);
    if (!ok) bad.push_back(g);
  }
  // Rows outside every group must survive the launch bit-identically; the
  // expected copy holds their pre-launch bytes untouched.
  bystander = false;
  const auto covered = detail::tree_covered_rows(k);
  for (idx r = 0; r < k.panel.rows() && !bystander; ++r) {
    if (covered[static_cast<std::size_t>(r)]) continue;
    idx r1 = r;
    while (r1 < k.panel.rows() && !covered[static_cast<std::size_t>(r1)]) ++r1;
    bystander = !detail::rows_equal(panel, want, r, r1 - r);
    r = r1;
  }
}

template <std::floating_point T>
void abft_restore(const kernels::FactorTreeKernel<T>& k,
                  ConstMatrixView<T> snap, const std::vector<idx>& bad,
                  bool bystander) {
  const idx w = k.panel.cols();
  for (idx g : bad) {
    const auto rows = (*k.groups)[g];
    for (idx r : rows) {
      k.panel.block(r, 0, w, w).copy_from(snap.block(r, 0, w, w));
    }
    for (idx j = 0; j < w; ++j) k.taus[g * w + j] = T(0);
  }
  if (bystander) {
    const auto covered = detail::tree_covered_rows(k);
    for (idx r = 0; r < k.panel.rows(); ++r) {
      if (covered[static_cast<std::size_t>(r)]) continue;
      idx r1 = r;
      while (r1 < k.panel.rows() && !covered[static_cast<std::size_t>(r1)]) {
        ++r1;
      }
      k.panel.block(r, 0, r1 - r, w).copy_from(snap.block(r, 0, r1 - r, w));
      r = r1;
    }
  }
}

template <std::floating_point T>
gpusim::BlockStats abft_stats(const kernels::FactorTreeKernel<T>& k,
                              bool snapshot) {
  gpusim::BlockStats s;
  const idx w = k.panel.cols();
  double replay = 0.0;  // encode re-executes every combining group
  for (idx g = 0; g < k.groups->size(); ++g) {
    const idx kk = k.groups->group_size(g);
    if (kk >= 2) replay += kernels::stacked_geqr2_flops(w, kk);
  }
  const double surface =
      static_cast<double>(k.panel.rows()) * k.panel.cols();
  s.flops = replay + 2.0 * surface;  // replay + bitwise compare pass
  // copy out + replay gather/scatter + compare reads (+ snapshot).
  s.gmem_bytes = (4.0 + (snapshot ? 2.0 : 0.0)) * surface * sizeof(T);
  s.issue_cycles = s.flops / 32.0;
  return s;
}

// ---------------------------------------------------------------------------
// apply_qt_h / apply_q_h
// ---------------------------------------------------------------------------

template <typename T>
struct ApplyHCert {
  std::vector<double> scale;  // per row block
  std::vector<double> fro;    // (row block x tile) equilibrated Frobenius
  Matrix<T> sums;             // rows x tiles pre-launch checksum columns
};

template <std::floating_point T>
ApplyHCert<T> abft_encode(const kernels::ApplyQtHKernel<T>& k) {
  const idx nrb = k.num_row_blocks();
  const idx tiles = k.num_col_tiles();
  const auto c = k.trailing.as_const();
  ApplyHCert<T> cert;
  cert.scale.resize(static_cast<std::size_t>(nrb));
  cert.fro.assign(static_cast<std::size_t>(nrb * tiles), 0.0);
  cert.sums = Matrix<T>::zeros(c.rows(), tiles);
  for (idx rb = 0; rb < nrb; ++rb) {
    const idx r0 = (*k.offsets)[static_cast<std::size_t>(rb)];
    const idx h = (*k.offsets)[static_cast<std::size_t>(rb) + 1] - r0;
    const double s =
        detail::pow2_equilibration(detail::region_max_abs(c, r0, h));
    cert.scale[static_cast<std::size_t>(rb)] = s;
    for (idx t = 0; t < tiles; ++t) {
      const idx c0 = t * k.tile_cols;
      const idx nc = std::min(k.tile_cols, c.cols() - c0);
      T* sum = cert.sums.view().col(t) + r0;
      double f2 = 0.0;
      for (idx j = 0; j < nc; ++j) {
        const T* col = c.col(c0 + j) + r0;
        for (idx i = 0; i < h; ++i) {
          // Checksums accumulate in equilibrated units so a row sum of
          // near-overflow entries stays representable; the transform below
          // commutes with the exact power-of-two scale.
          const double x = static_cast<double>(col[i]) * s;
          sum[i] += static_cast<T>(x);
          f2 += x * x;
        }
      }
      cert.fro[static_cast<std::size_t>(rb * tiles + t)] = std::sqrt(f2);
    }
  }
  return cert;
}

template <std::floating_point T>
void abft_verify(const kernels::ApplyQtHKernel<T>& k, const ApplyHCert<T>& cert,
                 double tol_mult, std::vector<idx>& bad, bool& bystander) {
  bystander = false;  // the (row block x tile) grid tiles the whole surface
  const idx nrb = k.num_row_blocks();
  const idx tiles = k.num_col_tiles();
  const idx w = k.panel.cols();
  const double eps = static_cast<double>(std::numeric_limits<T>::epsilon());
  const auto c = k.trailing.as_const();
  // Fault-free host replay of the launch on the checksum columns.
  Matrix<T> pred = Matrix<T>::from(cert.sums.view());
  for (idx rb = 0; rb < nrb; ++rb) {
    const idx r0 = (*k.offsets)[static_cast<std::size_t>(rb)];
    const idx h = (*k.offsets)[static_cast<std::size_t>(rb) + 1] - r0;
    const auto v = k.panel.block(r0, 0, h, w);
    const auto target = pred.block(r0, 0, h, tiles);
    if (k.transpose_q) {
      kernels::block_apply_qt(v, k.taus + rb * w, target);
    } else {
      kernels::block_apply_q(v, k.taus + rb * w, target);
    }
  }
  for (idx rb = 0; rb < nrb; ++rb) {
    const idx r0 = (*k.offsets)[static_cast<std::size_t>(rb)];
    const idx h = (*k.offsets)[static_cast<std::size_t>(rb) + 1] - r0;
    const double s = cert.scale[static_cast<std::size_t>(rb)];
    const double tol = tol_mult * eps * std::sqrt(static_cast<double>(h));
    for (idx t = 0; t < tiles; ++t) {
      const idx c0 = t * k.tile_cols;
      const idx nc = std::min(k.tile_cols, c.cols() - c0);
      const T* want = pred.view().col(t) + r0;
      double diff2 = 0.0, act2 = 0.0;
      bool finite = true;
      for (idx i = 0; i < h; ++i) {
        double got = 0.0;  // in the same equilibrated units as the checksum
        for (idx j = 0; j < nc; ++j) {
          const double x = static_cast<double>(c(r0 + i, c0 + j)) * s;
          got += x;
          act2 += x * x;
        }
        const double d = got - static_cast<double>(want[i]);
        finite = finite && std::isfinite(d);
        diff2 += d * d;
      }
      const double fro_pre = cert.fro[static_cast<std::size_t>(rb * tiles + t)];
      const double limit =
          tol * std::sqrt(static_cast<double>(nc)) *
          (fro_pre + (std::isfinite(act2) ? std::sqrt(act2) : 0.0));
      if (!finite || !(std::sqrt(diff2) <= limit)) {
        bad.push_back(rb * tiles + t);
      }
    }
  }
}

template <std::floating_point T>
void abft_restore(const kernels::ApplyQtHKernel<T>& k, ConstMatrixView<T> snap,
                  const std::vector<idx>& bad, bool /*bystander*/) {
  const idx tiles = k.num_col_tiles();
  for (idx b : bad) {
    const idx rb = b / tiles;
    const idx t = b % tiles;
    const idx r0 = (*k.offsets)[static_cast<std::size_t>(rb)];
    const idx h = (*k.offsets)[static_cast<std::size_t>(rb) + 1] - r0;
    const idx c0 = t * k.tile_cols;
    const idx nc = std::min(k.tile_cols, k.trailing.cols() - c0);
    k.trailing.block(r0, c0, h, nc).copy_from(snap.block(r0, c0, h, nc));
  }
}

template <std::floating_point T>
gpusim::BlockStats abft_stats(const kernels::ApplyQtHKernel<T>& k,
                              bool snapshot) {
  gpusim::BlockStats s;
  const idx tiles = k.num_col_tiles();
  const idx w = k.panel.cols();
  const double elems =
      static_cast<double>(k.trailing.rows()) * k.trailing.cols();
  double transform = 0.0;
  for (idx rb = 0; rb < k.num_row_blocks(); ++rb) {
    const idx h = (*k.offsets)[static_cast<std::size_t>(rb) + 1] -
                  (*k.offsets)[static_cast<std::size_t>(rb)];
    transform += kernels::block_apply_qt_flops(h, w, tiles);
  }
  s.flops = 4.0 * elems + transform;  // two sum passes + checksum replay
  s.gmem_bytes =
      (2.0 * elems + (snapshot ? 2.0 * elems : 0.0)) * sizeof(T) +
      static_cast<double>(k.panel.rows()) * w * sizeof(T);
  s.issue_cycles = s.flops / 32.0;
  return s;
}

// ---------------------------------------------------------------------------
// apply_qt_tree / apply_q_tree
// ---------------------------------------------------------------------------

template <typename T>
struct ApplyTreeCert {
  std::vector<double> scale;       // per group (1.0 for pass-through)
  std::vector<double> fro;         // (group x tile)
  std::vector<Matrix<T>> sums;     // per group: (k*w) x tiles checksums
  std::vector<std::uint64_t> untouched;  // pass-through group rows
  std::uint64_t complement = detail::kFnvOffset;  // rows outside every group
};

namespace detail {

template <typename T>
std::vector<char> apply_tree_covered_rows(
    const kernels::ApplyQtTreeKernel<T>& k) {
  std::vector<char> covered(static_cast<std::size_t>(k.trailing.rows()), 0);
  const idx w = k.panel.cols();
  for (idx g = 0; g < k.groups->size(); ++g) {
    if (k.groups->group_size(g) < 2) continue;  // pass-through hashed apart
    for (idx r : (*k.groups)[g]) {
      for (idx i = 0; i < w; ++i) covered[static_cast<std::size_t>(r + i)] = 1;
    }
  }
  return covered;
}

}  // namespace detail

template <std::floating_point T>
ApplyTreeCert<T> abft_encode(const kernels::ApplyQtTreeKernel<T>& k) {
  const idx ng = static_cast<idx>(k.groups->size());
  const idx tiles = k.num_col_tiles();
  const idx w = k.panel.cols();
  const auto c = k.trailing.as_const();
  ApplyTreeCert<T> cert;
  cert.scale.assign(static_cast<std::size_t>(ng), 1.0);
  cert.fro.assign(static_cast<std::size_t>(ng * tiles), 0.0);
  cert.sums.resize(static_cast<std::size_t>(ng));
  cert.untouched.assign(static_cast<std::size_t>(ng), detail::kFnvOffset);
  for (idx g = 0; g < ng; ++g) {
    const auto rows = (*k.groups)[g];
    const idx kk = static_cast<idx>(rows.size());
    if (kk < 2) {
      std::uint64_t h = detail::kFnvOffset;
      for (idx r : rows) h = detail::hash_rows(c, r, w, h);
      cert.untouched[static_cast<std::size_t>(g)] = h;
      continue;
    }
    double mx = 0.0;
    for (idx r : rows) {
      const double m = detail::region_max_abs(c, r, w);
      if (m > mx) mx = m;
    }
    const double s = detail::pow2_equilibration(mx);
    cert.scale[static_cast<std::size_t>(g)] = s;
    Matrix<T> sums = Matrix<T>::zeros(kk * w, tiles);
    for (idx t = 0; t < tiles; ++t) {
      const idx c0 = t * k.tile_cols;
      const idx nc = std::min(k.tile_cols, c.cols() - c0);
      double f2 = 0.0;
      for (idx b = 0; b < kk; ++b) {
        const idx r = rows[static_cast<std::size_t>(b)];
        T* sum = sums.view().col(t) + b * w;
        for (idx j = 0; j < nc; ++j) {
          const T* col = c.col(c0 + j) + r;
          for (idx i = 0; i < w; ++i) {
            const double x = static_cast<double>(col[i]) * s;
            sum[i] += static_cast<T>(x);  // equilibrated checksum units
            f2 += x * x;
          }
        }
      }
      cert.fro[static_cast<std::size_t>(g * tiles + t)] = std::sqrt(f2);
    }
    cert.sums[static_cast<std::size_t>(g)] = std::move(sums);
  }
  cert.complement =
      detail::hash_uncovered(c, detail::apply_tree_covered_rows(k));
  return cert;
}

template <std::floating_point T>
void abft_verify(const kernels::ApplyQtTreeKernel<T>& k,
                 const ApplyTreeCert<T>& cert, double tol_mult,
                 std::vector<idx>& bad, bool& bystander) {
  const idx ng = static_cast<idx>(k.groups->size());
  const idx tiles = k.num_col_tiles();
  const idx w = k.panel.cols();
  const double eps = static_cast<double>(std::numeric_limits<T>::epsilon());
  const auto c = k.trailing.as_const();
  for (idx g = 0; g < ng; ++g) {
    const auto rows = (*k.groups)[g];
    const idx kk = static_cast<idx>(rows.size());
    if (kk < 2) {
      std::uint64_t h = detail::kFnvOffset;
      for (idx r : rows) h = detail::hash_rows(c, r, w, h);
      if (h != cert.untouched[static_cast<std::size_t>(g)]) {
        for (idx t = 0; t < tiles; ++t) bad.push_back(g * tiles + t);
      }
      continue;
    }
    // Fault-free host replay on the group's checksum columns.
    Matrix<T> u(kk * w, w);
    for (idx b = 0; b < kk; ++b) {
      u.block(b * w, 0, w, w)
          .copy_from(k.panel.block(rows[static_cast<std::size_t>(b)], 0, w, w));
    }
    Matrix<T> pred = Matrix<T>::from(
        cert.sums[static_cast<std::size_t>(g)].view());
    if (k.transpose_q) {
      kernels::stacked_apply_qt(u.as_const(), w, kk, k.taus + g * w,
                                pred.view());
    } else {
      kernels::stacked_apply_q(u.as_const(), w, kk, k.taus + g * w,
                               pred.view());
    }
    const double s = cert.scale[static_cast<std::size_t>(g)];
    const double tol =
        tol_mult * eps * std::sqrt(static_cast<double>(kk * w));
    for (idx t = 0; t < tiles; ++t) {
      const idx c0 = t * k.tile_cols;
      const idx nc = std::min(k.tile_cols, c.cols() - c0);
      double diff2 = 0.0, act2 = 0.0;
      bool finite = true;
      for (idx b = 0; b < kk; ++b) {
        const idx r = rows[static_cast<std::size_t>(b)];
        const T* want = pred.view().col(t) + b * w;
        for (idx i = 0; i < w; ++i) {
          double got = 0.0;  // equilibrated units, matching the checksum
          for (idx j = 0; j < nc; ++j) {
            const double x = static_cast<double>(c(r + i, c0 + j)) * s;
            got += x;
            act2 += x * x;
          }
          const double d = got - static_cast<double>(want[i]);
          finite = finite && std::isfinite(d);
          diff2 += d * d;
        }
      }
      const double fro_pre = cert.fro[static_cast<std::size_t>(g * tiles + t)];
      const double limit =
          tol * std::sqrt(static_cast<double>(nc)) *
          (fro_pre + (std::isfinite(act2) ? std::sqrt(act2) : 0.0));
      if (!finite || !(std::sqrt(diff2) <= limit)) {
        bad.push_back(g * tiles + t);
      }
    }
  }
  bystander =
      detail::hash_uncovered(c, detail::apply_tree_covered_rows(k)) !=
      cert.complement;
}

template <std::floating_point T>
void abft_restore(const kernels::ApplyQtTreeKernel<T>& k,
                  ConstMatrixView<T> snap, const std::vector<idx>& bad,
                  bool bystander) {
  const idx tiles = k.num_col_tiles();
  const idx w = k.panel.cols();
  for (idx b : bad) {
    const auto rows = (*k.groups)[b / tiles];
    const idx c0 = (b % tiles) * k.tile_cols;
    const idx nc = std::min(k.tile_cols, k.trailing.cols() - c0);
    for (idx r : rows) {
      k.trailing.block(r, c0, w, nc).copy_from(snap.block(r, c0, w, nc));
    }
  }
  if (bystander) {
    const auto covered = detail::apply_tree_covered_rows(k);
    for (idx r = 0; r < k.trailing.rows(); ++r) {
      if (covered[static_cast<std::size_t>(r)]) continue;
      idx r1 = r;
      while (r1 < k.trailing.rows() && !covered[static_cast<std::size_t>(r1)]) {
        ++r1;
      }
      k.trailing.block(r, 0, r1 - r, k.trailing.cols())
          .copy_from(snap.block(r, 0, r1 - r, snap.cols()));
      r = r1;
    }
  }
}

template <std::floating_point T>
gpusim::BlockStats abft_stats(const kernels::ApplyQtTreeKernel<T>& k,
                              bool snapshot) {
  gpusim::BlockStats s;
  const idx tiles = k.num_col_tiles();
  const idx w = k.panel.cols();
  double covered = 0.0, transform = 0.0;
  for (idx g = 0; g < k.groups->size(); ++g) {
    const idx kk = k.groups->group_size(g);
    covered += static_cast<double>(kk) * w * k.trailing.cols();
    if (kk >= 2) transform += kernels::stacked_apply_qt_flops(w, kk, tiles);
  }
  const double surface =
      static_cast<double>(k.trailing.rows()) * k.trailing.cols();
  s.flops = 4.0 * covered + transform + surface;  // sums + replay + hashes
  s.gmem_bytes =
      (2.0 * covered + surface + (snapshot ? 2.0 * surface : 0.0)) * sizeof(T);
  s.issue_cycles = s.flops / 32.0;
  return s;
}

}  // namespace caqr::ft

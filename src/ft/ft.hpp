#pragma once

// Fault-tolerance subsystem: structured launch outcomes and policy knobs.
//
// PR 2's injector demonstrated the failure mode — a corrupted launch that
// still "succeeds" — and left the loop open. This subsystem closes it at
// three granularities:
//
//   1. launch   — ABFT checksums (ft/abft.hpp) verified inside
//                 Device::launch; failed blocks are restored from a
//                 pre-launch snapshot and re-executed, up to
//                 max_launch_retries times.
//   2. panel    — if a launch stays corrupted after its retries, TSQR
//                 recomputes the poisoned panel (the subtree's surviving
//                 inputs, saved before factorization) up to
//                 max_panel_retries times.
//   3. schedule — if a panel cannot be recovered, CAQR's look-ahead
//                 schedule falls back to the serial schedule from the
//                 original input; an unrecovered serial run is surfaced
//                 through CaqrFactorization::status(), never an abort.
//
// Every level is deterministic under the seeded injector: retries consume
// fresh launch ordinals, so the whole recovery trajectory is a pure function
// of the fault seed. Detection-only mode (max_launch_retries == 0) verifies
// and reports but repairs nothing — the "same seeds produce
// detected-and-reported failures" half of the acceptance contract.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace caqr::ft {

namespace detail {

// FNV-1a over raw bytes: the bitwise checksum shared by the ABFT
// untouched-region hashes (ft/abft.hpp) and the checkpoint payload
// integrity check (ft/checkpoint.hpp).
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv1a(const void* data, std::size_t bytes,
                           std::uint64_t h = kFnvOffset) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace detail

// Per-launch outcome, ordered by badness so outcomes can be merged.
enum class Severity {
  Ok = 0,           // verified clean on the first attempt (or ABFT off)
  Corrected = 1,    // corruption detected and repaired by retry
  Unrecovered = 2,  // corruption survived every retry attempt
};

inline Severity worse(Severity a, Severity b) { return a > b ? a : b; }
inline const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Ok: return "ok";
    case Severity::Corrected: return "corrected";
    case Severity::Unrecovered: return "unrecovered";
  }
  return "?";
}

// Device-level fault-tolerance policy (Device::set_fault_tolerance).
struct FtOptions {
  // Master switch: encode/verify ABFT checksums around every functional
  // launch of the four core kernels. Off by default — the clean path is
  // bit-and-cycle identical to a build without the subsystem.
  bool abft = false;
  // Launch-level bounded retry: how many times the failed blocks of one
  // launch may be restored + re-executed. 0 = detect and report only.
  int max_launch_retries = 2;
  // TSQR panel-level redo budget (whole-panel recompute from saved inputs).
  int max_panel_retries = 1;
  // CAQR: fall back LookAhead -> Serial when a panel stays unrecovered.
  bool schedule_fallback = true;
  // ABFT detection threshold for the apply-kernel checksums (the factor
  // kernels verify by exact replay and ignore it): a checksum mismatch is
  // flagged when it exceeds tol_multiplier * eps * sqrt(block height).
  // Large enough that rounding never trips it (validated by the clean-sweep
  // tests); a flip escaping below it is backward error in A of the same
  // order, so tighten it (the recovery sweep uses 16) when downstream
  // accuracy demands a smaller escape window.
  double tol_multiplier = 512.0;
  // Charge the checksum/verify/snapshot traffic to the performance model
  // (one "<kernel>_abft" op per guarded launch, visible in ModelOnly too).
  bool charge_model = true;

  bool recovery() const { return max_launch_retries > 0; }
};

// Diagnostics for one guarded launch that was not clean.
struct LaunchReport {
  std::string kernel;
  long long launch_ordinal = 0;  // ordinal of the first (faulty) attempt
  Severity severity = Severity::Ok;
  int attempts = 1;             // executions of the failed block set
  idx faulty_blocks = 0;        // blocks that ever failed verification
  idx unrecovered_blocks = 0;   // blocks still failing after the last retry
  bool bystander_corruption = false;  // corruption outside any block's
                                      // write-set (restored, never re-run)
};

// Cumulative per-device counters (Device::ft_summary()).
struct Summary {
  long long guarded_launches = 0;
  long long corrected_launches = 0;
  long long unrecovered_launches = 0;
  long long retried_blocks = 0;

  bool ok() const { return unrecovered_launches == 0; }
};

// End-to-end outcome of one CAQR factorization (CaqrFactorization::status(),
// dist::DistCaqrFactorization::status()) — and, via serve::QrResponse, of
// one served solve. The grid counters stay zero on single-device runs.
struct RunStatus {
  Severity severity = Severity::Ok;
  long long corrected_launches = 0;
  long long unrecovered_launches = 0;  // after all recovery levels
  int panel_retries = 0;
  bool schedule_fallback = false;  // LookAhead degraded to Serial
  bool resumed_from_checkpoint = false;
  idx resumed_at_panel = 0;
  // Grid-level (dist/) counters: cross-device transfers recovered by
  // checksum-detected resend, transfers whose resend budget exhausted, total
  // resend attempts, and device losses absorbed by shard reassignment.
  long long corrected_transfers = 0;
  long long unrecovered_transfers = 0;
  long long transfer_retries = 0;
  int device_losses = 0;

  bool ok() const { return severity != Severity::Unrecovered; }

  // Pairwise merge (the grid driver folds per-attempt statuses together).
  void merge(const RunStatus& o) {
    severity = worse(severity, o.severity);
    corrected_launches += o.corrected_launches;
    unrecovered_launches += o.unrecovered_launches;
    panel_retries += o.panel_retries;
    schedule_fallback = schedule_fallback || o.schedule_fallback;
    corrected_transfers += o.corrected_transfers;
    unrecovered_transfers += o.unrecovered_transfers;
    transfer_retries += o.transfer_retries;
    device_losses += o.device_losses;
  }
};

}  // namespace caqr::ft

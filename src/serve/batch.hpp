#pragma once

// Same-shape batch fusion for the QR serving layer.
//
// On a real GPU, k independent tall-skinny factorizations of the same shape
// are served with batched kernels (cuBLAS geqrfBatched, MAGMA batched QR):
// one launch covers all k problems, so the per-launch overhead — the very
// cost CAQR's reduction tree is designed to amortize — is paid once instead
// of k times, and small grids that would strand SMs are stacked until every
// SM is busy. factor_batch() reproduces that on the simulated device: it
// walks ONE CAQR schedule whose every launch is a FusedKernel spanning the
// k problems' blocks, i.e. one `factor` + tree sweep over k*blocks instead
// of k separate schedules.
//
// Determinism / bit-identity. A FusedKernel dispatches fused block b to
// sub-problem b / blocks_per_problem, which runs the UNCHANGED run_block
// body of the solo kernel on that problem's own storage. Blocks write
// disjoint outputs (per kernel contract), so the fused launch computes
// bit-identical R, reflectors and Q for every problem to a solo
// `adaptive_qr` run with the same options — verified by tests/test_serve.
// The fused launches appear in profiles()/trace() under their own names
// ("factor_batch", "apply_qt_h_batch", ...) so ModelOnly timelines show
// exactly where fusion changed the schedule.
//
// Cost semantics: Device::launch aggregates per-block stats across the
// whole fused grid, so the roofline term sums all k problems' work over the
// SM pool while the latency floor is the max over ALL fused blocks — the
// same floor as any single problem, not k of them. Launch overhead is paid
// once per fused launch. Both effects are the simulated-GPU analogue of the
// real batched-kernel win.
//
// Thread safety: factor_batch is a plain function of (device, inputs); it
// owns no shared state. Concurrent calls must target distinct devices, the
// same rule as every other launch path in the repo.

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "caqr/solver.hpp"
#include "common/group_list.hpp"
#include "common/profile.hpp"
#include "gpusim/device.hpp"
#include "kernels/kernels.hpp"
#include "tsqr/tsqr.hpp"

namespace caqr::serve {

// One launchable kernel spanning the same-shape launches of k sub-problems.
// Satisfies the Device::launch kernel contract; forwards stats_summary when
// the inner kernel type has one (paper-scale ModelOnly stays O(classes)).
template <typename K>
struct FusedKernel {
  std::vector<K> parts;
  std::vector<idx> prefix{0};  // prefix[i] = first fused block of part i
  std::string label;

  void add(K part) {
    const idx blocks = part.num_blocks();
    if (label.empty()) {
      label = std::string(part.name()) + "_batch";
    }
    prefix.push_back(prefix.back() + blocks);
    parts.push_back(std::move(part));
  }

  const char* name() const { return label.c_str(); }
  idx num_blocks() const { return prefix.back(); }

  void run_block(idx b) const {
    const std::size_t p = part_of(b);
    parts[p].run_block(b - prefix[p]);
  }

  gpusim::BlockStats block_stats(idx b) const {
    const std::size_t p = part_of(b);
    return parts[p].block_stats(b - prefix[p]);
  }

  auto stats_summary() const
    requires gpusim::HasStatsSummary<K>
  {
    // Same-shape parts have identical summaries (block stats depend on
    // shapes and cost parameters, never on data): summarize part 0 once and
    // scale the class counts by the part count instead of concatenating k
    // identical copies.
    auto out = parts.front().stats_summary();
    const idx k = static_cast<idx>(parts.size());
    for (auto& c : out) c.count *= k;
    return out;
  }

 private:
  std::size_t part_of(idx b) const {
    // parts are same-shape, hence same block count: direct division.
    const idx per = prefix[1];
    return static_cast<std::size_t>(b / per);
  }
};

// Result of one fused batch: per-problem (Q, R) plus the batch timings.
template <typename T>
struct BatchQrResult {
  std::vector<QrSolveResult<T>> problems;  // bit-identical to solo runs
  QrAlgorithm used = QrAlgorithm::Caqr;
  double simulated_seconds = 0;  // whole fused batch, all k problems
  idx fused_launches = 0;        // launches issued (vs k x this, unfused)
};

namespace detail {

// Per-problem factorization state threaded through the fused schedule.
template <typename T>
struct BatchProblem {
  Matrix<T> a;  // packed storage: R upper triangle + reflectors
  std::vector<tsqr::PanelFactor<T>> panels;
};

// Fused TSQR factorization of panel `p_index` (columns c0..c0+w) of every
// problem: one transpose launch, one factor launch, one launch per tree
// level — each spanning all k problems.
template <typename T>
void fused_tsqr_factor(gpusim::Device& dev,
                       std::vector<BatchProblem<T>>& probs, idx c0, idx len,
                       idx w, const tsqr::TsqrOptions& topt,
                       idx& fused_launches) {
  const auto cost = kernels::cost_params(topt.variant);
  const double pen = dev.model().uncoalesced_penalty;
  const double tile_pen = dev.model().tile_locality_penalty;

  const bool charge_transpose =
      topt.transposed_panels &&
      topt.variant == kernels::ReductionVariant::RegisterSerialTransposed;
  if (charge_transpose) {
    FusedKernel<kernels::TransposeKernel<T>> tk;
    for (std::size_t i = 0; i < probs.size(); ++i) {
      tk.add(kernels::TransposeKernel<T>{len, w, topt.block_rows});
    }
    dev.launch(tk, tk.num_blocks());
    ++fused_launches;
  }

  // Same shape => same decomposition for every problem: all k PanelFactors
  // share ONE memoized ReplayMeta (a shared_ptr copy each) instead of
  // per-problem offsets + per-level GroupList copies.
  const std::shared_ptr<const tsqr::ReplayMeta> meta =
      tsqr::detail::cached_replay_meta(len, w, topt);
  const idx nblocks = meta->num_blocks();
  // taus are only read by functional run_block/apply; ModelOnly skips them.
  const bool functional = dev.mode() == gpusim::ExecMode::Functional;

  FusedKernel<kernels::FactorKernel<T>> fk;
  {
    CAQR_PROF_SCOPE("serve.batch_stage_ns");
    for (auto& pr : probs) {
      pr.panels.emplace_back();
      auto& pf = pr.panels.back();
      pf.rows = len;
      pf.width = w;
      pf.meta = meta;
      if (functional) {
        pf.taus0.assign(static_cast<std::size_t>(nblocks * w), T(0));
        pf.taus.reserve(meta->levels.size());
      }
      fk.add(kernels::FactorKernel<T>{pr.a.block(c0, c0, len, w),
                                      &meta->offsets, pf.taus0.data(), cost,
                                      pen, tile_pen});
    }
  }
  dev.launch(fk, fk.num_blocks());
  ++fused_launches;

  // Reduction tree: identical group structure across problems, fused per
  // level; the groups live in the shared ReplayMeta, only each problem's
  // taus are allocated here.
  for (const auto& groups : meta->levels) {
    FusedKernel<kernels::FactorTreeKernel<T>> tk;
    {
      CAQR_PROF_SCOPE("serve.batch_stage_ns");
      for (auto& pr : probs) {
        auto& pf = pr.panels.back();
        T* tau_ptr = nullptr;
        if (functional) {
          pf.taus.emplace_back(static_cast<std::size_t>(groups.size()) *
                                   static_cast<std::size_t>(w),
                               T(0));
          tau_ptr = pf.taus.back().data();
        }
        tk.add(kernels::FactorTreeKernel<T>{pr.a.block(c0, c0, len, w),
                                            &groups, tau_ptr, cost, pen,
                                            tile_pen});
      }
    }
    dev.launch(tk, tk.num_blocks());
    ++fused_launches;
  }
}

// Fused Q^T / Q application of panel `p` of every problem to per-problem
// targets `c_of(i)`: the solo tsqr_apply launch sequence with every launch
// spanning all k problems.
template <typename T, typename COf>
void fused_apply(gpusim::Device& dev, std::vector<BatchProblem<T>>& probs,
                 idx p, idx c0, const tsqr::TsqrOptions& topt,
                 bool transpose_q, COf&& c_of, idx& fused_launches) {
  const auto cost = kernels::cost_params(topt.variant);
  const double pen = dev.model().uncoalesced_penalty;
  const double tile_pen = dev.model().tile_locality_penalty;
  const auto& pf0 = probs.front().panels[static_cast<std::size_t>(p)];

  auto launch_h = [&] {
    FusedKernel<kernels::ApplyQtHKernel<T>> k;
    for (std::size_t i = 0; i < probs.size(); ++i) {
      auto& pf = probs[i].panels[static_cast<std::size_t>(p)];
      k.add(kernels::ApplyQtHKernel<T>{
          probs[i].a.block(c0, c0, pf.rows, pf.width).as_const(),
          &pf.offsets(), pf.taus0.data(), c_of(i), topt.tile_cols, cost, pen,
          tile_pen, false, transpose_q});
    }
    dev.launch(k, k.num_blocks());
    ++fused_launches;
  };
  auto launch_tree = [&](std::size_t level) {
    FusedKernel<kernels::ApplyQtTreeKernel<T>> k;
    for (std::size_t i = 0; i < probs.size(); ++i) {
      auto& pf = probs[i].panels[static_cast<std::size_t>(p)];
      k.add(kernels::ApplyQtTreeKernel<T>{
          probs[i].a.block(c0, c0, pf.rows, pf.width).as_const(),
          &pf.level_groups(static_cast<idx>(level)),
          pf.level_taus(static_cast<idx>(level)), c_of(i), topt.tile_cols,
          cost, pen, tile_pen, false, transpose_q});
    }
    dev.launch(k, k.num_blocks());
    ++fused_launches;
  };

  if (transpose_q) {
    launch_h();
    const std::size_t nlev = static_cast<std::size_t>(pf0.num_levels());
    for (std::size_t l = 0; l < nlev; ++l) launch_tree(l);
  } else {
    for (std::size_t l = static_cast<std::size_t>(pf0.num_levels()); l-- > 0;) {
      launch_tree(l);
    }
    launch_h();
  }
}

}  // namespace detail

// Factors k same-shape problems with one fused CAQR schedule and returns
// per-problem explicit (Q, R), exactly what adaptive_qr returns for each
// problem alone. `algo` must be resolved (not Auto) by the caller — the
// serving layer resolves it through the PlanCache; QrAlgorithm::Hybrid
// batches degrade to a per-problem loop (the hybrid baseline models a
// library call and has no fusable launch structure).
//
// Functional mode consumes the problems' data; ModelOnly accepts
// Matrix::shape_only placeholders and only advances the timeline. All
// launches go to the synchronous legacy stream: the fused grid already
// exposes the cross-problem parallelism, so look-ahead has nothing left to
// overlap.
template <typename T>
BatchQrResult<T> factor_batch(gpusim::Device& dev,
                              std::vector<Matrix<T>> problems,
                              QrAlgorithm algo = QrAlgorithm::Caqr,
                              const CaqrOptions& opt = {},
                              bool want_q = true) {
  CAQR_CHECK(!problems.empty());
  CAQR_CHECK(algo != QrAlgorithm::Auto);
  const idx m = problems.front().rows();
  const idx n = problems.front().cols();
  for (const auto& a : problems) {
    CAQR_CHECK_MSG(a.rows() == m && a.cols() == n,
                   "factor_batch requires same-shape problems");
  }
  const idx k = std::min(m, n);
  const bool functional = dev.mode() == gpusim::ExecMode::Functional;

  BatchQrResult<T> out;
  out.used = algo;
  const double t0 = dev.elapsed_seconds();

  if (algo != QrAlgorithm::Caqr || k == 0) {
    // Hybrid models a library call and CholeskyQR is already three BLAS3
    // launches per pass — neither has a fusable CAQR launch structure, so
    // they degrade to a per-problem loop.
    // Empty problems (k == 0) route through the Householder paths, which
    // handle degenerate shapes; CholeskyQR asserts tall non-empty inputs.
    const QrAlgorithm per_problem =
        k == 0 && is_cholqr(algo) ? QrAlgorithm::Caqr : algo;
    for (auto& a : problems) {
      out.problems.push_back(adaptive_qr(dev, a.as_const(), per_problem, opt));
    }
    out.simulated_seconds = dev.elapsed_seconds() - t0;
    return out;
  }

  std::vector<detail::BatchProblem<T>> probs;
  probs.reserve(problems.size());
  for (auto& a : problems) probs.push_back({std::move(a), {}});

  // Fused serial CAQR panel loop (caqr.hpp Figure 4 structure; Serial and
  // LookAhead are bit-identical, so fusing the serial schedule preserves
  // the solo results of either).
  const tsqr::TsqrOptions topt = opt.panel_tsqr();
  for (idx c0 = 0; c0 < k; c0 += opt.panel_width) {
    const idx w = std::min(opt.panel_width, k - c0);
    const idx len = m - c0;
    detail::fused_tsqr_factor(dev, probs, c0, len, w, topt,
                              out.fused_launches);
    const idx trailing = n - c0 - w;
    if (trailing > 0) {
      const idx p = static_cast<idx>(probs.front().panels.size()) - 1;
      detail::fused_apply(
          dev, probs, p, c0, topt, /*transpose_q=*/true,
          [&](std::size_t i) {
            return probs[i].a.block(c0, c0 + w, len, trailing);
          },
          out.fused_launches);
    }
  }

  // Per-problem R; fused explicit Q (the SORGQR walk, panels in reverse).
  out.problems.resize(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    out.problems[i].used = QrAlgorithm::Caqr;
    out.problems[i].r = functional ? extract_r(probs[i].a.view())
                                   : Matrix<T>::shape_only(k, n);
  }
  if (want_q) {
    std::vector<Matrix<T>> qs;
    qs.reserve(probs.size());
    for (std::size_t i = 0; i < probs.size(); ++i) {
      qs.push_back(functional ? Matrix<T>::identity(m, k)
                              : Matrix<T>::shape_only(m, k));
    }
    const idx np = static_cast<idx>(probs.front().panels.size());
    for (idx p = np - 1; p >= 0; --p) {
      const idx c0 = p * opt.panel_width;
      const idx len = probs.front().panels[static_cast<std::size_t>(p)].rows;
      detail::fused_apply(
          dev, probs, p, c0, topt, /*transpose_q=*/false,
          [&](std::size_t i) { return qs[i].block(c0, 0, len, k); },
          out.fused_launches);
    }
    for (std::size_t i = 0; i < probs.size(); ++i) {
      out.problems[i].q = std::move(qs[i]);
    }
  }

  out.simulated_seconds = dev.elapsed_seconds() - t0;
  for (auto& p : out.problems) {
    p.simulated_seconds =
        out.simulated_seconds / static_cast<double>(out.problems.size());
  }
  return out;
}

}  // namespace caqr::serve

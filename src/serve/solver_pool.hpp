#pragma once

// SolverPool: the work queue of the batched QR serving layer.
//
// The ROADMAP north star is a production-scale service for the paper's
// killer workload — heavy concurrent traffic of same-shape tall-skinny
// factorizations (Robust PCA re-factors a 110,592 x 100 matrix every
// iteration, §VI). SolverPool models the standard deployment shape for
// that: N worker threads, EACH OWNING ITS OWN gpusim::Device (one simulated
// GPU per worker — the simulated analogue of a multi-GPU serving box),
// pulling requests from one bounded MPMC queue.
//
// Queue semantics:
//   * Bounded with backpressure. `submit` blocks while the queue is at the
//     high-water mark (PoolOptions::queue_capacity); `try_submit` instead
//     returns an already-satisfied RequestStatus::Rejected response.
//   * FIFO within priority: requests are dispatched in ascending
//     (priority, submission sequence) order — lower priority value first,
//     submission order within a priority level.
//   * Weighted fair share (opt-in, PoolOptions::fair_share): dispatch is
//     deficit round-robin across RequestOptions::tenant. Each scheduler
//     visit credits a tenant's deficit by its weight; the tenant serves one
//     request (its own priority/FIFO order) when the deficit reaches 1 and
//     pays 1 for it, so long-run service ratios match the weights. A tenant
//     passed over while holding work bumps the starvation counters in
//     PoolStats — sustained starvation of a low-weight tenant is visible,
//     never silent. Deficits reset when a tenant's queue empties (no credit
//     hoarding across idle periods).
//   * Per-request deadlines: a request whose host-clock deadline passed
//     before a worker picked it up is completed as DeadlineExpired without
//     running — and re-checked once more after plan resolution, immediately
//     before the solve, so a deadline that expired during planning is
//     answered without burning a full factorization. Deadlines bound
//     queueing+planning delay; they never abort a running factorization.
//   * Accepted work is always completed: the destructor drains the queue
//     before joining the workers.
//
// Determinism: a request's numerical result is a pure function of its input
// matrix and resolved options. Each request runs on a freshly reset device
// timeline, and the PlanCache is deterministic (plans are pure functions of
// their key), so the (Q, R) returned for a given request are bit-identical
// regardless of worker count, queue order, or cache hit vs miss — verified
// across 1/2/8 workers by tests/test_serve. Only scheduling metadata (which
// worker ran it, queueing delay) varies.
//
// Planning: with use_plan_cache on, workers resolve each request's
// algorithm and tuned block shape through a shared PlanCache — the second
// request of a shape skips the autotune sweep and both cost predictions.
// With it off, every request re-plans from scratch (the cache-off axis of
// bench_serve_throughput). Requests with use_plan=false bypass planning and
// run their CaqrOptions verbatim — the bit-compatibility mode PooledQrHook
// uses to match inline factorizations exactly.
//
// Thread safety: all public members are safe to call from any thread,
// including concurrently with workers. Responses are delivered through
// std::future. The pool itself must outlive every future's consumer... it
// owns the workers that fulfil them.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/profile.hpp"
#include "serve/batch.hpp"
#include "serve/plan_cache.hpp"
#include "svd/tall_skinny_svd.hpp"

namespace caqr::serve {

// Terminal state of a request.
enum class RequestStatus {
  Done,             // ran to completion; result fields are valid
  Rejected,         // never queued (backpressure or pool shutting down)
  DeadlineExpired,  // queued past its deadline; never ran
  Shed,             // refused by overload protection (see PoolOptions)
};

inline const char* request_status_name(RequestStatus s) {
  switch (s) {
    case RequestStatus::Done: return "done";
    case RequestStatus::Rejected: return "rejected";
    case RequestStatus::DeadlineExpired: return "deadline_expired";
    case RequestStatus::Shed: return "shed";
  }
  return "?";
}

// Pool-wide configuration, fixed at construction.
struct PoolOptions {
  int workers = 4;                    // worker threads == simulated devices
  std::size_t queue_capacity = 64;    // backpressure high-water mark
  gpusim::GpuMachineModel model = gpusim::GpuMachineModel::c2050();
  gpusim::ExecMode mode = gpusim::ExecMode::Functional;
  bool use_plan_cache = true;         // shared PlanCache vs re-plan per request
  std::size_t plan_cache_capacity = 64;
  // -- Overload protection (both off by default: existing pools keep the
  //    pure backpressure/deadline semantics documented above). --
  // Admission bound BELOW queue_capacity: a request arriving while the queue
  // already holds this many entries is completed as Shed immediately instead
  // of blocking (submit) or rejecting (try_submit). A shed caller gets a
  // typed answer in O(1) — under sustained 2x-capacity overload the pool
  // sheds the excess rather than letting every request's deadline expire in
  // the queue. 0 disables depth shedding.
  std::size_t shed_queue_depth = 0;
  // Deadline feasibility check at admission: estimate this request's
  // queueing delay as queue_depth * EMA(wall service seconds) / workers and
  // shed it if the estimate already exceeds its deadline budget — the
  // request was going to expire anyway, so answer now and save the slot.
  // Requests without deadlines are never shed by this rule.
  bool shed_infeasible_deadlines = false;
  // -- Worker-device fault environment. Every worker constructs its device
  //    with this injector + recovery policy, so served solves exercise the
  //    full ft/ ladder (tests and the chaos bench drive Unrecovered solves
  //    through here). Defaults: no injection, recovery off. --
  gpusim::FaultOptions fault;
  ft::FtOptions ft;
  // A Functional solve that still reports Severity::Unrecovered after the
  // device-level ladder is re-run on a freshly constructed CLEAN device (no
  // injector, same model/policy) up to this many times; the retry's
  // simulated time is charged to the worker's timeline as "solve_retry".
  int max_solve_retries = 1;
  // -- Weighted fair-share scheduling (off by default: global
  //    priority/FIFO order across all tenants, exactly as before). --
  // Deficit round-robin across RequestOptions::tenant (see the header
  // comment). Within a tenant, requests still dispatch in (priority,
  // submission) order.
  bool fair_share = false;
  // Relative service weights per tenant id; tenants absent from the map
  // (and non-positive entries) get weight 1.0. Fractional weights are the
  // point: weight 0.25 means one served request per four scheduler visits,
  // with the skipped visits counted as starvation.
  std::map<int, double> tenant_weights;
  // Test seam: runs on the worker thread after plan resolution, before the
  // pre-solve deadline re-check — lets tests pin "deadline expired during
  // planning" deterministically. Must be thread-safe; null is off.
  std::function<void()> post_plan_hook;
};

// Per-request knobs.
struct RequestOptions {
  QrAlgorithm algo = QrAlgorithm::Auto;
  // Dispatch key, lower first; FIFO within equal priority.
  int priority = 0;
  // Fair-share scheduling class (a camera stream, a customer, ...). Only
  // consulted when PoolOptions::fair_share is on; weight comes from
  // PoolOptions::tenant_weights.
  int tenant = 0;
  // Host-clock budget from submission to dispatch; <= 0 means no deadline.
  double deadline_seconds = 0;
  // When true (the default), the worker resolves {algorithm, tuned block
  // shape} through planning (cached or not per PoolOptions) with `caqr` as
  // the base options. When false, `caqr` runs verbatim and Auto resolves by
  // prediction only — no tuning applied — so results are bit-identical to
  // an inline adaptive_qr with the same options.
  bool use_plan = true;
  CaqrOptions caqr;
  // Condition-number estimate for the input, when the caller has one
  // (iterative workloads like Robust PCA track it across refactorizations).
  // Gates the CholeskyQR-family candidates in the adaptive picker; <= 0
  // (unknown) restricts the picker to the Householder algorithms.
  double cond_estimate = 0;
};

// Response for a single factorization request.
template <typename T>
struct QrResponse {
  RequestStatus status = RequestStatus::Done;
  QrSolveResult<T> result;       // valid iff status == Done
  bool plan_cache_hit = false;   // plan served from the shared cache
  double plan_seconds = 0;       // host seconds spent resolving the plan
  double simulated_seconds = 0;  // device time on the worker's simulated GPU
  // Fault-tolerance outcome of the solve (mirrors result.run_status so
  // ModelOnly callers and logging see it without touching the factors).
  ft::RunStatus run_status;
  int solve_retries = 0;  // fresh-device re-runs of an Unrecovered solve
};

// Response for a fused same-shape batch request.
template <typename T>
struct BatchResponse {
  RequestStatus status = RequestStatus::Done;
  BatchQrResult<T> result;  // valid iff status == Done
  bool plan_cache_hit = false;
  double plan_seconds = 0;
};

// Counters + per-worker simulated busy time, snapshotted atomically.
struct PoolStats {
  long long submitted = 0;  // accepted into the queue
  long long completed = 0;  // ran to Done
  long long rejected = 0;   // refused at admission
  long long expired = 0;    // completed as DeadlineExpired
  long long shed = 0;       // refused by overload protection
  long long solve_retries = 0;  // fresh-device re-runs of Unrecovered solves
  // DeadlineExpired at the post-plan re-check (subset of `expired`): the
  // deadline lapsed between dequeue and solve, and the solve was skipped.
  long long presolve_expired = 0;
  // Fair-share starvation: scheduler visits that passed over a tenant with
  // queued work because its deficit had not yet accrued (total and by
  // tenant). A persistently growing count for a tenant is the signal its
  // weight is too low for its offered load.
  long long starved_rounds = 0;
  std::map<int, long long> tenant_starved;
  std::map<int, long long> tenant_served;  // requests dispatched per tenant
  // Simulated seconds each worker's device spent running requests. The pool
  // serves on `workers` independent simulated GPUs, so simulated serving
  // throughput is problems / makespan (the busiest device bounds the batch).
  std::vector<double> worker_busy_simulated_seconds;
  double makespan_simulated_seconds() const {
    double mk = 0;
    for (double s : worker_busy_simulated_seconds) mk = std::max(mk, s);
    return mk;
  }
};

class SolverPool {
 public:
  explicit SolverPool(PoolOptions opts = {})
      : opts_(std::move(opts)), cache_(opts_.plan_cache_capacity) {
    CAQR_CHECK(opts_.workers >= 1 && opts_.queue_capacity >= 1);
    busy_sim_.assign(static_cast<std::size_t>(opts_.workers), 0.0);
    threads_.reserve(static_cast<std::size_t>(opts_.workers));
    for (int i = 0; i < opts_.workers; ++i) {
      threads_.emplace_back([this, i] { worker_main(i); });
    }
  }

  SolverPool(const SolverPool&) = delete;
  SolverPool& operator=(const SolverPool&) = delete;

  // Drains the queue (accepted work always completes), then joins workers.
  ~SolverPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_work_.notify_all();
    cv_space_.notify_all();
    for (auto& t : threads_) t.join();
  }

  const PoolOptions& options() const { return opts_; }

  // The shared plan cache (hit/miss/eviction counters live here).
  const PlanCache& plan_cache() const { return cache_; }

  // Submits one factorization; blocks while the queue is full. The matrix
  // is consumed. ModelOnly pools accept Matrix::shape_only placeholders.
  template <typename T>
  std::future<QrResponse<T>> submit(Matrix<T> a,
                                    const RequestOptions& req = {}) {
    return submit_impl(std::move(a), req, /*blocking=*/true);
  }

  // Non-blocking admission: a full queue (or stopping pool) yields an
  // already-satisfied Rejected response instead of waiting.
  template <typename T>
  std::future<QrResponse<T>> try_submit(Matrix<T> a,
                                        const RequestOptions& req = {}) {
    return submit_impl(std::move(a), req, /*blocking=*/false);
  }

  // Submits k same-shape problems as ONE queue entry served by one fused
  // factor_batch schedule on a single worker (see serve/batch.hpp). Blocks
  // while the queue is full. Auto resolves through planning like submit.
  template <typename T>
  std::future<BatchResponse<T>> submit_batch(std::vector<Matrix<T>> problems,
                                             const RequestOptions& req = {}) {
    auto prom = std::make_shared<std::promise<BatchResponse<T>>>();
    auto fut = prom->get_future();
    auto probs = std::make_shared<std::vector<Matrix<T>>>(std::move(problems));
    Job job;
    job.run = [this, prom, probs, req](gpusim::Device& dev, bool,
                                       Clock::time_point) {
      BatchResponse<T> resp;
      try {
        run_batch<T>(dev, *probs, req, resp);
        prom->set_value(std::move(resp));
        return RequestStatus::Done;
      } catch (...) {
        prom->set_exception(std::current_exception());
        return RequestStatus::Done;
      }
    };
    job.finish = [prom](RequestStatus s) {
      BatchResponse<T> resp;
      resp.status = s;
      prom->set_value(std::move(resp));
    };
    const Admit adm = enqueue(std::move(job), req, /*blocking=*/true);
    if (adm != Admit::Queued) {
      // job.finish was not called by the queue: answer here.
      BatchResponse<T> resp;
      resp.status = adm == Admit::Shed ? RequestStatus::Shed
                                       : RequestStatus::Rejected;
      prom->set_value(std::move(resp));
    }
    return fut;
  }

  // Escape hatch: run an arbitrary task on a worker's device (tests use it
  // to hold workers at a latch). Subject to the same queue/priority rules.
  std::future<RequestStatus> submit_task(
      std::function<void(gpusim::Device&)> fn, const RequestOptions& req = {},
      bool blocking = true) {
    auto prom = std::make_shared<std::promise<RequestStatus>>();
    auto fut = prom->get_future();
    Job job;
    job.run = [prom, fn = std::move(fn)](gpusim::Device& dev, bool,
                                         Clock::time_point) {
      try {
        fn(dev);
        prom->set_value(RequestStatus::Done);
      } catch (...) {
        prom->set_exception(std::current_exception());
      }
      return RequestStatus::Done;
    };
    job.finish = [prom](RequestStatus s) { prom->set_value(s); };
    const Admit adm = enqueue(std::move(job), req, blocking);
    if (adm != Admit::Queued) {
      prom->set_value(adm == Admit::Shed ? RequestStatus::Shed
                                         : RequestStatus::Rejected);
    }
    return fut;
  }

  // Blocks until the queue is empty and no worker is running a request.
  void drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_drain_.wait(lock, [&] { return queued_ == 0 && active_ == 0; });
  }

  PoolStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    PoolStats s;
    s.submitted = submitted_;
    s.completed = completed_;
    s.rejected = rejected_;
    s.expired = expired_;
    s.shed = shed_;
    s.solve_retries = solve_retries_;
    s.presolve_expired = presolve_expired_;
    s.starved_rounds = starved_rounds_;
    s.tenant_starved = tenant_starved_;
    s.tenant_served = tenant_served_;
    s.worker_busy_simulated_seconds = busy_sim_;
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;

  // Admission outcome: only Queued hands the job to a worker.
  enum class Admit { Queued, Rejected, Shed };

  struct Job {
    // Runs the request; returns its terminal status (Done, or
    // DeadlineExpired from the post-plan re-check). The promise is
    // fulfilled inside.
    std::function<RequestStatus(gpusim::Device&, bool has_deadline,
                                Clock::time_point deadline)>
        run;
    std::function<void(RequestStatus)> finish;  // terminal non-Done outcome
    bool has_deadline = false;
    Clock::time_point deadline{};
    int tenant = 0;
    Clock::time_point submitted{};  // for the queue-wait histogram
  };

  static double wall_seconds() {
    return std::chrono::duration<double>(Clock::now().time_since_epoch())
        .count();
  }

  template <typename T>
  std::future<QrResponse<T>> submit_impl(Matrix<T> a,
                                         const RequestOptions& req,
                                         bool blocking) {
    auto prom = std::make_shared<std::promise<QrResponse<T>>>();
    auto fut = prom->get_future();
    auto mat = std::make_shared<Matrix<T>>(std::move(a));
    Job job;
    job.run = [this, prom, mat, req](gpusim::Device& dev, bool has_deadline,
                                     Clock::time_point deadline) {
      QrResponse<T> resp;
      try {
        run_one<T>(dev, *mat, req, has_deadline, deadline, resp);
        const RequestStatus s = resp.status;
        prom->set_value(std::move(resp));
        return s;
      } catch (...) {
        prom->set_exception(std::current_exception());
        return RequestStatus::Done;  // exception delivered via the future
      }
    };
    job.finish = [prom](RequestStatus s) {
      QrResponse<T> resp;
      resp.status = s;
      prom->set_value(std::move(resp));
    };
    const Admit adm = enqueue(std::move(job), req, blocking);
    if (adm != Admit::Queued) {
      QrResponse<T> resp;
      resp.status = adm == Admit::Shed ? RequestStatus::Shed
                                       : RequestStatus::Rejected;
      prom->set_value(std::move(resp));
    }
    return fut;
  }

  // Resolves {algorithm, options} for a request, then runs it on `dev`.
  template <typename T>
  void run_one(gpusim::Device& dev, Matrix<T>& a, const RequestOptions& req,
               bool has_deadline, Clock::time_point deadline,
               QrResponse<T>& resp) {
    CAQR_PROF_SCOPE("serve.request_ns");
    const idx m = a.rows(), n = a.cols();
    QrAlgorithm algo;
    CaqrOptions opts;
    const double p0 = wall_seconds();
    resolve_plan<T>(m, n, req, algo, opts, resp.plan_cache_hit);
    resp.plan_seconds = wall_seconds() - p0;
    if (opts_.post_plan_hook) opts_.post_plan_hook();

    // Pre-solve re-check: the dequeue check bounds queueing delay, but an
    // uncached plan resolution (autotune sweep) can itself outlive a tight
    // deadline — answer DeadlineExpired now instead of burning the solve.
    if (has_deadline && Clock::now() > deadline) {
      static prof::Counter& c = prof::counter("serve.presolve_expired");
      c.add(1);
      resp.status = RequestStatus::DeadlineExpired;
      return;
    }

    const double t0 = dev.elapsed_seconds();
    if (dev.mode() == gpusim::ExecMode::Functional) {
      resp.result = adaptive_qr(dev, a.view(), algo, opts);
      // Solve-level retry: an Unrecovered outcome (the device-level ladder
      // exhausted) is re-run on a freshly constructed CLEAN device — no
      // injector, same model and recovery policy. The retry's simulated
      // time is charged to the worker's timeline so simulated_seconds and
      // busy accounting stay honest.
      while (resp.result.run_status.severity == ft::Severity::Unrecovered &&
             resp.solve_retries < opts_.max_solve_retries) {
        ++resp.solve_retries;
        gpusim::Device clean(opts_.model, opts_.mode);
        clean.set_fault_tolerance(opts_.ft);
        QrSolveResult<T> redo = adaptive_qr(clean, a.view(), algo, opts);
        dev.add_external_seconds(clean.elapsed_seconds(), "solve_retry");
        // The failed attempt's counters carry over; its Unrecovered
        // severity does not — the retry superseded it, so the solve as a
        // whole is at worst Corrected unless the retry also failed.
        ft::RunStatus prior = resp.result.run_status;
        prior.severity = ft::Severity::Corrected;
        redo.run_status.merge(prior);
        redo.severity = redo.run_status.severity;
        resp.result = std::move(redo);
      }
      if (resp.solve_retries > 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        solve_retries_ += resp.solve_retries;
      }
    } else {
      // ModelOnly: charge adaptive_qr's exact launch sequence on
      // storage-free placeholders (adaptive_qr itself copies the input,
      // which a shape_only matrix cannot back).
      const idx k = std::min(m, n);
      resp.result.used = algo;
      if (is_cholqr(algo)) {
        auto res = tsqr::cholqr(dev, Matrix<T>::shape_only(m, n),
                                cholqr_options_for(algo, opts));
        resp.result.q = std::move(res.q);
        resp.result.r = std::move(res.r);
      } else if (algo == QrAlgorithm::Caqr) {
        auto f = CaqrFactorization<T>::factor(
            dev, Matrix<T>::shape_only(m, n), opts);
        Matrix<T> q = Matrix<T>::shape_only(m, k);
        f.apply_q(dev, q.view());  // form_q's charges without the identity
        resp.result.q = std::move(q);
      } else {
        baselines::hybrid_qr(dev, Matrix<T>::shape_only(m, n));
        baselines::charge_gemm(dev, m, k, k, "hybrid_orgqr");
        resp.result.q = Matrix<T>::shape_only(m, k);
      }
      resp.result.r = Matrix<T>::shape_only(k, n);
      resp.result.simulated_seconds = dev.elapsed_seconds() - t0;
    }
    resp.simulated_seconds = dev.elapsed_seconds() - t0;
    resp.run_status = resp.result.run_status;
  }

  template <typename T>
  void run_batch(gpusim::Device& dev, std::vector<Matrix<T>>& problems,
                 const RequestOptions& req, BatchResponse<T>& resp) {
    CAQR_CHECK(!problems.empty());
    const idx m = problems.front().rows(), n = problems.front().cols();
    QrAlgorithm algo;
    CaqrOptions opts;
    const double p0 = wall_seconds();
    resolve_plan<T>(m, n, req, algo, opts, resp.plan_cache_hit);
    resp.plan_seconds = wall_seconds() - p0;
    resp.result = factor_batch<T>(dev, std::move(problems), algo, opts);
  }

  template <typename T>
  void resolve_plan(idx m, idx n, const RequestOptions& req,
                    QrAlgorithm& algo, CaqrOptions& opts, bool& cache_hit) {
    CAQR_PROF_SCOPE("serve.plan_resolve_ns");
    algo = req.algo;
    opts = req.caqr;
    cache_hit = false;
    if (req.use_plan) {
      if (opts_.use_plan_cache) {
        const PlanCache::Lookup lk = cache_.lookup<T>(
            opts_.model, m, n, req.algo, req.caqr, req.cond_estimate);
        cache_hit = lk.hit;
        algo = lk.plan->chosen;
        opts = lk.plan->caqr;
      } else {
        const QrPlan p = make_plan<T>(opts_.model, m, n, req.algo, req.caqr,
                                      req.cond_estimate);
        algo = p.chosen;
        opts = p.caqr;
      }
    } else if (algo == QrAlgorithm::Auto) {
      // Verbatim options: resolve Auto by prediction only, no tuning.
      algo = predict_caqr_seconds<T>(opts_.model, m, n, opts) <=
                     predict_hybrid_seconds<T>(opts_.model, m, n)
                 ? QrAlgorithm::Caqr
                 : QrAlgorithm::Hybrid;
    }
  }

  // Admission. Anything but Queued means the job was NOT queued (caller
  // delivers the terminal response — the job's callbacks are untouched).
  Admit enqueue(Job job, const RequestOptions& req, bool blocking) {
    if (req.deadline_seconds > 0) {
      job.has_deadline = true;
      job.deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 req.deadline_seconds));
    }
    job.tenant = req.tenant;
    job.submitted = Clock::now();
    static prof::Counter& wait = prof::counter("serve.pool_lock_wait_ns");
    std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
    prof::lock_timed(lock, wait);
    // Overload protection runs BEFORE the backpressure wait: a shed caller
    // gets its typed answer immediately instead of blocking on a queue that
    // is already past the depth it is willing to serve.
    if (const Admit shed = shed_decision(req, job); shed != Admit::Queued) {
      ++shed_;
      return shed;
    }
    if (blocking) {
      cv_space_.wait(lock, [&] {
        return stopping_ || queued_ < opts_.queue_capacity;
      });
    }
    if (stopping_ || queued_ >= opts_.queue_capacity) {
      ++rejected_;
      return Admit::Rejected;
    }
    if (opts_.fair_share) {
      if (deficit_.emplace(req.tenant, 0.0).second) {
        rr_order_.push_back(req.tenant);
      }
      tenant_queues_[req.tenant].emplace(
          std::make_pair(req.priority, seq_++), std::move(job));
    } else {
      queue_.emplace(std::make_pair(req.priority, seq_++), std::move(job));
    }
    ++queued_;
    ++submitted_;
    lock.unlock();
    cv_work_.notify_one();
    return Admit::Queued;
  }

  // Per-tenant service weight; absent or non-positive entries mean 1.0.
  double tenant_weight(int tenant) const {
    const auto it = opts_.tenant_weights.find(tenant);
    return it == opts_.tenant_weights.end() || it->second <= 0 ? 1.0
                                                               : it->second;
  }

  // Next job per dispatch policy; call with mutex_ held and queued_ > 0.
  // Fair-share mode runs deficit round-robin: each visit to a tenant with
  // work credits its deficit by its weight; a deficit >= 1 buys one served
  // request, a visit that cannot afford one is a counted starvation skip.
  // Termination: every full cycle credits each non-empty tenant by its
  // weight, so within ceil(1/min_weight) cycles someone can afford a serve.
  Job pop_next_locked() {
    if (!opts_.fair_share) {
      auto it = queue_.begin();
      Job job = std::move(it->second);
      queue_.erase(it);
      --queued_;
      return job;
    }
    for (;;) {
      for (std::size_t n = 0; n < rr_order_.size(); ++n) {
        rr_pos_ = (rr_pos_ + 1) % rr_order_.size();
        const int tenant = rr_order_[rr_pos_];
        auto& q = tenant_queues_[tenant];
        if (q.empty()) continue;
        double& d = deficit_[tenant];
        d += tenant_weight(tenant);
        if (d < 1.0) {
          ++starved_rounds_;
          ++tenant_starved_[tenant];
          continue;
        }
        d -= 1.0;
        auto it = q.begin();
        Job job = std::move(it->second);
        q.erase(it);
        if (q.empty()) d = 0.0;  // no credit hoarding across idle periods
        --queued_;
        ++tenant_served_[tenant];
        return job;
      }
    }
  }

  // Overload-protection policy, called with mutex_ held. Two independent
  // rules, both opt-in via PoolOptions:
  //   * depth bound — the queue already holds shed_queue_depth entries;
  //   * deadline feasibility — the request's estimated queueing delay
  //     (depth x EMA wall service seconds / workers) exceeds its budget,
  //     so it would expire in the queue anyway.
  Admit shed_decision(const RequestOptions& req, const Job& job) const {
    if (opts_.shed_queue_depth > 0 && !stopping_ &&
        queued_ >= opts_.shed_queue_depth) {
      return Admit::Shed;
    }
    if (opts_.shed_infeasible_deadlines && job.has_deadline &&
        ema_service_seconds_ > 0) {
      const double est_wait = static_cast<double>(queued_) *
                              ema_service_seconds_ /
                              static_cast<double>(opts_.workers);
      if (est_wait > req.deadline_seconds) return Admit::Shed;
    }
    return Admit::Queued;
  }

  void worker_main(int widx) {
    // One simulated GPU per worker, constructed on the worker thread, armed
    // with the pool-wide fault environment (injector + recovery policy).
    gpusim::Device dev(opts_.model, opts_.mode);
    dev.set_fault_injection(opts_.fault);
    dev.set_fault_tolerance(opts_.ft);
    for (;;) {
      Job job;
      {
        static prof::Counter& wait =
            prof::counter("serve.pool_lock_wait_ns");
        std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
        prof::lock_timed(lock, wait);
        cv_work_.wait(lock, [&] { return stopping_ || queued_ > 0; });
        if (queued_ == 0) return;  // stopping and drained
        job = pop_next_locked();
        ++active_;
      }
      // One slot freed admits one blocked producer; notify_all here was a
      // thundering herd that serialized every producer through the mutex
      // on each dequeue.
      cv_space_.notify_one();
      {
        static prof::Histogram& qwait = prof::histogram("serve.queue_wait");
        qwait.record(std::chrono::duration<double, std::nano>(
                         Clock::now() - job.submitted)
                         .count());
      }
      if (job.has_deadline && Clock::now() > job.deadline) {
        // Count before fulfilling the promise: a waiter woken by the
        // response future must already see the stat it implies.
        bool drained;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++expired_;
          --active_;
          drained = queued_ == 0 && active_ == 0;
        }
        job.finish(RequestStatus::DeadlineExpired);
        if (drained) cv_drain_.notify_all();
        continue;
      }
      // Fresh timeline per request: simulated_seconds is the request's own
      // device time, and results cannot depend on what ran before.
      dev.reset_timeline();
      const double w0 = wall_seconds();
      const RequestStatus rs = job.run(dev, job.has_deadline, job.deadline);
      const double service = wall_seconds() - w0;
      bool drained;
      {
        static prof::Counter& wait =
            prof::counter("serve.pool_lock_wait_ns");
        prof::timed_lock<std::mutex> lock(mutex_, wait);
        busy_sim_[static_cast<std::size_t>(widx)] += dev.elapsed_seconds();
        if (rs == RequestStatus::Done) {
          // Wall service-time EMA feeding the deadline-feasibility shed
          // rule; a presolve-expired request never solved, so its (tiny)
          // service time would only drag the estimate down.
          ema_service_seconds_ = ema_service_seconds_ == 0
                                     ? service
                                     : 0.8 * ema_service_seconds_ +
                                           0.2 * service;
          ++completed_;
        } else {
          ++expired_;
          ++presolve_expired_;
        }
        --active_;
        drained = queued_ == 0 && active_ == 0;
      }
      // wait_drain's predicate is "queue empty and nothing active": waking
      // its waiters on EVERY completion stampeded them through the mutex
      // per request. Notify only at the drained edge they wait for.
      if (drained) cv_drain_.notify_all();
    }
  }

  const PoolOptions opts_;
  PlanCache cache_;
  mutable std::mutex mutex_;
  std::condition_variable cv_work_;   // queue became non-empty / stopping
  std::condition_variable cv_space_;  // queue dropped below capacity
  std::condition_variable cv_drain_;  // a request finished
  // Dispatch order: ascending (priority, submission sequence) — the single
  // global queue when fair_share is off, per-tenant queues under deficit
  // round-robin when it is on. `queued_` counts entries across both.
  std::map<std::pair<int, std::uint64_t>, Job> queue_;
  std::map<int, std::map<std::pair<int, std::uint64_t>, Job>> tenant_queues_;
  std::vector<int> rr_order_;  // tenants in first-seen order
  std::size_t rr_pos_ = 0;     // last tenant visited by the scheduler
  std::map<int, double> deficit_;
  std::map<int, long long> tenant_served_;
  std::map<int, long long> tenant_starved_;
  long long starved_rounds_ = 0;
  std::size_t queued_ = 0;
  std::uint64_t seq_ = 0;
  int active_ = 0;
  bool stopping_ = false;
  long long submitted_ = 0;
  long long completed_ = 0;
  long long rejected_ = 0;
  long long expired_ = 0;
  long long shed_ = 0;
  long long solve_retries_ = 0;
  long long presolve_expired_ = 0;
  double ema_service_seconds_ = 0;  // wall seconds per served request
  std::vector<double> busy_sim_;
  std::vector<std::thread> threads_;  // last: joins before members destruct
};

// svd::QrHook adapter: routes a tall-skinny-SVD (and hence Robust PCA)
// stage-1 QR through a SolverPool. Submits with use_plan=false and the
// caller's CaqrOptions verbatim, so the pooled factorization is
// bit-identical to the inline one it replaces; the simulated seconds the
// request took on the worker's device are returned for the caller to charge
// to its own timeline. Requires a Functional pool (the hook moves real
// factors back). Thread-safe: holds no mutable state beyond the pool
// pointer.
class PooledQrHook final : public svd::QrHook {
 public:
  explicit PooledQrHook(SolverPool& pool) : pool_(&pool) {}

  double qr(ConstMatrixView<float> a, const CaqrOptions& opt,
            Matrix<float>& q, Matrix<float>& r) override {
    return run<float>(a, opt, q, r);
  }
  double qr(ConstMatrixView<double> a, const CaqrOptions& opt,
            Matrix<double>& q, Matrix<double>& r) override {
    return run<double>(a, opt, q, r);
  }

 private:
  template <typename T>
  double run(ConstMatrixView<T> a, const CaqrOptions& opt, Matrix<T>& q,
             Matrix<T>& r) {
    CAQR_CHECK_MSG(
        pool_->options().mode == gpusim::ExecMode::Functional,
        "PooledQrHook needs a Functional pool (it returns real factors)");
    RequestOptions req;
    req.algo = QrAlgorithm::Caqr;
    req.use_plan = false;  // verbatim options => bit-identical to inline
    req.caqr = opt;
    QrResponse<T> resp = pool_->submit(Matrix<T>::from(a), req).get();
    CAQR_CHECK(resp.status == RequestStatus::Done);
    q = std::move(resp.result.q);
    r = std::move(resp.result.r);
    return resp.simulated_seconds;
  }

  SolverPool* pool_;
};

}  // namespace caqr::serve

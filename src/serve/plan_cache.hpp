#pragma once

// Plan cache for the batched QR serving layer.
//
// The serving workload the paper motivates (§VI: Robust PCA re-factors a
// 110,592 x 100 matrix every iteration) is many repeated factorizations of
// the SAME shape. Planning a request — sweeping the §IV.F block-size grid
// with `caqr::autotune::autotune_block_size` and predicting the CAQR vs
// hybrid cost with the §V.C selector — touches no data and is a pure
// function of (shape, dtype, requested algorithm, machine model). PlanCache
// memoizes exactly that function, keyed by
//
//   (rows, cols, sizeof(scalar), requested algorithm, model fingerprint)
//
// so the second request of a shape skips tuning and prediction entirely.
// The model fingerprint (GpuMachineModel::fingerprint) folds every
// calibration constant into the key: deploying a different machine model
// invalidates nothing explicitly — old entries simply stop matching and age
// out of the LRU.
//
// Thread safety: every public member is safe to call concurrently; one
// mutex guards the map, the LRU list and the counters. Misses compute the
// plan UNDER the lock — planning is milliseconds of ModelOnly simulation,
// and serializing misses guarantees one plan per key (no duplicate sweeps,
// deterministic counters). Steady-state traffic is hits, which only touch
// the LRU list. Determinism: plans are pure functions of the key, so cache
// hit vs miss can never change a request's numerical result — only how fast
// the options were obtained. Entries are returned as shared_ptr<const>
// snapshots, valid even after eviction.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>

#include "caqr/autotune.hpp"
#include "caqr/solver.hpp"
#include "dist/dist_caqr.hpp"
#include "gpusim/machine_model.hpp"

namespace caqr::serve {

// Cache key. Ordered lexicographically so it can drive a std::map. For
// multi-device plans, `devices` is the grid size and `model_fingerprint`
// holds dist::DeviceGrid::fingerprint() — which folds in the interconnect
// link parameters and the per-device model digests — so changing the link
// model, the device model, or the device count makes every old entry stop
// matching and age out of the LRU (no explicit invalidation).
struct PlanKey {
  idx rows = 0;
  idx cols = 0;
  int scalar_size = 0;                 // sizeof(T): plans are dtype-specific
  QrAlgorithm requested = QrAlgorithm::Auto;
  std::uint64_t model_fingerprint = 0;
  int devices = 1;                     // 1 = single-device serving path

  friend bool operator<(const PlanKey& a, const PlanKey& b) {
    return std::tie(a.rows, a.cols, a.scalar_size, a.requested,
                    a.model_fingerprint, a.devices) <
           std::tie(b.rows, b.cols, b.scalar_size, b.requested,
                    b.model_fingerprint, b.devices);
  }
};

// Everything a worker needs to run a request without re-planning: the tuned
// block shape, both cost predictions, and the algorithm the §V.C selector
// chose. Immutable once published (always held as shared_ptr<const>).
struct QrPlan {
  PlanKey key;
  QrAlgorithm chosen = QrAlgorithm::Caqr;
  double predicted_caqr_seconds = 0;
  double predicted_hybrid_seconds = 0;
  autotune::TunedBlock tuned;  // §IV.F sweep winner for the model
  // CAQR options with the tuned block shape applied — what the worker (and
  // the fused batch path) actually runs.
  CaqrOptions caqr;
  // Multi-device plans (key.devices > 1): the tuned distributed options;
  // predicted_caqr_seconds then holds the grid-simulated CAQR time.
  dist::DistCaqrOptions dist_caqr;
};

// Computes a plan from scratch — the exact work a PlanCache miss performs
// and what every request pays when serving with the cache disabled. Pure
// function of its arguments (ModelOnly simulation only; no data, no host
// state), so two calls with equal arguments return equal plans.
template <typename T>
QrPlan make_plan(const gpusim::GpuMachineModel& model, idx m, idx n,
                 QrAlgorithm algo = QrAlgorithm::Auto,
                 const CaqrOptions& base = {}) {
  QrPlan p;
  p.key = PlanKey{m, n, static_cast<int>(sizeof(T)), algo,
                  model.fingerprint()};
  p.tuned = autotune::autotune_block_size(model);
  p.caqr = base;
  p.caqr.panel_width = p.tuned.panel_width;
  p.caqr.tsqr.block_rows = p.tuned.block_rows;
  p.predicted_caqr_seconds = predict_caqr_seconds<T>(model, m, n, p.caqr);
  p.predicted_hybrid_seconds = predict_hybrid_seconds<T>(model, m, n);
  p.chosen = algo;
  if (algo == QrAlgorithm::Auto) {
    p.chosen = p.predicted_caqr_seconds <= p.predicted_hybrid_seconds
                   ? QrAlgorithm::Caqr
                   : QrAlgorithm::Hybrid;
  }
  return p;
}

// Multi-device plan: tunes the per-device block shape on the grid's device
// model (§IV.F sweep — shards see the same kernels as a lone device), then
// predicts the end-to-end distributed time with a ModelOnly grid run that
// includes every modeled link transfer. Pure function of (shape, dtype,
// grid fingerprint, grid size): equal grids yield equal plans.
template <typename T>
QrPlan make_dist_plan(const dist::DeviceGrid& grid, idx m, idx n,
                      const dist::DistCaqrOptions& base = {}) {
  QrPlan p;
  p.key = PlanKey{m, n, static_cast<int>(sizeof(T)), QrAlgorithm::Caqr,
                  grid.fingerprint(), grid.size()};
  p.tuned = autotune::autotune_block_size(grid.device(0).model());
  p.dist_caqr = base;
  p.dist_caqr.panel_width = p.tuned.panel_width;
  p.dist_caqr.tsqr.block_rows = p.tuned.block_rows;
  p.caqr.panel_width = p.tuned.panel_width;
  p.caqr.tsqr.block_rows = p.tuned.block_rows;
  p.predicted_caqr_seconds = dist::predict_dist_caqr_seconds<T>(
      grid.device(0).model(), grid.interconnect(), grid.size(), m, n,
      p.dist_caqr);
  p.predicted_hybrid_seconds = 0;  // no distributed hybrid path
  p.chosen = QrAlgorithm::Caqr;
  return p;
}

class PlanCache {
 public:
  // `capacity` bounds the number of resident plans; the least recently used
  // entry is evicted past it. Capacity 0 degenerates to "never cache"
  // (every lookup is a miss + immediate eviction).
  explicit PlanCache(std::size_t capacity = 64) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Lookup result: the plan plus whether it was served from cache — the
  // per-request hit flag a concurrent caller cannot reconstruct from the
  // global counters.
  struct Lookup {
    std::shared_ptr<const QrPlan> plan;
    bool hit = false;
  };

  // Returns the plan for (shape, dtype, algo, model), computing and
  // inserting it on miss. The returned snapshot stays valid after eviction.
  template <typename T>
  Lookup lookup(const gpusim::GpuMachineModel& model, idx m, idx n,
                QrAlgorithm algo = QrAlgorithm::Auto,
                const CaqrOptions& base = {}) {
    const PlanKey key{m, n, static_cast<int>(sizeof(T)), algo,
                      model.fingerprint()};
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return {it->second.plan, true};
    }
    ++misses_;
    auto plan = std::make_shared<const QrPlan>(
        make_plan<T>(model, m, n, algo, base));
    lru_.push_front(key);
    entries_[key] = Entry{plan, lru_.begin()};
    while (entries_.size() > capacity_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      ++evictions_;
    }
    return {plan, false};
  }

  // Distributed lookup: keyed on the composed grid fingerprint AND device
  // count, so a changed link model, device model or grid size is a miss and
  // the stale plan ages out of the LRU. Shares the map/LRU/counters with
  // single-device plans (devices=1 keys can never collide with grid keys).
  template <typename T>
  Lookup lookup_dist(const dist::DeviceGrid& grid, idx m, idx n,
                     const dist::DistCaqrOptions& base = {}) {
    const PlanKey key{m, n, static_cast<int>(sizeof(T)), QrAlgorithm::Caqr,
                      grid.fingerprint(), grid.size()};
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return {it->second.plan, true};
    }
    ++misses_;
    auto plan = std::make_shared<const QrPlan>(
        make_dist_plan<T>(grid, m, n, base));
    lru_.push_front(key);
    entries_[key] = Entry{plan, lru_.begin()};
    while (entries_.size() > capacity_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      ++evictions_;
    }
    return {plan, false};
  }

  template <typename T>
  std::shared_ptr<const QrPlan> plan(const gpusim::GpuMachineModel& model,
                                     idx m, idx n,
                                     QrAlgorithm algo = QrAlgorithm::Auto,
                                     const CaqrOptions& base = {}) {
    return lookup<T>(model, m, n, algo, base).plan;
  }

  // Monotonic counters (never reset by eviction); size() is the resident
  // entry count.
  long long hits() const { return locked(hits_); }
  long long misses() const { return locked(misses_); }
  long long evictions() const { return locked(evictions_); }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    lru_.clear();
  }

 private:
  struct Entry {
    std::shared_ptr<const QrPlan> plan;
    std::list<PlanKey>::iterator lru_pos;
  };

  long long locked(const long long& v) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return v;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::map<PlanKey, Entry> entries_;
  std::list<PlanKey> lru_;  // front = most recently used
  long long hits_ = 0;
  long long misses_ = 0;
  long long evictions_ = 0;
};

}  // namespace caqr::serve

#pragma once

// Plan cache for the batched QR serving layer.
//
// The serving workload the paper motivates (§VI: Robust PCA re-factors a
// 110,592 x 100 matrix every iteration) is many repeated factorizations of
// the SAME shape. Planning a request — sweeping the §IV.F block-size grid
// with `caqr::autotune::autotune_block_size` and predicting the CAQR vs
// hybrid cost with the §V.C selector — touches no data and is a pure
// function of (shape, dtype, requested algorithm, machine model). PlanCache
// memoizes exactly that function, keyed by
//
//   (rows, cols, sizeof(scalar), requested algorithm, model fingerprint,
//    condition-estimate bucket)
//
// so the second request of a shape skips tuning and prediction entirely.
//
// The selector is a real adaptive picker over {CAQR, Hybrid, CholeskyQR2,
// CholeskyQR3, mixed-precision CholeskyQR2}: every candidate's cost is
// predicted with the machine model, but the CholeskyQR variants are only
// ADMISSIBLE when the caller supplies a condition estimate under the
// variant's stability bound (tsqr::cholqr2_max_cond etc. — eps*cond^2
// squaring makes an unconditional CholeskyQR pick numerically unsafe), and
// the mixed path additionally requires the model to have tensor cores. No
// condition hint means Householder candidates only. The hint enters the key
// as a log10 bucket, so "same shape, very different conditioning" requests
// get distinct plans while jittery estimates of one workload share an entry.
// The model fingerprint (GpuMachineModel::fingerprint) folds every
// calibration constant into the key: deploying a different machine model
// invalidates nothing explicitly — old entries simply stop matching and age
// out of the LRU.
//
// Thread safety: every public member is safe to call concurrently; one
// mutex guards the map, the LRU list and the counters, and is held only for
// the map/LRU bookkeeping — never while planning. Misses compute the plan
// OUTSIDE the lock with per-key once semantics: the first requester of a
// key publishes a slot under the lock, releases it, and plans into the slot
// via std::call_once; concurrent requesters of the same key find the slot
// and block in call_once until the plan is published (exactly one planning
// sweep per key — see plans_computed()), while requesters of OTHER keys
// proceed untouched. Planning is milliseconds of ModelOnly simulation, so
// holding the lock across it would serialize every worker behind each cold
// shape. Steady-state traffic is hits, which only touch the LRU list.
// Determinism: plans are pure functions of the key, so cache hit vs miss
// can never change a request's numerical result — only how fast the options
// were obtained. Entries are returned as shared_ptr<const> snapshots, valid
// even after eviction.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>

#include "caqr/autotune.hpp"
#include "caqr/solver.hpp"
#include "common/profile.hpp"
#include "dist/dist_caqr.hpp"
#include "gpusim/machine_model.hpp"

namespace caqr::serve {

// Cache key. Ordered lexicographically so it can drive a std::map. For
// multi-device plans, `devices` is the grid size and `model_fingerprint`
// holds dist::DeviceGrid::fingerprint() — which folds in the interconnect
// link parameters and the per-device model digests — so changing the link
// model, the device model, or the device count makes every old entry stop
// matching and age out of the LRU (no explicit invalidation).
struct PlanKey {
  idx rows = 0;
  idx cols = 0;
  int scalar_size = 0;                 // sizeof(T): plans are dtype-specific
  QrAlgorithm requested = QrAlgorithm::Auto;
  std::uint64_t model_fingerprint = 0;
  int devices = 1;                     // 1 = single-device serving path
  // floor(log10(cond estimate)) clamped to [0, 15]; -1 = no estimate. Part
  // of the key because it changes which algorithms are admissible.
  int cond_bucket = -1;

  friend bool operator<(const PlanKey& a, const PlanKey& b) {
    return std::tie(a.rows, a.cols, a.scalar_size, a.requested,
                    a.model_fingerprint, a.devices, a.cond_bucket) <
           std::tie(b.rows, b.cols, b.scalar_size, b.requested,
                    b.model_fingerprint, b.devices, b.cond_bucket);
  }
};

// Buckets a condition-number estimate for the plan key: floor(log10),
// clamped to [0, 15]; non-positive (unknown) maps to -1.
inline int cond_bucket_of(double cond_hint) {
  if (!(cond_hint > 0)) return -1;
  const double lg = std::log10(cond_hint);
  if (lg <= 0) return 0;
  return lg >= 15 ? 15 : static_cast<int>(lg);
}

// Representative condition value for a bucket (used to test admissibility
// deterministically from the bucketed key, not the raw hint): the bucket's
// upper edge, so admissibility is conservative within the bucket.
inline double cond_bucket_upper(int bucket) {
  return bucket < 0 ? 0.0 : std::pow(10.0, bucket + 1);
}

// Everything a worker needs to run a request without re-planning: the tuned
// block shape, both cost predictions, and the algorithm the §V.C selector
// chose. Immutable once published (always held as shared_ptr<const>).
struct QrPlan {
  PlanKey key;
  QrAlgorithm chosen = QrAlgorithm::Caqr;
  double predicted_caqr_seconds = 0;
  double predicted_hybrid_seconds = 0;
  // CholeskyQR-family predictions; 0 when the variant was not admissible
  // for the key's condition bucket (or, for mixed, the model lacks tensor
  // cores) and was therefore never a candidate.
  double predicted_cholqr2_seconds = 0;
  double predicted_cholqr3_seconds = 0;
  double predicted_cholqr2_mixed_seconds = 0;
  autotune::TunedBlock tuned;  // §IV.F sweep winner for the model
  // CAQR options with the tuned block shape applied — what the worker (and
  // the fused batch path) actually runs.
  CaqrOptions caqr;
  // Options for the chosen CholeskyQR variant (valid when is_cholqr(chosen)).
  tsqr::CholQrOptions cholqr;
  // Multi-device plans (key.devices > 1): the tuned distributed options;
  // predicted_caqr_seconds then holds the grid-simulated CAQR time.
  dist::DistCaqrOptions dist_caqr;
};

// Computes a plan from scratch — the exact work a PlanCache miss performs
// and what every request pays when serving with the cache disabled. Pure
// function of its arguments (ModelOnly simulation only; no data, no host
// state), so two calls with equal arguments return equal plans.
template <typename T>
QrPlan make_plan(const gpusim::GpuMachineModel& model, idx m, idx n,
                 QrAlgorithm algo = QrAlgorithm::Auto,
                 const CaqrOptions& base = {}, double cond_hint = 0.0) {
  CAQR_PROF_SCOPE("plan_cache.plan_build_ns");
  QrPlan p;
  p.key = PlanKey{m, n, static_cast<int>(sizeof(T)), algo,
                  model.fingerprint(), 1, cond_bucket_of(cond_hint)};
  p.tuned = autotune::autotune_block_size(model);
  p.caqr = base;
  p.caqr.panel_width = p.tuned.panel_width;
  p.caqr.tsqr.block_rows = p.tuned.block_rows;
  p.predicted_caqr_seconds = predict_caqr_seconds<T>(model, m, n, p.caqr);
  p.predicted_hybrid_seconds = predict_hybrid_seconds<T>(model, m, n);

  // CholeskyQR admissibility is decided from the bucket's UPPER edge (not
  // the raw hint), so every hint in a bucket yields the identical plan. A
  // variant is a candidate only when the estimated condition is under its
  // stability bound; m >= n is required (Gram path is tall-skinny only).
  const double cond = cond_bucket_upper(p.key.cond_bucket);
  const bool tall = m >= n && n > 0;
  const bool cqr2_ok = tall && cond > 0 && cond <= tsqr::cholqr2_max_cond<T>();
  const bool cqr3_ok = tall && cond > 0 && cond <= tsqr::cholqr3_max_cond<T>();
  const bool mixed_ok =
      tall && cond > 0 && model.has_tensor_cores() &&
      cond <= tsqr::cholqr_mixed_max_cond(gpusim::PrecisionPolicy::Tf32Gram);
  const auto cq_opts = [&](QrAlgorithm a) {
    return cholqr_options_for(a, p.caqr);
  };
  if (cqr2_ok) {
    p.predicted_cholqr2_seconds = tsqr::predict_cholqr_seconds<T>(
        model, m, n, cq_opts(QrAlgorithm::CholeskyQr2));
  }
  if (cqr3_ok) {
    p.predicted_cholqr3_seconds = tsqr::predict_cholqr_seconds<T>(
        model, m, n, cq_opts(QrAlgorithm::CholeskyQr3));
  }
  if (mixed_ok) {
    p.predicted_cholqr2_mixed_seconds = tsqr::predict_cholqr_seconds<T>(
        model, m, n, cq_opts(QrAlgorithm::CholeskyQr2Mixed));
  }

  p.chosen = algo;
  if (algo == QrAlgorithm::Auto) {
    // Cheapest admissible candidate; Householder algorithms are always
    // admissible. Ties break toward the earlier entry (deterministic).
    p.chosen = p.predicted_caqr_seconds <= p.predicted_hybrid_seconds
                   ? QrAlgorithm::Caqr
                   : QrAlgorithm::Hybrid;
    double best = std::min(p.predicted_caqr_seconds,
                           p.predicted_hybrid_seconds);
    const auto consider = [&](bool ok, double t, QrAlgorithm a) {
      if (ok && t > 0 && t < best) {
        best = t;
        p.chosen = a;
      }
    };
    consider(cqr2_ok, p.predicted_cholqr2_seconds, QrAlgorithm::CholeskyQr2);
    consider(cqr3_ok, p.predicted_cholqr3_seconds, QrAlgorithm::CholeskyQr3);
    consider(mixed_ok, p.predicted_cholqr2_mixed_seconds,
             QrAlgorithm::CholeskyQr2Mixed);
  }
  if (is_cholqr(p.chosen)) p.cholqr = cq_opts(p.chosen);
  return p;
}

// Multi-device plan: tunes the per-device block shape on the grid's device
// model (§IV.F sweep — shards see the same kernels as a lone device), then
// picks the cross-device TREE SHAPE with a topology-aware cost probe: each
// candidate (uniform arities, plus the hierarchical intra-node-first trees
// when the grid has a two-level interconnect) is ranked by a ModelOnly run
// on a probe grid mirroring the real topology, so slow-link crossings are
// charged exactly where the real run would cross them. Pure function of
// (shape, dtype, grid fingerprint, LIVE grid size): equal grids yield equal
// plans, and a grid that lost devices yields a plan degraded to its
// survivors — the fingerprint mixes the health generation AND the
// hierarchy's composed link digest, so PlanCache entries planned against
// the full grid (or a different interconnect tier) are invalidated the
// moment the machine changes under them.
template <typename T>
QrPlan make_dist_plan(const dist::DeviceGrid& grid, idx m, idx n,
                      const dist::DistCaqrOptions& base = {}) {
  const std::vector<int> live = grid.live_devices();
  CAQR_CHECK_MSG(!live.empty(), "make_dist_plan: no live devices");
  const int nd = static_cast<int>(live.size());
  QrPlan p;
  p.key = PlanKey{m, n, static_cast<int>(sizeof(T)), QrAlgorithm::Caqr,
                  grid.fingerprint(), nd};
  p.tuned = autotune::autotune_block_size(grid.device(live.front()).model());
  p.dist_caqr = base;
  p.dist_caqr.panel_width = p.tuned.panel_width;
  p.dist_caqr.tsqr.block_rows = p.tuned.block_rows;
  // Graceful degradation: route the factorization's shards onto survivors
  // only. On a healthy grid this is the identity map (live == 0..size-1)
  // and the plan is unchanged from before the health API existed.
  p.dist_caqr.devices = live;
  p.caqr.panel_width = p.tuned.panel_width;
  p.caqr.tsqr.block_rows = p.tuned.block_rows;

  // Candidate tree shapes. Uniform consecutive trees always compete; on a
  // hierarchical grid the topology-aware specs (flat and binary intra-node
  // reductions, each followed by a binary inter-node tree over the node
  // roots) join the field. Fixed candidate order + strict improvement keep
  // the pick deterministic, so equal fingerprints still yield equal plans.
  struct Candidate {
    idx arity;
    dist::CrossSpec spec;
  };
  std::vector<Candidate> cands;
  cands.push_back({2, {}});
  if (nd > 3) cands.push_back({4, {}});
  if (nd > 2) cands.push_back({static_cast<idx>(nd), {}});  // single combine
  const dist::HierarchicalInterconnect* hier = grid.hierarchy();
  if (hier != nullptr && nd > 1 &&
      hier->node_of(live.front()) != hier->node_of(live.back())) {
    cands.push_back(
        {2, dist::topology_cross_spec_for_devices(*hier, live, 0, 2)});
    if (hier->devices_per_node > 2) {
      cands.push_back(
          {2, dist::topology_cross_spec_for_devices(*hier, live, 2, 2)});
    }
  }
  double best = -1;
  for (const Candidate& c : cands) {
    dist::DistCaqrOptions opt = p.dist_caqr;
    opt.cross_arity = c.arity;
    opt.cross_spec = c.spec;
    const double t = dist::predict_dist_caqr_seconds<T>(grid, m, n, opt);
    if (best < 0 || t < best) {
      best = t;
      p.dist_caqr.cross_arity = c.arity;
      p.dist_caqr.cross_spec = c.spec;
    }
  }
  p.predicted_caqr_seconds = best;
  p.predicted_hybrid_seconds = 0;  // no distributed hybrid path
  p.chosen = QrAlgorithm::Caqr;
  return p;
}

class PlanCache {
 public:
  // `capacity` bounds the number of resident plans; the least recently used
  // entry is evicted past it. Capacity 0 degenerates to "never cache"
  // (every lookup is a miss + immediate eviction).
  explicit PlanCache(std::size_t capacity = 64) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Lookup result: the plan plus whether it was served from cache — the
  // per-request hit flag a concurrent caller cannot reconstruct from the
  // global counters.
  struct Lookup {
    std::shared_ptr<const QrPlan> plan;
    bool hit = false;
  };

  // Returns the plan for (shape, dtype, algo, model), computing and
  // inserting it on miss. The returned snapshot stays valid after eviction.
  template <typename T>
  Lookup lookup(const gpusim::GpuMachineModel& model, idx m, idx n,
                QrAlgorithm algo = QrAlgorithm::Auto,
                const CaqrOptions& base = {}, double cond_hint = 0.0) {
    const PlanKey key{m, n, static_cast<int>(sizeof(T)), algo,
                      model.fingerprint(), 1, cond_bucket_of(cond_hint)};
    return lookup_impl(key, [&] {
      return make_plan<T>(model, m, n, algo, base, cond_hint);
    });
  }

  // Distributed lookup: keyed on the composed grid fingerprint AND device
  // count, so a changed link model, device model or grid size is a miss and
  // the stale plan ages out of the LRU. Shares the map/LRU/counters with
  // single-device plans (devices=1 keys can never collide with grid keys).
  template <typename T>
  Lookup lookup_dist(const dist::DeviceGrid& grid, idx m, idx n,
                     const dist::DistCaqrOptions& base = {}) {
    const PlanKey key{m, n, static_cast<int>(sizeof(T)), QrAlgorithm::Caqr,
                      grid.fingerprint(), grid.size()};
    return lookup_impl(key, [&] { return make_dist_plan<T>(grid, m, n,
                                                           base); });
  }

  template <typename T>
  std::shared_ptr<const QrPlan> plan(const gpusim::GpuMachineModel& model,
                                     idx m, idx n,
                                     QrAlgorithm algo = QrAlgorithm::Auto,
                                     const CaqrOptions& base = {}) {
    return lookup<T>(model, m, n, algo, base).plan;
  }

  // Monotonic counters (never reset by eviction); size() is the resident
  // entry count. plans_computed() counts planning sweeps actually executed —
  // with a nonzero capacity it equals the number of distinct keys planned,
  // which is what the concurrency tests assert (no duplicate sweeps when
  // many workers miss the same cold key at once). Capacity 0 evicts slots
  // immediately, so repeated lookups of one key legitimately re-plan.
  long long hits() const { return locked(hits_); }
  long long misses() const { return locked(misses_); }
  long long evictions() const { return locked(evictions_); }
  long long plans_computed() const {
    return plans_computed_.load(std::memory_order_relaxed);
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    lru_.clear();
  }

 private:
  // One cached key's plan slot. The first requester publishes the slot in
  // the map, then plans into it through `once`; later requesters share the
  // slot (keeping it alive past eviction) and call_once blocks them until
  // `plan` is set. After call_once returns, reading `plan` is synchronized.
  struct Slot {
    std::once_flag once;
    std::shared_ptr<const QrPlan> plan;
  };
  struct Entry {
    std::shared_ptr<Slot> slot;
    std::list<PlanKey>::iterator lru_pos;
  };

  template <typename ComputeFn>
  Lookup lookup_impl(const PlanKey& key, ComputeFn&& compute) {
    static prof::Counter& wait = prof::counter("plan_cache.lock_wait_ns");
    std::shared_ptr<Slot> slot;
    bool hit = false;
    {
      prof::timed_lock<std::mutex> lock(mutex_, wait);
      const auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++hits_;
        hit = true;
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        slot = it->second.slot;
      } else {
        ++misses_;
        slot = std::make_shared<Slot>();
        lru_.push_front(key);
        entries_[key] = Entry{slot, lru_.begin()};
        while (entries_.size() > capacity_) {
          entries_.erase(lru_.back());
          lru_.pop_back();
          ++evictions_;
        }
      }
    }
    // Planning happens here, outside the cache lock: one winner per slot,
    // same-key latecomers wait inside call_once, other keys never block.
    std::call_once(slot->once, [&] {
      slot->plan = std::make_shared<const QrPlan>(compute());
      plans_computed_.fetch_add(1, std::memory_order_relaxed);
    });
    return {slot->plan, hit};
  }

  long long locked(const long long& v) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return v;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::map<PlanKey, Entry> entries_;
  std::list<PlanKey> lru_;  // front = most recently used
  long long hits_ = 0;
  long long misses_ = 0;
  long long evictions_ = 0;
  std::atomic<long long> plans_computed_{0};
};

}  // namespace caqr::serve

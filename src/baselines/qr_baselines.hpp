#pragma once

// The comparison QR implementations of §V, rebuilt per DESIGN.md:
//
//   * HybridQR    (MAGMA-like)  — panel factored on the host CPU (BLAS2,
//     bandwidth-bound), PCIe transfer each way, trailing update as GPU GEMM,
//     optional look-ahead overlap of the next panel with the current update.
//   * GpuBlas2QR  (CULA-like / "BLAS2 QR" of Table II) — the entire
//     factorization on the GPU using bandwidth-bound matrix-vector kernels;
//     a `tuned` profile models the paper's own tall-skinny-tuned BLAS2 QR
//     (fused kernels, high achieved bandwidth), the `cula` profile models a
//     generic library (per-column kernel pairs at low achieved bandwidth).
//   * CpuBlockedQR (MKL-like)   — multithreaded blocked Householder on the
//     host: BLAS2 panel at memory bandwidth, BLAS3 update at the CPU GEMM
//     rate.
//   * cholesky_qr / gram_schmidt — the numerically cheaper but unstable
//     alternatives §II dismisses; used by the stability comparisons.
//
// Numerics: in ExecMode::Functional each baseline really factors the matrix
// with the host reference routines (so every invariant test applies to them
// too); in ModelOnly only the simulated timeline advances. Timing: every
// baseline charges the same Device timeline used by CAQR, with its own cost
// model documented inline. Calibration targets are the paper's Table I and
// Figures 8/9; constants are frozen in the option structs.

#include <algorithm>
#include <utility>
#include <vector>

#include "baselines/gemm_model.hpp"
#include "gpusim/device.hpp"
#include "linalg/blas3.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/flops.hpp"
#include "linalg/qr.hpp"

namespace caqr::baselines {

// BLAS2 panel-factorization statistics for a panel of `rows` x `nb` columns:
// flops and bytes of the gemv + ger pair per column (the ger pass reads and
// writes the trailing panel; the gemv pass reads it).
struct PanelWork {
  double flops = 0;
  double bytes = 0;  // per scalar-size 4 (single precision)
  idx columns = 0;
};

inline PanelWork blas2_panel_work(idx rows, idx nb) {
  PanelWork w;
  for (idx j = 0; j < nb; ++j) {
    const double len = static_cast<double>(rows - j);
    const double cols = static_cast<double>(nb - j);
    if (len <= 1) break;
    w.flops += 4.0 * len * cols;       // matvec + rank-1 on the trailing panel
    w.bytes += 3.0 * len * cols * 4.0; // read (gemv), read+write (ger)
    ++w.columns;
  }
  return w;
}

// ---------------------------------------------------------------------------
// MAGMA-like hybrid QR.
// ---------------------------------------------------------------------------

struct HybridQrOptions {
  idx nb = 128;  // MAGMA v1.0 default panel width
  // Effective host bandwidth for the multithreaded BLAS2 panel. The panel
  // work is charged as 3 passes (gemv read, ger read+write); partial cache
  // reuse between passes is folded into this effective rate.
  double cpu_panel_bw_gbs = 24.0;
  // Look-ahead: overlap the CPU factorization of panel p+1 with the GPU
  // update of panel p. Only effective when the trailing update is wide
  // enough to hide the panel (never for tall-skinny shapes).
  bool lookahead = true;
  const char* label = "hybrid_qr";
};

template <typename T>
struct BaselineResult {
  Matrix<T> factored;   // GEQRF-format reflectors + R
  std::vector<T> tau;
  double seconds = 0;   // simulated time of this factorization
  // Hybrid breakdown (zero for single-device baselines).
  double cpu_seconds = 0;
  double pcie_seconds = 0;
  double gpu_seconds = 0;
};

template <typename T>
BaselineResult<T> hybrid_qr(gpusim::Device& dev, Matrix<T> a,
                            const HybridQrOptions& opt = {}) {
  const idx m = a.rows(), n = a.cols();
  const idx kmax = std::min(m, n);
  BaselineResult<T> out{std::move(a),
                        std::vector<T>(static_cast<std::size_t>(kmax)), 0};

  const double t0 = dev.elapsed_seconds();
  const gpusim::PcieModel link;

  // Schedule simulation: cpu_free / gpu_free are stream clocks.
  double cpu_free = 0, gpu_free = 0, pcie_total = 0, cpu_total = 0;
  double gpu_total = 0;
  double now = 0;
  gpusim::Device gemm_probe(dev.model(), gpusim::ExecMode::ModelOnly);

  for (idx k = 0; k < kmax; k += opt.nb) {
    const idx nb = std::min(opt.nb, kmax - k);
    const idx rows = m - k;
    // Panel to host, factor, back to device.
    const double panel_bytes = static_cast<double>(rows) * nb * sizeof(T);
    const PanelWork pw = blas2_panel_work(rows, nb);
    const double t_transfer = 2.0 * link.transfer_seconds(panel_bytes);
    const double t_panel = pw.bytes / (opt.cpu_panel_bw_gbs * 1e9);

    // The CPU leg can start as soon as the panel's column block is
    // up-to-date on the GPU side, i.e. after the previous trailing update
    // unless look-ahead split that update into [panel columns | rest].
    const double cpu_start = opt.lookahead
                                 ? std::max(cpu_free, now)
                                 : std::max({cpu_free, gpu_free, now});
    const double cpu_done = cpu_start + t_transfer + t_panel;
    cpu_total += t_panel;
    pcie_total += t_transfer;
    cpu_free = cpu_done;

    // GPU trailing update waits for the factored panel.
    const idx trailing = n - k - nb;
    double t_update = 0;
    if (trailing > 0) {
      gemm_probe.reset_timeline();
      // Compact-WY update: W = V^T C (nb x trailing), W = T W, C -= V W.
      charge_gemm(gemm_probe, nb, trailing, rows, "probe");
      charge_gemm(gemm_probe, nb, trailing, nb, "probe");
      charge_gemm(gemm_probe, rows, trailing, nb, "probe");
      t_update = gemm_probe.elapsed_seconds();
    }
    const double gpu_start = std::max(gpu_free, cpu_done);
    gpu_free = gpu_start + t_update;
    gpu_total += t_update;
    now = opt.lookahead ? gpu_start : gpu_free;
  }
  // The timeline advances by the schedule's makespan (overlap already
  // credited); the CPU/PCIe/GPU component sums are reported separately so
  // benches can show where hybrid time goes.
  const double makespan = std::max(cpu_free, gpu_free);
  dev.add_external_seconds(makespan, opt.label);
  out.cpu_seconds = cpu_total;
  out.pcie_seconds = pcie_total;
  out.gpu_seconds = gpu_total;

  if (dev.mode() == gpusim::ExecMode::Functional) {
    geqrf(out.factored.view(), out.tau.data(), opt.nb);
  }
  out.seconds = dev.elapsed_seconds() - t0;
  return out;
}

// ---------------------------------------------------------------------------
// Pure-GPU BLAS2 QR (bandwidth-bound): CULA-like and paper-tuned profiles.
// ---------------------------------------------------------------------------

struct GpuBlas2QrOptions {
  // Fraction of peak DRAM bandwidth the matrix-vector kernels achieve.
  double bw_fraction = 0.85;
  // Kernel launches per factored column (fused matvec+update when 1).
  double launches_per_column = 1.0;
  // Extra host-side synchronization per column (driver round trip), us.
  double column_sync_us = 0.0;
  const char* label = "gpu_blas2_qr";

  // The paper's own tall-skinny-tuned BLAS2 QR (Table II middle row):
  // fused kernels, streaming access, minimal launches.
  static GpuBlas2QrOptions tuned() { return {0.85, 1.0, 0.0, "blas2_qr_tuned"}; }
};

// Charges one bandwidth-bound Householder sweep over an m x n matrix
// (unblocked: per column a fused reflector+matvec pass and a rank-1 update
// pass). Shared by the factorization and the ORGQR-style Q formation.
inline void charge_blas2_sweep(gpusim::Device& dev, idx m, idx n,
                               const GpuBlas2QrOptions& opt) {
  const auto& mm = dev.model();
  const PanelWork pw = blas2_panel_work(m, std::min(m, n));
  const double t_mem = pw.bytes / (mm.dram_bw_gbs * 1e9 * opt.bw_fraction);
  const double t_launch = static_cast<double>(pw.columns) *
                          (opt.launches_per_column * mm.kernel_launch_us +
                           opt.column_sync_us) *
                          1e-6;
  dev.add_external_seconds(t_mem, std::string(opt.label) + ":mem");
  dev.add_external_seconds(t_launch, std::string(opt.label) + ":launch");
}

template <typename T>
BaselineResult<T> gpu_blas2_qr(gpusim::Device& dev, Matrix<T> a,
                               const GpuBlas2QrOptions& opt = {}) {
  const idx m = a.rows(), n = a.cols();
  const idx kmax = std::min(m, n);
  BaselineResult<T> out{std::move(a),
                        std::vector<T>(static_cast<std::size_t>(kmax)), 0};
  const double t0 = dev.elapsed_seconds();
  charge_blas2_sweep(dev, m, n, opt);

  if (dev.mode() == gpusim::ExecMode::Functional) {
    std::vector<T> work(static_cast<std::size_t>(std::max<idx>(n, 1)));
    geqr2(out.factored.view(), out.tau.data(), work.data());
  }
  out.seconds = dev.elapsed_seconds() - t0;
  return out;
}

// ---------------------------------------------------------------------------
// CULA-like GPU blocked Householder QR: BLAS2 panel on the GPU
// ("entirely bandwidth-bound operations", §I) + BLAS3 GEMM trailing update.
// ---------------------------------------------------------------------------

struct GpuBlockedQrOptions {
  idx nb = 64;
  // Achieved bandwidth fraction of the per-column gemv/ger kernels on a
  // moderately tall panel.
  double bw_fraction = 0.22;
  // Very tall panels degrade further (launch/occupancy effects per column
  // grow with the reduction depth); empirical penalty ramp, clamped.
  double tall_ramp_rows = 3000.0;
  double tall_penalty_max = 4.3;
  double launches_per_column = 2.0;  // gemv + ger
  double column_sync_us = 20.0;      // host round trip for the column norm
  const char* label = "cula_qr";
};

template <typename T>
BaselineResult<T> gpu_blocked_qr(gpusim::Device& dev, Matrix<T> a,
                                 const GpuBlockedQrOptions& opt = {}) {
  const idx m = a.rows(), n = a.cols();
  const idx kmax = std::min(m, n);
  BaselineResult<T> out{std::move(a),
                        std::vector<T>(static_cast<std::size_t>(kmax)), 0};
  const double t0 = dev.elapsed_seconds();
  const auto& mm = dev.model();

  double t_panels = 0, t_launch = 0;
  for (idx k = 0; k < kmax; k += opt.nb) {
    const idx nb = std::min(opt.nb, kmax - k);
    const idx rows = m - k;
    const PanelWork pw = blas2_panel_work(rows, nb);
    const double pen = std::clamp(static_cast<double>(rows) / opt.tall_ramp_rows,
                                  1.0, opt.tall_penalty_max);
    t_panels += pw.bytes * pen / (mm.dram_bw_gbs * 1e9 * opt.bw_fraction);
    t_launch += static_cast<double>(pw.columns) *
                (opt.launches_per_column * mm.kernel_launch_us +
                 opt.column_sync_us) *
                1e-6;
    const idx trailing = n - k - nb;
    if (trailing > 0) {
      charge_gemm(dev, nb, trailing, rows, "cula_gemm");
      charge_gemm(dev, nb, trailing, nb, "cula_gemm");
      charge_gemm(dev, rows, trailing, nb, "cula_gemm");
    }
  }
  dev.add_external_seconds(t_panels, std::string(opt.label) + ":panel");
  dev.add_external_seconds(t_launch, std::string(opt.label) + ":launch");

  if (dev.mode() == gpusim::ExecMode::Functional) {
    geqrf(out.factored.view(), out.tau.data(), opt.nb);
  }
  out.seconds = dev.elapsed_seconds() - t0;
  return out;
}

// ---------------------------------------------------------------------------
// MKL-like multithreaded CPU blocked QR.
// ---------------------------------------------------------------------------

struct CpuQrOptions {
  idx nb = 64;
  // Achieved bandwidth of the threaded BLAS2 panel (socket STREAM rate; the
  // panel is streamed once per column).
  double panel_bw_gbs = 18.0;
  // Fraction of the model's BLAS3 peak the trailing update achieves at
  // these narrow shapes.
  double gemm_fraction = 0.75;
  // Fork-join cost of each threaded panel column (dominates tiny matrices —
  // the paper's 1k x 192 MKL point).
  double column_overhead_us = 90.0;
  const char* label = "cpu_qr";
};

template <typename T>
BaselineResult<T> cpu_blocked_qr(gpusim::Device& dev, Matrix<T> a,
                                 const gpusim::CpuMachineModel& cpu,
                                 const CpuQrOptions& opt = {}) {
  const idx m = a.rows(), n = a.cols();
  const idx kmax = std::min(m, n);
  BaselineResult<T> out{std::move(a),
                        std::vector<T>(static_cast<std::size_t>(kmax)), 0};
  const double t0 = dev.elapsed_seconds();

  double panel_bytes = 0, panel_cols = 0, blas3_flops = 0;
  for (idx k = 0; k < kmax; k += opt.nb) {
    const idx nb = std::min(opt.nb, kmax - k);
    const PanelWork pw = blas2_panel_work(m - k, nb);
    panel_bytes += pw.bytes;
    panel_cols += static_cast<double>(pw.columns);
    const idx trailing = n - k - nb;
    if (trailing > 0) {
      // larfb: V^T C, T W, C -= V W.
      blas3_flops += gemm_flop_count(nb, trailing, m - k) +
                     gemm_flop_count(nb, trailing, nb) +
                     gemm_flop_count(m - k, trailing, nb);
    }
  }
  const double t_panel = panel_bytes / (opt.panel_bw_gbs * 1e9) +
                         panel_cols * opt.column_overhead_us * 1e-6;
  (void)cpu.parallel_overhead_us;
  const double t_blas3 =
      blas3_flops / (cpu.peak_blas3_flops() * opt.gemm_fraction);
  dev.add_external_seconds(t_panel, std::string(opt.label) + ":panel");
  dev.add_external_seconds(t_blas3, std::string(opt.label) + ":blas3");

  if (dev.mode() == gpusim::ExecMode::Functional) {
    geqrf(out.factored.view(), out.tau.data(), opt.nb);
  }
  out.seconds = dev.elapsed_seconds() - t0;
  return out;
}

// ---------------------------------------------------------------------------
// CholeskyQR and Gram-Schmidt (numerics-focused baselines).
// ---------------------------------------------------------------------------

template <typename T>
struct QrPair {
  Matrix<T> q;
  Matrix<T> r;
  bool ok = true;  // false if Cholesky broke down
};

// Q = A R^-1 with R^T R = A^T A. One pass over A for the Gram matrix, one
// for the solve — the communication-cheapest QR, but the Gram matrix squares
// the condition number.
template <typename VA>
QrPair<view_scalar_t<VA>> cholesky_qr(const VA& a_in) {
  using T = view_scalar_t<VA>;
  const ConstMatrixView<T> a = cview(a_in);
  const idx n = a.cols();
  QrPair<T> out{Matrix<T>::from(a), Matrix<T>::zeros(n, n), true};
  syrk_t(T(1), a, T(0), out.r.view());
  out.ok = potrf_upper(out.r.view());
  if (out.ok) {
    // Q = A R^-1  (solve X R = A row-block-wise).
    trsm(Side::Right, UpLo::Upper, Trans::No, out.r.view(), out.q.view());
  }
  return out;
}

enum class GramSchmidt { Classical, Modified };

template <typename VA>
QrPair<view_scalar_t<VA>> gram_schmidt_qr(const VA& a_in, GramSchmidt kind) {
  using T = view_scalar_t<VA>;
  const ConstMatrixView<T> a = cview(a_in);
  const idx m = a.rows(), n = a.cols();
  QrPair<T> out{Matrix<T>::from(a), Matrix<T>::zeros(n, n), true};
  MatrixView<T> q = out.q.view();
  for (idx j = 0; j < n; ++j) {
    T* qj = q.col(j);
    if (kind == GramSchmidt::Classical) {
      // Project against the ORIGINAL column (classical: all coefficients
      // computed from the unmodified column — the unstable variant).
      std::vector<T> coef(static_cast<std::size_t>(j));
      for (idx i = 0; i < j; ++i) {
        coef[static_cast<std::size_t>(i)] = dot(m, q.col(i), a.col(j));
      }
      for (idx i = 0; i < j; ++i) {
        out.r(i, j) = coef[static_cast<std::size_t>(i)];
        axpy(m, -coef[static_cast<std::size_t>(i)], q.col(i), qj);
      }
    } else {
      for (idx i = 0; i < j; ++i) {
        const T c = dot(m, q.col(i), qj);
        out.r(i, j) = c;
        axpy(m, -c, q.col(i), qj);
      }
    }
    const T norm = nrm2(m, qj);
    out.r(j, j) = norm;
    if (norm > T(0)) scal(m, T(1) / norm, qj);
  }
  return out;
}

}  // namespace caqr::baselines

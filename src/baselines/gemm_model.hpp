#pragma once

// Cost model for a tuned SGEMM launch on the simulated GPU (the trailing-
// matrix update of the blocked-Householder baselines). The roofline uses the
// machine's gemm_efficiency for the compute leg and the minimal tile traffic
// (read A and B once per tile wave, read+write C) for the memory leg.

#include "gpusim/device.hpp"
#include "kernels/kernels.hpp"
#include "linalg/flops.hpp"

namespace caqr::baselines {

// Charges one C(m x n) += A(m x k) * B(k x n) launch to the device timeline.
inline void charge_gemm(gpusim::Device& dev, idx m, idx n, idx k,
                        const char* label = "gpu_gemm") {
  if (m <= 0 || n <= 0 || k <= 0) return;
  const auto& mm = dev.model();
  const double flops = gemm_flop_count(m, n, k);

  gpusim::BlockStats s;
  s.flops = flops;
  // Compute leg expressed in issue cycles so the launch engine's roofline
  // arithmetic applies. The GEMM is charged as one logical block, so its
  // cycles are sized against the whole device: flops / time == efficiency *
  // peak once the launch engine multiplies by stall / clock.
  const double device_flops_per_cycle =
      static_cast<double>(mm.num_sms) * mm.lanes_per_sm * (mm.fma ? 2.0 : 1.0);
  s.issue_cycles = flops / (device_flops_per_cycle * mm.gemm_efficiency) /
                   mm.issue_stall_factor;
  // Memory leg: A and B streamed once per 64-wide tile wave, C read+written.
  const double tile = 64.0;
  const double waves_n = (static_cast<double>(n) + tile - 1) / tile;
  const double waves_m = (static_cast<double>(m) + tile - 1) / tile;
  s.gmem_bytes = (static_cast<double>(m) * k * waves_n +
                  static_cast<double>(k) * n * waves_m +
                  2.0 * static_cast<double>(m) * n) *
                 sizeof(float);

  kernels::CostOnlyKernel kern{label, s};
  // One logical launch: express the whole GEMM as a single block and rely on
  // the sum/max structure (a single launch's time is what we computed above).
  dev.launch(kern, 1);
}

}  // namespace caqr::baselines

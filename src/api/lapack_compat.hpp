#pragma once

// Flat, LAPACK-convention entry points — the adoption surface for code that
// already speaks LAPACK. Two layers:
//
//  1. Drop-in routines in true LAPACK storage conventions (column-major with
//     explicit lda, reflectors + taus, info codes instead of aborts):
//     caqr_sgeqrf / caqr_dgeqrf, caqr_sorgqr / caqr_dorgqr,
//     caqr_sormqr / caqr_dormqr, caqr_sgels / caqr_dgels.
//     These run the host reference path (GEQRF-format output is not
//     representable by the tree-structured CAQR factorization).
//
//  2. Handle-based CAQR routines (caqr_handle_*) that run the simulated-GPU
//     communication-avoiding factorization and expose apply-Q / form-Q /
//     extract-R, for callers who want the paper's algorithm and can hold an
//     opaque factorization object.
//
// Info-code convention: 0 on success; -i when the i-th argument (1-based)
// is invalid — matching LAPACK's xerbla semantics, but returned rather than
// trapped so language bindings can surface errors.

#include <cstdint>

#include "gpusim/device.hpp"
#include "linalg/matrix.hpp"

namespace caqr::api {

using lapack_int = std::int64_t;

// ---------------------------------------------------------------------------
// Layer 1: LAPACK-format reference routines.
// ---------------------------------------------------------------------------

// A = Q R; reflectors below the diagonal, R above, taus in tau[min(m,n)].
lapack_int caqr_sgeqrf(lapack_int m, lapack_int n, float* a, lapack_int lda,
                       float* tau);
lapack_int caqr_dgeqrf(lapack_int m, lapack_int n, double* a, lapack_int lda,
                       double* tau);

// Forms the leading m x k columns of Q from a GEQRF result (k reflectors).
lapack_int caqr_sorgqr(lapack_int m, lapack_int k, float* a, lapack_int lda,
                       const float* tau);
lapack_int caqr_dorgqr(lapack_int m, lapack_int k, double* a, lapack_int lda,
                       const double* tau);

// C := op(Q) C from the left ('T' applies Q^T, 'N' applies Q).
lapack_int caqr_sormqr(char trans, lapack_int m, lapack_int ncols_c,
                       lapack_int k, const float* a, lapack_int lda,
                       const float* tau, float* c, lapack_int ldc);
lapack_int caqr_dormqr(char trans, lapack_int m, lapack_int ncols_c,
                       lapack_int k, const double* a, lapack_int lda,
                       const double* tau, double* c, lapack_int ldc);

// Overdetermined least squares min ||A X - B||_F (m >= n); solution in the
// top n rows of B on return (LAPACK GELS convention).
lapack_int caqr_sgels(lapack_int m, lapack_int n, lapack_int nrhs, float* a,
                      lapack_int lda, float* b, lapack_int ldb);
lapack_int caqr_dgels(lapack_int m, lapack_int n, lapack_int nrhs, double* a,
                      lapack_int lda, double* b, lapack_int ldb);

// ---------------------------------------------------------------------------
// Layer 2: handle-based CAQR on the simulated GPU.
// ---------------------------------------------------------------------------

struct CaqrHandle;  // opaque

// Factors the m x n column-major matrix (copied) with CAQR on a fresh
// simulated C2050 device. Returns nullptr on invalid arguments.
CaqrHandle* caqr_handle_sfactor(lapack_int m, lapack_int n, const float* a,
                                lapack_int lda);

// R into r (ldr x n, min(m,n) rows written). info semantics as above.
lapack_int caqr_handle_extract_r(const CaqrHandle* h, float* r,
                                 lapack_int ldr);

// C := Q^T C ('T') or Q C ('N'); C is m x ncols.
lapack_int caqr_handle_apply_q(CaqrHandle* h, char trans, float* c,
                               lapack_int ldc, lapack_int ncols);

// Explicit Q (m x qcols) into q.
lapack_int caqr_handle_form_q(CaqrHandle* h, float* q, lapack_int ldq,
                              lapack_int qcols);

// Simulated seconds accumulated on the handle's device so far.
double caqr_handle_simulated_seconds(const CaqrHandle* h);

void caqr_handle_destroy(CaqrHandle* h);

}  // namespace caqr::api

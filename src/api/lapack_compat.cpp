#include "api/lapack_compat.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "caqr/caqr.hpp"
#include "linalg/blas3.hpp"
#include "linalg/qr.hpp"

namespace caqr::api {

namespace {

template <typename T>
lapack_int geqrf_impl(lapack_int m, lapack_int n, T* a, lapack_int lda,
                      T* tau) {
  if (m < 0) return -1;
  if (n < 0) return -2;
  if (a == nullptr && m * n != 0) return -3;
  if (lda < std::max<lapack_int>(1, m)) return -4;
  if (tau == nullptr && std::min(m, n) != 0) return -5;
  if (m == 0 || n == 0) return 0;
  geqrf(MatrixView<T>(a, m, n, lda), tau);
  return 0;
}

template <typename T>
lapack_int orgqr_impl(lapack_int m, lapack_int k, T* a, lapack_int lda,
                      const T* tau) {
  if (m < 0) return -1;
  if (k < 0 || k > m) return -2;
  if (a == nullptr && m * k != 0) return -3;
  if (lda < std::max<lapack_int>(1, m)) return -4;
  if (tau == nullptr && k != 0) return -5;
  if (m == 0 || k == 0) return 0;
  // Form Q out of place, then overwrite the leading m x k of a.
  auto q = form_q(ConstMatrixView<T>(a, m, k, lda), tau, k);
  MatrixView<T>(a, m, k, lda).copy_from(q.view());
  return 0;
}

template <typename T>
lapack_int ormqr_impl(char trans, lapack_int m, lapack_int ncols_c,
                      lapack_int k, const T* a, lapack_int lda, const T* tau,
                      T* c, lapack_int ldc) {
  if (trans != 'N' && trans != 'T' && trans != 'n' && trans != 't') return -1;
  if (m < 0) return -2;
  if (ncols_c < 0) return -3;
  if (k < 0 || k > m) return -4;
  if (a == nullptr && m * k != 0) return -5;
  if (lda < std::max<lapack_int>(1, m)) return -6;
  if (tau == nullptr && k != 0) return -7;
  if (c == nullptr && m * ncols_c != 0) return -8;
  if (ldc < std::max<lapack_int>(1, m)) return -9;
  if (m == 0 || ncols_c == 0 || k == 0) return 0;
  const Trans t = (trans == 'T' || trans == 't') ? Trans::Yes : Trans::No;
  apply_q_left(ConstMatrixView<T>(a, m, k, lda), tau, t,
               MatrixView<T>(c, m, ncols_c, ldc));
  return 0;
}

template <typename T>
lapack_int gels_impl(lapack_int m, lapack_int n, lapack_int nrhs, T* a,
                     lapack_int lda, T* b, lapack_int ldb) {
  if (m < 0) return -1;
  if (n < 0 || n > m) return -2;
  if (nrhs < 0) return -3;
  if (a == nullptr && m * n != 0) return -4;
  if (lda < std::max<lapack_int>(1, m)) return -5;
  if (b == nullptr && m * nrhs != 0) return -6;
  if (ldb < std::max<lapack_int>(1, m)) return -7;
  if (m == 0 || n == 0 || nrhs == 0) return 0;

  MatrixView<T> av(a, m, n, lda);
  MatrixView<T> bv(b, m, nrhs, ldb);
  std::vector<T> tau(static_cast<std::size_t>(n));
  geqrf(av, tau.data());
  apply_q_left(av.as_const(), tau.data(), Trans::Yes, bv);
  // Solve R X = (Q^T B)(1:n) in place in the top of B.
  trsm(Side::Left, UpLo::Upper, Trans::No,
       ConstMatrixView<T>(a, n, n, lda), bv.block(0, 0, n, nrhs));
  return 0;
}

}  // namespace

lapack_int caqr_sgeqrf(lapack_int m, lapack_int n, float* a, lapack_int lda,
                       float* tau) {
  return geqrf_impl(m, n, a, lda, tau);
}
lapack_int caqr_dgeqrf(lapack_int m, lapack_int n, double* a, lapack_int lda,
                       double* tau) {
  return geqrf_impl(m, n, a, lda, tau);
}
lapack_int caqr_sorgqr(lapack_int m, lapack_int k, float* a, lapack_int lda,
                       const float* tau) {
  return orgqr_impl(m, k, a, lda, tau);
}
lapack_int caqr_dorgqr(lapack_int m, lapack_int k, double* a, lapack_int lda,
                       const double* tau) {
  return orgqr_impl(m, k, a, lda, tau);
}
lapack_int caqr_sormqr(char trans, lapack_int m, lapack_int ncols_c,
                       lapack_int k, const float* a, lapack_int lda,
                       const float* tau, float* c, lapack_int ldc) {
  return ormqr_impl(trans, m, ncols_c, k, a, lda, tau, c, ldc);
}
lapack_int caqr_dormqr(char trans, lapack_int m, lapack_int ncols_c,
                       lapack_int k, const double* a, lapack_int lda,
                       const double* tau, double* c, lapack_int ldc) {
  return ormqr_impl(trans, m, ncols_c, k, a, lda, tau, c, ldc);
}
lapack_int caqr_sgels(lapack_int m, lapack_int n, lapack_int nrhs, float* a,
                      lapack_int lda, float* b, lapack_int ldb) {
  return gels_impl(m, n, nrhs, a, lda, b, ldb);
}
lapack_int caqr_dgels(lapack_int m, lapack_int n, lapack_int nrhs, double* a,
                      lapack_int lda, double* b, lapack_int ldb) {
  return gels_impl(m, n, nrhs, a, lda, b, ldb);
}

// ---------------------------------------------------------------------------
// Handle-based CAQR.
// ---------------------------------------------------------------------------

struct CaqrHandle {
  gpusim::Device device;
  CaqrFactorization<float> factorization;

  CaqrHandle(Matrix<float> a)
      : device(gpusim::GpuMachineModel::c2050(), gpusim::ExecMode::Functional),
        factorization(CaqrFactorization<float>::factor(device, std::move(a))) {}
};

CaqrHandle* caqr_handle_sfactor(lapack_int m, lapack_int n, const float* a,
                                lapack_int lda) {
  if (m < 1 || n < 1 || a == nullptr || lda < m) return nullptr;
  Matrix<float> copy(m, n);
  copy.view().copy_from(ConstMatrixView<float>(a, m, n, lda));
  return new CaqrHandle(std::move(copy));
}

lapack_int caqr_handle_extract_r(const CaqrHandle* h, float* r,
                                 lapack_int ldr) {
  if (h == nullptr) return -1;
  if (r == nullptr) return -2;
  const idx n = h->factorization.cols();
  const idx k = std::min(h->factorization.rows(), n);
  if (ldr < k) return -3;
  auto rm = h->factorization.r();
  MatrixView<float>(r, k, n, ldr).copy_from(rm.view());
  return 0;
}

lapack_int caqr_handle_apply_q(CaqrHandle* h, char trans, float* c,
                               lapack_int ldc, lapack_int ncols) {
  if (h == nullptr) return -1;
  if (trans != 'N' && trans != 'T' && trans != 'n' && trans != 't') return -2;
  if (c == nullptr) return -3;
  if (ldc < h->factorization.rows()) return -4;
  if (ncols < 0) return -5;
  if (ncols == 0) return 0;
  MatrixView<float> cv(c, h->factorization.rows(), ncols, ldc);
  if (trans == 'T' || trans == 't') {
    h->factorization.apply_qt(h->device, cv);
  } else {
    h->factorization.apply_q(h->device, cv);
  }
  return 0;
}

lapack_int caqr_handle_form_q(CaqrHandle* h, float* q, lapack_int ldq,
                              lapack_int qcols) {
  if (h == nullptr) return -1;
  if (q == nullptr) return -2;
  if (ldq < h->factorization.rows()) return -3;
  if (qcols < 1 || qcols > h->factorization.rows()) return -4;
  auto qm = h->factorization.form_q(h->device, qcols);
  MatrixView<float>(q, qm.rows(), qcols, ldq).copy_from(qm.view());
  return 0;
}

double caqr_handle_simulated_seconds(const CaqrHandle* h) {
  return h != nullptr ? h->device.elapsed_seconds() : 0.0;
}

void caqr_handle_destroy(CaqrHandle* h) { delete h; }

}  // namespace caqr::api

#pragma once

// High-level QR front end and the shape-adaptive algorithm selector the
// paper proposes in §V.C: "This suggests an autotuning framework for QR
// where a different algorithm may be chosen depending on the matrix size."
//
// adaptive_qr() predicts the simulated cost of CAQR and of the hybrid
// (MAGMA-like) blocked Householder at the given shape using the machine
// model only (no data touched), then runs the cheaper one. Prediction uses
// the same cost models as execution, so the selection is exact with respect
// to the simulator.
//
// Thread-safety and determinism, for every function in this header: all are
// pure functions of (device, inputs, options) with no shared mutable state —
// concurrent calls are safe as long as each targets a distinct Device (the
// repo-wide launch rule). Results are bit-deterministic for fixed inputs
// and options: prediction probes run ModelOnly on private devices, and the
// functional paths inherit the simulator's deterministic block execution.
// The serving layer (src/serve/) builds directly on these guarantees: it
// memoizes the predictions per shape (PlanCache) and fans adaptive_qr out
// across worker-owned devices (SolverPool) without changing any result.

#include <limits>
#include <string>
#include <type_traits>
#include <utility>

#include "baselines/qr_baselines.hpp"
#include "caqr/caqr.hpp"
#include "linalg/norms.hpp"
#include "tsqr/cholqr.hpp"

namespace caqr {

enum class QrAlgorithm {
  Auto,            // pick by predicted cost (the paper's suggested framework)
  Caqr,            // always communication-avoiding QR
  Hybrid,          // always hybrid blocked Householder (MAGMA-like)
  CholeskyQr2,     // Gram + Cholesky, one reorthogonalization pass
  CholeskyQr3,     // Gram + Cholesky, two reorthogonalization passes
  CholeskyQr2Mixed,  // CholeskyQR2 with a TF32-rate first Gram pass
};

inline bool is_cholqr(QrAlgorithm a) {
  return a == QrAlgorithm::CholeskyQr2 || a == QrAlgorithm::CholeskyQr3 ||
         a == QrAlgorithm::CholeskyQr2Mixed;
}

// Maps a CholeskyQR-family algorithm to solver options; the TSQR fallback
// inherits the CAQR options' decomposition settings.
inline tsqr::CholQrOptions cholqr_options_for(QrAlgorithm a,
                                              const CaqrOptions& caqr_opt) {
  tsqr::CholQrOptions o;
  o.variant = a == QrAlgorithm::CholeskyQr3 ? tsqr::CholQrVariant::CholQr3
                                            : tsqr::CholQrVariant::CholQr2;
  o.precision = a == QrAlgorithm::CholeskyQr2Mixed
                    ? gpusim::PrecisionPolicy::Tf32Gram
                    : gpusim::PrecisionPolicy::Native;
  o.tsqr = caqr_opt.tsqr;
  return o;
}

// Explicit factors plus what ran and how long it took (simulated). `used`
// is never Auto: it records the resolved algorithm.
template <typename T>
struct QrSolveResult {
  Matrix<T> q;  // m x min(m, n), orthonormal columns
  Matrix<T> r;  // min(m, n) x n upper triangular
  QrAlgorithm used = QrAlgorithm::Caqr;
  double simulated_seconds = 0;
  // CholeskyQR runs only: Ok, or Corrected when a detected breakdown was
  // recovered by the Householder TSQR fallback (cholqr_fallback = true).
  ft::Severity severity = ft::Severity::Ok;
  bool cholqr_fallback = false;
  // Full fault-tolerance outcome of the run (retry counts, schedule
  // fallback, transfer/device-loss counters on distributed paths).
  // run_status.severity always agrees with `severity` above; serve callers
  // read it through QrResponse to learn whether their solve was corrected.
  ft::RunStatus run_status;
};

// Predicts simulated seconds without touching data: runs the full launch
// schedule on a private ModelOnly probe device with storage-free
// placeholders. Exact with respect to the simulator (same cost models as
// execution), so `Auto` selection can never disagree with a measured run.
template <typename T>
double predict_caqr_seconds(const gpusim::GpuMachineModel& model, idx m, idx n,
                            const CaqrOptions& opt = {}) {
  gpusim::Device probe(model, gpusim::ExecMode::ModelOnly);
  auto f = CaqrFactorization<T>::factor(probe, Matrix<T>::shape_only(m, n), opt);
  (void)f;
  return probe.elapsed_seconds();
}

template <typename T>
double predict_hybrid_seconds(const gpusim::GpuMachineModel& model, idx m,
                              idx n, const baselines::HybridQrOptions& opt = {}) {
  gpusim::Device probe(model, gpusim::ExecMode::ModelOnly);
  return baselines::hybrid_qr(probe, Matrix<T>::shape_only(m, n), opt).seconds;
}

// Shape-adaptive QR: factors A and returns explicit (Q, R). With Auto, the
// algorithm is re-predicted on every call — repeated same-shape traffic
// should go through serve::SolverPool / serve::PlanCache, which memoize
// the selection and tuning per (shape, dtype, model fingerprint). Copies
// its input (the factorization is destructive); requires backing storage,
// i.e. functional inputs — for a ModelOnly cost estimate use the
// predict_* functions above.
template <typename VA>
QrSolveResult<view_scalar_t<VA>> adaptive_qr(
    gpusim::Device& dev, const VA& a_in, QrAlgorithm algo = QrAlgorithm::Auto,
    const CaqrOptions& caqr_opt = {},
    const baselines::HybridQrOptions& hybrid_opt = {}) {
  using T = view_scalar_t<VA>;
  const ConstMatrixView<T> a = cview(a_in);
  const idx m = a.rows(), n = a.cols();
  const idx k = std::min(m, n);

  if (algo == QrAlgorithm::Auto) {
    const double t_caqr = predict_caqr_seconds<T>(dev.model(), m, n, caqr_opt);
    const double t_hybrid =
        predict_hybrid_seconds<T>(dev.model(), m, n, hybrid_opt);
    algo = t_caqr <= t_hybrid ? QrAlgorithm::Caqr : QrAlgorithm::Hybrid;
  }

  const double t0 = dev.elapsed_seconds();
  QrSolveResult<T> out;
  out.used = algo;
  if (is_cholqr(algo)) {
    auto res =
        tsqr::cholqr(dev, Matrix<T>::from(a), cholqr_options_for(algo, caqr_opt));
    out.q = std::move(res.q);
    out.r = std::move(res.r);
    out.severity = res.severity;
    out.cholqr_fallback = res.fell_back;
    out.run_status.severity = res.severity;
  } else if (algo == QrAlgorithm::Caqr) {
    auto f = CaqrFactorization<T>::factor(dev, Matrix<T>::from(a), caqr_opt);
    out.r = f.r();
    out.q = f.form_q(dev, k);
    out.run_status = f.status();
    out.severity = out.run_status.severity;
  } else {
    auto res = baselines::hybrid_qr(dev, Matrix<T>::from(a), hybrid_opt);
    out.r = extract_r(res.factored.view());
    out.q = form_q(res.factored.view(), res.tau.data(), k);
    // Forming Q costs roughly another factorization's worth of GEMM work.
    baselines::charge_gemm(dev, m, k, k, "hybrid_orgqr");
  }
  out.simulated_seconds = dev.elapsed_seconds() - t0;
  return out;
}

// Least-squares solve min ||A x - B||_F for tall A through the adaptive QR:
// X = R^{-1} (Q^T B)(1:n). B may have multiple right-hand sides.
template <typename VA, typename VB>
Matrix<view_scalar_t<VA>> least_squares_solve(gpusim::Device& dev,
                                              const VA& a_in, const VB& b_in,
                                              QrAlgorithm algo = QrAlgorithm::Auto) {
  using T = view_scalar_t<VA>;
  const ConstMatrixView<T> a = cview(a_in);
  const ConstMatrixView<T> b = cview(b_in);
  const idx m = a.rows(), n = a.cols();
  CAQR_CHECK(m >= n && b.rows() == m);

  if (algo == QrAlgorithm::Auto) {
    algo = predict_caqr_seconds<T>(dev.model(), m, n) <=
                   predict_hybrid_seconds<T>(dev.model(), m, n)
               ? QrAlgorithm::Caqr
               : QrAlgorithm::Hybrid;
  }

  Matrix<T> x(n, b.cols());
  if (algo == QrAlgorithm::Caqr) {
    auto f = CaqrFactorization<T>::factor(dev, Matrix<T>::from(a));
    Matrix<T> qtb = Matrix<T>::from(b);
    f.apply_qt(dev, qtb.view());
    auto r = f.r();
    x.view().copy_from(qtb.view().block(0, 0, n, b.cols()));
    trsm(Side::Left, UpLo::Upper, Trans::No, r.view().block(0, 0, n, n),
         x.view());
  } else {
    auto res = baselines::hybrid_qr(dev, Matrix<T>::from(a));
    Matrix<T> qtb = Matrix<T>::from(b);
    apply_q_left(res.factored.view().block(0, 0, m, n), res.tau.data(),
                 Trans::Yes, qtb.view());
    auto r = extract_r(res.factored.view());
    x.view().copy_from(qtb.view().block(0, 0, n, b.cols()));
    trsm(Side::Left, UpLo::Upper, Trans::No, r.view().block(0, 0, n, n),
         x.view());
  }
  return x;
}

// Mixed-precision least squares: factor once in single precision (fast on
// the GPU — the paper's precision throughout), then iteratively refine the
// solution with double-precision residuals, reusing the float factorization
// for each correction solve. On reasonably conditioned problems this reaches
// double-precision-level residuals at single-precision factorization cost —
// a natural extension of the paper's "single precision is adequate" choice.
template <typename T = double>
struct RefinedLsResult {
  Matrix<double> x;
  int refinement_steps = 0;
  double final_residual_norm = 0;  // ||A^T (A x - b)|| / ||b||
};

template <typename VA, typename VB>
RefinedLsResult<> least_squares_solve_refined(gpusim::Device& dev,
                                              const VA& a_in, const VB& b_in,
                                              int max_refinements = 5) {
  static_assert(std::is_same_v<view_scalar_t<VA>, double> &&
                    std::is_same_v<view_scalar_t<VB>, double>,
                "refined solve takes double inputs (factors in float)");
  const ConstMatrixView<double> a = cview(a_in);
  const ConstMatrixView<double> b = cview(b_in);
  const idx m = a.rows(), n = a.cols(), k = b.cols();
  CAQR_CHECK(m >= n && b.rows() == m);

  // Single-precision copy and factorization.
  Matrix<float> af(m, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) af(i, j) = static_cast<float>(a(i, j));
  }
  auto f = CaqrFactorization<float>::factor(dev, std::move(af));
  auto rf = f.r();

  // Correction solve in float: dx = R^-1 (Q^T r)(1:n).
  auto solve_float = [&](const Matrix<double>& rhs, Matrix<double>& dx) {
    Matrix<float> rf32(m, k);
    for (idx j = 0; j < k; ++j) {
      for (idx i = 0; i < m; ++i) rf32(i, j) = static_cast<float>(rhs(i, j));
    }
    f.apply_qt(dev, rf32.view());
    Matrix<float> top(n, k);
    top.view().copy_from(rf32.view().block(0, 0, n, k));
    trsm(Side::Left, UpLo::Upper, Trans::No, rf.view().block(0, 0, n, n),
         top.view());
    for (idx j = 0; j < k; ++j) {
      for (idx i = 0; i < n; ++i) dx(i, j) = static_cast<double>(top(i, j));
    }
  };

  RefinedLsResult<> out{Matrix<double>::zeros(n, k), 0, 0.0};
  Matrix<double> residual = Matrix<double>::from(b);
  Matrix<double> dx(n, k);
  const double bnorm = frobenius_norm(b);
  double prev = std::numeric_limits<double>::infinity();
  for (int step = 0; step <= max_refinements; ++step) {
    solve_float(residual, dx);
    for (idx j = 0; j < k; ++j) {
      for (idx i = 0; i < n; ++i) out.x(i, j) += dx(i, j);
    }
    // residual = b - A x in double.
    residual.view().copy_from(b);
    gemm(Trans::No, Trans::No, -1.0, a, out.x.view(), 1.0, residual.view());
    // Least-squares optimality measure: the projected residual A^T r.
    Matrix<double> atr = Matrix<double>::zeros(n, k);
    gemm(Trans::Yes, Trans::No, 1.0, a, residual.view(), 0.0, atr.view());
    out.final_residual_norm =
        bnorm > 0 ? frobenius_norm(atr.view()) / bnorm : 0.0;
    out.refinement_steps = step;
    if (out.final_residual_norm >= 0.5 * prev) break;  // stagnated
    prev = out.final_residual_norm;
  }
  return out;
}

}  // namespace caqr

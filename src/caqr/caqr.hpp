#pragma once

// Communication-Avoiding QR (§II.C, §IV) — the paper's core contribution.
//
// The matrix is processed in panels of `panel_width` columns. Each panel is
// factored with TSQR entirely on the (simulated) GPU, then the trailing
// matrix is updated in two phases, mirroring the host pseudocode of Figure 4:
//
//   foreach panel:
//     factor            (small QRs down the panel)
//     foreach tree level: factor_tree
//     apply_qt_h        (horizontal update from level-0 reflectors)
//     foreach tree level: apply_qt_tree
//
// Figure 4 launches every kernel back-to-back on one timeline, so the
// factorization of panel k+1 can never overlap the (independent) trailing
// update of panel k. The default LookAhead schedule removes that false
// dependency with two device streams, the classic look-ahead of the CAQR
// literature (Demmel et al., arXiv:0809.2407):
//
//   panel stream P : factor(k) ─ apply panel k to the column tile of
//                    panel k+1 ─ factor(k+1) ─ ...
//   update stream U: apply panel k to the REST of the trailing matrix
//
// U waits (wait_event) for factor(k); P waits for U's rest-update of panel
// k-1 before touching panel k+1's tile. factor/factor_tree of panel k+1 —
// launch-overhead-heavy and latency-floor-bound — thus overlap the
// throughput-bound apply_qt_h/apply_qt_tree of panel k. The split update is
// bitwise identical to the one-launch update because every apply kernel
// processes trailing columns independently, so Serial and LookAhead produce
// the same R, the same packed reflectors, and the same Q.
//
// After each panel the grid is redrawn `panel_width` rows lower, so R ends
// up in the conventional upper triangle of the storage and the distributed
// reflectors below it. CaqrFactorization keeps the per-panel replay metadata
// so Q^T / Q can be applied to arbitrary right-hand sides and the explicit Q
// can be formed — all through the same simulated kernels (the paper notes
// SORGQR via CAQR is as efficient as the factorization itself).

#include <algorithm>
#include <utility>
#include <vector>

#include "gpusim/device.hpp"
#include "linalg/flops.hpp"
#include "linalg/qr.hpp"
#include "numerics/finite_check.hpp"
#include "tsqr/tsqr.hpp"

namespace caqr {

enum class CaqrSchedule {
  Serial,     // Figure 4 verbatim: one stream, every launch back-to-back
  LookAhead,  // two-stream look-ahead: factor k+1 overlaps update of k
};

struct CaqrOptions {
  idx panel_width = 16;  // W: grid column width
  CaqrSchedule schedule = CaqrSchedule::LookAhead;
  tsqr::TsqrOptions tsqr;

  // Tile width used by the trailing update defaults to the panel width.
  tsqr::TsqrOptions panel_tsqr() const {
    tsqr::TsqrOptions t = tsqr;
    t.tile_cols = panel_width;
    return t;
  }
};

template <typename T>
class CaqrFactorization {
 public:
  // Factors `a` (consumed; any aspect ratio, empty dimensions allowed) on
  // `dev`. A matrix with zero rows or columns yields an empty factorization
  // (LAPACK xGEQRF semantics).
  static CaqrFactorization factor(gpusim::Device& dev, Matrix<T> a,
                                  const CaqrOptions& opt = {}) {
    CaqrFactorization f;
    f.a_ = std::move(a);
    f.opt_ = opt;
    CAQR_CHECK(f.a_.rows() >= 0 && f.a_.cols() >= 0);
    CAQR_CHECK(opt.panel_width >= 1);
    CAQR_CHECK(opt.tsqr.block_rows >= opt.panel_width);
    if (std::min(f.a_.rows(), f.a_.cols()) == 0) return f;
    if (dev.mode() == gpusim::ExecMode::Functional) {
      CAQR_GUARD_FINITE(f.a_.view(), "caqr_factor:input");
    }
    if (opt.schedule == CaqrSchedule::LookAhead) {
      factor_lookahead(dev, f);
    } else {
      factor_serial(dev, f);
    }
    if (dev.mode() == gpusim::ExecMode::Functional) {
      CAQR_GUARD_FINITE(f.a_.view(), "caqr_factor:output");
    }
    return f;
  }

  idx rows() const { return a_.rows(); }
  idx cols() const { return a_.cols(); }

  // The packed factorization (R in the upper triangle, distributed
  // reflectors below), analogous to LAPACK's GEQRF output format.
  const Matrix<T>& packed() const { return a_; }

  // Upper-triangular R (min(m,n) x n).
  Matrix<T> r() const { return extract_r(a_.view()); }

  // c := Q^T c (c has m rows).
  void apply_qt(gpusim::Device& dev, MatrixView<T> c) const {
    walk(dev, c, /*transpose_q=*/true);
  }

  // c := Q c.
  void apply_q(gpusim::Device& dev, MatrixView<T> c) const {
    walk(dev, c, /*transpose_q=*/false);
  }

  // Explicit m x qcols orthogonal factor (SORGQR equivalent); qcols == 0
  // yields an m x 0 matrix.
  Matrix<T> form_q(gpusim::Device& dev, idx qcols) const {
    CAQR_CHECK(qcols >= 0 && qcols <= a_.rows());
    Matrix<T> q = Matrix<T>::identity(a_.rows(), qcols);
    apply_q(dev, q.view());
    return q;
  }

 private:
  // Figure 4's host pseudocode: every launch on the (synchronous) legacy
  // stream.
  static void factor_serial(gpusim::Device& dev, CaqrFactorization& f) {
    const CaqrOptions& opt = f.opt_;
    const tsqr::TsqrOptions topt = opt.panel_tsqr();
    const idx m = f.a_.rows(), n = f.a_.cols();
    const idx kmax = m < n ? m : n;
    for (idx c0 = 0; c0 < kmax; c0 += opt.panel_width) {
      const idx w = std::min(opt.panel_width, kmax - c0);
      const idx len = m - c0;
      auto panel = f.a_.block(c0, c0, len, w);
      f.panels_.push_back(tsqr_factor(dev, panel, topt));
      const idx trailing_cols = n - c0 - w;
      if (trailing_cols > 0) {
        tsqr_apply_qt(dev, panel.as_const(), f.panels_.back(),
                      f.a_.block(c0, c0 + w, len, trailing_cols), topt);
      }
    }
  }

  // Two-stream look-ahead schedule. Dependency structure per panel p:
  //
  //   P: factor(p) ── record F_p ── [wait R_{p-1}] ── apply p → tile p+1
  //      ── factor(p+1) ── ...
  //   U: [wait F_p] ── apply p → rest ── record R_p
  //
  // The tile update (P) and the rest update (U) write disjoint columns and
  // only read panel p, so they run concurrently; factor(p+1) needs only the
  // tile. Functional execution happens at issue time, and the issue order
  // below is itself dependency-correct, so numerics are independent of the
  // stream timing.
  static void factor_lookahead(gpusim::Device& dev, CaqrFactorization& f) {
    const CaqrOptions& opt = f.opt_;
    const tsqr::TsqrOptions topt = opt.panel_tsqr();
    const idx m = f.a_.rows(), n = f.a_.cols();
    const idx kmax = m < n ? m : n;
    const gpusim::StreamId sp = dev.create_stream();  // panel / look-ahead
    const gpusim::StreamId su = dev.create_stream();  // trailing update

    std::vector<idx> starts;
    for (idx c0 = 0; c0 < kmax; c0 += opt.panel_width) starts.push_back(c0);
    const idx np = static_cast<idx>(starts.size());
    auto width_of = [&](idx p) {
      return std::min(opt.panel_width, kmax - starts[p]);
    };
    auto factor_panel = [&](idx p) {
      const idx c0 = starts[p];
      f.panels_.push_back(tsqr_factor(
          dev, sp, f.a_.block(c0, c0, m - c0, width_of(p)), topt));
    };

    factor_panel(0);
    gpusim::EventId prev_rest = -1;  // U's rest-update of the previous panel
    for (idx p = 0; p < np; ++p) {
      const idx c0 = starts[p];
      const idx w = width_of(p);
      const idx len = m - c0;
      const auto panel = f.a_.view().block(c0, c0, len, w).as_const();
      const auto& meta = f.panels_[static_cast<std::size_t>(p)];
      const gpusim::EventId factored = dev.record_event(sp);

      const idx trailing = n - c0 - w;
      const idx next_w = p + 1 < np ? width_of(p + 1) : 0;
      const idx rest = trailing - next_w;
      if (next_w > 0) {
        // Look-ahead: bring panel p+1's columns fully up to date on the
        // panel stream. They last received panel p-1's update on U.
        if (prev_rest >= 0) dev.wait_event(sp, prev_rest);
        tsqr_apply_qt(dev, sp, panel, meta,
                      f.a_.block(c0, c0 + w, len, next_w), topt);
      }
      if (rest > 0) {
        dev.wait_event(su, factored);
        tsqr_apply_qt(dev, su, panel, meta,
                      f.a_.block(c0, c0 + w + next_w, len, rest), topt);
        prev_rest = dev.record_event(su);
      }
      if (p + 1 < np) factor_panel(p + 1);
    }
  }

  void walk(gpusim::Device& dev, MatrixView<T> c, bool transpose_q) const {
    CAQR_CHECK(c.rows() == a_.rows());
    if (c.cols() == 0) return;
    const tsqr::TsqrOptions topt = opt_.panel_tsqr();
    const idx np = static_cast<idx>(panels_.size());
    auto panel_view = [&](idx p, idx& c0) {
      c0 = p * opt_.panel_width;
      const auto& meta = panels_[static_cast<std::size_t>(p)];
      return a_.view().block(c0, c0, meta.rows, meta.width);
    };
    if (transpose_q) {
      for (idx p = 0; p < np; ++p) {
        idx c0 = 0;
        auto pv = panel_view(p, c0);
        tsqr_apply_qt(dev, pv, panels_[static_cast<std::size_t>(p)],
                      c.block(c0, 0, pv.rows(), c.cols()), topt);
      }
    } else {
      for (idx p = np - 1; p >= 0; --p) {
        idx c0 = 0;
        auto pv = panel_view(p, c0);
        tsqr_apply_q(dev, pv, panels_[static_cast<std::size_t>(p)],
                     c.block(c0, 0, pv.rows(), c.cols()), topt);
      }
    }
  }

  Matrix<T> a_;
  std::vector<tsqr::PanelFactor<T>> panels_;
  CaqrOptions opt_;
};

// One-call convenience: factor a copy of `a` and return the factorization.
template <typename VA>
CaqrFactorization<view_scalar_t<VA>> caqr_factor(gpusim::Device& dev,
                                                 const VA& a,
                                                 const CaqrOptions& opt = {}) {
  using T = view_scalar_t<VA>;
  return CaqrFactorization<T>::factor(dev, Matrix<T>::from(cview(a)), opt);
}

}  // namespace caqr

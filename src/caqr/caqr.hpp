#pragma once

// Communication-Avoiding QR (§II.C, §IV) — the paper's core contribution.
//
// The matrix is processed in panels of `panel_width` columns. Each panel is
// factored with TSQR entirely on the (simulated) GPU, then the trailing
// matrix is updated in two phases, mirroring the host pseudocode of Figure 4:
//
//   foreach panel:
//     factor            (small QRs down the panel)
//     foreach tree level: factor_tree
//     apply_qt_h        (horizontal update from level-0 reflectors)
//     foreach tree level: apply_qt_tree
//
// Figure 4 launches every kernel back-to-back on one timeline, so the
// factorization of panel k+1 can never overlap the (independent) trailing
// update of panel k. The default LookAhead schedule removes that false
// dependency with two device streams, the classic look-ahead of the CAQR
// literature (Demmel et al., arXiv:0809.2407):
//
//   panel stream P : factor(k) ─ apply panel k to the column tile of
//                    panel k+1 ─ factor(k+1) ─ ...
//   update stream U: apply panel k to the REST of the trailing matrix
//
// U waits (wait_event) for factor(k); P waits for U's rest-update of panel
// k-1 before touching panel k+1's tile. factor/factor_tree of panel k+1 —
// launch-overhead-heavy and latency-floor-bound — thus overlap the
// throughput-bound apply_qt_h/apply_qt_tree of panel k. The split update is
// bitwise identical to the one-launch update because every apply kernel
// processes trailing columns independently, so Serial and LookAhead produce
// the same R, the same packed reflectors, and the same Q.
//
// After each panel the grid is redrawn `panel_width` rows lower, so R ends
// up in the conventional upper triangle of the storage and the distributed
// reflectors below it. CaqrFactorization keeps the per-panel replay metadata
// so Q^T / Q can be applied to arbitrary right-hand sides and the explicit Q
// can be formed — all through the same simulated kernels (the paper notes
// SORGQR via CAQR is as efficient as the factorization itself).

// Fault tolerance and checkpoint/restart. factor() aggregates the
// ft::Severity of every launch (plus TSQR's panel-level recovery) into a
// ft::RunStatus available from status(). When the device policy enables
// recovery and schedule_fallback, a LookAhead run whose corruption survives
// the lower recovery levels is redone on the Serial schedule from the kept
// original input — graceful degradation instead of an abort. When
// CaqrOptions::checkpoint_path is set, the factorization writes a
// panel-granularity snapshot (ft/checkpoint.hpp) at each schedule's common
// consistency point — "panels 0..p factored and fully applied" — so a killed
// run restarted with the same options resumes from the last completed panel
// and produces bit-identical results; an invalid or truncated checkpoint is
// detected by its checksum and ignored (clean start).

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ft/checkpoint.hpp"
#include "ft/ft.hpp"
#include "gpusim/device.hpp"
#include "linalg/flops.hpp"
#include "linalg/qr.hpp"
#include "numerics/finite_check.hpp"
#include "tsqr/tsqr.hpp"

namespace caqr {

enum class CaqrSchedule {
  Serial,     // Figure 4 verbatim: one stream, every launch back-to-back
  LookAhead,  // two-stream look-ahead: factor k+1 overlaps update of k
};

struct CaqrOptions {
  idx panel_width = 16;  // W: grid column width
  CaqrSchedule schedule = CaqrSchedule::LookAhead;
  tsqr::TsqrOptions tsqr;

  // Checkpoint/restart. Non-empty: write a snapshot of the factorization
  // state every `checkpoint_every` completed panels (atomic tmp+rename),
  // and resume from a valid checkpoint at the same path if one exists.
  // Functional mode only — ModelOnly has no data to snapshot.
  std::string checkpoint_path;
  idx checkpoint_every = 1;
  // Test hook simulating a mid-factorization kill: stop after this many
  // panels complete (0 = run to the end). The returned factorization is
  // partial; only its checkpoint file is meaningful.
  idx halt_after_panels = 0;

  // Tile width used by the trailing update defaults to the panel width.
  tsqr::TsqrOptions panel_tsqr() const {
    tsqr::TsqrOptions t = tsqr;
    t.tile_cols = panel_width;
    return t;
  }
};

template <typename T>
class CaqrFactorization {
 public:
  // Factors `a` (consumed; any aspect ratio, empty dimensions allowed) on
  // `dev`. A matrix with zero rows or columns yields an empty factorization
  // (LAPACK xGEQRF semantics).
  static CaqrFactorization factor(gpusim::Device& dev, Matrix<T> a,
                                  const CaqrOptions& opt = {}) {
    CaqrFactorization f;
    f.a_ = std::move(a);
    f.opt_ = opt;
    CAQR_CHECK(f.a_.rows() >= 0 && f.a_.cols() >= 0);
    CAQR_CHECK(opt.panel_width >= 1);
    CAQR_CHECK(opt.tsqr.block_rows >= opt.panel_width);
    if (std::min(f.a_.rows(), f.a_.cols()) == 0) return f;
    const bool functional = dev.mode() == gpusim::ExecMode::Functional;
    if (functional) {
      CAQR_GUARD_FINITE(f.a_.view(), "caqr_factor:input");
    }

    idx first = 0;
    if (functional && !opt.checkpoint_path.empty()) first = f.try_resume();

    const ft::FtOptions& ftopt = dev.fault_tolerance();
    const ft::Summary before = dev.ft_summary();
    const bool keep_original = functional && ftopt.abft && ftopt.recovery() &&
                               ftopt.schedule_fallback &&
                               opt.schedule == CaqrSchedule::LookAhead;
    Matrix<T> original;
    std::vector<tsqr::PanelFactor<T>> original_panels;
    if (keep_original) {
      original = Matrix<T>::from(f.a_.as_const());
      original_panels = f.panels_;
    }

    if (opt.schedule == CaqrSchedule::LookAhead) {
      factor_lookahead(dev, f, first);
    } else {
      factor_serial(dev, f, first);
    }
    if (keep_original && !f.halted_ &&
        f.status_.severity == ft::Severity::Unrecovered) {
      // Schedule-level degradation: the two-stream run stayed corrupted
      // after launch retries and panel recomputes — redo everything on the
      // serial schedule from the kept input.
      f.a_ = std::move(original);
      f.panels_ = std::move(original_panels);
      f.status_.severity = ft::Severity::Ok;
      f.status_.schedule_fallback = true;
      factor_serial(dev, f, first);
      if (f.status_.severity == ft::Severity::Ok) {
        f.status_.severity = ft::Severity::Corrected;
      }
    }

    const ft::Summary after = dev.ft_summary();
    f.status_.corrected_launches =
        after.corrected_launches - before.corrected_launches;
    f.status_.unrecovered_launches =
        after.unrecovered_launches - before.unrecovered_launches;

    if (functional && !f.halted_ &&
        f.status_.severity != ft::Severity::Unrecovered) {
      CAQR_GUARD_FINITE(f.a_.view(), "caqr_factor:output");
    }
    return f;
  }

  // Fault-tolerance outcome of factor() (ft::RunStatus semantics);
  // status().ok() is false only when corruption survived every recovery
  // level that was enabled.
  const ft::RunStatus& status() const { return status_; }

  // True when the halt_after_panels test hook stopped the run early.
  bool halted() const { return halted_; }

  idx rows() const { return a_.rows(); }
  idx cols() const { return a_.cols(); }

  // The packed factorization (R in the upper triangle, distributed
  // reflectors below), analogous to LAPACK's GEQRF output format.
  const Matrix<T>& packed() const { return a_; }

  // Upper-triangular R (min(m,n) x n).
  Matrix<T> r() const { return extract_r(a_.view()); }

  // c := Q^T c (c has m rows).
  void apply_qt(gpusim::Device& dev, MatrixView<T> c) const {
    walk(dev, c, /*transpose_q=*/true);
  }

  // c := Q c.
  void apply_q(gpusim::Device& dev, MatrixView<T> c) const {
    walk(dev, c, /*transpose_q=*/false);
  }

  // Explicit m x qcols orthogonal factor (SORGQR equivalent); qcols == 0
  // yields an m x 0 matrix.
  Matrix<T> form_q(gpusim::Device& dev, idx qcols) const {
    CAQR_CHECK(qcols >= 0 && qcols <= a_.rows());
    Matrix<T> q = Matrix<T>::identity(a_.rows(), qcols);
    apply_q(dev, q.view());
    return q;
  }

 private:
  // Figure 4's host pseudocode: every launch on the (synchronous) legacy
  // stream. `first_panel` > 0 resumes mid-factorization (checkpoint).
  static void factor_serial(gpusim::Device& dev, CaqrFactorization& f,
                            idx first_panel) {
    const CaqrOptions& opt = f.opt_;
    const tsqr::TsqrOptions topt = opt.panel_tsqr();
    const idx m = f.a_.rows(), n = f.a_.cols();
    const idx kmax = m < n ? m : n;
    ft::Severity sev = ft::Severity::Ok;
    idx done = first_panel;
    for (idx c0 = first_panel * opt.panel_width; c0 < kmax;
         c0 += opt.panel_width) {
      const idx w = std::min(opt.panel_width, kmax - c0);
      const idx len = m - c0;
      auto panel = f.a_.block(c0, c0, len, w);
      f.panels_.push_back(tsqr_factor(dev, gpusim::kDefaultStream, panel,
                                      topt, &sev, &f.status_.panel_retries));
      const idx trailing_cols = n - c0 - w;
      if (trailing_cols > 0) {
        tsqr_apply_qt(dev, gpusim::kDefaultStream, panel.as_const(),
                      f.panels_.back(),
                      f.a_.block(c0, c0 + w, len, trailing_cols), topt, &sev);
      }
      ++done;
      f.after_panel(dev, done);
      if (f.halted_) break;
    }
    f.status_.severity = ft::worse(f.status_.severity, sev);
  }

  // Two-stream look-ahead schedule. Dependency structure per panel p:
  //
  //   P: factor(p) ── record F_p ── [wait R_{p-1}] ── apply p → tile p+1
  //      ── factor(p+1) ── ...
  //   U: [wait F_p] ── apply p → rest ── record R_p
  //
  // The tile update (P) and the rest update (U) write disjoint columns and
  // only read panel p, so they run concurrently; factor(p+1) needs only the
  // tile. Functional execution happens at issue time, and the issue order
  // below is itself dependency-correct, so numerics are independent of the
  // stream timing.
  static void factor_lookahead(gpusim::Device& dev, CaqrFactorization& f,
                               idx first_panel) {
    const CaqrOptions& opt = f.opt_;
    const tsqr::TsqrOptions topt = opt.panel_tsqr();
    const idx m = f.a_.rows(), n = f.a_.cols();
    const idx kmax = m < n ? m : n;
    const gpusim::StreamId sp = dev.create_stream();  // panel / look-ahead
    const gpusim::StreamId su = dev.create_stream();  // trailing update

    std::vector<idx> starts;
    for (idx c0 = 0; c0 < kmax; c0 += opt.panel_width) starts.push_back(c0);
    const idx np = static_cast<idx>(starts.size());
    ft::Severity sev = ft::Severity::Ok;
    auto width_of = [&](idx p) {
      return std::min(opt.panel_width, kmax - starts[p]);
    };
    auto factor_panel = [&](idx p) {
      const idx c0 = starts[p];
      f.panels_.push_back(tsqr_factor(dev, sp,
                                      f.a_.block(c0, c0, m - c0, width_of(p)),
                                      topt, &sev, &f.status_.panel_retries));
    };

    factor_panel(first_panel);
    gpusim::EventId prev_rest = -1;  // U's rest-update of the previous panel
    for (idx p = first_panel; p < np; ++p) {
      const idx c0 = starts[p];
      const idx w = width_of(p);
      const idx len = m - c0;
      const auto panel = f.a_.view().block(c0, c0, len, w).as_const();
      const auto& meta = f.panels_[static_cast<std::size_t>(p)];
      const gpusim::EventId factored = dev.record_event(sp);

      const idx trailing = n - c0 - w;
      const idx next_w = p + 1 < np ? width_of(p + 1) : 0;
      const idx rest = trailing - next_w;
      if (next_w > 0) {
        // Look-ahead: bring panel p+1's columns fully up to date on the
        // panel stream. They last received panel p-1's update on U.
        if (prev_rest >= 0) dev.wait_event(sp, prev_rest);
        tsqr_apply_qt(dev, sp, panel, meta,
                      f.a_.block(c0, c0 + w, len, next_w), topt, &sev);
      }
      if (rest > 0) {
        dev.wait_event(su, factored);
        tsqr_apply_qt(dev, su, panel, meta,
                      f.a_.block(c0, c0 + w + next_w, len, rest), topt, &sev);
        prev_rest = dev.record_event(su);
      }
      // Consistency point shared with the serial schedule: panels 0..p are
      // factored and fully applied (functional execution happens at issue
      // time). The checkpoint must precede factor_panel(p + 1).
      f.after_panel(dev, p + 1);
      if (f.halted_) break;
      if (p + 1 < np) factor_panel(p + 1);
    }
    f.status_.severity = ft::worse(f.status_.severity, sev);
  }

  void walk(gpusim::Device& dev, MatrixView<T> c, bool transpose_q) const {
    CAQR_CHECK(c.rows() == a_.rows());
    if (c.cols() == 0) return;
    const tsqr::TsqrOptions topt = opt_.panel_tsqr();
    const idx np = static_cast<idx>(panels_.size());
    auto panel_view = [&](idx p, idx& c0) {
      c0 = p * opt_.panel_width;
      const auto& meta = panels_[static_cast<std::size_t>(p)];
      return a_.view().block(c0, c0, meta.rows, meta.width);
    };
    if (transpose_q) {
      for (idx p = 0; p < np; ++p) {
        idx c0 = 0;
        auto pv = panel_view(p, c0);
        tsqr_apply_qt(dev, pv, panels_[static_cast<std::size_t>(p)],
                      c.block(c0, 0, pv.rows(), c.cols()), topt);
      }
    } else {
      for (idx p = np - 1; p >= 0; --p) {
        idx c0 = 0;
        auto pv = panel_view(p, c0);
        tsqr_apply_q(dev, pv, panels_[static_cast<std::size_t>(p)],
                     c.block(c0, 0, pv.rows(), c.cols()), topt);
      }
    }
  }

  idx num_panels() const {
    const idx kmax = std::min(a_.rows(), a_.cols());
    return (kmax + opt_.panel_width - 1) / opt_.panel_width;
  }

  // Called after `done` panels are factored and fully applied — the common
  // consistency point of both schedules.
  void after_panel(gpusim::Device& dev, idx done) {
    const idx total = num_panels();
    if (!opt_.checkpoint_path.empty() && opt_.checkpoint_every > 0 &&
        dev.mode() == gpusim::ExecMode::Functional &&
        (done % opt_.checkpoint_every == 0 || done == total)) {
      write_checkpoint(done);
    }
    if (opt_.halt_after_panels > 0 && done >= opt_.halt_after_panels &&
        done < total) {
      halted_ = true;
    }
  }

  void write_checkpoint(idx done) const {
    ft::CheckpointWriter w;
    w.scalar("rows", static_cast<std::int64_t>(a_.rows()));
    w.scalar("cols", static_cast<std::int64_t>(a_.cols()));
    w.scalar("panel_width", static_cast<std::int64_t>(opt_.panel_width));
    w.scalar("scalar_size", static_cast<std::int64_t>(sizeof(T)));
    w.scalar("done", static_cast<std::int64_t>(done));
    w.matrix("a", a_.view());
    for (idx p = 0; p < done; ++p) {
      const auto& pf = panels_[static_cast<std::size_t>(p)];
      const std::string pre = "p" + std::to_string(p) + ".";
      w.scalar(pre + "rows", static_cast<std::int64_t>(pf.rows));
      w.scalar(pre + "width", static_cast<std::int64_t>(pf.width));
      w.vec(pre + "offsets", pf.offsets());
      w.vec(pre + "taus0", pf.taus0);
      w.scalar(pre + "nlevels", static_cast<std::int64_t>(pf.num_levels()));
      for (idx l = 0; l < pf.num_levels(); ++l) {
        const auto& groups = pf.level_groups(l);
        const std::string lpre = pre + "l" + std::to_string(l) + ".";
        std::vector<idx> gsizes;
        for (idx g = 0; g < groups.size(); ++g) {
          gsizes.push_back(groups.group_size(g));
        }
        w.vec(lpre + "gsizes", gsizes);
        w.vec(lpre + "gdata", groups.data);
        w.vec(lpre + "taus", pf.taus[static_cast<std::size_t>(l)]);
      }
    }
    w.write(opt_.checkpoint_path);
  }

  // Loads and validates a checkpoint at opt_.checkpoint_path; returns the
  // panel to resume from (0 = none / invalid / mismatched, i.e. clean start).
  idx try_resume() {
    const auto r = ft::CheckpointReader::load(opt_.checkpoint_path);
    if (!r) return 0;
    std::int64_t rows = 0, cols = 0, pw = 0, ssize = 0, done = 0;
    if (!r->scalar("rows", rows) || !r->scalar("cols", cols) ||
        !r->scalar("panel_width", pw) || !r->scalar("scalar_size", ssize) ||
        !r->scalar("done", done)) {
      return 0;
    }
    if (rows != a_.rows() || cols != a_.cols() || pw != opt_.panel_width ||
        ssize != static_cast<std::int64_t>(sizeof(T)) || done < 1 ||
        done > num_panels()) {
      return 0;
    }
    Matrix<T> a;
    if (!r->matrix("a", a)) return 0;
    std::vector<tsqr::PanelFactor<T>> panels;
    for (std::int64_t p = 0; p < done; ++p) {
      tsqr::PanelFactor<T> pf;
      const std::string pre = "p" + std::to_string(p) + ".";
      std::int64_t prows = 0, pwidth = 0, nlev = 0;
      // The replay structure is rebuilt as a fresh ReplayMeta owned by this
      // resume (the checkpoint stores panel-row coordinates, the same
      // representation ReplayMeta holds).
      auto meta = std::make_shared<tsqr::ReplayMeta>();
      if (!r->scalar(pre + "rows", prows) ||
          !r->scalar(pre + "width", pwidth) ||
          !r->scalar(pre + "nlevels", nlev) || nlev < 0 ||
          !r->vec(pre + "offsets", meta->offsets) ||
          !r->vec(pre + "taus0", pf.taus0)) {
        return 0;
      }
      pf.rows = static_cast<idx>(prows);
      pf.width = static_cast<idx>(pwidth);
      for (std::int64_t l = 0; l < nlev; ++l) {
        GroupList groups;
        std::vector<T> taus;
        const std::string lpre = pre + "l" + std::to_string(l) + ".";
        std::vector<idx> gsizes, gdata;
        if (!r->vec(lpre + "gsizes", gsizes) ||
            !r->vec(lpre + "gdata", gdata) || !r->vec(lpre + "taus", taus)) {
          return 0;
        }
        std::size_t pos = 0;
        for (idx gs : gsizes) {
          if (gs < 0 || pos + static_cast<std::size_t>(gs) > gdata.size()) {
            return 0;
          }
          pos += static_cast<std::size_t>(gs);
          groups.starts.push_back(static_cast<idx>(pos));
        }
        if (pos != gdata.size()) return 0;
        groups.data = std::move(gdata);
        meta->levels.push_back(std::move(groups));
        pf.taus.push_back(std::move(taus));
      }
      pf.meta = std::move(meta);
      panels.push_back(std::move(pf));
    }
    a_ = std::move(a);
    panels_ = std::move(panels);
    status_.resumed_from_checkpoint = true;
    status_.resumed_at_panel = static_cast<idx>(done);
    return static_cast<idx>(done);
  }

  Matrix<T> a_;
  std::vector<tsqr::PanelFactor<T>> panels_;
  CaqrOptions opt_;
  ft::RunStatus status_;
  bool halted_ = false;
};

// One-call convenience: factor a copy of `a` and return the factorization.
template <typename VA>
CaqrFactorization<view_scalar_t<VA>> caqr_factor(gpusim::Device& dev,
                                                 const VA& a,
                                                 const CaqrOptions& opt = {}) {
  using T = view_scalar_t<VA>;
  return CaqrFactorization<T>::factor(dev, Matrix<T>::from(cview(a)), opt);
}

}  // namespace caqr

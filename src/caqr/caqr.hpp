#pragma once

// Communication-Avoiding QR (§II.C, §IV) — the paper's core contribution.
//
// The matrix is processed in panels of `panel_width` columns. Each panel is
// factored with TSQR entirely on the (simulated) GPU, then the trailing
// matrix is updated in two phases, mirroring the host pseudocode of Figure 4:
//
//   foreach panel:
//     factor            (small QRs down the panel)
//     foreach tree level: factor_tree
//     apply_qt_h        (horizontal update from level-0 reflectors)
//     foreach tree level: apply_qt_tree
//
// After each panel the grid is redrawn `panel_width` rows lower, so R ends
// up in the conventional upper triangle of the storage and the distributed
// reflectors below it. CaqrFactorization keeps the per-panel replay metadata
// so Q^T / Q can be applied to arbitrary right-hand sides and the explicit Q
// can be formed — all through the same simulated kernels (the paper notes
// SORGQR via CAQR is as efficient as the factorization itself).

#include <utility>
#include <vector>

#include "gpusim/device.hpp"
#include "linalg/flops.hpp"
#include "linalg/qr.hpp"
#include "tsqr/tsqr.hpp"

namespace caqr {

struct CaqrOptions {
  idx panel_width = 16;  // W: grid column width
  tsqr::TsqrOptions tsqr;

  // Tile width used by the trailing update defaults to the panel width.
  tsqr::TsqrOptions panel_tsqr() const {
    tsqr::TsqrOptions t = tsqr;
    t.tile_cols = panel_width;
    return t;
  }
};

template <typename T>
class CaqrFactorization {
 public:
  // Factors `a` (consumed; m >= 1, any aspect ratio) on `dev`.
  static CaqrFactorization factor(gpusim::Device& dev, Matrix<T> a,
                                  const CaqrOptions& opt = {}) {
    CaqrFactorization f;
    f.a_ = std::move(a);
    f.opt_ = opt;
    const idx m = f.a_.rows(), n = f.a_.cols();
    CAQR_CHECK(m >= 1 && n >= 1);
    CAQR_CHECK(opt.panel_width >= 1);
    CAQR_CHECK(opt.tsqr.block_rows >= opt.panel_width);
    const tsqr::TsqrOptions topt = opt.panel_tsqr();

    const idx kmax = m < n ? m : n;
    for (idx c0 = 0; c0 < kmax; c0 += opt.panel_width) {
      const idx w = std::min(opt.panel_width, kmax - c0);
      const idx len = m - c0;
      auto panel = f.a_.block(c0, c0, len, w);
      f.panels_.push_back(tsqr_factor(dev, panel, topt));
      const idx trailing_cols = n - c0 - w;
      if (trailing_cols > 0) {
        tsqr_apply_qt(dev, panel.as_const(), f.panels_.back(),
                      f.a_.block(c0, c0 + w, len, trailing_cols), topt);
      }
    }
    return f;
  }

  idx rows() const { return a_.rows(); }
  idx cols() const { return a_.cols(); }

  // The packed factorization (R in the upper triangle, distributed
  // reflectors below), analogous to LAPACK's GEQRF output format.
  const Matrix<T>& packed() const { return a_; }

  // Upper-triangular R (min(m,n) x n).
  Matrix<T> r() const { return extract_r(a_.view()); }

  // c := Q^T c (c has m rows).
  void apply_qt(gpusim::Device& dev, MatrixView<T> c) const {
    walk(dev, c, /*transpose_q=*/true);
  }

  // c := Q c.
  void apply_q(gpusim::Device& dev, MatrixView<T> c) const {
    walk(dev, c, /*transpose_q=*/false);
  }

  // Explicit m x qcols orthogonal factor (SORGQR equivalent).
  Matrix<T> form_q(gpusim::Device& dev, idx qcols) const {
    CAQR_CHECK(qcols >= 1 && qcols <= a_.rows());
    Matrix<T> q = Matrix<T>::identity(a_.rows(), qcols);
    apply_q(dev, q.view());
    return q;
  }

 private:
  void walk(gpusim::Device& dev, MatrixView<T> c, bool transpose_q) const {
    CAQR_CHECK(c.rows() == a_.rows());
    const tsqr::TsqrOptions topt = opt_.panel_tsqr();
    const idx np = static_cast<idx>(panels_.size());
    auto panel_view = [&](idx p, idx& c0) {
      c0 = p * opt_.panel_width;
      const auto& meta = panels_[static_cast<std::size_t>(p)];
      return a_.view().block(c0, c0, meta.rows, meta.width);
    };
    if (transpose_q) {
      for (idx p = 0; p < np; ++p) {
        idx c0 = 0;
        auto pv = panel_view(p, c0);
        tsqr_apply_qt(dev, pv, panels_[static_cast<std::size_t>(p)],
                      c.block(c0, 0, pv.rows(), c.cols()), topt);
      }
    } else {
      for (idx p = np - 1; p >= 0; --p) {
        idx c0 = 0;
        auto pv = panel_view(p, c0);
        tsqr_apply_q(dev, pv, panels_[static_cast<std::size_t>(p)],
                     c.block(c0, 0, pv.rows(), c.cols()), topt);
      }
    }
  }

  Matrix<T> a_;
  std::vector<tsqr::PanelFactor<T>> panels_;
  CaqrOptions opt_;
};

// One-call convenience: factor a copy of `a` and return the factorization.
template <typename VA>
CaqrFactorization<view_scalar_t<VA>> caqr_factor(gpusim::Device& dev,
                                                 const VA& a,
                                                 const CaqrOptions& opt = {}) {
  using T = view_scalar_t<VA>;
  return CaqrFactorization<T>::factor(dev, Matrix<T>::from(cview(a)), opt);
}

}  // namespace caqr

#include "caqr/autotune.hpp"

#include "gpusim/device.hpp"
#include "kernels/kernels.hpp"

namespace caqr::autotune {

double microbench_apply_qt_h(const gpusim::GpuMachineModel& model, idx block_h,
                             idx block_w, kernels::ReductionVariant variant,
                             idx nblocks) {
  CAQR_CHECK(block_h >= block_w && block_w >= 1);
  gpusim::Device dev(model, gpusim::ExecMode::ModelOnly);

  const idx rows = block_h * nblocks;
  auto panel = Matrix<float>::shape_only(rows, block_w);
  auto trailing = Matrix<float>::shape_only(rows, block_w);
  std::vector<idx> offsets;
  offsets.reserve(static_cast<std::size_t>(nblocks) + 1);
  for (idx b = 0; b <= nblocks; ++b) offsets.push_back(b * block_h);
  std::vector<float> taus(static_cast<std::size_t>(nblocks * block_w), 0.5f);

  kernels::ApplyQtHKernel<float> k{panel.view(),
                                   &offsets,
                                   taus.data(),
                                   trailing.view(),
                                   block_w,
                                   kernels::cost_params(variant),
                                   model.uncoalesced_penalty,
                                   /*tile_penalty=*/1.0,
                                   /*resident=*/true,
                                   /*transpose_q=*/true};
  dev.launch(k, k.num_blocks());
  const auto* p = dev.profile(k.name());
  return p != nullptr ? p->gflops() : 0.0;
}

TunedBlock autotune_block_size(const gpusim::GpuMachineModel& model,
                               kernels::ReductionVariant variant) {
  TunedBlock best;
  best.gflops = 0;
  for (const idx h : {32, 64, 128, 192, 256, 384, 512}) {
    for (const idx w : {4, 8, 16, 32, 64}) {
      if (h < w) continue;
      const double g = microbench_apply_qt_h(model, h, w, variant);
      if (g > best.gflops) {
        best = TunedBlock{h, w, g};
      }
    }
  }
  return best;
}

}  // namespace caqr::autotune

#pragma once

// Block-size autotuning (§IV.F): sweeps block shapes with the apply_qt_h
// microbenchmark on a machine model and picks the best-performing one.
// The paper did exactly this with scripts over real kernels; here the
// microbenchmark runs against the simulated device, so tuning is instant and
// deterministic for a given machine model.

#include <vector>

#include "gpusim/machine_model.hpp"
#include "kernels/cost_params.hpp"
#include "linalg/matrix.hpp"

namespace caqr::autotune {

// Cache-hot apply_qt_h microbenchmark at one block shape; returns simulated
// GFLOPS on the given machine model. Pure function of its arguments: runs
// a ModelOnly probe device, touches no data and no shared state, so it is
// safe to call concurrently and always returns the same value for the same
// (model, shape, variant, nblocks).
double microbench_apply_qt_h(
    const gpusim::GpuMachineModel& model, idx block_h, idx block_w,
    kernels::ReductionVariant variant =
        kernels::ReductionVariant::RegisterSerialTransposed,
    idx nblocks = 4096);

// Sweep winner: the block shape CAQR should run with on a model (Figure 7's
// 128 x 16 on the C2050) and the microbenchmark GFLOPS it achieved.
struct TunedBlock {
  idx block_rows = 128;
  idx panel_width = 16;
  double gflops = 0;
};

// Sweeps the standard grid (heights 32..512, widths 4..64, register-file
// feasible shapes only) and returns the best shape for the model.
// Deterministic and thread-safe for the same reasons as the microbenchmark;
// costs ~35 ModelOnly probes per call, which is why the serving layer
// memoizes it per machine-model fingerprint (serve::PlanCache) instead of
// re-sweeping on every request.
TunedBlock autotune_block_size(
    const gpusim::GpuMachineModel& model,
    kernels::ReductionVariant variant =
        kernels::ReductionVariant::RegisterSerialTransposed);

}  // namespace caqr::autotune

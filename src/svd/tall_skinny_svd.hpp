#pragma once

// Tall-skinny SVD via QR (§VI.B) and singular-value thresholding (§VI.C).
//
// The paper's pipeline for the m x n video matrix (m >> n):
//
//   A = Q R                      (QR on the GPU: CAQR or a baseline)
//   R = U Σ V^T                  (small n x n SVD on the CPU)
//   A = (Q U) Σ V^T              (left singular vectors via GEMM on the GPU)
//
// Each stage is charged to the same simulated Device timeline so the Robust
// PCA iteration-rate comparison (Table II) measures exactly what the paper
// measured. The QR backend is pluggable — CAQR, the tuned BLAS2 GPU QR, or
// a CPU SVD stand-in — through the SvdBackend interface.

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "baselines/gemm_model.hpp"
#include "baselines/qr_baselines.hpp"
#include "caqr/caqr.hpp"
#include "gpusim/device.hpp"
#include "linalg/bidiag.hpp"
#include "linalg/svd.hpp"

namespace caqr::svd {

template <typename T>
struct TallSkinnySvd {
  Matrix<T> u;           // m x n left singular vectors
  std::vector<T> sigma;  // n singular values, descending
  Matrix<T> v;           // n x n right singular vectors
  // False when the small Jacobi SVD of R exhausted its sweep budget without
  // reaching pairwise orthogonality — the factors are then approximate and
  // callers must not treat them as converged. Always true in ModelOnly runs
  // (no numerics executed).
  bool small_svd_converged = true;
};

enum class QrBackend {
  Caqr,       // the paper's contribution
  GpuBlas2,   // tuned bandwidth-bound GPU QR (Table II middle row)
};

// Algorithm for the small CPU SVD of R.
enum class SmallSvd {
  Jacobi,    // one-sided Jacobi directly on R
  TwoPhase,  // Golub-Kahan bidiagonalization + Jacobi on the bidiagonal
};

// Routing point for external QR execution (the serving layer's
// serve::PooledQrHook implements this). When TallSkinnySvdOptions::qr_hook
// is set and the run is Functional with the Caqr backend, stage 1 delegates
// to the hook instead of factoring inline: the hook returns explicit
// (Q, R) for `a` computed with exactly the given options — so the result is
// bit-identical to the inline path — plus the simulated seconds the
// factorization took on whatever device served it; the caller charges that
// time to its own timeline. ModelOnly runs ignore the hook (the inline
// charge path already models the cost, and a remote round trip has no
// numerics to contribute).
class QrHook {
 public:
  virtual ~QrHook() = default;
  // Factors a = q r (q: m x n orthonormal, r: n x n upper triangular for
  // tall a); returns simulated seconds spent. Must be thread-safe if the
  // same hook serves concurrent SVDs.
  virtual double qr(ConstMatrixView<float> a, const caqr::CaqrOptions& opt,
                    Matrix<float>& q, Matrix<float>& r) = 0;
  virtual double qr(ConstMatrixView<double> a, const caqr::CaqrOptions& opt,
                    Matrix<double>& q, Matrix<double>& r) = 0;
};

struct TallSkinnySvdOptions {
  QrBackend backend = QrBackend::Caqr;
  SmallSvd small_svd = SmallSvd::Jacobi;
  caqr::CaqrOptions caqr;
  baselines::GpuBlas2QrOptions blas2 = baselines::GpuBlas2QrOptions::tuned();
  // Effective rate of the small n x n Jacobi SVD on the host CPU
  // (bandwidth-irrelevant; tiny working set), used for simulated time.
  double cpu_svd_gflops = 4.0;
  // Sweep budget for the small Jacobi SVD; exhaustion is surfaced via
  // TallSkinnySvd::small_svd_converged instead of being silently dropped.
  int svd_max_sweeps = 60;
  // Optional external QR executor (see QrHook above). Non-owning; the hook
  // must outlive every SVD call that uses these options. Robust PCA routes
  // its per-iteration QR through a serve::SolverPool by setting this on
  // RpcaOptions::svd.
  QrHook* qr_hook = nullptr;
};

// Simulated-time charge for the small CPU SVD of R (one-sided Jacobi,
// ~6 sweeps x 4n^3 flops/sweep) plus the PCIe round trip for R.
inline void charge_small_svd(gpusim::Device& dev, idx n,
                             double cpu_svd_gflops) {
  const double flops = 24.0 * static_cast<double>(n) * n * n;
  dev.transfer(static_cast<double>(n) * n * sizeof(float));
  dev.add_external_seconds(flops / (cpu_svd_gflops * 1e9), "cpu_small_svd");
  dev.transfer(2.0 * static_cast<double>(n) * n * sizeof(float));  // U and V
}

// Stage 2 of the pipeline as a standalone entry point: the small n x n CPU
// SVD of an already-computed R, with the same timeline charge and algorithm
// selection as tall_skinny_svd. Callers that maintain R incrementally (the
// streaming layer's SlidingWindowQr keeps the window R current across
// append/evict) use this to get singular values/subspaces per frame without
// re-running stage 1 at all. Functional mode computes; ModelOnly only
// charges and returns an unconverged empty result.
template <typename VR>
SvdResult<view_scalar_t<VR>> small_svd_of_r(
    gpusim::Device& dev, const VR& r_in, const TallSkinnySvdOptions& opt = {}) {
  using T = view_scalar_t<VR>;
  const ConstMatrixView<T> r = cview(r_in);
  CAQR_CHECK(r.rows() == r.cols() && r.cols() >= 1);
  charge_small_svd(dev, r.cols(), opt.cpu_svd_gflops);
  SvdResult<T> rs;
  if (dev.mode() == gpusim::ExecMode::Functional) {
    rs = opt.small_svd == SmallSvd::Jacobi
             ? jacobi_svd(r, opt.svd_max_sweeps)
             : two_phase_svd(r, opt.svd_max_sweeps);
  }
  return rs;
}

// Thin SVD of a tall-skinny matrix through the QR pipeline. Functional in
// ExecMode::Functional; in ModelOnly only the timeline advances and the
// returned factors are unspecified.
template <typename VA>
TallSkinnySvd<view_scalar_t<VA>> tall_skinny_svd(
    gpusim::Device& dev, const VA& a_in, const TallSkinnySvdOptions& opt = {}) {
  using T = view_scalar_t<VA>;
  const ConstMatrixView<T> a = cview(a_in);
  const idx m = a.rows(), n = a.cols();
  CAQR_CHECK(m >= n && n >= 1);
  TallSkinnySvd<T> out{Matrix<T>::zeros(m, n),
                       std::vector<T>(static_cast<std::size_t>(n)),
                       Matrix<T>::zeros(n, n)};

  // Stage 1: A = Q R on the selected GPU backend. ModelOnly runs never read
  // the input, so a storage-free placeholder stands in for the copy the
  // factorization consumes (the input may itself be a placeholder).
  const bool functional = dev.mode() == gpusim::ExecMode::Functional;
  auto working_copy = [&] {
    return functional ? Matrix<T>::from(a) : Matrix<T>::shape_only(m, n);
  };
  Matrix<T> r(n, n);
  Matrix<T> q(0, 0);
  if (opt.backend == QrBackend::Caqr) {
    if (opt.qr_hook != nullptr && functional) {
      // Serving-layer route: the hook factors with the same options, so
      // (Q, R) are bit-identical to the inline path below; its device time
      // is charged to this timeline as one external op.
      Matrix<T> qh(0, 0), rh(0, 0);
      const double sim = opt.qr_hook->qr(a, opt.caqr, qh, rh);
      dev.add_external_seconds(sim, "pooled_qr");
      q = std::move(qh);
      r.view().copy_from(rh.view().block(0, 0, n, n));
    } else {
      auto f = CaqrFactorization<T>::factor(dev, working_copy(), opt.caqr);
      // Explicit Q (paper: SORGQR via CAQR costs about as much as the
      // factorization itself); in ModelOnly this only charges the timeline.
      q = f.form_q(dev, n);
      if (dev.mode() == gpusim::ExecMode::Functional) {
        r.view().copy_from(f.r().view().block(0, 0, n, n));
      }
    }
  } else {
    auto res = baselines::gpu_blas2_qr(dev, working_copy(), opt.blas2);
    if (dev.mode() == gpusim::ExecMode::Functional) {
      r.view().copy_from(extract_r(res.factored.view()).view().block(0, 0, n, n));
      q = form_q(res.factored.view(), res.tau.data(), n);
    }
    // Forming Q for the BLAS2 backend costs another bandwidth-bound sweep.
    baselines::GpuBlas2QrOptions orgqr = opt.blas2;
    orgqr.label = "blas2_orgqr";
    baselines::charge_blas2_sweep(dev, m, n, orgqr);
  }

  // Stage 2: small SVD of R on the CPU.
  SvdResult<T> rs = small_svd_of_r(dev, r.view(), opt);
  if (dev.mode() == gpusim::ExecMode::Functional) {
    out.small_svd_converged = rs.converged;
    out.sigma = rs.sigma;
    out.v = std::move(rs.v);
  }

  // Stage 3: U' = Q * U on the GPU.
  baselines::charge_gemm(dev, m, n, n, "gpu_gemm_qu");
  if (dev.mode() == gpusim::ExecMode::Functional) {
    gemm(Trans::No, Trans::No, T(1), q.view(), rs.u.view(), T(0),
         out.u.view());
  }
  return out;
}

// Singular-value thresholding operator: SVT_tau(A) = U shrink(Σ, tau) V^T,
// the core step of the Robust PCA inner loop (§VI.C). Returns the
// reconstructed matrix and the post-threshold rank.
template <typename T>
struct SvtResult {
  Matrix<T> value;
  idx rank = 0;
  bool svd_converged = true;  // see TallSkinnySvd::small_svd_converged
};

template <typename VA>
SvtResult<view_scalar_t<VA>> singular_value_threshold(
    gpusim::Device& dev, const VA& a_in, view_scalar_t<VA> tau,
    const TallSkinnySvdOptions& opt = {}) {
  using T = view_scalar_t<VA>;
  const ConstMatrixView<T> a = cview(a_in);
  const idx m = a.rows(), n = a.cols();
  auto f = tall_skinny_svd(dev, a, opt);
  SvtResult<T> out{Matrix<T>::zeros(m, n), 0, f.small_svd_converged};

  if (dev.mode() != gpusim::ExecMode::Functional) {
    // Charge the U * diag(shrunk sigma) * V^T reconstruction.
    baselines::charge_gemm(dev, m, n, n, "gpu_gemm_svt");
    return out;
  }

  std::vector<T> shrunk(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) {
    const T s = f.sigma[static_cast<std::size_t>(i)] - tau;
    shrunk[static_cast<std::size_t>(i)] = s > T(0) ? s : T(0);
    if (s > T(0)) ++out.rank;
  }
  // value = U * diag(shrunk) * V^T; fold diag into U's columns first.
  Matrix<T> us = std::move(f.u);
  for (idx j = 0; j < n; ++j) {
    scal(m, shrunk[static_cast<std::size_t>(j)], us.view().col(j));
  }
  baselines::charge_gemm(dev, m, n, n, "gpu_gemm_svt");
  gemm(Trans::No, Trans::Yes, T(1), us.view(), f.v.view(), T(0),
       out.value.view());
  return out;
}

}  // namespace caqr::svd

#pragma once

// Robust PCA by inexact augmented-Lagrangian alternating directions
// (§VI.A/C; Candes et al. 2009, Yuan & Yang 2009).
//
// Decomposes M = L + S with L low rank and S sparse by minimizing
// ||L||_* + lambda ||S||_1 subject to L + S = M, iterating:
//
//   L_{k+1} = SVT_{1/mu}        (M - S_k + Y_k / mu)   — dominant cost: SVD
//   S_{k+1} = shrink_{lambda/mu}(M - L_{k+1} + Y_k / mu)
//   Y_{k+1} = Y_k + mu (M - L_{k+1} - S_{k+1})
//
// The SVD inside the singular-value threshold runs through the pluggable
// tall-skinny SVD pipeline, so the Robust PCA iteration rate directly
// reflects the QR backend — exactly the comparison of Table II.

#include <cmath>
#include <string>
#include <vector>

#include "linalg/norms.hpp"
#include "svd/tall_skinny_svd.hpp"

namespace caqr::rpca {

struct RpcaOptions {
  // lambda = weight of the l1 term; 0 picks the standard 1/sqrt(max(m, n)).
  double lambda = 0.0;
  double mu = 0.0;        // 0 picks 1.25 / ||M||_2 (estimated via sigma_1)
  double rho = 1.5;       // mu growth factor per iteration
  int max_iterations = 100;
  double tolerance = 1e-6;  // ||M - L - S||_F / ||M||_F stopping criterion
  svd::TallSkinnySvdOptions svd;
};

template <typename T>
struct RpcaResult {
  Matrix<T> low_rank;
  Matrix<T> sparse;
  int iterations = 0;
  bool converged = false;
  double residual = 0.0;      // final ||M - L - S||_F / ||M||_F
  idx final_rank = 0;         // rank of L after the last threshold
  double simulated_seconds = 0.0;
  double seconds_per_iteration = 0.0;  // simulated
  // False if ANY inner singular-value threshold used a small SVD that
  // exhausted its sweep budget; such runs silently degraded before this flag
  // existed.
  bool svd_converged = true;
};

// Elementwise soft-threshold (shrinkage) operator.
template <typename T>
void shrink(MatrixView<T> a, T tau) {
  for (idx j = 0; j < a.cols(); ++j) {
    T* col = a.col(j);
    for (idx i = 0; i < a.rows(); ++i) {
      const T v = col[i];
      col[i] = v > tau ? v - tau : (v < -tau ? v + tau : T(0));
    }
  }
}

// Robust PCA of m x n matrix M (m >= n). Functional only — the Table II
// bench uses rpca_iteration_rate below for paper-scale timing.
template <typename VM>
RpcaResult<view_scalar_t<VM>> robust_pca(gpusim::Device& dev, const VM& m_in,
                                         const RpcaOptions& opt = {}) {
  using T = view_scalar_t<VM>;
  const ConstMatrixView<T> m = cview(m_in);
  CAQR_CHECK(dev.mode() == gpusim::ExecMode::Functional);
  const idx rows = m.rows(), cols = m.cols();
  CAQR_CHECK(rows >= cols && cols >= 1);

  const double lambda =
      opt.lambda > 0 ? opt.lambda : 1.0 / std::sqrt(static_cast<double>(rows));
  const double norm_m = frobenius_norm(m);

  RpcaResult<T> out{Matrix<T>::zeros(rows, cols), Matrix<T>::zeros(rows, cols),
                    0, false, 0.0, 0, 0.0, 0.0, true};
  Matrix<T> y = Matrix<T>::zeros(rows, cols);
  Matrix<T> work(rows, cols);

  // mu initialization: 1.25 / sigma_1(M), sigma_1 estimated from a thin SVD
  // of the (cheap) R factor of M.
  double mu = opt.mu;
  if (mu <= 0) {
    auto f = svd::tall_skinny_svd(dev, m, opt.svd);
    out.svd_converged = out.svd_converged && f.small_svd_converged;
    const double s1 = static_cast<double>(f.sigma.front());
    mu = s1 > 0 ? 1.25 / s1 : 1.0;
  }

  const double t0 = dev.elapsed_seconds();
  for (int it = 0; it < opt.max_iterations; ++it) {
    // L-step: SVT on (M - S + Y/mu).
    for (idx j = 0; j < cols; ++j) {
      const T* mc = m.col(j);
      const T* sc = out.sparse.view().col(j);
      const T* yc = y.view().col(j);
      T* wc = work.view().col(j);
      const T inv_mu = static_cast<T>(1.0 / mu);
      for (idx i = 0; i < rows; ++i) wc[i] = mc[i] - sc[i] + yc[i] * inv_mu;
    }
    auto svt = svd::singular_value_threshold(dev, work.view(),
                                             static_cast<T>(1.0 / mu), opt.svd);
    out.low_rank = std::move(svt.value);
    out.final_rank = svt.rank;
    out.svd_converged = out.svd_converged && svt.svd_converged;

    // S-step: shrink(M - L + Y/mu).
    for (idx j = 0; j < cols; ++j) {
      const T* mc = m.col(j);
      const T* lc = out.low_rank.view().col(j);
      const T* yc = y.view().col(j);
      T* sc = out.sparse.view().col(j);
      const T inv_mu = static_cast<T>(1.0 / mu);
      for (idx i = 0; i < rows; ++i) sc[i] = mc[i] - lc[i] + yc[i] * inv_mu;
    }
    shrink(out.sparse.view(), static_cast<T>(lambda / mu));

    // Dual update and convergence check on the primal residual.
    double res2 = 0;
    for (idx j = 0; j < cols; ++j) {
      const T* mc = m.col(j);
      const T* lc = out.low_rank.view().col(j);
      const T* sc = out.sparse.view().col(j);
      T* yc = y.view().col(j);
      const T tmu = static_cast<T>(mu);
      for (idx i = 0; i < rows; ++i) {
        const T r = mc[i] - lc[i] - sc[i];
        yc[i] += tmu * r;
        res2 += static_cast<double>(r) * static_cast<double>(r);
      }
    }
    out.residual = norm_m > 0 ? std::sqrt(res2) / norm_m : std::sqrt(res2);
    out.iterations = it + 1;
    mu *= opt.rho;
    if (out.residual < opt.tolerance) {
      out.converged = true;
      break;
    }
  }
  out.simulated_seconds = dev.elapsed_seconds() - t0;
  out.seconds_per_iteration =
      out.iterations > 0 ? out.simulated_seconds / out.iterations : 0.0;
  return out;
}

// Simulated iteration rate (iterations/second) of the Robust PCA loop at a
// given problem size — the Table II metric. Charges exactly one iteration's
// device work (SVT pipeline + elementwise passes) in ModelOnly.
template <typename T>
double rpca_iteration_rate(gpusim::Device& dev, idx rows, idx cols,
                           const svd::TallSkinnySvdOptions& opt) {
  const double t0 = dev.elapsed_seconds();
  Matrix<T> work(rows, cols);
  if (dev.mode() == gpusim::ExecMode::Functional) work.view().fill(T(0));
  auto svt = svd::singular_value_threshold(dev, work.view(), T(1), opt);
  (void)svt;
  // Elementwise passes (L-step input, S-step, dual update): ~4 streaming
  // passes over the m x n frame matrix on the GPU.
  const double bytes = 4.0 * 3.0 * static_cast<double>(rows) * cols * sizeof(T);
  dev.add_external_seconds(bytes / (dev.model().dram_bw_gbs * 1e9),
                           "rpca_elementwise");
  const double dt = dev.elapsed_seconds() - t0;
  return dt > 0 ? 1.0 / dt : 0.0;
}

}  // namespace caqr::rpca

#pragma once

// Robust PCA by inexact augmented-Lagrangian alternating directions
// (§VI.A/C; Candes et al. 2009, Yuan & Yang 2009).
//
// Decomposes M = L + S with L low rank and S sparse by minimizing
// ||L||_* + lambda ||S||_1 subject to L + S = M, iterating:
//
//   L_{k+1} = SVT_{1/mu}        (M - S_k + Y_k / mu)   — dominant cost: SVD
//   S_{k+1} = shrink_{lambda/mu}(M - L_{k+1} + Y_k / mu)
//   Y_{k+1} = Y_k + mu (M - L_{k+1} - S_{k+1})
//
// The SVD inside the singular-value threshold runs through the pluggable
// tall-skinny SVD pipeline, so the Robust PCA iteration rate directly
// reflects the QR backend — exactly the comparison of Table II.

// Checkpoint/restart: when RpcaOptions::checkpoint_path is set, the
// iteration state {S, Y, mu, iteration, svd_converged} is snapshotted every
// checkpoint_every iterations (L is recomputed from M, S, Y each iteration,
// so it need not be stored), and a valid checkpoint at the same path is
// resumed from — a resumed run is bit-identical to an uninterrupted one.

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "ft/checkpoint.hpp"
#include "linalg/norms.hpp"
#include "svd/tall_skinny_svd.hpp"

namespace caqr::rpca {

struct RpcaOptions {
  // lambda = weight of the l1 term; 0 picks the standard 1/sqrt(max(m, n)).
  double lambda = 0.0;
  double mu = 0.0;        // 0 picks 1.25 / ||M||_2 (estimated via sigma_1)
  double rho = 1.5;       // mu growth factor per iteration
  int max_iterations = 100;
  double tolerance = 1e-6;  // ||M - L - S||_F / ||M||_F stopping criterion
  // SVD pipeline options for the per-iteration SVT. Setting svd.qr_hook to
  // a serve::PooledQrHook routes every iteration's tall-skinny QR through a
  // SolverPool (bit-identical factors; remote device time charged here).
  svd::TallSkinnySvdOptions svd;

  // Checkpoint/restart (ft/checkpoint.hpp). Non-empty: snapshot the
  // iteration state every `checkpoint_every` iterations and resume from a
  // valid checkpoint at the same path.
  std::string checkpoint_path;
  int checkpoint_every = 1;
  // Test hook simulating a mid-run kill: stop after this many iterations
  // (0 = run to convergence).
  int halt_after_iterations = 0;
};

template <typename T>
struct RpcaResult {
  Matrix<T> low_rank;
  Matrix<T> sparse;
  int iterations = 0;
  bool converged = false;
  double residual = 0.0;      // final ||M - L - S||_F / ||M||_F
  idx final_rank = 0;         // rank of L after the last threshold
  double simulated_seconds = 0.0;
  double seconds_per_iteration = 0.0;  // simulated
  // False if ANY inner singular-value threshold used a small SVD that
  // exhausted its sweep budget; such runs silently degraded before this flag
  // existed.
  bool svd_converged = true;
  bool resumed_from_checkpoint = false;
  int resumed_at_iteration = 0;
};

// The standard Candes-Li-Ma-Wright l1 weight for an m x n observation
// matrix: 1/sqrt(max dimension). Shared by the batch solver below and the
// streaming per-frame solver (stream/online_rpca.hpp), which thresholds
// frame_rows x cols frames rather than the full window.
inline double default_rpca_lambda(idx max_dim) {
  CAQR_CHECK(max_dim >= 1);
  return 1.0 / std::sqrt(static_cast<double>(max_dim));
}

// Elementwise soft-threshold (shrinkage) operator.
template <typename T>
void shrink(MatrixView<T> a, T tau) {
  for (idx j = 0; j < a.cols(); ++j) {
    T* col = a.col(j);
    for (idx i = 0; i < a.rows(); ++i) {
      const T v = col[i];
      col[i] = v > tau ? v - tau : (v < -tau ? v + tau : T(0));
    }
  }
}

// Robust PCA of m x n matrix M (m >= n). Functional only — the Table II
// bench uses rpca_iteration_rate below for paper-scale timing.
template <typename VM>
RpcaResult<view_scalar_t<VM>> robust_pca(gpusim::Device& dev, const VM& m_in,
                                         const RpcaOptions& opt = {}) {
  using T = view_scalar_t<VM>;
  const ConstMatrixView<T> m = cview(m_in);
  CAQR_CHECK(dev.mode() == gpusim::ExecMode::Functional);
  const idx rows = m.rows(), cols = m.cols();
  CAQR_CHECK(rows >= cols && cols >= 1);

  const double lambda = opt.lambda > 0 ? opt.lambda : default_rpca_lambda(rows);
  const double norm_m = frobenius_norm(m);

  RpcaResult<T> out{Matrix<T>::zeros(rows, cols), Matrix<T>::zeros(rows, cols),
                    0, false, 0.0, 0, 0.0, 0.0, true};
  Matrix<T> y = Matrix<T>::zeros(rows, cols);
  Matrix<T> work(rows, cols);

  double mu = opt.mu;
  int first_it = 0;
  if (!opt.checkpoint_path.empty()) {
    if (const auto r = ft::CheckpointReader::load(opt.checkpoint_path)) {
      std::int64_t crows = 0, ccols = 0, ssize = 0, cit = 0;
      double cmu = 0.0;
      std::uint8_t sconv = 1;
      Matrix<T> s, yy;
      if (r->scalar("rows", crows) && r->scalar("cols", ccols) &&
          r->scalar("scalar_size", ssize) && r->scalar("iteration", cit) &&
          r->scalar("mu", cmu) && r->scalar("svd_converged", sconv) &&
          crows == rows && ccols == cols &&
          ssize == static_cast<std::int64_t>(sizeof(T)) && cit >= 1 &&
          cit < opt.max_iterations && cmu > 0.0 &&
          r->matrix("sparse", s) && r->matrix("y", yy) && s.rows() == rows &&
          s.cols() == cols && yy.rows() == rows && yy.cols() == cols) {
        out.sparse = std::move(s);
        y = std::move(yy);
        mu = cmu;
        first_it = static_cast<int>(cit);
        out.svd_converged = sconv != 0;
        out.resumed_from_checkpoint = true;
        out.resumed_at_iteration = first_it;
      }
    }
  }

  // mu initialization: 1.25 / sigma_1(M), sigma_1 estimated from a thin SVD
  // of the (cheap) R factor of M. A resumed run restored mu instead.
  if (mu <= 0) {
    auto f = svd::tall_skinny_svd(dev, m, opt.svd);
    out.svd_converged = out.svd_converged && f.small_svd_converged;
    const double s1 = static_cast<double>(f.sigma.front());
    mu = s1 > 0 ? 1.25 / s1 : 1.0;
  }

  const double t0 = dev.elapsed_seconds();
  for (int it = first_it; it < opt.max_iterations; ++it) {
    // L-step: SVT on (M - S + Y/mu).
    for (idx j = 0; j < cols; ++j) {
      const T* mc = m.col(j);
      const T* sc = out.sparse.view().col(j);
      const T* yc = y.view().col(j);
      T* wc = work.view().col(j);
      const T inv_mu = static_cast<T>(1.0 / mu);
      for (idx i = 0; i < rows; ++i) wc[i] = mc[i] - sc[i] + yc[i] * inv_mu;
    }
    auto svt = svd::singular_value_threshold(dev, work.view(),
                                             static_cast<T>(1.0 / mu), opt.svd);
    out.low_rank = std::move(svt.value);
    out.final_rank = svt.rank;
    out.svd_converged = out.svd_converged && svt.svd_converged;

    // S-step: shrink(M - L + Y/mu).
    for (idx j = 0; j < cols; ++j) {
      const T* mc = m.col(j);
      const T* lc = out.low_rank.view().col(j);
      const T* yc = y.view().col(j);
      T* sc = out.sparse.view().col(j);
      const T inv_mu = static_cast<T>(1.0 / mu);
      for (idx i = 0; i < rows; ++i) sc[i] = mc[i] - lc[i] + yc[i] * inv_mu;
    }
    shrink(out.sparse.view(), static_cast<T>(lambda / mu));

    // Dual update and convergence check on the primal residual.
    double res2 = 0;
    for (idx j = 0; j < cols; ++j) {
      const T* mc = m.col(j);
      const T* lc = out.low_rank.view().col(j);
      const T* sc = out.sparse.view().col(j);
      T* yc = y.view().col(j);
      const T tmu = static_cast<T>(mu);
      for (idx i = 0; i < rows; ++i) {
        const T r = mc[i] - lc[i] - sc[i];
        yc[i] += tmu * r;
        res2 += static_cast<double>(r) * static_cast<double>(r);
      }
    }
    out.residual = norm_m > 0 ? std::sqrt(res2) / norm_m : std::sqrt(res2);
    out.iterations = it + 1;
    mu *= opt.rho;
    if (out.residual < opt.tolerance) {
      out.converged = true;
      break;
    }
    if (!opt.checkpoint_path.empty() && opt.checkpoint_every > 0 &&
        (it + 1) % opt.checkpoint_every == 0) {
      ft::CheckpointWriter w;
      w.scalar("rows", static_cast<std::int64_t>(rows));
      w.scalar("cols", static_cast<std::int64_t>(cols));
      w.scalar("scalar_size", static_cast<std::int64_t>(sizeof(T)));
      w.scalar("iteration", static_cast<std::int64_t>(it + 1));
      w.scalar("mu", mu);
      w.scalar("svd_converged",
               static_cast<std::uint8_t>(out.svd_converged ? 1 : 0));
      w.matrix("sparse", out.sparse.view());
      w.matrix("y", y.view());
      w.write(opt.checkpoint_path);
    }
    if (opt.halt_after_iterations > 0 &&
        it + 1 >= opt.halt_after_iterations) {
      break;
    }
  }
  out.simulated_seconds = dev.elapsed_seconds() - t0;
  out.seconds_per_iteration =
      out.iterations > 0 ? out.simulated_seconds / out.iterations : 0.0;
  return out;
}

// Simulated iteration rate (iterations/second) of the Robust PCA loop at a
// given problem size — the Table II metric. Charges exactly one iteration's
// device work (SVT pipeline + elementwise passes) in ModelOnly.
template <typename T>
double rpca_iteration_rate(gpusim::Device& dev, idx rows, idx cols,
                           const svd::TallSkinnySvdOptions& opt) {
  const double t0 = dev.elapsed_seconds();
  Matrix<T> work(rows, cols);
  if (dev.mode() == gpusim::ExecMode::Functional) work.view().fill(T(0));
  auto svt = svd::singular_value_threshold(dev, work.view(), T(1), opt);
  (void)svt;
  // Elementwise passes (L-step input, S-step, dual update): ~4 streaming
  // passes over the m x n frame matrix on the GPU.
  const double bytes = 4.0 * 3.0 * static_cast<double>(rows) * cols * sizeof(T);
  dev.add_external_seconds(bytes / (dev.model().dram_bw_gbs * 1e9),
                           "rpca_elementwise");
  const double dt = dev.elapsed_seconds() - t0;
  return dt > 0 ? 1.0 / dt : 0.0;
}

}  // namespace caqr::rpca

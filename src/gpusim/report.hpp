#pragma once

// Timeline reporting helpers: render a Device's per-kernel profile as an
// aligned table (what the examples and benches print) or CSV, and export
// the resolved stream timeline as chrome://tracing JSON.

#include <cstdio>
#include <string>

#include "common/profile.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"

namespace caqr::gpusim {

// Per-kernel table sorted by name: launches, blocks, simulated ms, share of
// total, achieved GFLOP/s (0 for non-arithmetic entries).
inline TextTable profile_table(const Device& dev) {
  TextTable table({"kernel", "launches", "blocks", "ms", "share", "GFLOP/s"});
  const double total = dev.elapsed_seconds();
  for (const auto& p : dev.profiles()) {
    char share[16];
    std::snprintf(share, sizeof(share), "%.1f%%",
                  total > 0 ? 100.0 * p.seconds / total : 0.0);
    table.cell(p.name)
        .cell(p.launches)
        .cell(p.blocks)
        .cell(p.seconds * 1e3, 3)
        .cell(std::string(share))
        .cell(p.gflops(), 1)
        .end_row();
  }
  return table;
}

inline std::string profile_csv(const Device& dev) {
  return profile_table(dev).to_csv();
}

inline void print_profile(const Device& dev) { profile_table(dev).print(); }

// Chrome-trace ("chrome://tracing" / Perfetto) export of the device's
// resolved stream timeline: one complete event ("ph":"X") per launch, with
// tid = stream id and timestamps/durations in microseconds. Load the file
// in chrome://tracing or ui.perfetto.dev to see the per-stream overlap.
//
// `other_data`, when non-empty, must be a JSON value; it is embedded under
// the trace-format "otherData" key (tooling ignores unknown top-level keys),
// which is where the benches attach their Verifier reports so every
// BENCH_*.json artifact carries the residuals of the run it timed.
//
// `host_profile` additionally embeds a point-in-time snapshot of the host
// profiling registry (common/profile.hpp: per-stage host nanoseconds, lock
// waits, process-wide allocation counts) under a "hostProfile" key, so a
// trace of a simulated timeline also records the host cost of producing it.
// Off by default: the snapshot is live data, so two calls would not be
// byte-identical.
inline std::string trace_json(const Device& dev,
                              const std::string& other_data = "",
                              bool host_profile = false) {
  auto escaped = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& e : dev.trace()) {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"cat\":\"kernel\",\"ph\":\"X\","
                  "\"pid\":0,\"tid\":%d,\"ts\":%.6f,\"dur\":%.6f,"
                  "\"args\":{\"blocks\":%lld,\"flops\":%.17g,"
                  "\"gmem_bytes\":%.17g}}",
                  first ? "" : ",", escaped(e.name).c_str(), e.stream,
                  e.t_start * 1e6, (e.t_end - e.t_start) * 1e6, e.blocks,
                  e.flops, e.gmem_bytes);
    out += buf;
    first = false;
  }
  out += "]";
  if (!other_data.empty()) {
    out += ",\"otherData\":";
    out += other_data;
  }
  if (host_profile) {
    out += ",\"hostProfile\":";
    out += prof::to_json();
  }
  out += "}";
  return out;
}

inline bool write_trace_json(const Device& dev, const std::string& path,
                             const std::string& other_data = "",
                             bool host_profile = false) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = trace_json(dev, other_data, host_profile);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace caqr::gpusim

#pragma once

// Timeline reporting helpers: render a Device's per-kernel profile as an
// aligned table (what the examples and benches print) or CSV.

#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "gpusim/device.hpp"

namespace caqr::gpusim {

// Per-kernel table sorted by name: launches, blocks, simulated ms, share of
// total, achieved GFLOP/s (0 for non-arithmetic entries).
inline TextTable profile_table(const Device& dev) {
  TextTable table({"kernel", "launches", "blocks", "ms", "share", "GFLOP/s"});
  const double total = dev.elapsed_seconds();
  for (const auto& p : dev.profiles()) {
    char share[16];
    std::snprintf(share, sizeof(share), "%.1f%%",
                  total > 0 ? 100.0 * p.seconds / total : 0.0);
    table.cell(p.name)
        .cell(p.launches)
        .cell(p.blocks)
        .cell(p.seconds * 1e3, 3)
        .cell(std::string(share))
        .cell(p.gflops(), 1)
        .end_row();
  }
  return table;
}

inline std::string profile_csv(const Device& dev) {
  return profile_table(dev).to_csv();
}

inline void print_profile(const Device& dev) { profile_table(dev).print(); }

}  // namespace caqr::gpusim

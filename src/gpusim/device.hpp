#pragma once

// The simulated GPU device: kernel launch engine + simulated timeline.
//
// A "kernel" is any type with:
//
//   void run_block(caqr::idx block) const;          // functional execution
//   BlockStats block_stats(caqr::idx block) const;  // closed-form cost
//   const char* name() const;
//
// launch() executes all blocks of a grid (in parallel on the host thread
// pool when ExecMode::Functional; skipped entirely when ExecMode::ModelOnly)
// and advances the simulated clock using the machine model:
//
//   t_compute = max( sum(block cycles) / num_SMs, max(block cycles) ) / f
//   t_mem     = sum(gmem bytes) / DRAM bandwidth
//   t_launch  = kernel launch overhead
//   t         = t_launch + max(t_compute, t_mem)          (roofline + floor)
//
// The max(..., max block cycles) term is the latency floor that makes
// shallow reduction trees win: a launch with 2 blocks cannot go faster than
// its slowest block regardless of how many SMs are idle. ModelOnly and
// Functional produce bit-identical timelines because block_stats() is the
// only input to the clock.

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "gpusim/machine_model.hpp"
#include "gpusim/stats.hpp"
#include "linalg/matrix.hpp"

namespace caqr::gpusim {

enum class ExecMode {
  Functional,  // run the arithmetic AND account the cost
  ModelOnly,   // account the cost only (used for paper-scale benchmarks)
};

// Kernels whose blocks fall into a few equivalence classes (full blocks vs
// the ragged tail, full tiles vs the last tile) can expose an aggregated
// view (StatsClass, gpusim/stats.hpp) so paper-scale ModelOnly launches
// cost O(classes), not O(blocks).
template <typename K>
concept HasStatsSummary = requires(const K& k) {
  { k.stats_summary() } -> std::convertible_to<std::vector<StatsClass>>;
};

class Device {
 public:
  explicit Device(GpuMachineModel model = GpuMachineModel::c2050(),
                  ExecMode mode = ExecMode::Functional,
                  ThreadPool* pool = nullptr)
      : model_(std::move(model)),
        mode_(mode),
        pool_(pool != nullptr ? pool : &ThreadPool::global()) {}

  const GpuMachineModel& model() const { return model_; }
  ExecMode mode() const { return mode_; }
  void set_mode(ExecMode mode) { mode_ = mode; }

  template <typename Kernel>
  void launch(const Kernel& kernel, idx num_blocks) {
    CAQR_CHECK(num_blocks >= 0);
    if (num_blocks == 0) return;

    if (mode_ == ExecMode::Functional) {
      pool_->parallel_for(
          static_cast<std::size_t>(num_blocks),
          [&](std::size_t b) { kernel.run_block(static_cast<idx>(b)); });
    }

    double sum_cycles = 0, max_cycles = 0, sum_bytes = 0, sum_flops = 0;
    auto accumulate = [&](const BlockStats& s, double count) {
      const double cycles =
          s.issue_cycles * model_.issue_stall_factor +
          s.smem_accesses * model_.smem_cycles_per_access +
          s.syncs * model_.sync_cycles;
      sum_cycles += cycles * count;
      if (cycles > max_cycles) max_cycles = cycles;
      sum_bytes += s.gmem_bytes * count;
      sum_flops += s.flops * count;
    };
    if constexpr (HasStatsSummary<Kernel>) {
      idx covered = 0;
      for (const StatsClass& c : kernel.stats_summary()) {
        accumulate(c.stats, static_cast<double>(c.count));
        covered += c.count;
      }
      CAQR_CHECK_MSG(covered == num_blocks,
                     "stats_summary must cover every block exactly once");
    } else {
      for (idx b = 0; b < num_blocks; ++b) {
        accumulate(kernel.block_stats(b), 1.0);
      }
    }

    const double t_compute =
        std::max(sum_cycles / model_.num_sms, max_cycles) / model_.clock_hz();
    const double t_mem = sum_bytes / (model_.dram_bw_gbs * 1e9);
    const double t =
        model_.kernel_launch_us * 1e-6 + std::max(t_compute, t_mem);

    seconds_ += t;
    auto& prof = profiles_[kernel.name()];
    if (prof.name.empty()) prof.name = kernel.name();
    ++prof.launches;
    prof.blocks += num_blocks;
    prof.flops += sum_flops;
    prof.gmem_bytes += sum_bytes;
    prof.seconds += t;
  }

  // Explicit PCIe transfer between host and device memory (simulated time
  // only; data lives in host memory either way).
  void transfer(double bytes, const PcieModel& link = PcieModel{}) {
    const double t = link.transfer_seconds(bytes);
    seconds_ += t;
    auto& prof = profiles_["pcie_transfer"];
    if (prof.name.empty()) prof.name = "pcie_transfer";
    ++prof.launches;
    prof.gmem_bytes += bytes;
    prof.seconds += t;
  }

  // Advance the simulated clock for work done off-device (e.g. the small
  // SVD of R on the CPU in the application pipeline).
  void add_external_seconds(double t, const std::string& label) {
    CAQR_CHECK(t >= 0);
    seconds_ += t;
    auto& prof = profiles_[label];
    if (prof.name.empty()) prof.name = label;
    ++prof.launches;
    prof.seconds += t;
  }

  double elapsed_seconds() const { return seconds_; }

  void reset_timeline() {
    seconds_ = 0;
    profiles_.clear();
  }

  // Per-kernel aggregation, insertion-order-independent (sorted by name).
  std::vector<KernelProfile> profiles() const {
    std::vector<KernelProfile> out;
    out.reserve(profiles_.size());
    for (const auto& [_, p] : profiles_) out.push_back(p);
    return out;
  }

  const KernelProfile* profile(const std::string& name) const {
    const auto it = profiles_.find(name);
    return it != profiles_.end() ? &it->second : nullptr;
  }

 private:
  GpuMachineModel model_;
  ExecMode mode_;
  ThreadPool* pool_;
  double seconds_ = 0;
  std::map<std::string, KernelProfile> profiles_;
};

}  // namespace caqr::gpusim

#pragma once

// The simulated GPU device: kernel launch engine + simulated stream timeline.
//
// A "kernel" is any type with:
//
//   void run_block(caqr::idx block) const;          // functional execution
//   BlockStats block_stats(caqr::idx block) const;  // closed-form cost
//   const char* name() const;
//
// launch() executes all blocks of a grid (in parallel on the host thread
// pool when ExecMode::Functional; skipped entirely when ExecMode::ModelOnly)
// and schedules the launch on a stream of the simulated device. A launch
// running alone costs, exactly as in the serial model:
//
//   t_compute = max( sum(block cycles) / num_SMs, max(block cycles) ) / f
//   t_mem     = sum(gmem bytes) / DRAM bandwidth
//   t_launch  = kernel launch overhead
//   t         = t_launch + max(t_compute, t_mem)          (roofline + floor)
//
// The max(..., max block cycles) term is the latency floor that makes
// shallow reduction trees win: a launch with 2 blocks cannot go faster than
// its slowest block regardless of how many SMs are idle.
//
// Streams. launch(stream, kernel, blocks) enqueues work on a per-stream
// timeline (CUDA-stream semantics: FIFO within a stream, concurrent across
// streams). record_event / wait_event express cross-stream dependencies.
// Pending work is resolved lazily — sync(), elapsed_seconds(), profiles()
// and trace() all force resolution — by an event-driven fluid simulation:
// kernels running concurrently share the SM pool and the DRAM bandwidth, so
// the instantaneous slowdown of every running kernel is
//
//   S = max(1, sum of SM-pool utilizations, sum of DRAM utilizations)
//
// where a kernel's utilizations are measured against its solo roofline time
// (a latency-floor-bound launch uses few SMs and leaves the rest for other
// streams; two bandwidth-bound kernels just split the DRAM pipe). This is
// work-conserving: overlap never makes the makespan worse than the serial
// schedule, and launch overhead is only paid where it lands on the critical
// path (each stream pays its own overheads, concurrently with other
// streams' execution). The legacy stream (kDefaultStream, used by the
// one-argument launch()) keeps the CUDA default-stream barrier semantics:
// it joins all async work before and after, so single-stream code sees the
// exact serial timeline of the original model.
//
// ModelOnly and Functional produce bit-identical timelines because
// block_stats() is the only input to the clock; resolution is a pure
// function of the issue sequence, so timelines are also independent of the
// host thread pool. Every resolved launch leaves a TraceEvent (stream,
// kernel, start, end, blocks, flops, bytes) for the chrome://tracing
// exporter in gpusim/report.hpp.
//
// Fault tolerance (ft/). set_fault_tolerance({.abft = true, ...}) arms ABFT
// guarding: every functional launch of a kernel that opts in
// (ft::HasAbft) is wrapped encode -> run -> verify, failed blocks are
// restored from a pre-launch snapshot and re-executed up to
// max_launch_retries times (each retry consumes a fresh launch ordinal, so
// recovery stays a pure function of the fault seed), and launch() returns a
// structured ft::Severity instead of silent success. The checksum work is
// charged to the performance model as one "<kernel>_abft" op per guarded
// launch — identical in ModelOnly, where no data exists but the overhead
// must still be visible. With fault tolerance off (the default) the launch
// path is unchanged: no extra ops, no extra arithmetic, bit-identical
// timelines to builds before the subsystem existed.

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <iterator>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/profile.hpp"
#include "common/thread_pool.hpp"
#include "ft/abft.hpp"
#include "ft/ft.hpp"
#include "gpusim/fault.hpp"
#include "gpusim/machine_model.hpp"
#include "gpusim/stats.hpp"
#include "linalg/matrix.hpp"

namespace caqr::gpusim {

enum class ExecMode {
  Functional,  // run the arithmetic AND account the cost
  ModelOnly,   // account the cost only (used for paper-scale benchmarks)
};

// Stream / event handles. Streams are cheap integer ids minted by
// create_stream(); events are one-shot timestamps minted by record_event().
using StreamId = int;
using EventId = std::int64_t;
inline constexpr StreamId kDefaultStream = 0;

// Kernels whose blocks fall into a few equivalence classes (full blocks vs
// the ragged tail, full tiles vs the last tile) can expose an aggregated
// view (StatsClass, gpusim/stats.hpp) so paper-scale ModelOnly launches
// cost O(classes), not O(blocks).
// Any iterable of StatsClass qualifies — kernels return an inline-storage
// SmallVec so the per-launch cost path stays off the heap.
template <typename K>
concept HasStatsSummary = requires(const K& k) {
  { *std::begin(k.stats_summary()) } -> std::convertible_to<StatsClass>;
  { std::end(k.stats_summary()) };
};

// Kernels that expose their writable output surface (a MatrixView) are
// eligible for bit-flip fault injection; kernels without one (cost-only,
// transpose) can only have blocks dropped.
template <typename K>
concept HasFaultSurface = requires(const K& k) {
  k.fault_surface();
};

class Device {
 public:
  explicit Device(GpuMachineModel model = GpuMachineModel::c2050(),
                  ExecMode mode = ExecMode::Functional,
                  ThreadPool* pool = nullptr)
      : model_(std::move(model)),
        mode_(mode),
        pool_(pool != nullptr ? pool : &ThreadPool::global()) {}

  const GpuMachineModel& model() const { return model_; }
  ExecMode mode() const { return mode_; }
  void set_mode(ExecMode mode) { mode_ = mode; }

  // Mints a fresh asynchronous stream (ids >= 1; 0 is the legacy stream).
  StreamId create_stream() { return next_stream_++; }

  // Fault injection (gpusim/fault.hpp): seeded, deterministic corruption of
  // the functional path. Off by default; ModelOnly launches are unaffected
  // (there is no data to corrupt).
  void set_fault_injection(const FaultOptions& faults) { faults_ = faults; }
  const FaultOptions& fault_injection() const { return faults_; }
  const std::vector<FaultEvent>& fault_log() const { return fault_log_; }
  void clear_fault_log() { fault_log_.clear(); }

  // Fault tolerance (ft/ft.hpp): ABFT guarding + bounded launch retry.
  // Orthogonal to set_fault_injection — the injector creates faults, the
  // fault-tolerance layer detects and repairs them.
  void set_fault_tolerance(const ft::FtOptions& opt) { ft_ = opt; }
  const ft::FtOptions& fault_tolerance() const { return ft_; }
  const ft::Summary& ft_summary() const { return ft_summary_; }
  const std::vector<ft::LaunchReport>& ft_reports() const { return ft_log_; }
  void clear_ft_reports() {
    ft_log_.clear();
    ft_summary_ = ft::Summary{};
  }

  // Legacy entry point: launch on the default stream, which synchronizes
  // with all other streams before and after (CUDA default-stream behavior),
  // reproducing the original fully-serial timeline.
  template <typename Kernel>
  ft::Severity launch(const Kernel& kernel, idx num_blocks) {
    return launch(kDefaultStream, kernel, num_blocks);
  }

  template <typename Kernel>
  ft::Severity launch(StreamId stream, const Kernel& kernel, idx num_blocks) {
    CAQR_CHECK(num_blocks >= 0);
    if (num_blocks == 0) return ft::Severity::Ok;
    if (stream == kDefaultStream) sync();

    // Functional execution happens at issue time, in host program order;
    // callers must issue launches in an order consistent with their stream
    // dependencies (natural for any single-threaded host program).
    const long long ordinal = launch_ordinal_++;
    ft::Severity severity = ft::Severity::Ok;
    if (mode_ == ExecMode::Functional) {
      bool plain = true;
      if constexpr (ft::HasAbft<Kernel>) {
        if (ft_.abft) {
          severity = guarded_run(stream, kernel, num_blocks, ordinal);
          plain = false;
        }
      }
      if (plain) run_blocks(kernel, num_blocks, ordinal, nullptr);
    }

    enqueue_launch_cost(stream, kernel, num_blocks);
    if constexpr (ft::HasAbft<Kernel>) {
      // The checksum encode/verify (and the recovery snapshot traffic) is
      // real work: charge it in both exec modes so ModelOnly timelines show
      // the ABFT overhead.
      if (ft_.abft && ft_.charge_model) {
        CostAccum a;
        accum_stats(a, ft::abft_stats(kernel, ft_.recovery()), 1.0);
        enqueue_cost_op(stream, std::string(kernel.name()) + "_abft", 1, a,
                        0.0);
      }
    }
    if (stream == kDefaultStream) sync();
    return severity;
  }

  // Records the completion point of all work currently enqueued on `stream`.
  EventId record_event(StreamId stream) {
    const EventId e = next_event_++;
    PendingOp op;
    op.kind = PendingOp::Kind::Record;
    op.event = e;
    enqueue(stream, std::move(op));
    return e;
  }

  // Makes subsequent work on `stream` wait until `event` has completed.
  void wait_event(StreamId stream, EventId event) {
    CAQR_CHECK(event >= 0 && event < next_event_);
    PendingOp op;
    op.kind = PendingOp::Kind::Wait;
    op.event = event;
    enqueue(stream, std::move(op));
  }

  // Resolves all pending work and joins every stream at the resulting clock
  // (device-wide barrier). Returns the simulated clock.
  double sync() {
    resolve_pending();
    base_ = timeline_end();
    stream_time_.clear();
    return base_;
  }

  // Device-wide barrier that also holds the clock at `t` if `t` is in the
  // future — the multi-device synchronization primitive: DeviceGrid aligns
  // both endpoints of a transfer to max(their clocks) before charging the
  // link time on each. Returns the resulting clock.
  double wait_until(double t) {
    sync();
    if (t > base_) base_ = t;
    return base_;
  }

  // Explicit PCIe transfer between host and device memory (simulated time
  // only; data lives in host memory either way). Device-wide barrier. The
  // label defaults to the historical op name; dist::DeviceGrid charges its
  // per-link peer transfers through the same path under semantic labels so
  // they are distinguishable in profiles and traces.
  void transfer(double bytes, const PcieModel& link = PcieModel{},
                const std::string& label = "pcie_transfer") {
    const double t = link.transfer_seconds(bytes);
    external_op(label, t, bytes);
  }

  // Advance the simulated clock for work done off-device (e.g. the small
  // SVD of R on the CPU in the application pipeline). Device-wide barrier.
  void add_external_seconds(double t, const std::string& label) {
    CAQR_CHECK(t >= 0);
    external_op(label, t, 0.0);
  }

  double elapsed_seconds() const {
    resolve_pending();
    return timeline_end();
  }

  void reset_timeline() {
    // Streams mint fresh ids per request (look-ahead creates two per
    // factorization), so the per-stream entries cannot be reused by key —
    // but their op buffers can: park them on a small freelist so the next
    // request's queues start with warm capacity.
    for (auto& [s, q] : pending_) {
      if (spare_queues_.size() < kMaxSpareQueues) {
        q.clear();
        spare_queues_.push_back(std::move(q));
      }
    }
    pending_.clear();
    num_pending_ = 0;
    stream_time_.clear();
    event_time_.clear();
    event_base_ = next_event_;
    base_ = 0;
    profiles_.clear();
    trace_.clear();
  }

  // Per-kernel aggregation, insertion-order-independent (sorted by name).
  std::vector<KernelProfile> profiles() const {
    resolve_pending();
    std::vector<KernelProfile> out;
    out.reserve(profiles_.size());
    for (const auto& [_, p] : profiles_) out.push_back(p);
    return out;
  }

  const KernelProfile* profile(const std::string& name) const {
    resolve_pending();
    const auto it = profiles_.find(name);
    return it != profiles_.end() ? &it->second : nullptr;
  }

  // Resolved execution records in completion order (absolute simulated
  // seconds), the input to the chrome-trace exporter.
  const std::vector<TraceEvent>& trace() const {
    resolve_pending();
    return trace_;
  }

 private:
  struct PendingOp {
    enum class Kind { Launch, Record, Wait };
    Kind kind = Kind::Launch;
    std::string name;
    long long blocks = 0;
    double flops = 0;
    double bytes = 0;
    double solo_seconds = 0;  // roofline duration running alone, no overhead
    double u_compute = 0;     // average SM-pool utilization, in [0, 1]
    double u_mem = 0;         // average DRAM-bandwidth utilization, in [0, 1]
    double overhead = 0;      // host-side launch overhead, seconds
    EventId event = -1;       // Record / Wait payload
  };

  // FIFO over a flat vector with a consumed-prefix cursor. The pending
  // queues fill and fully drain on every timeline resolve; a std::deque
  // hands its blocks back to the heap each drain, so steady-state serving
  // paid ~tens of allocations per request just re-growing them. The vector
  // keeps its capacity across the fill/drain cycle.
  struct OpQueue {
    std::vector<PendingOp> ops;
    std::size_t head = 0;

    bool empty() const { return head == ops.size(); }
    PendingOp& front() { return ops[head]; }
    void push_back(PendingOp&& op) {
      if (empty() && head != 0) {
        ops.clear();
        head = 0;
      }
      ops.push_back(std::move(op));
    }
    void pop_front() {
      ++head;
      if (head == ops.size()) {
        ops.clear();
        head = 0;
      }
    }
    void clear() {
      ops.clear();
      head = 0;
    }
  };

  // One admitted kernel inside resolve_pending's event loop.
  struct Running {
    StreamId stream;
    PendingOp op;
    double start = 0;
    double remaining = 0;  // solo-seconds of work left
  };

  double t_compute_unfloored(double sum_cycles) const {
    return sum_cycles / model_.num_sms / model_.clock_hz();
  }

  struct CostAccum {
    double sum_cycles = 0;
    double max_cycles = 0;
    double bytes = 0;
    double flops = 0;
  };

  void accum_stats(CostAccum& a, const BlockStats& s, double count) const {
    const double cycles = s.issue_cycles * model_.issue_stall_factor +
                          s.smem_accesses * model_.smem_cycles_per_access +
                          s.syncs * model_.sync_cycles;
    a.sum_cycles += cycles * count;
    if (cycles > a.max_cycles) a.max_cycles = cycles;
    a.bytes += s.gmem_bytes * count;
    a.flops += s.flops * count;
  }

  void enqueue_cost_op(StreamId stream, std::string name, long long blocks,
                       const CostAccum& a, double overhead_seconds) {
    const double t_compute =
        std::max(a.sum_cycles / model_.num_sms, a.max_cycles) /
        model_.clock_hz();
    const double t_mem = a.bytes / (model_.dram_bw_gbs * 1e9);
    const double solo = std::max(t_compute, t_mem);
    PendingOp op;
    op.kind = PendingOp::Kind::Launch;
    op.name = std::move(name);
    op.blocks = blocks;
    op.flops = a.flops;
    op.bytes = a.bytes;
    op.solo_seconds = solo;
    // Average resource utilizations over the launch's solo duration; both
    // are <= 1 by the roofline definition. A zero-cost launch (e.g. a tree
    // level of pass-through singletons) holds no resources.
    op.u_compute = solo > 0 ? (t_compute_unfloored(a.sum_cycles) / solo) : 0.0;
    op.u_mem = solo > 0 ? (t_mem / solo) : 0.0;
    op.overhead = overhead_seconds;
    enqueue(stream, std::move(op));
  }

  template <typename Kernel>
  void enqueue_launch_cost(StreamId stream, const Kernel& kernel,
                           idx num_blocks) {
    CAQR_PROF_SCOPE("device.enqueue_cost_ns");
    CostAccum a;
    if constexpr (HasStatsSummary<Kernel>) {
      idx covered = 0;
      for (const StatsClass& c : kernel.stats_summary()) {
        accum_stats(a, c.stats, static_cast<double>(c.count));
        covered += c.count;
      }
      CAQR_CHECK_MSG(covered == num_blocks,
                     "stats_summary must cover every block exactly once");
    } else {
      for (idx b = 0; b < num_blocks; ++b) {
        accum_stats(a, kernel.block_stats(b), 1.0);
      }
    }
    enqueue_cost_op(stream, kernel.name(), num_blocks, a,
                    model_.kernel_launch_us * 1e-6);
  }

  // One functional execution attempt, with fault injection applied per the
  // injector options (subject to the kernel-name filter and the device-wide
  // fault budget). `subset`, when non-null, restricts the attempt to the
  // listed block ids — the ABFT retry path re-runs only failed blocks.
  template <typename Kernel>
  void run_blocks(const Kernel& kernel, idx num_blocks, long long ordinal,
                  const std::vector<idx>* subset) {
    const idx n =
        subset != nullptr ? static_cast<idx>(subset->size()) : num_blocks;
    if (n == 0) return;
    auto block_id = [&](idx i) {
      return subset != nullptr ? (*subset)[static_cast<std::size_t>(i)] : i;
    };
    const bool inject = faults_.enabled() && faults_.targets(kernel.name()) &&
                        faults_.budget_left(fault_log_.size()) != 0;
    if (!inject) {
      pool_->parallel_for(static_cast<std::size_t>(n), [&](std::size_t i) {
        kernel.run_block(block_id(static_cast<idx>(i)));
      });
      return;
    }
    // Drop decisions are drawn before the parallel loop and flips are
    // applied after it, so the corruption is a pure function of
    // (seed, launch ordinal) — independent of thread scheduling.
    FaultPlan plan(faults_, ordinal, n,
                   faults_.budget_left(fault_log_.size()));
    pool_->parallel_for(static_cast<std::size_t>(n), [&](std::size_t i) {
      if (!plan.drops(static_cast<idx>(i))) {
        kernel.run_block(block_id(static_cast<idx>(i)));
      }
    });
    for (idx i = 0; i < n; ++i) {
      if (plan.drops(i)) {
        fault_log_.push_back({FaultEvent::Kind::BlockDrop, kernel.name(),
                              ordinal, block_id(i), -1, -1, -1});
      }
    }
    if constexpr (HasFaultSurface<Kernel>) {
      if (plan.wants_bitflip()) {
        plan.apply_bitflip(kernel.fault_surface(), kernel.name(), ordinal,
                           fault_log_);
      }
    }
  }

  // ABFT-guarded execution: encode -> run -> verify -> (restore the failed
  // blocks from the pre-launch snapshot, re-run only them, verify again)
  // until clean or out of retries. Every retry consumes a fresh launch
  // ordinal, so the whole recovery trajectory is a pure function of the
  // injector seed. Detection-only mode (max_launch_retries == 0) skips the
  // snapshot and reports the first verification verdict.
  template <typename Kernel>
    requires ft::HasAbft<Kernel>
  ft::Severity guarded_run(StreamId stream, const Kernel& kernel,
                           idx num_blocks, long long first_ordinal) {
    const auto cert = ft::abft_encode(kernel);
    auto surface = kernel.fault_surface();
    using T = view_scalar_t<decltype(surface)>;
    Matrix<T> snap;
    if (ft_.recovery()) snap = Matrix<T>::from(surface.as_const());

    ++ft_summary_.guarded_launches;
    run_blocks(kernel, num_blocks, first_ordinal, nullptr);

    std::vector<idx> bad;
    bool bystander = false;
    ft::abft_verify(kernel, cert, ft_.tol_multiplier, bad, bystander);
    if (bad.empty() && !bystander) return ft::Severity::Ok;

    ft::LaunchReport rep;
    rep.kernel = kernel.name();
    rep.launch_ordinal = first_ordinal;
    int retries = 0;
    while ((!bad.empty() || bystander) && retries < ft_.max_launch_retries) {
      rep.faulty_blocks += static_cast<idx>(bad.size());
      rep.bystander_corruption = rep.bystander_corruption || bystander;
      ft::abft_restore(kernel, snap.as_const(), bad, bystander);
      if (!bad.empty()) {
        ft_summary_.retried_blocks += static_cast<long long>(bad.size());
        if (ft_.charge_model) {
          CostAccum a;
          for (idx b : bad) accum_stats(a, kernel.block_stats(b), 1.0);
          enqueue_cost_op(stream, std::string(kernel.name()) + "_retry",
                          static_cast<long long>(bad.size()), a,
                          model_.kernel_launch_us * 1e-6);
        }
        run_blocks(kernel, num_blocks, launch_ordinal_++, &bad);
      }
      ++retries;
      ++rep.attempts;
      bad.clear();
      bystander = false;
      ft::abft_verify(kernel, cert, ft_.tol_multiplier, bad, bystander);
    }

    if (bad.empty() && !bystander) {
      rep.severity = ft::Severity::Corrected;
      ++ft_summary_.corrected_launches;
      ft_log_.push_back(std::move(rep));
      return ft::Severity::Corrected;
    }
    rep.severity = ft::Severity::Unrecovered;
    rep.faulty_blocks += static_cast<idx>(bad.size());
    rep.unrecovered_blocks = static_cast<idx>(bad.size());
    rep.bystander_corruption = rep.bystander_corruption || bystander;
    ++ft_summary_.unrecovered_launches;
    ft_log_.push_back(std::move(rep));
    return ft::Severity::Unrecovered;
  }

  // Flat sorted-by-stream-id storage for the pending queues. Iteration
  // order (ascending stream id) matches the std::map it replaced, so
  // resolution order — and therefore traces — stay bit-identical; lookups
  // are a binary search over a handful of entries instead of pointer-chasing
  // map nodes on every timeline-resolve step.
  OpQueue& queue_for(StreamId s) const {
    auto it = std::lower_bound(
        pending_.begin(), pending_.end(), s,
        [](const std::pair<StreamId, OpQueue>& e, StreamId v) {
          return e.first < v;
        });
    if (it != pending_.end() && it->first == s) return it->second;
    it = pending_.emplace(it, s, OpQueue{});
    if (!spare_queues_.empty()) {
      it->second = std::move(spare_queues_.back());
      spare_queues_.pop_back();
    }
    return it->second;
  }

  void enqueue(StreamId stream, PendingOp op) {
    queue_for(stream).push_back(std::move(op));
    ++num_pending_;
  }

  // Recorded-event timestamps live in a flat array indexed by
  // (event id - event_base_); event_base_ advances on reset_timeline so the
  // array never grows with the lifetime total of minted events, only with
  // the events of the current timeline epoch. NaN marks a not-yet-recorded
  // slot (ids below event_base_ are from a previous epoch — by definition
  // unrecorded, exactly like the cleared map they replace).
  void set_event_time(EventId e, double t) const {
    const EventId i = e - event_base_;
    CAQR_CHECK(i >= 0);
    if (i >= static_cast<EventId>(event_time_.size())) {
      event_time_.resize(static_cast<std::size_t>(i) + 1,
                         std::numeric_limits<double>::quiet_NaN());
    }
    event_time_[static_cast<std::size_t>(i)] = t;
  }

  const double* find_event_time(EventId e) const {
    const EventId i = e - event_base_;
    if (i < 0 || i >= static_cast<EventId>(event_time_.size())) return nullptr;
    const double& v = event_time_[static_cast<std::size_t>(i)];
    return std::isnan(v) ? nullptr : &v;
  }

  double timeline_end() const {
    double t = base_;
    for (const auto& [_, st] : stream_time_) t = std::max(t, st);
    return t;
  }

  void external_op(const std::string& label, double t, double bytes) {
    sync();
    TraceEvent ev;
    ev.stream = kDefaultStream;
    ev.name = label;
    ev.t_start = base_;
    ev.t_end = base_ + t;
    ev.gmem_bytes = bytes;
    trace_.push_back(std::move(ev));
    base_ += t;
    auto& prof = profiles_[label];
    if (prof.name.empty()) prof.name = label;
    ++prof.launches;
    prof.gmem_bytes += bytes;
    prof.seconds += t;
  }

  double& stream_clock(StreamId s) const {
    // Linear scan: a timeline epoch touches a handful of streams, and the
    // vector clears (capacity retained) on every sync.
    for (auto& e : stream_time_) {
      if (e.first == s) return e.second;
    }
    stream_time_.emplace_back(s, base_);
    return stream_time_.back().second;
  }

  // Event-driven resolution of all pending stream work into absolute
  // timestamps, profiles and trace records. Deterministic: ties broken by
  // stream id / admission order; no dependence on host time.
  void resolve_pending() const {
    if (num_pending_ == 0) return;
    CAQR_PROF_SCOPE("device.resolve_ns");

    // Member scratch: resolve runs on every timeline query, and the running
    // set is tiny (<= max_concurrent_kernels), so reuse one buffer instead
    // of reallocating per call.
    auto& running = running_scratch_;
    running.clear();
    const std::size_t cap = static_cast<std::size_t>(
        std::max(1, model_.max_concurrent_kernels));
    auto stream_running = [&](StreamId s) {
      for (const auto& r : running) {
        if (r.stream == s) return true;
      }
      return false;
    };

    double now = base_;
    for (;;) {
      // Settle host-side ops (event records / waits) that are at the front
      // of an idle stream; loop to a fixed point since one settled record
      // can unblock waits on other streams.
      bool settled = true;
      while (settled) {
        settled = false;
        for (auto& [s, q] : pending_) {
          while (!q.empty() && !stream_running(s)) {
            PendingOp& front = q.front();
            if (front.kind == PendingOp::Kind::Record) {
              set_event_time(front.event, stream_clock(s));
            } else if (front.kind == PendingOp::Kind::Wait) {
              const double* et = find_event_time(front.event);
              if (et == nullptr) break;  // blocked: not yet recorded
              double& clk = stream_clock(s);
              clk = std::max(clk, *et);
            } else {
              break;  // launches are admitted by the arrival scan below
            }
            q.pop_front();
            --num_pending_;
            settled = true;
          }
        }
      }

      // Earliest launch arrival across idle streams (lowest stream id on
      // ties), subject to the device's concurrent-kernel limit.
      bool have_arrival = false;
      StreamId arrival_stream = 0;
      double arrival_t = 0;
      if (running.size() < cap) {
        for (auto& [s, q] : pending_) {
          if (q.empty() || stream_running(s)) continue;
          if (q.front().kind != PendingOp::Kind::Launch) continue;
          const double a = stream_clock(s) + q.front().overhead;
          if (!have_arrival || a < arrival_t) {
            have_arrival = true;
            arrival_stream = s;
            arrival_t = a;
          }
        }
      }

      if (running.empty()) {
        if (!have_arrival) {
          // Either everything drained, or a wait references an event that
          // is never recorded (a cyclic or dangling dependency).
          CAQR_CHECK_MSG(num_pending_ == 0,
                         "stream deadlock: wait_event on an event that is "
                         "never recorded");
          break;
        }
        now = std::max(now, arrival_t);
        auto& q = queue_for(arrival_stream);
        Running r{arrival_stream, std::move(q.front()), now, 0};
        r.remaining = r.op.solo_seconds;
        running.push_back(std::move(r));
        q.pop_front();
        --num_pending_;
        continue;
      }

      // Instantaneous sharing factor over the running set.
      double uc = 0, um = 0;
      for (const auto& r : running) {
        uc += r.op.u_compute;
        um += r.op.u_mem;
      }
      const double share = std::max({1.0, uc, um});

      // Earliest completion under the current sharing factor.
      std::size_t fin = 0;
      double fin_t = running[0].start + running[0].remaining;  // placeholder
      for (std::size_t i = 0; i < running.size(); ++i) {
        const double c = now + running[i].remaining * share;
        if (i == 0 || c < fin_t) {
          fin = i;
          fin_t = c;
        }
      }

      if (have_arrival && arrival_t < fin_t) {
        // A new kernel joins the running set before the next completion.
        const double dt = std::max(0.0, arrival_t - now);
        for (auto& r : running) r.remaining -= dt / share;
        now = std::max(now, arrival_t);
        auto& q = queue_for(arrival_stream);
        Running r{arrival_stream, std::move(q.front()), now, 0};
        r.remaining = r.op.solo_seconds;
        running.push_back(std::move(r));
        q.pop_front();
        --num_pending_;
        continue;
      }

      // Advance to the completion.
      const double dt = fin_t - now;
      for (std::size_t i = 0; i < running.size(); ++i) {
        running[i].remaining =
            i == fin ? 0.0 : running[i].remaining - dt / share;
      }
      now = fin_t;
      finish(running[fin], now);
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(fin));
    }
  }

  template <typename RunningT>
  void finish(RunningT& r, double end) const {
    stream_clock(r.stream) = end;
    TraceEvent ev;
    ev.stream = r.stream;
    ev.name = r.op.name;
    ev.t_start = r.start;
    ev.t_end = end;
    ev.blocks = r.op.blocks;
    ev.flops = r.op.flops;
    ev.gmem_bytes = r.op.bytes;
    trace_.push_back(std::move(ev));
    auto& prof = profiles_[r.op.name];
    if (prof.name.empty()) prof.name = r.op.name;
    ++prof.launches;
    prof.blocks += r.op.blocks;
    prof.flops += r.op.flops;
    prof.gmem_bytes += r.op.bytes;
    // Launch overhead plus the (possibly contention-stretched) execution
    // span; on a lone stream this is exactly overhead + solo_seconds.
    prof.seconds += r.op.overhead + (end - r.start);
  }

  GpuMachineModel model_;
  ExecMode mode_;
  ThreadPool* pool_;
  StreamId next_stream_ = 1;
  EventId next_event_ = 0;
  FaultOptions faults_;
  std::vector<FaultEvent> fault_log_;
  ft::FtOptions ft_;
  ft::Summary ft_summary_;
  std::vector<ft::LaunchReport> ft_log_;
  long long launch_ordinal_ = 0;
  // Timeline state is logically part of the observable simulated clock;
  // resolution is forced from const accessors, hence mutable.
  mutable std::vector<std::pair<StreamId, OpQueue>> pending_;  // sorted by id
  mutable std::size_t num_pending_ = 0;
  // Flat per-stream clocks (linear-scanned, cleared on sync) and recorded
  // events (indexed by id - event_base_, NaN = unrecorded).
  mutable std::vector<std::pair<StreamId, double>> stream_time_;
  mutable std::vector<double> event_time_;
  mutable EventId event_base_ = 0;
  mutable double base_ = 0;  // device-wide floor (last full join)
  // Retired op buffers from reset_timeline, reused by the next epoch's
  // queues so steady-state serving stops re-growing them.
  static constexpr std::size_t kMaxSpareQueues = 8;
  mutable std::vector<OpQueue> spare_queues_;
  // profiles() must report sorted by name; stays a map (not on the
  // per-event resolve path).
  mutable std::map<std::string, KernelProfile> profiles_;
  mutable std::vector<TraceEvent> trace_;
  mutable std::vector<Running> running_scratch_;  // reused by resolve_pending
};

}  // namespace caqr::gpusim

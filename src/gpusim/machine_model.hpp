#pragma once

// Calibrated machine models for the simulated platforms.
//
// The functional simulator counts work (FLOPs, issue cycles, shared-memory
// transactions, global-memory bytes, synchronizations); these models convert
// counts into simulated time. Presets correspond to the paper's platforms:
//
//   * NVIDIA C2050 (Fermi, ECC on)  — the main evaluation platform (§IV.A)
//   * NVIDIA GTX480                 — the Robust PCA platform (§VI.D)
//   * 8-core Intel Nehalem 2.4 GHz  — the MKL comparison platform (§V.B)
//   * Intel Core i7 2.6 GHz (4 cores) — the Robust PCA CPU platform (§VI.D)
//
// Calibration constants (stall factor, shared-memory cost, achievable
// fractions) were fit once against the paper's reported kernel GFLOPS
// (§IV.E: 55 / 168 / 194 / 388) and library GFLOPS, then frozen across all
// experiments; see EXPERIMENTS.md.

#include <cstdint>
#include <string>

namespace caqr::gpusim {

struct GpuMachineModel {
  std::string name;
  int num_sms = 14;            // streaming multiprocessors
  int lanes_per_sm = 32;       // FP lanes (1 SP FLOP/cycle each, 2 with FMA)
  double clock_ghz = 1.15;
  bool fma = true;             // multiply-add dual-issue per lane
  double dram_bw_gbs = 144.0;  // achievable global-memory bandwidth
  // Per-launch cost including the host-side dependency sync between
  // consecutive kernels of the factorization loop.
  double kernel_launch_us = 20.0;
  // Hardware limit on kernels resident at once (Fermi: 16). Launches beyond
  // the limit queue until a running kernel completes.
  int max_concurrent_kernels = 16;
  double smem_cycles_per_access = 1.0;  // per 32-wide shared-memory access
  double sync_cycles = 12.0;            // per block-wide barrier
  double issue_stall_factor = 1.40;     // pipeline latency / ILP inefficiency
  // Strided (non-coalesced) global accesses are charged this many times
  // their useful bytes (Fermi 128B transactions vs 4B useful).
  double uncoalesced_penalty = 8.0;
  // DRAM page-locality penalty for block tiles of tall column-major
  // matrices: a 128-row tile column is a 512 B burst followed by a jump of
  // rows*4 bytes, so achieved bandwidth is a fraction of streaming peak.
  double tile_locality_penalty = 3.0;
  // Fraction of FMA peak a well-tuned SGEMM sustains (Volkov-style).
  double gemm_efficiency = 0.62;
  // Tensor-core-class reduced-precision GEMM throughput, expressed as a
  // multiple of the FMA SP peak (A100: TF32 156 / SP 19.5 ~ 8x, FP16 ~16x).
  // Zero means no tensor units — true for the paper's Fermi-era presets —
  // and disables the mixed-precision CholeskyQR path in the picker.
  double tf32_gemm_speedup = 0.0;
  double half_gemm_speedup = 0.0;
  // Fraction of tensor peak a tuned reduced-precision GEMM sustains.
  double tensor_efficiency = 0.55;

  // Peak single-precision FLOP/s.
  double peak_flops() const {
    return num_sms * lanes_per_sm * clock_ghz * 1e9 * (fma ? 2.0 : 1.0);
  }
  double clock_hz() const { return clock_ghz * 1e9; }
  bool has_tensor_cores() const { return tf32_gemm_speedup > 0.0; }

  // Stable FNV-1a digest of every calibration constant (including the
  // name). Two models with the same fingerprint produce bit-identical
  // simulated timelines, so the digest is the cache-invalidation key for
  // anything memoized per machine model (serve::PlanCache): change any
  // field and every cached plan for the old model misses. Pure function of
  // the fields — no host state, no randomness.
  std::uint64_t fingerprint() const;

  static GpuMachineModel c2050();
  static GpuMachineModel gtx480();
  // Tensor-core-era preset (A100-class) so the mixed-precision CholeskyQR
  // path has a machine where it can actually win.
  static GpuMachineModel a100();
};

// Precision policy for the Gram stage of the CholeskyQR family.
// Native runs every pass in the working precision T. Tf32Gram computes the
// FIRST Gram matrix at tensor-core TF32 rates (10-bit mantissa, fp32
// accumulate) and refines in native precision; it is only admissible for
// very well-conditioned inputs (cond(A) <~ eps_tf32^-1/2 ~ 5), i.e. the
// reorthogonalization regime, which is exactly where its speed matters.
enum class PrecisionPolicy { Native = 0, Tf32Gram = 1 };

// Unit roundoff of the reduced-precision Gram stage (TF32: 2^-11).
inline double lowp_eps(PrecisionPolicy p) {
  return p == PrecisionPolicy::Tf32Gram ? 0x1p-11 : 0.0;
}

struct CpuMachineModel {
  std::string name;
  int cores = 8;
  double clock_ghz = 2.4;
  // Sustained SP FLOPs/cycle/core for BLAS3-rich code (SSE 4-wide mul+add
  // at realistic efficiency) and for bandwidth-bound BLAS2 code.
  double flops_per_cycle_blas3 = 5.6;
  double mem_bw_gbs = 18.0;  // sustained socket bandwidth
  // Threading/scheduling overhead per parallel region (panel factorization
  // synchronization etc.).
  double parallel_overhead_us = 4.0;

  double peak_blas3_flops() const {
    return cores * clock_ghz * 1e9 * flops_per_cycle_blas3;
  }

  static CpuMachineModel nehalem_8core();   // dual-socket Xeon 5530
  static CpuMachineModel corei7_4core();    // Robust PCA CPU platform
};

// CPU <-> GPU link (PCIe gen2 x16 era).
struct PcieModel {
  double bandwidth_gbs = 5.0;
  double latency_us = 15.0;  // per transfer initiation, each direction

  double transfer_seconds(double bytes) const {
    return latency_us * 1e-6 + bytes / (bandwidth_gbs * 1e9);
  }
};

}  // namespace caqr::gpusim

#pragma once

// Fault injection for the simulated device.
//
// Real GPUs fail in ways a host-side success code never sees: a block that
// silently never ran (driver timeout, preempted grid) or a bit flipped in
// DRAM/register file (no ECC on consumer parts). The injector reproduces
// both on Device::launch's functional path:
//
//   * block drop — a block's run_block() is skipped, leaving its output
//     region stale;
//   * bit flip  — after the launch completes, one bit of one scalar in the
//     kernel's writable surface is inverted.
//
// Injection is seeded and fully deterministic: decisions come from an Rng
// keyed by (seed, launch ordinal), drops are decided before the parallel
// loop runs and flips are applied serially after it, so results are
// independent of thread-pool scheduling. Every injected fault is recorded in
// the device's fault log. The point, demonstrated by the fault-injection
// tests, is that launch() still "succeeds" — only the numerics Verifier (or,
// since the ft/ subsystem, the inline ABFT check in Device::launch) catches
// the corruption.
//
// Targeting knobs (for tests that need one specific, reproducible fault):
//
//   * max_faults   — hard cap on the total number of injected fault events
//                    per device. Once the fault log reaches the cap, later
//                    launches draw no faults at all, so e.g. max_faults = 1
//                    with p = 1 injects exactly one fault in the first
//                    eligible launch and leaves the rest of the run clean.
//   * only_kernel  — restrict injection to launches whose kernel name
//                    matches exactly (e.g. "factor_tree"); empty matches
//                    every kernel. Combined with max_faults this pins the
//                    fault to a single deterministic launch.
//
// Both knobs preserve determinism: the budget is consumed in launch-ordinal
// order and the per-launch draws stay keyed on (seed, launch ordinal).

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/prng.hpp"
#include "linalg/matrix.hpp"

namespace caqr::gpusim {

struct FaultOptions {
  double p_block_drop = 0.0;  // per-block probability of skipping run_block
  double p_bitflip = 0.0;     // per-launch probability of one flipped bit
  std::uint64_t seed = 0;
  // Cap on total injected fault events per device; < 0 means unlimited.
  long long max_faults = -1;
  // Restrict injection to launches of this kernel name; empty = all kernels.
  std::string only_kernel;

  bool enabled() const { return p_block_drop > 0.0 || p_bitflip > 0.0; }
  bool targets(const char* kernel_name) const {
    return only_kernel.empty() || only_kernel == kernel_name;
  }
  long long budget_left(std::size_t injected_so_far) const {
    if (max_faults < 0) return -1;  // unlimited
    const long long used = static_cast<long long>(injected_so_far);
    return used >= max_faults ? 0 : max_faults - used;
  }
};

struct FaultEvent {
  enum class Kind { BlockDrop, BitFlip };
  Kind kind = Kind::BlockDrop;
  std::string kernel;
  long long launch_ordinal = 0;
  idx block = -1;  // dropped block (BlockDrop)
  idx row = -1;    // flipped element (BitFlip)
  idx col = -1;
  int bit = -1;    // flipped bit index within the scalar (BitFlip)
};

// Per-launch fault decisions, drawn deterministically before any block runs.
class FaultPlan {
 public:
  // `budget` caps how many fault events this plan may draw (-1 = unlimited);
  // it is consumed drops-first in block order, then the flip, so the cap is
  // deterministic for a fixed (seed, launch ordinal).
  FaultPlan(const FaultOptions& opt, long long launch_ordinal, idx num_blocks,
            long long budget = -1)
      : rng_(opt.seed, static_cast<std::uint64_t>(launch_ordinal)) {
    long long left = budget;
    auto take = [&left] {
      if (left < 0) return true;
      if (left == 0) return false;
      --left;
      return true;
    };
    if (opt.p_block_drop > 0.0) {
      dropped_.assign(static_cast<std::size_t>(num_blocks), 0);
      for (idx b = 0; b < num_blocks; ++b) {
        const bool drawn = rng_.next_double() < opt.p_block_drop;
        dropped_[static_cast<std::size_t>(b)] = drawn && take() ? 1 : 0;
      }
    }
    flip_ = opt.p_bitflip > 0.0 && rng_.next_double() < opt.p_bitflip && take();
  }

  bool drops(idx b) const {
    return !dropped_.empty() && dropped_[static_cast<std::size_t>(b)] != 0;
  }
  bool wants_bitflip() const { return flip_; }

  // Flips one bit of one element of `surface`, appending the event to `log`.
  template <typename T>
  void apply_bitflip(MatrixView<T> surface, const char* kernel_name,
                     long long launch_ordinal, std::vector<FaultEvent>& log) {
    if (surface.empty()) return;
    const idx i = static_cast<idx>(
        rng_.next_below(static_cast<std::uint64_t>(surface.rows())));
    const idx j = static_cast<idx>(
        rng_.next_below(static_cast<std::uint64_t>(surface.cols())));
    const int bit =
        static_cast<int>(rng_.next_below(8 * sizeof(T)));
    T& x = surface(i, j);
    unsigned char bytes[sizeof(T)];
    std::memcpy(bytes, &x, sizeof(T));
    bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    std::memcpy(&x, bytes, sizeof(T));
    log.push_back({FaultEvent::Kind::BitFlip, kernel_name, launch_ordinal,
                   -1, i, j, bit});
  }

  void log_drops(idx num_blocks, const char* kernel_name,
                 long long launch_ordinal, std::vector<FaultEvent>& log) const {
    for (idx b = 0; b < num_blocks; ++b) {
      if (drops(b)) {
        log.push_back({FaultEvent::Kind::BlockDrop, kernel_name,
                       launch_ordinal, b, -1, -1, -1});
      }
    }
  }

 private:
  Rng rng_;
  std::vector<char> dropped_;
  bool flip_ = false;
};

// ---------------------------------------------------------------------------
// Link (interconnect) faults — the grid-level analogue of the launch faults
// above. A cross-device transfer can fail in two ways a success code never
// reports: the payload silently never arrives (dropped packet / hung DMA) or
// arrives with a flipped bit (no end-to-end ECC on the fabric). The grid
// injects both on DeviceGrid's checked-transfer path; detection is an FNV
// checksum over the payload bytes and recovery is a bounded resend
// (dist/device_grid.hpp).
//
// Determinism mirrors FaultPlan exactly: every decision is drawn from an Rng
// keyed by (seed, grid transfer ordinal), resends consume fresh ordinals,
// and a max_faults budget is consumed in ordinal order — so the whole fault
// + recovery trajectory is a pure function of the seed, identical between
// Functional and ModelOnly grids.

struct LinkFaultOptions {
  double p_drop = 0.0;  // per-transfer probability the payload never arrives
  double p_flip = 0.0;  // per-transfer probability of one flipped payload bit
  std::uint64_t seed = 0;
  // Cap on total injected link-fault events per grid; < 0 means unlimited.
  long long max_faults = -1;

  bool enabled() const { return p_drop > 0.0 || p_flip > 0.0; }
  long long budget_left(std::size_t injected_so_far) const {
    if (max_faults < 0) return -1;  // unlimited
    const long long used = static_cast<long long>(injected_so_far);
    return used >= max_faults ? 0 : max_faults - used;
  }
};

// Per-transfer fault decision, drawn deterministically at rendezvous time.
// A drop precludes a flip (a lost payload has no bits to corrupt).
class LinkFaultPlan {
 public:
  LinkFaultPlan(const LinkFaultOptions& opt, long long transfer_ordinal,
                long long budget = -1)
      : rng_(opt.seed ^ 0x6C696E6BULL,  // distinct stream from launch faults
             static_cast<std::uint64_t>(transfer_ordinal)) {
    auto take = [&budget] {
      if (budget < 0) return true;
      if (budget == 0) return false;
      --budget;
      return true;
    };
    if (opt.p_drop > 0.0 && rng_.next_double() < opt.p_drop) {
      drop_ = take();
    }
    if (!drop_ && opt.p_flip > 0.0 && rng_.next_double() < opt.p_flip) {
      flip_ = take();
    }
  }

  bool drop() const { return drop_; }
  bool flip() const { return flip_; }
  bool any() const { return drop_ || flip_; }

  // Flips one bit of one element of the RECEIVED copy (the sender's bytes
  // stay intact, which is what makes resend-based recovery bit-exact).
  template <typename T>
  void apply_flip(MatrixView<T> received) {
    if (received.empty()) return;
    const idx i = static_cast<idx>(
        rng_.next_below(static_cast<std::uint64_t>(received.rows())));
    const idx j = static_cast<idx>(
        rng_.next_below(static_cast<std::uint64_t>(received.cols())));
    const int bit = static_cast<int>(rng_.next_below(8 * sizeof(T)));
    T& x = received(i, j);
    unsigned char bytes[sizeof(T)];
    std::memcpy(bytes, &x, sizeof(T));
    bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    std::memcpy(&x, bytes, sizeof(T));
  }

 private:
  Rng rng_;
  bool drop_ = false;
  bool flip_ = false;
};

}  // namespace caqr::gpusim

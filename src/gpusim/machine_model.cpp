#include "gpusim/machine_model.hpp"

namespace caqr::gpusim {

GpuMachineModel GpuMachineModel::c2050() {
  GpuMachineModel m;
  m.name = "C2050";
  m.num_sms = 14;
  m.lanes_per_sm = 32;
  m.clock_ghz = 1.15;
  m.fma = true;
  m.dram_bw_gbs = 144.0;  // ECC enabled (paper §IV.A)
  m.kernel_launch_us = 20.0;
  m.max_concurrent_kernels = 16;  // Fermi concurrent-kernel limit
  m.smem_cycles_per_access = 1.0;
  m.sync_cycles = 12.0;
  m.issue_stall_factor = 1.40;
  m.uncoalesced_penalty = 8.0;
  m.tile_locality_penalty = 3.0;
  m.gemm_efficiency = 0.62;
  return m;
}

GpuMachineModel GpuMachineModel::gtx480() {
  GpuMachineModel m = c2050();
  m.name = "GTX480";
  m.num_sms = 15;
  m.clock_ghz = 1.40;
  m.dram_bw_gbs = 177.0;  // no ECC
  return m;
}

CpuMachineModel CpuMachineModel::nehalem_8core() {
  CpuMachineModel m;
  m.name = "Nehalem-8core";
  m.cores = 8;
  m.clock_ghz = 2.4;
  m.flops_per_cycle_blas3 = 5.6;  // SSE 4-wide mul+add at ~70% efficiency
  m.mem_bw_gbs = 18.0;
  m.parallel_overhead_us = 4.0;
  return m;
}

CpuMachineModel CpuMachineModel::corei7_4core() {
  CpuMachineModel m;
  m.name = "Corei7-4core";
  m.cores = 4;
  m.clock_ghz = 2.6;
  m.flops_per_cycle_blas3 = 5.6;
  m.mem_bw_gbs = 16.0;
  m.parallel_overhead_us = 4.0;
  return m;
}

}  // namespace caqr::gpusim

#include "gpusim/machine_model.hpp"

#include <cstring>

#include "ft/ft.hpp"

namespace caqr::gpusim {

namespace {

// Field-by-field FNV-1a accumulation. Hashing the raw struct would fold in
// padding bytes; hashing per field keeps the digest well-defined.
void mix(std::uint64_t& h, const void* data, std::size_t bytes) {
  h = ft::detail::fnv1a(data, bytes, h);
}

void mix_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  mix(h, &bits, sizeof(bits));
}

void mix_int(std::uint64_t& h, long long v) { mix(h, &v, sizeof(v)); }

}  // namespace

std::uint64_t GpuMachineModel::fingerprint() const {
  std::uint64_t h = ft::detail::kFnvOffset;
  mix(h, name.data(), name.size());
  mix_int(h, name.size());
  mix_int(h, num_sms);
  mix_int(h, lanes_per_sm);
  mix_double(h, clock_ghz);
  mix_int(h, fma ? 1 : 0);
  mix_double(h, dram_bw_gbs);
  mix_double(h, kernel_launch_us);
  mix_int(h, max_concurrent_kernels);
  mix_double(h, smem_cycles_per_access);
  mix_double(h, sync_cycles);
  mix_double(h, issue_stall_factor);
  mix_double(h, uncoalesced_penalty);
  mix_double(h, tile_locality_penalty);
  mix_double(h, gemm_efficiency);
  // Precision-policy rates are part of the digest: toggling tensor units on
  // a model must invalidate every cached plan whose picker saw the old
  // rates (serve::PlanCache keys on this fingerprint).
  mix_double(h, tf32_gemm_speedup);
  mix_double(h, half_gemm_speedup);
  mix_double(h, tensor_efficiency);
  return h;
}

GpuMachineModel GpuMachineModel::c2050() {
  GpuMachineModel m;
  m.name = "C2050";
  m.num_sms = 14;
  m.lanes_per_sm = 32;
  m.clock_ghz = 1.15;
  m.fma = true;
  m.dram_bw_gbs = 144.0;  // ECC enabled (paper §IV.A)
  m.kernel_launch_us = 20.0;
  m.max_concurrent_kernels = 16;  // Fermi concurrent-kernel limit
  m.smem_cycles_per_access = 1.0;
  m.sync_cycles = 12.0;
  m.issue_stall_factor = 1.40;
  m.uncoalesced_penalty = 8.0;
  m.tile_locality_penalty = 3.0;
  m.gemm_efficiency = 0.62;
  return m;
}

GpuMachineModel GpuMachineModel::a100() {
  GpuMachineModel m;
  m.name = "A100";
  m.num_sms = 108;
  m.lanes_per_sm = 64;      // FP32 lanes per SM (Ampere)
  m.clock_ghz = 1.41;
  m.fma = true;             // peak = 108*64*1.41e9*2 ~ 19.5 TFLOP/s SP
  m.dram_bw_gbs = 1555.0;   // HBM2e
  m.kernel_launch_us = 5.0; // modern launch + dependency path
  m.max_concurrent_kernels = 128;
  m.smem_cycles_per_access = 1.0;
  m.sync_cycles = 8.0;
  m.issue_stall_factor = 1.25;
  m.uncoalesced_penalty = 8.0;
  m.tile_locality_penalty = 2.0;
  m.gemm_efficiency = 0.80;
  m.tf32_gemm_speedup = 8.0;   // 156 TFLOP/s TF32 tensor peak
  m.half_gemm_speedup = 16.0;  // 312 TFLOP/s FP16 tensor peak
  m.tensor_efficiency = 0.55;
  return m;
}

GpuMachineModel GpuMachineModel::gtx480() {
  GpuMachineModel m = c2050();
  m.name = "GTX480";
  m.num_sms = 15;
  m.clock_ghz = 1.40;
  m.dram_bw_gbs = 177.0;  // no ECC
  return m;
}

CpuMachineModel CpuMachineModel::nehalem_8core() {
  CpuMachineModel m;
  m.name = "Nehalem-8core";
  m.cores = 8;
  m.clock_ghz = 2.4;
  m.flops_per_cycle_blas3 = 5.6;  // SSE 4-wide mul+add at ~70% efficiency
  m.mem_bw_gbs = 18.0;
  m.parallel_overhead_us = 4.0;
  return m;
}

CpuMachineModel CpuMachineModel::corei7_4core() {
  CpuMachineModel m;
  m.name = "Corei7-4core";
  m.cores = 4;
  m.clock_ghz = 2.6;
  m.flops_per_cycle_blas3 = 5.6;
  m.mem_bw_gbs = 16.0;
  m.parallel_overhead_us = 4.0;
  return m;
}

}  // namespace caqr::gpusim

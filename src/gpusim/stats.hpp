#pragma once

// Per-thread-block cost counters and per-kernel timeline aggregation.
//
// Every simulated kernel reports, per block, a closed-form BlockStats
// describing exactly the work its functional execution performs. The QR
// kernels are data-oblivious (the operation sequence depends only on block
// dimensions), so the closed forms are exact, not estimates — tests verify
// this by instrumenting the functional path with a counting scalar type.

#include <string>
#include <vector>

namespace caqr::gpusim {

struct BlockStats {
  // Useful floating-point operations (for GFLOP/s reporting).
  double flops = 0;
  // SIMT issue cycles on one SM, assuming FMA where the kernel has
  // multiply-accumulate structure. Idle lanes are the kernel's problem:
  // a warp instruction costs one issue cycle no matter how many of its
  // lanes do useful work, so poorly-shaped reductions inflate this.
  double issue_cycles = 0;
  // 32-wide shared-memory transactions (read or write).
  double smem_accesses = 0;
  // Block-wide barriers.
  double syncs = 0;
  // Global-memory traffic in bytes, already inflated by any coalescing
  // penalty the access pattern incurs.
  double gmem_bytes = 0;

  BlockStats& operator+=(const BlockStats& o) {
    flops += o.flops;
    issue_cycles += o.issue_cycles;
    smem_accesses += o.smem_accesses;
    syncs += o.syncs;
    gmem_bytes += o.gmem_bytes;
    return *this;
  }
};

// One equivalence class of identical blocks within a launch; kernels whose
// grids decompose into a few classes expose a summary so paper-scale
// ModelOnly launches cost O(classes), not O(blocks).
struct StatsClass {
  BlockStats stats;
  long long count = 0;
};

// One resolved execution on the device timeline: which stream ran what,
// when (absolute simulated seconds, launch overhead excluded from the
// span), and how much work it carried. The chrome-trace exporter in
// gpusim/report.hpp serializes these.
struct TraceEvent {
  int stream = 0;
  std::string name;
  double t_start = 0;
  double t_end = 0;
  long long blocks = 0;
  double flops = 0;
  double gmem_bytes = 0;
};

// Aggregated record of all launches of one kernel on a Device.
struct KernelProfile {
  std::string name;
  long long launches = 0;
  long long blocks = 0;
  double flops = 0;
  double gmem_bytes = 0;
  double seconds = 0;  // simulated

  double gflops() const { return seconds > 0 ? flops / seconds * 1e-9 : 0.0; }
};

}  // namespace caqr::gpusim

#pragma once

// Contract-checking macros used throughout the library.
//
// CAQR_CHECK is always on: it guards API preconditions whose violation would
// corrupt memory or silently produce garbage (dimension mismatches, null
// views, invalid configurations). CAQR_DCHECK compiles out in NDEBUG builds
// and guards internal invariants that are expensive to test in inner loops.

#include <cstdio>
#include <cstdlib>

namespace caqr {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "CAQR_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace caqr

#define CAQR_CHECK(expr)                                             \
  do {                                                               \
    if (!(expr)) ::caqr::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CAQR_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) ::caqr::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define CAQR_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define CAQR_DCHECK(expr) CAQR_CHECK(expr)
#endif

#include "common/cli.hpp"

#include <cerrno>
#include <cstdlib>

#include "common/check.hpp"

namespace caqr {

CliArgs::CliArgs(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& def) const {
  const auto it = flags_.find(name);
  return it != flags_.end() ? it->second : def;
}

namespace {

// strtoll/strtod return 0 on malformed input without any error indication
// unless endptr/errno are checked, so a typo like --n=1o0 used to silently
// become 0. Any unconsumed suffix or out-of-range value aborts with the
// offending flag.
[[noreturn]] void bad_flag(const std::string& name, const std::string& value,
                           const char* expected) {
  const std::string msg =
      "--" + name + "=" + value + " is not a valid " + expected;
  check_failed("CliArgs parse", __FILE__, __LINE__, msg.c_str());
}

}  // namespace

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const char* s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) {
    bad_flag(name, it->second, "integer");
  }
  return v;
}

double CliArgs::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const char* s = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) {
    bad_flag(name, it->second, "number");
  }
  return v;
}

bool CliArgs::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

}  // namespace caqr

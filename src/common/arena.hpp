#pragma once

// Grow-only bump arena for per-request / per-launch scratch memory.
//
// The serving hot path allocates the same small temporaries over and over:
// per-block stacked triangles in the TSQR tree kernels, gather/scatter
// scratch in the reduction combine, staging tiles for the cache-blocked
// panel kernels. Heap-allocating those per block is the dominant host cost
// the profiling layer exposed. An Arena replaces them with pointer bumps
// into a buffer that survives across requests:
//
//   * alloc<T>(n)      — cache-line-aligned uninitialized T[n]; O(1) bump.
//   * mark()/rewind(m) — stack discipline for per-block scratch: take a
//     mark, allocate freely, rewind when the block is done. Memory is
//     reused by the next block without touching the allocator.
//   * reset()          — rewind to empty, KEEPING the high-water capacity
//     (AlignedBuffer::clear), so steady-state requests allocate nothing.
//
// Growth: when a chunk fills, the arena adds a chunk at least double the
// last size (geometric, so total waste is bounded); previously returned
// pointers stay valid until reset()/rewind() passes them. After a reset the
// arena serves from its existing chunks — the allocator is only visited
// while the high-water mark is still rising.
//
// Thread safety: NONE — an Arena belongs to one thread. For kernel
// run_block bodies executing on the functional thread pool, use
// Arena::thread_scratch(), a thread_local arena each pool worker owns.
// Scoped use there MUST follow mark/rewind discipline (ArenaScope) so
// nested users compose.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/check.hpp"

namespace caqr {

class Arena {
 public:
  explicit Arena(std::size_t initial_bytes = 0) {
    if (initial_bytes > 0) add_chunk(initial_bytes);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Uninitialized storage for `count` T's, kCacheLineBytes-aligned.
  template <typename T>
  T* alloc(std::size_t count) {
    return static_cast<T*>(alloc_bytes(count * sizeof(T)));
  }

  void* alloc_bytes(std::size_t bytes) {
    const std::size_t need =
        (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
    if (chunk_ >= chunks_.size() ||
        used_ + need > chunks_[chunk_].size()) {
      next_chunk(need);
    }
    void* p = chunks_[chunk_].data() + used_;
    used_ += need;
    return p;
  }

  // Position marker: (chunk index, bytes used in it). rewind() frees every
  // allocation made after the mark, in O(1).
  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  Mark mark() const { return {chunk_, used_}; }

  void rewind(Mark m) {
    CAQR_DCHECK(m.chunk < chunks_.size() || chunks_.empty());
    chunk_ = m.chunk;
    used_ = m.used;
  }

  // Empties the arena, keeping every chunk for reuse.
  void reset() {
    chunk_ = 0;
    used_ = 0;
  }

  // Frees all chunks (capacity drops to zero).
  void release() {
    chunks_.clear();
    chunk_ = 0;
    used_ = 0;
  }

  // Total bytes owned across chunks — the high-water footprint.
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.size();
    return total;
  }

  // The per-thread scratch arena kernel run_block bodies use. Thread-local:
  // each functional thread-pool worker (and the calling thread) owns one.
  // Callers MUST bracket use with mark()/rewind() — see ArenaScope.
  static Arena& thread_scratch() {
    static thread_local Arena arena;
    return arena;
  }

 private:
  void next_chunk(std::size_t need) {
    // Advance through existing chunks first (they are live allocations
    // above the current mark only until a rewind passes them — after
    // reset() they are all free).
    while (chunk_ + 1 < chunks_.size()) {
      ++chunk_;
      used_ = 0;
      if (need <= chunks_[chunk_].size()) return;
    }
    add_chunk(need);
  }

  void add_chunk(std::size_t need) {
    const std::size_t last = chunks_.empty() ? 0 : chunks_.back().size();
    std::size_t size = last * 2;
    if (size < kMinChunkBytes) size = kMinChunkBytes;
    if (size < need) size = need;
    AlignedBuffer<std::byte> chunk;
    chunk.reset(size);
    chunks_.push_back(std::move(chunk));
    chunk_ = chunks_.size() - 1;
    used_ = 0;
  }

  static constexpr std::size_t kMinChunkBytes = 64 * 1024;

  std::vector<AlignedBuffer<std::byte>> chunks_;
  std::size_t chunk_ = 0;  // current chunk index
  std::size_t used_ = 0;   // bytes used in current chunk
};

// RAII mark/rewind bracket for scoped arena use (per-block scratch).
class ArenaScope {
 public:
  explicit ArenaScope(Arena& a) : arena_(a), mark_(a.mark()) {}
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
  ~ArenaScope() { arena_.rewind(mark_); }

  Arena& arena() { return arena_; }

  template <typename T>
  T* alloc(std::size_t count) {
    return arena_.alloc<T>(count);
  }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace caqr

#pragma once

// Minimal command-line flag parsing for examples and bench drivers.
// Flags look like: --name=value or --name value or bare --flag (bool).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace caqr {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  // Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace caqr

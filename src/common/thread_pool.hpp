#pragma once

// Fixed-size thread pool with a blocking parallel_for.
//
// This is the execution substrate for the GPU simulator: each simulated
// thread block is one parallel_for item. Work is distributed by an atomic
// ticket counter (dynamic load balancing — blocks of a QR panel have very
// uneven cost near the matrix fringe). parallel_for is deterministic as long
// as items write disjoint outputs, which every kernel in this library
// guarantees by construction.
//
// Nested calls (a parallel_for issued from inside another parallel_for's
// item, e.g. a Device::launch reached from user code already running on the
// pool) degrade to inline serial execution of the nested loop instead of
// aborting. An exception thrown by an item — on any thread — is captured
// (first one wins), the remaining tickets are cancelled, and the exception
// is rethrown on the calling thread after the join, like std::async. The
// error path leaves the pool fully reusable: submitting the same throwing
// job repeatedly (e.g. a fault-injected kernel re-launched by a retry
// policy) neither wedges the workers nor degrades later parallel_fors.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace caqr {

class ThreadPool {
 public:
  // threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total parallelism including the calling thread.
  std::size_t size() const { return workers_.size() + 1; }

  // Runs fn(i) for i in [0, count) across the pool and the calling thread,
  // returning when all items have completed. Nested calls (from inside fn)
  // and calls while another thread's job is in flight run the loop inline
  // on the calling thread. If any item throws, the first exception is
  // rethrown here after all workers have left the job. grain > 1 batches
  // consecutive indices per ticket to amortize the atomic for cheap items.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

  // Process-wide default pool, sized from hardware concurrency.
  static ThreadPool& global();

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::size_t grain = 1;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<int> active{0};  // workers currently inside run_tickets
    std::atomic<bool> failed{false};
    std::exception_ptr error;  // first exception; guarded by the pool mutex
  };

  void worker_loop();
  void run_tickets(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Job* current_ = nullptr;
  std::uint64_t epoch_ = 0;  // bumped each time current_ changes
  bool stop_ = false;
  // True while this thread is executing parallel_for items (worker threads
  // always; the submitting thread while inside run_tickets) — the nesting
  // detector for the inline fallback.
  static thread_local bool in_parallel_region_;
};

}  // namespace caqr

#pragma once

// Wall-clock timing helpers. Simulated (modeled) time is tracked separately
// by gpusim::Device; WallTimer exists for harness-level measurements and for
// sanity-checking that functional execution stays tractable.

#include <chrono>

namespace caqr {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace caqr

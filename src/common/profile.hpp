#pragma once

// Host-side profiling: named counters, scoped wall timers, and process-wide
// allocation instrumentation.
//
// The serving benches run ModelOnly at paper scale, where the *simulated*
// timeline is pure bookkeeping: every second of measured wall time is host
// work — schedule metadata construction, launch cost accounting, queue and
// cache locking. This registry makes that host work a reported artifact
// instead of a guess:
//
//   * Counter    — a named (count, value) pair of relaxed atomics. `count`
//     is events; `value` is the unit the site chooses (nanoseconds for
//     timers and lock waits, bytes for copies).
//   * ScopedTimer / CAQR_PROF_SCOPE — accumulates wall nanoseconds of a
//     scope into a Counter. Cost is two steady_clock reads; use it per
//     request / per launch, never per block.
//   * timed_lock — std::lock_guard that charges the nanoseconds spent
//     *waiting* for a contended mutex to a Counter (the uncontended
//     try_lock fast path charges nothing but one relaxed increment).
//   * allocation_count()/allocation_bytes() — process-wide operator
//     new/delete counts (common/profile.cpp replaces the global operators),
//     the direct measurement behind the arena work: steady-state requests
//     should allocate ~nothing.
//
// Counters register themselves on first use (function-local static) into an
// intrusive global list; registration takes a mutex, the hot-path updates
// are lock-free relaxed atomics. snapshot()/to_json() read the live values
// (racy reads are fine: every field is monotonic and independently atomic).

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace caqr::prof {

struct Counter {
  const char* name;
  std::atomic<long long> count{0};
  std::atomic<long long> value{0};  // site-defined unit: ns or bytes

  explicit Counter(const char* n) : name(n) {}

  void add(long long events = 1, long long v = 0) {
    count.fetch_add(events, std::memory_order_relaxed);
    if (v != 0) value.fetch_add(v, std::memory_order_relaxed);
  }
};

// Returns the process-wide counter registered under `name`, creating it on
// first use. The returned reference is valid for the process lifetime.
// Call sites should cache it in a function-local static.
Counter& counter(const char* name);

// One sampled (name, count, value) row; ns-unit counters also carry seconds.
struct Sample {
  std::string name;
  long long count = 0;
  long long value = 0;
};

// Every registered counter, sorted by name.
std::vector<Sample> snapshot();

// Zeroes every registered counter AND the allocation counters — the bench
// hook for measuring a steady-state window.
void reset();

// Process-wide allocation instrumentation (global operator new/delete).
long long allocation_count();
long long allocation_bytes();
long long free_count();

namespace detail {
// Counting malloc/aligned_alloc + free wrappers the replaced global
// operator new/delete (common/profile.cpp) and AlignedBuffer route through,
// so matrix/arena traffic and operator-new traffic share one count.
void* counted_alloc(std::size_t size, std::size_t align);
void counted_free(void* p);
}  // namespace detail

// {"counters":{name:{"count":..,"value":..},...},"allocations":{...}}
std::string to_json();

class ScopedTimer {
 public:
  explicit ScopedTimer(Counter& c)
      : c_(c), t0_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0_)
                        .count();
    c_.add(1, static_cast<long long>(ns));
  }

 private:
  Counter& c_;
  std::chrono::steady_clock::time_point t0_;
};

#define CAQR_PROF_CONCAT2(a, b) a##b
#define CAQR_PROF_CONCAT(a, b) CAQR_PROF_CONCAT2(a, b)

// Accumulates the enclosing scope's wall time under `name_literal`.
#define CAQR_PROF_SCOPE(name_literal)                              \
  static ::caqr::prof::Counter& CAQR_PROF_CONCAT(caqr_prof_c_,     \
                                                 __LINE__) =       \
      ::caqr::prof::counter(name_literal);                         \
  ::caqr::prof::ScopedTimer CAQR_PROF_CONCAT(caqr_prof_t_,         \
                                             __LINE__)(            \
      CAQR_PROF_CONCAT(caqr_prof_c_, __LINE__))

// Acquires a deferred/unlocked Lockable, attributing contended-acquire wait
// time to `wait`. For std::unique_lock call sites that go on to cv-wait.
template <typename Lock>
void lock_timed(Lock& lk, Counter& wait) {
  if (lk.try_lock()) {
    wait.add(1, 0);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  lk.lock();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  wait.add(1, static_cast<long long>(ns));
}

// lock_guard that attributes contended-acquire wait time to `wait`.
template <typename M>
class timed_lock {
 public:
  timed_lock(M& m, Counter& wait) : m_(m) {
    if (m_.try_lock()) {
      wait.add(1, 0);
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    m_.lock();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    wait.add(1, static_cast<long long>(ns));
  }
  timed_lock(const timed_lock&) = delete;
  timed_lock& operator=(const timed_lock&) = delete;
  ~timed_lock() { m_.unlock(); }

 private:
  M& m_;
};

}  // namespace caqr::prof

#pragma once

// Host-side profiling: named counters, scoped wall timers, and process-wide
// allocation instrumentation.
//
// The serving benches run ModelOnly at paper scale, where the *simulated*
// timeline is pure bookkeeping: every second of measured wall time is host
// work — schedule metadata construction, launch cost accounting, queue and
// cache locking. This registry makes that host work a reported artifact
// instead of a guess:
//
//   * Counter    — a named (count, value) pair of relaxed atomics. `count`
//     is events; `value` is the unit the site chooses (nanoseconds for
//     timers and lock waits, bytes for copies).
//   * ScopedTimer / CAQR_PROF_SCOPE — accumulates wall nanoseconds of a
//     scope into a Counter. Cost is two steady_clock reads; use it per
//     request / per launch, never per block.
//   * timed_lock — std::lock_guard that charges the nanoseconds spent
//     *waiting* for a contended mutex to a Counter (the uncontended
//     try_lock fast path charges nothing but one relaxed increment).
//   * allocation_count()/allocation_bytes() — process-wide operator
//     new/delete counts (common/profile.cpp replaces the global operators),
//     the direct measurement behind the arena work: steady-state requests
//     should allocate ~nothing.
//
// Counters register themselves on first use (function-local static) into an
// intrusive global list; registration takes a mutex, the hot-path updates
// are lock-free relaxed atomics. snapshot()/to_json() read the live values
// (racy reads are fine: every field is monotonic and independently atomic).

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace caqr::prof {

struct Counter {
  const char* name;
  std::atomic<long long> count{0};
  std::atomic<long long> value{0};  // site-defined unit: ns or bytes

  explicit Counter(const char* n) : name(n) {}

  void add(long long events = 1, long long v = 0) {
    count.fetch_add(events, std::memory_order_relaxed);
    if (v != 0) value.fetch_add(v, std::memory_order_relaxed);
  }
};

// Returns the process-wide counter registered under `name`, creating it on
// first use. The returned reference is valid for the process lifetime.
// Call sites should cache it in a function-local static.
Counter& counter(const char* name);

// One sampled (name, count, value) row; ns-unit counters also carry seconds.
struct Sample {
  std::string name;
  long long count = 0;
  long long value = 0;
};

// Every registered counter, sorted by name.
std::vector<Sample> snapshot();

// Zeroes every registered counter, every histogram, AND the allocation
// counters — the bench hook for measuring a steady-state window.
void reset();

// Log2-bucketed latency histogram: record() is two relaxed fetch_adds (no
// lock, no allocation), quantile() interpolates within the bucket that the
// requested rank lands in — accurate to the bucket's factor-of-two width,
// plenty for p50/p95/p99 latency reporting. Unlike Counter the registry key
// is a std::string (per-stream names like "stream.7.latency" are built at
// runtime); the serving layer caches the returned reference per stream so
// the name lookup stays off the hot path.
class Histogram {
 public:
  static constexpr int kBuckets = 64;  // bucket i covers [2^(i-1), 2^i) ns

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void record(double ns) {
    const auto v = ns <= 0 ? 0ULL : static_cast<unsigned long long>(ns);
    int b = 0;
    while ((1ULL << b) <= v && b < kBuckets - 1) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(static_cast<long long>(ns > 0 ? ns : 0),
                        std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }
  long long count() const;
  double mean_ns() const;
  // q in [0, 1]; returns ~the q-th latency in ns (0 when empty).
  double quantile(double q) const;
  void reset();

 private:
  std::string name_;
  std::atomic<long long> buckets_[kBuckets] = {};
  std::atomic<long long> total_ns_{0};
};

// The process-wide histogram registered under `name`, created on first use;
// the reference is valid for the process lifetime.
Histogram& histogram(const std::string& name);

// One sampled histogram row (quantiles in nanoseconds).
struct HistogramSample {
  std::string name;
  long long count = 0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
};

// Every registered histogram, sorted by name.
std::vector<HistogramSample> histogram_snapshot();

// Process-wide allocation instrumentation (global operator new/delete).
long long allocation_count();
long long allocation_bytes();
long long free_count();

namespace detail {
// Counting malloc/aligned_alloc + free wrappers the replaced global
// operator new/delete (common/profile.cpp) and AlignedBuffer route through,
// so matrix/arena traffic and operator-new traffic share one count.
void* counted_alloc(std::size_t size, std::size_t align);
void counted_free(void* p);
}  // namespace detail

// {"counters":{name:{"count":..,"value":..},...},"allocations":{...}}
std::string to_json();

class ScopedTimer {
 public:
  explicit ScopedTimer(Counter& c)
      : c_(c), t0_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0_)
                        .count();
    c_.add(1, static_cast<long long>(ns));
  }

 private:
  Counter& c_;
  std::chrono::steady_clock::time_point t0_;
};

#define CAQR_PROF_CONCAT2(a, b) a##b
#define CAQR_PROF_CONCAT(a, b) CAQR_PROF_CONCAT2(a, b)

// Accumulates the enclosing scope's wall time under `name_literal`.
#define CAQR_PROF_SCOPE(name_literal)                              \
  static ::caqr::prof::Counter& CAQR_PROF_CONCAT(caqr_prof_c_,     \
                                                 __LINE__) =       \
      ::caqr::prof::counter(name_literal);                         \
  ::caqr::prof::ScopedTimer CAQR_PROF_CONCAT(caqr_prof_t_,         \
                                             __LINE__)(            \
      CAQR_PROF_CONCAT(caqr_prof_c_, __LINE__))

// Acquires a deferred/unlocked Lockable, attributing contended-acquire wait
// time to `wait`. For std::unique_lock call sites that go on to cv-wait.
template <typename Lock>
void lock_timed(Lock& lk, Counter& wait) {
  if (lk.try_lock()) {
    wait.add(1, 0);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  lk.lock();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  wait.add(1, static_cast<long long>(ns));
}

// lock_guard that attributes contended-acquire wait time to `wait`.
template <typename M>
class timed_lock {
 public:
  timed_lock(M& m, Counter& wait) : m_(m) {
    if (m_.try_lock()) {
      wait.add(1, 0);
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    m_.lock();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    wait.add(1, static_cast<long long>(ns));
  }
  timed_lock(const timed_lock&) = delete;
  timed_lock& operator=(const timed_lock&) = delete;
  ~timed_lock() { m_.unlock(); }

 private:
  M& m_;
};

}  // namespace caqr::prof

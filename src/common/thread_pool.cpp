#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace caqr {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // The calling thread also participates in parallel_for, so spawn one fewer
  // worker than the requested parallelism.
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::run_tickets(Job& job) {
  for (;;) {
    const std::size_t begin =
        job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (begin >= job.count) break;
    const std::size_t end = std::min(begin + job.grain, job.count);
    for (std::size_t i = begin; i < end; ++i) (*job.fn)(i);
    job.done.fetch_add(end - begin, std::memory_order_release);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (count == 0) return;
  CAQR_CHECK(grain >= 1);
  if (workers_.empty() || count <= grain) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  Job job;
  job.fn = &fn;
  job.count = count;
  job.grain = grain;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    CAQR_CHECK_MSG(current_ == nullptr,
                   "nested ThreadPool::parallel_for is not supported");
    current_ = &job;
    ++epoch_;
  }
  cv_work_.notify_all();

  run_tickets(job);

  // All tickets are claimed once we fall out of run_tickets, but workers may
  // still be finishing their last batch; wait for the completion count.
  // The Job lives on this stack frame: wait until every item is done AND no
  // worker is still inside run_tickets before letting it go out of scope.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] {
      return job.done.load(std::memory_order_acquire) >= job.count &&
             job.active.load(std::memory_order_acquire) == 0;
    });
    current_ = nullptr;
    ++epoch_;
  }
  cv_work_.notify_all();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = current_;
      if (job != nullptr) job->active.fetch_add(1, std::memory_order_relaxed);
    }
    if (job != nullptr) {
      run_tickets(*job);
      job->active.fetch_sub(1, std::memory_order_release);
      // Wake the submitting thread; it re-checks done/active. Touch the mutex
      // before notifying so the counter updates cannot slip between the
      // submitter's predicate check and its block (lost-wakeup race), and so
      // the Job stays alive until every worker has left it.
      { std::lock_guard<std::mutex> lock(mutex_); }
      cv_done_.notify_one();
    }
  }
}

}  // namespace caqr

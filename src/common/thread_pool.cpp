#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace caqr {

thread_local bool ThreadPool::in_parallel_region_ = false;

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // The calling thread also participates in parallel_for, so spawn one fewer
  // worker than the requested parallelism.
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::run_tickets(Job& job) {
  for (;;) {
    const std::size_t begin =
        job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (begin >= job.count) break;
    const std::size_t end = std::min(begin + job.grain, job.count);
    try {
      for (std::size_t i = begin; i < end; ++i) (*job.fn)(i);
    } catch (...) {
      // Cancel BEFORE recording: these stores cannot throw, so the join
      // predicate completes on `failed` even if recording the exception
      // below fails — a repeatedly-throwing kernel must never wedge the
      // pool (it is the retry path of a fault-injected launch).
      job.failed.store(true, std::memory_order_release);
      job.next.store(job.count, std::memory_order_relaxed);
      try {
        std::lock_guard<std::mutex> lock(mutex_);
        if (job.error == nullptr) job.error = std::current_exception();
      } catch (...) {
        // Mutex failure: the caller sees a cancelled loop; the payload
        // exception is dropped rather than the pool deadlocked.
      }
    }
    job.done.fetch_add(end - begin, std::memory_order_release);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (count == 0) return;
  CAQR_CHECK(grain >= 1);
  // Nested invocation (this thread is already running pool items), no
  // workers, or a trivially small loop: run inline on this thread.
  // Exceptions propagate directly.
  if (in_parallel_region_ || workers_.empty() || count <= grain) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  Job job;
  job.fn = &fn;
  job.count = count;
  job.grain = grain;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (current_ != nullptr) {
      // Another thread's job is in flight; the pool runs one job at a time,
      // so execute this one inline instead of deadlocking or aborting.
      lock.unlock();
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    current_ = &job;
    ++epoch_;
  }
  cv_work_.notify_all();

  // Everything between publishing `current_` and the join below must be
  // exception-safe: the Job lives on this stack frame, so leaving early
  // without joining would hand the workers a dangling pointer, and leaving
  // `in_parallel_region_` latched would silently degrade every later
  // parallel_for on this thread to inline execution.
  struct RegionGuard {
    bool prev;
    RegionGuard() : prev(in_parallel_region_) { in_parallel_region_ = true; }
    ~RegionGuard() { in_parallel_region_ = prev; }
  };
  struct JoinGuard {
    ThreadPool* pool;
    Job* job;
    ~JoinGuard() {
      // All tickets are claimed (or cancelled) once the caller falls out of
      // run_tickets, but workers may still be finishing their last batch;
      // wait until every item is done — or the job failed and all claimed
      // batches ended — AND no worker is still inside run_tickets before
      // letting the stack-allocated Job go out of scope.
      std::unique_lock<std::mutex> lock(pool->mutex_);
      pool->cv_done_.wait(lock, [&] {
        return (job->done.load(std::memory_order_acquire) >= job->count ||
                job->failed.load(std::memory_order_acquire)) &&
               job->active.load(std::memory_order_acquire) == 0;
      });
      pool->current_ = nullptr;
      ++pool->epoch_;
      lock.unlock();
      pool->cv_work_.notify_all();
    }
  };
  {
    JoinGuard join{this, &job};
    RegionGuard region;
    run_tickets(job);  // captures its own exceptions into the job
  }

  if (job.error != nullptr) std::rethrow_exception(job.error);
}

void ThreadPool::worker_loop() {
  in_parallel_region_ = true;  // anything run here is inside the pool
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = current_;
      if (job != nullptr) job->active.fetch_add(1, std::memory_order_relaxed);
    }
    if (job != nullptr) {
      // The active count must drop and the submitter must be woken even if
      // run_tickets leaks an exception (it should not — but a worker that
      // skips the decrement wedges the submitter's join forever).
      struct ActiveGuard {
        ThreadPool* pool;
        Job* j;
        ~ActiveGuard() {
          j->active.fetch_sub(1, std::memory_order_release);
          // Wake the submitting thread; it re-checks done/failed/active.
          // Touch the mutex before notifying so the counter updates cannot
          // slip between the submitter's predicate check and its block
          // (lost-wakeup race), and so the Job stays alive until every
          // worker has left it.
          { std::lock_guard<std::mutex> lock(pool->mutex_); }
          pool->cv_done_.notify_one();
        }
      } active_guard{this, job};
      run_tickets(*job);
    }
  }
}

}  // namespace caqr

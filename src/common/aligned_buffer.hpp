#pragma once

// Cache-line / SIMD aligned heap buffer with RAII ownership.
//
// Matrices and device-memory arenas sit on top of this; 64-byte alignment
// keeps column starts SIMD-friendly for the vectorized BLAS kernels and
// avoids false sharing between thread blocks that own adjacent tiles.

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "common/check.hpp"

namespace caqr {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) { allocate(count); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        count_(std::exchange(other.count_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      count_ = std::exchange(other.count_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  // Discards contents; newly allocated memory is uninitialized.
  void reset(std::size_t count) {
    release();
    allocate(count);
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  T& operator[](std::size_t i) noexcept {
    CAQR_DCHECK(i < count_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const noexcept {
    CAQR_DCHECK(i < count_);
    return data_[i];
  }

 private:
  void allocate(std::size_t count) {
    if (count == 0) return;
    const std::size_t bytes =
        (count * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes *
        kCacheLineBytes;
    void* p = std::aligned_alloc(kCacheLineBytes, bytes);
    if (p == nullptr) throw std::bad_alloc();
    data_ = static_cast<T*>(p);
    count_ = count;
  }

  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    count_ = 0;
  }

  T* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace caqr

#pragma once

// Cache-line / SIMD aligned heap buffer with RAII ownership.
//
// Matrices and device-memory arenas sit on top of this; 64-byte alignment
// keeps column starts SIMD-friendly for the vectorized BLAS kernels and
// avoids false sharing between thread blocks that own adjacent tiles.
//
// Size and capacity are tracked separately so hot paths that repeatedly
// resize a scratch buffer (per-request arenas, staging areas) reuse the
// existing allocation: reset()/reserve() only touch the allocator when the
// requested count exceeds the current capacity. Contents are NEVER
// preserved across a growing reset/reserve — this is scratch storage, not a
// container — and newly exposed memory is uninitialized.
//
// Allocations are routed through prof::detail::counted_alloc/counted_free
// so the host profiling layer (common/profile.hpp) sees matrix and arena
// traffic alongside operator-new traffic.

#include <cstddef>
#include <new>
#include <utility>

#include "common/check.hpp"
#include "common/profile.hpp"

namespace caqr {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) { reset(count); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        count_(std::exchange(other.count_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      count_ = std::exchange(other.count_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  // Sets size to `count`, reusing the existing allocation when it is large
  // enough. Contents are discarded; grown memory is uninitialized.
  void reset(std::size_t count) {
    reserve(count);
    count_ = count;
  }

  // Ensures capacity for `count` elements without changing size. Growing
  // discards contents (scratch semantics — no copy-over).
  void reserve(std::size_t count) {
    if (count <= capacity_) return;
    release();
    const std::size_t bytes =
        (count * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes *
        kCacheLineBytes;
    void* p = prof::detail::counted_alloc(bytes, kCacheLineBytes);
    if (p == nullptr) throw std::bad_alloc();
    data_ = static_cast<T*>(p);
    capacity_ = bytes / sizeof(T);
  }

  // Size to zero; capacity (and the allocation) retained.
  void clear() noexcept { count_ = 0; }

  // Frees the allocation (capacity drops to zero).
  void release() noexcept {
    prof::detail::counted_free(data_);
    data_ = nullptr;
    count_ = 0;
    capacity_ = 0;
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return count_; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return count_ == 0; }

  T& operator[](std::size_t i) noexcept {
    CAQR_DCHECK(i < count_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const noexcept {
    CAQR_DCHECK(i < count_);
    return data_[i];
  }

 private:
  T* data_ = nullptr;
  std::size_t count_ = 0;     // current logical size
  std::size_t capacity_ = 0;  // allocated element capacity
};

}  // namespace caqr

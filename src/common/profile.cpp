// Profiling registry + process-wide allocation instrumentation.
//
// The replaced global operator new/delete pairs below forward to
// malloc/free and bump relaxed atomics. They are always on: the cost is two
// relaxed fetch_adds per allocation, far below malloc itself, and having
// them unconditionally means every bench and test can report allocation
// behavior without a special build. The counters deliberately do NOT track
// live bytes (sized deletes are unreliable through ABI boundaries); they
// track cumulative allocation traffic, which is the quantity the arena work
// is judged on.

#include "common/profile.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string_view>

namespace caqr::prof {

namespace {

struct Node {
  Counter counter;
  Node* next;
  explicit Node(const char* name) : counter(name), next(nullptr) {}
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

Node*& registry_head() {
  static Node* head = nullptr;
  return head;
}

std::atomic<long long> g_alloc_count{0};
std::atomic<long long> g_alloc_bytes{0};
std::atomic<long long> g_free_count{0};

struct HistNode {
  Histogram hist;
  HistNode* next;
  explicit HistNode(std::string name) : hist(std::move(name)), next(nullptr) {}
};

HistNode*& hist_registry_head() {
  static HistNode* head = nullptr;
  return head;
}

}  // namespace

Counter& counter(const char* name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (Node* n = registry_head(); n != nullptr; n = n->next) {
    if (std::string_view(n->counter.name) == name) return n->counter;
  }
  // Leaked by design: counters live for the process.
  Node* n = new Node(name);
  n->next = registry_head();
  registry_head() = n;
  return n->counter;
}

std::vector<Sample> snapshot() {
  std::vector<Sample> out;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    for (Node* n = registry_head(); n != nullptr; n = n->next) {
      Sample s;
      s.name = n->counter.name;
      s.count = n->counter.count.load(std::memory_order_relaxed);
      s.value = n->counter.value.load(std::memory_order_relaxed);
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

void reset() {
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    for (Node* n = registry_head(); n != nullptr; n = n->next) {
      n->counter.count.store(0, std::memory_order_relaxed);
      n->counter.value.store(0, std::memory_order_relaxed);
    }
    for (HistNode* n = hist_registry_head(); n != nullptr; n = n->next) {
      n->hist.reset();
    }
  }
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_bytes.store(0, std::memory_order_relaxed);
  g_free_count.store(0, std::memory_order_relaxed);
}

long long Histogram::count() const {
  long long c = 0;
  for (int i = 0; i < kBuckets; ++i) {
    c += buckets_[i].load(std::memory_order_relaxed);
  }
  return c;
}

double Histogram::mean_ns() const {
  const long long c = count();
  return c > 0 ? static_cast<double>(
                     total_ns_.load(std::memory_order_relaxed)) /
                     static_cast<double>(c)
               : 0.0;
}

double Histogram::quantile(double q) const {
  long long counts[kBuckets];
  long long total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the requested quantile (1-based), then linear interpolation
  // across the width of the bucket it lands in.
  const double rank = q * static_cast<double>(total - 1) + 1.0;
  long long seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(seen + counts[i]) >= rank) {
      const double lo = i == 0 ? 0.0 : static_cast<double>(1ULL << (i - 1));
      const double hi = static_cast<double>(
          i >= 63 ? 2.0 * lo : static_cast<double>(1ULL << i));
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * (frac < 0 ? 0 : (frac > 1 ? 1 : frac));
    }
    seen += counts[i];
  }
  return static_cast<double>(1ULL << (kBuckets - 2));
}

void Histogram::reset() {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  total_ns_.store(0, std::memory_order_relaxed);
}

Histogram& histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (HistNode* n = hist_registry_head(); n != nullptr; n = n->next) {
    if (n->hist.name() == name) return n->hist;
  }
  // Leaked by design, like counters: histograms live for the process.
  HistNode* n = new HistNode(name);
  n->next = hist_registry_head();
  hist_registry_head() = n;
  return n->hist;
}

std::vector<HistogramSample> histogram_snapshot() {
  std::vector<HistogramSample> out;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    for (HistNode* n = hist_registry_head(); n != nullptr; n = n->next) {
      HistogramSample s;
      s.name = n->hist.name();
      s.count = n->hist.count();
      s.mean_ns = n->hist.mean_ns();
      s.p50_ns = n->hist.quantile(0.50);
      s.p95_ns = n->hist.quantile(0.95);
      s.p99_ns = n->hist.quantile(0.99);
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HistogramSample& a, const HistogramSample& b) {
              return a.name < b.name;
            });
  return out;
}

long long allocation_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}
long long allocation_bytes() {
  return g_alloc_bytes.load(std::memory_order_relaxed);
}
long long free_count() {
  return g_free_count.load(std::memory_order_relaxed);
}

std::string to_json() {
  std::string json = "{\"counters\":{";
  char buf[256];
  const auto rows = snapshot();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"count\":%lld,\"value\":%lld}", i ? "," : "",
                  rows[i].name.c_str(), rows[i].count, rows[i].value);
    json += buf;
  }
  json += "},\"histograms\":{";
  const auto hists = histogram_snapshot();
  for (std::size_t i = 0; i < hists.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"count\":%lld,\"mean_ns\":%.1f,\"p50_ns\":%.1f,"
                  "\"p95_ns\":%.1f,\"p99_ns\":%.1f}",
                  i ? "," : "", hists[i].name.c_str(), hists[i].count,
                  hists[i].mean_ns, hists[i].p50_ns, hists[i].p95_ns,
                  hists[i].p99_ns);
    json += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "},\"allocations\":{\"count\":%lld,\"bytes\":%lld,"
                "\"frees\":%lld}}",
                allocation_count(), allocation_bytes(), free_count());
  json += buf;
  return json;
}

namespace detail {

void* counted_alloc(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(static_cast<long long>(size),
                          std::memory_order_relaxed);
  if (align > alignof(std::max_align_t)) {
    const std::size_t bytes = (size + align - 1) / align * align;
    return std::aligned_alloc(align, bytes);
  }
  return std::malloc(size != 0 ? size : 1);
}

void counted_free(void* p) {
  if (p != nullptr) g_free_count.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace detail

}  // namespace caqr::prof

// Process-wide replacement of the replaceable allocation functions
// ([new.delete]); aligned and nothrow forms included so every allocation in
// the process is counted.

void* operator new(std::size_t size) {
  void* p = caqr::prof::detail::counted_alloc(size, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = caqr::prof::detail::counted_alloc(size, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = caqr::prof::detail::counted_alloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = caqr::prof::detail::counted_alloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return caqr::prof::detail::counted_alloc(size, 0);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return caqr::prof::detail::counted_alloc(size, 0);
}

void operator delete(void* p) noexcept { caqr::prof::detail::counted_free(p); }
void operator delete[](void* p) noexcept {
  caqr::prof::detail::counted_free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  caqr::prof::detail::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  caqr::prof::detail::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  caqr::prof::detail::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  caqr::prof::detail::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  caqr::prof::detail::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  caqr::prof::detail::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  caqr::prof::detail::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  caqr::prof::detail::counted_free(p);
}

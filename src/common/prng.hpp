#pragma once

// Deterministic, splittable pseudo-random generation.
//
// SplitMix64 seeds Xoshiro256** streams; every consumer derives its stream
// from (seed, stream-id) so results are reproducible independent of thread
// count and scheduling order. Normal variates use Box-Muller on the open
// interval to avoid log(0).

#include <cmath>
#include <cstdint>
#include <numbers>

namespace caqr {

inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) {
    std::uint64_t sm = seed ^ (0xA3C59AC2ULL + stream * 0x9E3779B97F4A7C15ULL);
    for (auto& s : s_) s = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Standard normal via Box-Muller; caches the second variate.
  double normal() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = next_double();
    while (u1 <= 0.0) u1 = next_double();
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace caqr

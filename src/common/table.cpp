#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace caqr {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CAQR_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  CAQR_CHECK_MSG(cells.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

TextTable& TextTable::cell(const std::string& value) {
  pending_.push_back(value);
  return *this;
}

TextTable& TextTable::cell(double value, int precision) {
  pending_.push_back(format_double(value, precision));
  return *this;
}

TextTable& TextTable::cell(long long value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

void TextTable::end_row() {
  add_row(std::move(pending_));
  pending_.clear();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };

  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
    }
    out << "-|\n";
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TextTable::print() const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), stdout);
}

std::string format_double(double value, int precision) {
  char buf[64];
  const double mag = std::fabs(value);
  if (value != 0.0 && (mag >= 1e6 || mag < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  }
  return buf;
}

std::string format_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[u]);
  return buf;
}

std::string format_flops(double flops_per_sec) {
  const char* units[] = {"FLOP/s", "KFLOP/s", "MFLOP/s", "GFLOP/s", "TFLOP/s"};
  int u = 0;
  while (flops_per_sec >= 1000.0 && u < 4) {
    flops_per_sec /= 1000.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", flops_per_sec, units[u]);
  return buf;
}

}  // namespace caqr

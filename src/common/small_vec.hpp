#pragma once

// Fixed-inline-capacity vector with heap spill.
//
// The ModelOnly cost path calls kernel::stats_summary() once per launch —
// ~10^2 launches per serving request — and the summaries hold only a
// handful of equivalence classes (full blocks vs the ragged tail, one or
// two tree fan-ins). Returning std::vector (plus the std::map used to
// deduplicate classes) made that path allocate per launch; SmallVec keeps
// up to N elements in the object itself so the common case touches the
// heap zero times, while still growing transparently past N for unusual
// shapes.
//
// Deliberately minimal: push_back/emplace_back, random access, iteration,
// copy/move. Elements must be copyable; capacity never shrinks.

#include <cstddef>
#include <new>
#include <utility>

#include "common/check.hpp"

namespace caqr {

template <typename T, std::size_t N>
class SmallVec {
 public:
  SmallVec() = default;

  SmallVec(const SmallVec& other) { append_from(other); }

  SmallVec(SmallVec&& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.cap_ = N;
      other.size_ = 0;
    } else {
      append_from(other);
      other.clear();
    }
  }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      clear();
      append_from(other);
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      clear();
      if (other.heap_ != nullptr) {
        release_heap();
        heap_ = other.heap_;
        cap_ = other.cap_;
        size_ = other.size_;
        other.heap_ = nullptr;
        other.cap_ = N;
        other.size_ = 0;
      } else {
        append_from(other);
        other.clear();
      }
    }
    return *this;
  }

  ~SmallVec() {
    clear();
    release_heap();
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow(cap_ * 2);
    T* p = new (data() + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *p;
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) data()[i].~T();
    size_ = 0;
  }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  T& front() { return data()[0]; }
  const T& front() const { return data()[0]; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }

 private:
  T* data() {
    return heap_ != nullptr ? heap_ : std::launder(reinterpret_cast<T*>(inline_));
  }
  const T* data() const {
    return heap_ != nullptr ? heap_
                            : std::launder(reinterpret_cast<const T*>(inline_));
  }

  void append_from(const SmallVec& other) {
    if (other.size_ > cap_) grow(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) {
      new (data() + size_) T(other.data()[i]);
      ++size_;
    }
  }

  void grow(std::size_t new_cap) {
    if (new_cap < size_ + 1) new_cap = size_ + 1;
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T),
                                              std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      new (fresh + i) T(std::move(data()[i]));
      data()[i].~T();
    }
    release_heap();
    heap_ = fresh;
    cap_ = new_cap;
  }

  void release_heap() {
    if (heap_ != nullptr) {
      ::operator delete(heap_, std::align_val_t{alignof(T)});
      heap_ = nullptr;
      cap_ = N;
    }
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t cap_ = N;
  std::size_t size_ = 0;
};

}  // namespace caqr

#pragma once

// Flat CSR-style list of index groups.
//
// The TSQR reduction tree's per-level metadata is "groups of block/row
// indices": hundreds of tiny groups per level, thousands per request at the
// paper's serving shape. As a vector<vector<idx>> that is one heap
// allocation per group, rebuilt per request — the single largest
// steady-state allocation source the profiling layer found. GroupList
// stores the same structure in two flat arrays (concatenated members +
// group start offsets), so a whole level is TWO allocations regardless of
// group count, copies are two memcpys, and iteration is a contiguous walk.
//
// Group g is the half-open slice data[starts[g]..starts[g+1]); accessors
// return std::span, so call sites read like the nested form: `for (idx r :
// groups[g])`.

#include <initializer_list>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "linalg/matrix.hpp"  // idx

namespace caqr {

struct GroupList {
  std::vector<idx> data;        // concatenated group members
  std::vector<idx> starts{0};   // size()+1 offsets into data

  idx size() const { return static_cast<idx>(starts.size()) - 1; }
  bool empty() const { return size() == 0; }

  std::span<const idx> operator[](idx g) const {
    CAQR_DCHECK(g >= 0 && g < size());
    const auto b = static_cast<std::size_t>(starts[static_cast<std::size_t>(g)]);
    const auto e =
        static_cast<std::size_t>(starts[static_cast<std::size_t>(g) + 1]);
    return {data.data() + b, e - b};
  }

  idx group_size(idx g) const {
    return starts[static_cast<std::size_t>(g) + 1] -
           starts[static_cast<std::size_t>(g)];
  }

  void reserve(idx groups, idx members) {
    starts.reserve(static_cast<std::size_t>(groups) + 1);
    data.reserve(static_cast<std::size_t>(members));
  }

  void clear() {
    data.clear();
    starts.assign(1, 0);
  }

  template <typename It>
  void push_group(It first, It last) {
    data.insert(data.end(), first, last);
    starts.push_back(static_cast<idx>(data.size()));
  }

  void push_group(std::span<const idx> g) { push_group(g.begin(), g.end()); }
  void push_group(std::initializer_list<idx> g) {
    push_group(g.begin(), g.end());
  }

  // Incremental building: append members, then close the group.
  void append(idx v) { data.push_back(v); }
  void close_group() { starts.push_back(static_cast<idx>(data.size())); }

  friend bool operator==(const GroupList& a, const GroupList& b) {
    return a.data == b.data && a.starts == b.starts;
  }
};

}  // namespace caqr

#pragma once

// Aligned plain-text tables for bench output (mirrors the paper's tables)
// plus CSV emission for downstream plotting.

#include <string>
#include <vector>

namespace caqr {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Convenience: formats doubles with the given precision.
  void add_row(std::vector<std::string> cells);
  TextTable& cell(const std::string& value);
  TextTable& cell(double value, int precision = 3);
  TextTable& cell(long long value);
  void end_row();

  std::string to_string() const;
  std::string to_csv() const;

  // Prints to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
};

// Formats a double like "17.3" / "1.2e-07" compactly.
std::string format_double(double value, int precision = 3);

// Human-readable byte and FLOP counts ("1.5 GB", "388 GFLOP/s").
std::string format_bytes(double bytes);
std::string format_flops(double flops_per_sec);

}  // namespace caqr

#pragma once

// CholeskyQR2 / CholeskyQR3 on the simulated GPU (Thies & Röhrig-Zöllner,
// "QR factorization of tall and very skinny matrices on current GPUs";
// Fukaya/Yamamoto et al. for the CholeskyQR2 stability analysis).
//
// One pass factors the Gram matrix: G = A^T A (BLAS3 syrk at GEMM rates),
// R = chol(G), Q = A R^-1 (BLAS3 trsm). The entire pass is three launches of
// library-rate BLAS3 — no reduction tree, no per-block latency floors — which
// is why the family beats Householder TSQR outright on launch-overhead-bound
// tall-skinny shapes. The price is cond^2(A) squaring in the Gram matrix:
// one pass loses orthogonality as eps * cond^2(A). CholeskyQR2 runs a second
// (reorthogonalization) pass on Q, CholeskyQR3 a third; each pass multiplies
// its R into the accumulated R (trmm).
//
// Breakdown, detection-or-accuracy. When eps * cond^2 approaches 1 the Gram
// matrix stops being numerically SPD and potrf_upper_checked reports a typed
// CholeskyBreakdown instead of silently producing garbage. Two further
// detectors close the window where the first Cholesky still succeeds but the
// result would be inaccurate:
//   * a non-finite Gram entry (column scales near 1e±300 overflow/underflow
//     when squared) surfaces as a non-finite pivot -> GramNotFinite;
//   * the refinement pass's Gram G = Q^T Q is a FREE orthogonality
//     certificate: if ||G - I||_F > 0.5 on the final pass, the classical
//     CholeskyQR2 condition (||Q1^T Q1 - I|| <= 1/2 guarantees full final
//     orthogonality) is violated -> IllConditioned breakdown.
// On breakdown the solver either falls back to Householder TSQR on the saved
// input (severity ft::Corrected) or reports ft::Unrecovered with EMPTY
// factors — a CholeskyQR result is accurate or it says it is not.
//
// Mixed precision. PrecisionPolicy::Tf32Gram costs the FIRST Gram pass at
// tensor-core TF32 rates (GpuMachineModel::tf32_gemm_speedup) and emulates
// its numerics by rounding the computed Gram entries through a 10-bit
// mantissa — the same magnitude of perturbation (~eps_tf32 * |G|) a real
// tensor-core syrk with fp32 accumulate introduces on its inputs. The
// refinement passes run in the native precision, so the path is admissible
// only while eps_tf32 * cond^2(A) stays well below 1 (cond <~ 5): the
// reorthogonalization regime, which is where the Gram pass dominates and the
// tensor speedup pays.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <utility>

#include "ft/ft.hpp"
#include "gpusim/device.hpp"
#include "gpusim/machine_model.hpp"
#include "kernels/kernels.hpp"
#include "linalg/blas3.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "tsqr/tsqr.hpp"

namespace caqr::tsqr {

enum class CholQrVariant { CholQr2 = 2, CholQr3 = 3 };

// Why a CholeskyQR run declared breakdown.
enum class CholQrBreakdown {
  None = 0,
  GramNotSpd,      // non-positive Cholesky pivot: eps * cond^2 ~ 1
  GramNotFinite,   // Gram over/underflowed (column scales near 1e±300)
  IllConditioned,  // final refinement Gram too far from I: ||G - I|| > 1/2
};

struct CholQrOptions {
  CholQrVariant variant = CholQrVariant::CholQr2;
  // Precision of the FIRST Gram pass; refinement passes are always native.
  gpusim::PrecisionPolicy precision = gpusim::PrecisionPolicy::Native;
  // On breakdown, refactor the saved input with Householder TSQR (severity
  // Corrected) instead of reporting Unrecovered with empty factors.
  bool fallback_to_tsqr = true;
  TsqrOptions tsqr;  // decomposition used by the fallback
};

template <typename T>
struct CholQrResult {
  Matrix<T> q;  // m x n explicit orthonormal factor (empty on unrecovered)
  Matrix<T> r;  // n x n upper triangular (empty on unrecovered)
  int gram_passes = 0;  // Cholesky passes that completed
  bool breakdown = false;
  CholQrBreakdown reason = CholQrBreakdown::None;
  CholeskyBreakdown info;  // failing pivot detail when GramNotSpd/NotFinite
  bool fell_back = false;  // q/r produced by the Householder TSQR fallback
  // Ok: clean CholeskyQR. Corrected: breakdown detected, fallback produced
  // accurate factors. Unrecovered: breakdown reported, no factors.
  ft::Severity severity = ft::Severity::Ok;
  // ||G - I||_F of the last refinement pass (functional runs): the
  // orthogonality certificate the IllConditioned detector gates on.
  double final_gram_deviation = 0.0;
};

// Admissibility bounds for the serve-layer picker: largest condition
// estimate for which each variant is trusted to hit the verifier bound.
// CholeskyQR2 needs eps * cond^2 <= 1/64 (the classical cond <= eps^-1/2 / 8
// margin); CholeskyQR3 tolerates the first Gram being barely factorable
// (cond <= eps^-1/2 / 2) because the extra pass restores orthogonality. The
// mixed path is gated by the REDUCED precision's eps with the CQR3-style
// margin, cond <= eps_low^-1/2 / 2 (~23 for TF32): the final pass runs at
// NATIVE precision, so the low-precision Gram only has to stay factorable
// with ||Q1^T Q1 - I|| < 1 — and the runtime delta-gate catches violations
// and falls back. Either way, the reorthogonalization regime.
template <typename T>
double cholqr2_max_cond() {
  return 0.125 / std::sqrt(std::numeric_limits<T>::epsilon());
}
template <typename T>
double cholqr3_max_cond() {
  return 0.5 / std::sqrt(std::numeric_limits<T>::epsilon());
}
inline double cholqr_mixed_max_cond(gpusim::PrecisionPolicy p) {
  const double e = gpusim::lowp_eps(p);
  return e > 0 ? 0.5 / std::sqrt(e) : 0.0;
}

namespace detail {

inline void charge_cholqr_op(gpusim::Device& dev, const char* label,
                             double flops, double bytes,
                             double rate_flops_per_cycle) {
  gpusim::BlockStats s;
  s.flops = flops;
  // One logical block sized against the given sustained rate, mirroring
  // baselines::charge_gemm so CholeskyQR and Hybrid predictions share the
  // same roofline conventions.
  s.issue_cycles =
      flops / rate_flops_per_cycle / dev.model().issue_stall_factor;
  s.gmem_bytes = bytes;
  kernels::CostOnlyKernel kern{label, s};
  dev.launch(kern, 1);
}

template <typename T>
void charge_gram(gpusim::Device& dev, idx m, idx n,
                 gpusim::PrecisionPolicy policy) {
  const auto& mm = dev.model();
  const double flops =
      static_cast<double>(m) * n * (n + 1);  // syrk: half a (n,n,m) gemm
  const double dev_fpc = static_cast<double>(mm.num_sms) * mm.lanes_per_sm *
                         (mm.fma ? 2.0 : 1.0);
  double rate = dev_fpc * mm.gemm_efficiency;
  const char* label = "cholqr_gram";
  if (policy == gpusim::PrecisionPolicy::Tf32Gram && mm.has_tensor_cores()) {
    rate = dev_fpc * mm.tf32_gemm_speedup * mm.tensor_efficiency;
    label = "cholqr_gram_tf32";
  }
  const double tile = 64.0;
  const double waves = std::ceil(static_cast<double>(n) / tile);
  // A general (n, n, m) gemm streams each operand once per opposing tile
  // wave; with both operands the SAME matrix and only the upper triangle of
  // C computed, a wave past the first reads a shrinking share of A —
  // averaging to (waves + 1) / 2 passes. Plus the tiny n x n output.
  const double bytes = (0.5 * static_cast<double>(m) * n * (waves + 1) +
                        2.0 * static_cast<double>(n) * n) *
                       sizeof(T);
  charge_cholqr_op(dev, label, flops, bytes, rate);
}

template <typename T>
void charge_trsm(gpusim::Device& dev, idx m, idx n) {
  const auto& mm = dev.model();
  const double flops = static_cast<double>(m) * n * n;
  const double dev_fpc = static_cast<double>(mm.num_sms) * mm.lanes_per_sm *
                         (mm.fma ? 2.0 : 1.0);
  const double tile = 64.0;
  const double waves_m = (static_cast<double>(m) + tile - 1) / tile;
  const double bytes = (2.0 * static_cast<double>(m) * n +
                        0.5 * static_cast<double>(n) * n * waves_m) *
                       sizeof(T);
  charge_cholqr_op(dev, "cholqr_trsm", flops, bytes,
                   dev_fpc * mm.gemm_efficiency);
}

// Small n x n factor-side ops (potrf, R accumulation): latency-bound, run on
// a sliver of the machine — charged at one SM's FMA rate at 50% efficiency.
template <typename T>
void charge_small_op(gpusim::Device& dev, const char* label, idx n,
                     double flops) {
  const auto& mm = dev.model();
  const double rate = mm.lanes_per_sm * (mm.fma ? 2.0 : 1.0) * 0.5;
  const double bytes = 2.0 * static_cast<double>(n) * n * sizeof(T);
  charge_cholqr_op(dev, label, flops, bytes, rate);
}

// Emulates the tensor-core reduced-precision Gram: every entry rounded
// through a 10-bit mantissa (TF32 / fp16 mantissa width; fp32 accumulate
// keeps the exponent range, so only the mantissa truncation is modeled).
template <typename T>
void round_gram_lowp(MatrixView<T> g) {
  for (idx j = 0; j < g.cols(); ++j) {
    for (idx i = 0; i < g.rows(); ++i) {
      float f = static_cast<float>(g(i, j));
      std::uint32_t bits = 0;
      std::memcpy(&bits, &f, sizeof(bits));
      bits &= 0xFFFFE000u;  // keep 10 of float's 23 mantissa bits
      std::memcpy(&f, &bits, sizeof(bits));
      g(i, j) = static_cast<T>(f);
    }
  }
}

template <typename T>
double gram_deviation_from_identity(ConstMatrixView<T> g) {
  double sum = 0;
  for (idx j = 0; j < g.cols(); ++j) {
    for (idx i = 0; i < g.rows(); ++i) {
      const double d =
          static_cast<double>(g(i, j)) - (i == j ? 1.0 : 0.0);
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

}  // namespace detail

// CholeskyQR2/3 factorization of `a` (consumed; pass Matrix<T>::shape_only
// in ModelOnly). Functional mode computes Q/R in place and detects
// breakdown; ModelOnly charges the identical launch sequence of the
// no-breakdown path and returns shape-only factors, so a ModelOnly probe is
// the exact predicted cost of the corresponding functional run.
template <typename T>
CholQrResult<T> cholqr(gpusim::Device& dev, Matrix<T> a,
                       const CholQrOptions& opt = {}) {
  const idx m = a.rows();
  const idx n = a.cols();
  CAQR_CHECK(m >= n);
  CholQrResult<T> res;
  const int passes = opt.variant == CholQrVariant::CholQr3 ? 3 : 2;
  if (n == 0) {
    res.q = std::move(a);
    res.r = Matrix<T>::zeros(0, 0);
    return res;
  }

  const bool functional = dev.mode() == gpusim::ExecMode::Functional;
  if (!functional) {
    for (int pass = 0; pass < passes; ++pass) {
      const auto policy =
          pass == 0 ? opt.precision : gpusim::PrecisionPolicy::Native;
      detail::charge_gram<T>(dev, m, n, policy);
      detail::charge_small_op<T>(dev, "cholqr_potrf", n,
                                 static_cast<double>(n) * n * n / 3.0);
      detail::charge_trsm<T>(dev, m, n);
      if (pass > 0) {
        detail::charge_small_op<T>(dev, "cholqr_rupdate", n,
                                   static_cast<double>(n) * n * n / 3.0);
      }
    }
    res.q = Matrix<T>::shape_only(m, n);
    res.r = Matrix<T>::shape_only(n, n);
    res.gram_passes = passes;
    return res;
  }

  // The input is kept for the Householder fallback: post-pass-0 breakdowns
  // happen after `q` has been overwritten by trsm.
  Matrix<T> saved;
  if (opt.fallback_to_tsqr) saved = Matrix<T>::from(a.view().as_const());
  res.q = std::move(a);
  Matrix<T> r_total;
  Matrix<T> g = Matrix<T>::zeros(n, n);

  for (int pass = 0; pass < passes; ++pass) {
    const auto policy =
        pass == 0 ? opt.precision : gpusim::PrecisionPolicy::Native;
    syrk_t(T(1), res.q.view().as_const(), T(0), g.view());
    detail::charge_gram<T>(dev, m, n, policy);
    if (policy == gpusim::PrecisionPolicy::Tf32Gram) {
      detail::round_gram_lowp(g.view());
    }
    if (pass > 0) {
      const double delta =
          detail::gram_deviation_from_identity(g.view().as_const());
      res.final_gram_deviation = delta;
      if (pass == passes - 1 && delta > 0.5) {
        // The classical guarantee (final orthogonality ~ eps once the last
        // refinement Gram is within 1/2 of I) no longer holds: report
        // instead of returning a plausible-looking but inaccurate Q.
        res.breakdown = true;
        res.reason = CholQrBreakdown::IllConditioned;
        res.info = CholeskyBreakdown{};
        res.info.value = delta;
        break;
      }
    }
    const CholeskyBreakdown bd = potrf_upper_checked(g.view());
    detail::charge_small_op<T>(dev, "cholqr_potrf", n,
                               static_cast<double>(n) * n * n / 3.0);
    if (!bd.ok()) {
      res.breakdown = true;
      res.reason = std::isfinite(bd.value) ? CholQrBreakdown::GramNotSpd
                                           : CholQrBreakdown::GramNotFinite;
      res.info = bd;
      break;
    }
    ++res.gram_passes;
    trsm(Side::Right, UpLo::Upper, Trans::No, g.view().as_const(),
         res.q.view());
    detail::charge_trsm<T>(dev, m, n);
    if (pass == 0) {
      r_total = Matrix<T>::from(g.view().as_const());
    } else {
      // R := R_pass * R_total (both upper triangular, product stays upper).
      trmm_left(UpLo::Upper, Trans::No, g.view().as_const(), r_total.view());
      detail::charge_small_op<T>(dev, "cholqr_rupdate", n,
                                 static_cast<double>(n) * n * n / 3.0);
    }
  }

  if (!res.breakdown) {
    res.r = std::move(r_total);
    return res;
  }

  if (opt.fallback_to_tsqr) {
    TsqrOptions topt = opt.tsqr;
    if (topt.block_rows < n) topt.block_rows = n;
    ft::Severity tsev = ft::Severity::Ok;
    const PanelFactor<T> pf =
        tsqr_factor(dev, gpusim::kDefaultStream, saved.view(), topt, &tsev);
    res.r = Matrix<T>::zeros(n, n);
    for (idx j = 0; j < n; ++j) {
      for (idx i = 0; i <= j; ++i) res.r(i, j) = saved(i, j);
    }
    Matrix<T> qe = Matrix<T>::identity(m, n);
    tsqr_apply_q(dev, saved.view().as_const(), pf, qe.view(), topt);
    res.q = std::move(qe);
    res.fell_back = true;
    res.severity = ft::worse(ft::Severity::Corrected, tsev);
  } else {
    // No silent garbage: the factors are withheld, the breakdown is typed.
    res.q = Matrix<T>();
    res.r = Matrix<T>();
    res.severity = ft::Severity::Unrecovered;
  }
  return res;
}

// Predicted wall time of a CholeskyQR run: a ModelOnly probe charging the
// exact launch sequence cholqr() issues, so prediction and ModelOnly
// simulation agree by construction.
template <typename T>
double predict_cholqr_seconds(const gpusim::GpuMachineModel& model, idx m,
                              idx n, const CholQrOptions& opt = {}) {
  gpusim::Device probe(model, gpusim::ExecMode::ModelOnly);
  (void)cholqr<T>(probe, Matrix<T>::shape_only(m, n), opt);
  return probe.elapsed_seconds();
}

}  // namespace caqr::tsqr

#pragma once

// Incremental (streaming) TSQR: consume a tall-skinny matrix one row block
// at a time, maintaining only O(width^2) state, and produce the same R as a
// monolithic TSQR (up to reflector signs).
//
// This is the natural out-of-core/streaming extension of the paper's TSQR:
// because the reduction tree can have any shape (§II.B), a left-deep
// "caterpillar" tree — combine the running R with each arriving block's R —
// needs only the current 2w x w stack in memory. It serves workloads where
// the matrix is produced incrementally (sensor frames, s-step basis vectors,
// out-of-core panels) and never materialized.
//
// Each push costs one `factor` of the arriving block plus one binary
// `factor_tree` combine on the simulated device. The Q factor is not
// retained (streaming consumers typically need only R, e.g. for CholeskyQR-
// style reconstruction, normal-equation-free least squares on R, or
// conditioning estimates); use the monolithic TSQR when Q is needed.

#include <vector>

#include "gpusim/device.hpp"
#include "kernels/block_ops.hpp"
#include "kernels/kernels.hpp"
#include "linalg/matrix.hpp"

namespace caqr::tsqr {

template <typename T>
class IncrementalTsqr {
 public:
  IncrementalTsqr(gpusim::Device& dev, idx width,
                  kernels::ReductionVariant variant =
                      kernels::ReductionVariant::RegisterSerialTransposed)
      : dev_(&dev),
        width_(width),
        variant_(variant),
        r_(Matrix<T>::zeros(width, width)) {
    CAQR_CHECK(width >= 1);
  }

  idx width() const { return width_; }
  idx rows_consumed() const { return rows_consumed_; }
  bool empty() const { return rows_consumed_ == 0; }

  // Consumes one row block (any height >= 1; blocks of height >= width are
  // most efficient). The block is copied internally; the caller may reuse
  // its storage immediately.
  void push(ConstMatrixView<T> block) {
    CAQR_CHECK(block.cols() == width_);
    CAQR_CHECK(block.rows() >= 1);
    const idx h = block.rows();

    // Factor the arriving block on the device (functionally here when the
    // device is functional; cost charged either way).
    Matrix<T> work = Matrix<T>::from(block);
    std::vector<T> tau(static_cast<std::size_t>(std::min(h, width_)));
    if (dev_->mode() == gpusim::ExecMode::Functional) {
      kernels::block_geqr2(work.view(), tau.data());
    }
    charge_factor(h);

    // Combine its R with the running R (binary caterpillar step). The
    // arriving R may be trapezoidal when h < width.
    const idx rrows = std::min(h, width_);
    if (rows_consumed_ == 0) {
      for (idx j = 0; j < width_; ++j) {
        for (idx i = 0; i < std::min<idx>(j + 1, rrows); ++i) {
          r_(i, j) = work(i, j);
        }
      }
    } else if (dev_->mode() == gpusim::ExecMode::Functional) {
      // Stack [running R; new R] (2w x w; the short-block case pads with
      // zero rows, harmless to the combine) and re-factor.
      Matrix<T> stack = Matrix<T>::zeros(2 * width_, width_);
      stack.view().block(0, 0, width_, width_).copy_from(r_.view());
      for (idx j = 0; j < width_; ++j) {
        for (idx i = 0; i < std::min<idx>(j + 1, rrows); ++i) {
          stack(width_ + i, j) = work(i, j);
        }
      }
      std::vector<T> tau2(static_cast<std::size_t>(width_));
      std::vector<T> scratch(static_cast<std::size_t>(1 + width_));
      kernels::stacked_geqr2(stack.view(), width_, 2, tau2.data(),
                             scratch.data());
      for (idx j = 0; j < width_; ++j) {
        for (idx i = 0; i <= j; ++i) r_(i, j) = stack(i, j);
      }
    }
    if (rows_consumed_ > 0) charge_combine();
    rows_consumed_ += h;
  }

  // The running R (width x width upper triangular) of everything consumed.
  const Matrix<T>& r() const { return r_; }

 private:
  void charge_factor(idx h) {
    kernels::CostOnlyKernel k{
        "stream_factor",
        kernels::detail::householder_block_stats(
            kernels::block_geqr2_flops(h, width_),
            static_cast<double>(h) * width_,
            static_cast<double>(std::min(h, width_)),
            (2.0 * h * width_ + width_) * sizeof(T) *
                dev_->model().tile_locality_penalty,
            kernels::cost_params(variant_), dev_->model().uncoalesced_penalty,
            h, width_)};
    dev_->launch(k, 1);
  }

  void charge_combine() {
    kernels::CostOnlyKernel k{
        "stream_combine",
        kernels::detail::householder_block_stats(
            kernels::stacked_geqr2_flops(width_, 2),
            2.0 * static_cast<double>(width_) * width_,
            static_cast<double>(width_),
            (2.0 * 2 * width_ * width_ + width_) * sizeof(T),
            kernels::cost_params(variant_),
            dev_->model().uncoalesced_penalty)};
    dev_->launch(k, 1);
  }

  gpusim::Device* dev_;
  idx width_;
  kernels::ReductionVariant variant_;
  Matrix<T> r_;
  idx rows_consumed_ = 0;
};

}  // namespace caqr::tsqr

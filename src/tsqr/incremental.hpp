#pragma once

// Incremental (streaming) TSQR: consume a tall-skinny matrix one row block
// at a time, maintaining only O(width^2) state, and produce the same R as a
// monolithic TSQR (up to reflector signs).
//
// This is the natural out-of-core/streaming extension of the paper's TSQR:
// because the reduction tree can have any shape (§II.B), a left-deep
// "caterpillar" tree — combine the running R with each arriving block's R —
// needs only the current 2w x w stack in memory. It serves workloads where
// the matrix is produced incrementally (sensor frames, s-step basis vectors,
// out-of-core panels) and never materialized.
//
// Each push costs one `factor` of the arriving block plus one binary
// `factor_tree` combine on the simulated device. The Q factor is not
// retained (streaming consumers typically need only R, e.g. for CholeskyQR-
// style reconstruction, normal-equation-free least squares on R, or
// conditioning estimates); use the monolithic TSQR when Q is needed.

#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "kernels/block_ops.hpp"
#include "kernels/kernels.hpp"
#include "linalg/matrix.hpp"

namespace caqr::tsqr {

// Typed rejection of a degenerate streaming update (the dist::PartitionError
// pattern): thrown — never an abort — so the serving layer can refuse the
// request, count it, and keep the stream alive. Covers both streaming
// consumers: IncrementalTsqr::push (a zero-row append is a caller bug that
// previously died on an assert) and stream::SlidingWindowQr (an evict that
// would shrink the window below `cols` rows leaves no room for the R
// triangle, exactly like an infeasible block-row partition).
struct StreamUpdateError : std::runtime_error {
  enum class Kind {
    ZeroRowAppend,    // appended block has no rows
    WindowUnderflow,  // evict/read would leave the window under `cols` rows
  };

  StreamUpdateError(Kind kind_, idx rows_, idx cols_, idx window_rows_)
      : std::runtime_error(
            kind_ == Kind::ZeroRowAppend
                ? "streaming update rejected: appended block has " +
                      std::to_string(rows_) + " rows (need >= 1) at width " +
                      std::to_string(cols_)
                : "streaming update rejected: window would shrink to " +
                      std::to_string(window_rows_) + " rows, below the " +
                      std::to_string(cols_) + "-row floor (need rows >= cols)"),
        kind(kind_),
        rows(rows_),
        cols(cols_),
        window_rows(window_rows_) {}

  Kind kind;
  idx rows = 0;         // rows of the offending block (appends)
  idx cols = 0;         // the window/panel width, the row floor
  idx window_rows = 0;  // rows the window would hold after the update
};

template <typename T>
class IncrementalTsqr {
 public:
  IncrementalTsqr(gpusim::Device& dev, idx width,
                  kernels::ReductionVariant variant =
                      kernels::ReductionVariant::RegisterSerialTransposed)
      : dev_(&dev),
        width_(width),
        variant_(variant),
        r_(Matrix<T>::zeros(width, width)) {
    CAQR_CHECK(width >= 1);
  }

  idx width() const { return width_; }
  idx rows_consumed() const { return rows_consumed_; }
  bool empty() const { return rows_consumed_ == 0; }

  // Consumes one row block (any height >= 1; blocks of height >= width are
  // most efficient). The block is copied internally; the caller may reuse
  // its storage immediately. A zero-row block is a typed StreamUpdateError
  // (not an abort): streaming producers legitimately hit empty frames and
  // must be able to refuse them without killing the process.
  void push(ConstMatrixView<T> block) {
    CAQR_CHECK(block.cols() == width_);
    if (block.rows() < 1) {
      throw StreamUpdateError(StreamUpdateError::Kind::ZeroRowAppend,
                              block.rows(), width_, rows_consumed_);
    }
    const idx h = block.rows();

    // Factor the arriving block on the device (functionally here when the
    // device is functional; cost charged either way).
    Matrix<T> work = Matrix<T>::from(block);
    std::vector<T> tau(static_cast<std::size_t>(std::min(h, width_)));
    if (dev_->mode() == gpusim::ExecMode::Functional) {
      kernels::block_geqr2(work.view(), tau.data());
    }
    charge_factor(h);

    // Combine its R with the running R (binary caterpillar step). The
    // arriving R may be trapezoidal when h < width.
    const idx rrows = std::min(h, width_);
    if (rows_consumed_ == 0) {
      for (idx j = 0; j < width_; ++j) {
        for (idx i = 0; i < std::min<idx>(j + 1, rrows); ++i) {
          r_(i, j) = work(i, j);
        }
      }
    } else if (dev_->mode() == gpusim::ExecMode::Functional) {
      // Stack [running R; new R] (2w x w; the short-block case pads with
      // zero rows, harmless to the combine) and re-factor.
      Matrix<T> stack = Matrix<T>::zeros(2 * width_, width_);
      stack.view().block(0, 0, width_, width_).copy_from(r_.view());
      for (idx j = 0; j < width_; ++j) {
        for (idx i = 0; i < std::min<idx>(j + 1, rrows); ++i) {
          stack(width_ + i, j) = work(i, j);
        }
      }
      std::vector<T> tau2(static_cast<std::size_t>(width_));
      std::vector<T> scratch(static_cast<std::size_t>(1 + width_));
      kernels::stacked_geqr2(stack.view(), width_, 2, tau2.data(),
                             scratch.data());
      for (idx j = 0; j < width_; ++j) {
        for (idx i = 0; i <= j; ++i) r_(i, j) = stack(i, j);
      }
    }
    if (rows_consumed_ > 0) charge_combine();
    rows_consumed_ += h;
  }

  // The running R (width x width upper triangular) of everything consumed.
  const Matrix<T>& r() const { return r_; }

 private:
  void charge_factor(idx h) {
    kernels::CostOnlyKernel k{
        "stream_factor",
        kernels::detail::householder_block_stats(
            kernels::block_geqr2_flops(h, width_),
            static_cast<double>(h) * width_,
            static_cast<double>(std::min(h, width_)),
            (2.0 * h * width_ + width_) * sizeof(T) *
                dev_->model().tile_locality_penalty,
            kernels::cost_params(variant_), dev_->model().uncoalesced_penalty,
            h, width_)};
    dev_->launch(k, 1);
  }

  void charge_combine() {
    kernels::CostOnlyKernel k{
        "stream_combine",
        kernels::detail::householder_block_stats(
            kernels::stacked_geqr2_flops(width_, 2),
            2.0 * static_cast<double>(width_) * width_,
            static_cast<double>(width_),
            (2.0 * 2 * width_ * width_ + width_) * sizeof(T),
            kernels::cost_params(variant_),
            dev_->model().uncoalesced_penalty)};
    dev_->launch(k, 1);
  }

  gpusim::Device* dev_;
  idx width_;
  kernels::ReductionVariant variant_;
  Matrix<T> r_;
  idx rows_consumed_ = 0;
};

}  // namespace caqr::tsqr

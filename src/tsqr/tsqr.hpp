#pragma once

// Tall-Skinny QR (TSQR, §II.B) on the simulated GPU.
//
// The panel is split vertically into blocks of ~block_rows; each block is
// factored independently (`factor`), then the per-block R triangles are
// combined up a reduction tree (`factor_tree`) whose arity defaults to the
// paper's choice block_rows / width (a quad-tree for 64 x 16 blocks). All
// state — reflectors from every stage — lives in the panel itself plus the
// tau arrays recorded in PanelFactor, exactly like the paper's in-place
// scheme: the tree-level reflectors overwrite the R entries they consume.
//
// PanelFactor is the replay script: CAQR's trailing-matrix update and the
// later apply-Q/form-Q entry points re-walk the same offsets/groups.
//
// Fault tolerance: every launch's ft::Severity folds into the optional
// `severity_out` argument, and when the device's policy enables recovery, an
// Unrecovered factorization (a launch whose corruption survived the ABFT
// retries) triggers a whole-panel recompute from the input saved before the
// first attempt — the poisoned subtree's reflectors are abandoned, not
// patched — up to FtOptions::max_panel_retries times.

#include <algorithm>
#include <array>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/group_list.hpp"
#include "common/profile.hpp"
#include "ft/ft.hpp"
#include "gpusim/device.hpp"
#include "kernels/kernels.hpp"
#include "linalg/matrix.hpp"
#include "numerics/finite_check.hpp"

namespace caqr::tsqr {

// Explicit reduction-tree specification: the level-0 block decomposition
// plus the grouping of survivors at every tree level, expressed in level-0
// BLOCK INDICES (not row offsets). The combine arithmetic of a group is a
// pure function of the stacked R-triangle values, so any two factorizations
// that run the same spec over the same data produce bit-identical results —
// this is the seam dist:: uses to make a multi-device factorization (local
// trees per device + a cross-device tree over the device roots) bitwise
// reproducible by a single-device run of the merged spec.
struct TreeSpec {
  std::vector<idx> offsets;  // nblocks + 1 panel-row offsets, every block
                             // at least `width` rows tall
  // levels[l][g] lists the blocks whose surviving R triangles group g of
  // level l combines; the first listed block's triangle receives the
  // combined R. Every listed block must be a survivor (level-0 blocks are
  // all survivors; after a level only each group's first block survives;
  // blocks not listed in a level pass through unchanged). Singleton groups
  // are allowed and are no-ops. Each level is a flat GroupList (two arrays
  // per level, not one heap vector per group — this metadata is rebuilt per
  // panel on the serving hot path).
  std::vector<GroupList> levels;

  idx num_blocks() const { return static_cast<idx>(offsets.size()) - 1; }
};

struct TsqrOptions {
  idx block_rows = 128;  // H: nominal vertical block height (>= width)
  // Reduction-tree fan-in; 0 derives the paper's choice max(2, H / W).
  idx arity = 0;
  kernels::ReductionVariant variant =
      kernels::ReductionVariant::RegisterSerialTransposed;
  // Pre-transpose panels (out-of-place, §IV.E.4). Adds a transpose kernel
  // per panel; the reduction variant's cost parameters assume the matching
  // layout. Ignored (no transpose charged) for non-transposed variants.
  bool transposed_panels = true;
  // Trailing-matrix tile width for the CAQR update kernels.
  idx tile_cols = 16;
  // Explicit decomposition override for a (rows, width) panel; null uses
  // the uniform split_rows + effective_arity construction. The provider
  // must be deterministic: tsqr_factor may call it more than once (panel
  // retries) and replay relies on identical specs.
  std::function<TreeSpec(idx rows, idx width)> tree_spec;

  idx effective_arity(idx width) const {
    if (arity >= 2) return arity;
    const idx derived = width > 0 ? block_rows / width : 2;
    return derived >= 2 ? derived : 2;
  }
};

// Immutable replay structure of one panel decomposition, in PANEL-ROW
// coordinates (a TreeSpec translated through its own offsets): the level-0
// block offsets plus, per tree level, the row offsets of the R triangles
// each group combines. This is everything about a factorization that does
// NOT depend on the data — every panel of the same (rows, width, block_rows,
// arity) shape replays the identical structure, so PanelFactors share one
// ReplayMeta by shared_ptr instead of copying offsets + per-level GroupLists
// per panel (the last per-request metadata copies on the serve hot path).
struct ReplayMeta {
  std::vector<idx> offsets;       // nblocks + 1 panel-row offsets
  std::vector<GroupList> levels;  // per-level groups, panel-row offsets

  idx num_blocks() const { return static_cast<idx>(offsets.size()) - 1; }
};

// Translates a validated TreeSpec (block indices) into shared panel-row
// replay metadata.
inline std::shared_ptr<const ReplayMeta> make_replay_meta(
    const TreeSpec& spec) {
  auto meta = std::make_shared<ReplayMeta>();
  meta->offsets = spec.offsets;
  meta->levels.reserve(spec.levels.size());
  for (const auto& groups : spec.levels) {
    GroupList g;
    g.starts = groups.starts;
    g.data.resize(groups.data.size());
    for (std::size_t i = 0; i < groups.data.size(); ++i) {
      g.data[i] = meta->offsets[static_cast<std::size_t>(groups.data[i])];
    }
    meta->levels.push_back(std::move(g));
  }
  return meta;
}

// Metadata describing one panel's TSQR factorization: the shared immutable
// replay structure plus this factorization's tau scalars. The kernels take
// `const std::vector<idx>*` / `const GroupList*`, so they point straight
// into the shared ReplayMeta.
template <typename T>
struct PanelFactor {
  idx rows = 0;   // panel height
  idx width = 0;  // panel width
  // Shared replay structure; set by every factorization (never null after
  // tsqr_factor returns).
  std::shared_ptr<const ReplayMeta> meta;
  std::vector<T> taus0;  // width scalars per level-0 block
  // taus[l]: width scalars per group of tree level l. Functional
  // factorizations only: ModelOnly runs never execute blocks, so the outer
  // vector is left empty (level_taus returns nullptr, never dereferenced).
  std::vector<std::vector<T>> taus;

  const std::vector<idx>& offsets() const { return meta->offsets; }
  idx num_blocks() const { return meta ? meta->num_blocks() : 0; }
  idx num_levels() const {
    return meta ? static_cast<idx>(meta->levels.size()) : 0;
  }
  const GroupList& level_groups(idx l) const {
    return meta->levels[static_cast<std::size_t>(l)];
  }
  T* level_taus(idx l) {
    return taus.empty() ? nullptr : taus[static_cast<std::size_t>(l)].data();
  }
  const T* level_taus(idx l) const {
    return taus.empty() ? nullptr : taus[static_cast<std::size_t>(l)].data();
  }
};

// Splits `rows` into blocks of ~block_rows with every block >= width:
// the last block absorbs the remainder (height in [block_rows, 2*block_rows)
// when there are at least two blocks).
inline std::vector<idx> split_rows(idx rows, idx block_rows, idx width) {
  CAQR_CHECK(rows >= width);
  CAQR_CHECK(block_rows >= width);
  const idx nblocks = rows / block_rows > 1 ? rows / block_rows : 1;
  std::vector<idx> offsets;
  offsets.reserve(static_cast<std::size_t>(nblocks) + 1);
  for (idx b = 0; b < nblocks; ++b) offsets.push_back(b * block_rows);
  offsets.push_back(rows);
  return offsets;
}

// The default decomposition: split_rows level-0 blocks combined by a
// uniform-arity tree (consecutive runs of `effective_arity` survivors per
// level, last run possibly smaller, until one survives).
inline TreeSpec uniform_tree_spec(idx rows, idx width, const TsqrOptions& opt) {
  TreeSpec spec;
  spec.offsets = split_rows(rows, opt.block_rows, width);
  const idx nblocks = spec.num_blocks();
  const idx arity = opt.effective_arity(width);
  std::vector<idx> survivors;
  survivors.reserve(static_cast<std::size_t>(nblocks));
  for (idx b = 0; b < nblocks; ++b) survivors.push_back(b);
  while (static_cast<idx>(survivors.size()) > 1) {
    GroupList groups;
    groups.reserve(
        static_cast<idx>((survivors.size() + static_cast<std::size_t>(arity) -
                          1) /
                         static_cast<std::size_t>(arity)),
        static_cast<idx>(survivors.size()));
    std::vector<idx> next;
    for (std::size_t g = 0; g < survivors.size();
         g += static_cast<std::size_t>(arity)) {
      const std::size_t end =
          std::min(survivors.size(), g + static_cast<std::size_t>(arity));
      groups.push_group(survivors.begin() + static_cast<std::ptrdiff_t>(g),
                        survivors.begin() + static_cast<std::ptrdiff_t>(end));
      next.push_back(survivors[g]);
    }
    survivors = std::move(next);
    spec.levels.push_back(std::move(groups));
  }
  return spec;
}

namespace detail {

inline void check_tree_spec(const TreeSpec& spec, idx rows, idx width);

// The uniform spec is a pure function of (rows, width, block_rows, arity):
// serving replays the same few panel shapes per request, so rebuilding (and
// re-validating) the spec every time was the largest steady-state
// allocation source after the GroupList flattening. Memoize per thread —
// std::map node stability lets callers hold the reference across
// insertions, and worker threads each serve a handful of shapes, so the
// map stays tiny. Wiped wholesale if it ever grows past a bound (a serving
// mix cycling through >256 shapes per thread re-plans, it doesn't leak).
inline const TreeSpec& cached_uniform_spec(idx rows, idx width,
                                           const TsqrOptions& opt) {
  using Key = std::array<idx, 4>;
  thread_local std::map<Key, TreeSpec> cache;
  const idx arity = opt.effective_arity(width);
  const Key key{rows, width, opt.block_rows, arity};
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  if (cache.size() >= 256) cache.clear();
  TreeSpec spec = uniform_tree_spec(rows, width, opt);
  check_tree_spec(spec, rows, width);
  return cache.emplace(key, std::move(spec)).first->second;
}

// Shared replay metadata for the uniform decomposition, memoized alongside
// the spec with the same key/bound policy. A warm hit is one shared_ptr
// copy — no allocation, no translation — which is what makes a PanelFactor
// metadata-free on the serving hot path.
inline std::shared_ptr<const ReplayMeta> cached_replay_meta(
    idx rows, idx width, const TsqrOptions& opt) {
  using Key = std::array<idx, 4>;
  thread_local std::map<Key, std::shared_ptr<const ReplayMeta>> cache;
  const idx arity = opt.effective_arity(width);
  const Key key{rows, width, opt.block_rows, arity};
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  if (cache.size() >= 256) cache.clear();
  auto meta = make_replay_meta(cached_uniform_spec(rows, width, opt));
  return cache.emplace(key, std::move(meta)).first->second;
}

// Structural validation of a spec against a (rows, width) panel: well-formed
// offsets, every block tall enough to hold a W x W triangle, every group
// member a distinct current survivor.
inline void check_tree_spec(const TreeSpec& spec, idx rows, idx width) {
  const idx nblocks = spec.num_blocks();
  CAQR_CHECK_MSG(nblocks >= 1, "tree spec needs at least one block");
  CAQR_CHECK(spec.offsets.front() == 0 && spec.offsets.back() == rows);
  for (idx b = 0; b < nblocks; ++b) {
    CAQR_CHECK_MSG(spec.offsets[static_cast<std::size_t>(b) + 1] -
                           spec.offsets[static_cast<std::size_t>(b)] >=
                       width,
                   "every level-0 block must be at least `width` rows tall");
  }
  std::vector<char> survivor(static_cast<std::size_t>(nblocks), 1);
  for (const auto& groups : spec.levels) {
    std::vector<char> used(static_cast<std::size_t>(nblocks), 0);
    for (idx gi = 0; gi < groups.size(); ++gi) {
      const auto g = groups[gi];
      CAQR_CHECK(!g.empty());
      for (std::size_t i = 0; i < g.size(); ++i) {
        const idx b = g[i];
        CAQR_CHECK(b >= 0 && b < nblocks);
        CAQR_CHECK_MSG(survivor[static_cast<std::size_t>(b)] &&
                           !used[static_cast<std::size_t>(b)],
                       "tree spec group member is not a distinct survivor");
        used[static_cast<std::size_t>(b)] = 1;
        if (i > 0) survivor[static_cast<std::size_t>(b)] = 0;  // consumed
      }
    }
  }
  idx remaining = 0;
  for (const char s : survivor) remaining += s;
  CAQR_CHECK_MSG(remaining == 1, "tree spec must reduce to a single survivor");
}

// One factorization attempt; folds every launch's severity into `sev`.
template <typename T>
PanelFactor<T> tsqr_factor_attempt(gpusim::Device& dev, gpusim::StreamId stream,
                                   MatrixView<T> panel, const TsqrOptions& opt,
                                   ft::Severity& sev) {
  const idx rows = panel.rows();
  const idx width = panel.cols();
  CAQR_CHECK(rows >= width && width >= 0);

  PanelFactor<T> f;
  f.rows = rows;
  f.width = width;
  if (width == 0) {
    auto meta = std::make_shared<ReplayMeta>();
    meta->offsets = {0, rows};
    f.meta = std::move(meta);
    return f;
  }
  // Custom providers are built, validated, and translated per call; the
  // uniform default comes from the per-thread memo and a warm hit is one
  // shared_ptr copy.
  {
    CAQR_PROF_SCOPE("tsqr.meta_build_ns");
    if (opt.tree_spec) {
      TreeSpec custom = opt.tree_spec(rows, width);
      check_tree_spec(custom, rows, width);
      f.meta = make_replay_meta(custom);
    } else {
      f.meta = cached_replay_meta(rows, width, opt);
    }
  }
  const ReplayMeta& meta = *f.meta;
  const idx nblocks = f.num_blocks();

  // Boundary guards only see data in Functional mode: ModelOnly panels are
  // storage-free placeholders.
  const bool functional = dev.mode() == gpusim::ExecMode::Functional;
  if (functional) CAQR_GUARD_FINITE(panel, "tsqr_factor:input");

  // Taus are written by run_block and read by apply — both functional-only.
  // ModelOnly requests skip the allocation (and its zero-fill): ~100 KB per
  // paper-scale panel that would never be touched. The kernels receive
  // data() == nullptr, which no ModelOnly path dereferences.
  if (functional) {
    f.taus0.assign(static_cast<std::size_t>(nblocks * width), T(0));
  }

  const auto cost = kernels::cost_params(opt.variant);
  const bool charge_transpose =
      opt.transposed_panels &&
      opt.variant == kernels::ReductionVariant::RegisterSerialTransposed;
  if (charge_transpose) {
    kernels::TransposeKernel<T> tk{rows, width, opt.block_rows};
    dev.launch(stream, tk, tk.num_blocks());
  }

  kernels::FactorKernel<T> fk{panel, &meta.offsets, f.taus0.data(), cost,
                              dev.model().uncoalesced_penalty,
                              dev.model().tile_locality_penalty};
  sev = ft::worse(sev, dev.launch(stream, fk, fk.num_blocks()));

  // Reduction tree over the surviving R triangles, one launch per level.
  // The groups are already in panel-row coordinates inside the shared
  // ReplayMeta; only this factorization's taus are allocated here.
  if (functional) f.taus.reserve(meta.levels.size());
  for (const auto& groups : meta.levels) {
    T* tau_ptr = nullptr;
    if (functional) {
      f.taus.emplace_back(static_cast<std::size_t>(groups.size()) *
                              static_cast<std::size_t>(width),
                          T(0));
      tau_ptr = f.taus.back().data();
    }
    kernels::FactorTreeKernel<T> tk{panel, &groups, tau_ptr, cost,
                                    dev.model().uncoalesced_penalty,
                                    dev.model().tile_locality_penalty};
    sev = ft::worse(sev, dev.launch(stream, tk, tk.num_blocks()));
  }
  if (functional) CAQR_GUARD_FINITE(panel, "tsqr_factor:output");
  return f;
}

}  // namespace detail

// Public seam of the structural spec validation (detail::check_tree_spec):
// aborts via CAQR_CHECK unless `spec` is a well-formed reduction tree for a
// (rows, width) panel. Custom tree_spec providers — the dist/ merged-replay
// specs and the topology-aware hierarchical trees in particular — are
// checked through this on every tsqr_factor call; tests and builders call
// it directly to validate emitted specs without running a factorization.
inline void validate_tree_spec(const TreeSpec& spec, idx rows, idx width) {
  detail::check_tree_spec(spec, rows, width);
}

// In-place TSQR factorization of `panel` on `dev`, with every kernel
// launched on `stream`. On return the panel holds R (top width x width,
// from the tree root at row offset 0) and the distributed reflectors of
// every stage. A zero-width panel is a well-defined no-op (LAPACK xGEQRF
// semantics for n == 0).
//
// `severity_out` (optional) is merged with the worst outcome of the whole
// factorization including panel-level recovery; `panel_retries_out`
// (optional) accumulates how many whole-panel recomputes ran.
template <typename T>
PanelFactor<T> tsqr_factor(gpusim::Device& dev, gpusim::StreamId stream,
                           MatrixView<T> panel, const TsqrOptions& opt,
                           ft::Severity* severity_out = nullptr,
                           int* panel_retries_out = nullptr) {
  const ft::FtOptions& ftopt = dev.fault_tolerance();
  ft::Severity sev = ft::Severity::Ok;
  const bool panel_redo = dev.mode() == gpusim::ExecMode::Functional &&
                          ftopt.abft && ftopt.recovery() &&
                          ftopt.max_panel_retries > 0 && panel.cols() > 0;
  Matrix<T> saved;
  if (panel_redo) saved = Matrix<T>::from(panel.as_const());
  PanelFactor<T> f = detail::tsqr_factor_attempt(dev, stream, panel, opt, sev);
  if (panel_redo) {
    int redo = 0;
    while (sev == ft::Severity::Unrecovered &&
           redo < ftopt.max_panel_retries) {
      panel.copy_from(saved.as_const());
      sev = ft::Severity::Ok;
      f = detail::tsqr_factor_attempt(dev, stream, panel, opt, sev);
      if (sev == ft::Severity::Ok) sev = ft::Severity::Corrected;
      ++redo;
    }
    if (panel_retries_out != nullptr) *panel_retries_out += redo;
  }
  if (severity_out != nullptr) *severity_out = ft::worse(*severity_out, sev);
  return f;
}

template <typename T>
PanelFactor<T> tsqr_factor(gpusim::Device& dev, MatrixView<T> panel,
                           const TsqrOptions& opt) {
  return tsqr_factor(dev, gpusim::kDefaultStream, panel, opt);
}

// Applies Q^T (transpose_q) or Q of a factored panel to `c`, which shares
// the panel's row space (c.rows() == panel.rows()), launching on `stream`.
// Zero-width panels and zero-column right-hand sides are no-ops.
template <typename T>
void tsqr_apply(gpusim::Device& dev, gpusim::StreamId stream,
                In<ConstMatrixView<T>> panel, const PanelFactor<T>& f,
                In<MatrixView<T>> c, const TsqrOptions& opt, bool transpose_q,
                ft::Severity* severity_out = nullptr) {
  CAQR_CHECK(panel.rows() == f.rows && panel.cols() == f.width);
  CAQR_CHECK(c.rows() == f.rows);
  if (c.cols() == 0 || f.width == 0) return;
  const auto cost = kernels::cost_params(opt.variant);
  const double pen = dev.model().uncoalesced_penalty;
  const double tile_pen = dev.model().tile_locality_penalty;

  auto note = [&](ft::Severity s) {
    if (severity_out != nullptr) *severity_out = ft::worse(*severity_out, s);
  };
  auto launch_h = [&] {
    kernels::ApplyQtHKernel<T> k{panel,         &f.offsets(), f.taus0.data(), c,
                                 opt.tile_cols, cost,         pen,
                                 tile_pen,      false,        transpose_q};
    note(dev.launch(stream, k, k.num_blocks()));
  };
  auto launch_tree = [&](idx l) {
    kernels::ApplyQtTreeKernel<T> k{panel,         &f.level_groups(l),
                                    f.level_taus(l), c,
                                    opt.tile_cols, cost,
                                    pen,           tile_pen,
                                    false,         transpose_q};
    note(dev.launch(stream, k, k.num_blocks()));
  };

  if (transpose_q) {
    // Q^T = Q_L^T ... Q_1^T Q_0^T: level 0 first, then up the tree.
    launch_h();
    for (idx l = 0; l < f.num_levels(); ++l) launch_tree(l);
  } else {
    // Q = Q_0 Q_1 ... Q_L: down the tree, level 0 last.
    for (idx l = f.num_levels() - 1; l >= 0; --l) launch_tree(l);
    launch_h();
  }
}

template <typename T>
void tsqr_apply(gpusim::Device& dev, In<ConstMatrixView<T>> panel,
                const PanelFactor<T>& f, In<MatrixView<T>> c,
                const TsqrOptions& opt, bool transpose_q) {
  tsqr_apply(dev, gpusim::kDefaultStream, panel, f, c, opt, transpose_q);
}

template <typename T>
void tsqr_apply_qt(gpusim::Device& dev, gpusim::StreamId stream,
                   In<ConstMatrixView<T>> panel, const PanelFactor<T>& f,
                   In<MatrixView<T>> c, const TsqrOptions& opt,
                   ft::Severity* severity_out = nullptr) {
  tsqr_apply(dev, stream, panel, f, c, opt, /*transpose_q=*/true,
             severity_out);
}

template <typename T>
void tsqr_apply_qt(gpusim::Device& dev, In<ConstMatrixView<T>> panel,
                   const PanelFactor<T>& f, In<MatrixView<T>> c,
                   const TsqrOptions& opt) {
  tsqr_apply(dev, gpusim::kDefaultStream, panel, f, c, opt,
             /*transpose_q=*/true);
}

template <typename T>
void tsqr_apply_q(gpusim::Device& dev, gpusim::StreamId stream,
                  In<ConstMatrixView<T>> panel, const PanelFactor<T>& f,
                  In<MatrixView<T>> c, const TsqrOptions& opt) {
  tsqr_apply(dev, stream, panel, f, c, opt, /*transpose_q=*/false);
}

template <typename T>
void tsqr_apply_q(gpusim::Device& dev, In<ConstMatrixView<T>> panel,
                  const PanelFactor<T>& f, In<MatrixView<T>> c,
                  const TsqrOptions& opt) {
  tsqr_apply(dev, gpusim::kDefaultStream, panel, f, c, opt,
             /*transpose_q=*/false);
}

// Convenience single-panel TSQR: factors a copy of `a` and returns
// (factored storage, metadata). R is the top width x width triangle of the
// factored storage.
template <typename T>
struct TsqrResult {
  Matrix<T> storage;  // factored panel (reflectors + R)
  PanelFactor<T> meta;

  Matrix<T> r() const {
    const idx w = meta.width;
    Matrix<T> out = Matrix<T>::zeros(w, w);
    for (idx j = 0; j < w; ++j) {
      for (idx i = 0; i <= j; ++i) out(i, j) = storage(i, j);
    }
    return out;
  }

  // Explicit thin Q (rows x width).
  Matrix<T> form_q(gpusim::Device& dev, const TsqrOptions& opt) const {
    Matrix<T> q = Matrix<T>::identity(meta.rows, meta.width);
    tsqr_apply_q(dev, storage.view(), meta, q.view(), opt);
    return q;
  }
};

template <typename VA>
TsqrResult<view_scalar_t<VA>> tsqr(gpusim::Device& dev, const VA& a,
                                   const TsqrOptions& opt = {}) {
  using T = view_scalar_t<VA>;
  TsqrResult<T> out{Matrix<T>::from(cview(a)), {}};
  out.meta = tsqr_factor(dev, out.storage.view(), opt);
  return out;
}

}  // namespace caqr::tsqr

#pragma once

// Online Robust PCA over a sliding window of frames.
//
// The batch solver (rpca/rpca.hpp) re-runs the full QR -> small-SVD pipeline
// inside every SVT iteration of every solve. For a continuously running
// camera stream that is wasted work: consecutive windows share all but one
// frame, so the window's R factor — the only input the small SVD needs —
// can be maintained incrementally. Per frame this solver does:
//
//   1. evict the oldest frame block + append the new one (SlidingWindowQr:
//      amortized one panel factor + O(1) combines, vs a full window refactor
//      per SVT iteration in the batch path);
//   2. small SVD of the window R (svd::small_svd_of_r — stage 2 of the
//      tall-skinny pipeline, identical charge);
//   3. background subspace V_k = leading right singular vectors capturing
//      `rank_energy` of the spectral energy; low-rank part of the new frame
//      L = f V_k V_k^T (two skinny GEMMs), sparse part S = shrink(f - L),
//      with the batch solver's default lambda at the frame's row count.
//
// Factor-drift detection: downdating by window re-blocking is verifier-
// bounded, not exact, so the maintained R accumulates backward error
// relative to a from-scratch factorization. The detector compares
// ||R||_F^2 against the running sum of squared frame norms (equal in exact
// arithmetic — the Gram trace is reduction-tree invariant); relative
// divergence beyond `drift_threshold` triggers a FULL REFACTOR from the
// retained raw frames. Every refactor is a typed DriftEvent, counted here
// and in the prof registry ("stream.drift_refactors") — never silent.

#include <cmath>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "baselines/gemm_model.hpp"
#include "common/profile.hpp"
#include "ft/checkpoint.hpp"
#include "linalg/blas3.hpp"
#include "linalg/norms.hpp"
#include "rpca/rpca.hpp"
#include "stream/sliding_window_qr.hpp"
#include "svd/tall_skinny_svd.hpp"

namespace caqr::stream {

struct OnlineRpcaOptions {
  idx cols = 64;           // feature width (downsampled pixels per row)
  idx frame_rows = 160;    // rows contributed by one frame block
  idx window_frames = 64;  // frames retained (window = frames x frame_rows)
  // l1 weight for the sparse part; 0 picks the batch solver's default at
  // the frame's max dimension.
  double lambda = 0.0;
  // Smallest k whose singular values capture this energy fraction is the
  // background rank.
  double rank_energy = 0.95;
  // Relative Gram-trace divergence that triggers a full refactor. The
  // default tolerates normal float accumulation over thousands of combines;
  // 0 forces a refactor every frame (used by tests to pin the drift path).
  double drift_threshold = 1e-3;
  svd::SmallSvd small_svd = svd::SmallSvd::Jacobi;
  int svd_max_sweeps = 60;
  double cpu_svd_gflops = 4.0;
  kernels::ReductionVariant variant =
      kernels::ReductionVariant::RegisterSerialTransposed;
};

// One counted factor-drift refactor (typed, per the batch solver's
// "never silently degrade" rule).
struct DriftEvent {
  std::int64_t frame_index = 0;  // 0-based frame that tripped the detector
  double gram_drift = 0.0;       // relative ||R||_F^2 divergence observed
};

template <typename T>
struct FrameOutput {
  Matrix<T> low_rank;    // frame_rows x cols background estimate
  Matrix<T> sparse;      // frame_rows x cols foreground (soft-thresholded)
  idx rank = 0;          // background subspace rank used
  double residual_ratio = 0.0;  // ||f - L - S||_F / ||f||_F
  bool warmup = false;   // window still under `cols` rows; no SVD ran
  bool drift_refactor = false;  // this frame triggered a full refactor
  bool svd_converged = true;
  double simulated_seconds = 0.0;  // device time this frame consumed
};

template <typename T>
class OnlineRpca {
 public:
  explicit OnlineRpca(const OnlineRpcaOptions& opt)
      : opt_(opt), window_(opt.cols, opt.variant) {
    CAQR_CHECK(opt.cols >= 1 && opt.frame_rows >= 1 && opt.window_frames >= 1);
    CAQR_CHECK(opt.frame_rows * opt.window_frames >= opt.cols);
  }

  const OnlineRpcaOptions& options() const { return opt_; }
  std::int64_t frames_seen() const { return frames_seen_; }
  const std::vector<DriftEvent>& drift_events() const { return drift_events_; }
  const SlidingWindowQr<T>& window() const { return window_; }
  // Non-const: reading the window R may lazily combine (and charge) once.
  SlidingWindowQr<T>& window() { return window_; }

  // Consumes one frame_rows x cols frame; returns its low-rank/sparse split.
  // Degenerate frames surface as tsqr::StreamUpdateError from the window
  // (typed — the serving layer refuses the request, the stream lives on).
  FrameOutput<T> consume(gpusim::Device& dev, ConstMatrixView<T> frame) {
    CAQR_CHECK(frame.rows() == opt_.frame_rows && frame.cols() == opt_.cols);
    const double t0 = dev.elapsed_seconds();
    FrameOutput<T> out{Matrix<T>::zeros(opt_.frame_rows, opt_.cols),
                       Matrix<T>::zeros(opt_.frame_rows, opt_.cols)};

    if (static_cast<idx>(frames_.size()) == opt_.window_frames) {
      window_.evict(dev);
      const double f2 = frob_sq(frames_.front().view());
      window_sq_ -= f2;
      frames_.pop_front();
    }
    window_.append(dev, frame);
    frames_.push_back(Matrix<T>::from(frame));
    window_sq_ += frob_sq(frame);

    const bool functional = dev.mode() == gpusim::ExecMode::Functional;
    if (window_.rows() < opt_.cols) {
      // Warmup: not enough rows for an R triangle yet. Everything is
      // foreground until the background model exists.
      out.warmup = true;
      if (functional) out.sparse.view().copy_from(frame);
      out.residual_ratio = 1.0;
      ++frames_seen_;
      out.simulated_seconds = dev.elapsed_seconds() - t0;
      return out;
    }

    // Factor-drift check on the maintained R (see header). ModelOnly runs
    // carry zero matrices, so the detector only runs functionally.
    if (functional) {
      const double r2 = frob_sq(window_.r(dev).view());
      const double drift =
          window_sq_ > 0 ? std::abs(r2 - window_sq_) / window_sq_ : 0.0;
      if (drift >= opt_.drift_threshold) {
        refactor(dev);
        out.drift_refactor = true;
        drift_events_.push_back(DriftEvent{frames_seen_, drift});
        prof::counter("stream.drift_refactors").add(1);
      }
    }

    // Small SVD of the window R -> background subspace -> frame split.
    const auto rs = svd::small_svd_of_r(dev, window_.r(dev).view(), svd_opt());
    baselines::charge_gemm(dev, opt_.frame_rows, opt_.cols, opt_.cols,
                           "stream_project");
    if (functional) {
      out.svd_converged = rs.converged;
      double total = 0.0, cum = 0.0;
      for (const T s : rs.sigma) total += static_cast<double>(s) * s;
      idx k = 0;
      while (k < opt_.cols && cum < opt_.rank_energy * total) {
        const double s = static_cast<double>(rs.sigma[static_cast<std::size_t>(k)]);
        cum += s * s;
        ++k;
      }
      out.rank = std::max<idx>(k, 1);

      // L = (f V_k) V_k^T: two skinny GEMMs against the k leading right
      // singular vectors (charged above as one cols-wide projection).
      const auto vk = rs.v.view().block(0, 0, opt_.cols, out.rank);
      Matrix<T> proj = Matrix<T>::zeros(opt_.frame_rows, out.rank);
      gemm(Trans::No, Trans::No, T(1), frame, vk, T(0), proj.view());
      gemm(Trans::No, Trans::Yes, T(1), proj.view(), vk, T(0),
           out.low_rank.view());

      const double lambda = opt_.lambda > 0
                                ? opt_.lambda
                                : rpca::default_rpca_lambda(std::max(
                                      opt_.frame_rows, opt_.cols));
      for (idx j = 0; j < opt_.cols; ++j) {
        for (idx i = 0; i < opt_.frame_rows; ++i) {
          out.sparse(i, j) = frame(i, j) - out.low_rank(i, j);
        }
      }
      rpca::shrink(out.sparse.view(), static_cast<T>(lambda));

      double resid = 0.0;
      const double fnorm = frobenius_norm(frame);
      for (idx j = 0; j < opt_.cols; ++j) {
        for (idx i = 0; i < opt_.frame_rows; ++i) {
          const double d = static_cast<double>(frame(i, j)) -
                           out.low_rank(i, j) - out.sparse(i, j);
          resid += d * d;
        }
      }
      out.residual_ratio = fnorm > 0 ? std::sqrt(resid) / fnorm : 0.0;
    }
    ++frames_seen_;
    out.simulated_seconds = dev.elapsed_seconds() - t0;
    return out;
  }

  // -- Checkpoint: options, counters, retained raw frames, and the embedded
  //    window state — everything needed for a BIT-identical continuation on
  //    another worker's device (stream migration). --

  void save(ft::CheckpointWriter& w, const std::string& prefix) const {
    w.scalar(prefix + "cols", static_cast<std::int64_t>(opt_.cols));
    w.scalar(prefix + "frame_rows",
             static_cast<std::int64_t>(opt_.frame_rows));
    w.scalar(prefix + "window_frames",
             static_cast<std::int64_t>(opt_.window_frames));
    w.scalar(prefix + "lambda", opt_.lambda);
    w.scalar(prefix + "rank_energy", opt_.rank_energy);
    w.scalar(prefix + "drift_threshold", opt_.drift_threshold);
    w.scalar(prefix + "small_svd", static_cast<std::int32_t>(opt_.small_svd));
    w.scalar(prefix + "svd_max_sweeps", opt_.svd_max_sweeps);
    w.scalar(prefix + "cpu_svd_gflops", opt_.cpu_svd_gflops);
    w.scalar(prefix + "variant", static_cast<std::int32_t>(opt_.variant));
    w.scalar(prefix + "frames_seen", frames_seen_);
    w.scalar(prefix + "window_sq", window_sq_);
    w.scalar(prefix + "retained",
             static_cast<std::int64_t>(frames_.size()));
    for (std::size_t i = 0; i < frames_.size(); ++i) {
      w.matrix(prefix + "frame." + std::to_string(i), frames_[i].view());
    }
    std::vector<std::int64_t> drift_frames;
    std::vector<double> drift_mags;
    for (const auto& e : drift_events_) {
      drift_frames.push_back(e.frame_index);
      drift_mags.push_back(e.gram_drift);
    }
    w.vec(prefix + "drift_frames", drift_frames);
    w.vec(prefix + "drift_mags", drift_mags);
    window_.save(w, prefix + "win.");
  }

  static std::optional<OnlineRpca<T>> load(const ft::CheckpointReader& r,
                                           const std::string& prefix) {
    OnlineRpcaOptions opt;
    std::int64_t cols = 0, frame_rows = 0, window_frames = 0, retained = 0;
    std::int32_t small_svd = 0, variant = 0;
    if (!r.scalar(prefix + "cols", cols) ||
        !r.scalar(prefix + "frame_rows", frame_rows) ||
        !r.scalar(prefix + "window_frames", window_frames) ||
        !r.scalar(prefix + "lambda", opt.lambda) ||
        !r.scalar(prefix + "rank_energy", opt.rank_energy) ||
        !r.scalar(prefix + "drift_threshold", opt.drift_threshold) ||
        !r.scalar(prefix + "small_svd", small_svd) ||
        !r.scalar(prefix + "svd_max_sweeps", opt.svd_max_sweeps) ||
        !r.scalar(prefix + "cpu_svd_gflops", opt.cpu_svd_gflops) ||
        !r.scalar(prefix + "variant", variant) ||
        !r.scalar(prefix + "retained", retained) || cols < 1 ||
        frame_rows < 1 || window_frames < 1 || retained < 0 ||
        retained > window_frames) {
      return std::nullopt;
    }
    opt.cols = static_cast<idx>(cols);
    opt.frame_rows = static_cast<idx>(frame_rows);
    opt.window_frames = static_cast<idx>(window_frames);
    opt.small_svd = static_cast<svd::SmallSvd>(small_svd);
    opt.variant = static_cast<kernels::ReductionVariant>(variant);
    OnlineRpca<T> out(opt);
    if (!r.scalar(prefix + "frames_seen", out.frames_seen_) ||
        !r.scalar(prefix + "window_sq", out.window_sq_)) {
      return std::nullopt;
    }
    for (std::int64_t i = 0; i < retained; ++i) {
      Matrix<T> f;
      if (!r.matrix(prefix + "frame." + std::to_string(i), f) ||
          f.rows() != opt.frame_rows || f.cols() != opt.cols) {
        return std::nullopt;
      }
      out.frames_.push_back(std::move(f));
    }
    std::vector<std::int64_t> drift_frames;
    std::vector<double> drift_mags;
    if (!r.vec(prefix + "drift_frames", drift_frames) ||
        !r.vec(prefix + "drift_mags", drift_mags) ||
        drift_frames.size() != drift_mags.size()) {
      return std::nullopt;
    }
    for (std::size_t i = 0; i < drift_frames.size(); ++i) {
      out.drift_events_.push_back(DriftEvent{drift_frames[i], drift_mags[i]});
    }
    auto win = SlidingWindowQr<T>::load(r, prefix + "win.");
    if (!win || win->width() != opt.cols) return std::nullopt;
    out.window_ = std::move(*win);
    return out;
  }

 private:
  svd::TallSkinnySvdOptions svd_opt() const {
    svd::TallSkinnySvdOptions o;
    o.small_svd = opt_.small_svd;
    o.svd_max_sweeps = opt_.svd_max_sweeps;
    o.cpu_svd_gflops = opt_.cpu_svd_gflops;
    return o;
  }

  static double frob_sq(ConstMatrixView<T> a) {
    const double f = frobenius_norm(a);
    return f * f;
  }

  // Full refactor from the retained raw frames: a fresh left-deep window
  // (the bit-exact from-scratch factorization of the current contents),
  // charged in full to the device — the honest cost of recovering from
  // drift. The Gram baseline resets to the refactored contents.
  void refactor(gpusim::Device& dev) {
    SlidingWindowQr<T> fresh(opt_.cols, opt_.variant);
    double sq = 0.0;
    for (const auto& f : frames_) {
      fresh.append(dev, f.view());
      sq += frob_sq(f.view());
    }
    window_ = std::move(fresh);
    window_sq_ = sq;
  }

  OnlineRpcaOptions opt_;
  SlidingWindowQr<T> window_;
  std::deque<Matrix<T>> frames_;  // raw window contents, oldest first
  double window_sq_ = 0.0;        // running sum of squared frame norms
  std::int64_t frames_seen_ = 0;
  std::vector<DriftEvent> drift_events_;
};

}  // namespace caqr::stream

#pragma once

// Multi-tenant streaming service: N simulated camera streams, each an
// OnlineRpca pipeline, driven through serve::SolverPool.
//
// Request lifecycle of one frame (docs/ARCHITECTURE.md):
//
//   CameraStream::step                       (generate frame, deterministic)
//     -> SolverPool::submit_task             (tenant = stream id, weighted
//        [admission: shed / backpressure]     fair share, deadline, priority)
//     -> worker dequeues                     (deficit round-robin)
//        [deadline re-check at dequeue and after planning]
//     -> OnlineRpca::consume on the worker's device
//        (window evict+append -> small SVD of R -> L/S split; factor-drift
//         refactor when the Gram detector trips)
//     -> per-stream latency histogram + simulated-seconds accounting
//
// Frames are deterministic functions of (stream seed, frame index) through
// the splittable Rng — no generator state exists, so a stream checkpoint is
// exactly its OnlineRpca state, and a frame skipped on deadline expiry is
// regenerated bit-identically on the next attempt.
//
// Stream migration: checkpoint_to/resume_from wrap the OnlineRpca
// checkpoint in one ft/checkpoint.hpp container (checksummed, atomic). A
// resumed stream continues BIT-identically on any worker's device — the
// factor state and retained frames travel; nothing depends on which
// simulated GPU runs the next frame. StreamServer::migrate_stream is the
// serving-layer wrapper the bench times.
//
// Latency percentiles export through prof::histogram ("stream.<id>.latency",
// wall ns from submission to completed solve) into the bench artifact;
// fair-share starvation lives in serve::PoolStats.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/prng.hpp"
#include "common/profile.hpp"
#include "serve/solver_pool.hpp"
#include "stream/online_rpca.hpp"

namespace caqr::stream {

struct StreamConfig {
  int id = 0;                // tenant id in the pool; unique per stream
  std::uint64_t seed = 1;    // frame-content seed
  OnlineRpcaOptions rpca;
  double fps = 25.0;             // offered frame rate (feasibility model)
  double deadline_seconds = 0;   // host budget per frame; 0 = none
  int priority = 0;
  double weight = 1.0;           // fair-share weight (tenant_weights)
  // Synthetic scene: rank of the background subspace, fraction of pixels
  // carrying sparse foreground, and additive noise level.
  idx background_rank = 3;
  double sparse_fraction = 0.02;
  double noise = 1e-3;
  // A scene cut every this many frames rotates the background subspace
  // (exercises rank tracking); 0 = static scene.
  std::int64_t scene_shift_every = 0;
};

// One camera: deterministic synthetic frames + the online-RPCA state that
// consumes them. Device is passed per step (any worker may serve a frame).
template <typename T>
class CameraStream {
 public:
  explicit CameraStream(const StreamConfig& cfg)
      : cfg_(cfg), rpca_(cfg.rpca) {
    CAQR_CHECK(cfg.background_rank >= 1 &&
               cfg.background_rank <= cfg.rpca.cols);
  }

  const StreamConfig& config() const { return cfg_; }
  const OnlineRpca<T>& rpca() const { return rpca_; }
  OnlineRpca<T>& rpca() { return rpca_; }
  std::int64_t frames_seen() const { return rpca_.frames_seen(); }

  // The frame at `index`, a pure function of (seed, index): background
  // U_epoch * w_index (low rank across a window) + sparse spikes + noise.
  Matrix<T> make_frame(std::int64_t index) const {
    const idx rows = cfg_.rpca.frame_rows, cols = cfg_.rpca.cols;
    const idx r = cfg_.background_rank;
    Matrix<T> f = Matrix<T>::zeros(rows, cols);

    // Background factors are keyed on the scene epoch, far from the
    // per-frame stream ids so the two never collide.
    const std::int64_t epoch =
        cfg_.scene_shift_every > 0 ? index / cfg_.scene_shift_every : 0;
    Rng bg(cfg_.seed, 0x4261636BULL + static_cast<std::uint64_t>(epoch));
    std::vector<double> u(static_cast<std::size_t>(rows) *
                          static_cast<std::size_t>(r));
    std::vector<double> v(static_cast<std::size_t>(cols) *
                          static_cast<std::size_t>(r));
    for (auto& x : u) x = bg.normal();
    for (auto& x : v) x = bg.normal();

    Rng fr(cfg_.seed, static_cast<std::uint64_t>(index));
    // Per-frame mixing weights keep the window's column space rank-r while
    // varying frame to frame.
    std::vector<double> w(static_cast<std::size_t>(r));
    for (auto& x : w) x = 1.0 + 0.1 * fr.normal();
    for (idx j = 0; j < cols; ++j) {
      for (idx i = 0; i < rows; ++i) {
        double s = 0.0;
        for (idx k = 0; k < r; ++k) {
          s += w[static_cast<std::size_t>(k)] *
               u[static_cast<std::size_t>(k * rows + i)] *
               v[static_cast<std::size_t>(k * cols + j)];
        }
        f(i, j) = static_cast<T>(s + cfg_.noise * fr.normal());
      }
    }
    // Sparse foreground: a few large-magnitude spikes.
    const auto spikes = static_cast<std::int64_t>(
        cfg_.sparse_fraction * static_cast<double>(rows) *
        static_cast<double>(cols));
    for (std::int64_t s = 0; s < spikes; ++s) {
      const idx i = static_cast<idx>(fr.next_below(
          static_cast<std::uint64_t>(rows)));
      const idx j = static_cast<idx>(fr.next_below(
          static_cast<std::uint64_t>(cols)));
      f(i, j) += static_cast<T>(fr.uniform(5.0, 10.0) *
                                (fr.next_double() < 0.5 ? -1.0 : 1.0));
    }
    return f;
  }

  // Generates and consumes the next frame. Frame index == frames_seen, so
  // a frame dropped before consume (deadline expiry) is regenerated
  // bit-identically on retry.
  FrameOutput<T> step(gpusim::Device& dev) {
    const Matrix<T> f = make_frame(rpca_.frames_seen());
    return rpca_.consume(dev, f.view());
  }

  bool checkpoint_to(const std::string& path) const {
    ft::CheckpointWriter w;
    w.scalar("stream.id", static_cast<std::int64_t>(cfg_.id));
    w.scalar("stream.seed", cfg_.seed);
    rpca_.save(w, "stream.rpca.");
    return w.write(path);
  }

  // Resumes `cfg`'s stream from a checkpoint written by checkpoint_to.
  // Empty optional if the file is invalid or belongs to a different
  // (id, seed) — migrating the wrong stream is a refused, not silent, error.
  static std::optional<CameraStream<T>> resume_from(const StreamConfig& cfg,
                                                    const std::string& path) {
    const auto r = ft::CheckpointReader::load(path);
    if (!r) return std::nullopt;
    std::int64_t id = 0;
    std::uint64_t seed = 0;
    if (!r->scalar("stream.id", id) || id != cfg.id ||
        !r->scalar("stream.seed", seed) || seed != cfg.seed) {
      return std::nullopt;
    }
    auto rp = OnlineRpca<T>::load(*r, "stream.rpca.");
    if (!rp) return std::nullopt;
    CameraStream<T> out(cfg);
    out.rpca_ = std::move(*rp);
    return out;
  }

 private:
  StreamConfig cfg_;
  OnlineRpca<T> rpca_;
};

struct StreamServeOptions {
  serve::PoolOptions pool;  // fair_share + tenant_weights are wired here
  std::vector<StreamConfig> streams;
};

// Per-round service outcome across all streams.
struct RoundResult {
  long long done = 0;
  long long expired = 0;
  long long shed = 0;
  long long rejected = 0;
  // Largest per-frame simulated device time this round — the feasibility
  // number: a stream set is sustained at `fps` iff every frame's simulated
  // service time fits in 1/fps with `workers` devices sharing the load.
  double max_frame_sim_seconds = 0;
};

template <typename T>
class StreamServer {
 public:
  explicit StreamServer(StreamServeOptions opt) : opt_(std::move(opt)) {
    CAQR_CHECK(!opt_.streams.empty());
    opt_.pool.fair_share = true;
    for (const auto& s : opt_.streams) {
      opt_.pool.tenant_weights[s.id] = s.weight;
    }
    pool_ = std::make_unique<serve::SolverPool>(opt_.pool);
    for (const auto& s : opt_.streams) {
      streams_.push_back(std::make_unique<CameraStream<T>>(s));
      sim_seconds_.push_back(0.0);
      last_frame_sim_.push_back(0.0);
    }
  }

  static std::string latency_histogram_name(int stream_id) {
    return "stream." + std::to_string(stream_id) + ".latency";
  }

  std::size_t stream_count() const { return streams_.size(); }
  const CameraStream<T>& stream(std::size_t i) const { return *streams_[i]; }
  CameraStream<T>& stream(std::size_t i) { return *streams_[i]; }
  serve::SolverPool& pool() { return *pool_; }
  // Total simulated device seconds stream i's frames have consumed.
  double stream_sim_seconds(std::size_t i) const { return sim_seconds_[i]; }

  // Submits one frame per stream (concurrently — each stream has at most
  // one request in flight, so per-stream state is race-free), waits for the
  // round, and tallies outcomes.
  RoundResult run_round() {
    std::vector<std::future<serve::RequestStatus>> futs;
    futs.reserve(streams_.size());
    // Zeroed before submission (a slot is written only by its own stream's
    // task, so there is exactly one writer per slot per round).
    for (auto& s : last_frame_sim_) s = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      const StreamConfig& cfg = streams_[i]->config();
      serve::RequestOptions req;
      req.tenant = cfg.id;
      req.priority = cfg.priority;
      req.deadline_seconds = cfg.deadline_seconds;
      prof::Histogram& lat = prof::histogram(latency_histogram_name(cfg.id));
      futs.push_back(pool_->submit_task(
          [this, i, t0, &lat](gpusim::Device& dev) {
            const FrameOutput<T> out = streams_[i]->step(dev);
            sim_seconds_[i] += out.simulated_seconds;
            last_frame_sim_[i] = out.simulated_seconds;
            lat.record(std::chrono::duration<double, std::nano>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
          },
          req));
    }
    RoundResult res;
    for (std::size_t i = 0; i < futs.size(); ++i) {
      switch (futs[i].get()) {
        case serve::RequestStatus::Done: ++res.done; break;
        case serve::RequestStatus::DeadlineExpired: ++res.expired; break;
        case serve::RequestStatus::Shed: ++res.shed; break;
        case serve::RequestStatus::Rejected: ++res.rejected; break;
      }
    }
    for (const double s : last_frame_sim_) {
      res.max_frame_sim_seconds = std::max(res.max_frame_sim_seconds, s);
    }
    return res;
  }

  // Checkpoints stream i, tears down its in-memory state, and resumes it
  // from disk — the serving-side migration the bench times. The pool keeps
  // running throughout; only the migrating stream pauses. False (stream
  // untouched) if the checkpoint round-trip fails validation.
  bool migrate_stream(std::size_t i, const std::string& path) {
    CAQR_CHECK(i < streams_.size());
    if (!streams_[i]->checkpoint_to(path)) return false;
    auto resumed =
        CameraStream<T>::resume_from(streams_[i]->config(), path);
    if (!resumed) return false;
    streams_[i] =
        std::make_unique<CameraStream<T>>(std::move(*resumed));
    return true;
  }

 private:
  StreamServeOptions opt_;
  std::unique_ptr<serve::SolverPool> pool_;
  std::vector<std::unique_ptr<CameraStream<T>>> streams_;
  std::vector<double> sim_seconds_;      // one writer per slot (its stream)
  std::vector<double> last_frame_sim_;   // this round's per-stream sim time
};

}  // namespace caqr::stream

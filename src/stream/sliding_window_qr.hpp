#pragma once

// SlidingWindowQr: the R factor of a rows x cols window of a row stream,
// maintained under append (new frame block) + evict (oldest frame block) at
// amortized panel cost instead of a from-scratch refactorization per frame.
//
// This is the streaming primitive the online video workload needs (ROADMAP
// item 4): a camera stream is an append-only row source, and the window the
// service factors every frame differs from the previous one by one appended
// block and one evicted block. Demmel-Grigori-Hoemmen-Langou's sequential
// CAQR analysis shows panel-at-a-time updating is communication-optimal for
// exactly this access pattern; the GPU-friendly primitive underneath is the
// same stacked-triangle combine TSQR uses (Thies & Röhrig-Zöllner).
//
// Algorithm: the two-stack sliding-window aggregation scheme, with
// "aggregate" = the R triangle of vertically stacked blocks and "combine" =
// the binary caterpillar step of tsqr/incremental.hpp (stack two W x W
// triangles, re-factor with stacked_geqr2). The combine is associative in
// exact arithmetic (R^T R terms add), so any grouping yields a valid R:
//
//   * back stack  — appended blocks, aggregated LEFT-DEEP as they arrive:
//     exactly the caterpillar chain of IncrementalTsqr, so an append-only
//     window's R is BIT-IDENTICAL to a from-scratch TSQR of the window run
//     over the same block decomposition (the combine arithmetic of
//     stacked_geqr2 only ever reads the upper triangles it stacks — see the
//     bit-identity tests against a caterpillar tsqr_factor tree spec).
//   * front stack — older blocks, each holding the precomputed SUFFIX
//     aggregate (this block combined with every younger front block). The
//     top of the front stack is the oldest block; evicting it is O(1).
//     When the front stack empties, the back stack is "flipped": suffix
//     aggregates are built newest-to-oldest (k-1 combines for k blocks) and
//     the back stack resets. Every block is flipped at most once, so the
//     amortized cost per append+evict is one block factor plus O(1)
//     combines — vs one factor + combine PER RETAINED BLOCK for a
//     from-scratch refactor (the >= 5x at window 10k x 64 gated in
//     BENCH_stream_serve.json).
//
// The window R after evictions combines front-suffix with back-aggregate —
// a different (but valid) reduction tree than from-scratch, so the
// downdated R is equivalent only up to backward error: the numerics
// Verifier's Gram-residual bound (condition-number independent) is the
// contract, enforced across cond 1e0..1e12 by tests/test_stream.cpp.
// Downdating by re-blocking was chosen over hyperbolic (Householder
// downdate) rotations deliberately: re-blocking is unconditionally stable,
// while downdating a nearly rank-deficient window is inherently
// ill-conditioned.
//
// Degenerate updates are TYPED errors (tsqr::StreamUpdateError), never
// asserts: a zero-row append or an evict/read that would leave the window
// under `cols` rows throws, so the serving layer refuses the request and
// keeps the stream alive.
//
// Every factor/combine is charged to the gpusim::Device timeline passed per
// call ("window_factor" / "window_combine" ops) — passing the device per
// call rather than binding it lets a checkpointed window resume on another
// worker's device (stream migration, ft/checkpoint.hpp).

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ft/checkpoint.hpp"
#include "gpusim/device.hpp"
#include "kernels/block_ops.hpp"
#include "kernels/kernels.hpp"
#include "linalg/matrix.hpp"
#include "tsqr/incremental.hpp"

namespace caqr::stream {

template <typename T>
class SlidingWindowQr {
 public:
  explicit SlidingWindowQr(idx width,
                           kernels::ReductionVariant variant =
                               kernels::ReductionVariant::
                                   RegisterSerialTransposed)
      : width_(width), variant_(variant) {
    CAQR_CHECK(width >= 1);
  }

  idx width() const { return width_; }
  idx rows() const { return total_rows_; }
  idx blocks() const {
    return static_cast<idx>(front_.size() + back_.size());
  }
  bool empty() const { return blocks() == 0; }

  // Lifetime counters (amortized-cost accounting for the bench).
  long long factors() const { return factors_; }
  long long combines() const { return combines_; }
  long long flips() const { return flips_; }

  // Appends one row block (>= 1 rows; heights >= width combine at full
  // panel efficiency). Charges one block factor plus one caterpillar
  // combine. A zero-row block is a typed StreamUpdateError.
  void append(gpusim::Device& dev, ConstMatrixView<T> block) {
    CAQR_CHECK(block.cols() == width_);
    if (block.rows() < 1) {
      throw tsqr::StreamUpdateError(
          tsqr::StreamUpdateError::Kind::ZeroRowAppend, block.rows(), width_,
          total_rows_);
    }
    const idx h = block.rows();
    Block b;
    b.rows = h;
    b.r = Matrix<T>::zeros(width_, width_);
    if (dev.mode() == gpusim::ExecMode::Functional) {
      Matrix<T> work = Matrix<T>::from(block);
      std::vector<T> tau(static_cast<std::size_t>(std::min(h, width_)));
      kernels::block_geqr2(work.view(), tau.data());
      const idx rrows = std::min(h, width_);
      for (idx j = 0; j < width_; ++j) {
        for (idx i = 0; i < std::min<idx>(j + 1, rrows); ++i) {
          b.r(i, j) = work(i, j);
        }
      }
    }
    charge_factor(dev, h);
    ++factors_;
    if (back_.empty()) {
      back_agg_ = b.r.clone();
    } else {
      back_agg_ = combine(dev, back_agg_, b.r);
    }
    back_.push_back(std::move(b));
    total_rows_ += h;
    cache_valid_ = false;
  }

  // Evicts the oldest block (the granularity of eviction is the granularity
  // of past appends). Amortized O(1) combines: a flip of the back stack
  // happens only when the front stack is exhausted, and each block is
  // flipped at most once in its lifetime. Throws a typed StreamUpdateError
  // when the evict would shrink the window below `width` rows (no room for
  // the R triangle). Returns the number of rows evicted.
  idx evict(gpusim::Device& dev) {
    if (empty()) {
      throw tsqr::StreamUpdateError(
          tsqr::StreamUpdateError::Kind::WindowUnderflow, 0, width_, 0);
    }
    const idx oldest =
        front_.empty() ? back_.front().rows : front_.back().block.rows;
    if (total_rows_ - oldest < width_) {
      throw tsqr::StreamUpdateError(
          tsqr::StreamUpdateError::Kind::WindowUnderflow, oldest, width_,
          total_rows_ - oldest);
    }
    if (front_.empty()) flip(dev);
    const idx evicted = front_.back().block.rows;
    front_.pop_back();
    total_rows_ -= evicted;
    cache_valid_ = false;
    return evicted;
  }

  // The window R (width x width, upper triangular, zeros below the
  // diagonal). Combines the two stacks on first read after a mutation (one
  // charged combine when both stacks are non-empty); cached until the next
  // append/evict. Reading an underfull window (< width rows) is a typed
  // StreamUpdateError.
  const Matrix<T>& r(gpusim::Device& dev) {
    if (total_rows_ < width_) {
      throw tsqr::StreamUpdateError(
          tsqr::StreamUpdateError::Kind::WindowUnderflow, 0, width_,
          total_rows_);
    }
    if (!cache_valid_) {
      if (front_.empty()) {
        cache_ = back_agg_.clone();
      } else if (back_.empty()) {
        cache_ = front_.back().suffix.clone();
      } else {
        cache_ = combine(dev, front_.back().suffix, back_agg_);
      }
      cache_valid_ = true;
    }
    return cache_;
  }

  // -- Checkpoint (ft/checkpoint.hpp): the full update state — per-block R
  //    triangles of both stacks, suffix aggregates, the back aggregate, and
  //    the cached window R — so a resumed window continues BIT-identically
  //    (same combines on the same values) on any device. Sections are
  //    namespaced under `prefix` so owners (OnlineRpca) can embed the
  //    window inside their own checkpoint. --

  void save(ft::CheckpointWriter& w, const std::string& prefix) const {
    w.scalar(prefix + "version", kStateVersion);
    w.scalar(prefix + "width", static_cast<std::int64_t>(width_));
    w.scalar(prefix + "variant", static_cast<std::int32_t>(variant_));
    w.scalar(prefix + "total_rows", static_cast<std::int64_t>(total_rows_));
    w.scalar(prefix + "factors", factors_);
    w.scalar(prefix + "combines", combines_);
    w.scalar(prefix + "flips", flips_);
    std::vector<std::int64_t> frows, brows;
    for (const auto& e : front_) frows.push_back(e.block.rows);
    for (const auto& b : back_) brows.push_back(b.rows);
    w.vec(prefix + "front_rows", frows);
    w.vec(prefix + "back_rows", brows);
    for (std::size_t i = 0; i < front_.size(); ++i) {
      w.matrix(prefix + "front_r." + std::to_string(i),
               front_[i].block.r.view());
      w.matrix(prefix + "front_suffix." + std::to_string(i),
               front_[i].suffix.view());
    }
    for (std::size_t i = 0; i < back_.size(); ++i) {
      w.matrix(prefix + "back_r." + std::to_string(i), back_[i].r.view());
    }
    if (!back_.empty()) w.matrix(prefix + "back_agg", back_agg_.view());
    w.scalar(prefix + "cache_valid",
             static_cast<std::uint8_t>(cache_valid_ ? 1 : 0));
    if (cache_valid_) w.matrix(prefix + "cache", cache_.view());
  }

  // Empty optional on any validation failure (missing/mis-shaped section):
  // the caller falls back to a fresh window instead of resuming garbage.
  static std::optional<SlidingWindowQr<T>> load(
      const ft::CheckpointReader& r, const std::string& prefix) {
    std::int32_t version = 0, variant = 0;
    std::int64_t width = 0, total_rows = 0;
    if (!r.scalar(prefix + "version", version) || version != kStateVersion ||
        !r.scalar(prefix + "width", width) || width < 1 ||
        !r.scalar(prefix + "variant", variant) ||
        !r.scalar(prefix + "total_rows", total_rows)) {
      return std::nullopt;
    }
    SlidingWindowQr<T> out(static_cast<idx>(width),
                           static_cast<kernels::ReductionVariant>(variant));
    if (!r.scalar(prefix + "factors", out.factors_) ||
        !r.scalar(prefix + "combines", out.combines_) ||
        !r.scalar(prefix + "flips", out.flips_)) {
      return std::nullopt;
    }
    std::vector<std::int64_t> frows, brows;
    if (!r.vec(prefix + "front_rows", frows) ||
        !r.vec(prefix + "back_rows", brows)) {
      return std::nullopt;
    }
    std::int64_t rows_seen = 0;
    for (std::size_t i = 0; i < frows.size(); ++i) {
      FrontEntry e;
      e.block.rows = static_cast<idx>(frows[i]);
      if (e.block.rows < 1 ||
          !r.matrix(prefix + "front_r." + std::to_string(i), e.block.r) ||
          !r.matrix(prefix + "front_suffix." + std::to_string(i), e.suffix) ||
          e.block.r.rows() != width || e.block.r.cols() != width ||
          e.suffix.rows() != width || e.suffix.cols() != width) {
        return std::nullopt;
      }
      rows_seen += frows[i];
      out.front_.push_back(std::move(e));
    }
    for (std::size_t i = 0; i < brows.size(); ++i) {
      Block b;
      b.rows = static_cast<idx>(brows[i]);
      if (b.rows < 1 ||
          !r.matrix(prefix + "back_r." + std::to_string(i), b.r) ||
          b.r.rows() != width || b.r.cols() != width) {
        return std::nullopt;
      }
      rows_seen += brows[i];
      out.back_.push_back(std::move(b));
    }
    if (rows_seen != total_rows) return std::nullopt;
    out.total_rows_ = static_cast<idx>(total_rows);
    if (!out.back_.empty()) {
      if (!r.matrix(prefix + "back_agg", out.back_agg_) ||
          out.back_agg_.rows() != width || out.back_agg_.cols() != width) {
        return std::nullopt;
      }
    }
    std::uint8_t cached = 0;
    if (!r.scalar(prefix + "cache_valid", cached)) return std::nullopt;
    if (cached != 0) {
      if (!r.matrix(prefix + "cache", out.cache_) ||
          out.cache_.rows() != width || out.cache_.cols() != width) {
        return std::nullopt;
      }
      out.cache_valid_ = true;
    }
    return out;
  }

 private:
  static constexpr std::int32_t kStateVersion = 1;

  struct Block {
    idx rows = 0;
    Matrix<T> r;  // width x width, upper triangular, zeros below
  };
  struct FrontEntry {
    Block block;
    // This block's R combined with every younger front block (see header).
    Matrix<T> suffix;
  };

  // The binary caterpillar combine: R of [top; bottom] stacked, exactly the
  // arithmetic of IncrementalTsqr::push / the factor_tree kernel (only
  // upper-triangle entries are read, so results are bitwise comparable).
  Matrix<T> combine(gpusim::Device& dev, const Matrix<T>& top,
                    const Matrix<T>& bottom) {
    Matrix<T> out = Matrix<T>::zeros(width_, width_);
    if (dev.mode() == gpusim::ExecMode::Functional) {
      Matrix<T> stack = Matrix<T>::zeros(2 * width_, width_);
      stack.view().block(0, 0, width_, width_).copy_from(top.view());
      for (idx j = 0; j < width_; ++j) {
        for (idx i = 0; i <= j; ++i) stack(width_ + i, j) = bottom(i, j);
      }
      std::vector<T> tau(static_cast<std::size_t>(width_));
      std::vector<T> scratch(static_cast<std::size_t>(1 + width_));
      kernels::stacked_geqr2(stack.view(), width_, 2, tau.data(),
                             scratch.data());
      for (idx j = 0; j < width_; ++j) {
        for (idx i = 0; i <= j; ++i) out(i, j) = stack(i, j);
      }
    }
    charge_combine(dev);
    ++combines_;
    return out;
  }

  // Rebuilds the front stack from the back stack: suffix aggregates
  // newest-to-oldest, so the front top is the oldest block and carries the
  // aggregate of everything flipped. k - 1 combines for k blocks.
  void flip(gpusim::Device& dev) {
    CAQR_CHECK(front_.empty() && !back_.empty());
    for (std::size_t i = back_.size(); i-- > 0;) {
      FrontEntry e;
      e.suffix = front_.empty()
                     ? back_[i].r.clone()
                     : combine(dev, back_[i].r, front_.back().suffix);
      e.block = std::move(back_[i]);
      front_.push_back(std::move(e));
    }
    back_.clear();
    back_agg_ = Matrix<T>();
    ++flips_;
  }

  void charge_factor(gpusim::Device& dev, idx h) {
    kernels::CostOnlyKernel k{
        "window_factor",
        kernels::detail::householder_block_stats(
            kernels::block_geqr2_flops(h, width_),
            static_cast<double>(h) * width_,
            static_cast<double>(std::min(h, width_)),
            (2.0 * h * width_ + width_) * sizeof(T) *
                dev.model().tile_locality_penalty,
            kernels::cost_params(variant_), dev.model().uncoalesced_penalty,
            h, width_)};
    dev.launch(k, 1);
  }

  void charge_combine(gpusim::Device& dev) {
    kernels::CostOnlyKernel k{
        "window_combine",
        kernels::detail::householder_block_stats(
            kernels::stacked_geqr2_flops(width_, 2),
            2.0 * static_cast<double>(width_) * width_,
            static_cast<double>(width_),
            (2.0 * 2 * width_ * width_ + width_) * sizeof(T),
            kernels::cost_params(variant_),
            dev.model().uncoalesced_penalty)};
    dev.launch(k, 1);
  }

  idx width_;
  kernels::ReductionVariant variant_;
  std::vector<FrontEntry> front_;  // back() = oldest block (next evict)
  std::vector<Block> back_;        // oldest first; left-deep aggregate below
  Matrix<T> back_agg_;             // caterpillar R of the back stack
  Matrix<T> cache_;                // window R, valid iff cache_valid_
  bool cache_valid_ = false;
  idx total_rows_ = 0;
  long long factors_ = 0;
  long long combines_ = 0;
  long long flips_ = 0;
};

}  // namespace caqr::stream

#pragma once

// Cost parameterization of the paper's four reduction strategies (§IV.E).
//
// All four strategies compute the same matrix-vector product + rank-1 update
// sequence; they differ in where the block lives (shared memory vs register
// file), how column reductions are carried out (parallel vs serial), and
// whether panels were pre-transposed for coalesced, broadcast-friendly
// access. Functionally the kernels are identical; the variant changes only
// the per-block cost counters, which is exactly the axis the paper tunes.
//
// The constants below were calibrated once so that the apply_qt_h microbench
// on 128 x 16 blocks reproduces the paper's reported 55 / 168 / 194 / 388
// GFLOPS ladder on the C2050 model, then frozen (see EXPERIMENTS.md).

namespace caqr::kernels {

enum class ReductionVariant {
  SmemParallelReduction,     // §IV.E.1: 55 GFLOPS
  SmemSerialReduction,       // §IV.E.2: 168 GFLOPS
  RegisterSerialReduction,   // §IV.E.3: 194 GFLOPS
  RegisterSerialTransposed,  // §IV.E.4: 388 GFLOPS (default)
};

struct KernelCostParams {
  // Multiplier on ideal FMA issue cycles (idle lanes in badly shaped
  // reductions, non-FMA instruction mix).
  double issue_mult = 1.0;
  // Shared-memory transactions per 32 lane-FMAs (operand staging, partial
  // sums, Householder-vector broadcast).
  double smem_per_fma32 = 1.0;
  // Block-wide barriers per processed reflector.
  double syncs_per_reflector = 2.0;
  // Whether global-memory block loads/stores are coalesced (pre-transposed
  // panels) or strided (column-major panels read row-wise).
  bool coalesced = true;
  // Register-file-resident layouts suffer two block-shape effects the
  // autotuner (Figure 7) trades off: shared-memory replay pressure when the
  // Householder vector is broadcast to threads owning wide column sets
  // (width beyond u_width_ref), and spilling once the block no longer fits
  // the per-thread register budget (63 registers x 64 threads on Fermi).
  bool register_resident = false;
  double u_width_ref = 16.0;
  double regfile_capacity_elems = 2560.0;
  double spill_smem_per_fma32 = 3.0;
};

inline KernelCostParams cost_params(ReductionVariant v) {
  switch (v) {
    case ReductionVariant::SmemParallelReduction:
      // Thread-per-row layout: consecutive parallel reductions leave most
      // lanes idle (issue_mult) and hammer shared memory, with a barrier per
      // reduction step.
      return {4.2, 11.1, 16.0, true, false};
    case ReductionVariant::SmemSerialReduction:
      // Full thread utilization, but every operand of every FMA is a
      // shared-memory access.
      return {1.0, 4.44, 2.0, true, false};
    case ReductionVariant::RegisterSerialReduction:
      // Operands in registers, but the cyclic ownership must be built by an
      // in-kernel transpose through shared memory on every call.
      return {1.0, 3.62, 2.0, true, true};
    case ReductionVariant::RegisterSerialTransposed:
      // Pre-transposed panels: registers feed the FMAs, shared memory only
      // carries per-column partials and the u broadcast.
      return {1.0, 0.95, 2.0, true, true};
  }
  return {};
}

inline const char* variant_name(ReductionVariant v) {
  switch (v) {
    case ReductionVariant::SmemParallelReduction:
      return "smem_parallel_reduction";
    case ReductionVariant::SmemSerialReduction:
      return "smem_serial_reduction";
    case ReductionVariant::RegisterSerialReduction:
      return "register_serial_reduction";
    case ReductionVariant::RegisterSerialTransposed:
      return "register_serial_transposed";
  }
  return "unknown";
}

}  // namespace caqr::kernels

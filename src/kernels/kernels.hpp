#pragma once

// The four CAQR kernels (§IV.D) as simulated-GPU kernels, plus the panel
// transpose preprocessing kernel and a generic cost-only kernel used by the
// analytically-modeled baselines.
//
// Each kernel is a value type holding views into the factorization state; a
// Device::launch() runs its blocks (functionally and/or cost-only). Blocks
// always write disjoint regions, so functional execution is deterministic
// for any thread-pool size.

#include <algorithm>
#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/group_list.hpp"
#include "common/small_vec.hpp"
#include "gpusim/stats.hpp"
#include "kernels/block_ops.hpp"
#include "kernels/cost_params.hpp"
#include "linalg/matrix.hpp"

namespace caqr::kernels {

using gpusim::BlockStats;

namespace detail {

// stats_summary return type: launch summaries hold a handful of classes
// (block heights x tile kinds), so inline storage keeps the per-launch
// ModelOnly cost path off the heap entirely.
using StatsSummary = SmallVec<gpusim::StatsClass, 8>;

// Class dedup by linear scan over inline storage — the keys are block
// heights or tree fan-ins, of which real launches have one or two; a
// std::map here costs a node allocation per class per launch.
using ClassCounts = SmallVec<std::pair<idx, idx>, 8>;

inline void bump_class(ClassCounts& counts, idx key, idx by = 1) {
  for (auto& [k, c] : counts) {
    if (k == key) {
      c += by;
      return;
    }
  }
  counts.push_back({key, by});
}

// Shared cost model for the Householder-core kernels: `flops` of useful
// arithmetic plus `staged_elems` block-staging element moves, under a given
// reduction-strategy parameterization.
inline BlockStats householder_block_stats(double flops, double staged_elems,
                                          double reflectors, double gmem_bytes,
                                          const KernelCostParams& p,
                                          double uncoalesced_penalty,
                                          idx block_h = 0, idx block_w = 0) {
  BlockStats s;
  s.flops = flops;
  const double fma32 = flops / 2.0 / 32.0;  // ideal 32-lane FMA issue slots
  s.issue_cycles = fma32 * p.issue_mult + staged_elems / 32.0;
  s.smem_accesses = fma32 * p.smem_per_fma32;
  s.syncs = reflectors * p.syncs_per_reflector;
  s.gmem_bytes = gmem_bytes * (p.coalesced ? 1.0 : uncoalesced_penalty);
  if (p.register_resident && block_h > 0 && block_w > 0) {
    // Block-shape effects behind the Figure 7 block-size optimum.
    const double elems = static_cast<double>(block_h) * block_w;
    if (static_cast<double>(block_w) > p.u_width_ref) {
      // u-broadcast replay: threads owning whole (or multiple) columns all
      // walk the full Householder vector through shared memory.
      s.smem_accesses +=
          fma32 * 0.5 * (static_cast<double>(block_w) / p.u_width_ref - 1.0);
    }
    if (elems > p.regfile_capacity_elems) {
      // The block no longer fits the register file: the overflow fraction
      // behaves like the shared-memory-resident variant.
      const double spill_fraction = 1.0 - p.regfile_capacity_elems / elems;
      s.smem_accesses += fma32 * p.spill_smem_per_fma32 * spill_fraction;
    }
  }
  return s;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// factor: independent QR of every row block of a panel.
// ---------------------------------------------------------------------------

template <typename T>
struct FactorKernel {
  MatrixView<T> panel;              // (panel rows) x w
  const std::vector<idx>* offsets;  // nblocks + 1 row offsets into panel
  T* taus;                          // w scalars per block, contiguous
  KernelCostParams cost;
  double uncoalesced_penalty = 8.0;
  double tile_penalty = 1.0;  // DRAM page-locality factor for tall tiles
  bool resident = false;      // cache-hot microbenchmark: no gmem traffic

  // Opts into ABFT guarding (ft/abft.hpp) for real scalar types; the
  // flop-counting scalar has no meaningful norms to checksum.
  static constexpr bool kAbftSupported = std::is_floating_point_v<T>;

  const char* name() const { return "factor"; }
  idx num_blocks() const { return static_cast<idx>(offsets->size()) - 1; }
  MatrixView<T> fault_surface() const { return panel; }

  void run_block(idx b) const {
    const idx r0 = (*offsets)[static_cast<std::size_t>(b)];
    const idx r1 = (*offsets)[static_cast<std::size_t>(b) + 1];
    const idx h = r1 - r0;
    const idx w = panel.cols();
    auto blk = panel.block(r0, 0, h, w);
    if (blk.ld() != h) {
      // Tall-panel block: columns sit a full panel stride apart, so the
      // factorization's column sweeps thrash cache lines and TLB entries.
      // Stage the block contiguously (the host-side analogue of the
      // kernel's fast-memory tile), factor, and copy back. Same scalar
      // operations on the same values — bit-identical results.
      ArenaScope scope(Arena::thread_scratch());
      T* buf = scope.alloc<T>(h * w);
      MatrixView<T> s(buf, h, w, h);
      s.copy_from(blk.as_const());
      block_geqr2(s, taus + b * w);
      blk.copy_from(s.as_const());
    } else {
      block_geqr2(blk, taus + b * w);
    }
  }

  BlockStats block_stats(idx b) const {
    const idx r0 = (*offsets)[static_cast<std::size_t>(b)];
    const idx r1 = (*offsets)[static_cast<std::size_t>(b) + 1];
    return stats_for(r1 - r0);
  }

  // Paper-scale panels split into thousands of uniform blocks plus one
  // remainder: a handful of height classes covers the whole grid, so
  // ModelOnly cost accounting is O(classes) instead of O(blocks).
  detail::StatsSummary stats_summary() const {
    detail::ClassCounts height_counts;
    const idx nb = num_blocks();
    for (idx b = 0; b < nb; ++b) {
      detail::bump_class(height_counts,
                         (*offsets)[static_cast<std::size_t>(b) + 1] -
                             (*offsets)[static_cast<std::size_t>(b)]);
    }
    detail::StatsSummary out;
    for (const auto& [h, count] : height_counts) {
      out.push_back({stats_for(h), count});
    }
    return out;
  }

 private:
  BlockStats stats_for(idx h) const {
    const idx w = panel.cols();
    const double elems = static_cast<double>(h) * static_cast<double>(w);
    const double bytes =
        resident ? 0.0 : (2.0 * elems + w) * sizeof(T) * tile_penalty;
    return detail::householder_block_stats(block_geqr2_flops(h, w), elems,
                                           static_cast<double>(std::min(h, w)),
                                           bytes, cost, uncoalesced_penalty,
                                           h, w);
  }
};

// ---------------------------------------------------------------------------
// factor_tree: one reduction-tree combine per group of stacked R triangles.
// ---------------------------------------------------------------------------

template <typename T>
struct FactorTreeKernel {
  MatrixView<T> panel;  // the panel holding the R triangles being combined
  // groups[g] lists the panel-row offsets of the W x W triangles in group g;
  // the first entry receives the combined R.
  const GroupList* groups;
  T* taus;  // w scalars per group, contiguous
  KernelCostParams cost;
  double uncoalesced_penalty = 8.0;
  double tile_penalty = 1.0;
  bool resident = false;

  static constexpr bool kAbftSupported = std::is_floating_point_v<T>;

  const char* name() const { return "factor_tree"; }
  idx num_blocks() const { return groups->size(); }
  MatrixView<T> fault_surface() const { return panel; }

  void run_block(idx g) const {
    const auto rows = (*groups)[g];
    const idx k = static_cast<idx>(rows.size());
    const idx w = panel.cols();
    if (k < 2) return;  // singleton group passes through
    // Gather the stacked triangles, factor, scatter back in place. The
    // stack and the combine scratch come from the per-thread arena — same
    // column-major layout a freshly allocated Matrix would have, so the
    // arithmetic (and its result bits) are unchanged; every element is
    // written before it is read.
    ArenaScope scope(Arena::thread_scratch());
    T* sbuf = scope.alloc<T>(static_cast<std::size_t>(k * w) *
                             static_cast<std::size_t>(w));
    MatrixView<T> stack(sbuf, k * w, w, k * w);
    for (idx b = 0; b < k; ++b) {
      stack.block(b * w, 0, w, w)
          .copy_from(panel.as_const().block(rows[static_cast<std::size_t>(b)], 0, w, w));
    }
    T* scratch = scope.alloc<T>(static_cast<std::size_t>(1 + (k - 1) * w));
    stacked_geqr2(stack, w, k, taus + g * w, scratch);
    for (idx b = 0; b < k; ++b) {
      panel.block(rows[static_cast<std::size_t>(b)], 0, w, w)
          .copy_from(stack.as_const().block(b * w, 0, w, w));
    }
  }

  BlockStats block_stats(idx g) const {
    return stats_for(groups->group_size(g));
  }

  // Uniform-arity trees have one or two distinct fan-ins per level: O(1)
  // classes for paper-scale ModelOnly accounting.
  detail::StatsSummary stats_summary() const {
    detail::ClassCounts fanin_counts;
    const idx ng = groups->size();
    for (idx g = 0; g < ng; ++g) {
      detail::bump_class(fanin_counts, groups->group_size(g));
    }
    detail::StatsSummary out;
    for (const auto& [k, count] : fanin_counts) {
      out.push_back({stats_for(k), count});
    }
    return out;
  }

 private:
  BlockStats stats_for(idx k) const {
    const idx w = panel.cols();
    if (k < 2) return BlockStats{};
    // Triangles are gathered from k distinct panel locations: the loads are
    // coalesced within a triangle row but the groups are scattered, so no
    // additional penalty beyond the variant's.
    const double elems = static_cast<double>(k) * w * w;
    const double bytes =
        resident ? 0.0 : (2.0 * elems + w) * sizeof(T) * tile_penalty;
    return detail::householder_block_stats(stacked_geqr2_flops(w, k), elems,
                                           static_cast<double>(w), bytes, cost,
                                           uncoalesced_penalty);
  }
};

// ---------------------------------------------------------------------------
// apply_qt_h: apply the level-0 Q^T of each factored panel block across the
// trailing matrix. Grid = (row blocks) x (column tiles).
// ---------------------------------------------------------------------------

template <typename T>
struct ApplyQtHKernel {
  ConstMatrixView<T> panel;         // factored panel (U below diagonals)
  const std::vector<idx>* offsets;  // nblocks + 1 row offsets into panel
  const T* taus;                    // w scalars per block
  MatrixView<T> trailing;           // same row space as panel
  idx tile_cols = 16;               // trailing-tile width per block
  KernelCostParams cost;
  double uncoalesced_penalty = 8.0;
  double tile_penalty = 1.0;
  bool resident = false;
  bool transpose_q = true;  // apply Q^T (factorization) or Q (form/apply Q)

  static constexpr bool kAbftSupported = std::is_floating_point_v<T>;

  const char* name() const { return transpose_q ? "apply_qt_h" : "apply_q_h"; }
  MatrixView<T> fault_surface() const { return trailing; }
  idx num_row_blocks() const { return static_cast<idx>(offsets->size()) - 1; }
  idx num_col_tiles() const {
    return (trailing.cols() + tile_cols - 1) / tile_cols;
  }
  idx num_blocks() const { return num_row_blocks() * num_col_tiles(); }

  void run_block(idx b) const {
    const idx rb = b / num_col_tiles();
    const idx ct = b % num_col_tiles();
    const idx r0 = (*offsets)[static_cast<std::size_t>(rb)];
    const idx r1 = (*offsets)[static_cast<std::size_t>(rb) + 1];
    const idx h = r1 - r0;
    const idx w = panel.cols();
    const idx c0 = ct * tile_cols;
    const idx nc = std::min(tile_cols, trailing.cols() - c0);
    auto v = panel.block(r0, 0, h, w);
    auto c = trailing.block(r0, c0, h, nc);
    if (v.ld() != h || c.ld() != h) {
      // Both operands stride by the full panel height between columns;
      // the reflector sweep re-reads v for every trailing column, so
      // stage both contiguously (the fast-memory tile of the simulated
      // kernel), apply, and copy the tile back. Bit-identical: the same
      // scalar operations run on the same values in the same order.
      ArenaScope scope(Arena::thread_scratch());
      T* vbuf = scope.alloc<T>(h * w);
      T* cbuf = scope.alloc<T>(h * nc);
      MatrixView<T> vs(vbuf, h, w, h);
      MatrixView<T> cs(cbuf, h, nc, h);
      vs.copy_from(v);
      cs.copy_from(c.as_const());
      if (transpose_q) {
        block_apply_qt(vs.as_const(), taus + rb * w, cs);
      } else {
        block_apply_q(vs.as_const(), taus + rb * w, cs);
      }
      c.copy_from(cs.as_const());
    } else if (transpose_q) {
      block_apply_qt(v, taus + rb * w, c);
    } else {
      block_apply_q(v, taus + rb * w, c);
    }
  }

  BlockStats block_stats(idx b) const {
    const idx rb = b / num_col_tiles();
    const idx ct = b % num_col_tiles();
    const idx r0 = (*offsets)[static_cast<std::size_t>(rb)];
    const idx r1 = (*offsets)[static_cast<std::size_t>(rb) + 1];
    const idx nc = std::min(tile_cols, trailing.cols() - ct * tile_cols);
    return stats_for(r1 - r0, nc);
  }

  // Blocks fall into (distinct row-block heights) x (full tile, last tile)
  // classes; paper-scale launches have millions of blocks but only a
  // handful of classes.
  detail::StatsSummary stats_summary() const {
    detail::ClassCounts height_counts;
    const idx nrb = num_row_blocks();
    for (idx rb = 0; rb < nrb; ++rb) {
      detail::bump_class(height_counts,
                         (*offsets)[static_cast<std::size_t>(rb) + 1] -
                             (*offsets)[static_cast<std::size_t>(rb)]);
    }
    const idx tiles = num_col_tiles();
    const idx last_nc = trailing.cols() - (tiles - 1) * tile_cols;
    detail::StatsSummary out;
    for (const auto& [h, count] : height_counts) {
      if (tiles > 1) {
        out.push_back({stats_for(h, tile_cols), count * (tiles - 1)});
      }
      out.push_back({stats_for(h, last_nc), count});
    }
    return out;
  }

 private:
  BlockStats stats_for(idx h, idx nc) const {
    const idx w = panel.cols();
    // Staging: the C tile is loaded and stored; U is loaded once.
    const double tile_elems = static_cast<double>(h) * nc;
    const double u_elems = static_cast<double>(h) * w;
    const double bytes =
        resident ? 0.0
                 : (2.0 * tile_elems + u_elems) * sizeof(T) * tile_penalty;
    // Block-shape effects are governed by the C tile (h x nc): in the
    // register-resident design it is the tile that lives in the register
    // file (paper Figure 5/6), so tile width drives u-broadcast pressure
    // and tile size drives spill.
    return detail::householder_block_stats(
        block_apply_qt_flops(h, w, nc), tile_elems + u_elems,
        static_cast<double>(std::min(h, w)), bytes, cost, uncoalesced_penalty,
        h, nc);
  }
};

// ---------------------------------------------------------------------------
// apply_qt_tree: apply one tree level's stacked-triangle Q^T to the matching
// distributed rows of the trailing matrix. Grid = (groups) x (column tiles).
// ---------------------------------------------------------------------------

template <typename T>
struct ApplyQtTreeKernel {
  ConstMatrixView<T> panel;  // factored panel holding the tree-level U's
  const GroupList* groups;
  const T* taus;           // w scalars per group
  MatrixView<T> trailing;  // same row space as panel
  idx tile_cols = 16;
  KernelCostParams cost;
  double uncoalesced_penalty = 8.0;
  double tile_penalty = 1.0;
  bool resident = false;
  bool transpose_q = true;

  static constexpr bool kAbftSupported = std::is_floating_point_v<T>;

  const char* name() const {
    return transpose_q ? "apply_qt_tree" : "apply_q_tree";
  }
  MatrixView<T> fault_surface() const { return trailing; }
  idx num_col_tiles() const {
    return (trailing.cols() + tile_cols - 1) / tile_cols;
  }
  idx num_blocks() const { return groups->size() * num_col_tiles(); }

  void run_block(idx b) const {
    const idx g = b / num_col_tiles();
    const idx ct = b % num_col_tiles();
    const auto rows = (*groups)[g];
    const idx k = static_cast<idx>(rows.size());
    if (k < 2) return;
    const idx w = panel.cols();
    const idx c0 = ct * tile_cols;
    const idx nc = std::min(tile_cols, trailing.cols() - c0);

    // Gather the distributed U triangles and trailing row groups into
    // arena-backed stacks (same layout a fresh Matrix would have — the
    // combine arithmetic and its result bits are unchanged; every element
    // is written by the gather before it is read).
    ArenaScope scope(Arena::thread_scratch());
    T* ubuf = scope.alloc<T>(static_cast<std::size_t>(k * w) *
                             static_cast<std::size_t>(w));
    T* cbuf = scope.alloc<T>(static_cast<std::size_t>(k * w) *
                             static_cast<std::size_t>(nc));
    MatrixView<T> u(ubuf, k * w, w, k * w);
    MatrixView<T> c(cbuf, k * w, nc, k * w);
    for (idx blk = 0; blk < k; ++blk) {
      const idx r = rows[static_cast<std::size_t>(blk)];
      u.block(blk * w, 0, w, w).copy_from(panel.block(r, 0, w, w));
      c.block(blk * w, 0, w, nc)
          .copy_from(trailing.as_const().block(r, c0, w, nc));
    }
    if (transpose_q) {
      stacked_apply_qt(u.as_const(), w, k, taus + g * w, c);
    } else {
      stacked_apply_q(u.as_const(), w, k, taus + g * w, c);
    }
    for (idx blk = 0; blk < k; ++blk) {
      const idx r = rows[static_cast<std::size_t>(blk)];
      trailing.block(r, c0, w, nc).copy_from(c.as_const().block(blk * w, 0, w, nc));
    }
  }

  BlockStats block_stats(idx b) const {
    const idx g = b / num_col_tiles();
    const idx ct = b % num_col_tiles();
    const idx k = groups->group_size(g);
    const idx nc = std::min(tile_cols, trailing.cols() - ct * tile_cols);
    return stats_for(k, nc);
  }

  // Classes: (distinct group fan-ins k) x (full tile, last tile).
  detail::StatsSummary stats_summary() const {
    detail::ClassCounts fanin_counts;
    const idx ng = groups->size();
    for (idx g = 0; g < ng; ++g) {
      detail::bump_class(fanin_counts, groups->group_size(g));
    }
    const idx tiles = num_col_tiles();
    const idx last_nc = trailing.cols() - (tiles - 1) * tile_cols;
    detail::StatsSummary out;
    for (const auto& [k, count] : fanin_counts) {
      if (tiles > 1) {
        out.push_back({stats_for(k, tile_cols), count * (tiles - 1)});
      }
      out.push_back({stats_for(k, last_nc), count});
    }
    return out;
  }

 private:
  BlockStats stats_for(idx k, idx nc) const {
    if (k < 2) return BlockStats{};
    const idx w = panel.cols();
    const double c_elems = static_cast<double>(k) * w * nc;
    const double u_elems = static_cast<double>(k) * w * w;
    // The row groups are scattered across the matrix ("irregular and
    // somewhat sparse", §II.C): the tree update's traffic is charged an
    // extra 1.5x on top of the tile-locality penalty.
    const double bytes =
        resident ? 0.0
                 : (2.0 * c_elems + u_elems) * sizeof(T) * tile_penalty * 1.5;
    return detail::householder_block_stats(
        stacked_apply_qt_flops(w, k, nc), c_elems + u_elems,
        static_cast<double>(w), bytes, cost, uncoalesced_penalty);
  }
};

// ---------------------------------------------------------------------------
// transpose: out-of-place panel transpose preprocessing (§IV.E.4). The
// simulator keeps data column-major regardless (layout is a performance
// artifact, not a numerical one), so this kernel is cost-only: it charges
// the streaming read + strided write of the panel.
// ---------------------------------------------------------------------------

template <typename T>
struct TransposeKernel {
  idx rows = 0;
  idx cols = 0;
  idx block_rows = 128;

  const char* name() const { return "transpose"; }
  idx num_blocks() const { return (rows + block_rows - 1) / block_rows; }

  void run_block(idx) const {}

  BlockStats block_stats(idx b) const {
    const idx r0 = b * block_rows;
    return stats_for(std::min(block_rows, rows - r0));
  }

  // Every block is block_rows tall except a possible remainder: at most two
  // classes regardless of panel height.
  detail::StatsSummary stats_summary() const {
    const idx nb = num_blocks();
    const idx last_h = rows - (nb - 1) * block_rows;
    detail::StatsSummary out;
    if (nb > 1 && last_h != block_rows) {
      out.push_back({stats_for(block_rows), nb - 1});
      out.push_back({stats_for(last_h), 1});
    } else {
      out.push_back({stats_for(std::min(block_rows, rows)), nb});
    }
    return out;
  }

 private:
  BlockStats stats_for(idx h) const {
    BlockStats s;
    const double elems = static_cast<double>(h) * cols;
    // Staged through shared memory to keep both sides coalesced.
    s.issue_cycles = 2.0 * elems / 32.0;
    s.smem_accesses = 2.0 * elems / 32.0;
    s.syncs = 1.0;
    s.gmem_bytes = 2.0 * elems * sizeof(T);
    return s;
  }
};

// ---------------------------------------------------------------------------
// Cost-only kernel with uniform per-block stats, used by the analytically
// modeled baselines (their numerics run on the host reference routines).
// ---------------------------------------------------------------------------

struct CostOnlyKernel {
  const char* kname = "cost_only";
  BlockStats per_block;

  const char* name() const { return kname; }
  void run_block(idx) const {}
  BlockStats block_stats(idx) const { return per_block; }
};

}  // namespace caqr::kernels

#pragma once

// Numerical cores of the four CAQR kernels, with exact operation counts.
//
// These routines deliberately use branch-free, data-oblivious arithmetic
// (plain sqrt-of-sum-of-squares norms, no early exits on zero tails for
// generic inputs) so that the *_flops companions return the exact number of
// floating-point operations the functional path executes. That exactness is
// what lets ExecMode::ModelOnly produce bit-identical simulated timelines to
// ExecMode::Functional, and it is verified by tests with a counting scalar
// type. Flop convention: mul, add, sub, div, sqrt each count 1.
//
// The layout contract mirrors the paper's kernels (§IV.D):
//   * block_geqr2      — `factor`: Householder QR of one H x W block held in
//                        fast memory; U overwrites the subdiagonal, R the top.
//   * block_apply_qt   — `apply_qt_h`: apply Q^T of a factored block to a
//                        trailing tile of the same height.
//   * stacked_geqr2    — `factor_tree`: QR of k vertically stacked W x W
//                        upper-triangular R factors, exploiting the sparsity
//                        pattern (each reflector touches only the pivot row
//                        and rows 0..j of the lower triangles).
//   * stacked_apply_qt — `apply_qt_tree`: apply the stacked-triangle Q^T to
//                        the matching distributed rows of the trailing matrix.

#include <cmath>
#include <limits>
#include <type_traits>

#include "linalg/householder.hpp"
#include "linalg/matrix.hpp"

namespace caqr::kernels {

// ---------------------------------------------------------------------------
// Scalar helpers (data-oblivious fast paths used only inside kernels).
// ---------------------------------------------------------------------------

// Householder generation without the scaled-norm guard: 3n + 4 flops for a
// length-n vector (n >= 2) with a nonzero tail; 0 flops when n <= 1.
// A zero tail yields tau == 0 via the ss == 0 test without extra flops.
//
// Ill-scaled columns — squares that overflow, or tails that underflow to a
// subnormal (or zero) sum — fall back to the scaled-norm, xLARFG-rescaling
// make_householder. The flop model deliberately excludes that rescue path:
// it never triggers for the well-scaled data the cost model (and the
// counting-scalar flop tests) cover, and the simulated clock only reads
// block_stats(), so timelines are unaffected either way.
template <typename T>
T fast_make_householder(idx n, T& alpha, T* x_rest) {
  if (n <= 1) return T(0);
  T ss = T(0);
  for (idx i = 0; i < n - 1; ++i) ss += x_rest[i] * x_rest[i];  // 2(n-1)
  if constexpr (std::is_floating_point_v<T>) {
    const T safmin = std::numeric_limits<T>::min();
    const T overflow_guard = std::numeric_limits<T>::max() / T(4);
    if (ss < safmin) {
      bool tail_nonzero = false;
      for (idx i = 0; i < n - 1 && !tail_nonzero; ++i) {
        tail_nonzero = x_rest[i] != T(0);
      }
      if (tail_nonzero) return make_householder(n, alpha, x_rest);
    }
    if (!(ss < overflow_guard) || !(alpha * alpha < overflow_guard)) {
      return make_householder(n, alpha, x_rest);
    }
  }
  if (ss == T(0)) return T(0);
  using std::sqrt;
  const T norm = sqrt(alpha * alpha + ss);                       // 3
  const T beta = alpha >= T(0) ? -norm : norm;
  const T tau = (beta - alpha) / beta;                           // 2
  const T inv = T(1) / (alpha - beta);                           // 2
  for (idx i = 0; i < n - 1; ++i) x_rest[i] *= inv;              // n-1
  alpha = beta;
  return tau;
}

inline double make_householder_flops(idx n) {
  return n <= 1 ? 0.0 : 3.0 * static_cast<double>(n) + 4.0;
}

// Applies H = I - tau v v^T (v[0] == 1 implicit) to one column of length L:
// 4L - 2 flops (two length-(L-1) fused loops plus the tau*w scale and the
// pivot update).
template <typename T>
void apply_reflector_column(idx len, T tau, const T* v_rest, T* col) {
  T w = col[0];
  for (idx i = 0; i < len - 1; ++i) w += v_rest[i] * col[i + 1];  // 2(L-1)
  const T tw = tau * w;                                           // 1
  col[0] -= tw;                                                   // 1
  for (idx i = 0; i < len - 1; ++i) col[i + 1] -= tw * v_rest[i]; // 2(L-1)
}

inline double apply_reflector_column_flops(idx len) {
  return 4.0 * static_cast<double>(len) - 2.0;
}

// ---------------------------------------------------------------------------
// factor: dense QR of an H x W block.
// ---------------------------------------------------------------------------

template <typename T>
void block_geqr2(MatrixView<T> a, T* tau) {
  const idx m = a.rows(), n = a.cols();
  const idx kmax = m < n ? m : n;
  for (idx k = 0; k < kmax; ++k) {
    T* colk = a.col(k) + k;
    tau[k] = fast_make_householder(m - k, colk[0], colk + 1);
    if (tau[k] == T(0)) continue;
    for (idx j = k + 1; j < n; ++j) {
      apply_reflector_column(m - k, tau[k], colk + 1, a.col(j) + k);
    }
  }
}

inline double block_geqr2_flops(idx m, idx n) {
  double f = 0;
  const idx kmax = m < n ? m : n;
  for (idx k = 0; k < kmax; ++k) {
    const idx len = m - k;
    f += make_householder_flops(len);
    if (len > 1) f += static_cast<double>(n - k - 1) * apply_reflector_column_flops(len);
  }
  return f;
}

// ---------------------------------------------------------------------------
// apply_qt_h: apply Q^T of a factored block (reflectors in v, scalars in tau)
// to a trailing tile c of the same height.
// ---------------------------------------------------------------------------

template <typename T>
void block_apply_qt(ConstMatrixView<T> v, const T* tau, MatrixView<T> c) {
  const idx h = v.rows();
  const idx w = v.cols() < h ? v.cols() : h;
  CAQR_DCHECK(c.rows() == h);
  for (idx j = 0; j < w; ++j) {
    if (tau[j] == T(0)) continue;
    for (idx col = 0; col < c.cols(); ++col) {
      apply_reflector_column(h - j, tau[j], v.col(j) + j + 1, c.col(col) + j);
    }
  }
}

inline double block_apply_qt_flops(idx h, idx w, idx ncols) {
  double f = 0;
  const idx kmax = w < h ? w : h;
  for (idx j = 0; j < kmax; ++j) {
    // A length-1 reflector has tau == 0 (identity) and is skipped.
    if (h - j > 1) {
      f += static_cast<double>(ncols) * apply_reflector_column_flops(h - j);
    }
  }
  return f;
}

// Applies Q (not Q^T) of a factored block: reflectors in descending order.
// Same flop count as block_apply_qt.
template <typename T>
void block_apply_q(ConstMatrixView<T> v, const T* tau, MatrixView<T> c) {
  const idx h = v.rows();
  const idx w = v.cols() < h ? v.cols() : h;
  CAQR_DCHECK(c.rows() == h);
  for (idx j = w - 1; j >= 0; --j) {
    if (tau[j] == T(0)) continue;
    for (idx col = 0; col < c.cols(); ++col) {
      apply_reflector_column(h - j, tau[j], v.col(j) + j + 1, c.col(col) + j);
    }
  }
}

// ---------------------------------------------------------------------------
// factor_tree: QR of k stacked W x W upper-triangular blocks.
//
// s is the (k*w) x w stacked matrix; block b occupies rows [b*w, (b+1)*w).
// Column j's reflector has support {row j of block 0} U {rows 0..j of blocks
// 1..k-1}; the Householder tail overwrites exactly the R entries it consumes,
// so the factorization is in place and the result keeps the stacked-triangle
// sparsity (new R in block 0, reflector tails in the lower triangles).
// ---------------------------------------------------------------------------

template <typename T>
void stacked_geqr2(MatrixView<T> s, idx w, idx k, T* tau, T* scratch) {
  CAQR_DCHECK(s.rows() == w * k && s.cols() == w);
  CAQR_DCHECK(k >= 1);
  for (idx j = 0; j < w; ++j) {
    // Gather the reflector support for column j into scratch:
    // [pivot; block1 rows 0..j; block2 rows 0..j; ...], length 1+(k-1)(j+1).
    const idx seg = j + 1;
    const idx len = 1 + (k - 1) * seg;
    scratch[0] = s(j, j);
    for (idx b = 1; b < k; ++b) {
      for (idx i = 0; i < seg; ++i) scratch[1 + (b - 1) * seg + i] = s(b * w + i, j);
    }
    tau[j] = fast_make_householder(len, scratch[0], scratch + 1);
    // Scatter back: beta to the pivot, tail (the reflector) to the consumed
    // R positions.
    s(j, j) = scratch[0];
    for (idx b = 1; b < k; ++b) {
      for (idx i = 0; i < seg; ++i) s(b * w + i, j) = scratch[1 + (b - 1) * seg + i];
    }
    if (tau[j] == T(0)) continue;
    // Update trailing columns j+1..w-1 on the same support.
    for (idx c = j + 1; c < w; ++c) {
      T acc = s(j, c);
      for (idx b = 1; b < k; ++b) {
        for (idx i = 0; i < seg; ++i) {
          acc += s(b * w + i, j) * s(b * w + i, c);  // 2 * (k-1)(j+1)
        }
      }
      const T tw = tau[j] * acc;  // 1
      s(j, c) -= tw;              // 1
      for (idx b = 1; b < k; ++b) {
        for (idx i = 0; i < seg; ++i) {
          s(b * w + i, c) -= tw * s(b * w + i, j);  // 2 * (k-1)(j+1)
        }
      }
    }
  }
}

inline double stacked_geqr2_flops(idx w, idx k) {
  double f = 0;
  for (idx j = 0; j < w; ++j) {
    const idx len = 1 + (k - 1) * (j + 1);
    f += make_householder_flops(len);
    if (len > 1) f += static_cast<double>(w - j - 1) * apply_reflector_column_flops(len);
  }
  return f;
}

// ---------------------------------------------------------------------------
// apply_qt_tree: apply the stacked-triangle Q^T to the matching distributed
// rows of a trailing tile.
//
// v holds the factored stack (reflector tails in the lower triangles, taus in
// tau); c is the (k*w) x n gathered trailing rows: row groups in the same
// order as the stacked blocks.
// ---------------------------------------------------------------------------

template <typename T>
void stacked_apply_qt(ConstMatrixView<T> v, idx w, idx k, const T* tau,
                      MatrixView<T> c) {
  CAQR_DCHECK(v.rows() == w * k && v.cols() == w);
  CAQR_DCHECK(c.rows() == w * k);
  const idx n = c.cols();
  for (idx j = 0; j < w; ++j) {
    if (tau[j] == T(0)) continue;
    const idx seg = j + 1;
    for (idx col = 0; col < n; ++col) {
      T* cc = c.col(col);
      T acc = cc[j];  // pivot row, v == 1
      for (idx b = 1; b < k; ++b) {
        const T* vb = v.col(j) + b * w;
        const T* cb = cc + b * w;
        for (idx i = 0; i < seg; ++i) acc += vb[i] * cb[i];  // 2(k-1)(j+1)
      }
      const T tw = tau[j] * acc;  // 1
      cc[j] -= tw;                // 1
      for (idx b = 1; b < k; ++b) {
        const T* vb = v.col(j) + b * w;
        T* cb = cc + b * w;
        for (idx i = 0; i < seg; ++i) cb[i] -= tw * vb[i];  // 2(k-1)(j+1)
      }
    }
  }
}

// Applies the stacked-triangle Q (not Q^T): reflectors in descending order.
// Same flop count as stacked_apply_qt.
template <typename T>
void stacked_apply_q(ConstMatrixView<T> v, idx w, idx k, const T* tau,
                     MatrixView<T> c) {
  CAQR_DCHECK(v.rows() == w * k && v.cols() == w);
  CAQR_DCHECK(c.rows() == w * k);
  const idx n = c.cols();
  for (idx j = w - 1; j >= 0; --j) {
    if (tau[j] == T(0)) continue;
    const idx seg = j + 1;
    for (idx col = 0; col < n; ++col) {
      T* cc = c.col(col);
      T acc = cc[j];
      for (idx b = 1; b < k; ++b) {
        const T* vb = v.col(j) + b * w;
        const T* cb = cc + b * w;
        for (idx i = 0; i < seg; ++i) acc += vb[i] * cb[i];
      }
      const T tw = tau[j] * acc;
      cc[j] -= tw;
      for (idx b = 1; b < k; ++b) {
        const T* vb = v.col(j) + b * w;
        T* cb = cc + b * w;
        for (idx i = 0; i < seg; ++i) cb[i] -= tw * vb[i];
      }
    }
  }
}

inline double stacked_apply_qt_flops(idx w, idx k, idx ncols) {
  double f = 0;
  for (idx j = 0; j < w; ++j) {
    const idx len = 1 + (k - 1) * (j + 1);
    if (len > 1) f += static_cast<double>(ncols) * apply_reflector_column_flops(len);
  }
  return f;
}

}  // namespace caqr::kernels

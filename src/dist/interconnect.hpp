#pragma once

// Inter-device interconnect model for the multi-device grid (dist/).
//
// The single-device simulator already charges host<->device traffic through
// gpusim::PcieModel (latency + bytes / bandwidth). A grid of devices needs
// the same thing between PEERS: every DeviceGrid::transfer is charged
// link.transfer_seconds(bytes) on BOTH endpoints' timelines, exactly like
// `pcie_transfer` on a single device, so communication is first-class in
// ModelOnly runs and in the chrome-trace export.
//
// The model is deliberately simple — a uniform full crossbar where every
// ordered device pair is joined by an identical link — because that is all
// the cross-device TSQR reduction needs to expose the communication-
// avoidance story: the paper's R-triangle exchanges are latency-bound, so
// the PCIe-like and NVLink-like presets differ by ~8x bandwidth and ~7.5x
// latency and the tree-shape tradeoff shifts visibly between them.
//
// fingerprint() folds every link parameter (and the name) into a stable
// FNV-1a digest; DeviceGrid composes it with the device-model fingerprints
// and the device count so serve::PlanCache entries self-invalidate when the
// interconnect or the grid size changes (satellite of ISSUE 5).

#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "ft/ft.hpp"
#include "gpusim/machine_model.hpp"

namespace caqr::dist {

struct InterconnectModel {
  std::string name = "pcie_switch";
  // Per-link point-to-point characteristics, reusing the PCIe cost form:
  // seconds = latency_us * 1e-6 + bytes / (bandwidth_gbs * 1e9).
  gpusim::PcieModel link;

  double transfer_seconds(double bytes) const {
    return link.transfer_seconds(bytes);
  }

  // Stable digest of (name, bandwidth, latency): the cache-invalidation key
  // for anything memoized per interconnect. Pure function of the fields.
  std::uint64_t fingerprint() const {
    std::uint64_t h = ft::detail::fnv1a(name.data(), name.size());
    h = ft::detail::fnv1a(&link.bandwidth_gbs, sizeof(link.bandwidth_gbs), h);
    h = ft::detail::fnv1a(&link.latency_us, sizeof(link.latency_us), h);
    return h;
  }

  // PCIe-gen2-switch era peer-to-peer: the same 5 GB/s / 15 us as the
  // host link (peer traffic crosses the same switch).
  static InterconnectModel pcie_switch() { return InterconnectModel{}; }

  // NVLink-like point-to-point: ~8x the bandwidth at a fraction of the
  // initiation latency; shifts the cross-device tree tradeoff toward
  // shallower (higher-arity) reductions.
  static InterconnectModel nvlink() {
    InterconnectModel m;
    m.name = "nvlink";
    m.link.bandwidth_gbs = 40.0;
    m.link.latency_us = 2.0;
    return m;
  }

  // Cluster network of the paper's era (QDR InfiniBand class): slower than
  // any intra-node link and an order of magnitude more latency. This is the
  // default INTER-node class of HierarchicalInterconnect — crossing it is
  // what the topology-aware tree minimizes.
  static InterconnectModel ib_network() {
    InterconnectModel m;
    m.name = "ib_network";
    m.link.bandwidth_gbs = 3.2;
    m.link.latency_us = 25.0;
    return m;
  }
};

// Two-level interconnect: N devices packed node-major into nodes of
// `devices_per_node` members (device d lives on node d / devices_per_node;
// a trailing node may be short). Pairs on the same node use the NVLink-class
// `intra` link, pairs on different nodes the network-class `inter` link —
// link_between() is the per-pair latency/bandwidth lookup DeviceGrid
// charges transfers through. The cost FORM is unchanged from the flat model
// (latency + bytes/bandwidth per link); only the link chosen per pair
// differs, so ModelOnly/Functional timeline parity is untouched.
//
// fingerprint() composes BOTH link-class digests with the node width, so a
// serve::PlanCache entry keyed on a grid fingerprint self-invalidates when
// either link class or the device placement changes — a plan tuned for fat
// intra-node links must not survive a move to a flatter machine.
struct HierarchicalInterconnect {
  int devices_per_node = 1;
  InterconnectModel intra = InterconnectModel::nvlink();
  InterconnectModel inter = InterconnectModel::ib_network();

  int node_of(int device) const {
    CAQR_CHECK(device >= 0 && devices_per_node >= 1);
    return device / devices_per_node;
  }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  const InterconnectModel& link_between(int a, int b) const {
    return same_node(a, b) ? intra : inter;
  }
  double transfer_seconds(int a, int b, double bytes) const {
    return link_between(a, b).transfer_seconds(bytes);
  }

  std::uint64_t fingerprint() const {
    std::uint64_t h = ft::detail::kFnvOffset;
    const std::uint64_t fa = intra.fingerprint();
    const std::uint64_t fb = inter.fingerprint();
    h = ft::detail::fnv1a(&fa, sizeof(fa), h);
    h = ft::detail::fnv1a(&fb, sizeof(fb), h);
    const std::int64_t dpn = devices_per_node;
    h = ft::detail::fnv1a(&dpn, sizeof(dpn), h);
    return h;
  }

  // NVLink islands joined by a cluster network — the default multi-node
  // machine shape (docs/TOPOLOGY.md walks the tuning consequences).
  static HierarchicalInterconnect nvlink_islands(int devices_per_node) {
    HierarchicalInterconnect h;
    h.devices_per_node = devices_per_node;
    return h;
  }

  // PCIe-switch islands over the same network: a flatter intra-node tier,
  // shifts the intra-node tree tradeoff back toward deeper reductions.
  static HierarchicalInterconnect pcie_islands(int devices_per_node) {
    HierarchicalInterconnect h;
    h.devices_per_node = devices_per_node;
    h.intra = InterconnectModel::pcie_switch();
    return h;
  }
};

}  // namespace caqr::dist

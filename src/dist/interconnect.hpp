#pragma once

// Inter-device interconnect model for the multi-device grid (dist/).
//
// The single-device simulator already charges host<->device traffic through
// gpusim::PcieModel (latency + bytes / bandwidth). A grid of devices needs
// the same thing between PEERS: every DeviceGrid::transfer is charged
// link.transfer_seconds(bytes) on BOTH endpoints' timelines, exactly like
// `pcie_transfer` on a single device, so communication is first-class in
// ModelOnly runs and in the chrome-trace export.
//
// The model is deliberately simple — a uniform full crossbar where every
// ordered device pair is joined by an identical link — because that is all
// the cross-device TSQR reduction needs to expose the communication-
// avoidance story: the paper's R-triangle exchanges are latency-bound, so
// the PCIe-like and NVLink-like presets differ by ~8x bandwidth and ~7.5x
// latency and the tree-shape tradeoff shifts visibly between them.
//
// fingerprint() folds every link parameter (and the name) into a stable
// FNV-1a digest; DeviceGrid composes it with the device-model fingerprints
// and the device count so serve::PlanCache entries self-invalidate when the
// interconnect or the grid size changes (satellite of ISSUE 5).

#include <cstdint>
#include <string>

#include "ft/ft.hpp"
#include "gpusim/machine_model.hpp"

namespace caqr::dist {

struct InterconnectModel {
  std::string name = "pcie_switch";
  // Per-link point-to-point characteristics, reusing the PCIe cost form:
  // seconds = latency_us * 1e-6 + bytes / (bandwidth_gbs * 1e9).
  gpusim::PcieModel link;

  double transfer_seconds(double bytes) const {
    return link.transfer_seconds(bytes);
  }

  // Stable digest of (name, bandwidth, latency): the cache-invalidation key
  // for anything memoized per interconnect. Pure function of the fields.
  std::uint64_t fingerprint() const {
    std::uint64_t h = ft::detail::fnv1a(name.data(), name.size());
    h = ft::detail::fnv1a(&link.bandwidth_gbs, sizeof(link.bandwidth_gbs), h);
    h = ft::detail::fnv1a(&link.latency_us, sizeof(link.latency_us), h);
    return h;
  }

  // PCIe-gen2-switch era peer-to-peer: the same 5 GB/s / 15 us as the
  // host link (peer traffic crosses the same switch).
  static InterconnectModel pcie_switch() { return InterconnectModel{}; }

  // NVLink-like point-to-point: ~8x the bandwidth at a fraction of the
  // initiation latency; shifts the cross-device tree tradeoff toward
  // shallower (higher-arity) reductions.
  static InterconnectModel nvlink() {
    InterconnectModel m;
    m.name = "nvlink";
    m.link.bandwidth_gbs = 40.0;
    m.link.latency_us = 2.0;
    return m;
  }
};

}  // namespace caqr::dist

#pragma once

// DeviceGrid: N independent simulated GPUs joined by an InterconnectModel.
//
// Each member is a full gpusim::Device with its own streams, timeline,
// profiles and trace; the grid adds the one thing a single device cannot
// express — modeled PEER transfers. transfer(src, dst, bytes) synchronizes
// both endpoints, aligns their clocks to the rendezvous point
// max(clock_src, clock_dst) (Device::wait_until), then charges
// link.transfer_seconds(bytes) on BOTH timelines as an external op, so the
// communication appears in both devices' ModelOnly timelines, profiles and
// chrome traces, exactly like `pcie_transfer` on one device. Every transfer
// is also appended to a host-side comm log from which comm_stats() reports
// the volume/time totals the scaling bench plots.
//
// Determinism: the grid performs no host-side parallelism of its own and
// every member timeline is resolved by the same pure event simulation as a
// lone device, so Functional and ModelOnly grids produce bit-identical
// timelines and comm logs for the same issue sequence (tested in
// tests/test_dist.cpp).
//
// fingerprint() composes the member device-model fingerprints, the
// interconnect fingerprint and the device count into one FNV-1a digest —
// the key serve::PlanCache uses so cached plans self-invalidate when the
// link model, the device model, or the grid size changes.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "dist/interconnect.hpp"
#include "ft/ft.hpp"
#include "gpusim/device.hpp"
#include "gpusim/report.hpp"

namespace caqr::dist {

// One modeled peer transfer (host-side record; simulated seconds).
struct CommRecord {
  int src = 0;
  int dst = 0;
  double bytes = 0;
  double seconds = 0;  // link occupancy charged on both endpoints
  double start = 0;    // aligned simulated start time
  std::string label;
};

struct CommStats {
  long long transfers = 0;
  double bytes = 0;
  double seconds = 0;  // sum of per-transfer link time (not wall overlap)
};

class DeviceGrid {
 public:
  explicit DeviceGrid(int num_devices,
                      gpusim::GpuMachineModel model =
                          gpusim::GpuMachineModel::c2050(),
                      InterconnectModel interconnect =
                          InterconnectModel::pcie_switch(),
                      gpusim::ExecMode mode = gpusim::ExecMode::Functional)
      : interconnect_(std::move(interconnect)), mode_(mode) {
    CAQR_CHECK(num_devices >= 1);
    devices_.reserve(static_cast<std::size_t>(num_devices));
    for (int d = 0; d < num_devices; ++d) {
      devices_.emplace_back(model, mode);
    }
  }

  int size() const { return static_cast<int>(devices_.size()); }
  gpusim::ExecMode mode() const { return mode_; }
  gpusim::Device& device(int d) {
    CAQR_CHECK(d >= 0 && d < size());
    return devices_[static_cast<std::size_t>(d)];
  }
  const gpusim::Device& device(int d) const {
    CAQR_CHECK(d >= 0 && d < size());
    return devices_[static_cast<std::size_t>(d)];
  }
  const InterconnectModel& interconnect() const { return interconnect_; }

  // Composed digest: every member device model, the interconnect, and the
  // device count. Two grids with equal fingerprints produce bit-identical
  // simulated timelines for the same program.
  std::uint64_t fingerprint() const {
    std::uint64_t h = ft::detail::kFnvOffset;
    for (const auto& dev : devices_) {
      const std::uint64_t f = dev.model().fingerprint();
      h = ft::detail::fnv1a(&f, sizeof(f), h);
    }
    const std::uint64_t link = interconnect_.fingerprint();
    h = ft::detail::fnv1a(&link, sizeof(link), h);
    const std::int64_t n = size();
    h = ft::detail::fnv1a(&n, sizeof(n), h);
    return h;
  }

  // Modeled point-to-point transfer: rendezvous (both endpoints' clocks
  // advance to the later of the two), then the link time is charged on both
  // timelines under `label`. A same-device "transfer" is free (no link
  // crossed) and charges nothing. Returns the simulated completion time.
  // Moves no data — functional callers copy the host-resident shards
  // themselves; this models when those bytes would have arrived.
  double transfer(int src, int dst, double bytes,
                  const std::string& label = "link_transfer") {
    CAQR_CHECK(bytes >= 0);
    gpusim::Device& s = device(src);
    if (src == dst) return s.sync();
    gpusim::Device& d = device(dst);
    const double t_src = s.sync();
    const double t_dst = d.sync();
    const double start = t_src > t_dst ? t_src : t_dst;
    s.wait_until(start);
    d.wait_until(start);
    const double t = interconnect_.transfer_seconds(bytes);
    s.transfer(bytes, interconnect_.link, label);
    d.transfer(bytes, interconnect_.link, label);
    comm_log_.push_back(CommRecord{src, dst, bytes, t, start, label});
    return start + t;
  }

  // Grid-wide barrier: every device joins at the latest clock. Returns it.
  double barrier() {
    double t = 0;
    for (auto& dev : devices_) t = std::max(t, dev.sync());
    for (auto& dev : devices_) dev.wait_until(t);
    return t;
  }

  // Latest member clock (no barrier side effect).
  double elapsed_seconds() const {
    double t = 0;
    for (const auto& dev : devices_) t = std::max(t, dev.elapsed_seconds());
    return t;
  }

  void reset_timelines() {
    for (auto& dev : devices_) dev.reset_timeline();
    comm_log_.clear();
  }

  const std::vector<CommRecord>& comm_log() const { return comm_log_; }

  CommStats comm_stats() const {
    CommStats s;
    for (const auto& r : comm_log_) {
      ++s.transfers;
      s.bytes += r.bytes;
      s.seconds += r.seconds;
    }
    return s;
  }

 private:
  std::vector<gpusim::Device> devices_;
  InterconnectModel interconnect_;
  gpusim::ExecMode mode_;
  std::vector<CommRecord> comm_log_;
};

// Combined chrome-trace export: one process ("pid") per device, tid = that
// device's stream ids — load in chrome://tracing / ui.perfetto.dev to see
// per-device overlap and the link transfers on both endpoints. `other_data`
// follows the same contract as gpusim::trace_json.
inline std::string grid_trace_json(const DeviceGrid& grid,
                                   const std::string& other_data = "") {
  auto escaped = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (int d = 0; d < grid.size(); ++d) {
    for (const auto& e : grid.device(d).trace()) {
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"name\":\"%s\",\"cat\":\"kernel\",\"ph\":\"X\","
                    "\"pid\":%d,\"tid\":%d,\"ts\":%.6f,\"dur\":%.6f,"
                    "\"args\":{\"blocks\":%lld,\"flops\":%.17g,"
                    "\"gmem_bytes\":%.17g}}",
                    first ? "" : ",", escaped(e.name).c_str(), d, e.stream,
                    e.t_start * 1e6, (e.t_end - e.t_start) * 1e6, e.blocks,
                    e.flops, e.gmem_bytes);
      out += buf;
      first = false;
    }
  }
  out += "]";
  if (!other_data.empty()) {
    out += ",\"otherData\":";
    out += other_data;
  }
  out += "}";
  return out;
}

inline bool write_grid_trace_json(const DeviceGrid& grid,
                                  const std::string& path,
                                  const std::string& other_data = "") {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = grid_trace_json(grid, other_data);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace caqr::dist

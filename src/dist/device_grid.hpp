#pragma once

// DeviceGrid: N independent simulated GPUs joined by an InterconnectModel.
//
// Each member is a full gpusim::Device with its own streams, timeline,
// profiles and trace; the grid adds the one thing a single device cannot
// express — modeled PEER transfers. transfer(src, dst, bytes) synchronizes
// both endpoints, aligns their clocks to the rendezvous point
// max(clock_src, clock_dst) (Device::wait_until), then charges
// link.transfer_seconds(bytes) on BOTH timelines as an external op, so the
// communication appears in both devices' ModelOnly timelines, profiles and
// chrome traces, exactly like `pcie_transfer` on one device. Every transfer
// is also appended to a host-side comm log from which comm_stats() reports
// the volume/time totals the scaling bench plots.
//
// Fault model (ISSUE 8). The grid owns the two failure classes a lone
// device cannot express:
//
//   * link faults — a transfer's payload is dropped or arrives with one
//     flipped bit (gpusim::LinkFaultPlan, seeded per transfer ordinal).
//     transfer_payload() detects both with an FNV-1a checksum over the
//     payload bytes and recovers by bounded resend-with-backoff; every
//     attempt's link time (and the backoff) is charged to BOTH endpoint
//     timelines, so recovery traffic is first-class in ModelOnly runs and
//     chrome traces. A resend ships the sender's intact bytes, so every
//     recovered transfer is bit-identical to a fault-free one.
//   * device loss — a device dies at a chosen transfer ordinal (or via
//     kill_device()). Death is detected at the next rendezvous that touches
//     the dead peer: the survivor charges rendezvous_timeout_us to its
//     timeline and the transfer fails TYPED (TransferResult::peer_dead from
//     the checked API, DeviceLostError from the legacy double-returning
//     API) instead of waiting forever. Recovery — shard reassignment over
//     the survivors — lives one layer up in dist/grid_ft.hpp.
//
// Determinism: the grid performs no host-side parallelism of its own,
// every member timeline is resolved by the same pure event simulation as a
// lone device, and every fault decision is a pure function of (seed,
// transfer ordinal) with resends consuming fresh ordinals — so Functional
// and ModelOnly grids produce bit-identical timelines, comm logs and fault
// trajectories for the same issue sequence (tests/test_dist.cpp). The one
// measure-zero caveat: a ModelOnly grid counts every injected fault as
// checksum-detected, while a Functional grid compares real checksums — the
// two can only diverge if a corrupted payload checksums equal to the
// original (in which case its bytes are equal and nothing was corrupt).
//
// fingerprint() composes the member device-model fingerprints, the
// interconnect fingerprint, the device count AND the grid-health generation
// (bumped on every device loss) into one FNV-1a digest — the key
// serve::PlanCache uses, so cached dist plans self-invalidate when the link
// model, the device model, the grid size, or the set of live devices
// changes.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "dist/interconnect.hpp"
#include "ft/ft.hpp"
#include "gpusim/device.hpp"
#include "gpusim/fault.hpp"
#include "gpusim/report.hpp"

namespace caqr::dist {

// One modeled peer transfer (host-side record; simulated seconds).
struct CommRecord {
  int src = 0;
  int dst = 0;
  double bytes = 0;
  double seconds = 0;  // link occupancy charged on both endpoints
  double start = 0;    // aligned simulated start time
  std::string label;
  // True iff the pair crossed the slow (inter-node) tier of a hierarchical
  // interconnect; always false on a flat grid. This is the per-transfer
  // receipt the comm-volume tests and the hierarchy bench aggregate.
  bool inter_node = false;
};

struct CommStats {
  long long transfers = 0;
  double bytes = 0;
  double seconds = 0;  // sum of per-transfer link time (not wall overlap)
  // Per-hierarchy-level split of the totals above (flat grids count
  // everything as intra). bytes == intra_bytes + inter_bytes, always.
  long long intra_transfers = 0;
  long long inter_transfers = 0;
  double intra_bytes = 0;
  double inter_bytes = 0;
  double intra_seconds = 0;
  double inter_seconds = 0;
  // Fault/recovery counters (ISSUE 8): resend attempts, transfers whose
  // retry budget exhausted, detected payload corruptions, injected fault
  // events by kind, and rendezvous timeouts against dead peers.
  long long retried_transfers = 0;
  long long failed_transfers = 0;
  long long checksum_mismatches = 0;
  long long injected_drops = 0;
  long long injected_flips = 0;
  long long rendezvous_timeouts = 0;
};

// One injected link-fault event (host-side log, for tests and diagnostics).
struct LinkFaultEvent {
  enum class Kind { Drop, Flip };
  Kind kind = Kind::Drop;
  long long transfer_ordinal = 0;
  int src = 0;
  int dst = 0;
  std::string label;
};

// Death of a device at a chosen grid transfer ordinal (the grid-level
// analogue of FaultOptions::max_faults + only_kernel pinning: fully
// deterministic, so a test can kill device 2 at exactly the 7th transfer).
struct DeviceLossPlan {
  int device = -1;
  long long at_transfer = 0;
};

// Grid-level fault-tolerance policy + injection schedule.
struct GridFtOptions {
  // Seeded link-fault injection (off by default: both probabilities 0).
  gpusim::LinkFaultOptions link_faults;
  // Verify an FNV-1a checksum over every payload transfer. On by default —
  // with injection off it costs nothing (the compare is skipped entirely).
  bool checksums = true;
  // Bounded resend budget per transfer; 0 = detect and report only.
  int max_transfer_retries = 3;
  // Backoff before resend attempt k: retry_backoff_us * 2^(k-1), charged to
  // both endpoint timelines as a "link_backoff" external op.
  double retry_backoff_us = 25.0;
  // Simulated seconds a survivor waits before declaring a silent peer dead;
  // charged to the survivor's timeline as "rendezvous_timeout".
  double rendezvous_timeout_us = 500.0;
  // Deterministic device-loss schedule (each entry fires at most once).
  std::vector<DeviceLossPlan> device_losses;
};

// Typed outcome of one checked transfer.
struct TransferResult {
  ft::Severity severity = ft::Severity::Ok;  // Ok / Corrected / Unrecovered
  bool peer_dead = false;  // rendezvous timed out against a dead device
  int dead_device = -1;    // valid when peer_dead
  int retries = 0;         // resend attempts beyond the first send
  double completion = 0;   // simulated completion time (last attempt)

  bool ok() const { return !peer_dead && severity != ft::Severity::Unrecovered; }
};

// Typed failure of the legacy double-returning transfer API against a dead
// peer — thrown after the rendezvous-timeout charge, never a hang or abort.
// The grid_ft recovery driver catches it and reassigns the dead shard.
struct DeviceLostError : std::runtime_error {
  explicit DeviceLostError(int dev)
      : std::runtime_error("device " + std::to_string(dev) +
                           " lost at rendezvous"),
        device(dev) {}
  int device = -1;
};

class DeviceGrid {
 public:
  explicit DeviceGrid(int num_devices,
                      gpusim::GpuMachineModel model =
                          gpusim::GpuMachineModel::c2050(),
                      InterconnectModel interconnect =
                          InterconnectModel::pcie_switch(),
                      gpusim::ExecMode mode = gpusim::ExecMode::Functional)
      : interconnect_(std::move(interconnect)), mode_(mode) {
    CAQR_CHECK(num_devices >= 1);
    devices_.reserve(static_cast<std::size_t>(num_devices));
    for (int d = 0; d < num_devices; ++d) {
      devices_.emplace_back(model, mode);
    }
    alive_.assign(static_cast<std::size_t>(num_devices), 1);
  }

  // Hierarchical grid: per-pair link selection through `hier` (the flat
  // `interconnect()` is set to the intra-node class so hierarchy-unaware
  // callers see the fast tier). Device d lives on node d / devices_per_node
  // — node-major placement, the order NodeGrid and the topology-aware tree
  // builder assume.
  DeviceGrid(int num_devices, gpusim::GpuMachineModel model,
             HierarchicalInterconnect hier,
             gpusim::ExecMode mode = gpusim::ExecMode::Functional)
      : DeviceGrid(num_devices, model, hier.intra, mode) {
    CAQR_CHECK(hier.devices_per_node >= 1);
    hier_ = std::move(hier);
  }

  // Non-null iff this grid charges transfers through a two-level
  // interconnect (per-pair link lookup instead of the flat crossbar).
  const HierarchicalInterconnect* hierarchy() const {
    return hier_ ? &*hier_ : nullptr;
  }

  int size() const { return static_cast<int>(devices_.size()); }
  gpusim::ExecMode mode() const { return mode_; }
  gpusim::Device& device(int d) {
    CAQR_CHECK(d >= 0 && d < size());
    return devices_[static_cast<std::size_t>(d)];
  }
  const gpusim::Device& device(int d) const {
    CAQR_CHECK(d >= 0 && d < size());
    return devices_[static_cast<std::size_t>(d)];
  }
  const InterconnectModel& interconnect() const { return interconnect_; }

  // Link charged between an ordered device pair (the flat crossbar link, or
  // the hierarchy tier the pair crosses).
  const InterconnectModel& link_between(int src, int dst) const {
    return hier_ ? hier_->link_between(src, dst) : interconnect_;
  }

  // Grid fault model (injection schedule + recovery policy). Replacing the
  // options does not resurrect dead devices.
  void set_fault_tolerance(GridFtOptions opt) { ft_ = std::move(opt); }
  const GridFtOptions& fault_tolerance() const { return ft_; }

  // ---- device health -------------------------------------------------
  bool alive(int d) const {
    CAQR_CHECK(d >= 0 && d < size());
    return alive_[static_cast<std::size_t>(d)] != 0;
  }
  // Marks a device dead and bumps the health generation (fingerprint
  // change => cached dist plans stop matching). Idempotent per device.
  void kill_device(int d) {
    CAQR_CHECK(d >= 0 && d < size());
    if (alive_[static_cast<std::size_t>(d)] != 0) {
      alive_[static_cast<std::size_t>(d)] = 0;
      ++health_generation_;
    }
  }
  int num_alive() const {
    int n = 0;
    for (const char a : alive_) n += a != 0;
    return n;
  }
  std::vector<int> live_devices() const {
    std::vector<int> out;
    out.reserve(alive_.size());
    for (int d = 0; d < size(); ++d) {
      if (alive_[static_cast<std::size_t>(d)] != 0) out.push_back(d);
    }
    return out;
  }
  // Monotonic counter of device losses since construction; mixed into
  // fingerprint() so serve::PlanCache entries for the old grid age out.
  std::uint64_t health_generation() const { return health_generation_; }

  // Composed digest: every member device model, the interconnect, the
  // device count, and the grid-health state. Two grids with equal
  // fingerprints produce bit-identical simulated timelines for the same
  // program on the same live devices.
  std::uint64_t fingerprint() const {
    std::uint64_t h = ft::detail::kFnvOffset;
    for (const auto& dev : devices_) {
      const std::uint64_t f = dev.model().fingerprint();
      h = ft::detail::fnv1a(&f, sizeof(f), h);
    }
    const std::uint64_t link = interconnect_.fingerprint();
    h = ft::detail::fnv1a(&link, sizeof(link), h);
    if (hier_) {
      // Both link classes + node width: a changed inter-node network or a
      // different device placement must invalidate cached dist plans even
      // though the intra-node (flat) link is unchanged.
      const std::uint64_t hf = hier_->fingerprint();
      h = ft::detail::fnv1a(&hf, sizeof(hf), h);
    }
    const std::int64_t n = size();
    h = ft::detail::fnv1a(&n, sizeof(n), h);
    if (health_generation_ != 0) {
      h = ft::detail::fnv1a(&health_generation_, sizeof(health_generation_), h);
      h = ft::detail::fnv1a(alive_.data(), alive_.size(), h);
    }
    return h;
  }

  // Modeled point-to-point transfer: rendezvous (both endpoints' clocks
  // advance to the later of the two), then the link time is charged on both
  // timelines under `label`. A same-device "transfer" is free (no link
  // crossed) and charges nothing. Returns the simulated completion time.
  // Moves no data — functional callers copy the host-resident shards
  // themselves; this models when those bytes would have arrived.
  //
  // Typed failure: a dead endpoint charges the rendezvous timeout to the
  // survivor and throws DeviceLostError (never hangs). Injected link faults
  // apply to this API too (payload-free transfers are judged as a ModelOnly
  // payload would be); an exhausted retry budget still returns the final
  // completion time — corruption reporting needs transfer_payload.
  double transfer(int src, int dst, double bytes,
                  const std::string& label = "link_transfer") {
    if (src == dst) return device(src).sync();
    const TransferResult r =
        transfer_payload<double>(src, dst, bytes, label, {}, {});
    if (r.peer_dead) throw DeviceLostError(r.dead_device);
    return r.completion;
  }

  // Checked, payload-aware transfer: models the link cost like transfer()
  // AND moves `sv` into `dv` (when both are backed — ModelOnly callers pass
  // empty views), with fault injection, FNV checksum detection, and bounded
  // resend-with-backoff. Never throws on a dead peer: the typed result
  // carries peer_dead + the dead device id. `bytes` is the modeled wire
  // size (e.g. a packed triangle), which may be less than the view's bytes.
  template <typename T>
  TransferResult transfer_payload(int src, int dst, double bytes,
                                  const std::string& label,
                                  ConstMatrixView<T> sv, MatrixView<T> dv) {
    CAQR_CHECK(bytes >= 0);
    trigger_scheduled_losses();
    TransferResult res;
    const bool functional = sv.data() != nullptr && dv.data() != nullptr;
    if (src == dst) {
      // No link crossed: the "transfer" is a local copy, charges nothing.
      if (functional) dv.copy_from(sv);
      res.completion = device(src).elapsed_seconds();
      return res;
    }
    if (!alive(src) || !alive(dst)) {
      return fail_dead_peer(src, dst, label);
    }
    gpusim::Device& s = device(src);
    gpusim::Device& d = device(dst);
    const bool inject = ft_.link_faults.enabled();
    const int max_retries = std::max(0, ft_.max_transfer_retries);
    for (int attempt = 0;; ++attempt) {
      const long long ordinal = transfer_ordinal_++;
      const double t_src = s.sync();
      const double t_dst = d.sync();
      const double start = t_src > t_dst ? t_src : t_dst;
      s.wait_until(start);
      d.wait_until(start);
      double backoff = 0;
      if (attempt > 0) {
        // Exponential backoff before the resend, on both clocks (they are
        // aligned, so they stay aligned).
        backoff = ft_.retry_backoff_us * 1e-6 *
                  static_cast<double>(1 << (attempt - 1));
        s.add_external_seconds(backoff, "link_backoff");
        d.add_external_seconds(backoff, "link_backoff");
      }
      const std::string lbl = attempt == 0 ? label : label + "_retry";
      // Per-pair link lookup: the hierarchy (when present) picks the tier
      // the pair crosses; flat grids use the single crossbar link. Retries
      // and backoff ride the same tier as the original send.
      const InterconnectModel& link = link_between(src, dst);
      const bool inter = hier_ && !hier_->same_node(src, dst);
      const double t = link.transfer_seconds(bytes);
      s.transfer(bytes, link.link, lbl);
      d.transfer(bytes, link.link, lbl);
      comm_log_.push_back(
          CommRecord{src, dst, bytes, t, start + backoff, lbl, inter});
      res.completion = s.elapsed_seconds();

      bool corrupted = false;
      if (inject) {
        gpusim::LinkFaultPlan plan(
            ft_.link_faults, ordinal,
            ft_.link_faults.budget_left(link_fault_log_.size()));
        if (plan.drop()) {
          // The payload never arrives; model the receive buffer as cleared
          // (deterministic — never garbage from uninitialized storage).
          if (functional) dv.fill(T(0));
          link_fault_log_.push_back(
              {LinkFaultEvent::Kind::Drop, ordinal, src, dst, lbl});
          ++stats_.injected_drops;
          corrupted = true;
        } else {
          if (functional) dv.copy_from(sv);
          if (plan.flip()) {
            if (functional) plan.apply_flip(dv);
            link_fault_log_.push_back(
                {LinkFaultEvent::Kind::Flip, ordinal, src, dst, lbl});
            ++stats_.injected_flips;
            corrupted = true;
          }
        }
      } else if (functional) {
        dv.copy_from(sv);
      }

      // Detection: sender-side FNV over the intact bytes vs receiver-side
      // FNV over what landed. ModelOnly payloads judge the injected fault
      // directly (the decisions are identical, so timelines stay in parity
      // with a Functional twin).
      bool mismatch = false;
      if (ft_.checksums && inject) {
        mismatch = functional ? view_checksum(sv) != view_checksum(dv.as_const())
                              : corrupted;
      }
      if (!mismatch) {
        res.severity = attempt == 0 ? ft::Severity::Ok : ft::Severity::Corrected;
        res.retries = attempt;
        return res;
      }
      ++stats_.checksum_mismatches;
      if (attempt >= max_retries) {
        // Budget exhausted: deliver the corrupted payload TYPED — the
        // caller decides whether to escalate. (A final drop leaves the
        // deterministic zero fill in dv.)
        ++stats_.failed_transfers;
        res.severity = ft::Severity::Unrecovered;
        res.retries = attempt;
        return res;
      }
      ++stats_.retried_transfers;
    }
  }

  // Grid-wide barrier over the LIVE devices: every survivor joins at the
  // latest live clock. Returns it.
  double barrier() {
    double t = 0;
    for (int d = 0; d < size(); ++d) {
      if (alive(d)) t = std::max(t, device(d).sync());
    }
    for (int d = 0; d < size(); ++d) {
      if (alive(d)) device(d).wait_until(t);
    }
    return t;
  }

  // Latest member clock (no barrier side effect).
  double elapsed_seconds() const {
    double t = 0;
    for (const auto& dev : devices_) t = std::max(t, dev.elapsed_seconds());
    return t;
  }

  void reset_timelines() {
    for (auto& dev : devices_) dev.reset_timeline();
    comm_log_.clear();
    link_fault_log_.clear();
    stats_ = CommStats{};
    transfer_ordinal_ = 0;
    for (auto& p : fired_losses_) p = 0;
  }

  const std::vector<CommRecord>& comm_log() const { return comm_log_; }
  const std::vector<LinkFaultEvent>& link_fault_log() const {
    return link_fault_log_;
  }

  CommStats comm_stats() const {
    CommStats s = stats_;
    for (const auto& r : comm_log_) {
      ++s.transfers;
      s.bytes += r.bytes;
      s.seconds += r.seconds;
      if (r.inter_node) {
        ++s.inter_transfers;
        s.inter_bytes += r.bytes;
        s.inter_seconds += r.seconds;
      } else {
        ++s.intra_transfers;
        s.intra_bytes += r.bytes;
        s.intra_seconds += r.seconds;
      }
    }
    return s;
  }

 private:
  template <typename T>
  static std::uint64_t view_checksum(ConstMatrixView<T> v) {
    std::uint64_t h = ft::detail::kFnvOffset;
    for (idx j = 0; j < v.cols(); ++j) {
      h = ft::detail::fnv1a(v.col(j),
                            sizeof(T) * static_cast<std::size_t>(v.rows()), h);
    }
    return h;
  }

  // Fires every scheduled loss whose ordinal has been reached (each at most
  // once, tracked independently of alive_ so kill/option changes compose).
  void trigger_scheduled_losses() {
    if (ft_.device_losses.empty()) return;
    fired_losses_.resize(ft_.device_losses.size(), 0);
    for (std::size_t i = 0; i < ft_.device_losses.size(); ++i) {
      const DeviceLossPlan& p = ft_.device_losses[i];
      if (fired_losses_[i] == 0 && p.device >= 0 && p.device < size() &&
          transfer_ordinal_ >= p.at_transfer) {
        fired_losses_[i] = 1;
        kill_device(p.device);
      }
    }
  }

  // Dead-peer rendezvous: the survivor (if any) waits out the configured
  // timeout on its own timeline, the failure is typed, nothing hangs.
  TransferResult fail_dead_peer(int src, int dst, const std::string& label) {
    TransferResult res;
    res.peer_dead = true;
    res.dead_device = !alive(src) ? src : dst;
    res.severity = ft::Severity::Unrecovered;
    const int survivor = res.dead_device == src ? dst : src;
    const double timeout = ft_.rendezvous_timeout_us * 1e-6;
    if (alive(survivor)) {
      gpusim::Device& sd = device(survivor);
      sd.add_external_seconds(timeout, "rendezvous_timeout");
      res.completion = sd.elapsed_seconds();
    }
    ++stats_.rendezvous_timeouts;
    ++stats_.failed_transfers;
    comm_log_.push_back(CommRecord{src, dst, 0.0, timeout,
                                   std::max(0.0, res.completion - timeout),
                                   label + "_timeout"});
    return res;
  }

  std::vector<gpusim::Device> devices_;
  InterconnectModel interconnect_;
  std::optional<HierarchicalInterconnect> hier_;
  gpusim::ExecMode mode_;
  std::vector<CommRecord> comm_log_;
  std::vector<LinkFaultEvent> link_fault_log_;
  GridFtOptions ft_;
  CommStats stats_;  // fault counters only; volume derives from comm_log_
  std::vector<char> alive_;
  std::vector<char> fired_losses_;
  std::uint64_t health_generation_ = 0;
  long long transfer_ordinal_ = 0;
};

// JSON object of the grid's comm + recovery counters (embedded in
// grid_trace_json so a chrome trace carries the recovery-traffic summary).
inline std::string comm_stats_json(const CommStats& s) {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"transfers\":%lld,\"bytes\":%.17g,\"seconds\":%.17g,"
      "\"intra_transfers\":%lld,\"inter_transfers\":%lld,"
      "\"intra_bytes\":%.17g,\"inter_bytes\":%.17g,"
      "\"intra_seconds\":%.17g,\"inter_seconds\":%.17g,"
      "\"retried_transfers\":%lld,\"failed_transfers\":%lld,"
      "\"checksum_mismatches\":%lld,\"injected_drops\":%lld,"
      "\"injected_flips\":%lld,\"rendezvous_timeouts\":%lld}",
      s.transfers, s.bytes, s.seconds, s.intra_transfers, s.inter_transfers,
      s.intra_bytes, s.inter_bytes, s.intra_seconds, s.inter_seconds,
      s.retried_transfers, s.failed_transfers, s.checksum_mismatches,
      s.injected_drops, s.injected_flips, s.rendezvous_timeouts);
  return buf;
}

// Combined chrome-trace export: one process ("pid") per device, tid = that
// device's stream ids — load in chrome://tracing / ui.perfetto.dev to see
// per-device overlap and the link transfers on both endpoints (retry and
// backoff ops included, so recovery traffic is visible). `other_data`
// follows the same contract as gpusim::trace_json; the grid's comm/recovery
// counters are always embedded as "commStats".
inline std::string grid_trace_json(const DeviceGrid& grid,
                                   const std::string& other_data = "") {
  auto escaped = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (int d = 0; d < grid.size(); ++d) {
    for (const auto& e : grid.device(d).trace()) {
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"name\":\"%s\",\"cat\":\"kernel\",\"ph\":\"X\","
                    "\"pid\":%d,\"tid\":%d,\"ts\":%.6f,\"dur\":%.6f,"
                    "\"args\":{\"blocks\":%lld,\"flops\":%.17g,"
                    "\"gmem_bytes\":%.17g}}",
                    first ? "" : ",", escaped(e.name).c_str(), d, e.stream,
                    e.t_start * 1e6, (e.t_end - e.t_start) * 1e6, e.blocks,
                    e.flops, e.gmem_bytes);
      out += buf;
      first = false;
    }
  }
  out += "],\"commStats\":";
  out += comm_stats_json(grid.comm_stats());
  if (!other_data.empty()) {
    out += ",\"otherData\":";
    out += other_data;
  }
  out += "}";
  return out;
}

inline bool write_grid_trace_json(const DeviceGrid& grid,
                                  const std::string& path,
                                  const std::string& other_data = "") {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = grid_trace_json(grid, other_data);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace caqr::dist

#pragma once

// Block-row sharded matrix for the device grid.
//
// A DistMatrix owns one contiguous row slice ("shard") per device: shard d
// holds global rows [row0(d), row0(d) + shard_rows(d)) across ALL columns,
// stored as an ordinary host-resident Matrix (the simulator keeps all data
// in host memory; device residency is a cost-model concept). Block-row
// sharding is the natural decomposition for TSQR/CAQR: each device factors
// its own row blocks locally and only w x w R triangles and w-row slices of
// the trailing matrix ever cross the interconnect.
//
// The partition requires every shard to be at least `cols` rows tall, so
// the full upper-triangular R (and every panel's surviving root triangle)
// lives in shard 0 — the cross-device reduction always roots at device 0.
//
// ModelOnly grids get storage-free shards (Matrix::shape_only), mirroring
// the single-device convention for paper-scale cost runs.

#include <utility>
#include <vector>

#include "common/check.hpp"
#include "dist/device_grid.hpp"
#include "linalg/matrix.hpp"

namespace caqr::dist {

// Row offsets of an even block-row partition: devices+1 entries, first 0,
// last `rows`, each slice height >= min_rows (earlier slices absorb the
// remainder one row each). Requires rows >= devices * min_rows.
inline std::vector<idx> even_partition(idx rows, int devices, idx min_rows) {
  CAQR_CHECK(devices >= 1 && rows >= 0 && min_rows >= 0);
  CAQR_CHECK_MSG(rows >= static_cast<idx>(devices) * min_rows,
                 "every shard needs at least min_rows (= cols) rows");
  const idx base = rows / devices;
  const idx rem = rows % devices;
  std::vector<idx> offsets;
  offsets.reserve(static_cast<std::size_t>(devices) + 1);
  idx r0 = 0;
  for (int d = 0; d < devices; ++d) {
    offsets.push_back(r0);
    r0 += base + (d < rem ? 1 : 0);
  }
  offsets.push_back(rows);
  return offsets;
}

template <typename T>
class DistMatrix {
 public:
  DistMatrix() = default;

  // Functional scatter: copies `a` into per-device shards under the even
  // partition (or an explicit one via the 3-argument overload).
  static DistMatrix scatter(ConstMatrixView<T> a, int devices) {
    return scatter(a, even_partition(a.rows(), devices, a.cols()));
  }

  static DistMatrix scatter(ConstMatrixView<T> a, std::vector<idx> offsets) {
    DistMatrix m;
    m.init(a.rows(), a.cols(), std::move(offsets), /*functional=*/true);
    for (int d = 0; d < m.num_shards(); ++d) {
      m.shard(d).view().copy_from(
          a.block(m.row0(d), 0, m.shard_rows(d), a.cols()));
    }
    return m;
  }

  // Storage-free shards for ModelOnly cost runs at paper scale.
  static DistMatrix shape_only(idx rows, idx cols, int devices) {
    DistMatrix m;
    m.init(rows, cols, even_partition(rows, devices, cols),
           /*functional=*/false);
    return m;
  }

  // Distributed identity with `qcols` columns (the form_q seed): shard d is
  // rows [row0(d), row0(d)+h) of eye(rows, qcols).
  static DistMatrix identity(idx rows, idx qcols, std::vector<idx> offsets) {
    DistMatrix m;
    m.init(rows, qcols, std::move(offsets), /*functional=*/true);
    for (int d = 0; d < m.num_shards(); ++d) {
      MatrixView<T> s = m.shard(d).view();
      s.fill(T(0));
      for (idx i = 0; i < m.shard_rows(d); ++i) {
        const idx g = m.row0(d) + i;
        if (g < qcols) s(i, g) = T(1);
      }
    }
    return m;
  }

  static DistMatrix shape_only(idx rows, idx cols, std::vector<idx> offsets) {
    DistMatrix m;
    m.init(rows, cols, std::move(offsets), /*functional=*/false);
    return m;
  }

  idx rows() const { return rows_; }
  idx cols() const { return cols_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  bool functional() const { return functional_; }
  const std::vector<idx>& offsets() const { return offsets_; }

  idx row0(int d) const { return offsets_[static_cast<std::size_t>(d)]; }
  idx shard_rows(int d) const {
    return offsets_[static_cast<std::size_t>(d) + 1] -
           offsets_[static_cast<std::size_t>(d)];
  }
  Matrix<T>& shard(int d) { return shards_[static_cast<std::size_t>(d)]; }
  const Matrix<T>& shard(int d) const {
    return shards_[static_cast<std::size_t>(d)];
  }

  // Functional gather into one host matrix (for verification / comparison).
  Matrix<T> gather() const {
    CAQR_CHECK_MSG(functional_, "cannot gather a shape-only DistMatrix");
    Matrix<T> out(rows_, cols_);
    for (int d = 0; d < num_shards(); ++d) {
      out.block(row0(d), 0, shard_rows(d), cols_)
          .copy_from(shard(d).view());
    }
    return out;
  }

 private:
  void init(idx rows, idx cols, std::vector<idx> offsets, bool functional) {
    CAQR_CHECK(rows >= 0 && cols >= 0);
    CAQR_CHECK(static_cast<idx>(offsets.size()) >= 2);
    CAQR_CHECK(offsets.front() == 0 && offsets.back() == rows);
    rows_ = rows;
    cols_ = cols;
    functional_ = functional;
    offsets_ = std::move(offsets);
    const int n = static_cast<int>(offsets_.size()) - 1;
    shards_.reserve(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      const idx h = offsets_[static_cast<std::size_t>(d) + 1] -
                    offsets_[static_cast<std::size_t>(d)];
      CAQR_CHECK(h >= 1);
      shards_.push_back(functional ? Matrix<T>(h, cols)
                                   : Matrix<T>::shape_only(h, cols));
    }
  }

  idx rows_ = 0;
  idx cols_ = 0;
  bool functional_ = true;
  std::vector<idx> offsets_;
  std::vector<Matrix<T>> shards_;
};

}  // namespace caqr::dist

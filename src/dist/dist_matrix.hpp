#pragma once

// Sharded matrices for the device grid: block-row (the CAQR decomposition)
// and 2D block-cyclic (the dense-solver layout of ScaLAPACK and the 3D-QR
// literature).
//
// A DistMatrix owns one contiguous row slice ("shard") per device: shard d
// holds global rows [row0(d), row0(d) + shard_rows(d)) across ALL columns,
// stored as an ordinary host-resident Matrix (the simulator keeps all data
// in host memory; device residency is a cost-model concept). Block-row
// sharding is the natural decomposition for TSQR/CAQR: each device factors
// its own row blocks locally and only w x w R triangles and w-row slices of
// the trailing matrix ever cross the interconnect.
//
// PARTITION CONSTRAINT: every block-row shard must be at least `cols` rows
// tall, so the full upper-triangular R (and every panel's surviving root
// triangle) lives in shard 0 — the cross-device reduction always roots at
// device 0. A shape that cannot satisfy it (rows < devices * cols) is a
// TYPED error: even_partition throws PartitionError carrying the offending
// (rows, min_rows, devices) triple, so serving and recovery layers can
// refuse the shape instead of aborting the process.
//
// BlockCyclicMatrix is the second sharding: global (i, j) belongs to the
// process grid cell ((i/br) mod pr, (j/bc) mod pc), each device owning a
// compacted local matrix of its blocks in block order — the layout 2D/3D
// QR panels and trailing updates address. It shares nothing with the
// block-row invariants above (no per-shard height floor; R is not resident
// in one shard) and is gathered/scattered whole for verification.
//
// ModelOnly grids get storage-free shards (Matrix::shape_only), mirroring
// the single-device convention for paper-scale cost runs.

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "dist/device_grid.hpp"
#include "linalg/matrix.hpp"

namespace caqr::dist {

// Typed rejection of an unsatisfiable block-row partition: thrown (never an
// abort) when `rows` cannot give each of `devices` shards at least
// `min_rows` (= the matrix's cols at every factorization call site) rows.
// Carries the offending triple so callers can log, shrink the grid, or
// refuse the request.
struct PartitionError : std::runtime_error {
  PartitionError(idx rows_, idx min_rows_, int devices_)
      : std::runtime_error(
            "block-row partition infeasible: " + std::to_string(rows_) +
            " rows over " + std::to_string(devices_) +
            " devices leaves a shard under the " + std::to_string(min_rows_) +
            "-row floor (need rows >= devices * cols)"),
        rows(rows_),
        min_rows(min_rows_),
        devices(devices_) {}
  idx rows = 0;
  idx min_rows = 0;
  int devices = 0;
};

// Row offsets of an even block-row partition: devices+1 entries, first 0,
// last `rows`, each slice height >= min_rows (earlier slices absorb the
// remainder one row each). Throws PartitionError unless
// rows >= devices * min_rows (see header comment).
inline std::vector<idx> even_partition(idx rows, int devices, idx min_rows) {
  CAQR_CHECK(devices >= 1 && rows >= 0 && min_rows >= 0);
  if (rows < static_cast<idx>(devices) * min_rows) {
    throw PartitionError(rows, min_rows, devices);
  }
  const idx base = rows / devices;
  const idx rem = rows % devices;
  std::vector<idx> offsets;
  offsets.reserve(static_cast<std::size_t>(devices) + 1);
  idx r0 = 0;
  for (int d = 0; d < devices; ++d) {
    offsets.push_back(r0);
    r0 += base + (d < rem ? 1 : 0);
  }
  offsets.push_back(rows);
  return offsets;
}

template <typename T>
class DistMatrix {
 public:
  DistMatrix() = default;

  // Functional scatter: copies `a` into per-device shards under the even
  // partition (or an explicit one via the 3-argument overload).
  static DistMatrix scatter(ConstMatrixView<T> a, int devices) {
    return scatter(a, even_partition(a.rows(), devices, a.cols()));
  }

  static DistMatrix scatter(ConstMatrixView<T> a, std::vector<idx> offsets) {
    DistMatrix m;
    m.init(a.rows(), a.cols(), std::move(offsets), /*functional=*/true);
    for (int d = 0; d < m.num_shards(); ++d) {
      m.shard(d).view().copy_from(
          a.block(m.row0(d), 0, m.shard_rows(d), a.cols()));
    }
    return m;
  }

  // Storage-free shards for ModelOnly cost runs at paper scale.
  static DistMatrix shape_only(idx rows, idx cols, int devices) {
    DistMatrix m;
    m.init(rows, cols, even_partition(rows, devices, cols),
           /*functional=*/false);
    return m;
  }

  // Distributed identity with `qcols` columns (the form_q seed): shard d is
  // rows [row0(d), row0(d)+h) of eye(rows, qcols).
  static DistMatrix identity(idx rows, idx qcols, std::vector<idx> offsets) {
    DistMatrix m;
    m.init(rows, qcols, std::move(offsets), /*functional=*/true);
    for (int d = 0; d < m.num_shards(); ++d) {
      MatrixView<T> s = m.shard(d).view();
      s.fill(T(0));
      for (idx i = 0; i < m.shard_rows(d); ++i) {
        const idx g = m.row0(d) + i;
        if (g < qcols) s(i, g) = T(1);
      }
    }
    return m;
  }

  static DistMatrix shape_only(idx rows, idx cols, std::vector<idx> offsets) {
    DistMatrix m;
    m.init(rows, cols, std::move(offsets), /*functional=*/false);
    return m;
  }

  idx rows() const { return rows_; }
  idx cols() const { return cols_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  bool functional() const { return functional_; }
  const std::vector<idx>& offsets() const { return offsets_; }

  idx row0(int d) const { return offsets_[static_cast<std::size_t>(d)]; }
  idx shard_rows(int d) const {
    return offsets_[static_cast<std::size_t>(d) + 1] -
           offsets_[static_cast<std::size_t>(d)];
  }
  Matrix<T>& shard(int d) { return shards_[static_cast<std::size_t>(d)]; }
  const Matrix<T>& shard(int d) const {
    return shards_[static_cast<std::size_t>(d)];
  }

  // Functional gather into one host matrix (for verification / comparison).
  Matrix<T> gather() const {
    CAQR_CHECK_MSG(functional_, "cannot gather a shape-only DistMatrix");
    Matrix<T> out(rows_, cols_);
    for (int d = 0; d < num_shards(); ++d) {
      out.block(row0(d), 0, shard_rows(d), cols_)
          .copy_from(shard(d).view());
    }
    return out;
  }

 private:
  void init(idx rows, idx cols, std::vector<idx> offsets, bool functional) {
    CAQR_CHECK(rows >= 0 && cols >= 0);
    CAQR_CHECK(static_cast<idx>(offsets.size()) >= 2);
    CAQR_CHECK(offsets.front() == 0 && offsets.back() == rows);
    rows_ = rows;
    cols_ = cols;
    functional_ = functional;
    offsets_ = std::move(offsets);
    const int n = static_cast<int>(offsets_.size()) - 1;
    shards_.reserve(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      const idx h = offsets_[static_cast<std::size_t>(d) + 1] -
                    offsets_[static_cast<std::size_t>(d)];
      CAQR_CHECK(h >= 1);
      shards_.push_back(functional ? Matrix<T>(h, cols)
                                   : Matrix<T>::shape_only(h, cols));
    }
  }

  idx rows_ = 0;
  idx cols_ = 0;
  bool functional_ = true;
  std::vector<idx> offsets_;
  std::vector<Matrix<T>> shards_;
};

// 2D block-cyclic layout over a pr x pc process grid with br x bc blocks:
// the ScaLAPACK distribution. Device p = grid_row * pc + grid_col owns
// every block (bi, bj) with bi mod pr == grid_row and bj mod pc == grid_col.
struct BlockCyclicLayout {
  int pr = 1;   // process-grid rows
  int pc = 1;   // process-grid cols
  idx br = 32;  // block rows
  idx bc = 32;  // block cols

  int devices() const { return pr * pc; }
  int grid_row(int device) const { return device / pc; }
  int grid_col(int device) const { return device % pc; }

  // Owning device of global element (i, j).
  int owner(idx i, idx j) const {
    return static_cast<int>((i / br) % pr) * pc +
           static_cast<int>((j / bc) % pc);
  }

  // Rows of the local shard on process-grid row `prow` (the ScaLAPACK
  // numroc count: whole block cycles plus this row's share of the tail).
  idx local_rows(idx rows, int prow) const {
    return local_extent(rows, br, prow, pr);
  }
  idx local_cols(idx cols, int pcol) const {
    return local_extent(cols, bc, pcol, pc);
  }

  // Local row index of global row i on its owning process-grid row: blocks
  // are compacted in cycle order, so global block i/br is that owner's
  // (i / (pr*br))-th local block.
  idx local_row(idx i) const { return (i / (br * pr)) * br + i % br; }
  idx local_col(idx j) const { return (j / (bc * pc)) * bc + j % bc; }

  std::uint64_t fingerprint() const {
    std::uint64_t h = ft::detail::kFnvOffset;
    const std::int64_t v[4] = {pr, pc, br, bc};
    h = ft::detail::fnv1a(v, sizeof(v), h);
    return h;
  }

 private:
  static idx local_extent(idx n, idx blk, int p, int np) {
    const idx full_cycles = n / (blk * np);
    idx local = full_cycles * blk;
    const idx rem = n - full_cycles * blk * np;  // rows past the last cycle
    const idx my_start = static_cast<idx>(p) * blk;
    if (rem > my_start) local += std::min(blk, rem - my_start);
    return local;
  }
};

// Block-cyclic sharded matrix: one compacted local Matrix per device (rows
// = layout.local_rows, cols = layout.local_cols). Functional scatter/gather
// move elements through the owner map; shape_only shards are storage-free
// for ModelOnly cost runs, mirroring DistMatrix.
template <typename T>
class BlockCyclicMatrix {
 public:
  BlockCyclicMatrix() = default;

  static BlockCyclicMatrix scatter(ConstMatrixView<T> a,
                                   const BlockCyclicLayout& layout) {
    BlockCyclicMatrix m;
    m.init(a.rows(), a.cols(), layout, /*functional=*/true);
    for (idx i = 0; i < a.rows(); ++i) {
      for (idx j = 0; j < a.cols(); ++j) {
        m.shard(layout.owner(i, j))(layout.local_row(i), layout.local_col(j)) =
            a(i, j);
      }
    }
    return m;
  }

  static BlockCyclicMatrix shape_only(idx rows, idx cols,
                                      const BlockCyclicLayout& layout) {
    BlockCyclicMatrix m;
    m.init(rows, cols, layout, /*functional=*/false);
    return m;
  }

  idx rows() const { return rows_; }
  idx cols() const { return cols_; }
  bool functional() const { return functional_; }
  const BlockCyclicLayout& layout() const { return layout_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  Matrix<T>& shard(int d) { return shards_[static_cast<std::size_t>(d)]; }
  const Matrix<T>& shard(int d) const {
    return shards_[static_cast<std::size_t>(d)];
  }

  Matrix<T> gather() const {
    CAQR_CHECK_MSG(functional_, "cannot gather a shape-only BlockCyclicMatrix");
    Matrix<T> out(rows_, cols_);
    for (idx i = 0; i < rows_; ++i) {
      for (idx j = 0; j < cols_; ++j) {
        out(i, j) = shard(layout_.owner(i, j))(layout_.local_row(i),
                                               layout_.local_col(j));
      }
    }
    return out;
  }

 private:
  void init(idx rows, idx cols, const BlockCyclicLayout& layout,
            bool functional) {
    CAQR_CHECK(rows >= 0 && cols >= 0);
    CAQR_CHECK(layout.pr >= 1 && layout.pc >= 1 && layout.br >= 1 &&
               layout.bc >= 1);
    rows_ = rows;
    cols_ = cols;
    layout_ = layout;
    functional_ = functional;
    shards_.reserve(static_cast<std::size_t>(layout.devices()));
    for (int d = 0; d < layout.devices(); ++d) {
      const idx lr = layout.local_rows(rows, layout.grid_row(d));
      const idx lc = layout.local_cols(cols, layout.grid_col(d));
      shards_.push_back(functional ? Matrix<T>(lr, lc)
                                   : Matrix<T>::shape_only(lr, lc));
    }
  }

  idx rows_ = 0;
  idx cols_ = 0;
  bool functional_ = true;
  BlockCyclicLayout layout_;
  std::vector<Matrix<T>> shards_;
};

}  // namespace caqr::dist
